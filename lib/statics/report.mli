(** Findings of the static analyzer ({!Analyze}) and their rendering.

    A report separates hard {e violations} of the model's side conditions
    (locality, write-ownership, determinism, crash-freedom) from the
    {e structural statistics} that are expected — and informative — on a
    correct algorithm: priority overlaps (how often the priority order
    actually arbitrates) and read/write interference (which concurrently
    enabled neighbor actions a message-passing refinement must
    serialize). *)

type rule =
  | Locality  (** a guard or statement read a non-neighbor's state *)
  | Write_ownership
      (** a statement mutated a state it does not own (or its own pre-step
          state in place, which breaks step atomicity) *)
  | Determinism
      (** two evaluations on the same configuration disagreed — hidden
          global or random state *)
  | Crash  (** a guard or statement raised an exception *)

val rule_name : rule -> string
(** ["locality"], ["write-ownership"], ["determinism"], ["crash"] — the
    names used by machine-readable output and expected by the tests. *)

type finding = {
  rule : rule;
  action : string;  (** action label, e.g. ["Step21"] *)
  proc : int;  (** executing process *)
  count : int;  (** (configuration, input-mode) pairs exhibiting it *)
  detail : string;  (** human-readable description of the first exhibit *)
}

type overlap = {
  labels : string list;
      (** the ≥2 simultaneously enabled actions of one process, code order *)
  times : int;  (** (configuration, input-mode, process) occurrences *)
  example_proc : int;
}

type interference = {
  writer : string;  (** action whose execution changes the writer's state *)
  reader : string;
      (** concurrently enabled neighbor action whose evaluation reads it *)
  times : int;
}

type t = {
  algo : string;
  topo : string;
  configs : int;  (** configurations analyzed *)
  evals : int;  (** action evaluations performed *)
  findings : finding list;  (** violations, sorted *)
  waived : finding list;  (** findings matching the analyzer's allow list *)
  overlaps : overlap list;  (** sorted by frequency, descending *)
  interference : interference list;  (** sorted by frequency, descending *)
  dead : string list;
      (** actions whose guard never held on any explored (configuration,
          input-mode, process) triple — unsatisfiable-guard suspects, in
          code order.  Suspect-level, not a violation: the exploration is
          coverage-relative, and some actions are legitimately dead on
          specific instances (e.g. CC2/CC3's [Token2] fast-forward, which
          only fires from corrupted token positions on topologies where the
          cap leaves them unreached). *)
}

val ok : t -> bool
(** No violations ([findings = []]; waived findings do not count). *)

val summary_table : t list -> Snapcc_experiments.Table.t
(** One row per analyzed (algorithm, topology) pair. *)

val detail_table : t -> Snapcc_experiments.Table.t
(** Per-finding rows (violations first, then waived findings). *)

val to_lines : t -> string list
(** Machine-readable violations, one per line:
    [lint algo=<name> topo=<name> rule=<rule> action=<label> proc=<p>
    count=<k> detail=<text>], followed by one
    [lint algo=<name> topo=<name> suspect=dead-action action=<label>] line
    per dead action.  Waived findings are not included. *)
