module H = Snapcc_hypergraph.Hypergraph

module Make (A : Model.ALGO) = struct
  type t = {
    h : H.t;
    mutable states : A.state array;
    actions : A.state Model.action array;  (* index = code order; last = top priority *)
    daemon : Daemon.t;
    rng : Random.State.t;
    check_locality : bool;
    mutable step_no : int;
    mutable round_no : int;
    mutable round_pending : bool array option;
        (* processes from the round's initial enabled set still to activate
           or neutralize; [None] until the first step establishes it *)
    cont_enabled : int array;
  }

  let create ?(seed = 0) ?(check_locality = false) ?(init = `Canonical) ~daemon h =
    let n = H.n h in
    let rng = Random.State.make [| seed; n; 0xcc |] in
    let states =
      match init with
      | `Canonical -> Array.init n (A.init h)
      | `Random -> Array.init n (A.random_init h rng)
      | `States s ->
        if Array.length s <> n then invalid_arg "Engine.create: bad state array";
        Array.copy s
    in
    {
      h;
      states;
      actions = Array.of_list (A.actions h);
      daemon;
      rng;
      check_locality;
      step_no = 0;
      round_no = 0;
      round_pending = None;
      cont_enabled = Array.make n 0;
    }

  let hypergraph t = t.h
  let states t = Array.copy t.states
  let state t p = t.states.(p)

  let set_states t s =
    if Array.length s <> H.n t.h then invalid_arg "Engine.set_states";
    t.states <- Array.copy s

  let obs t = Array.init (H.n t.h) (A.observe t.h t.states)
  let steps_taken t = t.step_no
  let rounds t = t.round_no
  let rng t = t.rng

  let ctx_for t ~inputs p : A.state Model.ctx =
    let read =
      if t.check_locality then (fun q ->
        if q <> p && not (H.are_neighbors t.h p q) then
          failwith
            (Printf.sprintf "locality violation: process %d read state of %d" p q);
        t.states.(q))
      else Array.get t.states
    in
    { Model.h = t.h; inputs; read; self = p }

  (* Highest-priority enabled action: the paper gives priority to actions
     appearing later in the code (§2.2), hence the backwards scan. *)
  let priority_action t ~inputs p =
    let ctx = ctx_for t ~inputs p in
    let rec scan i =
      if i < 0 then None
      else if t.actions.(i).Model.guard ctx then Some i
      else scan (i - 1)
    in
    scan (Array.length t.actions - 1)

  let enabled t ~inputs =
    List.filter
      (fun p -> priority_action t ~inputs p <> None)
      (List.init (H.n t.h) Fun.id)

  let is_terminal t ~inputs = enabled t ~inputs = []

  let enabled_action t ~inputs p =
    Option.map (fun i -> t.actions.(i).Model.label) (priority_action t ~inputs p)

  let step t ~inputs =
    let enabled_before = enabled t ~inputs in
    if enabled_before = [] then
      { Model.step = t.step_no; selected = []; executed = []; neutralized = [];
        round = t.round_no; terminal = true }
    else begin
      (* establish the first round's pending set lazily: enabledness depends
         on the step's inputs, unknown at creation time *)
      (match t.round_pending with
       | Some _ -> ()
       | None ->
         let pending = Array.make (H.n t.h) false in
         List.iter (fun p -> pending.(p) <- true) enabled_before;
         t.round_pending <- Some pending);
      let selected =
        Daemon.select t.daemon ~rng:t.rng ~step:t.step_no ~enabled:enabled_before
          ~continuously_enabled:(Array.get t.cont_enabled)
      in
      let selected = List.sort_uniq compare selected in
      if selected = [] then invalid_arg "daemon selected an empty set";
      List.iter
        (fun p ->
          if not (List.mem p enabled_before) then
            invalid_arg (Printf.sprintf "daemon selected disabled process %d" p))
        selected;
      (* all statements read the pre-step configuration *)
      let executed =
        List.filter_map
          (fun p ->
            match priority_action t ~inputs p with
            | None -> None
            | Some i ->
              let ctx = ctx_for t ~inputs p in
              Some (p, t.actions.(i).Model.label, t.actions.(i).Model.apply ctx))
          selected
      in
      let next = Array.copy t.states in
      List.iter (fun (p, _, s) -> next.(p) <- s) executed;
      t.states <- next;
      let executed = List.map (fun (p, l, _) -> (p, l)) executed in
      let enabled_after = enabled t ~inputs in
      let did_execute p = List.mem_assoc p executed in
      let neutralized =
        List.filter
          (fun p -> (not (did_execute p)) && not (List.mem p enabled_after))
          enabled_before
      in
      (* weak-fairness accounting *)
      for p = 0 to H.n t.h - 1 do
        if did_execute p || not (List.mem p enabled_after) then t.cont_enabled.(p) <- 0
        else if List.mem p enabled_before then
          t.cont_enabled.(p) <- t.cont_enabled.(p) + 1
      done;
      (* round accounting (§2.2): the round completes once every process of
         its initial enabled set has been activated or neutralized *)
      (match t.round_pending with
       | None -> ()
       | Some pending ->
         List.iter (fun p -> pending.(p) <- false) neutralized;
         List.iter (fun (p, _) -> pending.(p) <- false) executed;
         if not (Array.exists Fun.id pending) then begin
           t.round_no <- t.round_no + 1;
           let fresh = Array.make (H.n t.h) false in
           List.iter (fun p -> fresh.(p) <- true) enabled_after;
           t.round_pending <- Some fresh
         end);
      let report =
        { Model.step = t.step_no; selected; executed; neutralized;
          round = t.round_no; terminal = false }
      in
      t.step_no <- t.step_no + 1;
      report
    end

  let run t ~steps ~inputs_at ?(on_step = fun _ _ -> ()) ?(stop_when = fun _ -> false) () =
    let rec go remaining =
      if remaining <= 0 then `Steps_exhausted
      else begin
        let inputs = inputs_at t in
        let report = step t ~inputs in
        if report.Model.terminal then `Terminal
        else begin
          on_step t report;
          if stop_when t then `Stopped else go (remaining - 1)
        end
      end
    in
    go steps

  let corrupt t ?rng ~victims () =
    let rng = match rng with Some r -> r | None -> t.rng in
    let next = Array.copy t.states in
    List.iter
      (fun p ->
        if p < 0 || p >= H.n t.h then invalid_arg "Engine.corrupt: bad victim";
        next.(p) <- A.random_init t.h rng p;
        t.cont_enabled.(p) <- 0)
      victims;
    t.states <- next;
    (* a fault may disable pending processes without a step; restart the
       round measurement from the corrupted configuration *)
    t.round_pending <- None
end
