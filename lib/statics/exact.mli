(** The exact static-analysis tier: {!Report} findings derived from the
    dense guard/footprint tables of {!Snapcc_mc.Tables}.

    Where {!Analyze} samples reachable configurations — its clean pass is
    sound {e relative to the explored coverage} — this tier enumerates each
    process's full support product over the declared {!Snapcc_mc.System.S}
    domains under every input mode.  On instances where every pass
    completes, a clean pass is therefore a {e proof} of the side conditions
    (locality, write-ownership, determinism, crash-freedom) over the
    enumerated family, a never-true guard is a dead-action proof
    ([Report.dead_proven]), and the overlap / interference statistics are
    exact counts.

    The same run yields the packed tables themselves, which
    {!Snapcc_mc.Explore.Make.explore} can execute by lookup (its
    [?tables] fast path) and [Artifact] can serialize. *)

type coverage = {
  cells : int;  (** (cell, mode) pairs enumerated, all processes *)
  seconds : float;
  complete : bool;
      (** every pass enumerated — the condition under which clean rules and
          dead actions are proofs *)
  stored : bool;  (** every pass also stored: tables usable by the explorer *)
  tainted : bool;  (** in-place mutation corrupted the interned stores:
                       tables and statistics are unreliable, findings remain
                       valid evidence *)
  live : string list;
      (** actions whose guard held on some enumerated cell — feeds
          {!Report.classify_dead} for sampled-report reclassification *)
  proc_status : (int * string) list;
      (** processes whose pass was not stored: [(proc, reason)] — the
          reason says whether it was streamed (enumerated, verdicts valid)
          or skipped (no verdicts claimed) *)
}

val agreement : exact:Report.t -> sampled:Report.t -> Report.finding list
(** Sampled violations the exact tier did {e not} reproduce or subsume
    (empty = the tiers agree).  Subsumption matches on rule and process;
    the action must agree unless the exact witness carries no action
    attribution (write-ownership evidence is fingerprint-based, label
    ["*"]).  Exact waived findings count as witnesses: a waived rule still
    explains a sampled finding. *)

module Make (Sys : Snapcc_mc.System.S) : sig
  val run :
    ?verify:bool ->
    ?cap:int ->
    ?store_cap:int ->
    ?interference_cap:int ->
    ?allow:Report.rule list ->
    algo:string ->
    topo:string ->
    Snapcc_hypergraph.Hypergraph.t ->
    Report.t * coverage * Snapcc_mc.Tables.Make(Sys).t
  (** [run ~algo ~topo h] builds the tables (default [verify:true] — the
      full exact-lint configuration; caps as in {!Snapcc_mc.Tables.Make.build})
      and renders them as a [tier = "exact"] report.  [allow] waives rules
      exactly as {!Analyze.Make.analyze} does.  [Report.configs] and
      [Report.evals] both report enumerated (cell, mode) pairs. *)
end
