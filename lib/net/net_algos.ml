module H = Snapcc_hypergraph.Hypergraph
module Systems = Snapcc_mc.Systems
module Cc1 = Snapcc_core.Cc1.Std (Snapcc_token.Token_tree)
module Cc2 = Snapcc_core.Cc23.Cc2_std (Snapcc_token.Token_tree)
module Cc3 = Snapcc_core.Cc23.Cc3_std (Snapcc_token.Token_tree)

type coder = {
  to_id : proc:int -> string -> int option;
  of_id : proc:int -> int -> string option;
}

(* Both ends build the coder independently from the shared topology:
   [Encode.create] interns the declared state domain in a deterministic
   order, so orchestrator and node agree on every id without exchanging a
   dictionary.  Only the pre-interned domain is used ([Enc.find], never
   [Enc.intern]): a state outside it — possible only if the domain
   declaration is not closed — simply has no id and travels as a full
   marshalled snapshot. *)
module Coder (Sys : Snapcc_mc.System.S) = struct
  module Enc = Snapcc_mc.Encode.Make (Sys)

  let make h =
    let enc = Enc.create h in
    {
      to_id =
        (fun ~proc s ->
          Enc.find enc proc (Marshal.from_string s 0 : Sys.state));
      of_id =
        (fun ~proc id ->
          if id < 0 || id >= Enc.domain_count enc proc then None
          else Some (Marshal.to_string (Enc.state enc proc id) []));
    }
end

module Cc1_coder = Coder (Systems.Cc1_sys (Snapcc_token.Token_tree) (Cc1))
module Cc2_coder =
  Coder
    (Systems.Cc23_sys (Snapcc_token.Token_tree) (Cc2)
       (struct
         let cursor = false
       end))
module Cc3_coder =
  Coder
    (Systems.Cc23_sys (Snapcc_token.Token_tree) (Cc3)
       (struct
         let cursor = true
       end))

type entry = {
  name : string;
  tag : int;
  algo : (module Snapcc_runtime.Model.ALGO);
  coder : H.t -> coder;
}

let all =
  [ { name = "cc1"; tag = 1; algo = (module Cc1); coder = Cc1_coder.make };
    { name = "cc2"; tag = 2; algo = (module Cc2); coder = Cc2_coder.make };
    { name = "cc3"; tag = 3; algo = (module Cc3); coder = Cc3_coder.make } ]

let find name = List.find_opt (fun e -> e.name = name) all
let find_tag tag = List.find_opt (fun e -> e.tag = tag) all
