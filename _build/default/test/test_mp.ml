(* The message-passing substrate: channel discipline, scheduler fairness,
   locality, determinism, fault injection. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
module X = Snapcc_experiments.Algos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

module E = Snapcc_mp.Mp_engine.Make (X.Cc2)

let directed_links h =
  List.fold_left ( + ) 0 (List.init (H.n h) (H.graph_degree h))

let test_coalescing_channels () =
  let h = Families.fig1 () in
  let eng = E.create ~seed:1 h in
  let w = Snapcc_workload.Workload.always_requesting h in
  for _ = 1 to 2_000 do
    let inputs = Snapcc_workload.Workload.inputs w (E.obs eng) in
    ignore (E.step eng ~inputs)
  done;
  (* links hold at most the latest snapshot each *)
  check "bounded channels" true (E.in_flight eng <= directed_links h);
  check "messages flowed" true (E.messages_delivered eng > 100);
  check "sends counted" true (E.messages_sent eng >= E.messages_delivered eng)

let test_scheduler_fairness () =
  (* even with a delivery-heavy bias, every process is activated and every
     link keeps delivering *)
  let h = Families.path 5 in
  let eng = E.create ~seed:3 ~deliver_bias:0.9 h in
  let activated = Array.make (H.n h) 0 in
  let delivered = Array.make (H.n h) 0 in
  let w = Snapcc_workload.Workload.always_requesting h in
  for _ = 1 to 4_000 do
    let inputs = Snapcc_workload.Workload.inputs w (E.obs eng) in
    match E.step eng ~inputs with
    | E.Activated (p, _) -> activated.(p) <- activated.(p) + 1
    | E.Delivered (p, _) -> delivered.(p) <- delivered.(p) + 1
  done;
  Array.iteri
    (fun p c -> check (Printf.sprintf "process %d activated" p) true (c > 10))
    activated;
  Array.iteri
    (fun p c -> check (Printf.sprintf "process %d received" p) true (c > 10))
    delivered;
  check_int "steps counted" 4_000 (E.steps_taken eng)

let test_determinism () =
  let h = Families.fig1 () in
  let run () =
    let eng = E.create ~seed:11 ~init:`Random h in
    let w = Snapcc_workload.Workload.always_requesting h in
    for _ = 1 to 3_000 do
      let inputs = Snapcc_workload.Workload.inputs w (E.obs eng) in
      ignore (E.step eng ~inputs)
    done;
    (E.messages_delivered eng, E.messages_sent eng,
     Array.map (fun (o : Obs.t) -> o.Obs.status) (E.obs eng))
  in
  check "same seed, same run" true (run () = run ())

let test_corrupt () =
  let h = Families.fig1 () in
  let eng = E.create ~seed:5 h in
  let before = E.obs eng in
  E.corrupt eng ~victims:(List.init (H.n h) Fun.id);
  let after = E.obs eng in
  check "corruption visible" true
    (Array.exists2 (fun a b -> not (Obs.equal a b)) before after)

let test_mp_cc2_serves_everyone () =
  let h = Families.fig1 () in
  let eng = E.create ~seed:7 ~init:`Random h in
  let w = Snapcc_workload.Workload.always_requesting h in
  let spec = Snapcc_analysis.Spec.create h ~initial:(E.obs eng) in
  let before = ref (E.obs eng) in
  for i = 0 to 29_999 do
    let inputs = Snapcc_workload.Workload.inputs w !before in
    ignore (E.step eng ~inputs);
    let after = E.obs eng in
    Snapcc_analysis.Spec.on_step spec ~step:i
      ~request_out:inputs.Model.request_out ~before:!before ~after;
    Snapcc_workload.Workload.observe w ~step:i after;
    before := after
  done;
  let parts = Snapcc_analysis.Spec.participations spec in
  Array.iteri
    (fun p c ->
      check (Printf.sprintf "professor %d served over message passing" (H.id h p))
        true (c > 0))
    parts;
  (* exclusion and synchronization must hold even over stale views *)
  List.iter
    (fun (v : Snapcc_analysis.Spec.violation) ->
      if v.Snapcc_analysis.Spec.rule = "exclusion"
         || v.Snapcc_analysis.Spec.rule = "synchronization"
      then
        Alcotest.failf "unexpected %s violation: %s" v.Snapcc_analysis.Spec.rule
          v.Snapcc_analysis.Spec.detail)
    (Snapcc_analysis.Spec.violations spec)

let test_max_staleness_grows () =
  let h = Families.fig1 () in
  let eng = E.create ~seed:9 ~deliver_bias:0.2 h in
  let w = Snapcc_workload.Workload.always_requesting h in
  for _ = 1 to 2_000 do
    let inputs = Snapcc_workload.Workload.inputs w (E.obs eng) in
    ignore (E.step eng ~inputs)
  done;
  check "runs are genuinely asynchronous" true (E.max_staleness eng > 5)

let suite =
  [ ( "message-passing",
      [ Alcotest.test_case "coalescing channels" `Quick test_coalescing_channels;
        Alcotest.test_case "scheduler progresses" `Quick test_scheduler_fairness;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "fault injection" `Quick test_corrupt;
        Alcotest.test_case "CC2/mp fairness + safety core" `Slow
          test_mp_cc2_serves_everyone;
        Alcotest.test_case "staleness exercised" `Quick test_max_staleness_grows;
      ] );
  ]
