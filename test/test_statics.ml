(* The static analyzer (lib/statics): each check fires on a deliberately
   broken fixture algorithm, the paper's algorithms and both §6 baselines
   pass clean, and the static locality pass agrees with the engine's
   dynamic [check_locality] assert on the same fixture. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Model = Snapcc_runtime.Model
module Daemon = Snapcc_runtime.Daemon
module Obs = Snapcc_runtime.Obs
module Report = Snapcc_statics.Report
module X = Snapcc_experiments.Algos

let check = Alcotest.(check bool)

let has_rule (r : Report.t) rule =
  List.exists (fun (f : Report.finding) -> f.rule = rule) r.findings

let rules_of (r : Report.t) =
  List.sort_uniq compare
    (List.map (fun (f : Report.finding) -> Report.rule_name f.rule) r.findings)

(* ---- fixture: a guard reading a non-neighbor (locality violation) ---- *)

module Nonlocal = struct
  type state = int

  let name = "fixture-nonlocal"
  let pp_state = Format.pp_print_int
  let equal_state = Int.equal
  let init _ _ = 0
  let random_init _ rng _ = Random.State.int rng 3

  let actions h =
    [ { Model.label = "peek";
        guard =
          (fun ctx ->
            (* vertex 0 reads the far end of the path *)
            ctx.Model.self = 0
            && ctx.Model.read (H.n h - 1) >= 0
            && ctx.Model.read ctx.Model.self < 2);
        apply = (fun ctx -> ctx.Model.read ctx.Model.self + 1) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
end

(* ---- fixture: a statement mutating a neighbor's state in place ---- *)

module Foreign_write = struct
  type state = { mutable v : int }

  let name = "fixture-foreign-write"
  let pp_state ppf st = Format.pp_print_int ppf st.v
  let equal_state (a : state) b = a.v = b.v
  let init _ _ = { v = 0 }
  let random_init _ rng _ = { v = Random.State.int rng 3 }

  let actions _h =
    [ { Model.label = "poke";
        guard = (fun ctx -> (ctx.Model.read ctx.Model.self).v < 2);
        apply =
          (fun ctx ->
            let other = if ctx.Model.self = 0 then 1 else 0 in
            (* forbidden: writes a state the process does not own *)
            (ctx.Model.read other).v <- 99;
            { v = (ctx.Model.read ctx.Model.self).v + 1 }) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
end

(* ---- fixture: a statement consulting hidden global state ---- *)

module Nondet = struct
  type state = int

  let name = "fixture-nondet"
  let flip = ref false
  let pp_state = Format.pp_print_int
  let equal_state = Int.equal
  let init _ _ = 0
  let random_init _ rng _ = Random.State.int rng 2

  let actions _h =
    [ { Model.label = "coin";
        guard = (fun ctx -> ctx.Model.read ctx.Model.self = 0);
        apply =
          (fun _ctx ->
            flip := not !flip;
            if !flip then 1 else 2) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
end

let pair () = H.create ~n:2 [ [ 0; 1 ] ]

(* System.S views of the fixtures, for the exact tier *)

module Nonlocal_sys = struct
  include Nonlocal

  let domain _ _ = [ 0; 1; 2 ]
  let canon _ _ s = s
  let rename _ ~pi:_ ~eperm:_ _ s = s
  let state_symmetries _ = []
end

module Nondet_sys = struct
  include Nondet

  let domain _ _ = [ 0; 1; 2 ]
  let canon _ _ s = s
  let rename _ ~pi:_ ~eperm:_ _ s = s
  let state_symmetries _ = []
end

(* ---- fixture: an always-false guard next to a rarely-enabled one ---- *)

module Deadish = struct
  type state = int

  let name = "fixture-deadish"
  let pp_state = Format.pp_print_int
  let equal_state = Int.equal
  let init _ _ = 0
  let random_init _ rng _ = Random.State.int rng 3

  let actions _h =
    [ { Model.label = "never";
        guard = (fun _ -> false);
        apply = (fun ctx -> ctx.Model.read ctx.Model.self) };
      { Model.label = "bump";
        guard = (fun ctx -> ctx.Model.read ctx.Model.self < 2);
        apply = (fun ctx -> ctx.Model.read ctx.Model.self + 1) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
  let domain _ _ = [ 0; 1; 2 ]
  let canon _ _ s = s
  let rename _ ~pi:_ ~eperm:_ _ s = s
  let state_symmetries _ = []
end

let test_nonlocal_fires () =
  let module An = Snapcc_statics.Analyze.Make (Nonlocal) in
  let r = An.analyze ~seeds:4 ~max_configs:40 ~topo:"path4" (Families.path 4) in
  check "locality violation reported" true (has_rule r Report.Locality);
  check "reported under the expected rule name" true
    (List.mem "locality" (rules_of r));
  check "report is a failure" false (Report.ok r);
  check "machine-readable lines mention the rule" true
    (List.exists
       (fun l ->
         List.exists (fun part -> part = "rule=locality") (String.split_on_char ' ' l))
       (Report.to_lines r))

let test_foreign_write_fires () =
  let module An = Snapcc_statics.Analyze.Make (Foreign_write) in
  let r = An.analyze ~seeds:4 ~max_configs:40 ~topo:"pair" (pair ()) in
  check "write-ownership violation reported" true (has_rule r Report.Write_ownership);
  check "reported under the expected rule name" true
    (List.mem "write-ownership" (rules_of r));
  (* both processes are neighbors: the foreign write is not a locality bug *)
  check "no locality finding" false (has_rule r Report.Locality)

let test_nondet_fires () =
  let module An = Snapcc_statics.Analyze.Make (Nondet) in
  let r = An.analyze ~seeds:4 ~max_configs:40 ~topo:"pair" (pair ()) in
  check "determinism violation reported" true (has_rule r Report.Determinism);
  check "reported under the expected rule name" true
    (List.mem "determinism" (rules_of r))

let test_clean_passes () =
  let topo = "fig2" and h = Families.fig2 () in
  let run (module A : Model.ALGO) allow =
    let module An = Snapcc_statics.Analyze.Make (A) in
    An.analyze ~seeds:8 ~max_configs:80 ~allow ~topo h
  in
  List.iter
    (fun (label, m) ->
      let r = run m [] in
      check (label ^ " passes clean") true (Report.ok r);
      check (label ^ " has nothing waived") true (r.Report.waived = []))
    [ ("cc1", (module X.Cc1 : Model.ALGO)); ("cc2", (module X.Cc2));
      ("cc3", (module X.Cc3)); ("dining", (module X.Dining)) ];
  (* the centralized baseline deliberately violates locality; with the
     documented waiver it must pass, and the deviation must be visible *)
  let r = run (module X.Central) [ Report.Locality ] in
  check "central passes with the locality waiver" true (Report.ok r);
  check "central's non-local reads are reported as waived" true
    (r.Report.waived <> []);
  let r_strict = run (module X.Central) [] in
  check "central fails without the waiver" false (Report.ok r_strict)

let test_structural_stats () =
  let module An = Snapcc_statics.Analyze.Make (X.Cc1) in
  let r = An.analyze ~seeds:8 ~max_configs:80 ~topo:"fig2" (Families.fig2 ()) in
  check "priority order is load-bearing (overlaps observed)" true
    (r.Report.overlaps <> []);
  List.iter
    (fun (o : Report.overlap) ->
      check "every overlap involves >= 2 actions" true (List.length o.labels >= 2))
    r.Report.overlaps;
  check "neighbor read/write interference observed" true
    (r.Report.interference <> [])

(* The dynamic counterpart: the engine's [check_locality] assert must raise
   on the same crafted non-local read the static pass flags. *)
let test_engine_check_locality_agrees () =
  let h = Families.path 4 in
  let module E = Snapcc_runtime.Engine.Make (Nonlocal) in
  let eng = E.create ~check_locality:true ~daemon:Daemon.synchronous h in
  (match E.step eng ~inputs:Model.no_inputs with
   | exception Failure msg ->
     check "dynamic check names the violation" true
       (String.length msg >= 8 && String.sub msg 0 8 = "locality")
   | _ -> Alcotest.fail "check_locality did not raise on a non-local read");
  (* without the check the same read goes through *)
  let eng2 = E.create ~daemon:Daemon.synchronous h in
  let r = E.step eng2 ~inputs:Model.no_inputs in
  check "unchecked engine executes the action" true (r.Model.executed <> []);
  let module An = Snapcc_statics.Analyze.Make (Nonlocal) in
  let report = An.analyze ~seeds:4 ~max_configs:40 ~topo:"path4" h in
  check "static pass flags the same algorithm" true
    (has_rule report Report.Locality)

(* ---- waiver path: an allow-listed rule is waived, never fatal; rules
   not on the list still fail ---- *)

let test_waiver_path () =
  let module An = Snapcc_statics.Analyze.Make (Nonlocal) in
  let h = Families.path 4 in
  let r = An.analyze ~seeds:4 ~max_configs:40 ~allow:[ Report.Locality ]
      ~topo:"path4" h in
  check "waived rule is not fatal" true (Report.ok r);
  check "the waived finding is still visible" true
    (List.exists
       (fun (f : Report.finding) -> f.rule = Report.Locality)
       r.Report.waived);
  check "waived findings never reach the violation list" false
    (has_rule r Report.Locality);
  (* waiving an unrelated rule must not mask the real one *)
  let module An2 = Snapcc_statics.Analyze.Make (Foreign_write) in
  let r2 = An2.analyze ~seeds:4 ~max_configs:40 ~allow:[ Report.Locality ]
      ~topo:"pair" (pair ()) in
  check "non-listed rule still fails" false (Report.ok r2);
  check "non-listed rule reported as a violation" true
    (has_rule r2 Report.Write_ownership)

(* ---- exact tier: broken fixtures fire absolutely ---- *)

let test_exact_fixtures_fire () =
  let module Ex = Snapcc_statics.Exact.Make (Nonlocal_sys) in
  let r, cov, _ = Ex.run ~algo:"nonlocal" ~topo:"path4" (Families.path 4) in
  check "exact locality violation" true (has_rule r Report.Locality);
  check "exact pass is complete" true cov.Snapcc_statics.Exact.complete;
  check "exact tier label" true (r.Report.tier = "exact");
  let module Ex2 = Snapcc_statics.Exact.Make (Nondet_sys) in
  let r2, _, _ = Ex2.run ~algo:"nondet" ~topo:"pair" (pair ()) in
  check "exact determinism violation" true (has_rule r2 Report.Determinism)

(* ---- exact tier: dead-action proofs and sampled reclassification ---- *)

let test_exact_dead_classification () =
  let module Ex = Snapcc_statics.Exact.Make (Deadish) in
  let r, cov, _ = Ex.run ~algo:"deadish" ~topo:"pair" (pair ()) in
  check "always-false guard proven dead" true
    (r.Report.dead_proven = [ "never" ]);
  check "satisfiable guard reported live" true
    (List.mem "bump" cov.Snapcc_statics.Exact.live);
  (* reclassify a sampled report on that evidence *)
  let module An = Snapcc_statics.Analyze.Make (Deadish) in
  let s = An.analyze ~seeds:4 ~max_configs:40 ~topo:"pair" (pair ()) in
  check "sampled tier suspects the dead action" true
    (List.mem "never" s.Report.dead);
  let s' =
    Report.classify_dead ~proven:r.Report.dead_proven
      ~live:cov.Snapcc_statics.Exact.live s
  in
  check "suspect moved to proven" true (List.mem "never" s'.Report.dead_proven);
  check "no unclassified suspects remain" true (s'.Report.dead = []);
  check "machine lines distinguish the proof" true
    (List.exists
       (fun l ->
         List.exists
           (fun part -> part = "proven=dead-action")
           (String.split_on_char ' ' l))
       (Report.to_lines s'))

(* ---- exact vs sampled agreement: CC1/CC2/CC3 over single2 and line3
   (the acceptance families).  Every sampled violation must be reproduced
   by the exact tier (here: both are clean), and with a complete exact
   pass every sampled dead suspect must classify as proven or
   unreached-in-sample. ---- *)

let test_exact_agreement () =
  List.iter
    (fun key ->
      let entry = Option.get (Snapcc_mc.Systems.find key) in
      let module S = (val entry.Snapcc_mc.Systems.make "tree") in
      let module An = Snapcc_statics.Analyze.Make (S) in
      let module Ex = Snapcc_statics.Exact.Make (S) in
      List.iter
        (fun (topo, h) ->
          let tag = key ^ " on " ^ topo in
          let sampled = An.analyze ~seeds:8 ~max_configs:80 ~topo h in
          let exact, cov, _ = Ex.run ~algo:S.name ~topo h in
          check (tag ^ ": sampled clean") true (Report.ok sampled);
          check (tag ^ ": exact clean") true (Report.ok exact);
          check (tag ^ ": exact pass complete") true
            cov.Snapcc_statics.Exact.complete;
          check (tag ^ ": tiers agree") true
            (Snapcc_statics.Exact.agreement ~exact ~sampled = []);
          let s' =
            Report.classify_dead ~proven:exact.Report.dead_proven
              ~live:cov.Snapcc_statics.Exact.live sampled
          in
          check (tag ^ ": every dead suspect classified") true
            (s'.Report.dead = []))
        [ ("single2", Families.single 2); ("line3", Families.path 3) ])
    [ "cc1"; "cc2"; "cc3" ]

(* ---- table artifacts round-trip ---- *)

let test_artifact_round_trip () =
  let entry = Option.get (Snapcc_mc.Systems.find "cc1") in
  let module S = (val entry.Snapcc_mc.Systems.make "tree") in
  let module Tb = Snapcc_mc.Tables.Make (S) in
  let t = Tb.build (Families.single 2) in
  check "tables stored" true (Tb.built t);
  let p = Tb.to_portable ~algo:"cc1" ~topo:"single2" t in
  let module A = Snapcc_statics.Artifact in
  (match A.of_lines (A.to_lines p) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok p' -> check "lines round-trip preserves the tables" true (p = p'));
  let file = Filename.temp_file "snapcc-tables" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      A.save file p;
      match A.load file with
      | Error e -> Alcotest.failf "file round-trip failed: %s" e
      | Ok p' -> check "file round-trip preserves the tables" true (p = p'));
  (match A.of_lines [ "bogus" ] with
  | Ok _ -> Alcotest.fail "bad magic accepted"
  | Error _ -> ())

let suite =
  [ ( "statics",
      [ Alcotest.test_case "non-local read fires locality" `Quick test_nonlocal_fires;
        Alcotest.test_case "foreign in-place write fires write-ownership" `Quick
          test_foreign_write_fires;
        Alcotest.test_case "hidden global state fires determinism" `Quick
          test_nondet_fires;
        Alcotest.test_case "CC1/CC2/CC3 and both baselines pass clean" `Quick
          test_clean_passes;
        Alcotest.test_case "overlap and interference statistics" `Quick
          test_structural_stats;
        Alcotest.test_case "dynamic check_locality agrees with the static pass"
          `Quick test_engine_check_locality_agrees;
        Alcotest.test_case "allow-waiver path" `Quick test_waiver_path;
        Alcotest.test_case "exact tier: broken fixtures fire" `Quick
          test_exact_fixtures_fire;
        Alcotest.test_case "exact tier: dead-action proofs and reclassification"
          `Quick test_exact_dead_classification;
        Alcotest.test_case "exact vs sampled agreement (cc1/cc2/cc3)" `Quick
          test_exact_agreement;
        Alcotest.test_case "table artifact round-trip" `Quick
          test_artifact_round_trip;
      ] );
  ]
