(** Wald's sequential probability ratio test over Bernoulli trials.

    Tests the claim "P(success) >= theta" with an indifference region
    [theta - delta, theta + delta]: the log-likelihood ratio of
    H1 (p = theta + delta) against H0 (p = theta - delta) is accumulated
    per observation and compared with Wald's bounds
    [log((1-beta)/alpha)] (accept) and [log(beta/(1-alpha))] (reject) —
    early stopping with guaranteed error rates.  Once decided, further
    {!feed}s are no-ops, so feeding a fixed-size batch past the decision
    point cannot change the verdict or [consumed] — the parallel runner
    relies on this for worker-count independence. *)

type spec = {
  theta : float;  (** claimed success probability, in [0,1] *)
  delta : float;  (** indifference half-width, positive *)
  alpha : float;  (** false-accept bound, in (0,1) *)
  beta : float;  (** false-reject bound, in (0,1) *)
}

type verdict = Accepted | Rejected | Undecided

type t

type outcome = {
  spec : spec;
  verdict : verdict;
  consumed : int;  (** observations fed before (and including) the decision *)
  successes : int;
  llr : float;  (** final log-likelihood ratio *)
}

val create : spec -> t
(** Raises [Invalid_argument] on out-of-range parameters.  [theta]s
    within [delta] of 0 or 1 are handled by clamping the hypothesis
    probabilities away from the endpoints. *)

val feed : t -> bool -> unit
(** Feed one observation; no-op once decided. *)

val verdict : t -> verdict

val outcome : t -> outcome

val verdict_name : verdict -> string
(** ["accepted"] / ["rejected"] / ["undecided"] — the JSON tag. *)
