(** Common observation layer.

    Every algorithm in the repository (CC1/CC2/CC3, the token substrate, the
    baselines) projects its per-process state onto this record, so that
    monitors, metrics, trace printers and experiments are written once,
    against the vocabulary of the paper (§2.3, §4.2): statuses, edge
    pointers, token flags. *)

type status = Idle | Looking | Waiting | Done

type t = {
  status : status;
  pointer : int option;  (** [Pp]: committee (edge id) pointed at, if any *)
  token_flag : bool;  (** the mirrored variable [Tp] *)
  locked : bool;  (** [Lp] (CC2/CC3 only; [false] elsewhere) *)
  has_token : bool;  (** the [Token(p)] input predicate from [TC] *)
  discussions : int;  (** number of essential discussions executed so far *)
}

val make :
  ?pointer:int option -> ?token_flag:bool -> ?locked:bool -> ?has_token:bool ->
  ?discussions:int -> status -> t

val code : t -> int
(** Dense packing of every field but [discussions] (2 status bits, the
    three flags, pointer biased by one) — the [obs_code] payload of causal
    [Clock] events. *)

val of_code : code:int -> discussions:int -> t
(** Exact inverse of {!code}, the discussions counter supplied
    separately. *)

val equal : t -> t -> bool
val pp_status : Format.formatter -> status -> unit
val pp : Format.formatter -> t -> unit

val is_waiting : t -> bool
(** Waiting in the sense of the original problem (§4.2): status is
    [Looking] or [Waiting]. *)

val attends : t array -> vertex:int -> eid:int -> bool
(** [p] is waiting and points at committee [eid] (§4.2). *)

val meets : Snapcc_hypergraph.Hypergraph.t -> t array -> int -> bool
(** A committee meets iff every member points at it with status in
    [{Waiting; Done}] (§4.2). *)

val meetings : Snapcc_hypergraph.Hypergraph.t -> t array -> int list
(** Committees currently meeting, ascending edge ids. *)

val participants : Snapcc_hypergraph.Hypergraph.t -> t array -> int list
(** Vertices participating in some meeting. *)

val pp_snapshot : Snapcc_hypergraph.Hypergraph.t -> Format.formatter -> t array -> unit
(** One-line-per-professor rendering of a configuration, using paper
    identifiers. *)
