type kind =
  | Wait
  | Meeting
  | Handoff
  | Recovery

let kind_name = function
  | Wait -> "wait"
  | Meeting -> "meeting"
  | Handoff -> "handoff"
  | Recovery -> "recovery"

type span = {
  kind : kind;
  subject : int;
  open_step : int;
  close_step : int;
  duration : int;
}

type tracker = {
  registry : Registry.t;
  mutable rev_spans : span list;
  wait_open : (int, int) Hashtbl.t;  (* p -> open step *)
  meeting_open : (int, int) Hashtbl.t;  (* eid -> convene step *)
  mutable last_handoff : (int * int) option;  (* holder, step *)
  mutable fault_at : int option;  (* earliest unrecovered fault *)
}

let create () =
  {
    registry = Registry.create ();
    rev_spans = [];
    wait_open = Hashtbl.create 16;
    meeting_open = Hashtbl.create 16;
    last_handoff = None;
    fault_at = None;
  }

let close t ~kind ~subject ~open_step ~close_step ~duration =
  t.rev_spans <- { kind; subject; open_step; close_step; duration } :: t.rev_spans;
  Registry.observe
    (Registry.histogram t.registry ("span_" ^ kind_name kind ^ "_steps"))
    duration

let feed t (ev : Event.t) =
  match ev with
  | Event.Wait_open { step; p; _ } -> Hashtbl.replace t.wait_open p step
  | Event.Wait_close { step; p; waited_steps; _ } ->
    let open_step =
      match Hashtbl.find_opt t.wait_open p with
      | Some s -> s
      | None -> step - waited_steps
    in
    Hashtbl.remove t.wait_open p;
    close t ~kind:Wait ~subject:p ~open_step ~close_step:step
      ~duration:waited_steps
  | Event.Convene { step; eid; _ } -> Hashtbl.replace t.meeting_open eid step
  | Event.Terminate { step; eid; _ } -> (
    match Hashtbl.find_opt t.meeting_open eid with
    | None -> ()
    | Some open_step ->
      Hashtbl.remove t.meeting_open eid;
      close t ~kind:Meeting ~subject:eid ~open_step ~close_step:step
        ~duration:(step - open_step))
  | Event.Token_handoff { step; p } ->
    (match t.last_handoff with
     | Some (_, prev) ->
       close t ~kind:Handoff ~subject:p ~open_step:prev ~close_step:step
         ~duration:(step - prev)
     | None -> ());
    t.last_handoff <- Some (p, step)
  | Event.Fault { step; _ } ->
    if t.fault_at = None then t.fault_at <- Some step
  | Event.Recover { step; _ } -> (
    match t.fault_at with
    | None -> ()
    | Some open_step ->
      t.fault_at <- None;
      close t ~kind:Recovery ~subject:0 ~open_step ~close_step:step
        ~duration:(step - open_step))
  | _ -> ()

let spans t = List.rev t.rev_spans

let open_spans t =
  let waits =
    Hashtbl.fold (fun p s acc -> (Wait, p, s) :: acc) t.wait_open []
  in
  let meetings =
    Hashtbl.fold (fun e s acc -> (Meeting, e, s) :: acc) t.meeting_open []
  in
  let faults =
    match t.fault_at with None -> [] | Some s -> [ (Recovery, 0, s) ]
  in
  List.sort compare (waits @ meetings @ faults)

let registry t = t.registry

let summary_json t =
  let per_kind kind =
    let h = Registry.histogram t.registry ("span_" ^ kind_name kind ^ "_steps") in
    let count = Registry.hist_count h in
    let vals = Registry.hist_values h in
    let sum = List.fold_left ( + ) 0 vals in
    ( kind_name kind,
      Json.Obj
        [ ("count", Json.Int count);
          ("mean_steps",
           Json.Float
             (if count = 0 then 0. else float_of_int sum /. float_of_int count));
          ("p50_steps", Json.Int (Registry.percentile 0.50 h));
          ("p90_steps", Json.Int (Registry.percentile 0.90 h));
          ("p95_steps", Json.Int (Registry.percentile 0.95 h));
          ("p99_steps", Json.Int (Registry.percentile 0.99 h));
          ("max_steps", Json.Int (List.fold_left max 0 vals)) ] )
  in
  Json.Obj (List.map per_kind [ Wait; Meeting; Handoff; Recovery ])
