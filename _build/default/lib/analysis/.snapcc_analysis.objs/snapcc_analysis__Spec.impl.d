lib/analysis/spec.ml: Array Format List Printf Snapcc_hypergraph Snapcc_runtime
