(* Static symmetry admission (lib/statics/symmetry) and quotient
   exploration (lib/mc/explore ?symmetry): the admitted groups are the
   expected ones (the vring counter gauge; nothing else survives the
   id-based tie-breaks), quotient and full exploration agree on every
   verdict with the state count divided exactly by the group order,
   lifted counterexamples replay concretely, and the snapcc-orbits
   certificates round-trip through the independent verifier (which also
   rejects tampered ones). *)

open Snapcc_mc
module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Sy = Snapcc_mc.Symmetry
module Sym = Snapcc_statics.Symmetry

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let single2 = Families.single 2
let line3 = Families.by_name "line3"
let triangle = Families.pair_ring 3

let system key =
  match Systems.find key with
  | Some e -> e
  | None -> Alcotest.failf "unknown system %s" key

(* ---- admission: the vring counter gauge and only it ---- *)

(* Run the analyzer for (key, token, h).  All parity tests below go
   through here so the group used for quotienting is always an admitted
   one (the soundness precondition of ?symmetry). *)
let analyze key token h =
  let entry = system key in
  let module S = (val entry.Systems.make token) in
  let module Tb = Tables.Make (S) in
  let module A = Sym.Make (S) in
  let tb = Tb.build h in
  A.run h ~tables:tb

let test_admission_vring_gauge () =
  (* the counter shift v ↦ v+1 mod K with K = n+1 generates Z_{n+1} *)
  List.iter
    (fun (key, h, topo, k) ->
      let so = analyze key "vring" h in
      let tag = key ^ "/vring/" ^ topo in
      checki (tag ^ " admits Z_" ^ string_of_int k) k (Sy.order so.Sym.group);
      check (tag ^ " vring-shift admitted") true
        (List.mem "vring-shift" so.Sym.admitted);
      check (tag ^ " group closed") true so.Sym.group.Sy.complete)
    [ ("cc1", single2, "single2", 3);
      ("cc2", single2, "single2", 3);
      ("cc3", single2, "single2", 3);
      ("cc1", line3, "line3", 4) ]

let test_admission_rejects_vertex_permutations () =
  (* cc1/cc2/cc3 break ties by process identifier, so no non-trivial
     vertex permutation commutes — over the null token (no internal
     symmetry to rescue the group) the admitted group is trivial even
     though the triangle has non-trivial structural automorphisms *)
  let so = analyze "cc1" "null" triangle in
  check "triangle has structural automorphisms" true (so.Sym.aut_order > 1);
  check "candidates were examined" true (so.Sym.candidates > 0);
  checki "cc1/null/triangle admits only the identity" 1
    (Sy.order so.Sym.group);
  check "every candidate carries a rejection reason" true
    (List.length so.Sym.rejected = so.Sym.candidates)

let test_admission_inverted_priority_trivial () =
  (* cc1-inverted (priority order inverted) must admit only the trivial
     group over a counter-free token; the vring gauge would survive the
     inversion, so the discriminating check uses `tree' *)
  let so = analyze "cc1-inverted" "tree" single2 in
  checki "cc1-inverted/tree/single2 admits only the identity" 1
    (Sy.order so.Sym.group);
  check "admitted list empty" true (so.Sym.admitted = [])

(* ---- parity: quotient vs full exploration ---- *)

let fairness_ok ~n ~n_configs ~succs ~convenes ~enabled ~waiting =
  let v =
    Fairness.analyze ~n ~n_configs ~succs ~convenes ~enabled_mask:enabled
      ~committee_waiting:waiting ()
  in
  (v.Fairness.deadlocks = [], v.Fairness.livelocks = [])

let parity key token h topo expect_order =
  let entry = system key in
  let module S = (val entry.Systems.make token) in
  let module Tb = Tables.Make (S) in
  let module A = Sym.Make (S) in
  let module Ex = Explore.Make (S) in
  let tag = key ^ "/" ^ token ^ "/" ^ topo in
  let tb = Tb.build h in
  let so = A.run h ~tables:tb in
  checki (tag ^ " expected group order") expect_order (Sy.order so.Sym.group);
  let full = Ex.explore ~tables:tb h in
  let quot = Ex.explore ~tables:tb ~symmetry:so.Sym.group h in
  check (tag ^ " full complete") true (Ex.complete full);
  check (tag ^ " quotient complete") true (Ex.complete quot);
  checki (tag ^ " quotient order recorded") expect_order
    (Ex.symmetry_order quot);
  (* the vring gauge acts freely (it shifts every counter), so the
     division is exact, not just an upper bound *)
  checki
    (tag ^ " configs divided exactly by the group order")
    (Ex.n_configs full)
    (Ex.n_configs quot * expect_order);
  check (tag ^ " same safety verdict") true
    (Ex.violations full = [] && Ex.violations quot = []);
  check (tag ^ " both domains closed") true
    (Ex.escapees full = [] && Ex.escapees quot = []);
  check (tag ^ " no dead action appears under quotienting") true
    (Ex.dead_actions quot = Ex.dead_actions full);
  let verdict r =
    fairness_ok ~n:(H.n h) ~n_configs:(Ex.n_configs r)
      ~succs:(Ex.succs_inout r) ~convenes:(Ex.convening r)
      ~enabled:(Ex.enabled_inout r) ~waiting:(Ex.committee_waiting r)
  in
  let fd, fl = verdict full and qd, ql = verdict quot in
  check (tag ^ " same deadlock verdict") true (fd = qd);
  check (tag ^ " same livelock verdict") true (fl = ql);
  check (tag ^ " no deadlock, no livelock") true (fd && fl)

let test_parity_cc1_single2 () = parity "cc1" "vring" single2 "single2" 3
let test_parity_cc2_single2 () = parity "cc2" "vring" single2 "single2" 3
let test_parity_cc3_single2 () = parity "cc3" "vring" single2 "single2" 3
let test_parity_cc1_line3 () = parity "cc1" "vring" line3 "line3" 4

(* ---- counterexample lifting: quotient paths replay concretely ---- *)

let test_lifted_cex_replays () =
  let entry = system "cc1-noready" in
  let module S = (val entry.Systems.make "vring") in
  let module Tb = Tables.Make (S) in
  let module A = Sym.Make (S) in
  let module Ex = Explore.Make (S) in
  let module CexM = Counterexample.Make (S) in
  let h = single2 in
  let tb = Tb.build h in
  let so = A.run h ~tables:tb in
  check "cc1-noready still admits the vring gauge" true
    (Sy.order so.Sym.group > 1);
  let r = Ex.explore ~tables:tb ~symmetry:so.Sym.group h in
  let v =
    match Ex.violations r with
    | v :: _ -> v
    | [] -> Alcotest.fail "cc1-noready: no violation under quotienting"
  in
  Alcotest.(check string)
    "violated rule is synchronization" "synchronization" v.Explore.rule;
  let root, steps = Ex.path_to r v.Explore.source in
  let steps =
    steps
    @
    if v.Explore.mode >= 0 then
      [ (v.Explore.mode, Ex.lift_selection r v.Explore.source v.Explore.selected) ]
    else []
  in
  let cex =
    Counterexample.of_safety ~algo:"cc1-noready" ~token:"vring" ~topo:"single2"
      ~rule:v.Explore.rule ~detail:v.Explore.detail ~init:root ~steps
  in
  match CexM.replay h cex with
  | CexM.Reproduced _ -> ()
  | CexM.Not_reproduced msg | CexM.Invalid msg ->
    Alcotest.failf "lifted counterexample did not replay: %s" msg

(* ---- certificates: round-trip, verifier, tamper rejection ---- *)

let cert_of key token h topo =
  let so = analyze key token h in
  Sym.certificate ~algo:key ~topo h so

let test_certificate_verifies () =
  let lines = cert_of "cc1" "vring" single2 "single2" in
  (match Sym.verify lines with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "certificate rejected: %s" msg);
  (* a trivial-group certificate is also valid *)
  let trivial = cert_of "cc1" "null" triangle "triangle3" in
  match Sym.verify trivial with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trivial certificate rejected: %s" msg

let test_certificate_file_roundtrip () =
  let entry = system "cc1" in
  let module S = (val entry.Systems.make "vring") in
  let module Tb = Tables.Make (S) in
  let module A = Sym.Make (S) in
  let so = A.run single2 ~tables:(Tb.build single2) in
  let file = Filename.temp_file "ccsim-orbits" ".txt" in
  Sym.save file ~algo:"cc1" ~topo:"single2" single2 so;
  let r = Sym.verify_file file in
  Sys.remove file;
  match r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "saved certificate rejected: %s" msg

let tampered lines ~pre ~subst =
  let hit = ref false in
  let out =
    List.map
      (fun l ->
        if (not !hit) && String.length l >= String.length pre
           && String.sub l 0 (String.length pre) = pre
        then begin
          hit := true;
          subst l
        end
        else l)
      lines
  in
  check ("tampered a `" ^ pre ^ "' line") true !hit;
  out

let test_certificate_tamper_rejected () =
  let lines = cert_of "cc1" "vring" single2 "single2" in
  let rejects what l =
    match Sym.verify l with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "verifier accepted %s" what
  in
  rejects "a wrong group order"
    (tampered lines ~pre:"group-order " ~subst:(fun _ -> "group-order 7"));
  rejects "a non-permutation pi"
    (tampered lines ~pre:"pi " ~subst:(fun _ -> "pi 0 0"));
  rejects "a non-bijective transport"
    (tampered lines ~pre:"sigma "
       ~subst:(fun l ->
         (* duplicate the last id: sigma stops being a bijection *)
         match String.rindex_opt l ' ' with
         | Some i ->
           let last = String.sub l (i + 1) (String.length l - i - 1) in
           l ^ " " ^ last
         | None -> l));
  rejects "a truncated certificate"
    (List.filter (fun l -> l <> "end") lines)

let suite =
  [ ( "symmetry",
      [ Alcotest.test_case "admission: vring gauge is Z_{n+1}" `Quick
          test_admission_vring_gauge;
        Alcotest.test_case "admission: id tie-breaks reject vertex perms"
          `Quick test_admission_rejects_vertex_permutations;
        Alcotest.test_case "admission: inverted priority admits nothing"
          `Quick test_admission_inverted_priority_trivial;
        Alcotest.test_case "parity: cc1/vring on single2" `Quick
          test_parity_cc1_single2;
        Alcotest.test_case "parity: cc2/vring on single2" `Quick
          test_parity_cc2_single2;
        Alcotest.test_case "parity: cc3/vring on single2" `Quick
          test_parity_cc3_single2;
        Alcotest.test_case "parity: cc1/vring on line3" `Slow
          test_parity_cc1_line3;
        Alcotest.test_case "lifted counterexample replays" `Quick
          test_lifted_cex_replays;
        Alcotest.test_case "certificate verifies (incl. trivial group)"
          `Quick test_certificate_verifies;
        Alcotest.test_case "certificate file round-trip" `Quick
          test_certificate_file_roundtrip;
        Alcotest.test_case "certificate tampering rejected" `Quick
          test_certificate_tamper_rejected ] ) ]
