(** Dijkstra's K-state token circulation on the {e virtual ring} of process
    indices [0 -> 1 -> ... -> n-1 -> 0].

    Self-stabilizing with [K = n+1] {e provided the token keeps moving}
    (Dijkstra's convergence needs the master's moves, which here are
    releases).  The ring ignores the communication topology, so this layer
    is an {e oracle}: it violates locality, and exists to unit-test the CC
    layers in isolation from the tree substrate.  {!Token_tree} is the
    honest implementation — and, unlike this one, it stabilizes
    independently of releases (Property 1's third bullet). *)

type state = { v : int }
(** The Dijkstra counter (exposed so experiments can build exact initial
    configurations). *)

include Layer.S with type state := state
