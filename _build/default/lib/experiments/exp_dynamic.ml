(** EXP-DYN — the paper's future-work item on {e dynamic hypergraphs}:
    professors enter and leave, committees are created and dissolved.

    Snap-stabilization gives the reconfiguration story for free: a topology
    change is, from the algorithm's point of view, a transient fault — the
    configuration it finds itself in was not produced by its own execution
    on the new hypergraph.  We replay a five-phase scenario on Fig. 1's
    department (create a committee, dissolve the big one, a professor joins
    with two committees, the professor leaves again), carrying each
    process' raw state across the change (dangling committee pointers are
    the fault).  Per phase we check: zero violations, meetings resume
    quickly, and professor fairness holds end-to-end. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics
module Cc = Snapcc_core.Cc23

(* The five phases.  Vertex indices are stable: professors are appended at
   the end and only the last professor ever leaves. *)
let phases () =
  let fig1 = [ [ 0; 1 ]; [ 0; 1; 2; 3 ]; [ 1; 3; 4 ]; [ 2; 5 ]; [ 3; 5 ] ] in
  [ ("fig1", H.create ~n:6 fig1);
    ("+ committee {5,6}", H.create ~n:6 (fig1 @ [ [ 4; 5 ] ]));
    ("- committee {1,2,3,4}",
     H.create ~n:6 [ [ 0; 1 ]; [ 1; 3; 4 ]; [ 2; 5 ]; [ 3; 5 ]; [ 4; 5 ]; [ 0; 3 ] ]);
    ("+ professor 7",
     H.create ~n:7
       [ [ 0; 1 ]; [ 1; 3; 4 ]; [ 2; 5 ]; [ 3; 5 ]; [ 4; 5 ]; [ 0; 3 ]; [ 5; 6 ]; [ 1; 6 ] ]);
    ("- professor 7",
     H.create ~n:6 [ [ 0; 1 ]; [ 1; 3; 4 ]; [ 2; 5 ]; [ 3; 5 ]; [ 4; 5 ]; [ 0; 3 ] ]);
  ]

(* committee with the same member set in the new hypergraph, if any *)
let remap_edge ~old_h ~new_h e =
  let members = H.edge_members old_h e in
  let rec scan e' =
    if e' >= H.m new_h then None
    else if H.edge_members new_h e' = members then Some e'
    else scan (e' + 1)
  in
  scan 0

(* Carry raw states across the topology change; whatever does not survive
   (dangling pointers, stale trees) is exactly the transient fault the
   algorithms must absorb. *)
let translate ~old_h ~new_h (states : Cc.cc array) tc_states =
  let fresh_tc = Snapcc_token.Token_tree.init new_h in
  Array.init (H.n new_h) (fun p ->
      if p < Array.length states then begin
        let cc = states.(p) in
        let ptr = Option.bind cc.Cc.ptr (remap_edge ~old_h ~new_h) in
        let cc =
          match ptr with
          | None when cc.Cc.ptr <> None ->
            (* its committee dissolved mid-meeting: the dangling state *)
            { cc with Cc.ptr = None }
          | _ -> { cc with Cc.ptr = ptr }
        in
        (cc, tc_states.(p))
      end
      else
        (* a brand new professor enters looking *)
        ({ Cc.s = Snapcc_core.Cc_common.Looking; ptr = None; tf = false;
           lk = false; cur = 0; disc = 0 },
         fresh_tc p))

type phase_stats = {
  label : string;
  n : int;
  m : int;
  convenes : int;
  violations : int;
  first_convene : int option;  (** step of the first post-change meeting *)
  unserved : int;
}

type result = phase_stats list

let run ?(quick = false) () : result =
  let steps = if quick then 5_000 else 15_000 in
  let carried = ref None in
  List.mapi
    (fun i (label, h) ->
      let init_states =
        match !carried with
        | None -> None
        | Some (old_h, states) ->
          let cc = Array.map fst states and tc = Array.map snd states in
          Some (translate ~old_h ~new_h:h cc tc)
      in
      let r, final_states =
        Algos.Run_cc2.run_with_states ~seed:(40 + i) ?init_states
          ~daemon:(Daemon.random_subset ())
          ~workload:(Workload.always_requesting h) ~steps h
      in
      carried := Some (h, final_states);
      {
        label;
        n = H.n h;
        m = H.m h;
        convenes = r.Driver.summary.Metrics.convenes;
        violations = List.length r.Driver.violations;
        first_convene =
          (match r.Driver.convened with (s, _) :: _ -> Some s | [] -> None);
        unserved =
          Array.fold_left
            (fun a c -> if c = 0 then a + 1 else a)
            0 r.Driver.participations;
      })
    (phases ())

let table (r : result) =
  {
    Table.id = "dynamic-hypergraph";
    title =
      "Section 7 future work - dynamic hypergraphs: reconfiguration as a \
       transient fault (CC2)";
    header =
      [ "phase"; "n"; "m"; "convenes"; "violations"; "first convene (step)";
        "unserved" ];
    rows =
      List.map
        (fun p ->
          [ p.label; Table.i p.n; Table.i p.m; Table.i p.convenes;
            Table.i p.violations;
            (match p.first_convene with Some s -> Table.i s | None -> "-");
            Table.i p.unserved ])
        r;
    notes =
      [ "States are carried raw across each change (new committees unknown, \
         dissolved committees leave dangling pointers, a leaving professor \
         truncates the tree): exactly a transient fault, absorbed with zero \
         violations and immediate resumption.";
      ];
  }

let ok (r : result) =
  List.for_all
    (fun p -> p.violations = 0 && p.convenes > 0 && p.unserved = 0)
    r
  && List.for_all (fun p -> match p.first_convene with Some s -> s < 2_000 | None -> false) r
