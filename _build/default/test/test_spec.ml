(* The specification monitor itself: each rule must fire on handcrafted
   violating transitions and stay silent on conforming ones. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Obs = Snapcc_runtime.Obs
module Spec = Snapcc_analysis.Spec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* fig2: e0={1,2}(v0,v1) e1={1,3,5}(v0,v2,v4) e2={3,4}(v2,v3) *)
let h () = Families.fig2 ()

let idle = Obs.make Obs.Idle

let member status eid ~disc =
  Obs.make ~pointer:(Some eid) ~discussions:disc status

let all_idle n = Array.make n idle

let rules t = List.map (fun (v : Spec.violation) -> v.Spec.rule) (Spec.violations t)

let no_out _ = false
let all_out _ = true

let test_clean_convene_terminate () =
  let h = h () in
  let t = Spec.create h ~initial:(all_idle 5) in
  (* professors 3,4 point and look, then wait: e2 convenes *)
  let before =
    [| idle; idle; member Obs.Looking 2 ~disc:0; member Obs.Looking 2 ~disc:0; idle |]
  in
  let mid =
    [| idle; idle; member Obs.Waiting 2 ~disc:0; member Obs.Waiting 2 ~disc:0; idle |]
  in
  Spec.on_step t ~step:1 ~request_out:no_out ~before ~after:mid;
  (* both discuss *)
  let done_ =
    [| idle; idle; member Obs.Done 2 ~disc:1; member Obs.Done 2 ~disc:1; idle |]
  in
  Spec.on_step t ~step:2 ~request_out:no_out ~before:mid ~after:done_;
  (* one leaves with RequestOut *)
  let after = [| idle; idle; member Obs.Done 2 ~disc:1; idle; idle |] in
  Spec.on_step t ~step:3 ~request_out:all_out ~before:done_ ~after;
  check "clean lifecycle has no violations" true (Spec.ok t);
  check_int "one convene" 1 (List.length (Spec.convened t));
  check_int "participations of prof 3" 1 (Spec.participations t).(2)

let test_exclusion_rule () =
  let h = h () in
  let t = Spec.create h ~initial:(all_idle 5) in
  (* In the pointer model two conflicting committees cannot both meet (the
     shared member points at one committee) — Lemma 1 is structural.  The
     monitor's exclusion rule exists for algorithms with different state
     projections; here we check it stays silent on disjoint simultaneous
     meetings. *)
  let before =
    [| member Obs.Looking 0 ~disc:0;
       member Obs.Looking 0 ~disc:0;
       member Obs.Looking 2 ~disc:0;
       member Obs.Looking 2 ~disc:0;
       idle |]
  in
  let after =
    [| member Obs.Waiting 0 ~disc:0;
       member Obs.Waiting 0 ~disc:0;
       member Obs.Waiting 2 ~disc:0;
       member Obs.Waiting 2 ~disc:0;
       idle |]
  in
  Spec.on_step t ~step:1 ~request_out:no_out ~before ~after;
  check "disjoint meetings fine" true (Spec.ok t)

let test_synchronization_rule () =
  let h = h () in
  let t = Spec.create h ~initial:(all_idle 5) in
  (* e2 convenes while professor 3 (v2) was done in before *)
  let before =
    [| idle; idle; member Obs.Done 2 ~disc:3; member Obs.Looking 2 ~disc:0; idle |]
  in
  let after =
    [| idle; idle; member Obs.Done 2 ~disc:3; member Obs.Waiting 2 ~disc:0; idle |]
  in
  Spec.on_step t ~step:1 ~request_out:no_out ~before ~after;
  check "synchronization violation detected" true
    (List.mem "synchronization" (rules t))

let test_essential_discussion_rule () =
  let h = h () in
  let t = Spec.create h ~initial:(all_idle 5) in
  let looking_m = [| idle; idle; member Obs.Looking 2 ~disc:0; member Obs.Looking 2 ~disc:0; idle |] in
  let waiting = [| idle; idle; member Obs.Waiting 2 ~disc:0; member Obs.Waiting 2 ~disc:0; idle |] in
  Spec.on_step t ~step:1 ~request_out:no_out ~before:looking_m ~after:waiting;
  (* meeting breaks while professor 4 (v3) is still waiting: no discussion *)
  let after = [| idle; idle; idle; member Obs.Waiting 2 ~disc:0; idle |] in
  Spec.on_step t ~step:2 ~request_out:all_out ~before:waiting ~after;
  check "essential discussion violation detected" true
    (List.mem "essential-discussion" (rules t))

let test_voluntary_discussion_rule () =
  let h = h () in
  let t = Spec.create h ~initial:(all_idle 5) in
  let waiting = [| idle; idle; member Obs.Waiting 2 ~disc:0; member Obs.Waiting 2 ~disc:0; idle |] in
  let done_ = [| idle; idle; member Obs.Done 2 ~disc:1; member Obs.Done 2 ~disc:1; idle |] in
  Spec.on_step t ~step:1 ~request_out:no_out
    ~before:[| idle; idle; member Obs.Looking 2 ~disc:0; member Obs.Looking 2 ~disc:0; idle |]
    ~after:waiting;
  Spec.on_step t ~step:2 ~request_out:no_out ~before:waiting ~after:done_;
  (* termination with request_out false everywhere *)
  let after = [| idle; idle; idle; member Obs.Done 2 ~disc:1; idle |] in
  Spec.on_step t ~step:3 ~request_out:no_out ~before:done_ ~after;
  check "voluntary discussion violation detected" true
    (List.mem "voluntary-discussion" (rules t))

let test_initial_meetings_exempt () =
  let h = h () in
  (* e2 already meets in the (arbitrary) initial configuration *)
  let initial =
    [| idle; idle; member Obs.Waiting 2 ~disc:0; member Obs.Done 2 ~disc:0; idle |]
  in
  let t = Spec.create h ~initial in
  (* it breaks up rudely: no violation, it predates the observation *)
  let after = [| idle; idle; idle; member Obs.Done 2 ~disc:0; idle |] in
  Spec.on_step t ~step:1 ~request_out:no_out ~before:initial ~after;
  check "inherited meetings are exempt" true (Spec.ok t)

let test_fault_exemption () =
  let h = h () in
  let t = Spec.create h ~initial:(all_idle 5) in
  (* a fault materializes a meeting out of thin air *)
  let corrupted =
    [| idle; idle; member Obs.Waiting 2 ~disc:0; member Obs.Done 2 ~disc:0; idle |]
  in
  Spec.on_fault t corrupted;
  let after = [| idle; idle; idle; member Obs.Done 2 ~disc:0; idle |] in
  Spec.on_step t ~step:5 ~request_out:no_out ~before:corrupted ~after;
  check "post-fault meetings are exempt" true (Spec.ok t)

let test_lemma2_shape () =
  let h = h () in
  let t = Spec.create h ~initial:(all_idle 5) in
  (* meeting convenes with a member already done in after: Lemma 2 broken *)
  let before =
    [| idle; idle; member Obs.Looking 2 ~disc:0; member Obs.Looking 2 ~disc:0; idle |]
  in
  let after =
    [| idle; idle; member Obs.Waiting 2 ~disc:0; member Obs.Done 2 ~disc:1; idle |]
  in
  Spec.on_step t ~step:1 ~request_out:no_out ~before ~after;
  check "Lemma 2 check fires" true (List.mem "synchronization" (rules t))

let suite =
  [ ( "spec-monitor",
      [ Alcotest.test_case "clean lifecycle" `Quick test_clean_convene_terminate;
        Alcotest.test_case "exclusion rule" `Quick test_exclusion_rule;
        Alcotest.test_case "synchronization rule" `Quick test_synchronization_rule;
        Alcotest.test_case "essential discussion rule" `Quick
          test_essential_discussion_rule;
        Alcotest.test_case "voluntary discussion rule" `Quick
          test_voluntary_discussion_rule;
        Alcotest.test_case "initial meetings exempt" `Quick
          test_initial_meetings_exempt;
        Alcotest.test_case "fault exemption" `Quick test_fault_exemption;
        Alcotest.test_case "Lemma 2 shape at convene" `Quick test_lemma2_shape;
      ] );
  ]
