(** EXP-T45 — Theorems 4 & 5 (and the CC1 side of Theorem 2): the degree of
    fair concurrency.

    Professors never leave their meetings ({!Workload.infinite_meetings},
    the Definition 5 artefact); the system reaches a quiescent state whose
    meetings we count.  Over a sample of daemons and seeds:
    - CC1's quiescent meetings must form a {e maximal matching} of the
      hypergraph (Maximal Concurrency), hence at least [minMM] of them;
    - CC2's count must be at least [min MM∪AMM] (Theorem 4), itself at
      least [minMM - MaxMin + 1] (Theorem 5);
    - CC3's count must be at least [min MM∪AMM'] (Theorem 7), itself at
      least [minMM - MaxHEdge + 1] (Theorem 8). *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Matching = Snapcc_hypergraph.Matching
module Obs = Snapcc_runtime.Obs
module Workload = Snapcc_workload.Workload

type algo_sample = {
  min_meetings : int;
  max_meetings : int;
  always_maximal : bool;  (** every quiescent state was a maximal matching *)
  runs : int;
}

type topo_result = {
  topo : string;
  bounds : Matching.bounds;
  cc1 : algo_sample;
  cc2 : algo_sample;
  cc3 : algo_sample;
}

type result = topo_result list

let topologies ~quick () =
  let base =
    [ ("fig2", Families.fig2 ());
      ("fig4", Families.fig4 ());
      ("ring6", Families.pair_ring 6);
      ("star5", Families.star 5);
    ]
  in
  if quick then base
  else
    base
    @ [ ("path7", Families.path 7);
        ("single4", Families.single 4);
        ("triring9", Families.k_uniform_ring ~n:9 ~k:3);
        ("fig1", Families.fig1 ());
      ]

let sample ~quick (runner : Algos.runner) h =
  let n = H.n h in
  let steps = 6_000 * n in
  let daemons = Exp_common.daemons_for_sweep ~quick () in
  let seeds = Exp_common.seeds ~quick in
  let counts = ref [] in
  let always_maximal = ref true in
  List.iter
    (fun daemon ->
      List.iter
        (fun seed ->
          let r =
            runner.Algos.run ~seed ~daemon
              ~workload:(Workload.infinite_meetings h)
              ~stop_when:(Exp_common.stable_stop ~window:(60 * n) ())
              ~steps h
          in
          let meetings = Obs.meetings h r.Driver.final_obs in
          counts := List.length meetings :: !counts;
          if not (Matching.is_maximal_matching h meetings) then
            always_maximal := false)
        seeds)
    daemons;
  {
    min_meetings = List.fold_left min max_int !counts;
    max_meetings = List.fold_left max 0 !counts;
    always_maximal = !always_maximal;
    runs = List.length !counts;
  }

let run ?(quick = false) () : result =
  let algos = Algos.paper_algorithms () in
  let by label = List.find (fun r -> r.Algos.label = label) algos in
  List.map
    (fun (topo, h) ->
      {
        topo;
        bounds = Matching.bounds h;
        cc1 = sample ~quick (by "CC1") h;
        cc2 = sample ~quick (by "CC2") h;
        cc3 = sample ~quick (by "CC3") h;
      })
    (topologies ~quick ())

let table (r : result) =
  let rows =
    List.concat_map
      (fun t ->
        let b = t.bounds in
        let row algo (s : algo_sample) bound thm_lower =
          [ t.topo; algo;
            Table.i b.Matching.min_mm;
            Table.i bound;
            Table.i thm_lower;
            Printf.sprintf "%d..%d" s.min_meetings s.max_meetings;
            Table.b (s.min_meetings >= bound);
            Table.i s.runs;
          ]
        in
        [ (* CC1's "bound" is minMM: a maximal matching is at least that big *)
          row "CC1" t.cc1 b.Matching.min_mm b.Matching.min_mm
          @ [ (if t.cc1.always_maximal then "maximal" else "NOT-MAXIMAL") ];
          row "CC2" t.cc2 b.Matching.dfc_cc2 b.Matching.thm5_lower @ [ "-" ];
          row "CC3" t.cc3 b.Matching.dfc_cc3 b.Matching.thm8_lower @ [ "-" ];
        ])
      r
  in
  {
    Table.id = "thm45-dfc";
    title =
      "Degree of fair concurrency: quiescent meetings under infinite \
       discussions vs the Theorem 4/5/7/8 bounds";
    header =
      [ "topology"; "algo"; "minMM"; "thm4/7 bound"; "thm5/8 bound";
        "measured"; "bound ok"; "runs"; "cc1-maximality" ];
    rows;
    notes =
      [ "CC1 rows additionally check that every quiescent state is a maximal \
         matching (Maximal Concurrency, Theorem 2).";
        "Bounds are lower bounds on the worst case; measured minima may \
         exceed them.";
      ];
  }

let ok (r : result) =
  List.for_all
    (fun t ->
      t.cc1.always_maximal
      && t.cc1.min_meetings >= t.bounds.Matching.min_mm
      && t.cc2.min_meetings >= t.bounds.Matching.dfc_cc2
      && t.cc3.min_meetings >= t.bounds.Matching.dfc_cc3)
    r
