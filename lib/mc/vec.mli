(** Growable arrays (amortized O(1) push), the checker's workhorse store:
    configurations, transition words and parent pointers all live in flat
    vectors indexed by configuration id. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Remove and return the last element; raises [Invalid_argument] when
    empty. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
