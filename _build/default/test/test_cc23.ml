(* Algorithm 2 (CC2 ∘ TC) and the CC3 variant: safety, professor and
   committee fairness, locks, Lemma 8 closure, waiting-time sanity. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Model = Snapcc_runtime.Model
module Daemon = Snapcc_runtime.Daemon
module Obs = Snapcc_runtime.Obs
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics
module X = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver

let check = Alcotest.(check bool)

let assert_clean name (r : Driver.result) =
  List.iter
    (fun v ->
      Alcotest.failf "%s: %s" name
        (Format.asprintf "%a" Snapcc_analysis.Spec.pp_violation v))
    r.Driver.violations

let topologies () =
  [ ("fig1", Families.fig1 ());
    ("fig4", Families.fig4 ());
    ("ring5", Families.pair_ring 5);
    ("shuffled", Families.with_shuffled_ids ~seed:8 (Families.fig4 ()));
  ]

(* uniform closures over the differently-typed driver functors *)
type runner_fn =
  ?check_locality:bool ->
  ?faults:(step:int -> int list) ->
  seed:int ->
  init:[ `Canonical | `Random ] ->
  daemon:Daemon.t ->
  workload:Workload.t ->
  steps:int ->
  H.t ->
  Driver.result

let runners () : (string * runner_fn) list =
  [ ( "CC2",
      fun ?check_locality ?faults ~seed ~init ~daemon ~workload ~steps h ->
        X.Run_cc2.run ?check_locality ?faults ~seed ~init ~daemon ~workload
          ~steps h );
    ( "CC3",
      fun ?check_locality ?faults ~seed ~init ~daemon ~workload ~steps h ->
        X.Run_cc3.run ?check_locality ?faults ~seed ~init ~daemon ~workload
          ~steps h );
  ]

let test_safety_sweep () =
  List.iter
    (fun (name, h) ->
      List.iter
        (fun daemon ->
          List.iter
            (fun (iname, init) ->
              List.iter
                (fun ((alg, run) : string * runner_fn) ->
                  let r =
                    run ~seed:3 ~init ~daemon
                      ~workload:(Workload.always_requesting h) ~steps:3_000 h
                  in
                  let label =
                    Printf.sprintf "%s/%s/%s/%s" alg name (Daemon.name daemon) iname
                  in
                  assert_clean label r;
                  check (label ^ ": meetings convene") true
                    (r.Driver.summary.Metrics.convenes > 0))
                (runners ()))
            [ ("canonical", `Canonical); ("random", `Random) ])
        [ Daemon.synchronous; Daemon.central (); Daemon.random_subset () ])
    (topologies ())

let test_professor_fairness () =
  List.iter
    (fun (name, h) ->
      List.iter
        (fun daemon ->
          List.iter
            (fun ((alg, run) : string * runner_fn) ->
              let r =
                run ~seed:13 ~init:`Random ~daemon
                  ~workload:(Workload.always_requesting h) ~steps:12_000 h
              in
              Array.iteri
                (fun p c ->
                  check
                    (Printf.sprintf "%s/%s/%s: professor %d participates" alg name
                       (Daemon.name daemon) (H.id h p))
                    true (c > 0))
                r.Driver.participations)
            (runners ()))
        [ Daemon.synchronous; Daemon.random_subset ~p:0.2 () ])
    (topologies ())

let test_locality () =
  let h = Families.fig4 () in
  List.iter
    (fun ((alg, run) : string * runner_fn) ->
      let r =
        run ~check_locality:true ~seed:2 ~init:`Random
          ~daemon:(Daemon.random_subset ()) ~workload:(Workload.always_requesting h)
          ~steps:2_000 h
      in
      assert_clean (alg ^ " locality") r)
    (runners ())

let test_locks_fig4 () =
  let r = Snapcc_experiments.Exp_locks.run () in
  check "Fig. 4 lock scenario" true (Snapcc_experiments.Exp_locks.ok r)

let test_committee_fairness_cc3 () =
  let h = Families.fig1 () in
  let r =
    X.Run_cc3.run ~seed:21 ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:20_000 h
  in
  assert_clean "cc3 committee fairness" r;
  Array.iteri
    (fun e c ->
      check
        (Printf.sprintf "committee %d convenes repeatedly" e)
        true (c >= 3))
    r.Driver.convene_count

let test_faults_mid_run () =
  let h = Families.fig4 () in
  let n = H.n h in
  List.iter
    (fun ((alg, run) : string * runner_fn) ->
      let faults ~step =
        if step mod 2_000 = 900 then List.init (n / 2) (fun i -> 2 * i) else []
      in
      let r =
        run ~seed:5 ~init:`Random ~faults ~daemon:(Daemon.random_subset ())
          ~workload:(Workload.always_requesting h) ~steps:8_000 h
      in
      assert_clean (alg ^ " faults") r;
      check (alg ^ ": still fair after faults") true
        (Array.for_all (fun c -> c > 0) r.Driver.participations))
    (runners ())

let test_token_only_low_concurrency () =
  (* the §6 circulating-token baseline never overlaps convening paths: its
     mean concurrency must stay below CC2's on the same inputs *)
  let h = Families.pair_ring 6 in
  let cc2 =
    X.Run_cc2.run ~seed:30 ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:8_000 h
  in
  let only =
    X.Run_token_only.run ~seed:30 ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:8_000 h
  in
  assert_clean "token-only" only;
  check "token-only concurrency below CC2" true
    (only.Driver.summary.Metrics.mean_concurrency
     < cc2.Driver.summary.Metrics.mean_concurrency);
  check "token-only still fair" true
    (Array.for_all (fun c -> c > 0) only.Driver.participations)

(* Lemma 8: Correct(p) closure for CC2. *)
module Cc2_engine = Snapcc_runtime.Engine.Make (X.Cc2)

let qcheck_correct_closure =
  QCheck.Test.make ~name:"Lemma 8: Correct(p) closure (CC2)" ~count:60
    (QCheck.make
       ~print:(fun (s, t) -> Printf.sprintf "seed=%d topo=%d" s t)
       QCheck.Gen.(pair (int_bound 100_000) (int_bound 3)))
    (fun (seed, t) ->
      let h = snd (List.nth (topologies ()) t) in
      let eng =
        Cc2_engine.create ~seed ~init:`Random ~daemon:(Daemon.random_subset ()) h
      in
      let inputs =
        { Model.request_in = (fun _ -> true); request_out = (fun _ -> true) }
      in
      let correct_set () =
        List.filter
          (fun p -> X.Cc2.correct h ~read:(Cc2_engine.state eng) p)
          (List.init (H.n h) Fun.id)
      in
      let ok = ref true in
      let prev = ref (correct_set ()) in
      for _ = 1 to 25 do
        if not (Cc2_engine.is_terminal eng ~inputs) then begin
          ignore (Cc2_engine.step eng ~inputs);
          let now = correct_set () in
          if not (List.for_all (fun p -> List.mem p now) !prev) then ok := false;
          prev := now
        end
      done;
      !ok)

(* Corollary 5: after at most one round every process satisfies Correct
   forever (one synchronous step = one round). *)
let test_stabilization_one_round () =
  let h = Families.fig4 () in
  List.iter
    (fun seed ->
      let eng =
        Cc2_engine.create ~seed ~init:`Random ~daemon:Daemon.synchronous h
      in
      let inputs = Model.always_in in
      ignore (Cc2_engine.step eng ~inputs);
      for p = 0 to H.n h - 1 do
        check
          (Printf.sprintf "Correct(%d) after one synchronous round" p)
          true
          (X.Cc2.correct h ~read:(Cc2_engine.state eng) p)
      done)
    [ 4; 5; 6; 7 ]

let suite =
  [ ( "cc23",
      [ Alcotest.test_case "safety sweep (daemons x inits)" `Slow test_safety_sweep;
        Alcotest.test_case "professor fairness" `Slow test_professor_fairness;
        Alcotest.test_case "locality of reads" `Quick test_locality;
        Alcotest.test_case "Fig. 4 locks" `Quick test_locks_fig4;
        Alcotest.test_case "CC3 committee fairness" `Quick
          test_committee_fairness_cc3;
        Alcotest.test_case "transient faults mid-run" `Quick test_faults_mid_run;
        Alcotest.test_case "token-only baseline loses concurrency" `Quick
          test_token_only_low_concurrency;
        Alcotest.test_case "stabilization within one round" `Quick
          test_stabilization_one_round;
      ] );
    ("cc23:qcheck", [ QCheck_alcotest.to_alcotest ~long:false qcheck_correct_closure ]);
  ]
