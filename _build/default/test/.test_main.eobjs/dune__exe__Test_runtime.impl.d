test/test_runtime.ml: Alcotest Format Int List Random Snapcc_hypergraph Snapcc_runtime String
