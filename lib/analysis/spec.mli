(** Runtime verification of the committee-coordination specification
    (§2.3–§2.5): an online monitor fed with before/after observation pairs.

    Snap-stabilization semantics: the monitor judges every meeting that
    {e convenes} during the observed computation; meetings already in
    progress in the (possibly arbitrary) initial configuration are exempt
    from the discussion checks, exactly as §2.5 prescribes ("there is no
    guarantee for the meetings started during the transient faults"). *)

type violation = {
  step : int;
  rule : string;  (** "exclusion" | "synchronization" | "essential-discussion"
                      | "voluntary-discussion" | "meeting-integrity" *)
  detail : string;
}

type t

val create :
  ?telemetry:Snapcc_telemetry.Hub.t ->
  Snapcc_hypergraph.Hypergraph.t ->
  initial:Snapcc_runtime.Obs.t array ->
  t
(** With [telemetry], every recorded violation is also emitted as a
    [verdict] event on the hub. *)

val on_step :
  t ->
  step:int ->
  request_out:(int -> bool) ->
  before:Snapcc_runtime.Obs.t array ->
  after:Snapcc_runtime.Obs.t array ->
  unit
(** Checks, per transition:
    - {b exclusion}: no two conflicting committees meet in [after];
    - {b synchronization}: a convening committee had all members in the
      waiting state (status [looking]/[waiting]) in [before], and has all of
      them in status [waiting] right after convening (Lemma 2);
    - {b essential discussion}: a terminating committee (unless exempt) had
      every member in status [done] in [before], each with its discussion
      counter advanced since the convene;
    - {b voluntary discussion}: a terminating committee (unless exempt) has
      at least one member whose [RequestOut] held. *)

val on_fault : t -> Snapcc_runtime.Obs.t array -> unit
(** Notify that a transient fault was injected and show the corrupted
    configuration: meetings present in it become exempt from the discussion
    checks, exactly like the initial configuration's. *)

val violations : t -> violation list
val ok : t -> bool

val convened : t -> (int * int) list
(** [(step, eid)] ledger of convened meetings, chronological. *)

val convene_count : t -> int array
(** Per-committee number of convenes. *)

val participations : t -> int array
(** Per-professor number of convened meetings participated in. *)

val pp_violation : Format.formatter -> violation -> unit
