(** The orchestrator: scheduler, fault-injecting link layer and live
    monitoring observer of the networked runtime.

    The orchestrator drives the node processes in lockstep through the
    {e same} scheduler as the in-process emulation
    ({!Snapcc_mp.Mp_semantics}, same seed vector, same draw order): each
    step either activates one node (which executes one guarded action
    against its cached view and re-broadcasts its state through the link
    layer) or delivers one in-flight snapshot.  Under a fault-free plan
    the links coalesce exactly like [Mp_engine]'s single-slot channels,
    so a zero-fault networked run replays the [ccsim mp] run of the same
    seed decision for decision — [lib/mp] is the executable reference
    model of this runtime.

    The observer half assembles the true configuration from the nodes'
    [Activated] reports, runs the {!Snapcc_analysis.Spec} monitors online
    and streams telemetry ([convene]/[terminate]/[token_handoff]/
    [fault]/[recover] plus the [net_*] link events), so [ccsim stats]
    consumes a networked trace unchanged.  Every event except
    [net_delivered] (wall-clock latency) is a pure function of the
    seed. *)

type config = {
  algo : string;  (** cc1 | cc2 | cc3 *)
  seed : int;
  init : [ `Canonical | `Random ];
  deliver_bias : float;
  steps : int;
  plan : Faults.plan;
  burst : int option;
      (** soak mode: corrupt half the nodes (cores, caches and in-flight
          messages, like [Mp_engine.corrupt]) at this step *)
  engine : [ `Packed | `Closure ];
      (** Wire format for snapshot deliveries.  [`Closure] sends the
          version-1 full-marshal [Deliver] frames.  [`Packed] encodes a
          snapshot as its packed-domain id and, when the receiver holds
          an acknowledged base on that link, as an XOR {!Delta} against
          it (empty for heartbeats), with a full frame forced every
          [keyframe] deliveries; a node that cannot apply a frame answers
          [Resync] and is re-sent a full snapshot ({!result.resyncs}).
          The choice changes only bytes on the wire: scheduler decisions,
          states and observable events are identical between the two
          engines run seed-for-seed (the parity suite asserts it). *)
}

type result = {
  steps : int;
  convenes : int;
  terminations : int;
  violations : Snapcc_analysis.Spec.violation list;
  sent : int;  (** snapshots handed to the link layer *)
  delivered : int;
  dropped : int;  (** total losses, all reasons *)
  malformed : int;  (** corrupted frames rejected by the strict decoder *)
  resyncs : int;
      (** packed engine: frames the node answered with [Resync]
          (out-of-sync delta base, unknown id) — each was retried as a
          full snapshot, counted as a transient fault, never applied
          wrongly *)
  bytes_sent : int;
      (** marshalled snapshot bytes handed to the link layer (independent
          of the wire engine) *)
  bytes_delivered : int;
      (** snapshot payload bytes that actually crossed the wire on
          successful deliveries — under [`Packed] this is the
          delta/packed-id cost, the quantity the bench's
          [bytes_per_snapshot] tracks *)
  in_flight : int;  (** snapshots still queued at the end *)
  max_staleness : int;
  latencies_us : int list;  (** delivery latencies, chronological *)
  burst_step : int option;
  recover_step : int option;  (** first convene after the burst *)
  stabilized_in : int option;  (** recover_step - burst_step *)
  node_frames : int;  (** frames received across nodes (from [Bye_ack]) *)
  node_decode_errors : int;
  wall_s : float;
  final_obs : Snapcc_runtime.Obs.t array;
}

val run :
  ?telemetry:Snapcc_telemetry.Hub.t ->
  mode:Spawn.mode ->
  workload:Snapcc_workload.Workload.t ->
  config ->
  Snapcc_hypergraph.Hypergraph.t ->
  (result, string) Stdlib.result
(** [Error] for an unknown algorithm name; protocol failures (a node
    dying mid-run) raise [Failure] after the remaining nodes are
    killed and reaped. *)

val pp_result : Format.formatter -> result -> unit
