(** The published smc report: every estimate with its interval.

    Free of wall-clock times and worker counts by construction — a pure
    function of the run parameters and the trial records, so reports
    from different worker counts (same seed) are byte-identical. *)

type dist = {
  samples : int;
  mean : float;
  sd : float;
  ci : Estimator.ci;  (** Student-t interval on the mean *)
  p50 : int;  (** nearest-rank percentiles ({!Snapcc_analysis.Metrics}) *)
  p90 : int;
  p99 : int;
  max : int;
}

type proportion = {
  count : int;
  p : float;
  ci : Estimator.ci;  (** Wilson score interval *)
}

type t = {
  algo : string;
  topo : string;
  daemon : string;
  workload : string;
  disc : int;
  budget : int;
  trials : int;  (** records actually aggregated (SPRT may stop early) *)
  seed : int;
  confidence : float;
  stabilization : dist option;
      (** stabilization times over the trials that stabilized; [None]
          when none did *)
  stabilized : proportion;  (** P(stabilized within budget) *)
  waiting : dist option;  (** waiting spans pooled across all trials *)
  deadlock : proportion;  (** P(terminal freeze within budget) *)
  violations : int;  (** total Spec verdicts across trials *)
  sprt : Sprt.outcome option;
}

val build :
  algo:string ->
  topo:string ->
  daemon:string ->
  workload:string ->
  disc:int ->
  budget:int ->
  seed:int ->
  confidence:float ->
  ?sprt:Sprt.outcome ->
  Trial.record list ->
  t

val ok : t -> bool
(** No violations and no rejected SPRT claim — `ccsim smc' exits 0. *)

val to_json : t -> Snapcc_telemetry.Json.t
(** Whole-file JSON artifact (validated by `ccsim stats
    --validate-json'); deterministic under the seed. *)

val pp : Format.formatter -> t -> unit
