type t =
  | Run_start of {
      algo : string;
      daemon : string;
      workload : string;
      seed : int;
      n : int;
      m : int;
      topo : string;
    }
  | Step of {
      step : int;
      round : int;
      selected : int list;
      neutralized : int list;
      meetings : int list;
    }
  | Action of { step : int; p : int; label : string }
  | Convene of { step : int; round : int; eid : int }
  | Terminate of { step : int; round : int; eid : int }
  | Wait_open of { step : int; round : int; p : int }
  | Wait_close of {
      step : int;
      round : int;
      p : int;
      waited_steps : int;
      waited_rounds : int;
    }
  | Verdict of { step : int; rule : string; detail : string }
  | Token_handoff of { step : int; p : int }
  | Fault of { step : int; victims : int list }
  | Recover of { step : int; eid : int }
  | Mc_frontier of { configs : int; transitions : int }
  | Mp_activated of { step : int; p : int; label : string option }
  | Mp_delivered of { step : int; dst : int; src : int }
  | Net_sent of { step : int; src : int; dst : int; bytes : int }
  | Net_delivered of {
      step : int;
      src : int;
      dst : int;
      bytes : int;
      latency_us : int;
    }
  | Net_dropped of { step : int; src : int; dst : int; reason : string }
  | Clock of {
      step : int;
      p : int;
      k : int;
      clock : int list;
      obs_code : int;
      disc : int;
    }
  | Smc_trial of {
      trial : int;
      seed : int;
      stabilized : int option;
      convenes : int;
      violations : int;
      deadlocked : bool;
      steps : int;
    }
  | Run_end of { outcome : string; steps : int; rounds : int }

type stamped = { seq : int; t_us : int; ev : t }

let clock_init = 0
let clock_activation = 1
let clock_delivery = 2
let clock_corruption = 3

let kind = function
  | Run_start _ -> "run_start"
  | Step _ -> "step"
  | Action _ -> "action"
  | Convene _ -> "convene"
  | Terminate _ -> "terminate"
  | Wait_open _ -> "wait_open"
  | Wait_close _ -> "wait_close"
  | Verdict _ -> "verdict"
  | Token_handoff _ -> "token_handoff"
  | Fault _ -> "fault"
  | Recover _ -> "recover"
  | Mc_frontier _ -> "mc_frontier"
  | Mp_activated _ -> "mp_activated"
  | Mp_delivered _ -> "mp_delivered"
  | Net_sent _ -> "net_sent"
  | Net_delivered _ -> "net_delivered"
  | Net_dropped _ -> "net_dropped"
  | Clock _ -> "clock"
  | Smc_trial _ -> "smc_trial"
  | Run_end _ -> "run_end"

(* Every event body is a pure function of the seed except [net_delivered],
   whose [latency_us] is measured wall-clock; filtering on this predicate
   recovers the deterministic (byte-reproducible) subset of a networked
   trace. *)
let logical = function Net_delivered _ -> false | _ -> true

let ints l = Json.List (List.map (fun i -> Json.Int i) l)

let to_json ev =
  let fields =
    match ev with
    | Run_start { algo; daemon; workload; seed; n; m; topo } ->
      [ ("algo", Json.String algo);
        ("daemon", Json.String daemon);
        ("workload", Json.String workload);
        ("seed", Json.Int seed);
        ("n", Json.Int n);
        ("m", Json.Int m);
        ("topo", Json.String topo) ]
    | Step { step; round; selected; neutralized; meetings } ->
      [ ("step", Json.Int step);
        ("round", Json.Int round);
        ("selected", ints selected);
        ("neutralized", ints neutralized);
        ("meetings", ints meetings) ]
    | Action { step; p; label } ->
      [ ("step", Json.Int step); ("p", Json.Int p); ("label", Json.String label) ]
    | Convene { step; round; eid } | Terminate { step; round; eid } ->
      [ ("step", Json.Int step); ("round", Json.Int round); ("eid", Json.Int eid) ]
    | Wait_open { step; round; p } ->
      [ ("step", Json.Int step); ("round", Json.Int round); ("p", Json.Int p) ]
    | Wait_close { step; round; p; waited_steps; waited_rounds } ->
      [ ("step", Json.Int step);
        ("round", Json.Int round);
        ("p", Json.Int p);
        ("waited_steps", Json.Int waited_steps);
        ("waited_rounds", Json.Int waited_rounds) ]
    | Verdict { step; rule; detail } ->
      [ ("step", Json.Int step);
        ("rule", Json.String rule);
        ("detail", Json.String detail) ]
    | Token_handoff { step; p } -> [ ("step", Json.Int step); ("p", Json.Int p) ]
    | Fault { step; victims } ->
      [ ("step", Json.Int step); ("victims", ints victims) ]
    | Recover { step; eid } -> [ ("step", Json.Int step); ("eid", Json.Int eid) ]
    | Mc_frontier { configs; transitions } ->
      [ ("configs", Json.Int configs); ("transitions", Json.Int transitions) ]
    | Mp_activated { step; p; label } ->
      [ ("step", Json.Int step);
        ("p", Json.Int p);
        ("label",
         match label with Some l -> Json.String l | None -> Json.Null) ]
    | Mp_delivered { step; dst; src } ->
      [ ("step", Json.Int step); ("dst", Json.Int dst); ("src", Json.Int src) ]
    | Net_sent { step; src; dst; bytes } ->
      [ ("step", Json.Int step);
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("bytes", Json.Int bytes) ]
    | Net_delivered { step; src; dst; bytes; latency_us } ->
      [ ("step", Json.Int step);
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("bytes", Json.Int bytes);
        ("latency_us", Json.Int latency_us) ]
    | Net_dropped { step; src; dst; reason } ->
      [ ("step", Json.Int step);
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("reason", Json.String reason) ]
    | Clock { step; p; k; clock; obs_code; disc } ->
      [ ("step", Json.Int step);
        ("p", Json.Int p);
        ("k", Json.Int k);
        ("clock", ints clock);
        ("obs_code", Json.Int obs_code);
        ("disc", Json.Int disc) ]
    | Smc_trial { trial; seed; stabilized; convenes; violations; deadlocked;
                  steps } ->
      [ ("trial", Json.Int trial);
        ("seed", Json.Int seed);
        ("stabilized",
         match stabilized with Some s -> Json.Int s | None -> Json.Null);
        ("convenes", Json.Int convenes);
        ("violations", Json.Int violations);
        ("deadlocked", Json.Bool deadlocked);
        ("steps", Json.Int steps) ]
    | Run_end { outcome; steps; rounds } ->
      [ ("outcome", Json.String outcome);
        ("steps", Json.Int steps);
        ("rounds", Json.Int rounds) ]
  in
  Json.Obj (("ev", Json.String (kind ev)) :: fields)

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let int name = field name Json.to_int in
  let str name = field name Json.to_str in
  let int_list name =
    field name (fun v ->
        Option.bind (Json.to_list v) (fun l ->
            let ints = List.filter_map Json.to_int l in
            if List.length ints = List.length l then Some ints else None))
  in
  let* k = str "ev" in
  match k with
  | "run_start" ->
    let* algo = str "algo" in
    let* daemon = str "daemon" in
    let* workload = str "workload" in
    let* seed = int "seed" in
    let* n = int "n" in
    let* m = int "m" in
    let topo =
      match Json.member "topo" j with Some (Json.String s) -> s | _ -> ""
    in
    Ok (Run_start { algo; daemon; workload; seed; n; m; topo })
  | "step" ->
    let* step = int "step" in
    let* round = int "round" in
    let* selected = int_list "selected" in
    let* neutralized = int_list "neutralized" in
    let* meetings = int_list "meetings" in
    Ok (Step { step; round; selected; neutralized; meetings })
  | "action" ->
    let* step = int "step" in
    let* p = int "p" in
    let* label = str "label" in
    Ok (Action { step; p; label })
  | "convene" | "terminate" ->
    let* step = int "step" in
    let* round = int "round" in
    let* eid = int "eid" in
    Ok
      (if k = "convene" then Convene { step; round; eid }
       else Terminate { step; round; eid })
  | "wait_open" ->
    let* step = int "step" in
    let* round = int "round" in
    let* p = int "p" in
    Ok (Wait_open { step; round; p })
  | "wait_close" ->
    let* step = int "step" in
    let* round = int "round" in
    let* p = int "p" in
    let* waited_steps = int "waited_steps" in
    let* waited_rounds = int "waited_rounds" in
    Ok (Wait_close { step; round; p; waited_steps; waited_rounds })
  | "verdict" ->
    let* step = int "step" in
    let* rule = str "rule" in
    let* detail = str "detail" in
    Ok (Verdict { step; rule; detail })
  | "token_handoff" ->
    let* step = int "step" in
    let* p = int "p" in
    Ok (Token_handoff { step; p })
  | "fault" ->
    let* step = int "step" in
    let* victims = int_list "victims" in
    Ok (Fault { step; victims })
  | "recover" ->
    let* step = int "step" in
    let* eid = int "eid" in
    Ok (Recover { step; eid })
  | "mc_frontier" ->
    let* configs = int "configs" in
    let* transitions = int "transitions" in
    Ok (Mc_frontier { configs; transitions })
  | "mp_activated" ->
    let* step = int "step" in
    let* p = int "p" in
    let label =
      match Json.member "label" j with
      | Some (Json.String l) -> Some l
      | _ -> None
    in
    Ok (Mp_activated { step; p; label })
  | "mp_delivered" ->
    let* step = int "step" in
    let* dst = int "dst" in
    let* src = int "src" in
    Ok (Mp_delivered { step; dst; src })
  | "net_sent" ->
    let* step = int "step" in
    let* src = int "src" in
    let* dst = int "dst" in
    let* bytes = int "bytes" in
    Ok (Net_sent { step; src; dst; bytes })
  | "net_delivered" ->
    let* step = int "step" in
    let* src = int "src" in
    let* dst = int "dst" in
    let* bytes = int "bytes" in
    let* latency_us = int "latency_us" in
    Ok (Net_delivered { step; src; dst; bytes; latency_us })
  | "net_dropped" ->
    let* step = int "step" in
    let* src = int "src" in
    let* dst = int "dst" in
    let* reason = str "reason" in
    Ok (Net_dropped { step; src; dst; reason })
  | "clock" ->
    let* step = int "step" in
    let* p = int "p" in
    let* k = int "k" in
    let* clock = int_list "clock" in
    let* obs_code = int "obs_code" in
    let* disc = int "disc" in
    Ok (Clock { step; p; k; clock; obs_code; disc })
  | "smc_trial" ->
    let* trial = int "trial" in
    let* seed = int "seed" in
    let stabilized =
      match Json.member "stabilized" j with
      | Some (Json.Int s) -> Some s
      | _ -> None
    in
    let* convenes = int "convenes" in
    let* violations = int "violations" in
    let* deadlocked =
      field "deadlocked" (function Json.Bool b -> Some b | _ -> None)
    in
    let* steps = int "steps" in
    Ok
      (Smc_trial
         { trial; seed; stabilized; convenes; violations; deadlocked; steps })
  | "run_end" ->
    let* outcome = str "outcome" in
    let* steps = int "steps" in
    let* rounds = int "rounds" in
    Ok (Run_end { outcome; steps; rounds })
  | k -> Error (Printf.sprintf "unknown event kind %S" k)
