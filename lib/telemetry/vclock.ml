type t = int array

let create n = Array.make n 0
let copy = Array.copy
let tick c p = c.(p) <- c.(p) + 1

let merge_into ~into src =
  let n = Array.length into in
  if Array.length src <> n then invalid_arg "Vclock.merge_into: length";
  for i = 0 to n - 1 do
    if src.(i) > into.(i) then into.(i) <- src.(i)
  done

let merge a b =
  let c = copy a in
  merge_into ~into:c b;
  c

let leq a b =
  let n = Array.length a in
  Array.length b = n
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    if a.(i) > b.(i) then ok := false
  done;
  !ok

type order =
  | Equal
  | Before
  | After
  | Concurrent

let compare_clocks a b =
  match (leq a b, leq b a) with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let to_list = Array.to_list
let of_list = Array.of_list

let to_string c =
  "[" ^ String.concat "," (List.map string_of_int (to_list c)) ^ "]"

(* Wire codec: a one-byte form tag followed by LEB128 varints.  Form 0
   carries the full vector (count, then every component); form 1 carries a
   sparse delta against a base the receiver already holds (count of changed
   components, then (index, positive increment) pairs).  Deltas are the
   common case on a link — a sender's clock only grows between frames — and
   cost two bytes per changed component for small clocks. *)

let w_varint buf v =
  if v < 0 then invalid_arg "Vclock: negative component";
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* Returns [None] on truncation or on a varint wider than an OCaml int. *)
let r_varint s pos =
  let len = String.length s in
  let rec go acc shift pos =
    if pos >= len || shift > 56 then None
    else
      let b = Char.code s.[pos] in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Some (acc, pos + 1)
      else go acc (shift + 7) (pos + 1)
  in
  go 0 0 pos

let encode_full c =
  let buf = Buffer.create 16 in
  Buffer.add_char buf '\000';
  w_varint buf (Array.length c);
  Array.iter (w_varint buf) c;
  Buffer.contents buf

(* [None] when the delta is not expressible (length mismatch or a component
   that shrank — possible under link reordering, where an older frame is
   encoded against a newer acknowledged base). *)
let encode_delta ~base c =
  let n = Array.length c in
  if Array.length base <> n then None
  else begin
    let shrank = ref false in
    let changed = ref 0 in
    for i = 0 to n - 1 do
      if c.(i) < base.(i) then shrank := true
      else if c.(i) > base.(i) then incr changed
    done;
    if !shrank then None
    else begin
      let buf = Buffer.create 8 in
      Buffer.add_char buf '\001';
      w_varint buf !changed;
      for i = 0 to n - 1 do
        if c.(i) > base.(i) then begin
          w_varint buf i;
          w_varint buf (c.(i) - base.(i))
        end
      done;
      Some (Buffer.contents buf)
    end
  end

(* Prefer the delta form when it is expressible and no larger. *)
let encode_wire ?base c =
  let full = encode_full c in
  match Option.bind base (fun b -> encode_delta ~base:b c) with
  | Some d when String.length d <= String.length full -> d
  | _ -> full

let decode_full s =
  if String.length s = 0 || s.[0] <> '\000' then None
  else
    match r_varint s 1 with
    | None -> None
    | Some (n, pos) ->
      if n < 0 || n > 0xffff then None
      else
        let c = Array.make n 0 in
        let rec go i pos =
          if i = n then if pos = String.length s then Some c else None
          else
            match r_varint s pos with
            | None -> None
            | Some (v, pos) ->
              c.(i) <- v;
              go (i + 1) pos
        in
        go 0 pos

let apply_delta ~base s =
  if String.length s = 0 || s.[0] <> '\001' then None
  else
    match r_varint s 1 with
    | None -> None
    | Some (changed, pos) ->
      let c = copy base in
      let n = Array.length c in
      let rec go k pos =
        if k = changed then if pos = String.length s then Some c else None
        else
          match r_varint s pos with
          | None -> None
          | Some (i, pos) -> (
            if i < 0 || i >= n then None
            else
              match r_varint s pos with
              | None -> None
              | Some (d, pos) ->
                if d <= 0 then None
                else begin
                  c.(i) <- c.(i) + d;
                  go (k + 1) pos
                end)
      in
      go 0 pos

let decode_wire ?base s =
  if String.length s = 0 then None
  else
    match s.[0] with
    | '\000' -> decode_full s
    | '\001' -> Option.bind base (fun b -> apply_delta ~base:b s)
    | _ -> None
