(** The netem-style fault plan of the link layer.

    A plan is parsed from the CLI's [--faults] spec, a comma-separated
    list of [key=value] clauses:

    {v
    drop=0.05          per-snapshot loss probability
    delay=2            mean extra delivery delay, in scheduler steps
    dup=0.01           duplication probability
    reorder=0.25       probability a delivery picks a random queued
                       snapshot instead of the oldest
    corrupt=0.02       probability a delivered frame's bytes are flipped
                       (the receiver's strict decoder then rejects it)
    partition=100-400  steps [100,400): links between the two halves of
                       the node range are severed, then heal
    v}

    All randomness is drawn from per-link seeded generators
    ({!link_rng}), never from the scheduler's generator — so a fault plan
    perturbs message fate without changing the scheduler's decision
    sequence, and the whole run stays a deterministic function of
    [--seed]. *)

type plan = {
  drop : float;
  delay : int;
  dup : float;
  reorder : float;
  corrupt : float;
  partition : (int * int) option;  (** step interval [a, b) *)
}

val none : plan

val is_pure : plan -> bool
(** No delay, duplication or reordering: links keep the single-slot
    coalescing semantics of [Mp_engine] (drop/corrupt/partition may still
    be active — those only remove messages). *)

val parse : string -> (plan, string) result
(** Parse a [--faults] spec; [""] is {!none}. *)

val pp : Format.formatter -> plan -> unit

val partitioned : plan -> step:int -> n:int -> src:int -> dst:int -> bool
(** Whether the directed link [src → dst] is severed at [step]: the
    partition window cuts every link between nodes [0 .. n/2-1] and
    [n/2 .. n-1]. *)

val link_rng : seed:int -> src:int -> dst:int -> Random.State.t
(** The deterministic per-directed-link fault generator. *)
