(** Experiment registry: every table/figure of the paper (plus the §7
    extension probes), runnable by id.  [bench/main.exe] prints all of
    them; [ccsim experiment <id>] runs one. *)

type entry = {
  id : string;
  title : string;
  run : quick:bool -> Table.t;
      (** [quick:true] uses the reduced sweeps exercised by the tests. *)
}

val all : entry list
(** In presentation order: figures, theorems, baselines, substrate,
    ablations, extensions. *)

val find : string -> entry option
val ids : unit -> string list
