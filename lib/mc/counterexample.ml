module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
module Engine = Snapcc_runtime.Engine
module Daemon = Snapcc_runtime.Daemon
module Spec = Snapcc_analysis.Spec

type step = { mode : int; selected : int list }
type kind = Safety of string | Deadlock | Livelock

type t = {
  algo : string;
  token : string;
  topo : string;
  kind : kind;
  detail : string;
  init : int list;
  steps : step list;
  loop : step list;
}

let mk_steps = List.map (fun (m, sel) -> { mode = m; selected = sel })

let of_safety ~algo ~token ~topo ~rule ~detail ~init ~steps =
  { algo; token; topo; kind = Safety rule; detail;
    init = Array.to_list init; steps = mk_steps steps; loop = [] }

let of_deadlock ~algo ~token ~topo ~detail ~init ~steps =
  { algo; token; topo; kind = Deadlock; detail;
    init = Array.to_list init; steps = mk_steps steps; loop = [] }

let of_livelock ~algo ~token ~topo ~detail ~init ~steps ~loop =
  { algo; token; topo; kind = Livelock; detail;
    init = Array.to_list init; steps = mk_steps steps;
    loop = List.map (fun sel -> { mode = Explore.inout_mode; selected = sel }) loop }

let kind_name = function
  | Safety r -> "safety:" ^ r
  | Deadlock -> "deadlock"
  | Livelock -> "livelock"

let pp_step ppf (s : step) =
  Format.fprintf ppf "mode=%s select={%s}" (Explore.mode_name s.mode)
    (String.concat "," (List.map string_of_int s.selected))

let pp ppf c =
  Format.fprintf ppf
    "@[<v>counterexample [%s] %s (token %s) on %s@,detail: %s@,init (domain \
     indices): [%s]@,"
    (kind_name c.kind) c.algo c.token c.topo c.detail
    (String.concat " " (List.map string_of_int c.init));
  List.iteri (fun i s -> Format.fprintf ppf "step %d: %a@," i pp_step s) c.steps;
  List.iteri (fun i s -> Format.fprintf ppf "loop %d: %a@," i pp_step s) c.loop;
  Format.fprintf ppf "@]"

let sanitize = String.map (fun ch -> if ch = '\n' || ch = '\r' then ' ' else ch)

let to_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let pr fmt = Printf.fprintf oc fmt in
      pr "ccsim-cex v1\n";
      pr "algo %s\n" c.algo;
      pr "token %s\n" c.token;
      pr "topo %s\n" c.topo;
      (match c.kind with
      | Safety r -> pr "kind safety %s\n" r
      | Deadlock -> pr "kind deadlock\n"
      | Livelock -> pr "kind livelock\n");
      pr "detail %s\n" (sanitize c.detail);
      pr "init%s\n"
        (String.concat "" (List.map (fun i -> " " ^ string_of_int i) c.init));
      let pr_step tag (s : step) =
        pr "%s %d%s\n" tag s.mode
          (String.concat ""
             (List.map (fun p -> " " ^ string_of_int p) s.selected))
      in
      List.iter (pr_step "step") c.steps;
      List.iter (pr_step "loop") c.loop)

let of_file path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let int s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> failwith ("counterexample parse: not an integer: " ^ s)
  in
  let parse_step rest =
    match rest with
    | mode :: sel -> { mode = int mode; selected = List.map int sel }
    | [] -> failwith "counterexample parse: empty step"
  in
  match lines with
  | [] -> failwith "counterexample parse: empty file"
  | header :: rest ->
    if String.trim header <> "ccsim-cex v1" then
      failwith "counterexample parse: not a ccsim-cex v1 file";
    let c =
      ref
        { algo = ""; token = ""; topo = ""; kind = Deadlock; detail = "";
          init = []; steps = []; loop = [] }
    in
    List.iter
      (fun line ->
        if String.trim line <> "" then
          match String.split_on_char ' ' (String.trim line) with
          | "algo" :: a -> c := { !c with algo = String.concat " " a }
          | "token" :: a -> c := { !c with token = String.concat " " a }
          | "topo" :: a -> c := { !c with topo = String.concat " " a }
          | "kind" :: [ "deadlock" ] -> c := { !c with kind = Deadlock }
          | "kind" :: [ "livelock" ] -> c := { !c with kind = Livelock }
          | "kind" :: "safety" :: [ r ] -> c := { !c with kind = Safety r }
          | "detail" :: d -> c := { !c with detail = String.concat " " d }
          | "init" :: ids -> c := { !c with init = List.map int ids }
          | "step" :: rest -> c := { !c with steps = !c.steps @ [ parse_step rest ] }
          | "loop" :: rest -> c := { !c with loop = !c.loop @ [ parse_step rest ] }
          | tag :: _ -> failwith ("counterexample parse: unknown line " ^ tag)
          | [] -> ())
      rest;
    !c

let rec drop k l =
  if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl

module Make (Sys : System.S) = struct
  module Eng = Engine.Make (Sys)
  module Enc = Encode.Make (Sys)

  type verdict =
    | Reproduced of string
    | Not_reproduced of string
    | Invalid of string

  let committee_waiting h obs =
    List.exists
      (fun e ->
        Array.for_all (fun q -> Obs.is_waiting obs.(q)) (H.edge_members h e))
      (List.init (H.m h) Fun.id)

  let conflicting_meetings h obs =
    let ms = Obs.meetings h obs in
    List.exists
      (fun e1 -> List.exists (fun e2 -> e1 < e2 && H.conflicting h e1 e2) ms)
      ms

  let engine_of h (c : t) =
    let enc = Enc.create h in
    let n = H.n h in
    if List.length c.init <> n then
      failwith
        (Printf.sprintf "counterexample has %d initial states for %d processes"
           (List.length c.init) n);
    let sts =
      Array.of_list
        (List.mapi
           (fun p id ->
             if id < 0 || id >= Enc.count enc p then
               failwith
                 (Printf.sprintf
                    "initial domain index %d out of range for process %d" id p);
             Enc.state enc p id)
           c.init)
    in
    let script =
      Array.of_list (List.map (fun s -> s.selected) (c.steps @ c.loop))
    in
    let daemon =
      Daemon.of_fun ~name:"counterexample" (fun ~step ~enabled:_ ->
          if step < Array.length script then script.(step) else [])
    in
    (Eng.create ~init:(`States sts) ~daemon h, enc)

  let replay ?trace h (c : t) =
    try
      let eng, _enc = engine_of h c in
      let spec = Spec.create h ~initial:(Eng.obs eng) in
      let do_step i (st : step) =
        if st.mode < 0 || st.mode >= Array.length Explore.mode_inputs then
          failwith "bad input mode in counterexample";
        let inputs = Explore.mode_inputs.(st.mode) in
        let before = Eng.obs eng in
        let rep = Eng.step eng ~inputs in
        if rep.Model.terminal then
          failwith "counterexample selects in a terminal configuration";
        Option.iter
          (fun ppf ->
            Format.fprintf ppf "  step %-3d mode=%-6s selected={%s} executed=[%s]@."
              i
              (Explore.mode_name st.mode)
              (String.concat "," (List.map string_of_int rep.Model.selected))
              (String.concat "; "
                 (List.map
                    (fun (p, l) -> Printf.sprintf "%d:%s" p l)
                    rep.Model.executed)))
          trace;
        Spec.on_step spec ~step:i ~request_out:inputs.Model.request_out ~before
          ~after:(Eng.obs eng)
      in
      List.iteri do_step c.steps;
      match c.kind with
      | Safety rule -> (
        match
          List.filter
            (fun (v : Spec.violation) -> v.Spec.rule = rule)
            (Spec.violations spec)
        with
        | v :: _ -> Reproduced (Format.asprintf "%a" Spec.pp_violation v)
        | [] ->
          if rule = "exclusion" && conflicting_meetings h (Eng.obs eng) then
            Reproduced "conflicting committees meet in the final configuration"
          else
            Not_reproduced
              (match Spec.violations spec with
              | [] -> "no monitor violation on replay"
              | v :: _ -> "different rule on replay: " ^ v.Spec.rule))
      | Deadlock ->
        let inputs = Explore.mode_inputs.(Explore.inout_mode) in
        if not (Eng.is_terminal eng ~inputs) then
          Not_reproduced "final configuration is not terminal under in+out"
        else if committee_waiting h (Eng.obs eng) then
          Reproduced "terminal configuration with a fully waiting committee"
        else Not_reproduced "terminal, but no committee has all members waiting"
      | Livelock ->
        if c.loop = [] then Invalid "livelock counterexample without a loop"
        else begin
          let entry = Eng.states eng in
          let n0 = List.length (Spec.convened spec) in
          List.iteri (fun i st -> do_step (List.length c.steps + i) st) c.loop;
          let exit_ = Eng.states eng in
          let same =
            Array.for_all2 (fun a b -> Sys.equal_state a b) entry exit_
          in
          let convened = List.length (Spec.convened spec) - n0 in
          if same && convened = 0 then
            Reproduced
              (Printf.sprintf "fair convene-free cycle of %d steps"
                 (List.length c.loop))
          else if not same then
            Not_reproduced "loop does not return to its entry configuration"
          else Not_reproduced "a meeting convened inside the loop"
        end
    with Failure msg | Invalid_argument msg -> Invalid msg

  let reproduces h c =
    match replay h c with Reproduced _ -> true | _ -> false

  (* The configuration reached after [k] steps, as domain indices (None if
     the prefix is not executable or reaches an off-domain state). *)
  let state_after h (c : t) k =
    try
      let eng, enc = engine_of h c in
      let rec go i = function
        | [] -> ()
        | _ when i >= k -> ()
        | (st : step) :: tl ->
          let rep = Eng.step eng ~inputs:Explore.mode_inputs.(st.mode) in
          if rep.Model.terminal then failwith "terminal";
          go (i + 1) tl
      in
      go 0 c.steps;
      let sts = Eng.states eng in
      let ids = Array.to_list (Array.mapi (fun p s -> Enc.find enc p s) sts) in
      if List.exists Option.is_none ids then None
      else Some (List.map Option.get ids)
    with Failure _ | Invalid_argument _ -> None

  (* Shift the largest reproducing suffix to the front: every on-path state
     is a legal initial configuration under the §2.5 quantification. *)
  let shift_pass h (c : t) =
    let len = List.length c.steps in
    let rec try_k k =
      if k <= 0 then c
      else
        match state_after h c k with
        | None -> try_k (k - 1)
        | Some init ->
          let cand = { c with init; steps = drop k c.steps } in
          if reproduces h cand then cand else try_k (k - 1)
    in
    try_k len

  (* Remove processes from daemon selections one at a time. *)
  let shrink_pass h (c : t) =
    let cur = ref c in
    let i = ref 0 in
    while !i < List.length !cur.steps do
      let st = List.nth !cur.steps !i in
      let removed = ref false in
      List.iter
        (fun p ->
          if (not !removed) && List.length st.selected > 1 then begin
            let sel' = List.filter (( <> ) p) st.selected in
            let steps' =
              List.mapi
                (fun j (s : step) ->
                  if j = !i then { s with selected = sel' } else s)
                !cur.steps
            in
            let cand = { !cur with steps = steps' } in
            if reproduces h cand then begin
              cur := cand;
              removed := true
            end
          end)
        st.selected;
      if not !removed then incr i
    done;
    !cur

  let minimize h (c : t) =
    match c.kind with
    | Safety _ ->
      let rec fix c =
        let c' = shrink_pass h (shift_pass h c) in
        if c' = c then c else fix c'
      in
      fix c
    | Deadlock | Livelock -> c
end
