(* Snap-stabilization on display: corrupt everything mid-run, watch the
   specification keep holding for every meeting convened afterwards.

       dune exec examples/fault_recovery.exe

   The run starts from an arbitrary configuration (as if transient faults
   had just hit), and half-way through a second burst of faults corrupts
   every process — committee pointers, statuses, lock flags, the whole
   token-circulation layer.  Snap-stabilization (Theorem 3) promises:

   - meetings convened after the faults satisfy the full specification
     (synchronization, exclusion, 2-phase discussion) — no warm-up period;
   - professor fairness resumes: everybody keeps getting served.

   The specification monitor checks every transition; the only exemption is
   for meetings that were already in progress when a fault hit (the paper:
   "there is no guarantee for the meetings started during the faults"). *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics
module Algos = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver

let () =
  let h = Families.fig4 () in
  let n = H.n h in
  let steps = 16_000 in
  let fault_step = steps / 2 in
  Format.printf "system: %a@.@." H.pp h;
  Format.printf
    "starting from an ARBITRARY configuration; at step %d a transient fault \
     corrupts all %d processes.@.@."
    fault_step n;
  let faults ~step = if step = fault_step then List.init n Fun.id else [] in
  let r =
    Algos.Run_cc2.run ~seed:13 ~init:`Random ~faults
      ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps h
  in
  Format.printf "%a@.@." Driver.pp_result r;

  (* convene activity before and after the fault *)
  let before, after =
    List.partition (fun (step, _) -> step < fault_step) r.Driver.convened
  in
  Format.printf "meetings convened before the fault: %d, after: %d@."
    (List.length before) (List.length after);
  Format.printf "spec violations across the whole run: %d@.@."
    (List.length r.Driver.violations);

  assert (r.Driver.violations = []);
  assert (List.length after > 0);
  assert (Array.for_all (fun c -> c > 0) r.Driver.participations);

  (* how quickly did meetings resume after the fault? *)
  (match after with
   | (first, e) :: _ ->
     Format.printf
       "first post-fault meeting: committee %a at step %d (%d steps after the \
        fault).@."
       (H.pp_edge h) e first (first - fault_step)
   | [] -> ());
  Format.printf
    "every professor was served both before and after the faults — \
     snap-stabilization means zero warm-up, zero bad meetings.@."
