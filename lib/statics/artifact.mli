(** Versioned serialization of the exact tier's guard/footprint tables.

    The format ([snapcc-tables v1]) is line-oriented text: a header
    (algorithm, topology, process count, action labels, per-process domain
    sizes) followed by one block per process — either its packed entry
    tables (support, sizes, strides, and one run-length-encoded row per
    input mode) or the reason its pass was skipped or streamed.  Entry rows
    RLE-compress well because the dominant value is [-1] (no action
    enabled). *)

val magic : string
(** First line of every artifact: ["snapcc-tables v1"]. *)

val to_lines : Snapcc_mc.Tables.portable -> string list
val of_lines : string list -> (Snapcc_mc.Tables.portable, string) result
(** Inverse of {!to_lines}; [Error] describes the first malformation. *)

val save : string -> Snapcc_mc.Tables.portable -> unit
val load : string -> (Snapcc_mc.Tables.portable, string) result
