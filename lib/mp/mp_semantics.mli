(** The scheduler half of the state-dissemination transformation, factored
    out of {!Mp_engine} so that the in-process emulation and the networked
    runtime ({!Snapcc_net}) share {e exactly} the same semantics: same
    fairness bounds, same staleness accounting, and — decision for decision
    — the same stream of RNG draws, so a fault-free networked run replays
    an [Mp_engine] run of the same seed event for event.

    One instance owns the run's random state ({!rng}: engines draw their
    random initial states and fault values from it, which is part of the
    shared semantics), the per-process activation-starvation counters and
    the per-link cache-age counters.  Each scheduler step either
    {e activates} a process (it executes its highest-priority enabled
    action on its possibly-stale view and re-broadcasts its state) or
    {e delivers} one pending message (refreshing the receiver's cache).
    Fairness: a process idle for [16 n] steps is force-activated; a pending
    message whose target cache entry is [16 n] steps old is
    force-delivered. *)

type t

type decision =
  | Activate of int  (** process index *)
  | Deliver of int * int  (** receiver, slot in its sorted neighbor array *)

val create :
  ?deliver_bias:float ->
  seed:int ->
  Snapcc_hypergraph.Hypergraph.t ->
  t
(** [deliver_bias] (default 0.5) is the probability that a step delivers a
    pending message rather than activating a process. *)

val rng : t -> Random.State.t
(** The run's single random state.  Initialization and fault injection must
    draw from it (in a fixed order) for two runs of the same seed to make
    the same decisions. *)

val fairness_bound : t -> int

val begin_step : t -> unit
(** Open a scheduler step: ages every cache entry and every activation
    counter, and updates the worst-staleness watermark. *)

val decide : t -> pending:(int * int) list -> decision
(** The decision for the step just opened.  [pending] lists the links
    (receiver, slot) holding a deliverable message, in the order
    {!Mp_engine} builds it (descending lexicographic); forced events are
    checked first, then the RNG chooses delivery vs activation. *)

val decide_masks : t -> masks:int array -> count:int -> decision
(** {!decide} over a packed pending set — [masks.(p)] has one bit per slot
    of [p]'s sorted neighbor array, [count] is the total number of set
    bits.  Makes exactly the same RNG draws and returns exactly the same
    decision as {!decide} on the corresponding descending-lexicographic
    list, without allocating it (the packed engine's steady-state path). *)

val on_activated : t -> int -> unit
(** Record that the process was activated (resets its starvation
    counter). *)

val on_cache_refresh : t -> dst:int -> slot:int -> unit
(** Record that the receiver's cache entry was refreshed by a delivery
    (resets its age). *)

val steps : t -> int
val max_staleness : t -> int
(** Largest number of steps any cache entry has gone without refresh over
    the whole run. *)
