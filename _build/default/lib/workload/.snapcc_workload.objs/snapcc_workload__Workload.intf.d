lib/workload/workload.mli: Snapcc_hypergraph Snapcc_runtime
