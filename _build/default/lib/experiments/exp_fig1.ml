(** EXP-F1 — Fig. 1: a hypergraph and its underlying communication network.

    Structural sanity: rebuilding Fig. 1's system must reproduce exactly
    the underlying network [G_H] printed in the paper. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families

type result = {
  committees : string list;
  network : (int * int) list;  (** edges in paper identifiers *)
  expected : (int * int) list;
  matches : bool;
}

let expected_network =
  [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (2, 5); (3, 4); (3, 6); (4, 5); (4, 6) ]

let run ?quick:_ () =
  let h = Families.fig1 () in
  let network = ref [] in
  Array.iteri
    (fun v nbrs ->
      Array.iter
        (fun u -> if v < u then network := (H.id h v, H.id h u) :: !network)
        nbrs)
    (H.underlying h);
  let network = List.sort compare !network in
  {
    committees =
      List.init (H.m h) (fun e -> Format.asprintf "%a" (H.pp_edge h) e);
    network;
    expected = expected_network;
    matches = network = expected_network;
  }

let ok r = r.matches

let table r =
  {
    Table.id = "fig1";
    title = "Fig. 1: hypergraph H and its underlying communication network G_H";
    header = [ "item"; "value" ];
    rows =
      [ [ "committees"; String.concat " " r.committees ];
        [ "computed G_H";
          String.concat " " (List.map (fun (a, b) -> Printf.sprintf "{%d,%d}" a b) r.network) ];
        [ "paper G_H";
          String.concat " "
            (List.map (fun (a, b) -> Printf.sprintf "{%d,%d}" a b) r.expected) ];
        [ "match"; Table.b r.matches ];
      ];
    notes = [];
  }
