lib/experiments/exp_conjecture.ml: Algos Driver Exp_impossibility List Snapcc_analysis Snapcc_hypergraph Snapcc_runtime Table
