(** The algorithms the networked runtime can serve, keyed by name and by
    {!Codec} wire tag.

    These are the same functor applications as [Snapcc_experiments.Algos]
    (the paper's three algorithms over the honest tree token substrate);
    OCaml's applicative functors make the state types compatible, and
    keeping the instantiations here spares the node runtime a dependency
    on the experiment harness. *)

module Cc1 : Snapcc_runtime.Model.ALGO
module Cc2 : Snapcc_runtime.Model.ALGO
module Cc3 : Snapcc_runtime.Model.ALGO

type entry = {
  name : string;
  tag : int;  (** {!Codec} algo tag *)
  algo : (module Snapcc_runtime.Model.ALGO);
}

val all : entry list
val find : string -> entry option
val find_tag : int -> entry option
