type elem = {
  name : string;
  pi : int array;
  eperm : int array;
  sigma : int array array;
}

type group = { elems : elem array; gens : elem list; complete : bool }

let identity ~n ~m ~domains =
  { name = "id";
    pi = Array.init n Fun.id;
    eperm = Array.init m Fun.id;
    sigma = Array.init n (fun p -> Array.init domains.(p) Fun.id) }

let is_identity g =
  let idp a = Array.for_all Fun.id (Array.mapi (fun i x -> i = x) a) in
  idp g.pi && idp g.eperm && Array.for_all idp g.sigma

(* [compose g f] = g ∘ f: first f, then g.  (g∘f).pi = g.pi ∘ f.pi, and
   process p's transport first applies f's (landing at f.pi p), then g's
   transport of that process. *)
let compose g f =
  let n = Array.length f.pi in
  { name = (if g.name = "id" then f.name
            else if f.name = "id" then g.name
            else g.name ^ "." ^ f.name);
    pi = Array.init n (fun p -> g.pi.(f.pi.(p)));
    eperm = Array.init (Array.length f.eperm) (fun e -> g.eperm.(f.eperm.(e)));
    sigma =
      Array.init n (fun p ->
          let gf = g.sigma.(f.pi.(p)) and fs = f.sigma.(p) in
          Array.init (Array.length fs) (fun i -> gf.(fs.(i)))) }

let invert g =
  let inv a =
    let r = Array.make (Array.length a) 0 in
    Array.iteri (fun i x -> r.(x) <- i) a;
    r
  in
  let n = Array.length g.pi in
  let sigma = Array.make n [||] in
  Array.iteri (fun p s -> sigma.(g.pi.(p)) <- inv s) g.sigma;
  { name = g.name ^ "'"; pi = inv g.pi; eperm = inv g.eperm; sigma }

let equal_elem a b = a.pi = b.pi && a.eperm = b.eperm && a.sigma = b.sigma

let close ?(cap = 4096) ~n ~m ~domains gens =
  let id = identity ~n ~m ~domains in
  let tbl = Hashtbl.create 64 in
  let key g = (g.pi, g.sigma) in
  let out = ref [] and count = ref 0 in
  let queue = Queue.create () in
  let add g =
    if not (Hashtbl.mem tbl (key g)) then begin
      Hashtbl.add tbl (key g) ();
      out := g :: !out;
      incr count;
      Queue.add g queue
    end
  in
  add id;
  List.iter add gens;
  let complete = ref true in
  (try
     while not (Queue.is_empty queue) do
       let g = Queue.pop queue in
       List.iter
         (fun f ->
           if !count >= cap then raise Exit;
           add (compose f g))
         gens
     done
   with Exit -> complete := false);
  (* identity first: canonicalization probes it before anything else, and
     certificates print deterministically *)
  let elems =
    List.sort
      (fun a b ->
        match (is_identity a, is_identity b) with
        | true, false -> -1
        | false, true -> 1
        | _ -> compare (a.pi, a.sigma) (b.pi, b.sigma))
      !out
  in
  { elems = Array.of_list elems; gens; complete = !complete }

let trivial ~n ~m ~domains =
  { elems = [| identity ~n ~m ~domains |]; gens = []; complete = true }

let order g = Array.length g.elems

let apply g x =
  let n = Array.length x in
  let y = Array.make n 0 in
  for p = 0 to n - 1 do
    y.(g.pi.(p)) <- g.sigma.(p).(x.(p))
  done;
  y

let in_domain grp x =
  let id = grp.elems.(0) in
  let ok = ref true in
  Array.iteri
    (fun p i -> if i >= Array.length id.sigma.(p) then ok := false)
    x;
  !ok

let canonical grp x =
  let n = Array.length x in
  let best = Array.copy x and cand = Array.make n 0 in
  let best_i = ref 0 in
  (* elems.(0) is the identity: start from x itself *)
  for gi = 1 to Array.length grp.elems - 1 do
    let g = grp.elems.(gi) in
    for p = 0 to n - 1 do
      cand.(g.pi.(p)) <- g.sigma.(p).(x.(p))
    done;
    if compare cand best < 0 then begin
      Array.blit cand 0 best 0 n;
      best_i := gi
    end
  done;
  (best, !best_i)

let map_mask eperm mask =
  let r = ref 0 in
  Array.iteri (fun e e' -> if mask land (1 lsl e) <> 0 then r := !r lor (1 lsl e')) eperm;
  !r

let inverse_map_mask eperm mask =
  let r = ref 0 in
  Array.iteri (fun e e' -> if mask land (1 lsl e') <> 0 then r := !r lor (1 lsl e)) eperm;
  !r
