(** Launching and reaping the node processes.

    Two spawn modes:
    - [Fork]: each node is [Unix.fork]ed from the current process and
      speaks over a socketpair.  Used by the tests and the in-process
      benchmark — everything runs under [dune runtest] with no
      executable-path plumbing.
    - [Exec exe]: each node is [exe node --id I --connect PORT], dialing a
      TCP loopback listener on an ephemeral port — real separate
      executables, as [ccsim net] runs them (with
      [exe = Sys.executable_name]).

    In both modes {!launch} completes the [Hello] handshake, so the
    returned descriptors are ready for the [Init] exchange. *)

type mode = Fork | Exec of string

type node = { id : int; pid : int; fd : Unix.file_descr }

val launch : mode -> n:int -> node array
(** Indexed by node id.  Raises [Failure] if a node fails to come up. *)

val fork_pool :
  n:int -> serve:(id:int -> Unix.file_descr -> unit) -> node array
(** The bare forking machinery behind [Fork]-mode {!launch}: [n] children,
    each connected to the parent by a socketpair and running
    [serve ~id child_fd] before [Unix._exit] (exit status 1 if [serve]
    raised).  No protocol is imposed on the descriptors — [launch] layers
    the [Hello] handshake on top; the statistical tier ([Snapcc_smc.Pool])
    streams length-prefixed result frames over them instead.  Reap with
    {!shutdown}. *)

val connect : port:int -> Unix.file_descr
(** Node-side dial for [Exec] mode ([ccsim node --connect PORT]). *)

val shutdown : node array -> unit
(** Close every descriptor and reap every pid (idempotent, never
    raises) — use after the [Bye] exchange, and on error paths after
    {!kill}. *)

val kill : node array -> unit
(** Force-terminate the nodes (SIGKILL); pair with {!shutdown}. *)
