(** The honest [TC] substrate: self-stabilizing DFS token circulation on
    arbitrary connected networks, in the style of the tree-wave (PIF)
    constructions the paper builds on [9,10,24–27].

    {!Leader} elects the minimum identifier and maintains a BFS spanning
    tree with published child lists; on that tree each process keeps a wave
    position ([-1] clean, [0] token held, [i] in child [i]'s subtree,
    [k+1] done).  The unique legitimate token is the end of the consistent
    parent-pointer chain from the root; a process engaged without its
    parent's blessing resets itself through an {e internal} action — so
    surplus tokens die independently of whether the legitimate holder ever
    releases, which is exactly Property 1's third requirement (see
    DESIGN.md for the deadlock that motivated this design). *)

type state = {
  le : Leader.t;
  pos : int;  (** wave position: -1 clean, 0 token, 1..k in child i, k+1 done *)
}

include Layer.S with type state := state

val engaged_ok :
  Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
(** The parent chain names this process (always true for a local root):
    the consistency link whose global composition pins the unique token. *)
