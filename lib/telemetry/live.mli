(** Live surfaces for long soaks: an in-place TTY dashboard and a
    Prometheus text exposition, both fed from the hub's event fan-out.

    A {!t} folds events into a {!Registry} (delivery/drop counters per
    reason, latency and waiting histograms, Spec verdict counts) and drives
    any number of throttled outputs.  Timing and IO are injected — this
    library has no Unix dependency — so [bin/ccsim] passes wall-clock [now]
    and the writers. *)

type t

val create : registry:Registry.t -> unit -> t
(** [registry] is shared with the hub, so instruments fed elsewhere (e.g.
    the observer's [wait_steps] histogram) appear on the surfaces too. *)

val observe : t -> Event.stamped -> unit
(** Fold one event; called by the {!sink}.  Renders any output whose
    interval has elapsed. *)

val render_dash : t -> string
(** The dashboard body (no terminal control codes), one trailing newline
    per line. *)

val write_prom : t -> path:string -> unit
(** Write the registry's Prometheus exposition to [path] atomically
    (temp file + rename). *)

val add_dash : ?interval:float -> t -> now:(unit -> float) -> write:(string -> unit) -> unit
(** In-place dashboard: each redraw erases the previous one with ANSI
    cursor movement, so it wants a TTY writer (stderr). *)

val add_prom : ?interval:float -> t -> now:(unit -> float) -> path:string -> unit

val sink : t -> Sink.t
(** The hub-attachable sink.  Closing it renders every output once more,
    so the final state is always visible/scrapable. *)
