lib/runtime/daemon.ml: List Printf Random
