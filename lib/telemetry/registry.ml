type counter = { mutable count : int }
type gauge = { mutable value : float }

type histogram = {
  mutable samples : int array;
  mutable len : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16 }

let find_or_add tbl name mk =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = mk () in
    Hashtbl.add tbl name v;
    v

let counter t name = find_or_add t.counters name (fun () -> { count = 0 })
let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let gauge t name = find_or_add t.gauges name (fun () -> { value = 0. })
let set_gauge g v = g.value <- v
let gauge_value g = g.value

let histogram t name =
  find_or_add t.histograms name (fun () -> { samples = Array.make 16 0; len = 0 })

let observe h v =
  if h.len = Array.length h.samples then begin
    let bigger = Array.make (2 * h.len) 0 in
    Array.blit h.samples 0 bigger 0 h.len;
    h.samples <- bigger
  end;
  h.samples.(h.len) <- v;
  h.len <- h.len + 1

let hist_count h = h.len
let hist_values h = Array.to_list (Array.sub h.samples 0 h.len)

let percentile q h =
  if h.len = 0 then 0
  else begin
    let sorted = Array.sub h.samples 0 h.len in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (q *. float_of_int h.len)) in
    sorted.(max 0 (min (h.len - 1) (rank - 1)))
  end

(* The one definition of the delivery-latency histogram edges (µs, upper
   bounds, overflow last): the net summary, `ccsim stats`, bench and the
   Prometheus exposition all bucketize against this array. *)
let latency_buckets_us = [| 50; 100; 250; 500; 1_000; 2_500; 5_000; 10_000; max_int |]

let bucket_label i =
  if latency_buckets_us.(i) = max_int then
    Printf.sprintf ">%dus" latency_buckets_us.(Array.length latency_buckets_us - 2)
  else Printf.sprintf "<=%dus" latency_buckets_us.(i)

let bucket_counts samples =
  let counts = Array.make (Array.length latency_buckets_us) 0 in
  List.iter
    (fun us ->
      let i = ref 0 in
      while us > latency_buckets_us.(!i) do i := !i + 1 done;
      counts.(!i) <- counts.(!i) + 1)
    samples;
  Array.to_list (Array.mapi (fun i c -> (bucket_label i, c)) counts)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json t =
  let hist_json h =
    let vals = hist_values h in
    let sum = List.fold_left ( + ) 0 vals in
    Json.Obj
      [ ("count", Json.Int h.len);
        ("min",
         Json.Int (match vals with [] -> 0 | l -> List.fold_left min max_int l));
        ("max",
         Json.Int (match vals with [] -> 0 | l -> List.fold_left max min_int l));
        ("mean",
         Json.Float
           (if h.len = 0 then 0. else float_of_int sum /. float_of_int h.len));
        ("p50", Json.Int (percentile 0.50 h));
        ("p90", Json.Int (percentile 0.90 h));
        ("p95", Json.Int (percentile 0.95 h));
        ("p99", Json.Int (percentile 0.99 h)) ]
  in
  Json.Obj
    [ ("counters",
       Json.Obj
         (List.map
            (fun (k, c) -> (k, Json.Int c.count))
            (sorted_bindings t.counters)));
      ("gauges",
       Json.Obj
         (List.map
            (fun (k, g) -> (k, Json.Float g.value))
            (sorted_bindings t.gauges)));
      ("histograms",
       Json.Obj
         (List.map (fun (k, h) -> (k, hist_json h)) (sorted_bindings t.histograms)))
    ]

(* Prometheus text exposition (version 0.0.4).  Histograms render as
   summaries — the registry keeps raw samples, so quantiles are exact
   nearest-rank, not bucket-interpolated. *)
let prom_name prefix k =
  let b = Bytes.of_string (prefix ^ k) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

let to_prometheus ?(prefix = "snapcc_") t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (k, c) ->
      let name = prom_name prefix k in
      line "# TYPE %s counter" name;
      line "%s %d" name c.count)
    (sorted_bindings t.counters);
  List.iter
    (fun (k, g) ->
      let name = prom_name prefix k in
      line "# TYPE %s gauge" name;
      line "%s %.6g" name g.value)
    (sorted_bindings t.gauges);
  List.iter
    (fun (k, h) ->
      let name = prom_name prefix k in
      line "# TYPE %s summary" name;
      List.iter
        (fun q -> line "%s{quantile=\"%.2g\"} %d" name q (percentile q h))
        [ 0.5; 0.9; 0.95; 0.99 ];
      line "%s_sum %d" name (List.fold_left ( + ) 0 (hist_values h));
      line "%s_count %d" name h.len)
    (sorted_bindings t.histograms);
  Buffer.contents buf
