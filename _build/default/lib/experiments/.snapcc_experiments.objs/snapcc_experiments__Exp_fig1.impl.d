lib/experiments/exp_fig1.ml: Array Format List Printf Snapcc_hypergraph String Table
