(** Professors as request generators.

    A workload drives the [RequestIn]/[RequestOut] input predicates of §2.3
    from the observable configuration, honoring the paper's contract:
    [RequestOut(p)] eventually holds while [p] discusses (or once the
    meeting around it has broken up), and it remains true until [p] leaves.
    Workloads are deterministic given their seed. *)

type t

val name : t -> string

val inputs : t -> Snapcc_runtime.Obs.t array -> Snapcc_runtime.Model.inputs
(** The input predicates for the upcoming step, given the current
    configuration. *)

val observe : t -> step:int -> Snapcc_runtime.Obs.t array -> unit
(** Post-step notification letting the workload advance discussion timers. *)

val always_requesting :
  ?disc_len:(int -> int) -> Snapcc_hypergraph.Hypergraph.t -> t
(** Professors wait for meetings infinitely often (the §5 assumption):
    [RequestIn] constantly true; [RequestOut(p)] rises after [p] has spent
    [disc_len p] steps (default 2) in the [done] status — its voluntary
    discussion — and falls when [p] leaves. *)

val bursty :
  ?disc_len:(int -> int) -> ?p_request:float -> seed:int ->
  Snapcc_hypergraph.Hypergraph.t -> t
(** Idle professors toss a coin each step to start requesting (sticky until
    served); discussion handled as in {!always_requesting}.  Exercises CC1's
    [idle] status and [Token2] release. *)

val selective :
  ?disc_len:(int -> int) -> requesters:int list ->
  Snapcc_hypergraph.Hypergraph.t -> t
(** Only the listed professors ever request (the others stay idle forever):
    the adversarial population of the Theorem 1 scenario. *)

val infinite_meetings : Snapcc_hypergraph.Hypergraph.t -> t
(** Everyone requests, nobody ever agrees to leave: meetings last forever.
    This is the artefact used to define Maximal Concurrency (Definition 2)
    and the quiescent state of the Degree of Fair Concurrency
    (Definition 5). *)

val of_closures :
  name:string ->
  inputs:(Snapcc_runtime.Obs.t array -> Snapcc_runtime.Model.inputs) ->
  observe:(step:int -> Snapcc_runtime.Obs.t array -> unit) ->
  t
(** Fully custom reactive workload (used by the scenario replays). *)

val scripted :
  name:string ->
  request_in:(step:int -> int -> bool) ->
  request_out:(step:int -> int -> bool) ->
  unit -> t
(** Fully scripted predicates (deterministic replays of the paper's
    figures). *)
