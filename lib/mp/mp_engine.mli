(** Message-passing emulation of the locally-shared-memory model — the
    substrate for the paper's first future-work item (§7: "design a
    fault-tolerant committee coordination algorithm in the message-passing
    model").

    The classical state-dissemination transformation: each process keeps its
    algorithm state plus a {e cache} of the last state received from each
    neighbor; guards and statements are evaluated against that possibly
    stale view.  Every activation re-broadcasts the process' current state
    to all neighbors (heartbeat — required for recovery, since caches and
    channels can be corrupted by transient faults).  Links carry full-state
    snapshots and are {e coalescing}: a link holds at most the latest
    undelivered snapshot, so channel capacity is bounded by construction
    (the standard assumption for stabilization in message passing).

    An adversarial-but-fair scheduler interleaves two kinds of events:
    process activations and message deliveries.  The {e true}
    configuration (the cores) is what the monitors observe; staleness lives
    only in caches. *)

module Make (A : Snapcc_runtime.Model.ALGO) : sig
  type t

  type event =
    | Activated of int * string option
        (** process, label of the executed action ([None]: nothing enabled
            on its view; it still re-broadcast) *)
    | Delivered of int * int  (** receiver, sender *)

  val create :
    ?seed:int ->
    ?init:[ `Canonical | `Random ] ->
    ?deliver_bias:float ->
    ?telemetry:Snapcc_telemetry.Hub.t ->
    ?vclock:bool ->
    ?packed:A.state Snapcc_runtime.Model.packed ->
    Snapcc_hypergraph.Hypergraph.t ->
    t
  (** [deliver_bias] (default 0.5) is the probability that a step delivers a
      pending message rather than activating a process; staleness grows as
      it shrinks.  [`Random] also randomizes caches and channels.
      [telemetry] receives [mp_activated] per activation, [mp_delivered]
      per delivery and [fault] on {!corrupt}, stamped with the scheduler
      step.

      [vclock] (default [true], effective only with [telemetry]) maintains
      per-process vector clocks — initial-configuration events, acting
      activations, accepted deliveries and corruptions each tick/merge per
      the rules in {!Snapcc_telemetry.Vclock} — and emits one [clock]
      event per such event, carrying the clock and the process' packed
      local observation.  Stamping is purely observational: it never
      touches the rng, so a stamped run is event-for-event identical to an
      unstamped one.

      [packed] enables the table-driven fast path: guard scans on each
      activation become one packed-table lookup, and the scheduler's
      pending list becomes a bitmask.  Strictly an accelerator — the typed
      views stay authoritative, statements still execute, and a packed run
      is event-for-event identical to the closure run of the same seed
      (cells without a stored table, or whose support leaks outside the
      closed neighborhood, transparently fall back to the guard
      closures). *)

  val hypergraph : t -> Snapcc_hypergraph.Hypergraph.t

  val engine_kind : t -> [ `Packed | `Closure ]
  (** Which stepping path this run is on.  [`Packed] requires [?packed]
      hooks at {!create} and degrades to [`Closure] permanently if the
      interner ever overflows (never silently wrong, just slower). *)

  val obs : t -> Snapcc_runtime.Obs.t array
  (** Observation of the true (core) configuration. *)

  val step : t -> inputs:Snapcc_runtime.Model.inputs -> event
  (** One scheduler event.  Fairness: starving processes and old pending
      messages are force-selected, so every process is activated and every
      sent snapshot delivered infinitely often. *)

  val steps_taken : t -> int
  val messages_delivered : t -> int
  val messages_sent : t -> int
  val in_flight : t -> int

  val corrupt : t -> victims:int list -> unit
  (** Transient fault: randomize the victims' cores, caches, and every
      channel adjacent to them. *)

  val max_staleness : t -> int
  (** Diagnostic: the largest number of steps any cache entry has gone
      without refresh, over the whole run. *)

  val profile : t -> (string * int) list
  (** Cheap monotonic hot-path counters: [mp_pk_hits] (guard scans served
      by the packed table), [mp_pk_fallbacks] (closure fallbacks on the
      packed path), [mp_activations], [mp_deliveries]. *)
end
