lib/runtime/engine.ml: Array Daemon Fun List Model Option Printf Random Snapcc_hypergraph
