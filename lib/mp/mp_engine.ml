module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Tele = Snapcc_telemetry
module Sem = Mp_semantics

module Make (A : Model.ALGO) = struct
  module View = Mp_view.Make (A)

  type event =
    | Activated of int * string option
    | Delivered of int * int

  type t = {
    h : H.t;
    sem : Sem.t;  (* scheduler + rng: the shared transformation semantics *)
    telemetry : Tele.Hub.t option;
    views : View.t array;  (* per-process core + per-neighbor cache *)
    chan : A.state option array array;  (* chan.(p).(i): pending from i-th neighbor *)
    mutable sent : int;
    mutable delivered : int;
  }

  let create ?(seed = 0) ?(init = `Canonical) ?(deliver_bias = 0.5) ?telemetry h
      =
    let n = H.n h in
    let sem = Sem.create ~deliver_bias ~seed h in
    let rng = Sem.rng sem in
    let mk p = match init with `Canonical -> A.init h p | `Random -> A.random_init h rng p in
    let states = Array.init n mk in
    let views =
      Array.init n (fun p ->
          View.create h ~self:p ~core:states.(p)
            ~cache:
              (Array.map
                 (fun q ->
                   match init with
                   | `Canonical -> states.(q)
                   | `Random -> A.random_init h rng q)
                 (H.neighbors h p)))
    in
    let chan =
      Array.init n (fun p ->
          Array.map
            (fun q ->
              match init with
              | `Canonical -> None
              | `Random ->
                if Random.State.bool rng then Some (A.random_init h rng q) else None)
            (H.neighbors h p))
    in
    { h; sem; telemetry; views; chan; sent = 0; delivered = 0 }

  let hypergraph t = t.h

  let obs t =
    let cores = Array.map View.core t.views in
    Array.init (H.n t.h) (A.observe t.h cores)

  let steps_taken t = Sem.steps t.sem
  let messages_delivered t = t.delivered
  let messages_sent t = t.sent
  let max_staleness t = Sem.max_staleness t.sem

  let in_flight t =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun a m -> if m = None then a else a + 1) acc row)
      0 t.chan

  let emit t ev =
    match t.telemetry with None -> () | Some hub -> Tele.Hub.emit hub ev

  let broadcast t p =
    Array.iteri
      (fun _i q ->
        t.chan.(q).(View.slot t.views.(q) p) <- Some (View.core t.views.(p));
        t.sent <- t.sent + 1)
      (H.neighbors t.h p)

  let activate t ~inputs p =
    let label = View.activate t.views.(p) ~inputs in
    broadcast t p;
    Sem.on_activated t.sem p;
    emit t (Tele.Event.Mp_activated { step = Sem.steps t.sem; p; label });
    Activated (p, label)

  let deliver t p i =
    (match t.chan.(p).(i) with
     | Some msg ->
       View.refresh t.views.(p) ~slot:i msg;
       Sem.on_cache_refresh t.sem ~dst:p ~slot:i;
       t.chan.(p).(i) <- None;
       t.delivered <- t.delivered + 1
     | None -> ());
    let src = (H.neighbors t.h p).(i) in
    emit t (Tele.Event.Mp_delivered { step = Sem.steps t.sem; dst = p; src });
    Delivered (p, src)

  let pending t =
    let acc = ref [] in
    Array.iteri
      (fun p row ->
        Array.iteri (fun i m -> if m <> None then acc := (p, i) :: !acc) row)
      t.chan;
    !acc

  let step t ~inputs =
    Sem.begin_step t.sem;
    match Sem.decide t.sem ~pending:(pending t) with
    | Sem.Activate p -> activate t ~inputs p
    | Sem.Deliver (p, i) -> deliver t p i

  let corrupt t ~victims =
    let rng = Sem.rng t.sem in
    emit t (Tele.Event.Fault { step = Sem.steps t.sem; victims });
    List.iter
      (fun p ->
        if p < 0 || p >= H.n t.h then invalid_arg "mp corrupt: bad victim";
        View.set_core t.views.(p) (A.random_init t.h rng p);
        Array.iteri
          (fun i q -> View.refresh t.views.(p) ~slot:i (A.random_init t.h rng q))
          (H.neighbors t.h p);
        Array.iteri
          (fun i q ->
            if Random.State.bool rng then
              t.chan.(p).(i) <- Some (A.random_init t.h rng q))
          (H.neighbors t.h p))
      victims
end
