(* Wald's sequential probability ratio test over Bernoulli observations.

   The claim "P(success) >= theta" is tested with an indifference region
   of half-width delta: H1 is p >= theta + delta, H0 is p <= theta -
   delta.  The log-likelihood ratio walks up on success and down on
   failure; crossing log((1-beta)/alpha) accepts the claim, crossing
   log(beta/(1-alpha)) rejects it, and Wald's bounds guarantee the error
   rates alpha (false accept of H1) and beta (false reject) up to the
   usual overshoot slack. *)

type spec = { theta : float; delta : float; alpha : float; beta : float }

type verdict = Accepted | Rejected | Undecided

type t = {
  spec : spec;
  up : float;  (* llr increment on success *)
  down : float;  (* llr increment on failure *)
  accept_bound : float;
  reject_bound : float;
  mutable llr : float;
  mutable consumed : int;
  mutable successes : int;
  mutable verdict : verdict;
}

type outcome = {
  spec : spec;
  verdict : verdict;
  consumed : int;
  successes : int;
  llr : float;
}

let eps = 1e-9

let create spec : t =
  if spec.theta < 0. || spec.theta > 1. then
    invalid_arg "Sprt.create: theta must be in [0,1]";
  if spec.delta <= 0. then invalid_arg "Sprt.create: delta must be positive";
  if spec.alpha <= 0. || spec.alpha >= 1. || spec.beta <= 0. || spec.beta >= 1.
  then invalid_arg "Sprt.create: alpha and beta must be in (0,1)";
  let p0 = Float.max eps (spec.theta -. spec.delta) in
  let p1 = Float.min (1. -. eps) (spec.theta +. spec.delta) in
  { spec;
    up = log (p1 /. p0);
    down = log ((1. -. p1) /. (1. -. p0));
    accept_bound = log ((1. -. spec.beta) /. spec.alpha);
    reject_bound = log (spec.beta /. (1. -. spec.alpha));
    llr = 0.;
    consumed = 0;
    successes = 0;
    verdict = Undecided }

let feed (t : t) success =
  if t.verdict = Undecided then begin
    t.consumed <- t.consumed + 1;
    if success then begin
      t.successes <- t.successes + 1;
      t.llr <- t.llr +. t.up
    end
    else t.llr <- t.llr +. t.down;
    if t.llr >= t.accept_bound then t.verdict <- Accepted
    else if t.llr <= t.reject_bound then t.verdict <- Rejected
  end

let verdict (t : t) = t.verdict

let outcome (t : t) : outcome =
  { spec = t.spec;
    verdict = t.verdict;
    consumed = t.consumed;
    successes = t.successes;
    llr = t.llr }

let verdict_name = function
  | Accepted -> "accepted"
  | Rejected -> "rejected"
  | Undecided -> "undecided"
