(** Algorithm 1 (paper §4): snap-stabilizing 2-phase committee coordination
    with {e Maximal Concurrency}, composed with a token layer [T] by fair
    composition ([CC1 ∘ TC]).

    This interface is the public surface the static analyzer
    ([lib/statics]), the experiments and the tests rely on: a
    {!Snapcc_runtime.Model.ALGO} plus the committee-layer projection and
    the [Correct] predicate of the closure lemmas. *)

(** The committee-coordination variables of one process. *)
type cc = {
  s : Cc_common.status;  (** [Sp] *)
  ptr : int option;  (** [Pp] (committee edge id, [None] = ⊥) *)
  tf : bool;  (** [Tp], the mirrored token flag *)
  disc : int;  (** essential discussions performed (observability) *)
}

module Make (T : Snapcc_token.Layer.S) (P : Cc_common.PARAMS) : sig
  include Snapcc_runtime.Model.ALGO with type state = cc * T.state

  val cc : state -> cc
  (** Project the committee layer out of the composed state. *)

  val correct :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
  (** The [Correct(p)] predicate, exposed for the closure tests (Lemma 3). *)
end

(** CC1 with the default edge choice. *)
module Std (T : Snapcc_token.Layer.S) : sig
  include Snapcc_runtime.Model.ALGO with type state = cc * T.state

  val cc : state -> cc

  val correct :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
end
