(** The degenerate token layer: nobody ever holds a token.

    Used for the ablation experiments only — composing CC1 with this layer
    shows why the circulating token is needed for Progress (meetings whose
    members all wait can still starve behind identifier-priority races). *)

module Model = Snapcc_runtime.Model

type state = unit

let name = "token-null"
let pp_state ppf () = Format.pp_print_string ppf "-"
let equal_state () () = true
let init _ _ = ()
let random_init _ _ _ = ()
let has_token _ ~read:_ _ = false
let release _ ~read:_ _ = ()
let internal_actions _ : state Model.action list = []
let domain _ _ = [ () ]
let rename _ ~pi:_ _ () = ()
let state_symmetries _ = []
