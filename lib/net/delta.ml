(* XOR-delta coding of snapshot payloads against a base both ends agree
   on.  Payloads are treated as sequences of 8-byte words (the packed
   engine's configuration words; the last word is zero-padded): a delta
   records only the words that changed, XORed against the base, plus a
   CRC-32 of the reconstructed target so an out-of-sync base is detected
   — never silently applied. *)

let word = 8
let max_words = 0xff

let nwords len = (len + word - 1) / word

(* the i-th zero-padded 8-byte word of [s] *)
let get_word s i =
  let v = ref 0L in
  let len = String.length s in
  for k = word - 1 downto 0 do
    let j = (i * word) + k in
    let b = if j < len then Char.code s.[j] else 0 in
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
  done;
  !v

let encode ~base ~target =
  let len = String.length target in
  if String.length base <> len || nwords len > max_words then None
  else begin
    let changed = ref [] in
    let count = ref 0 in
    for i = nwords len - 1 downto 0 do
      let x = Int64.logxor (get_word base i) (get_word target i) in
      if x <> 0L then begin
        changed := (i, x) :: !changed;
        incr count
      end
    done;
    if !count > max_words then None
    else begin
      let b = Buffer.create (2 + (!count * (word + 1)) + 4) in
      Buffer.add_char b (Char.chr !count);
      List.iter
        (fun (i, x) ->
          Buffer.add_char b (Char.chr i);
          for k = 0 to word - 1 do
            Buffer.add_char b
              (Char.chr
                 (Int64.to_int (Int64.shift_right_logical x (8 * k)) land 0xff))
          done)
        !changed;
      let crc = Codec.crc32 target in
      let crc = Int32.to_int (Int32.logand crc 0xFFFFFFFFl) land 0xFFFFFFFF in
      Buffer.add_char b (Char.chr ((crc lsr 24) land 0xff));
      Buffer.add_char b (Char.chr ((crc lsr 16) land 0xff));
      Buffer.add_char b (Char.chr ((crc lsr 8) land 0xff));
      Buffer.add_char b (Char.chr (crc land 0xff));
      Some (Buffer.contents b)
    end
  end

let apply ~base delta =
  let dlen = String.length delta in
  if dlen < 5 then None
  else begin
    let count = Char.code delta.[0] in
    if dlen <> 1 + (count * (word + 1)) + 4 then None
    else begin
      let len = String.length base in
      let out = Bytes.of_string base in
      let ok = ref true in
      for c = 0 to count - 1 do
        let off = 1 + (c * (word + 1)) in
        let i = Char.code delta.[off] in
        if i >= nwords len then ok := false
        else
          for k = 0 to word - 1 do
            let j = (i * word) + k in
            if j < len then
              Bytes.set out j
                (Char.chr
                   (Char.code (Bytes.get out j)
                   lxor Char.code delta.[off + 1 + k]))
            else if delta.[off + 1 + k] <> '\000' then
              (* xor bits beyond the payload: the base is not what the
                 encoder diffed against *)
              ok := false
          done
      done;
      if not !ok then None
      else begin
        let target = Bytes.to_string out in
        let stored =
          (Char.code delta.[dlen - 4] lsl 24)
          lor (Char.code delta.[dlen - 3] lsl 16)
          lor (Char.code delta.[dlen - 2] lsl 8)
          lor Char.code delta.[dlen - 1]
        in
        let crc =
          Int32.to_int (Int32.logand (Codec.crc32 target) 0xFFFFFFFFl)
          land 0xFFFFFFFF
        in
        if crc <> stored then None else Some target
      end
    end
  end
