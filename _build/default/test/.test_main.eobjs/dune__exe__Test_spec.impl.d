test/test_spec.ml: Alcotest Array List Snapcc_analysis Snapcc_hypergraph Snapcc_runtime
