lib/experiments/exp_dynamic.ml: Algos Array Driver List Option Snapcc_analysis Snapcc_core Snapcc_hypergraph Snapcc_runtime Snapcc_token Snapcc_workload Table
