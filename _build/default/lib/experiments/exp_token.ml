(** EXP-TC — Property 1 of the token substrate.

    From arbitrary configurations of the tree-based [TC] (leader election +
    DFS-wave circulation), measure: the step at which the "at most one
    token" invariant starts holding for good (self-stabilization of the
    substrate), and — once stabilized — the cost of a full circulation lap
    (every process served once), in steps, as the network grows.  A DFS lap
    traverses each tree edge twice, so it costs Θ(n) moves. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Model = Snapcc_runtime.Model
module Daemon = Snapcc_runtime.Daemon
module A = Snapcc_token.Layer.As_algo (Snapcc_token.Token_tree)
module E = Snapcc_runtime.Engine.Make (A)

type point = {
  topo : string;
  n : int;
  stabilization_steps : int;  (** max over seeds: last step with >1 token *)
  lap_steps : float;  (** mean steps for a full lap after stabilization *)
  laps_measured : int;
}

type result = point list

let token_count eng =
  Array.fold_left
    (fun a (o : Snapcc_runtime.Obs.t) -> if o.Snapcc_runtime.Obs.has_token then a + 1 else a)
    0 (E.obs eng)

let measure ~seeds ~topo h =
  let n = H.n h in
  let horizon = 1_500 * n in
  let worst_stab = ref 0 in
  let lap_acc = ref 0. and lap_n = ref 0 in
  List.iter
    (fun seed ->
      let eng = E.create ~seed ~init:`Random ~daemon:(Daemon.random_subset ()) h in
      let last_multi = ref 0 in
      let served = Hashtbl.create n in
      let lap_start = ref None in
      let on_step eng (r : Model.step_report) =
        if token_count eng > 1 then last_multi := r.Model.step;
        List.iter
          (fun (p, l) ->
            if l = "T" then begin
              (match !lap_start with
               | None -> lap_start := Some (r.Model.step, 0)
               | Some _ -> ());
              if not (Hashtbl.mem served p) then Hashtbl.add served p ();
              if Hashtbl.length served = n then begin
                (match !lap_start with
                 | Some (s0, _) ->
                   lap_acc := !lap_acc +. float_of_int (r.Model.step - s0);
                   incr lap_n
                 | None -> ());
                Hashtbl.reset served;
                lap_start := Some (r.Model.step, 0)
              end
            end)
          r.Model.executed
      in
      let _ =
        E.run eng ~steps:horizon ~inputs_at:(fun _ -> Model.no_inputs) ~on_step ()
      in
      worst_stab := max !worst_stab !last_multi)
    seeds;
  {
    topo;
    n;
    stabilization_steps = !worst_stab;
    lap_steps = (if !lap_n = 0 then 0. else !lap_acc /. float_of_int !lap_n);
    laps_measured = !lap_n;
  }

let run ?(quick = false) () : result =
  let seeds = Exp_common.seeds ~quick in
  let topos =
    (if quick then [ 4; 8 ] else [ 4; 8; 12; 16 ])
    |> List.map (fun n -> (Printf.sprintf "ring%d" n, Families.pair_ring n))
  in
  let extra =
    if quick then []
    else [ ("fig1", Families.fig1 ()); ("star8", Families.star 8) ]
  in
  List.map (fun (topo, h) -> measure ~seeds ~topo h) (topos @ extra)

let table (r : result) =
  {
    Table.id = "tc-property1";
    title =
      "Token substrate (leader election + DFS wave): stabilization and lap \
       cost";
    header = [ "topology"; "n"; "stabilization (steps)"; "lap (steps, mean)"; "laps" ];
    rows =
      List.map
        (fun p ->
          [ p.topo; Table.i p.n; Table.i p.stabilization_steps;
            Table.f1 p.lap_steps; Table.i p.laps_measured ])
        r;
    notes =
      [ "A lap serves every process once; a DFS wave crosses each tree edge \
         twice, so lap cost grows linearly in n.";
      ];
  }

let ok (r : result) = List.for_all (fun p -> p.laps_measured > 0) r
