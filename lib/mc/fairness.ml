type livelock = { witness : int; scc_size : int; cycle : int list list }

type verdict = {
  sccs : int;
  largest_scc : int;
  nontrivial_sccs : int;
  deadlocks : int list;
  livelocks : livelock list;
}

let ok v = v.deadlocks = [] && v.livelocks = []

let bits_list mask =
  let rec go p m acc =
    if m = 0 then List.rev acc
    else go (p + 1) (m lsr 1) (if m land 1 = 1 then p :: acc else acc)
  in
  go 0 mask []

(* A convene-free cycle witness -> ... -> witness (>= 1 edge) inside the
   component, by BFS over internal edges. *)
let find_cycle ~succs ~in_comp witness =
  let pred = Hashtbl.create 64 in
  let q = Queue.create () in
  let seed = ref [] in
  List.iter
    (fun (dst, sel) ->
      if in_comp dst then seed := (dst, sel) :: !seed)
    (succs witness);
  let found = ref None in
  List.iter
    (fun (dst, sel) ->
      if !found = None then
        if dst = witness then found := Some (dst, sel)
        else if not (Hashtbl.mem pred dst) then begin
          Hashtbl.add pred dst (witness, sel);
          Queue.add dst q
        end)
    (List.rev !seed);
  while !found = None && not (Queue.is_empty q) do
    let v = Queue.take q in
    List.iter
      (fun (dst, sel) ->
        if !found = None && in_comp dst then
          if dst = witness then found := Some (v, sel)
          else if not (Hashtbl.mem pred dst) then begin
            Hashtbl.add pred dst (v, sel);
            Queue.add dst q
          end)
      (succs v)
  done;
  match !found with
  | None -> []  (* no internal cycle through the witness *)
  | Some (last, sel_last) ->
    let rec up v acc =
      if v = witness then acc
      else
        let u, sel = Hashtbl.find pred v in
        up u (bits_list sel :: acc)
    in
    up last [ bits_list sel_last ]

let analyze ~n ~n_configs ~succs ~convenes ~enabled_mask ~committee_waiting () =
  let idx = Array.make n_configs (-1) in
  let low = Array.make n_configs 0 in
  let on = Array.make n_configs false in
  let sccid = Array.make n_configs (-1) in
  let stack = Vec.create () in
  let counter = ref 0 in
  let n_sccs = ref 0 in
  let largest = ref 0 in
  let nontrivial = ref 0 in
  let livelocks = ref [] in
  let handle_scc comp =
    let id = !n_sccs in
    incr n_sccs;
    List.iter (fun v -> sccid.(v) <- id) comp;
    let size = List.length comp in
    if size > !largest then largest := size;
    let in_comp v = sccid.(v) = id in
    let internal = ref [] in
    let has_convene = ref false in
    List.iter
      (fun v ->
        List.iter
          (fun (dst, sel) ->
            if in_comp dst then begin
              internal := (v, dst, sel) :: !internal;
              if convenes v dst then has_convene := true
            end)
          (succs v))
      comp;
    if !internal <> [] then begin
      incr nontrivial;
      if not !has_convene then begin
        (* weakly fair infinite run? *)
        let fair =
          List.for_all
            (fun p ->
              List.exists (fun v -> enabled_mask v land (1 lsl p) = 0) comp
              || List.exists
                   (fun (_, _, sel) -> sel land (1 lsl p) <> 0)
                   !internal)
            (List.init n Fun.id)
        in
        let witness = List.find_opt committee_waiting comp in
        match (fair, witness) with
        | true, Some w ->
          livelocks :=
            { witness = w;
              scc_size = size;
              cycle = find_cycle ~succs ~in_comp w }
            :: !livelocks
        | _ -> ()
      end
    end
  in
  let dfs v0 =
    idx.(v0) <- !counter;
    low.(v0) <- !counter;
    incr counter;
    Vec.push stack v0;
    on.(v0) <- true;
    let frames = ref [ (v0, ref (succs v0)) ] in
    while !frames <> [] do
      let v, rest = List.hd !frames in
      match !rest with
      | (w, _sel) :: tl ->
        rest := tl;
        if idx.(w) = -1 then begin
          idx.(w) <- !counter;
          low.(w) <- !counter;
          incr counter;
          Vec.push stack w;
          on.(w) <- true;
          frames := (w, ref (succs w)) :: !frames
        end
        else if on.(w) then low.(v) <- min low.(v) idx.(w)
      | [] ->
        frames := List.tl !frames;
        (match !frames with
        | (u, _) :: _ -> low.(u) <- min low.(u) low.(v)
        | [] -> ());
        if low.(v) = idx.(v) then begin
          let comp = ref [] in
          let brk = ref false in
          while not !brk do
            let w = Vec.pop stack in
            on.(w) <- false;
            comp := w :: !comp;
            if w = v then brk := true
          done;
          handle_scc !comp
        end
    done
  in
  for v = 0 to n_configs - 1 do
    if idx.(v) = -1 then dfs v
  done;
  (* deadlocks *)
  let deadlocks = ref [] in
  for v = n_configs - 1 downto 0 do
    if enabled_mask v = 0 && committee_waiting v then deadlocks := v :: !deadlocks
  done;
  { sccs = !n_sccs;
    largest_scc = !largest;
    nontrivial_sccs = !nontrivial;
    deadlocks = !deadlocks;
    livelocks = !livelocks }
