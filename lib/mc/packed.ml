(* The packed-configuration engine front end: builds the exact
   guard/footprint tables of a system and repackages them as the
   engine-agnostic [Model.packed] closure hooks that [lib/runtime] and
   [lib/mp] consume (those libraries cannot depend on the checker, so the
   functor boundary is erased here). *)

module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model

(* The runtime duplicates the packed-entry field decoders (it cannot see
   [Tables]); pin the two encodings against drift. *)
let () =
  let sample = 0b1010110_0101010101010101_1_101010 in
  assert (Model.entry_act sample = Tables.entry_act sample);
  assert (Model.entry_succ sample = Tables.entry_succ sample)

module Make (Sys : System.S) = struct
  module Tb = Tables.Make (Sys)
  module Enc = Encode.Make (Sys)

  type t = { h : H.t; tb : Tb.t }

  let build ?verify ?cap ?store_cap h =
    { h; tb = Tb.build ?verify ?cap ?store_cap h }

  let tables t = t.tb
  let built t = Tb.built t.tb

  let coverage t =
    let n = H.n t.h in
    let b = ref 0 in
    for p = 0 to n - 1 do
      match Tb.status t.tb p with `Built -> incr b | _ -> ()
    done;
    float_of_int !b /. float_of_int (max 1 n)

  let hooks t : Sys.state Model.packed =
    let enc = Tb.enc t.tb in
    { Model.pk_entry = (fun ~mode ~proc cfg -> Tb.entry t.tb ~mode ~proc cfg);
      pk_intern = (fun p s -> Enc.intern enc p s);
      pk_support = (fun p -> Tb.support t.tb p);
      pk_built =
        (fun p -> match Tb.status t.tb p with `Built -> true | _ -> false) }
end
