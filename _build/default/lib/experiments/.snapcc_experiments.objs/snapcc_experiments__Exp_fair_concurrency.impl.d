lib/experiments/exp_fair_concurrency.ml: Algos Driver Exp_common List Printf Snapcc_hypergraph Snapcc_runtime Snapcc_workload Table
