(** The typed telemetry event model.

    One variant per observable of the paper's execution model: engine steps
    (with the daemon's selection and the resulting meeting set), per-process
    action firings, committee convene/terminate, waiting-span open/close
    (the waiting-time distribution of §3.3), monitor verdicts, token
    handoffs, fault injection/recovery, model-checker frontier progress and
    message-passing scheduler events.

    Events are {e logical}: they carry step/round stamps, never wall-clock
    time — so a JSONL trace is a deterministic function of the seed.  The
    hub ({!Hub}) wraps events into {!stamped} values carrying a sequence
    number and a monotonic timestamp; only the catapult sink ({!Sink})
    renders the timestamp. *)

type t =
  | Run_start of {
      algo : string;
      daemon : string;
      workload : string;
      seed : int;
      n : int;  (** professors *)
      m : int;  (** committees *)
      topo : string;
          (** The conflict hypergraph in [Hypergraph_io] text form, so a
              trace is self-contained for offline causal analysis (empty
              in traces predating the causal layer). *)
    }
  | Step of {
      step : int;
      round : int;
      selected : int list;  (** the daemon's choice *)
      neutralized : int list;
      meetings : int list;  (** committees meeting after the step *)
    }
  | Action of { step : int; p : int; label : string }
      (** One process fired one guarded action during the step. *)
  | Convene of { step : int; round : int; eid : int }
  | Terminate of { step : int; round : int; eid : int }
  | Wait_open of { step : int; round : int; p : int }
  | Wait_close of {
      step : int;
      round : int;
      p : int;
      waited_steps : int;
      waited_rounds : int;
    }
  | Verdict of { step : int; rule : string; detail : string }
      (** A specification monitor recorded a violation. *)
  | Token_handoff of { step : int; p : int }
      (** [p] acquired the circulating token. *)
  | Fault of { step : int; victims : int list }
  | Recover of { step : int; eid : int }
      (** First committee convened after a fault: service resumed. *)
  | Mc_frontier of { configs : int; transitions : int }
      (** Model-checker exploration progress sample. *)
  | Mp_activated of { step : int; p : int; label : string option }
  | Mp_delivered of { step : int; dst : int; src : int }
  | Net_sent of { step : int; src : int; dst : int; bytes : int }
      (** A state snapshot entered a (possibly faulty) network link. *)
  | Net_delivered of {
      step : int;
      src : int;
      dst : int;
      bytes : int;
      latency_us : int;  (** wall-clock send-to-deliver latency *)
    }
      (** The snapshot reached the receiver's cache.  The one event whose
          body is {e not} a pure function of the seed (see {!logical}). *)
  | Net_dropped of { step : int; src : int; dst : int; reason : string }
      (** The link lost the snapshot: ["drop"] (random loss), ["partition"]
          (severed link), ["overflow"] (bounded queue), or ["malformed"]
          (the receiver's strict decoder rejected the frame — a corrupted
          frame is a transient fault, never a crash). *)
  | Clock of {
      step : int;
      p : int;
      k : int;
          (** Event class: {!clock_init}, {!clock_activation},
              {!clock_delivery} or {!clock_corruption}. *)
      clock : int list;  (** [p]'s vector clock {e after} the event *)
      obs_code : int;
          (** [p]'s packed local observation after the event
              ({!Snapcc_runtime.Obs.code} in the runtime library). *)
      disc : int;  (** [p]'s remaining-discussions counter *)
    }
      (** A vector-clock stamp for one node-originated event of the
          message-passing model.  The offline causal analyzer rebuilds the
          happens-before DAG, consistent cuts and Spec verdicts from these
          events alone. *)
  | Smc_trial of {
      trial : int;  (** 0-based trial index within the smc run *)
      seed : int;  (** the derived per-trial seed (see [Snapcc_smc.Trial]) *)
      stabilized : int option;
          (** steps until the first committee convened from the corrupted
              start ([None]: never within the trial budget) *)
      convenes : int;
      violations : int;
      deadlocked : bool;
          (** the trial froze with requests pending (terminal outcome) *)
      steps : int;  (** real steps taken *)
    }
      (** One Monte-Carlo trajectory of the statistical tier
          ([ccsim smc]): the per-trial scorecard the estimators
          aggregate.  Emitted by the parent in trial order, so the JSONL
          trace is identical for any worker count. *)
  | Run_end of { outcome : string; steps : int; rounds : int }

type stamped = {
  seq : int;  (** 0-based emission index within the run *)
  t_us : int;  (** monotonic microseconds since hub creation *)
  ev : t;
}

val clock_init : int
val clock_activation : int
val clock_delivery : int
val clock_corruption : int
(** The [k] classes of {!constructor-Clock} events. *)

val kind : t -> string
(** Stable snake-case tag, e.g. ["wait_close"] — the ["ev"] field of the
    JSONL encoding. *)

val logical : t -> bool
(** Whether the event body is a pure function of the seed (true for every
    kind except [net_delivered], which carries a wall-clock latency).
    Filtering a networked JSONL trace on this predicate yields the
    byte-reproducible subset. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} (unknown tags and missing fields are errors). *)
