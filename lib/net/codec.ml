let version = 3
let magic = "SNCC"

let algo_tag = function
  | "cc1" -> Some 1
  | "cc2" -> Some 2
  | "cc3" -> Some 3
  | _ -> None

let algo_name = function
  | 1 -> Some "cc1"
  | 2 -> Some "cc2"
  | 3 -> Some "cc3"
  | _ -> None

type msg =
  | Hello of { id : int }
  | Init of { seed : int; topo : string; core : string; cache : string }
  | Ready
  | Activate of { step : int; req_in : bool array; req_out : bool array }
  | Activated of { label : string option; core : string; clock : string }
  | Deliver of { src : int; state : string; clock : string }
  | Delivered
  | Deliver_full of {
      src : int;
      seq : int;
      form : int;
      payload : string;
      clock : string;
    }
  | Deliver_delta of {
      src : int;
      seq : int;
      base_seq : int;
      delta : string;
      clock : string;
    }
  | Resync of { reason : string }
  | Corrupt of { core : string; cache : string }
  | Corrupted
  | Decode_error of { reason : string }
  | Bye
  | Bye_ack of { frames : int; decode_errors : int }

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_algo of int
  | Bad_checksum
  | Bad_kind of int
  | Truncated
  | Trailing of int
  | Bad_payload of string

let error_to_string = function
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unsupported version %d" v
  | Bad_algo t -> Printf.sprintf "unexpected algo tag %d" t
  | Bad_checksum -> "checksum mismatch"
  | Bad_kind k -> Printf.sprintf "unknown message kind %d" k
  | Truncated -> "truncated frame"
  | Trailing n -> Printf.sprintf "%d trailing bytes" n
  | Bad_payload why -> "bad payload: " ^ why

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* --- little binary writer / reader ------------------------------------- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_u32 b v =
  w_u8 b (v lsr 24);
  w_u8 b (v lsr 16);
  w_u8 b (v lsr 8);
  w_u8 b v

let w_i64 b v =
  let v = Int64.of_int v in
  for shift = 7 downto 0 do
    w_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * shift)) land 0xff)
  done

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_bools b a =
  w_u32 b (Array.length a);
  Array.iter (fun x -> w_u8 b (if x then 1 else 0)) a

exception Malformed of string
exception Unknown_kind of int

type reader = { src : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.src then raise (Malformed "truncated payload")

let r_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4;
  let v =
    (Char.code r.src.[r.pos] lsl 24)
    lor (Char.code r.src.[r.pos + 1] lsl 16)
    lor (Char.code r.src.[r.pos + 2] lsl 8)
    lor Char.code r.src.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8;
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (r_u8 r))
  done;
  Int64.to_int !v

let r_str r =
  let n = r_u32 r in
  if n > String.length r.src - r.pos then raise (Malformed "truncated string");
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let r_bools r =
  let n = r_u32 r in
  if n > String.length r.src - r.pos then raise (Malformed "truncated array");
  Array.init n (fun _ ->
      match r_u8 r with
      | 0 -> false
      | 1 -> true
      | b -> raise (Malformed (Printf.sprintf "bool byte %d" b)))

(* --- message <-> payload ------------------------------------------------ *)

let kind_of_msg = function
  | Hello _ -> 1
  | Init _ -> 2
  | Ready -> 3
  | Activate _ -> 4
  | Activated _ -> 5
  | Deliver _ -> 6
  | Delivered -> 7
  | Corrupt _ -> 8
  | Corrupted -> 9
  | Decode_error _ -> 10
  | Bye -> 11
  | Bye_ack _ -> 12
  | Deliver_full _ -> 13
  | Deliver_delta _ -> 14
  | Resync _ -> 15

let write_payload b = function
  | Hello { id } -> w_i64 b id
  | Init { seed; topo; core; cache } ->
    w_i64 b seed;
    w_str b topo;
    w_str b core;
    w_str b cache
  | Ready -> ()
  | Activate { step; req_in; req_out } ->
    w_i64 b step;
    w_bools b req_in;
    w_bools b req_out
  | Activated { label; core; clock } ->
    (match label with
     | None -> w_u8 b 0
     | Some l ->
       w_u8 b 1;
       w_str b l);
    w_str b core;
    w_str b clock
  | Deliver { src; state; clock } ->
    w_i64 b src;
    w_str b state;
    w_str b clock
  | Delivered -> ()
  | Deliver_full { src; seq; form; payload; clock } ->
    w_i64 b src;
    w_i64 b seq;
    w_u8 b form;
    w_str b payload;
    w_str b clock
  | Deliver_delta { src; seq; base_seq; delta; clock } ->
    w_i64 b src;
    w_i64 b seq;
    w_i64 b base_seq;
    w_str b delta;
    w_str b clock
  | Resync { reason } -> w_str b reason
  | Corrupt { core; cache } ->
    w_str b core;
    w_str b cache
  | Corrupted -> ()
  | Decode_error { reason } -> w_str b reason
  | Bye -> ()
  | Bye_ack { frames; decode_errors } ->
    w_i64 b frames;
    w_i64 b decode_errors

let read_payload r kind =
  match kind with
  | 1 -> Hello { id = r_i64 r }
  | 2 ->
    let seed = r_i64 r in
    let topo = r_str r in
    let core = r_str r in
    let cache = r_str r in
    Init { seed; topo; core; cache }
  | 3 -> Ready
  | 4 ->
    let step = r_i64 r in
    let req_in = r_bools r in
    let req_out = r_bools r in
    Activate { step; req_in; req_out }
  | 5 ->
    let label =
      match r_u8 r with
      | 0 -> None
      | 1 -> Some (r_str r)
      | b -> raise (Malformed (Printf.sprintf "option byte %d" b))
    in
    let core = r_str r in
    Activated { label; core; clock = r_str r }
  | 6 ->
    let src = r_i64 r in
    let state = r_str r in
    Deliver { src; state; clock = r_str r }
  | 7 -> Delivered
  | 8 ->
    let core = r_str r in
    Corrupt { core; cache = r_str r }
  | 9 -> Corrupted
  | 10 -> Decode_error { reason = r_str r }
  | 11 -> Bye
  | 12 ->
    let frames = r_i64 r in
    Bye_ack { frames; decode_errors = r_i64 r }
  | 13 ->
    let src = r_i64 r in
    let seq = r_i64 r in
    let form = r_u8 r in
    if form > 1 then raise (Malformed (Printf.sprintf "payload form %d" form));
    let payload = r_str r in
    Deliver_full { src; seq; form; payload; clock = r_str r }
  | 14 ->
    let src = r_i64 r in
    let seq = r_i64 r in
    let base_seq = r_i64 r in
    let delta = r_str r in
    Deliver_delta { src; seq; base_seq; delta; clock = r_str r }
  | 15 -> Resync { reason = r_str r }
  | k -> raise (Unknown_kind k)

(* --- frame body --------------------------------------------------------- *)

let encode ~algo msg =
  let b = Buffer.create 64 in
  Buffer.add_string b magic;
  w_u8 b version;
  w_u8 b algo;
  w_u8 b (kind_of_msg msg);
  write_payload b msg;
  let crc = crc32 (Buffer.contents b) in
  w_u32 b (Int32.to_int (Int32.logand crc 0xFFFFFFFFl));
  Buffer.contents b

let header_len = String.length magic + 3 (* version + algo + kind *)
let crc_len = 4

let decode ?expect body =
  let len = String.length body in
  if len < header_len + crc_len then Error Truncated
  else if String.sub body 0 (String.length magic) <> magic then Error Bad_magic
  else
    let v = Char.code body.[4] in
    if v <> version then Error (Bad_version v)
    else
      let tag = Char.code body.[5] in
      let kind = Char.code body.[6] in
      let stored =
        Int32.logor
          (Int32.shift_left (Int32.of_int (Char.code body.[len - 4])) 24)
          (Int32.of_int
             ((Char.code body.[len - 3] lsl 16)
             lor (Char.code body.[len - 2] lsl 8)
             lor Char.code body.[len - 1]))
      in
      if crc32 (String.sub body 0 (len - crc_len)) <> stored then
        Error Bad_checksum
      else
        match expect with
        | Some e when tag <> 0 && tag <> e -> Error (Bad_algo tag)
        | _ -> (
          let r = { src = String.sub body header_len (len - header_len - crc_len);
                    pos = 0 }
          in
          match read_payload r kind with
          | exception Unknown_kind k -> Error (Bad_kind k)
          | exception Malformed why -> Error (Bad_payload why)
          | msg ->
            if r.pos <> String.length r.src then
              Error (Trailing (String.length r.src - r.pos))
            else Ok (tag, msg))

let corrupt_body rng body =
  let b = Bytes.of_string body in
  let flips = 1 + Random.State.int rng 4 in
  for _ = 1 to flips do
    let i = Random.State.int rng (Bytes.length b) in
    let bit = 1 lsl Random.State.int rng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor bit))
  done;
  Bytes.to_string b
