(** EXP-F3 — the §4.1 worked example: a CC1 run on the 10-professor system
    of Fig. 3, replayed deterministically with a recorded trace.

    The paper walks nine configurations (a)–(i) in which meetings of
    [{7,8}], [{9,10}] and [{6,7}] convene while the token travels from
    professor 1 to professor 6.  We do not replay the exact daemon choices
    (the paper's step interleaving is one of many), but we check the
    substance: a deterministic run convenes several distinct committees,
    committee meetings overlap in time, the specification holds throughout,
    and the convene ledger is reported as the table. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload

type result = {
  run : Driver.result;
  distinct_committees : int;
  first_convenes : (int * int) list;  (** (step, eid) ledger prefix *)
}

let run ?(quick = false) () =
  let h = Families.fig3 () in
  let steps = if quick then 4_000 else 12_000 in
  let r =
    Algos.Run_cc1.run ~seed:4 ~daemon:(Daemon.central ())
      ~workload:(Workload.always_requesting ~disc_len:(fun _ -> 2) h)
      ~record_trace:true ~steps h
  in
  let distinct =
    r.Driver.convened |> List.map snd |> List.sort_uniq compare |> List.length
  in
  let prefix = List.filteri (fun i _ -> i < 25) r.Driver.convened in
  { run = r; distinct_committees = distinct; first_convenes = prefix }

let ok r =
  r.run.Driver.violations = []
  && r.distinct_committees >= 4
  && r.run.Driver.summary.Snapcc_analysis.Metrics.max_concurrency >= 2

let table r =
  let h = Families.fig3 () in
  {
    Table.id = "fig3-cc1-trace";
    title = "Worked example (Fig. 3): CC1 on the 10-professor system, convene ledger";
    header = [ "step"; "committee convened" ];
    rows =
      List.map
        (fun (step, e) ->
          [ Table.i step; Format.asprintf "%a" (H.pp_edge h) e ])
        r.first_convenes;
    notes =
      [ Printf.sprintf
          "%d distinct committees convened; max simultaneous meetings = %d; \
           violations = %d."
          r.distinct_committees
          r.run.Driver.summary.Snapcc_analysis.Metrics.max_concurrency
          (List.length r.run.Driver.violations);
      ];
  }
