(** Registry of model-checkable systems: the paper's algorithms (and the
    deliberately broken validation variants) composed with a token layer
    and equipped with the finite domain + canonicalization of {!System.S}.

    The committee layers carry one unbounded counter each ([disc]; CC3 also
    [cur], read only modulo the degree): [canon] resets / normalizes them,
    which is invisible to every guard and statement, so the quotient is
    exact.  Token domains come from {!Snapcc_token.Layer.S.domain}. *)

module Dining_sys : System.S with type state = Snapcc_baselines.Dining.state
(** The §6 dining-philosophers baseline as a checkable system (used by the
    exact static tier; not an {!all} entry — the baselines make no
    stabilization claim, so the checker's progress analysis does not apply). *)

module Central_sys : System.S with type state = Snapcc_baselines.Central.state
(** The §6 centralized-manager baseline as a checkable system (deliberately
    non-local: analyses must waive {!Snapcc_statics.Report.Locality}). *)

type entry = {
  key : string;  (** CLI name, e.g. ["cc1"], ["cc1-inverted"] *)
  title : string;
  broken : bool;  (** a deliberate defect: the checker must find it *)
  make : string -> (module System.S);
      (** instantiate with a token-layer key; raises [Invalid_argument] on
          unknown tokens *)
}

val token_keys : string list
(** ["vring"; "tree"; "null"]. *)

val all : entry list
val find : string -> entry option
