(* The static analyzer (lib/statics): each check fires on a deliberately
   broken fixture algorithm, the paper's algorithms and both §6 baselines
   pass clean, and the static locality pass agrees with the engine's
   dynamic [check_locality] assert on the same fixture. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Model = Snapcc_runtime.Model
module Daemon = Snapcc_runtime.Daemon
module Obs = Snapcc_runtime.Obs
module Report = Snapcc_statics.Report
module X = Snapcc_experiments.Algos

let check = Alcotest.(check bool)

let has_rule (r : Report.t) rule =
  List.exists (fun (f : Report.finding) -> f.rule = rule) r.findings

let rules_of (r : Report.t) =
  List.sort_uniq compare
    (List.map (fun (f : Report.finding) -> Report.rule_name f.rule) r.findings)

(* ---- fixture: a guard reading a non-neighbor (locality violation) ---- *)

module Nonlocal = struct
  type state = int

  let name = "fixture-nonlocal"
  let pp_state = Format.pp_print_int
  let equal_state = Int.equal
  let init _ _ = 0
  let random_init _ rng _ = Random.State.int rng 3

  let actions h =
    [ { Model.label = "peek";
        guard =
          (fun ctx ->
            (* vertex 0 reads the far end of the path *)
            ctx.Model.self = 0
            && ctx.Model.read (H.n h - 1) >= 0
            && ctx.Model.read ctx.Model.self < 2);
        apply = (fun ctx -> ctx.Model.read ctx.Model.self + 1) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
end

(* ---- fixture: a statement mutating a neighbor's state in place ---- *)

module Foreign_write = struct
  type state = { mutable v : int }

  let name = "fixture-foreign-write"
  let pp_state ppf st = Format.pp_print_int ppf st.v
  let equal_state (a : state) b = a.v = b.v
  let init _ _ = { v = 0 }
  let random_init _ rng _ = { v = Random.State.int rng 3 }

  let actions _h =
    [ { Model.label = "poke";
        guard = (fun ctx -> (ctx.Model.read ctx.Model.self).v < 2);
        apply =
          (fun ctx ->
            let other = if ctx.Model.self = 0 then 1 else 0 in
            (* forbidden: writes a state the process does not own *)
            (ctx.Model.read other).v <- 99;
            { v = (ctx.Model.read ctx.Model.self).v + 1 }) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
end

(* ---- fixture: a statement consulting hidden global state ---- *)

module Nondet = struct
  type state = int

  let name = "fixture-nondet"
  let flip = ref false
  let pp_state = Format.pp_print_int
  let equal_state = Int.equal
  let init _ _ = 0
  let random_init _ rng _ = Random.State.int rng 2

  let actions _h =
    [ { Model.label = "coin";
        guard = (fun ctx -> ctx.Model.read ctx.Model.self = 0);
        apply =
          (fun _ctx ->
            flip := not !flip;
            if !flip then 1 else 2) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
end

let pair () = H.create ~n:2 [ [ 0; 1 ] ]

let test_nonlocal_fires () =
  let module An = Snapcc_statics.Analyze.Make (Nonlocal) in
  let r = An.analyze ~seeds:4 ~max_configs:40 ~topo:"path4" (Families.path 4) in
  check "locality violation reported" true (has_rule r Report.Locality);
  check "reported under the expected rule name" true
    (List.mem "locality" (rules_of r));
  check "report is a failure" false (Report.ok r);
  check "machine-readable lines mention the rule" true
    (List.exists
       (fun l ->
         List.exists (fun part -> part = "rule=locality") (String.split_on_char ' ' l))
       (Report.to_lines r))

let test_foreign_write_fires () =
  let module An = Snapcc_statics.Analyze.Make (Foreign_write) in
  let r = An.analyze ~seeds:4 ~max_configs:40 ~topo:"pair" (pair ()) in
  check "write-ownership violation reported" true (has_rule r Report.Write_ownership);
  check "reported under the expected rule name" true
    (List.mem "write-ownership" (rules_of r));
  (* both processes are neighbors: the foreign write is not a locality bug *)
  check "no locality finding" false (has_rule r Report.Locality)

let test_nondet_fires () =
  let module An = Snapcc_statics.Analyze.Make (Nondet) in
  let r = An.analyze ~seeds:4 ~max_configs:40 ~topo:"pair" (pair ()) in
  check "determinism violation reported" true (has_rule r Report.Determinism);
  check "reported under the expected rule name" true
    (List.mem "determinism" (rules_of r))

let test_clean_passes () =
  let topo = "fig2" and h = Families.fig2 () in
  let run (module A : Model.ALGO) allow =
    let module An = Snapcc_statics.Analyze.Make (A) in
    An.analyze ~seeds:8 ~max_configs:80 ~allow ~topo h
  in
  List.iter
    (fun (label, m) ->
      let r = run m [] in
      check (label ^ " passes clean") true (Report.ok r);
      check (label ^ " has nothing waived") true (r.Report.waived = []))
    [ ("cc1", (module X.Cc1 : Model.ALGO)); ("cc2", (module X.Cc2));
      ("cc3", (module X.Cc3)); ("dining", (module X.Dining)) ];
  (* the centralized baseline deliberately violates locality; with the
     documented waiver it must pass, and the deviation must be visible *)
  let r = run (module X.Central) [ Report.Locality ] in
  check "central passes with the locality waiver" true (Report.ok r);
  check "central's non-local reads are reported as waived" true
    (r.Report.waived <> []);
  let r_strict = run (module X.Central) [] in
  check "central fails without the waiver" false (Report.ok r_strict)

let test_structural_stats () =
  let module An = Snapcc_statics.Analyze.Make (X.Cc1) in
  let r = An.analyze ~seeds:8 ~max_configs:80 ~topo:"fig2" (Families.fig2 ()) in
  check "priority order is load-bearing (overlaps observed)" true
    (r.Report.overlaps <> []);
  List.iter
    (fun (o : Report.overlap) ->
      check "every overlap involves >= 2 actions" true (List.length o.labels >= 2))
    r.Report.overlaps;
  check "neighbor read/write interference observed" true
    (r.Report.interference <> [])

(* The dynamic counterpart: the engine's [check_locality] assert must raise
   on the same crafted non-local read the static pass flags. *)
let test_engine_check_locality_agrees () =
  let h = Families.path 4 in
  let module E = Snapcc_runtime.Engine.Make (Nonlocal) in
  let eng = E.create ~check_locality:true ~daemon:Daemon.synchronous h in
  (match E.step eng ~inputs:Model.no_inputs with
   | exception Failure msg ->
     check "dynamic check names the violation" true
       (String.length msg >= 8 && String.sub msg 0 8 = "locality")
   | _ -> Alcotest.fail "check_locality did not raise on a non-local read");
  (* without the check the same read goes through *)
  let eng2 = E.create ~daemon:Daemon.synchronous h in
  let r = E.step eng2 ~inputs:Model.no_inputs in
  check "unchecked engine executes the action" true (r.Model.executed <> []);
  let module An = Snapcc_statics.Analyze.Make (Nonlocal) in
  let report = An.analyze ~seeds:4 ~max_configs:40 ~topo:"path4" h in
  check "static pass flags the same algorithm" true
    (has_rule report Report.Locality)

let suite =
  [ ( "statics",
      [ Alcotest.test_case "non-local read fires locality" `Quick test_nonlocal_fires;
        Alcotest.test_case "foreign in-place write fires write-ownership" `Quick
          test_foreign_write_fires;
        Alcotest.test_case "hidden global state fires determinism" `Quick
          test_nondet_fires;
        Alcotest.test_case "CC1/CC2/CC3 and both baselines pass clean" `Quick
          test_clean_passes;
        Alcotest.test_case "overlap and interference statistics" `Quick
          test_structural_stats;
        Alcotest.test_case "dynamic check_locality agrees with the static pass"
          `Quick test_engine_check_locality_agrees;
      ] );
  ]
