type inputs = {
  request_in : int -> bool;
  request_out : int -> bool;
}

let no_inputs = { request_in = (fun _ -> false); request_out = (fun _ -> false) }
let always_in = { request_in = (fun _ -> true); request_out = (fun _ -> false) }

let input_modes =
  [| ("quiet", no_inputs);
     ("in", always_in);
     ("out", { request_in = (fun _ -> false); request_out = (fun _ -> true) });
     ("in+out", { request_in = (fun _ -> true); request_out = (fun _ -> true) });
  |]

type 'state ctx = {
  h : Snapcc_hypergraph.Hypergraph.t;
  inputs : inputs;
  read : int -> 'state;
  self : int;
}

type 'state action = {
  label : string;
  guard : 'state ctx -> bool;
  apply : 'state ctx -> 'state;
}

let lift_action ~get ~set action =
  let lower ctx = { h = ctx.h; inputs = ctx.inputs; read = (fun p -> get (ctx.read p)); self = ctx.self } in
  {
    label = action.label;
    guard = (fun ctx -> action.guard (lower ctx));
    apply = (fun ctx -> set (ctx.read ctx.self) (action.apply (lower ctx)));
  }

module type ALGO = sig
  type state

  val name : string
  val pp_state : Format.formatter -> state -> unit
  val equal_state : state -> state -> bool
  val init : Snapcc_hypergraph.Hypergraph.t -> int -> state
  val random_init : Snapcc_hypergraph.Hypergraph.t -> Random.State.t -> int -> state
  val actions : Snapcc_hypergraph.Hypergraph.t -> state action list
  val observe : Snapcc_hypergraph.Hypergraph.t -> state array -> int -> Obs.t
end

type step_report = {
  step : int;
  selected : int list;
  executed : (int * string) list;
  neutralized : int list;
  round : int;
  terminal : bool;
}
