(** One-stop runner: engine + workload + specification monitor + metrics.

    Every experiment and most integration tests funnel through
    [Make(A).run], so each simulated step is judged against the paper's
    specification ({!Snapcc_analysis.Spec}) and measured
    ({!Snapcc_analysis.Metrics}). *)

type result = {
  algo : string;
  daemon : string;
  workload : string;
  outcome : [ `Terminal | `Stopped | `Steps_exhausted ];
      (** [`Terminal]: the configuration froze and the workload stopped
          producing inputs (see [stutter_limit]); [`Stopped]: [stop_when]
          fired; [`Steps_exhausted]: the horizon was reached. *)
  steps : int;  (** real steps taken (stutters excluded) *)
  rounds : int;
  final_obs : Snapcc_runtime.Obs.t array;
  violations : Snapcc_analysis.Spec.violation list;
  convened : (int * int) list;  (** [(step, eid)] convene ledger *)
  convene_count : int array;  (** per committee *)
  participations : int array;  (** per professor *)
  summary : Snapcc_analysis.Metrics.summary;
  trace : Snapcc_runtime.Trace.t option;  (** when [record_trace] *)
}

val ok : result -> bool
(** No specification violation was recorded. *)

val pp_result : Format.formatter -> result -> unit

module Make (A : Snapcc_runtime.Model.ALGO) : sig
  module E : module type of Snapcc_runtime.Engine.Make (A)

  val run_with_states :
    ?seed:int ->
    ?init:[ `Canonical | `Random ] ->
    ?init_states:A.state array ->
    ?check_locality:bool ->
    ?packed:A.state Snapcc_runtime.Model.packed ->
    ?faults:(step:int -> int list) ->
    ?stop_when:(Snapcc_runtime.Obs.t array -> bool) ->
    ?on_obs:(step:int -> Snapcc_runtime.Obs.t array -> unit) ->
    ?record_trace:bool ->
    ?stutter_limit:int ->
    ?telemetry:Snapcc_telemetry.Hub.t ->
    daemon:Snapcc_runtime.Daemon.t ->
    workload:Snapcc_workload.Workload.t ->
    steps:int ->
    Snapcc_hypergraph.Hypergraph.t ->
    result * A.state array
  (** Like {!run}, additionally returning the final typed configuration
      (used to carry states across dynamic-topology changes).

      [init_states] overrides [init] with an explicit configuration.
      [packed] routes the engine through the table-driven fast path (see
      [Snapcc_runtime.Engine.Make.create]); results are trace-identical.
      [faults ~step] names the processes to corrupt before the given step
      (the monitor is notified, §2.5 exemptions apply).  When the engine
      reports a terminal configuration the driver {e stutters}: inputs may
      evolve (discussion timers, request coins), so the run only ends after
      [stutter_limit] (default 1000) consecutive input-frozen stutters.

      [telemetry] instruments the run end to end: a [run_start] header,
      one [step] event per engine step (daemon selection, neutralizations,
      meeting set), one [action] event per firing, [convene]/[terminate]/
      [wait_open]/[wait_close] from the metrics layer, [verdict] from the
      specification monitor, [token_handoff], [fault]/[recover], and a
      [run_end] trailer.  All events are logical (step/round-stamped), so a
      JSONL trace is a deterministic function of [seed]. *)

  val run :
    ?seed:int ->
    ?init:[ `Canonical | `Random ] ->
    ?init_states:A.state array ->
    ?check_locality:bool ->
    ?packed:A.state Snapcc_runtime.Model.packed ->
    ?faults:(step:int -> int list) ->
    ?stop_when:(Snapcc_runtime.Obs.t array -> bool) ->
    ?on_obs:(step:int -> Snapcc_runtime.Obs.t array -> unit) ->
    ?record_trace:bool ->
    ?stutter_limit:int ->
    ?telemetry:Snapcc_telemetry.Hub.t ->
    daemon:Snapcc_runtime.Daemon.t ->
    workload:Snapcc_workload.Workload.t ->
    steps:int ->
    Snapcc_hypergraph.Hypergraph.t ->
    result
end
