(** One Monte-Carlo trajectory of the statistical tier.

    A trial draws its initial configuration uniformly from the full
    state-domain product ([`Random] init — snap-stabilization quantifies
    over {e every} initial configuration, so sampling them is the honest
    relaxation), runs the standard driver stack for a bounded budget and
    condenses the result to a {!record}.

    A record is a pure function of [(seed, trial)]: the per-trial seed
    comes from {!derive}, and the daemon, workload and engine all draw
    from it.  This is what lets {!Pool} partition trial indices over
    workers arbitrarily and merge byte-identical results. *)

type record = {
  trial : int;  (** 0-based trial index *)
  seed : int;  (** derived per-trial seed *)
  stabilized : int option;
      (** steps until the first committee convened — first service after
          the corrupted start, i.e. the stabilization time of §2.5 —
          or [None] if no committee convened within the budget *)
  convenes : int;
  violations : int;  (** Spec-monitor verdicts (expected 0) *)
  deadlocked : bool;
      (** the run froze (terminal configuration) with the workload still
          ticking — meaningful under request-driven workloads; the
          [infinite] workload freezes by design once every meeting is
          served *)
  steps : int;  (** real steps taken (stutters excluded) *)
  waits : int list;  (** completed waiting-span durations, in steps *)
}

val derive : seed:int -> int -> int
(** [derive ~seed trial] mixes the base seed and trial index into a
    non-negative per-trial seed (splitmix-style avalanche). *)

val daemon_names : string list
val workload_names : string list
(** The accepted [--daemon] / [--workload] keys. *)

val daemon_of : string -> Snapcc_runtime.Daemon.t
(** Fresh (unshared) daemon instance; raises [Invalid_argument] on
    unknown names — validate via {!daemon_names} before forking. *)

val workload_of :
  string ->
  disc:int ->
  seed:int ->
  Snapcc_hypergraph.Hypergraph.t ->
  Snapcc_workload.Workload.t
(** Per-trial workload, drawing any arrival randomness from [seed].
    Raises [Invalid_argument] on unknown names. *)

val stutter_limit : int
(** Consecutive input-frozen stutters before a trial is called terminal
    (shorter than the driver default — unstabilizable corrupted starts
    must be cheap). *)

module Of (A : Snapcc_runtime.Model.ALGO) : sig
  val run :
    ?packed:A.state Snapcc_runtime.Model.packed ->
    seed:int ->
    budget:int ->
    daemon:string ->
    workload:string ->
    disc:int ->
    Snapcc_hypergraph.Hypergraph.t ->
    trial:int ->
    record
  (** Execute trial [trial]: derive the seed, draw the corrupted start,
      run for at most [budget] steps, score.  [packed] routes stepping
      through the table-driven fast path (trace-identical, so records
      are engine-independent). *)
end
