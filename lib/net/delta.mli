(** XOR-delta coding of snapshot payloads for the packed wire format.

    A delta describes a [target] payload relative to a [base] payload of
    the same length that sender and receiver both hold (the last snapshot
    the receiver acknowledged on that link).  Payloads are diffed as
    zero-padded 8-byte words; only changed words are transmitted, so the
    heartbeat case — a re-broadcast of an unchanged state — costs a
    5-byte empty delta.  Every delta embeds a CRC-32 of the target, so
    applying it against the {e wrong} base (the receiver lost sync, e.g.
    its cache was hit by a transient fault) fails cleanly instead of
    reconstructing a wrong state: the receiver then requests a full
    snapshot. *)

val encode : base:string -> target:string -> string option
(** [None] when no delta exists: the lengths differ or the payload
    exceeds 255 words (2040 bytes) — callers fall back to a full
    snapshot.  An encodable delta is [1 + 9×changed_words + 4] bytes. *)

val apply : base:string -> string -> string option
(** Reconstruct the target from [base] and a delta.  [None] if the delta
    is structurally malformed {e or} the embedded CRC of the
    reconstruction does not match — i.e. [base] is not the payload the
    delta was encoded against. *)
