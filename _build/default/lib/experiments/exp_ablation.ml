(** EXP-ABL — ablations of the two starred design decisions (DESIGN.md).

    {b Token retention.}  The single mechanical difference that buys CC2 its
    fairness is that a token holder {e retains} the token until it meets
    (§3.2).  Grafting CC1's release-when-useless rule onto CC2
    ([Cc2_eager]) and replaying the Theorem 1 staggered schedule shows
    professor 5 starving again: fairness lost with one switched rule.

    {b Edge selection.}  Where the paper writes "ε such that
    ε ∈ FreeEdges_p", the choice is a don't-care for correctness; we compare
    the default (smallest edge id) with a widest-committee-first strategy on
    topologies with mixed committee sizes, measuring meeting size and
    throughput. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics

type retention = {
  algo : string;
  prof5 : int;  (** participations of the Theorem 1 victim *)
  convenes : int;
  violations : int;
}

type selection = {
  strategy : string;
  topo : string;
  throughput : float;  (** convenes per 1000 steps *)
  mean_meeting_size : float;
  mean_concurrency : float;
}

type result = { retention : retention list; selection : selection list }

let retention_run ~steps label run =
  let h = Families.fig2 () in
  let r =
    run ~seed:7 ~daemon:(Daemon.random_subset ())
      ~workload:(Exp_impossibility.staggered h) ~steps h
  in
  {
    algo = label;
    prof5 = r.Driver.participations.(Exp_impossibility.prof5);
    convenes = r.Driver.summary.Metrics.convenes;
    violations = List.length r.Driver.violations;
  }

let selection_run ~steps strategy run topo h =
  let r =
    (run ~seed:9 ~daemon:(Daemon.random_subset ())
       ~workload:(Workload.always_requesting h) ~steps h
      : Driver.result)
  in
  let s = r.Driver.summary in
  let total_participations = Array.fold_left ( + ) 0 r.Driver.participations in
  {
    strategy;
    topo;
    throughput =
      (if r.Driver.steps = 0 then 0.
       else 1000. *. float_of_int s.Metrics.convenes /. float_of_int r.Driver.steps);
    mean_meeting_size =
      (if s.Metrics.convenes = 0 then 0.
       else float_of_int total_participations /. float_of_int s.Metrics.convenes);
    mean_concurrency = s.Metrics.mean_concurrency;
  }

let run ?(quick = false) () : result =
  let steps = if quick then 8_000 else 30_000 in
  let retention =
    [ retention_run ~steps "CC2 (retain until met)" (fun ~seed ~daemon ~workload ~steps h ->
          Algos.Run_cc2.run ~seed ~daemon ~workload ~steps h);
      retention_run ~steps "CC2 + eager release" (fun ~seed ~daemon ~workload ~steps h ->
          Algos.Run_cc2_eager.run ~seed ~daemon ~workload ~steps h);
      retention_run ~steps "CC1 (always eager)" (fun ~seed ~daemon ~workload ~steps h ->
          Algos.Run_cc1.run ~seed ~daemon ~workload ~steps h);
    ]
  in
  let sel_steps = if quick then 6_000 else 20_000 in
  let topos =
    [ ("fig1", Families.fig1 ());
      ("rand12", Families.random ~seed:42 ~n:12 ~m:10 ());
    ]
  in
  let selection =
    List.concat_map
      (fun (topo, h) ->
        [ selection_run ~steps:sel_steps "min-edge-id"
            (fun ~seed ~daemon ~workload ~steps h ->
              Algos.Run_cc1.run ~seed ~daemon ~workload ~steps h)
            topo h;
          selection_run ~steps:sel_steps "widest-first"
            (fun ~seed ~daemon ~workload ~steps h ->
              Algos.Run_cc1_widest.run ~seed ~daemon ~workload ~steps h)
            topo h;
        ])
      topos
  in
  { retention; selection }

let table (r : result) =
  let retention_rows =
    List.map
      (fun x ->
        [ "retention"; x.algo; "-"; Table.i x.prof5; Table.i x.convenes;
          Table.i x.violations ])
      r.retention
  in
  let selection_rows =
    List.map
      (fun s ->
        [ "selection"; s.strategy; s.topo;
          Printf.sprintf "%.1f/1k" s.throughput;
          Printf.sprintf "size %.2f" s.mean_meeting_size;
          Printf.sprintf "conc %.2f" s.mean_concurrency ])
      r.selection
  in
  {
    Table.id = "ablations";
    title =
      "Design-decision ablations: token retention (fairness switch) and \
       Step21 edge selection";
    header = [ "ablation"; "variant"; "topo"; "prof5/thruput"; "convenes/size"; "viol/conc" ];
    rows = retention_rows @ selection_rows;
    notes =
      [ "retention: replaying the Theorem 1 schedule — CC2 serves professor \
         5; the same algorithm with CC1's eager release starves it, \
         confirming that token retention alone carries the fairness proof \
         (§3.2).";
        "selection: the edge choice is a correctness don't-care; \
         widest-first trades meeting count for meeting size.";
      ];
  }

let ok (r : result) =
  let find label = List.find (fun x -> x.algo = label) r.retention in
  (find "CC2 (retain until met)").prof5 > 0
  && (find "CC2 + eager release").prof5 = 0
  && (find "CC1 (always eager)").prof5 = 0
  && List.for_all (fun x -> x.violations = 0) r.retention
  && List.for_all (fun s -> s.throughput > 0.) r.selection
