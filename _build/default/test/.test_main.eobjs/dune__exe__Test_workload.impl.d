test/test_workload.ml: Alcotest Array List Snapcc_hypergraph Snapcc_runtime Snapcc_workload
