(** EXP-CONJ — the §7 conjecture: Maximal Concurrency and {e bounded}
    waiting time are (conjectured) incompatible.

    Supporting evidence by simulation: replay the Theorem 1 staggered
    schedule for growing horizons and track the victim's open waiting span.
    Under CC1 it grows linearly with the horizon — the wait is unbounded —
    while CC2's maximum wait stays flat once the horizon exceeds its
    O(maxDisc × n) bound.  (A simulation cannot prove the conjecture; it
    shows the separation the conjecture predicts on the adversarial family
    we can build.) *)

module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Metrics = Snapcc_analysis.Metrics

type point = {
  horizon : int;
  cc1_max_wait : int;  (** max waiting span, steps (open spans included) *)
  cc2_max_wait : int;
}

type result = point list

let measure ~horizon =
  let wait run =
    let h = Families.fig2 () in
    let r =
      run ~seed:7 ~daemon:(Daemon.random_subset ())
        ~workload:(Exp_impossibility.staggered h) ~steps:horizon h
    in
    (r : Driver.result).Driver.summary.Metrics.max_wait_steps
  in
  {
    horizon;
    cc1_max_wait =
      wait (fun ~seed ~daemon ~workload ~steps h ->
          Algos.Run_cc1.run ~seed ~daemon ~workload ~steps h);
    cc2_max_wait =
      wait (fun ~seed ~daemon ~workload ~steps h ->
          Algos.Run_cc2.run ~seed ~daemon ~workload ~steps h);
  }

let run ?(quick = false) () : result =
  let horizons = if quick then [ 2_000; 4_000; 8_000 ] else [ 2_000; 4_000; 8_000; 16_000; 32_000 ] in
  List.map (fun horizon -> measure ~horizon) horizons

let table (r : result) =
  {
    Table.id = "conjecture-bounded-wait";
    title =
      "Section 7 conjecture: maximal concurrency vs bounded waiting time \
       (staggered fig2 schedule)";
    header = [ "horizon (steps)"; "CC1 max wait"; "CC2 max wait" ];
    rows =
      List.map
        (fun p -> [ Table.i p.horizon; Table.i p.cc1_max_wait; Table.i p.cc2_max_wait ])
        r;
    notes =
      [ "CC1's maximum wait tracks the horizon (professor 5's wait never \
         ends: unbounded waiting), CC2's saturates: the separation the \
         conjecture predicts.";
      ];
  }

let ok (r : result) =
  match (r, List.rev r) with
  | first :: _, last :: _ ->
    (* CC1's wait grows with the horizon; CC2's stays within a flat bound *)
    last.cc1_max_wait > 2 * first.cc1_max_wait
    && last.cc1_max_wait > last.horizon / 2
    && last.cc2_max_wait < last.horizon / 4
  | _ -> false
