module H = Snapcc_hypergraph.Hypergraph
module Obs = Snapcc_runtime.Obs

type violation = { step : int; rule : string; detail : string }

(* Per-committee meeting bookkeeping: [Exempt] marks meetings inherited
   from the initial configuration (no discussion guarantees, §2.5);
   [Running] records the convene step and each member's discussion counter
   at convene time. *)
type session = Off | Exempt | Running of { since : int; disc_at_convene : int array }

type t = {
  h : H.t;
  mutable rev_violations : violation list;
  mutable rev_convened : (int * int) list;
  convene_count : int array;
  participations : int array;
  sessions : session array;
  telemetry : Snapcc_telemetry.Hub.t option;
}

let create ?telemetry h ~initial =
  let sessions =
    Array.init (H.m h) (fun e -> if Obs.meets h initial e then Exempt else Off)
  in
  {
    h;
    rev_violations = [];
    rev_convened = [];
    convene_count = Array.make (H.m h) 0;
    participations = Array.make (H.n h) 0;
    sessions;
    telemetry;
  }

let report t ~step ~rule detail =
  t.rev_violations <- { step; rule; detail } :: t.rev_violations;
  match t.telemetry with
  | Some hub ->
    Snapcc_telemetry.Hub.emit hub
      (Snapcc_telemetry.Event.Verdict { step; rule; detail })
  | None -> ()

let edge_str t e = Format.asprintf "%a" (H.pp_edge t.h) e

let check_exclusion t ~step after =
  let meeting = Obs.meetings t.h after in
  let rec pairs = function
    | [] -> ()
    | e :: rest ->
      List.iter
        (fun e' ->
          if H.conflicting t.h e e' then
            report t ~step ~rule:"exclusion"
              (Printf.sprintf "conflicting committees %s and %s meet simultaneously"
                 (edge_str t e) (edge_str t e')))
        rest;
      pairs rest
  in
  pairs meeting

let check_convene t ~step ~(before : Obs.t array) ~(after : Obs.t array) e =
  let members = H.edge_members t.h e in
  (* synchronization: all members were waiting (status looking/waiting) *)
  Array.iter
    (fun q ->
      match before.(q).Obs.status with
      | Obs.Looking | Obs.Waiting -> ()
      | Obs.Idle | Obs.Done ->
        report t ~step ~rule:"synchronization"
          (Printf.sprintf "committee %s convened while professor %d was %s"
             (edge_str t e) (H.id t.h q)
             (Format.asprintf "%a" Obs.pp_status before.(q).Obs.status)))
    members;
  (* Lemma 2: right after convening, every member is in status waiting *)
  Array.iter
    (fun q ->
      if after.(q).Obs.status <> Obs.Waiting then
        report t ~step ~rule:"synchronization"
          (Printf.sprintf
             "committee %s convened with professor %d in status %s (expected waiting)"
             (edge_str t e) (H.id t.h q)
             (Format.asprintf "%a" Obs.pp_status after.(q).Obs.status)))
    members;
  t.rev_convened <- (step, e) :: t.rev_convened;
  t.convene_count.(e) <- t.convene_count.(e) + 1;
  Array.iter (fun q -> t.participations.(q) <- t.participations.(q) + 1) members;
  t.sessions.(e) <-
    Running
      { since = step;
        disc_at_convene = Array.map (fun q -> after.(q).Obs.discussions) members }

let check_terminate t ~step ~request_out ~(before : Obs.t array) e =
  let members = H.edge_members t.h e in
  (match t.sessions.(e) with
   | Exempt | Off -> ()
   | Running { since; disc_at_convene } ->
     (* essential discussion: nobody may leave before everyone is done *)
     Array.iteri
       (fun i q ->
         if before.(q).Obs.status <> Obs.Done then
           report t ~step ~rule:"essential-discussion"
             (Printf.sprintf
                "meeting %s (convened at %d) broke up while professor %d was %s"
                (edge_str t e) since (H.id t.h q)
                (Format.asprintf "%a" Obs.pp_status before.(q).Obs.status));
         if before.(q).Obs.discussions < disc_at_convene.(i) + 1 then
           report t ~step ~rule:"essential-discussion"
             (Printf.sprintf
                "professor %d left meeting %s without discussing" (H.id t.h q)
                (edge_str t e)))
       members;
     (* voluntary discussion: somebody wanted out *)
     if not (Array.exists request_out members) then
       report t ~step ~rule:"voluntary-discussion"
         (Printf.sprintf
            "meeting %s (convened at %d) terminated with no RequestOut" (edge_str t e)
            since));
  t.sessions.(e) <- Off

let on_step t ~step ~request_out ~before ~after =
  check_exclusion t ~step after;
  for e = 0 to H.m t.h - 1 do
    let was = Obs.meets t.h before e and is = Obs.meets t.h after e in
    if (not was) && is then check_convene t ~step ~before ~after e
    else if was && not is then check_terminate t ~step ~request_out ~before e
  done

let on_fault t obs =
  for e = 0 to H.m t.h - 1 do
    if Obs.meets t.h obs e then t.sessions.(e) <- Exempt
    else t.sessions.(e) <- Off
  done

let violations t = List.rev t.rev_violations
let ok t = t.rev_violations = []
let convened t = List.rev t.rev_convened
let convene_count t = Array.copy t.convene_count
let participations t = Array.copy t.participations

let pp_violation ppf v =
  Format.fprintf ppf "[step %d] %s: %s" v.step v.rule v.detail
