(** Plain-text result tables: what the bench harness prints and what
    EXPERIMENTS.md records. *)

type t = {
  id : string;  (** experiment id, e.g. "thm45-dfc" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let cell_width rows header =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c))
        row)
    (header :: rows);
  widths

let pp ppf t =
  let widths = cell_width t.rows t.header in
  let pad i c =
    let w = if i < Array.length widths then widths.(i) else String.length c in
    c ^ String.make (max 0 (w - String.length c)) ' '
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf ppf "@[<v>== %s: %s ==@,%s@,%s@," t.id t.title (line t.header) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@," (line row)) t.rows;
  List.iter (fun n -> Format.fprintf ppf "note: %s@," n) t.notes;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i = string_of_int
let b x = if x then "yes" else "no"
