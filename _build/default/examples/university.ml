(* The paper's motivating story, literally: professors and committees.

       dune exec examples/university.exe

   A department with nine professors organized into six committees.  The
   chair cares about fairness — nobody should be shut out of their
   committees — so the department runs CC2 ∘ TC (Professor Fairness,
   Theorem 3), accepting that it gives up Maximal Concurrency (Theorem 1
   says it must).  We also run CC1 on the same roster: it guarantees that a
   fully-ready committee always eventually convenes, but offers no fairness.

   Professors discuss for different times (a 2-phase discussion: everyone
   finishes the essential part, then the first bored professor adjourns). *)

module H = Snapcc_hypergraph.Hypergraph
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics
module Algos = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver

let professors =
  [| "Ada"; "Bela"; "Chandra"; "Dijkstra"; "Erdos"; "Floyd"; "Gries"; "Hoare";
     "Iverson" |]

(* committees by professor index *)
let committees =
  [ ("curriculum", [ 0; 1; 2 ]);
    ("admissions", [ 2; 3; 4; 5 ]);
    ("library", [ 4; 6 ]);
    ("hiring", [ 5; 6; 7 ]);
    ("budget", [ 7; 8 ]);
    ("colloquium", [ 0; 8 ]);
  ]

(* slow thinkers discuss longer *)
let disc_len p = if p mod 3 = 0 then 6 else 2

let describe h (r : Driver.result) =
  Format.printf "%a@.@." Driver.pp_result r;
  Format.printf "%-10s %14s %12s@." "professor" "participations" "discussions";
  Array.iteri
    (fun p name ->
      Format.printf "%-10s %14d %12d@." name r.Driver.participations.(p)
        r.Driver.final_obs.(p).Snapcc_runtime.Obs.discussions)
    professors;
  Format.printf "@.%-12s %9s@." "committee" "convenes";
  List.iteri
    (fun e (name, _) ->
      Format.printf "%-12s %9d@." name r.Driver.convene_count.(e))
    committees;
  ignore h;
  Format.printf "@."

let () =
  let h = H.create ~n:(Array.length professors) (List.map snd committees) in
  let steps = 20_000 in
  let daemon = Daemon.random_subset () in
  let workload () = Workload.always_requesting ~disc_len h in
  Format.printf "== CC2 (fair): every professor keeps meeting ==@.@.";
  let fair =
    Algos.Run_cc2.run ~seed:2026 ~daemon ~workload:(workload ()) ~steps h
  in
  describe h fair;
  assert (fair.Driver.violations = []);
  assert (Array.for_all (fun c -> c > 0) fair.Driver.participations);

  Format.printf "== CC1 (maximal concurrency) on the same roster ==@.@.";
  let fast =
    Algos.Run_cc1.run ~seed:2026 ~daemon ~workload:(workload ()) ~steps h
  in
  describe h fast;
  assert (fast.Driver.violations = []);

  let conc (r : Driver.result) = r.Driver.summary.Metrics.mean_concurrency in
  Format.printf
    "mean simultaneous meetings: CC1 %.2f, CC2 %.2f.@.@." (conc fast) (conc fair);
  Format.printf
    "Note the trade-off is about guarantees, not averages: CC1 promises that \
     a ready committee eventually convenes no matter how long other meetings \
     drag on (Maximal Concurrency), but may starve a professor forever under \
     an adversarial schedule (see the fig2-impossibility experiment); CC2 \
     promises every professor keeps meeting, at the cost of blocking \
     committees behind the token holder.@."
