lib/experiments/exp_committee_fairness.ml: Algos Array Driver List Snapcc_hypergraph Snapcc_runtime Snapcc_workload String Table
