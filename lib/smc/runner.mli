(** Orchestration of an smc run: typed algorithm dispatch (with packed
    tables built once, in the parent), the worker pool, SPRT batching,
    telemetry and the report.

    The merged result is byte-reproducible for any [workers] value:
    records are pure functions of [(seed, trial)] ({!Trial}), the pool
    returns them in index order ({!Pool}), SPRT consumes fixed-size
    index batches, and only the parent emits telemetry. *)

type cfg = {
  algo : string;  (** cc1|cc2|cc3|cc1-vring|cc2-vring|cc3-vring *)
  topo_name : string;
  topo : Snapcc_hypergraph.Hypergraph.t;
  daemon : string;
  workload : string;
  disc : int;
  budget : int;  (** per-trial step horizon *)
  trials : int;  (** trial count (upper bound under SPRT) *)
  workers : int;
  seed : int;
  confidence : float;
  engine : [ `Packed | `Closure ];
  sprt : float option;
      (** [Some theta] switches to SPRT mode: test
          "P(stabilized within {!field-sprt_within}) >= theta" with early
          stopping, [trials] as the truncation bound *)
  sprt_delta : float;  (** indifference half-width *)
  sprt_within : int option;  (** success horizon; default [budget] *)
}

val algo_names : string list

val sprt_batch : int
(** Trials per pool invocation in SPRT mode — fixed (never derived from
    [workers]) so the consumed-trial count is worker-independent. *)

val run :
  ?telemetry:Snapcc_telemetry.Hub.t -> cfg -> (Report.t, string) result
(** Errors on unknown algo/daemon/workload names; raises [Failure] if a
    worker dies mid-run.  With [telemetry], emits [run_start], one
    [smc_trial] per record (in trial order) and a [run_end] — the JSONL
    trace is identical for any worker count. *)
