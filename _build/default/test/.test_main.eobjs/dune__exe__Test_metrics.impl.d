test/test_metrics.ml: Alcotest Array Format List Snapcc_analysis Snapcc_hypergraph Snapcc_runtime String
