lib/mp/mp_engine.mli: Snapcc_hypergraph Snapcc_runtime
