type inputs = {
  request_in : int -> bool;
  request_out : int -> bool;
}

let no_inputs = { request_in = (fun _ -> false); request_out = (fun _ -> false) }
let always_in = { request_in = (fun _ -> true); request_out = (fun _ -> false) }

let input_modes =
  [| ("quiet", no_inputs);
     ("in", always_in);
     ("out", { request_in = (fun _ -> false); request_out = (fun _ -> true) });
     ("in+out", { request_in = (fun _ -> true); request_out = (fun _ -> true) });
  |]

type 'state ctx = {
  h : Snapcc_hypergraph.Hypergraph.t;
  inputs : inputs;
  read : int -> 'state;
  self : int;
}

type 'state action = {
  label : string;
  guard : 'state ctx -> bool;
  apply : 'state ctx -> 'state;
}

let lift_action ~get ~set action =
  let lower ctx = { h = ctx.h; inputs = ctx.inputs; read = (fun p -> get (ctx.read p)); self = ctx.self } in
  {
    label = action.label;
    guard = (fun ctx -> action.guard (lower ctx));
    apply = (fun ctx -> set (ctx.read ctx.self) (action.apply (lower ctx)));
  }

module type ALGO = sig
  type state

  val name : string
  val pp_state : Format.formatter -> state -> unit
  val equal_state : state -> state -> bool
  val init : Snapcc_hypergraph.Hypergraph.t -> int -> state
  val random_init : Snapcc_hypergraph.Hypergraph.t -> Random.State.t -> int -> state
  val actions : Snapcc_hypergraph.Hypergraph.t -> state action list
  val observe : Snapcc_hypergraph.Hypergraph.t -> state array -> int -> Obs.t
end

type step_report = {
  step : int;
  selected : int list;
  executed : (int * string) list;
  neutralized : int list;
  round : int;
  terminal : bool;
}

(* The table-driven fast path is produced by [Snapcc_mc.Packed] (this
   library cannot depend on the checker, so the hooks are closures).  A
   packed configuration is the vector of dense per-process state ids of the
   interned declared domains; [pk_entry] is the packed guard/footprint
   lookup with the [Snapcc_mc.Tables] conventions: [-1] = nothing enabled,
   [-2] = unavailable (no stored table for the process, or an escapee id in
   its support), [>= 0] = packed (action, changes, reads, successor id). *)
type 'state packed = {
  pk_entry : mode:int -> proc:int -> int array -> int;
  pk_intern : int -> 'state -> int;
      (* canonicalize + intern; raises [Failure] when escapees overflow the
         id headroom, which consumers treat as "fall back to closures" *)
  pk_support : int -> int array;
  pk_built : int -> bool;  (* stored table available for the process *)
}

let entry_act e = e land 0x3f
let entry_succ e = e lsr 23

(* Per-process uniform input mode, indexing [input_modes]: bit 0 =
   [request_in self], bit 1 = [request_out self].  Sound for table lookups
   because the tables enumerate guards under uniform modes and the
   algorithms only consult the input predicates at [self] (checked by
   [ccsim lint]'s footprint analysis). *)
let mode_of inputs p =
  (if inputs.request_in p then 1 else 0)
  lor if inputs.request_out p then 2 else 0
