module Table = Snapcc_experiments.Table

type t = {
  algo : string;
  token : string;
  topo : string;
  product : float;
  configs : int;
  transitions : int;
  complete : bool;
  escapees : int;
  dead : string list;
  safety_violations : int;
  first_rule : string option;
  progress_checked : bool;
  sccs : int;
  largest_scc : int;
  deadlocks : int;
  livelocks : int;
  seconds : float;
}

type outcome = Pass | Fail | Incomplete

let outcome r =
  if
    r.safety_violations > 0 || r.escapees > 0 || r.deadlocks > 0
    || r.livelocks > 0
  then Fail
  else if r.complete then Pass
  else Incomplete

let outcome_name = function
  | Pass -> "PASS"
  | Fail -> "FAIL"
  | Incomplete -> "INCOMPLETE"

let states_per_sec r =
  if r.seconds > 0. then float_of_int r.configs /. r.seconds else 0.

let summary_table reports =
  { Table.id = "check-matrix";
    title = "ccsim check: exhaustive verification matrix";
    header =
      [ "algo"; "token"; "topo"; "initial"; "states"; "transitions";
        "escapees"; "safety"; "deadlock"; "livelock"; "states/s"; "verdict" ];
    rows =
      List.map
        (fun r ->
          [ r.algo; r.token; r.topo;
            Printf.sprintf "%.0f" r.product;
            Table.i r.configs; Table.i r.transitions; Table.i r.escapees;
            (match r.first_rule with
            | Some rule -> Printf.sprintf "%d (%s)" r.safety_violations rule
            | None -> Table.i r.safety_violations);
            (if r.progress_checked then Table.i r.deadlocks else "-");
            (if r.progress_checked then Table.i r.livelocks else "-");
            Printf.sprintf "%.0f" (states_per_sec r);
            outcome_name (outcome r) ])
        reports;
    notes =
      [ "initial = domain product (every configuration is a legal start, \
         §2.5); states = explored (reachable closure of the domain)";
        "safety via the runtime monitor per transition; progress = \
         deadlock/livelock under weak fairness on the in+out graph" ] }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%s ∘ %s on %s: %s@,\
     initial configurations: %.0f, explored: %d states, %d transitions%s@,\
     closure: %s@,safety: %s@,progress: %s@,throughput: %.0f states/s (%.2fs)@]"
    r.algo r.token r.topo
    (outcome_name (outcome r))
    r.product r.configs r.transitions
    (if r.complete then "" else " (capped: INCOMPLETE)")
    (if r.escapees = 0 then "domain closed under all transitions"
     else Printf.sprintf "%d escapee state(s) outside the declared domain"
            r.escapees)
    (match (r.safety_violations, r.first_rule) with
    | 0, _ -> "no violation on any explored transition"
    | k, Some rule -> Printf.sprintf "%d violation(s), first rule %s" k rule
    | k, None -> Printf.sprintf "%d violation(s)" k)
    (if not r.progress_checked then "skipped (incomplete exploration)"
     else if r.deadlocks = 0 && r.livelocks = 0 then
       Printf.sprintf "no deadlock, no livelock (%d SCCs, largest %d)" r.sccs
         r.largest_scc
     else
       Printf.sprintf "%d deadlock(s), %d livelock(s)" r.deadlocks r.livelocks)
    (states_per_sec r) r.seconds
