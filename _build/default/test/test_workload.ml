(* Workload drivers: discussion timers, stickiness, burstiness, scripts. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Obs = Snapcc_runtime.Obs
module Workload = Snapcc_workload.Workload

let check = Alcotest.(check bool)

let idle = Obs.make Obs.Idle
let done_ e = Obs.make ~pointer:(Some e) Obs.Done
let looking = Obs.make Obs.Looking

let test_discussion_timer () =
  let h = Families.fig2 () in
  let w = Workload.always_requesting ~disc_len:(fun _ -> 3) h in
  let obs = [| done_ 0; done_ 0; looking; looking; looking |] in
  (* below the threshold: no request_out *)
  Workload.observe w ~step:0 obs;
  Workload.observe w ~step:1 obs;
  let i = Workload.inputs w obs in
  check "not yet out" false (i.Snapcc_runtime.Model.request_out 0);
  (* third consecutive done step crosses disc_len *)
  Workload.observe w ~step:2 obs;
  let i = Workload.inputs w obs in
  check "out after disc_len" true (i.Snapcc_runtime.Model.request_out 0);
  check "request_in always true" true (i.Snapcc_runtime.Model.request_in 3);
  (* leaving resets the timer and the grant *)
  Workload.observe w ~step:3 [| looking; done_ 0; looking; looking; looking |];
  let i = Workload.inputs w obs in
  check "grant falls after leaving" false (i.Snapcc_runtime.Model.request_out 0)

let test_heterogeneous_disc_len () =
  let h = Families.fig2 () in
  let w = Workload.always_requesting ~disc_len:(fun p -> if p = 0 then 1 else 5) h in
  let obs = [| done_ 0; done_ 0; looking; looking; looking |] in
  Workload.observe w ~step:0 obs;
  let i = Workload.inputs w obs in
  check "fast professor wants out" true (i.Snapcc_runtime.Model.request_out 0);
  check "slow professor keeps discussing" false (i.Snapcc_runtime.Model.request_out 1)

let test_bursty_deterministic () =
  let h = Families.fig2 () in
  let run () =
    let w = Workload.bursty ~seed:9 ~p_request:0.5 h in
    let requests = ref [] in
    let obs = Array.make (H.n h) idle in
    for step = 0 to 30 do
      Workload.observe w ~step obs;
      let i = Workload.inputs w obs in
      requests :=
        List.init (H.n h) (fun p -> i.Snapcc_runtime.Model.request_in p) :: !requests
    done;
    !requests
  in
  check "same seed, same request stream" true (run () = run ())

let test_bursty_sticky () =
  let h = Families.fig2 () in
  let w = Workload.bursty ~seed:1 ~p_request:1.0 h in
  let obs = Array.make (H.n h) idle in
  Workload.observe w ~step:0 obs;
  let i = Workload.inputs w obs in
  check "idle professor requests" true (i.Snapcc_runtime.Model.request_in 0);
  (* pending survives until the professor leaves idle *)
  Workload.observe w ~step:1 obs;
  let i = Workload.inputs w obs in
  check "request sticks while idle" true (i.Snapcc_runtime.Model.request_in 0);
  Workload.observe w ~step:2 [| looking; idle; idle; idle; idle |];
  let i = Workload.inputs w obs in
  check "request drops once looking" false (i.Snapcc_runtime.Model.request_in 0)

let test_selective () =
  let h = Families.fig2 () in
  let w = Workload.selective ~requesters:[ 2; 3 ] h in
  let i = Workload.inputs w (Array.make (H.n h) idle) in
  check "requester requests" true (i.Snapcc_runtime.Model.request_in 2);
  check "non-requester never" false (i.Snapcc_runtime.Model.request_in 0)

let test_infinite_meetings () =
  let h = Families.fig2 () in
  let w = Workload.infinite_meetings h in
  let obs = [| done_ 0; done_ 0; looking; looking; looking |] in
  for step = 0 to 10 do
    Workload.observe w ~step obs
  done;
  let i = Workload.inputs w obs in
  check "never out" false (i.Snapcc_runtime.Model.request_out 0);
  check "always in" true (i.Snapcc_runtime.Model.request_in 4)

let test_scripted_steps () =
  let w =
    Workload.scripted ~name:"test"
      ~request_in:(fun ~step p -> step >= 3 && p = 1)
      ~request_out:(fun ~step _ -> step >= 5)
      ()
  in
  let obs = [||] in
  let i = Workload.inputs w obs in
  check "step 0: no request" false (i.Snapcc_runtime.Model.request_in 1);
  Workload.observe w ~step:0 obs;
  Workload.observe w ~step:1 obs;
  Workload.observe w ~step:2 obs;
  let i = Workload.inputs w obs in
  check "step 3: request" true (i.Snapcc_runtime.Model.request_in 1);
  check "step 3: no out yet" false (i.Snapcc_runtime.Model.request_out 0);
  Workload.observe w ~step:3 obs;
  Workload.observe w ~step:4 obs;
  let i = Workload.inputs w obs in
  check "step 5: out" true (i.Snapcc_runtime.Model.request_out 0)

let suite =
  [ ( "workload",
      [ Alcotest.test_case "discussion timer" `Quick test_discussion_timer;
        Alcotest.test_case "heterogeneous discussion lengths" `Quick
          test_heterogeneous_disc_len;
        Alcotest.test_case "bursty determinism" `Quick test_bursty_deterministic;
        Alcotest.test_case "bursty stickiness" `Quick test_bursty_sticky;
        Alcotest.test_case "selective requesters" `Quick test_selective;
        Alcotest.test_case "infinite meetings" `Quick test_infinite_meetings;
        Alcotest.test_case "scripted steps" `Quick test_scripted_steps;
      ] );
  ]
