examples/rendezvous_bip.mli:
