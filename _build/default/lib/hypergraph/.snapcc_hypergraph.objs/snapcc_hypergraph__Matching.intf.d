lib/hypergraph/matching.mli: Format Hypergraph
