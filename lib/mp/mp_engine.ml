module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
module Tele = Snapcc_telemetry
module Vclock = Snapcc_telemetry.Vclock
module Sem = Mp_semantics

module Make (A : Model.ALGO) = struct
  module View = Mp_view.Make (A)

  type event =
    | Activated of int * string option
    | Delivered of int * int

  (* Table-driven mirror of the transformation state: dense domain ids for
     every core, cache entry and in-flight snapshot, per-process packed
     view configurations, and the pending set as bitmasks.  The typed
     states stay authoritative; the mirror only replaces guard scans and
     the scheduler's pending-list allocation. *)
  type pk = {
    hooks : A.state Model.packed;
    core_ids : int array;
    cache_ids : int array array;  (* per process, per slot *)
    chan_ids : int array array;  (* id carried by the pending snapshot *)
    cfgs : int array array;
        (* cfgs.(p): p's view as a global-indexed id vector — own core at
           [p], caches at the neighbor indices; only support cells are read *)
    ok : bool array;
        (* table stored and support within the closed neighborhood: the
           cells a message-passing view actually maintains *)
    masks : int array;  (* pending slots per process *)
    mutable count : int;  (* total pending *)
  }

  (* Vector-clock bookkeeping, active only when stamping is on: per-process
     clocks plus the clock each pending snapshot carried when it entered
     the channel.  Purely observational — it never touches the rng or the
     scheduler, so stamped and unstamped runs are event-for-event
     identical. *)
  type vc = {
    clocks : int array array;
    chan_clocks : int array array array;
        (* chan_clocks.(p).(i): the clock carried by the snapshot pending
           from p's i-th neighbor, valid iff chan_has.(p).(i) — flat
           preallocated int rows, so the per-broadcast capture is a plain
           blit (no allocation, no write barrier on the hot path) *)
    chan_has : bool array array;
    cores : A.state array;
        (* scratch mirror of the authoritative cores (refreshed on the two
           mutation points) so a clock stamp's observation needs no
           per-event array rebuild *)
    mutable init_emitted : bool;
  }

  type t = {
    h : H.t;
    sem : Sem.t;  (* scheduler + rng: the shared transformation semantics *)
    telemetry : Tele.Hub.t option;
    views : View.t array;  (* per-process core + per-neighbor cache *)
    chan : A.state option array array;  (* chan.(p).(i): pending from i-th neighbor *)
    actions : A.state Model.action array;
    mutable pk : pk option;
    vc : vc option;
    mutable sent : int;
    mutable delivered : int;
    mutable prof_pk_hits : int;
    mutable prof_pk_fallbacks : int;
    mutable prof_activations : int;
    mutable prof_deliveries : int;
  }

  let create ?(seed = 0) ?(init = `Canonical) ?(deliver_bias = 0.5) ?telemetry
      ?(vclock = true) ?packed h =
    let n = H.n h in
    let sem = Sem.create ~deliver_bias ~seed h in
    let rng = Sem.rng sem in
    let mk p = match init with `Canonical -> A.init h p | `Random -> A.random_init h rng p in
    let states = Array.init n mk in
    let views =
      Array.init n (fun p ->
          View.create h ~self:p ~core:states.(p)
            ~cache:
              (Array.map
                 (fun q ->
                   match init with
                   | `Canonical -> states.(q)
                   | `Random -> A.random_init h rng q)
                 (H.neighbors h p)))
    in
    let chan =
      Array.init n (fun p ->
          Array.map
            (fun q ->
              match init with
              | `Canonical -> None
              | `Random ->
                if Random.State.bool rng then Some (A.random_init h rng q) else None)
            (H.neighbors h p))
    in
    let pk =
      match packed with
      | None -> None
      | Some hooks -> (
        let in_neighborhood p q = q = p || H.are_neighbors h p q in
        let ok =
          Array.init n (fun p ->
              hooks.Model.pk_built p
              && Array.for_all (in_neighborhood p) (hooks.Model.pk_support p))
        in
        match
          let core_ids =
            Array.init n (fun p -> hooks.Model.pk_intern p (View.core views.(p)))
          in
          let cache_ids =
            Array.init n (fun p ->
                Array.mapi
                  (fun i q -> hooks.Model.pk_intern q (View.cache views.(p) i))
                  (H.neighbors h p))
          in
          let chan_ids =
            Array.init n (fun p ->
                Array.mapi
                  (fun i -> function
                    | None -> -1
                    | Some st -> hooks.Model.pk_intern (H.neighbors h p).(i) st)
                  chan.(p))
          in
          let cfgs =
            Array.init n (fun p ->
                let cfg = Array.make n 0 in
                cfg.(p) <- core_ids.(p);
                Array.iteri
                  (fun i q -> cfg.(q) <- cache_ids.(p).(i))
                  (H.neighbors h p);
                cfg)
          in
          let masks =
            Array.init n (fun p ->
                let m = ref 0 in
                Array.iteri
                  (fun i s -> if s <> None then m := !m lor (1 lsl i))
                  chan.(p);
                !m)
          in
          let count =
            Array.fold_left
              (fun acc row ->
                Array.fold_left (fun a m -> if m = None then a else a + 1) acc row)
              0 chan
          in
          { hooks; core_ids; cache_ids; chan_ids; cfgs; ok; masks; count }
        with
        | pk -> Some pk
        | exception Failure _ -> None)
    in
    let vc =
      if vclock && telemetry <> None then begin
        let clocks = Array.init n (fun _ -> Array.make n 0) in
        for p = 0 to n - 1 do
          clocks.(p).(p) <- 1
        done;
        let chan_clocks =
          Array.init n (fun p ->
              Array.map
                (fun q -> Array.copy clocks.(q))
                (H.neighbors h p))
        in
        (* randomly preloaded snapshots carry the sender's initial clock *)
        let chan_has =
          Array.init n (fun p ->
              Array.map (fun m -> m <> None) chan.(p))
        in
        Some
          { clocks; chan_clocks; chan_has;
            cores = Array.map View.core views;
            init_emitted = false }
      end
      else None
    in
    { h; sem; telemetry; views; chan;
      actions = Array.of_list (A.actions h);
      pk; vc; sent = 0; delivered = 0;
      prof_pk_hits = 0; prof_pk_fallbacks = 0;
      prof_activations = 0; prof_deliveries = 0 }

  let hypergraph t = t.h
  let engine_kind t = if t.pk = None then `Closure else `Packed

  let obs t =
    let cores = Array.map View.core t.views in
    Array.init (H.n t.h) (A.observe t.h cores)

  let steps_taken t = Sem.steps t.sem
  let messages_delivered t = t.delivered
  let messages_sent t = t.sent
  let max_staleness t = Sem.max_staleness t.sem

  let profile t =
    [ ("mp_pk_hits", t.prof_pk_hits);
      ("mp_pk_fallbacks", t.prof_pk_fallbacks);
      ("mp_activations", t.prof_activations);
      ("mp_deliveries", t.prof_deliveries) ]

  let in_flight t =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun a m -> if m = None then a else a + 1) acc row)
      0 t.chan

  let emit t ev =
    match t.telemetry with None -> () | Some hub -> Tele.Hub.emit hub ev

  let emit_clock t vc ~k p =
    let o = A.observe t.h vc.cores p in
    emit t
      (Tele.Event.Clock
         { step = Sem.steps t.sem;
           p;
           k;
           clock = Array.to_list vc.clocks.(p);
           obs_code = Obs.code o;
           disc = o.Obs.discussions })

  (* Process initial configurations are events too (each sets its own clock
     component to 1); they are flushed lazily so they land after the
     runner's [run_start]. *)
  let ensure_init_clocks t =
    match t.vc with
    | Some vc when not vc.init_emitted ->
      vc.init_emitted <- true;
      for p = 0 to H.n t.h - 1 do
        emit_clock t vc ~k:Tele.Event.clock_init p
      done
    | _ -> ()

  let broadcast t p =
    Array.iteri
      (fun _i q ->
        let slot = View.slot t.views.(q) p in
        (match t.pk with
         | Some pk ->
           if t.chan.(q).(slot) = None then begin
             pk.masks.(q) <- pk.masks.(q) lor (1 lsl slot);
             pk.count <- pk.count + 1
           end;
           pk.chan_ids.(q).(slot) <- pk.core_ids.(p)
         | None -> ());
        (match t.vc with
         | Some vc ->
           let src = vc.clocks.(p) in
           let dst = vc.chan_clocks.(q).(slot) in
           for j = 0 to Array.length src - 1 do
             Array.unsafe_set dst j (Array.unsafe_get src j)
           done;
           vc.chan_has.(q).(slot) <- true
         | None -> ());
        t.chan.(q).(slot) <- Some (View.core t.views.(p));
        t.sent <- t.sent + 1)
      (H.neighbors t.h p)

  (* Packed activation: one table lookup instead of the guard closure scan;
     the statement still runs against the typed view.  [-2] (or an
     out-of-neighborhood support) falls back to {!View.activate} and
     re-interns the new core; an interner overflow drops the whole mirror
     for the rest of the run. *)
  let view_activate t ~inputs p =
    match t.pk with
    | None -> View.activate t.views.(p) ~inputs
    | Some pk ->
      let fallback () =
        let label = View.activate t.views.(p) ~inputs in
        (match t.pk with
         | Some pk -> (
           match pk.hooks.Model.pk_intern p (View.core t.views.(p)) with
           | id ->
             pk.core_ids.(p) <- id;
             pk.cfgs.(p).(p) <- id
           | exception Failure _ -> t.pk <- None)
         | None -> ());
        label
      in
      if not pk.ok.(p) then fallback ()
      else begin
        let e =
          pk.hooks.Model.pk_entry ~mode:(Model.mode_of inputs p) ~proc:p
            pk.cfgs.(p)
        in
        if e >= -1 then t.prof_pk_hits <- t.prof_pk_hits + 1
        else t.prof_pk_fallbacks <- t.prof_pk_fallbacks + 1;
        if e = -1 then None
        else if e >= 0 then begin
          let i = Model.entry_act e in
          let ctx =
            { Model.h = t.h; inputs; read = View.read t.views.(p); self = p }
          in
          View.set_core t.views.(p) (t.actions.(i).Model.apply ctx);
          let id = Model.entry_succ e in
          pk.core_ids.(p) <- id;
          pk.cfgs.(p).(p) <- id;
          Some t.actions.(i).Model.label
        end
        else fallback ()
      end

  let activate t ~inputs p =
    t.prof_activations <- t.prof_activations + 1;
    let label = view_activate t ~inputs p in
    (* tick before broadcasting: the snapshot causally includes the
       activation; a no-op activation is a heartbeat, not an event *)
    (match t.vc with
     | Some vc when label <> None ->
       vc.cores.(p) <- View.core t.views.(p);
       let own = vc.clocks.(p) in
       own.(p) <- own.(p) + 1
     | _ -> ());
    broadcast t p;
    Sem.on_activated t.sem p;
    emit t (Tele.Event.Mp_activated { step = Sem.steps t.sem; p; label });
    (match t.vc with
     | Some vc when label <> None ->
       emit_clock t vc ~k:Tele.Event.clock_activation p
     | _ -> ());
    Activated (p, label)

  let deliver t p i =
    let received = t.chan.(p).(i) <> None in
    (match t.chan.(p).(i) with
     | Some msg ->
       t.prof_deliveries <- t.prof_deliveries + 1;
       View.refresh t.views.(p) ~slot:i msg;
       (match t.pk with
        | Some pk ->
          let id = pk.chan_ids.(p).(i) in
          pk.cache_ids.(p).(i) <- id;
          pk.cfgs.(p).((H.neighbors t.h p).(i)) <- id;
          pk.masks.(p) <- pk.masks.(p) land lnot (1 lsl i);
          pk.count <- pk.count - 1
        | None -> ());
       (match t.vc with
        | Some vc ->
          let own = vc.clocks.(p) in
          if vc.chan_has.(p).(i) then begin
            let carried = vc.chan_clocks.(p).(i) in
            for j = 0 to Array.length own - 1 do
              let c = Array.unsafe_get carried j in
              if c > Array.unsafe_get own j then Array.unsafe_set own j c
            done;
            vc.chan_has.(p).(i) <- false
          end;
          own.(p) <- own.(p) + 1
        | None -> ());
       Sem.on_cache_refresh t.sem ~dst:p ~slot:i;
       t.chan.(p).(i) <- None;
       t.delivered <- t.delivered + 1
     | None -> ());
    let src = (H.neighbors t.h p).(i) in
    emit t (Tele.Event.Mp_delivered { step = Sem.steps t.sem; dst = p; src });
    (match t.vc with
     | Some vc when received -> emit_clock t vc ~k:Tele.Event.clock_delivery p
     | _ -> ());
    Delivered (p, src)

  let pending t =
    let acc = ref [] in
    Array.iteri
      (fun p row ->
        Array.iteri (fun i m -> if m <> None then acc := (p, i) :: !acc) row)
      t.chan;
    !acc

  let step t ~inputs =
    ensure_init_clocks t;
    Sem.begin_step t.sem;
    let decision =
      match t.pk with
      | Some pk -> Sem.decide_masks t.sem ~masks:pk.masks ~count:pk.count
      | None -> Sem.decide t.sem ~pending:(pending t)
    in
    match decision with
    | Sem.Activate p -> activate t ~inputs p
    | Sem.Deliver (p, i) -> deliver t p i

  let corrupt t ~victims =
    ensure_init_clocks t;
    let rng = Sem.rng t.sem in
    emit t (Tele.Event.Fault { step = Sem.steps t.sem; victims });
    List.iter
      (fun p ->
        if p < 0 || p >= H.n t.h then invalid_arg "mp corrupt: bad victim";
        View.set_core t.views.(p) (A.random_init t.h rng p);
        Array.iteri
          (fun i q -> View.refresh t.views.(p) ~slot:i (A.random_init t.h rng q))
          (H.neighbors t.h p);
        Array.iteri
          (fun i q ->
            if Random.State.bool rng then begin
              (match t.pk with
               | Some pk ->
                 if t.chan.(p).(i) = None then begin
                   pk.masks.(p) <- pk.masks.(p) lor (1 lsl i);
                   pk.count <- pk.count + 1
                 end
               | None -> ());
              (* the adversary forged a snapshot "from q": stamp it with
                 q's current clock so delivery stays causally well-formed *)
              (match t.vc with
               | Some vc ->
                 let src = vc.clocks.(q) in
                 Array.blit src 0 vc.chan_clocks.(p).(i) 0 (Array.length src);
                 vc.chan_has.(p).(i) <- true
               | None -> ());
              t.chan.(p).(i) <- Some (A.random_init t.h rng q)
            end)
          (H.neighbors t.h p);
        (match t.vc with
         | Some vc ->
           vc.cores.(p) <- View.core t.views.(p);
           Vclock.tick vc.clocks.(p) p;
           emit_clock t vc ~k:Tele.Event.clock_corruption p
         | None -> ());
        (* refresh the mirror for everything the fault rewrote *)
        match t.pk with
        | Some pk -> (
          match
            let id = pk.hooks.Model.pk_intern p (View.core t.views.(p)) in
            pk.core_ids.(p) <- id;
            pk.cfgs.(p).(p) <- id;
            Array.iteri
              (fun i q ->
                let id = pk.hooks.Model.pk_intern q (View.cache t.views.(p) i) in
                pk.cache_ids.(p).(i) <- id;
                pk.cfgs.(p).(q) <- id;
                match t.chan.(p).(i) with
                | Some st -> pk.chan_ids.(p).(i) <- pk.hooks.Model.pk_intern q st
                | None -> ())
              (H.neighbors t.h p)
          with
          | () -> ()
          | exception Failure _ -> t.pk <- None)
        | None -> ())
      victims
end
