let max_frame = 16 * 1024 * 1024

let rec retry_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    let n = retry_intr (fun () -> Unix.write fd bytes !off (len - !off)) in
    if n = 0 then raise End_of_file;
    off := !off + n
  done

let write fd body =
  let len = String.length body in
  let frame = Bytes.create (4 + len) in
  Bytes.set_uint8 frame 0 ((len lsr 24) land 0xff);
  Bytes.set_uint8 frame 1 ((len lsr 16) land 0xff);
  Bytes.set_uint8 frame 2 ((len lsr 8) land 0xff);
  Bytes.set_uint8 frame 3 (len land 0xff);
  Bytes.blit_string body 0 frame 4 len;
  write_all fd frame

(* [exact] reads [len] bytes or raises [End_of_file]; [`Eof] is only
   reported by [read] when the very first byte of a frame is missing. *)
let read_exact fd len ~at_boundary =
  let buf = Bytes.create len in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < len do
    let n = retry_intr (fun () -> Unix.read fd buf !off (len - !off)) in
    if n = 0 then
      if !off = 0 && at_boundary then eof := true else raise End_of_file
    else off := !off + n
  done;
  if !eof then None else Some buf

let read fd =
  match read_exact fd 4 ~at_boundary:true with
  | None -> Error `Eof
  | Some hdr ->
    let len =
      (Bytes.get_uint8 hdr 0 lsl 24)
      lor (Bytes.get_uint8 hdr 1 lsl 16)
      lor (Bytes.get_uint8 hdr 2 lsl 8)
      lor Bytes.get_uint8 hdr 3
    in
    if len > max_frame then Error (`Oversized len)
    else (
      match read_exact fd len ~at_boundary:false with
      | None -> assert false
      | Some body -> Ok (Bytes.to_string body))
