(* ccsim — command-line driver for the snap-stabilizing committee
   coordination library.

   ccsim run        simulate an algorithm on a topology, with monitors
   ccsim bounds     print the matching-theory bounds of a topology
   ccsim experiment run one of the paper's experiments by id
   ccsim lint       static footprint/race/priority analysis of the algorithms
   ccsim list       available topologies, algorithms and experiments *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Matching = Snapcc_hypergraph.Matching
module Model = Snapcc_runtime.Model
module Daemon = Snapcc_runtime.Daemon
module Obs = Snapcc_runtime.Obs
module Trace = Snapcc_runtime.Trace
module Workload = Snapcc_workload.Workload
module Spec = Snapcc_analysis.Spec
module X = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver
module Registry = Snapcc_experiments.Registry
module Table = Snapcc_experiments.Table

open Cmdliner

(* ---- shared arguments ---- *)

(* [topology_arg] is defined below [resolve_topo] — every command's
   topology option goes through the one shared converter. *)

(* Shared validating converters (lib/cli — tested at the cmdliner level):
   every numeric option goes through one of these so `ccsim sim --steps
   -3' and friends fail at parse time with a uniform message instead of
   misbehaving downstream. *)

module Cli = Snapcc_cli.Cli

let pos_int_conv = Cli.pos_int_conv
let nonneg_int_conv = Cli.nonneg_int_conv
let probability_conv = Cli.probability_conv

let seed_arg =
  Arg.(value & opt nonneg_int_conv 1
       & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed (non-negative).")

let steps_arg =
  Arg.(value & opt pos_int_conv 10_000
       & info [ "steps" ] ~docv:"N" ~doc:"Step horizon (positive).")

let algo_arg =
  let doc = "Algorithm: cc1|cc2|cc3|token-only|dining|central|cc1-no-token." in
  Arg.(value & opt string "cc1" & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)

let daemon_arg =
  let doc = "Daemon: synchronous|central|random|sparse." in
  Arg.(value & opt string "random" & info [ "d"; "daemon" ] ~docv:"DAEMON" ~doc)

let workload_arg =
  let doc = "Workload: always|bursty|infinite." in
  Arg.(value & opt string "always" & info [ "w"; "workload" ] ~docv:"WL" ~doc)

let disc_arg =
  Arg.(value & opt int 2 & info [ "disc" ] ~docv:"D"
         ~doc:"Voluntary-discussion length in steps (maxDisc).")

let random_init_arg =
  Arg.(value & flag & info [ "random-init" ]
         ~doc:"Start from an arbitrary configuration (post-fault state).")

let fault_arg =
  Arg.(value & opt (some int) None & info [ "fault-at" ] ~docv:"STEP"
         ~doc:"Inject a transient fault (corrupt half the processes) at STEP.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the full execution trace.")

let timeline_arg =
  Arg.(value & flag & info [ "timeline" ]
         ~doc:"Print the ASCII meeting timeline (committees x time).")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps (what the tests run).")

(* Shared by `run', `mp', `net' and `check': which stepping machinery to
   use.  `packed' routes guard evaluation through the exact
   guard/footprint tables of lib/mc (and, for `net', switches the wire to
   packed-id/XOR-delta snapshot frames); processes whose tables exceed the
   startup budget fall back to the guard closures automatically, so
   `packed' is always safe to default to — behavior is identical either
   way, only speed and wire bytes differ. *)
let engine_conv : [ `Packed | `Closure ] Arg.conv =
  Arg.enum [ ("packed", `Packed); ("closure", `Closure) ]

let engine_arg =
  Arg.(value & opt engine_conv `Packed
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Stepping engine: packed|closure.  `packed' (default) \
                 drives guards through pre-enumerated configuration \
                 tables where they fit the startup budget and falls back \
                 to the guard closures elsewhere; runs are \
                 trace-identical across engines.")

(* Startup budget for table enumeration on the interactive paths: a
   process whose footprint-cell count exceeds this is skipped in O(1) and
   served by the guard closures instead (the bench passes bigger caps
   explicitly). *)
let cli_pack_cap = 1 lsl 20

module Cursor_off = struct
  let cursor = false
end

module Cursor_on = struct
  let cursor = true
end

module Sys_cc1 = Snapcc_mc.Systems.Cc1_sys (Snapcc_token.Token_tree) (X.Cc1)
module Sys_cc2 =
  Snapcc_mc.Systems.Cc23_sys (Snapcc_token.Token_tree) (X.Cc2) (Cursor_off)
module Sys_cc3 =
  Snapcc_mc.Systems.Cc23_sys (Snapcc_token.Token_tree) (X.Cc3) (Cursor_on)
module Pk_cc1 = Snapcc_mc.Packed.Make (Sys_cc1)
module Pk_cc2 = Snapcc_mc.Packed.Make (Sys_cc2)
module Pk_cc3 = Snapcc_mc.Packed.Make (Sys_cc3)

let daemon = function
  | "synchronous" | "sync" -> Ok Daemon.synchronous
  | "central" -> Ok (Daemon.central ())
  | "random" -> Ok (Daemon.random_subset ())
  | "sparse" -> Ok (Daemon.random_subset ~p:0.15 ())
  | d -> Error (Printf.sprintf "unknown daemon %S" d)

let workload name ~disc h =
  match name with
  | "always" -> Ok (Workload.always_requesting ~disc_len:(fun _ -> disc) h)
  | "bursty" -> Ok (Workload.bursty ~disc_len:(fun _ -> disc) ~seed:7 h)
  | "infinite" -> Ok (Workload.infinite_meetings h)
  | w -> Error (Printf.sprintf "unknown workload %S" w)

let runner = function
  | "cc1" -> Ok (List.nth (X.paper_algorithms ()) 0)
  | "cc2" -> Ok (List.nth (X.paper_algorithms ()) 1)
  | "cc3" -> Ok (List.nth (X.paper_algorithms ()) 2)
  | "cc1-no-token" ->
    Ok
      { X.label = "CC1/no-token";
        run =
          (fun ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon
               ~workload ~steps h ->
            X.Run_cc1_no_token.run ?seed ?init ?faults ?stop_when ?record_trace
              ?telemetry ~daemon ~workload ~steps h) }
  | name ->
    (match List.find_opt (fun r -> r.X.label = name) (X.baseline_algorithms ()) with
     | Some r -> Ok r
     | None -> Error (Printf.sprintf "unknown algorithm %S" name))

let or_die = function
  | Ok v -> v
  | Error msg ->
    Format.eprintf "ccsim: %s@." msg;
    exit 2

(* ---- shared topology resolution ----

   Every command resolves topologies through the one grammar in lib/cli
   ([Cli.resolve_topo]): run/mp/net/bounds take the parse-time
   [topo_conv]; lint's comma list and check/smc's --family/-n call
   [resolve_topo] directly — so the commands cannot drift. *)
let topology = Cli.topology
let resolve_topo = Cli.resolve_topo
let topo_conv = Cli.topo_conv

let topology_arg =
  let doc =
    "Topology: fig1|fig2|fig3|fig4, ring<n>, path<n>, star<n>, clique<n>, \
     single<k>, one of the named families (see `ccsim list'), or a path to \
     a committee file (see lib/hypergraph/hypergraph_io.mli for the format)."
  in
  Arg.(value & opt topo_conv (or_die (resolve_topo "fig1"))
       & info [ "t"; "topology" ] ~docv:"TOPO" ~doc)

(* ---- telemetry plumbing ---- *)

module Tele = Snapcc_telemetry

let write_json file json =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Tele.Json.to_string json);
      output_char oc '\n')

(* [read_lines "-"] reads standard input, so artifacts pipe straight into
   `ccsim stats -' and `ccsim trace -'. *)
let read_lines file =
  let drain ic =
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  if file = "-" then drain stdin
  else begin
    let ic = open_in file in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> drain ic)
  end

(* A hub fanning out to the requested file sinks.  Returns the hub (None
   when nothing was requested), the ring sink backing [--emit-json] (the
   summary is aggregated from it post-run), and a finalizer that closes
   the sinks (writing the catapult trailer) and the files. *)
let make_hub ?(ring_capacity = 0) ?(force = false) ~emit_trace ~emit_catapult () =
  if emit_trace = None && emit_catapult = None && ring_capacity = 0
     && not force
  then (None, None, fun () -> ())
  else begin
    (* catapult is the one artifact that renders timestamps; give the hub
       a real clock only when it is requested, so every other artifact
       stays a pure function of the seed *)
    let clock = if emit_catapult = None then None else Some Sys.time in
    let hub = Tele.Hub.create ?clock () in
    let closers = ref [] in
    let add_file mk file =
      let oc = open_out file in
      Tele.Hub.add_sink hub (mk (output_string oc));
      closers := (fun () -> close_out oc) :: !closers
    in
    Option.iter (add_file Tele.Sink.jsonl) emit_trace;
    Option.iter (add_file Tele.Sink.catapult) emit_catapult;
    let ring =
      if ring_capacity = 0 then None
      else begin
        let r = Tele.Sink.ring ~capacity:ring_capacity in
        Tele.Hub.add_sink hub r;
        Some r
      end
    in
    ( Some hub,
      ring,
      fun () ->
        Tele.Hub.close hub;
        List.iter (fun f -> f ()) !closers )
  end

let ring_summary ring =
  let events =
    List.map
      (fun (s : Tele.Event.stamped) -> s.Tele.Event.ev)
      (Tele.Sink.ring_events ring)
  in
  let meta, summary = Tele.Stats.of_events events in
  Tele.Stats.to_json ?meta summary

let emit_trace_arg =
  Arg.(value & opt (some string) None
       & info [ "emit-trace" ] ~docv:"FILE"
           ~doc:"Write the telemetry event stream as JSON Lines to $(docv) \
                 (one event per line; deterministic under --seed).")

let emit_json_arg =
  Arg.(value & opt (some string) None
       & info [ "emit-json" ] ~docv:"FILE"
           ~doc:"Write a machine-readable summary (JSON) to $(docv).")

let emit_catapult_arg =
  Arg.(value & opt (some string) None
       & info [ "emit-catapult" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event (catapult) export to $(docv); \
                 load it in about://tracing or ui.perfetto.dev.")

(* ---- run ---- *)

let run_cmd topo algo_name daemon_name workload_name steps seed disc random_init
    fault_at trace timeline engine emit_trace emit_json emit_catapult =
  let _, h = (topo : string * H.t) in
  let daemon = or_die (daemon daemon_name) in
  let workload = or_die (workload workload_name ~disc h) in
  let runner = or_die (runner algo_name) in
  let init = if random_init then `Random else `Canonical in
  let faults =
    Option.map
      (fun at ~step ->
        if step = at then List.init (max 1 (H.n h / 2)) (fun i -> 2 * i mod H.n h)
        else [])
      fault_at
  in
  (* generous per-step event bound so the ring never wraps (a wrapped ring
     would lose the run_start header and skew the aggregated summary) *)
  let ring_capacity =
    if emit_json = None then 0
    else (steps * ((4 * H.n h) + (4 * H.m h) + 16)) + 64
  in
  let telemetry, ring, finish_telemetry =
    make_hub ~ring_capacity ~emit_trace ~emit_catapult ()
  in
  let record_trace = trace || timeline in
  let coverage = ref None in
  let r =
    (* the runner records cannot carry the typed [?packed] hooks, so the
       paper algorithms dispatch through their typed driver instances when
       the packed engine is requested *)
    match (engine, algo_name) with
    | `Packed, "cc1" ->
      let pk = Pk_cc1.build ~cap:cli_pack_cap h in
      coverage := Some (Pk_cc1.coverage pk);
      X.Run_cc1.run ~seed ~init ?faults ?telemetry ~record_trace
        ~packed:(Pk_cc1.hooks pk) ~daemon ~workload ~steps h
    | `Packed, "cc2" ->
      let pk = Pk_cc2.build ~cap:cli_pack_cap h in
      coverage := Some (Pk_cc2.coverage pk);
      X.Run_cc2.run ~seed ~init ?faults ?telemetry ~record_trace
        ~packed:(Pk_cc2.hooks pk) ~daemon ~workload ~steps h
    | `Packed, "cc3" ->
      let pk = Pk_cc3.build ~cap:cli_pack_cap h in
      coverage := Some (Pk_cc3.coverage pk);
      X.Run_cc3.run ~seed ~init ?faults ?telemetry ~record_trace
        ~packed:(Pk_cc3.hooks pk) ~daemon ~workload ~steps h
    | _ ->
      runner.X.run ~seed ~init ?faults ?telemetry ~record_trace ~daemon
        ~workload ~steps h
  in
  (match (emit_json, ring) with
   | Some file, Some rg -> write_json file (ring_summary rg)
   | _ -> ());
  finish_telemetry ();
  (match !coverage with
   | Some c ->
     Format.printf "engine: packed (tables cover %.0f%% of processes)@." (100. *. c)
   | None -> ());
  Format.printf "%a@." Driver.pp_result r;
  if r.Driver.violations <> [] then begin
    Format.printf "@.violations:@.";
    List.iter (fun v -> Format.printf "  %a@." Spec.pp_violation v) r.Driver.violations
  end;
  Format.printf "@.final configuration:@.%a@." (Obs.pp_snapshot h) r.Driver.final_obs;
  (match r.Driver.trace with
   | Some tr when timeline ->
     Format.printf "@.meeting timeline:@.%a@." (Trace.pp_timeline ~width:72) tr
   | Some _ | None -> ());
  (match r.Driver.trace with
   | Some tr when trace -> Format.printf "@.trace:@.%a@." Trace.pp tr
   | Some _ | None -> ());
  if r.Driver.violations <> [] then exit 1

let run_term =
  Term.(
    const run_cmd $ topology_arg $ algo_arg $ daemon_arg $ workload_arg
    $ steps_arg $ seed_arg $ disc_arg $ random_init_arg $ fault_arg $ trace_arg
    $ timeline_arg $ engine_arg $ emit_trace_arg $ emit_json_arg
    $ emit_catapult_arg)

(* ---- mp (message-passing emulation) ---- *)

let mp_cmd topo algo_name workload_name steps seed disc random_init bias engine
    no_vclock emit_trace emit_json =
  let _, h = (topo : string * H.t) in
  let workload = or_die (workload workload_name ~disc h) in
  let ring_capacity =
    if emit_json = None then 0 else (steps * ((2 * H.n h) + 8)) + 64
  in
  let telemetry, ring, finish_telemetry =
    make_hub ~ring_capacity ~emit_trace ~emit_catapult:None ()
  in
  let emit ev =
    match telemetry with Some hub -> Tele.Hub.emit hub ev | None -> ()
  in
  let module Run (A : Snapcc_runtime.Model.ALGO) = struct
    module E = Snapcc_mp.Mp_engine.Make (A)

    let go packed =
      let eng =
        E.create ~seed
          ~init:(if random_init then `Random else `Canonical)
          ~deliver_bias:bias ~vclock:(not no_vclock) ?telemetry ?packed h
      in
      let spec = Spec.create ?telemetry h ~initial:(E.obs eng) in
      emit
        (Tele.Event.Run_start
           { algo = A.name; daemon = "mp-scheduler";
             workload = Workload.name workload; seed; n = H.n h; m = H.m h;
             topo = Snapcc_hypergraph.Hypergraph_io.to_string h });
      let metrics =
        Snapcc_analysis.Metrics.create ?telemetry h ~initial:(E.obs eng)
      in
      let before = ref (E.obs eng) in
      for i = 0 to steps - 1 do
        let inputs = Workload.inputs workload !before in
        ignore (E.step eng ~inputs);
        let after = E.obs eng in
        Spec.on_step spec ~step:i
          ~request_out:inputs.Snapcc_runtime.Model.request_out ~before:!before
          ~after;
        Snapcc_analysis.Metrics.on_step metrics ~step:i ~round:0
          ~before:!before ~after;
        Workload.observe workload ~step:i after;
        before := after
      done;
      emit (Tele.Event.Run_end { outcome = "steps_exhausted"; steps; rounds = 0 });
      (match (emit_json, ring) with
       | Some file, Some rg -> write_json file (ring_summary rg)
       | _ -> ());
      finish_telemetry ();
      (match E.engine_kind eng with
       | `Packed -> Format.printf "engine: packed@."
       | `Closure -> ());
      Format.printf
        "%s over message passing: %d steps, %d meetings, %d violations@."
        A.name steps
        (List.length (Spec.convened spec))
        (List.length (Spec.violations spec));
      Format.printf
        "messages: %d sent, %d delivered (%d in flight); max staleness %d steps@."
        (E.messages_sent eng) (E.messages_delivered eng) (E.in_flight eng)
        (E.max_staleness eng);
      List.iteri
        (fun i v -> if i < 10 then Format.printf "  %a@." Spec.pp_violation v)
        (Spec.violations spec);
      Format.printf "@.final configuration:@.%a@." (Obs.pp_snapshot h) (E.obs eng)
  end in
  match (algo_name, engine) with
  | "cc1", `Packed ->
    let module R = Run (X.Cc1) in
    R.go (Some (Pk_cc1.hooks (Pk_cc1.build ~cap:cli_pack_cap h)))
  | "cc2", `Packed ->
    let module R = Run (X.Cc2) in
    R.go (Some (Pk_cc2.hooks (Pk_cc2.build ~cap:cli_pack_cap h)))
  | "cc3", `Packed ->
    let module R = Run (X.Cc3) in
    R.go (Some (Pk_cc3.hooks (Pk_cc3.build ~cap:cli_pack_cap h)))
  | "cc1", `Closure -> let module R = Run (X.Cc1) in R.go None
  | "cc2", `Closure -> let module R = Run (X.Cc2) in R.go None
  | "cc3", `Closure -> let module R = Run (X.Cc3) in R.go None
  | a, _ -> or_die (Error (Printf.sprintf "mp supports cc1|cc2|cc3, not %S" a))

(* validated argument converters, shared by `ccsim mp' and `ccsim net' *)

let checked_steps_arg =
  Arg.(value & opt pos_int_conv 10_000
       & info [ "steps" ] ~docv:"N" ~doc:"Step horizon (positive).")

let bias_arg =
  Arg.(value & opt probability_conv 0.5
       & info [ "deliver-bias" ] ~docv:"P"
           ~doc:"Probability in [0,1] that a step delivers a message rather \
                 than activating a process (lower = more staleness).")

let no_vclock_arg =
  Arg.(value & flag
       & info [ "no-vclock" ]
           ~doc:"Ablation: disable vector-clock stamping on the trace.  The \
                 execution is unchanged (stamping never touches the rng); \
                 `ccsim trace' will refuse the resulting trace.")

let mp_term =
  Term.(
    const mp_cmd $ topology_arg $ algo_arg $ workload_arg $ checked_steps_arg
    $ seed_arg $ disc_arg $ random_init_arg $ bias_arg $ engine_arg
    $ no_vclock_arg $ emit_trace_arg $ emit_json_arg)

(* ---- net (networked multi-process runtime) ---- *)

module Net = Snapcc_net

let faults_conv =
  let parse s =
    match Net.Faults.parse s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  Arg.conv ~docv:"SPEC" (parse, Net.Faults.pp)

let faults_arg =
  Arg.(value & opt faults_conv Net.Faults.none
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Fault plan for the links, netem style: comma-separated \
                 drop=P, delay=STEPS, dup=P, reorder=P, corrupt=P, \
                 partition=FROM-TO (e.g. \
                 drop=0.05,delay=2,partition=100-400).  Deterministic \
                 under --seed.")

let net_nprocs_arg =
  Arg.(value & opt (some pos_int_conv) None
       & info [ "n" ] ~docv:"N"
           ~doc:"Shorthand for --topology ring<N> (N node processes).")

let burst_arg = Cli.burst_arg
let soak_arg = Cli.soak_arg

let fork_arg =
  Arg.(value & flag
       & info [ "fork" ]
           ~doc:"Fork the node processes from this one (socketpairs) \
                 instead of spawning `ccsim node' executables over TCP \
                 loopback.")

let dash_arg =
  Arg.(value & flag
       & info [ "dash" ]
           ~doc:"Render an in-place live dashboard on stderr while the soak \
                 runs (steps, convenes, deliveries, drops by reason, latency \
                 and waiting percentiles, verdicts).")

let prom_arg =
  Arg.(value & opt (some string) None
       & info [ "prom" ] ~docv:"FILE"
           ~doc:"Rewrite $(docv) atomically (temp file + rename) with a \
                 Prometheus text exposition of the live metrics registry, \
                 ready for a file-based scrape.")

let live_interval_arg =
  Arg.(value & opt (some float) None
       & info [ "live-interval" ] ~docv:"SECONDS"
           ~doc:"Throttle for --dash/--prom refreshes (default 0.5s / 2s).")

let net_cmd topo nprocs algo_name workload_name steps seed disc random_init
    bias faults burst soak fork engine emit_trace emit_json emit_catapult dash
    prom live_interval =
  let h =
    match nprocs with
    | Some k -> snd (or_die (resolve_topo ~n:k "ring"))
    | None -> snd (topo : string * H.t)
  in
  let workload = or_die (workload workload_name ~disc h) in
  let burst = Cli.resolve_burst ~steps ~soak burst in
  let ring_capacity =
    if emit_json = None then 0 else (steps * ((6 * H.n h) + 16)) + 64
  in
  let telemetry, ring, finish_telemetry =
    make_hub ~ring_capacity ~force:(dash || prom <> None) ~emit_trace
      ~emit_catapult ()
  in
  (match telemetry with
   | Some hub when dash || prom <> None ->
     let live = Tele.Live.create ~registry:(Tele.Hub.registry hub) () in
     let now = Unix.gettimeofday in
     if dash then
       Tele.Live.add_dash ?interval:live_interval live ~now
         ~write:(fun s -> output_string stderr s; flush stderr);
     (match prom with
      | Some path -> Tele.Live.add_prom ?interval:live_interval live ~now ~path
      | None -> ());
     Tele.Hub.add_sink hub (Tele.Live.sink live)
   | Some _ | None -> ());
  let mode =
    if fork then Net.Spawn.Fork else Net.Spawn.Exec Sys.executable_name
  in
  let cfg =
    { Net.Orchestrator.algo = algo_name; seed;
      init = (if random_init then `Random else `Canonical);
      deliver_bias = bias; steps; plan = faults; burst; engine }
  in
  let r = or_die (Net.Orchestrator.run ?telemetry ~mode ~workload cfg h) in
  (match (emit_json, ring) with
   | Some file, Some rg -> write_json file (ring_summary rg)
   | _ -> ());
  finish_telemetry ();
  Format.printf "%s over %d node processes (%s wire), faults: %a@." algo_name
    (H.n h)
    (match engine with `Packed -> "packed-delta" | `Closure -> "full-snapshot")
    Net.Faults.pp faults;
  Format.printf "%a@." Net.Orchestrator.pp_result r;
  (match r.Net.Orchestrator.latencies_us with
   | [] -> ()
   | l ->
     let pc q = Snapcc_analysis.Metrics.percentile q l in
     Format.printf
       "delivery latency: p50 %dus, p90 %dus, p99 %dus, max %dus (%d samples)@."
       (pc 0.50) (pc 0.90) (pc 0.99)
       (Snapcc_analysis.Metrics.maximum l)
       (List.length l);
     List.iter
       (fun (label, c) ->
         if c > 0 then Format.printf "  %-10s %6d@." label c)
       (Tele.Registry.bucket_counts l));
  if r.Net.Orchestrator.violations <> [] then begin
    Format.printf "@.violations:@.";
    List.iter
      (fun v -> Format.printf "  %a@." Spec.pp_violation v)
      r.Net.Orchestrator.violations
  end;
  Format.printf "@.final configuration:@.%a@." (Obs.pp_snapshot h)
    r.Net.Orchestrator.final_obs;
  if r.Net.Orchestrator.violations <> [] then exit 1

let net_term =
  Term.(
    const net_cmd $ topology_arg $ net_nprocs_arg $ algo_arg $ workload_arg
    $ checked_steps_arg $ seed_arg $ disc_arg $ random_init_arg $ bias_arg
    $ faults_arg $ burst_arg $ soak_arg $ fork_arg $ engine_arg
    $ emit_trace_arg $ emit_json_arg $ emit_catapult_arg $ dash_arg $ prom_arg
    $ live_interval_arg)

(* ---- bounds ---- *)

let bounds_cmd topo =
  let _, h = (topo : string * H.t) in
  Format.printf "%a@.@." H.pp h;
  if H.m h > 18 then
    Format.printf "(%d committees: exact bounds may take a while)@." (H.m h);
  Format.printf "%a@." Matching.pp_bounds (Matching.bounds h)

let bounds_term = Term.(const bounds_cmd $ topology_arg)

(* ---- experiment ---- *)

let experiment_cmd id quick =
  match id with
  | "all" ->
    List.iter
      (fun (e : Registry.entry) ->
        Format.printf "%a@.@." Table.pp (e.Registry.run ~quick))
      Registry.all
  | id ->
    (match Registry.find id with
     | Some e -> Format.printf "%a@." Table.pp (e.Registry.run ~quick)
     | None ->
       Format.eprintf "ccsim: unknown experiment %S (try `ccsim list')@." id;
       exit 2)

let experiment_id_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"ID"
         ~doc:"Experiment id (see `ccsim list'), or `all'.")

let experiment_term = Term.(const experiment_cmd $ experiment_id_arg $ quick_arg)

(* ---- lint (static analysis, lib/statics) ---- *)

module Lint_report = Snapcc_statics.Report

(* Lintable algorithms with their allow lists.  The centralized baseline
   deliberately violates locality (every professor reads the coordinator's
   plan, the coordinator reads everyone, see lib/baselines/central.ml), so
   its locality findings are waived rather than fatal. *)
let lint_targets : (string * (module Model.ALGO) * Lint_report.rule list) list =
  [ ("cc1", (module X.Cc1), []);
    ("cc2", (module X.Cc2), []);
    ("cc3", (module X.Cc3), []);
    ("dining", (module X.Dining), []);
    ("central", (module X.Central), [ Lint_report.Locality ]);
  ]

let lint_default_topos = "fig1,ring6,path5,star5,single4"

(* The exact tier enumerates full domain products, so its default families
   are the small ones it finishes in seconds; triangle3 (minutes for CC3)
   stays opt-in via -t. *)
let lint_exact_default_topos = "single2,line3"

module Lint_exact = Snapcc_statics.Exact
module Lint_artifact = Snapcc_statics.Artifact

(* Exact-tier instantiations of the lint targets: the committee algorithms
   composed with a token layer as model-checkable systems, the baselines
   directly (they ship their own domain/canon). *)
let lint_exact_sys key token : (module Snapcc_mc.System.S) =
  match key with
  | "dining" -> (module Snapcc_mc.Systems.Dining_sys)
  | "central" -> (module Snapcc_mc.Systems.Central_sys)
  | k -> (
    match Snapcc_mc.Systems.find k with
    | Some e -> e.Snapcc_mc.Systems.make token
    | None ->
      or_die (Error (Printf.sprintf "no exact-tier system for %S" k)))

let lint_finding_json (f : Lint_report.finding) =
  Tele.Json.Obj
    [ ("rule", Tele.Json.String (Lint_report.rule_name f.Lint_report.rule));
      ("action", Tele.Json.String f.Lint_report.action);
      ("proc", Tele.Json.Int f.Lint_report.proc);
      ("count", Tele.Json.Int f.Lint_report.count);
      ("detail", Tele.Json.String f.Lint_report.detail) ]

let lint_report_json (r : Lint_report.t) =
  let strs xs = Tele.Json.List (List.map (fun s -> Tele.Json.String s) xs) in
  Tele.Json.Obj
    [ ("algo", Tele.Json.String r.Lint_report.algo);
      ("topo", Tele.Json.String r.Lint_report.topo);
      ("tier", Tele.Json.String r.Lint_report.tier);
      ("ok", Tele.Json.Bool (Lint_report.ok r));
      ("configs", Tele.Json.Int r.Lint_report.configs);
      ("evals", Tele.Json.Int r.Lint_report.evals);
      ("findings", Tele.Json.List (List.map lint_finding_json r.Lint_report.findings));
      ("waived", Tele.Json.List (List.map lint_finding_json r.Lint_report.waived));
      ("dead", strs r.Lint_report.dead);
      ("dead_proven", strs r.Lint_report.dead_proven);
      ("dead_unreached", strs r.Lint_report.dead_unreached) ]

module Lint_sym = Snapcc_statics.Symmetry

let lint_sym_json (so : Lint_sym.outcome) =
  let open Tele.Json in
  Obj
    [ ("group_order", Int (Snapcc_mc.Symmetry.order so.Lint_sym.group));
      ("generators", Int (List.length so.Lint_sym.group.Snapcc_mc.Symmetry.gens));
      ("aut_order", Int so.Lint_sym.aut_order);
      ("candidates", Int so.Lint_sym.candidates);
      ("admitted", List (List.map (fun s -> String s) so.Lint_sym.admitted));
      ("rejected",
       List
         (List.map
            (fun (name, reason) ->
              Obj [ ("name", String name); ("reason", String reason) ])
            so.Lint_sym.rejected));
      ("pairs", Int so.Lint_sym.pairs);
      ("seconds", Float so.Lint_sym.seconds) ]

let lint_exact_json (r : Lint_report.t) (cov : Lint_exact.coverage)
    (unmatched : Lint_report.finding list) (sym : Lint_sym.outcome option) =
  match lint_report_json r with
  | Tele.Json.Obj fields ->
    Tele.Json.Obj
      (fields
      @ (match sym with
        | Some so -> [ ("symmetry", lint_sym_json so) ]
        | None -> [])
      @ [ ("cells", Tele.Json.Int cov.Lint_exact.cells);
          ("seconds", Tele.Json.Float cov.Lint_exact.seconds);
          ("complete", Tele.Json.Bool cov.Lint_exact.complete);
          ("stored", Tele.Json.Bool cov.Lint_exact.stored);
          ("tainted", Tele.Json.Bool cov.Lint_exact.tainted);
          ("proc_status",
           Tele.Json.List
             (List.map
                (fun (p, reason) ->
                  Tele.Json.Obj
                    [ ("proc", Tele.Json.Int p);
                      ("reason", Tele.Json.String reason) ])
                cov.Lint_exact.proc_status));
          ("agreement_unmatched",
           Tele.Json.List (List.map lint_finding_json unmatched)) ])
  | j -> j

let lint_cmd topos algos seed seeds max_configs verbose emit_json exact token
    tables_dir table_cap symmetry orbits_dir =
  (* the symmetry analyzer proves against the exact tables, so --symmetry
     implies the exact tier *)
  let exact = exact || symmetry in
  let names s = String.split_on_char ',' s |> List.filter (fun x -> x <> "") in
  let targets =
    match algos with
    | "all" -> lint_targets
    | s ->
      List.map
        (fun a ->
          match List.find_opt (fun (name, _, _) -> name = a) lint_targets with
          | Some t -> t
          | None -> or_die (Error (Printf.sprintf "lint knows %s, not %S"
                                     (String.concat "|" (List.map (fun (n, _, _) -> n) lint_targets))
                                     a)))
        (names s)
  in
  let topos =
    let s =
      match topos with
      | Some s -> s
      | None -> if exact then lint_exact_default_topos else lint_default_topos
    in
    List.map (fun t -> or_die (resolve_topo t)) (names s)
  in
  (* sampled tier, always: the exact tier judges its findings below *)
  let sampled =
    List.concat_map
      (fun (key, (module A : Model.ALGO), allow) ->
        let module An = Snapcc_statics.Analyze.Make (A) in
        List.map
          (fun (topo, h) ->
            (key, topo, An.analyze ~seed ~seeds ~max_configs ~allow ~topo h))
          topos)
      targets
  in
  let disagreements = ref [] in
  let sampled, exact_reports =
    if not exact then (List.map (fun (_, _, r) -> r) sampled, [])
    else begin
      let exacts =
        List.concat_map
          (fun (key, _, allow) ->
            let (module S : Snapcc_mc.System.S) = lint_exact_sys key token in
            let module Ex = Lint_exact.Make (S) in
            let module Tb = Snapcc_mc.Tables.Make (S) in
            let module Sym = Lint_sym.Make (S) in
            List.map
              (fun (topo, h) ->
                let report, cov, tb =
                  Ex.run ?cap:table_cap ~allow ~algo:S.name ~topo h
                in
                (match tables_dir with
                 | None -> ()
                 | Some dir ->
                   let file =
                     Filename.concat dir
                       (Printf.sprintf "tables-%s-%s.txt" key topo)
                   in
                   Lint_artifact.save file (Tb.to_portable ~algo:S.name ~topo tb));
                let sym =
                  if not symmetry then None
                  else begin
                    let so = Sym.run ?cap:table_cap h ~tables:tb in
                    (match orbits_dir with
                     | None -> ()
                     | Some dir ->
                       Lint_sym.save
                         (Filename.concat dir
                            (Printf.sprintf "orbits-%s-%s.txt" key topo))
                         ~algo:S.name ~topo h so);
                    Some so
                  end
                in
                (key, topo, report, cov, sym))
              topos)
          targets
      in
      (* the baselines have no token layer; for the committee algorithms the
         tiers only describe the same system when the tokens match *)
      let comparable key = token = "tree" || key = "dining" || key = "central" in
      let sampled' =
        List.map
          (fun (key, topo, (s : Lint_report.t)) ->
            match
              List.find_opt
                (fun (k, t, _, _, _) -> k = key && t = topo && comparable key)
                exacts
            with
            | None -> s
            | Some (_, _, e, cov, _) ->
              let unmatched = Lint_exact.agreement ~exact:e ~sampled:s in
              if unmatched <> [] then
                disagreements := (key, topo, unmatched) :: !disagreements;
              (* reclassify sampled dead suspects on exact evidence *)
              Lint_report.classify_dead ~proven:e.Lint_report.dead_proven
                ~live:cov.Lint_exact.live s)
          sampled
      in
      (sampled', exacts)
    end
  in
  let exact_plain = List.map (fun (_, _, r, _, _) -> r) exact_reports in
  let reports = sampled @ exact_plain in
  Format.printf "%a@." Table.pp (Lint_report.summary_table reports);
  List.iter
    (fun r ->
      if (not (Lint_report.ok r)) || r.Lint_report.waived <> [] || verbose then
        Format.printf "@.%a@." Table.pp (Lint_report.detail_table r))
    reports;
  List.iter
    (fun (key, topo, _, cov, sym) ->
      Format.printf
        "exact %s on %s: %d (cell, mode) pairs in %.2fs%s%s@." key topo
        cov.Lint_exact.cells cov.Lint_exact.seconds
        (if cov.Lint_exact.complete then ", complete"
         else ", INCOMPLETE (skipped passes)")
        (if cov.Lint_exact.tainted then ", TAINTED" else "");
      List.iter
        (fun (p, reason) -> Format.printf "  proc %d: %s@." p reason)
        cov.Lint_exact.proc_status;
      match sym with
      | None -> ()
      | Some (so : Lint_sym.outcome) ->
        Format.printf
          "symmetry %s on %s: aut group %d%s, %d candidate(s), admitted \
           group order %d%s (%d pairs, %.2fs)@."
          key topo so.Lint_sym.aut_order
          (if so.Lint_sym.aut_complete then "" else "+")
          so.Lint_sym.candidates
          (Snapcc_mc.Symmetry.order so.Lint_sym.group)
          (match so.Lint_sym.admitted with
          | [] -> ""
          | l -> Printf.sprintf " [%s]" (String.concat ", " l))
          so.Lint_sym.pairs so.Lint_sym.seconds;
        if verbose then
          List.iter
            (fun (name, reason) ->
              Format.printf "  rejected %s: %s@." name reason)
            so.Lint_sym.rejected)
    exact_reports;
  let lines = List.concat_map Lint_report.to_lines reports in
  if lines <> [] then begin
    Format.printf "@.";
    List.iter (fun l -> Format.printf "%s@." l) lines
  end;
  List.iter
    (fun (key, topo, unmatched) ->
      List.iter
        (fun (f : Lint_report.finding) ->
          Format.printf
            "lint algo=%s topo=%s disagreement: sampled %s finding on \
             action=%s proc=%d not reproduced by the exact tier@."
            key topo
            (Lint_report.rule_name f.Lint_report.rule)
            f.Lint_report.action f.Lint_report.proc)
        unmatched)
    !disagreements;
  let ok = List.for_all Lint_report.ok reports && !disagreements = [] in
  (match emit_json with
   | None -> ()
   | Some file ->
     let exact_json =
       List.map
         (fun (key, topo, r, cov, sym) ->
           let unmatched =
             match
               List.find_opt (fun (k, t, _) -> k = key && t = topo)
                 !disagreements
             with
             | Some (_, _, u) -> u
             | None -> []
           in
           lint_exact_json r cov unmatched sym)
         exact_reports
     in
     write_json file
       (Tele.Json.Obj
          ([ ("ok", Tele.Json.Bool ok);
             ("reports",
              Tele.Json.List (List.map lint_report_json sampled)) ]
          @ if exact then [ ("exact", Tele.Json.List exact_json) ] else [])));
  if not ok then exit 1

let lint_topos_arg =
  Arg.(value & opt (some string) None
       & info [ "t"; "topologies" ] ~docv:"TOPOS"
           ~doc:(Printf.sprintf
                   "Comma-separated topologies to analyze (same names as \
                    --topology).  Default %s, or %s with --exact."
                   lint_default_topos lint_exact_default_topos))

let lint_algos_arg =
  Arg.(value & opt string "all"
       & info [ "a"; "algos" ] ~docv:"ALGOS"
           ~doc:"Comma-separated algorithms (cc1|cc2|cc3|dining|central), or `all'.")

let lint_seeds_arg =
  Arg.(value & opt nonneg_int_conv 24 & info [ "seeds" ] ~docv:"N"
         ~doc:"Random (post-fault) configurations seeded into the exploration.")

let lint_max_configs_arg =
  Arg.(value & opt pos_int_conv 240 & info [ "max-configs" ] ~docv:"N"
         ~doc:"Cap on the exhaustive reachable-configuration enumeration.")

let lint_verbose_arg =
  Arg.(value & flag & info [ "verbose" ]
         ~doc:"Print per-report detail tables even for clean passes.")

let lint_exact_arg =
  Arg.(value & flag
       & info [ "exact" ]
           ~doc:"Additionally run the exact tier: enumerate every process's \
                 full domain-product support under all input modes, prove \
                 (not sample) the side conditions and dead actions, check \
                 that every sampled finding is reproduced by the exact \
                 tier, and reclassify sampled dead-action suspects as \
                 proven or unreached-in-sample.")

let lint_token_arg =
  Arg.(value & opt string "tree"
       & info [ "token" ] ~docv:"TOKEN"
           ~doc:"Token layer composed under cc1/cc2/cc3 for the exact tier \
                 (vring|tree|null).  Sampled/exact agreement is only \
                 checked for `tree', the layer the sampled targets use.")

let lint_tables_arg =
  Arg.(value & opt (some dir) None
       & info [ "tables" ] ~docv:"DIR"
           ~doc:"Write one snapcc-tables artifact per (algorithm, topology) \
                 into DIR (requires --exact).")

let lint_table_cap_arg =
  Arg.(value & opt (some pos_int_conv) None
       & info [ "table-cap" ] ~docv:"N"
           ~doc:"Exact-tier enumeration cap on (cell, mode) pairs per \
                 process (default 2^27); overruns are reported as skipped \
                 passes, never silently truncated.")

let lint_symmetry_arg =
  Arg.(value & flag
       & info [ "symmetry" ]
           ~doc:"Run the static symmetry analyzer (implies --exact): \
                 enumerate conflict-hypergraph automorphisms, lift them \
                 together with declared internal state symmetries to \
                 candidate algorithm symmetries, and admit exactly those \
                 proven to commute with every packed guard/footprint table \
                 entry.")

let lint_orbits_arg =
  Arg.(value & opt (some dir) None
       & info [ "orbits" ] ~docv:"DIR"
           ~doc:"Write one snapcc-orbits v1 certificate per (algorithm, \
                 topology) into DIR (requires --symmetry); each certificate \
                 passes `ccsim orbits'.")

let lint_term =
  Term.(
    const lint_cmd $ lint_topos_arg $ lint_algos_arg $ seed_arg $ lint_seeds_arg
    $ lint_max_configs_arg $ lint_verbose_arg $ emit_json_arg $ lint_exact_arg
    $ lint_token_arg $ lint_tables_arg $ lint_table_cap_arg
    $ lint_symmetry_arg $ lint_orbits_arg)

(* ---- orbits (certificate verifier) ---- *)

let orbits_cmd files =
  let failures =
    List.fold_left
      (fun acc file ->
        match Snapcc_statics.Symmetry.verify_file file with
        | Ok () ->
          Format.printf "%s: OK@." file;
          acc
        | Error msg ->
          Format.printf "%s: FAILED: %s@." file msg;
          acc + 1)
      0 files
  in
  if failures > 0 then begin
    Format.printf "%d certificate(s) failed verification@." failures;
    exit 1
  end

let orbits_files_arg =
  Arg.(non_empty & pos_all string []
       & info [] ~docv:"FILE" ~doc:"snapcc-orbits v1 certificate file(s).")

let orbits_term = Term.(const orbits_cmd $ orbits_files_arg)

(* ---- check (exhaustive model checker, lib/mc) ---- *)

module Mc_systems = Snapcc_mc.Systems
module Mc_explore = Snapcc_mc.Explore
module Mc_fairness = Snapcc_mc.Fairness
module Mc_report = Snapcc_mc.Report
module Cex = Snapcc_mc.Counterexample

let mc_report_json (r : Mc_report.t) =
  let open Tele.Json in
  Obj
    [ ("algo", String r.Mc_report.algo);
      ("token", String r.Mc_report.token);
      ("topo", String r.Mc_report.topo);
      ("outcome", String (Mc_report.outcome_name (Mc_report.outcome r)));
      ("product", Float r.Mc_report.product);
      ("configs", Int r.Mc_report.configs);
      ("transitions", Int r.Mc_report.transitions);
      ("complete", Bool r.Mc_report.complete);
      ("escapees", Int r.Mc_report.escapees);
      ("dead", List (List.map (fun s -> String s) r.Mc_report.dead));
      ("safety_violations", Int r.Mc_report.safety_violations);
      ("first_rule",
       (match r.Mc_report.first_rule with None -> Null | Some s -> String s));
      ("progress_checked", Bool r.Mc_report.progress_checked);
      ("sccs", Int r.Mc_report.sccs);
      ("largest_scc", Int r.Mc_report.largest_scc);
      ("deadlocks", Int r.Mc_report.deadlocks);
      ("livelocks", Int r.Mc_report.livelocks);
      ("seconds", Float r.Mc_report.seconds);
      ("states_per_sec", Float (Mc_report.states_per_sec r)) ]

let check_one ~(entry : Mc_systems.entry) ~token ~topo_name ~h ~max_states
    ~keep_going ~sample ~seed ~cex_path ~progress ~engine ~symmetry ~telemetry
    =
  let module S = (val entry.Mc_systems.make token) in
  let module Ex = Snapcc_mc.Explore.Make (S) in
  let module Tb = Snapcc_mc.Tables.Make (S) in
  let module CexM = Snapcc_mc.Counterexample.Make (S) in
  let t0 = Sys.time () in
  (* the packed engine reuses the exploration budget: a process whose
     table would dwarf the configuration cap falls back to closures *)
  let tables =
    match engine with
    | `Closure -> None
    | `Packed ->
      let tb = Tb.build ~cap:(max 1 max_states * 8) h in
      if progress then
        Format.eprintf "  guard tables: %s@."
          (if Tb.built tb then "built (packed fast path)"
           else "partial (closure fallback for skipped processes)");
      Some tb
  in
  let roots =
    if sample = 0 then `Domain
    else begin
      let rng = Random.State.make [| seed |] in
      let canonical = Array.init (H.n h) (S.init h) in
      `States
        (canonical
        :: List.init sample (fun _ ->
               Array.init (H.n h) (fun p -> S.random_init h rng p)))
    end
  in
  (* progress goes to stderr (stdout stays machine-parseable); the same
     hook feeds [mc_frontier] telemetry events when --emit-json asked *)
  let on_progress =
    if (not progress) && telemetry = None then None
    else
      Some
        (fun ~configs ~transitions ->
          if progress then
            Format.eprintf "  ... %d states, %d transitions@." configs
              transitions;
          match telemetry with
          | Some hub ->
            Tele.Hub.emit hub (Tele.Event.Mc_frontier { configs; transitions })
          | None -> ())
  in
  (* static symmetry admission: lift hypergraph automorphisms and declared
     internal symmetries over the exact tables, then explore the quotient *)
  let sym_group =
    match (symmetry, tables) with
    | `Off, _ -> None
    | `Auto, None ->
      Format.printf
        "  symmetry: skipped (needs the packed engine's exact tables)@.";
      None
    | `Auto, Some tb ->
      let module Sym = Snapcc_statics.Symmetry.Make (S) in
      let so = Sym.run h ~tables:tb in
      let open Snapcc_statics.Symmetry in
      let ord = Snapcc_mc.Symmetry.order so.group in
      if ord > 1 then begin
        Format.printf
          "  symmetry: admitted group of order %d from %d candidate(s) [%s] \
           (%d pairs streamed, %.2fs)@."
          ord so.candidates
          (String.concat ", " so.admitted)
          so.pairs so.seconds;
        Some so.group
      end
      else begin
        Format.printf
          "  symmetry: only the trivial group admitted (%d candidate(s) \
           rejected; exploring in full)@."
          so.candidates;
        if progress then
          List.iter
            (fun (name, reason) ->
              Format.eprintf "    rejected %s: %s@." name reason)
            so.rejected;
        None
      end
  in
  let result =
    Ex.explore ?on_progress ?tables ?symmetry:sym_group
      ~max_configs:max_states ~roots ~stop_on_first:(not keep_going) h
  in
  (match sym_group with
  | Some g ->
    Format.printf
      "  symmetry: stored %d orbit representatives (quotient of order %d)@."
      (Ex.n_configs result)
      (Snapcc_mc.Symmetry.order g)
  | None -> ());
  let seconds = Sys.time () -. t0 in
  let violations = Ex.violations result in
  let verdict =
    if Ex.complete result then
      Some
        (Mc_fairness.analyze ~n:(H.n h) ~n_configs:(Ex.n_configs result)
           ~succs:(Ex.succs_inout result)
           ~convenes:(Ex.convening result)
           ~enabled_mask:(Ex.enabled_inout result)
           ~committee_waiting:(Ex.committee_waiting result)
           ())
    else None
  in
  let report =
    { Mc_report.algo = entry.Mc_systems.key;
      token;
      topo = topo_name;
      product = Ex.product_size result;
      configs = Ex.n_configs result;
      transitions = Ex.n_transitions result;
      complete = Ex.complete result;
      escapees = List.length (Ex.escapees result);
      dead = Ex.dead_actions result;
      safety_violations = List.length violations;
      first_rule =
        (match violations with [] -> None | v :: _ -> Some v.Mc_explore.rule);
      progress_checked = verdict <> None;
      sccs = (match verdict with Some v -> v.Mc_fairness.sccs | None -> 0);
      largest_scc =
        (match verdict with Some v -> v.Mc_fairness.largest_scc | None -> 0);
      deadlocks =
        (match verdict with
        | Some v -> List.length v.Mc_fairness.deadlocks
        | None -> 0);
      livelocks =
        (match verdict with
        | Some v -> List.length v.Mc_fairness.livelocks
        | None -> 0);
      seconds }
  in
  Format.printf "%a@." Mc_report.pp report;
  List.iteri
    (fun i (p, s) ->
      if i < 5 then
        Format.printf "  escapee: process %d state %a@." p S.pp_state s)
    (Ex.escapees result);
  if report.Mc_report.dead <> [] then
    Format.printf
      "  note: action(s) never executed on any transition (suspect): %s@."
      (String.concat ", " report.Mc_report.dead);
  (* build, minimize, persist and replay-confirm one counterexample *)
  let cex =
    match violations with
    | v :: _ ->
      let root, steps = Ex.path_to result v.Mc_explore.source in
      let steps =
        steps
        @
        if v.Mc_explore.mode >= 0 then
          (* under --symmetry the recorded selection is relative to the
             canonical configuration; re-express it at the endpoint of the
             lifted path *)
          [ (v.Mc_explore.mode,
             Ex.lift_selection result v.Mc_explore.source v.Mc_explore.selected)
          ]
        else []
      in
      Some
        (Cex.of_safety ~algo:entry.Mc_systems.key ~token ~topo:topo_name
           ~rule:v.Mc_explore.rule ~detail:v.Mc_explore.detail ~init:root
           ~steps)
    | [] -> (
      match verdict with
      | Some { Mc_fairness.deadlocks = cid :: _; _ } ->
        let root, steps = Ex.path_to result cid in
        Some
          (Cex.of_deadlock ~algo:entry.Mc_systems.key ~token ~topo:topo_name
             ~detail:"terminal configuration with a fully waiting committee"
             ~init:root ~steps)
      | Some { Mc_fairness.livelocks = l :: _; _ } ->
        let root, steps = Ex.path_to result l.Mc_fairness.witness in
        Some
          (Cex.of_livelock ~algo:entry.Mc_systems.key ~token ~topo:topo_name
             ~detail:
               (Printf.sprintf
                  "weakly fair convene-free cycle (SCC of %d configurations)"
                  l.Mc_fairness.scc_size)
             ~init:root ~steps ~loop:l.Mc_fairness.cycle)
      | _ -> None)
  in
  (match cex with
  | None -> ()
  | Some c ->
    let c = CexM.minimize h c in
    Cex.to_file cex_path c;
    Format.printf "@.%a@.counterexample written to %s@." Cex.pp c cex_path;
    (match CexM.replay h c with
    | CexM.Reproduced msg -> Format.printf "replay confirms: %s@." msg
    | CexM.Not_reproduced msg ->
      Format.printf "WARNING: replay does not reproduce: %s@." msg
    | CexM.Invalid msg ->
      Format.printf "WARNING: counterexample not executable: %s@." msg));
  report

let check_cmd algos family n token max_states keep_going sample seed cex_path
    progress engine symmetry emit_json =
  let topo_name, h = or_die (resolve_topo ~n family) in
  (* frontier samples arrive every ~16k explored configurations, so even a
     multi-million-state run fits a small ring *)
  let telemetry, ring, finish_telemetry =
    make_hub
      ~ring_capacity:(if emit_json = None then 0 else 65_536)
      ~emit_trace:None ~emit_catapult:None ()
  in
  let keys =
    match algos with
    | "all" -> List.map (fun (e : Mc_systems.entry) -> e.Mc_systems.key) Mc_systems.all
    | s -> String.split_on_char ',' s |> List.filter (fun x -> x <> "")
  in
  let reports =
    List.map
      (fun key ->
        let entry =
          match Mc_systems.find key with
          | Some e -> e
          | None ->
            or_die
              (Error
                 (Printf.sprintf "unknown system %S (try %s)" key
                    (String.concat "|"
                       (List.map
                          (fun (e : Mc_systems.entry) -> e.Mc_systems.key)
                          Mc_systems.all))))
        in
        let res =
          try
            Ok
              (check_one ~entry ~token ~topo_name ~h ~max_states ~keep_going
                 ~sample ~seed ~cex_path ~progress ~engine ~symmetry ~telemetry)
          with Invalid_argument msg | Failure msg -> Error msg
        in
        Format.printf "@.";
        or_die res)
      keys
  in
  if List.length reports > 1 then
    Format.printf "%a@." Table.pp (Mc_report.summary_table reports);
  (match (emit_json, ring) with
   | Some file, Some rg ->
     let frontier =
       List.filter_map
         (fun (s : Tele.Event.stamped) ->
           match s.Tele.Event.ev with
           | Tele.Event.Mc_frontier { configs; transitions } ->
             Some
               (Tele.Json.Obj
                  [ ("configs", Tele.Json.Int configs);
                    ("transitions", Tele.Json.Int transitions) ])
           | _ -> None)
         (Tele.Sink.ring_events rg)
     in
     write_json file
       (Tele.Json.Obj
          [ ("reports", Tele.Json.List (List.map mc_report_json reports));
            ("frontier", Tele.Json.List frontier) ])
   | _ -> ());
  finish_telemetry ();
  if List.exists (fun r -> Mc_report.outcome r = Mc_report.Fail) reports then
    exit 1

let check_algo_arg =
  let doc =
    "System(s) to check: cc1|cc2|cc3|cc1-inverted|cc1-noready, a \
     comma-separated list, or `all'."
  in
  Arg.(value & opt string "cc1" & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)

let family_arg =
  let doc =
    "Topology family (line|triangle|ring|star|path|clique|single, combined \
     with -n), or a full topology name as for --topology."
  in
  Arg.(value & opt string "triangle" & info [ "family" ] ~docv:"FAM" ~doc)

let nprocs_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of professors.")

let check_token_arg =
  Arg.(value & opt string "vring"
       & info [ "token" ] ~docv:"TC"
           ~doc:"Token substrate: vring|tree|null.")

(* 8M default: with PR 6's packed single-word configuration keys this fits
   comfortably in memory, and it is what lets `--symmetry auto' finish
   instances (triangle3 cc3/vring: 23.9M configurations, 5.97M orbits
   under the admitted Z_4 counter gauge) whose full space stays capped. *)
let max_states_arg =
  Arg.(value & opt int 8_000_000
       & info [ "max-states" ] ~docv:"N"
           ~doc:"Memory cap on stored configurations (exceeding it makes \
                 the verdict INCOMPLETE).")

let keep_going_arg =
  Arg.(value & flag
       & info [ "keep-going" ]
           ~doc:"Explore the full space even after a safety violation \
                 (default: stop at the first one).")

let sample_arg =
  Arg.(value & opt int 0
       & info [ "sample" ] ~docv:"K"
           ~doc:"Instead of all domain configurations, explore from the \
                 canonical initial configuration plus K seeded random \
                 (post-fault) ones — for instances whose domain product is \
                 out of reach.  0 = exhaustive (default).")

let cex_out_arg =
  Arg.(value & opt string "ccsim-cex.txt"
       & info [ "cex" ] ~docv:"FILE"
           ~doc:"Where to write the minimized counterexample, if any.")

let check_progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Report exploration progress on stderr.")

let check_symmetry_arg =
  let sym_conv : [ `Auto | `Off ] Arg.conv =
    Arg.enum [ ("auto", `Auto); ("off", `Off) ]
  in
  Arg.(value & opt sym_conv `Off
       & info [ "symmetry" ] ~docv:"auto|off"
           ~doc:"Quotient the exploration by the statically admitted \
                 symmetry group (`auto'): hypergraph automorphisms and \
                 declared internal symmetries are proven against the exact \
                 guard tables, then only one configuration per orbit is \
                 stored.  Verdicts and counterexamples are unchanged \
                 (paths are lifted back to concrete runs).  Requires the \
                 packed engine.  Default `off'.")

let check_term =
  Term.(
    const check_cmd $ check_algo_arg $ family_arg $ nprocs_arg $ check_token_arg
    $ max_states_arg $ keep_going_arg $ sample_arg $ seed_arg $ cex_out_arg
    $ check_progress_arg $ engine_arg $ check_symmetry_arg $ emit_json_arg)

(* ---- smc (statistical model checking) ---- *)

module Smc = Snapcc_smc

let smc_cmd family n algo_name daemon_name workload_name trials budget workers
    seed confidence disc engine sprt sprt_delta sprt_within emit_trace
    emit_json =
  let topo_name, h = or_die (resolve_topo ?n family) in
  let telemetry, _ring, finish_telemetry =
    make_hub ~emit_trace ~emit_catapult:None ()
  in
  let cfg =
    { Smc.Runner.algo = algo_name;
      topo_name;
      topo = h;
      daemon = daemon_name;
      workload = workload_name;
      disc;
      budget;
      trials;
      workers;
      seed;
      confidence;
      engine;
      sprt;
      sprt_delta;
      sprt_within }
  in
  let r = Smc.Runner.run ?telemetry cfg in
  finish_telemetry ();
  let report = or_die r in
  (match emit_json with
   | Some file -> write_json file (Smc.Report.to_json report)
   | None -> ());
  Format.printf "%a@." Smc.Report.pp report;
  if not (Smc.Report.ok report) then exit 1

let smc_family_arg =
  let doc =
    "Topology family (ring|line|triangle|star|path|clique|single, combined \
     with -n), or a full topology name as for --topology."
  in
  Arg.(value & opt string "ring" & info [ "family" ] ~docv:"FAM" ~doc)

let smc_n_arg =
  Arg.(value & opt (some pos_int_conv) None
       & info [ "n" ] ~docv:"N" ~doc:"Number of professors (sizes --family).")

let smc_algo_arg =
  let doc =
    "Algorithm: cc1|cc2|cc3|cc1-vring|cc2-vring|cc3-vring (the -vring \
     variants run over the virtual-ring token layer `ccsim check' \
     enumerates, for cross-validation against exact counts)."
  in
  Arg.(value & opt string "cc1" & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)

let smc_trials_arg =
  Arg.(value & opt pos_int_conv 1000
       & info [ "trials" ] ~docv:"N"
           ~doc:"Monte-Carlo trial count (positive; the truncation bound in \
                 SPRT mode).")

let smc_budget_arg =
  Arg.(value & opt pos_int_conv 1000
       & info [ "budget" ] ~docv:"N" ~doc:"Per-trial step horizon (positive).")

let smc_workers_arg =
  Arg.(value & opt pos_int_conv 1
       & info [ "workers" ] ~docv:"N"
           ~doc:"Forked worker processes (positive).  The merged report and \
                 trace are byte-identical for every worker count.")

let smc_confidence_arg =
  Arg.(value & opt probability_conv 0.95
       & info [ "confidence" ] ~docv:"P"
           ~doc:"Confidence level for every interval; in SPRT mode the error \
                 bounds are alpha = beta = 1 - P.")

let smc_sprt_arg =
  Arg.(value & opt (some probability_conv) None
       & info [ "sprt" ] ~docv:"THETA"
           ~doc:"SPRT mode: sequentially test \"P(stabilized within \
                 --sprt-within steps) >= THETA\" with early stopping \
                 instead of the fixed-size estimate; exits 1 when the claim \
                 is rejected.")

let smc_sprt_delta_arg =
  Arg.(value & opt probability_conv 0.02
       & info [ "sprt-delta" ] ~docv:"D"
           ~doc:"SPRT indifference half-width around THETA.")

let smc_sprt_within_arg =
  Arg.(value & opt (some pos_int_conv) None
       & info [ "sprt-within" ] ~docv:"N"
           ~doc:"Success horizon (steps) for the SPRT claim; default \
                 --budget.")

let smc_term =
  Term.(
    const smc_cmd $ smc_family_arg $ smc_n_arg $ smc_algo_arg $ daemon_arg
    $ workload_arg $ smc_trials_arg $ smc_budget_arg $ smc_workers_arg
    $ seed_arg $ smc_confidence_arg $ disc_arg $ engine_arg $ smc_sprt_arg
    $ smc_sprt_delta_arg $ smc_sprt_within_arg $ emit_trace_arg
    $ emit_json_arg)

(* ---- replay ---- *)

let replay_cmd file =
  let cex =
    match Cex.of_file file with
    | c -> c
    | exception (Failure msg | Sys_error msg) -> or_die (Error msg)
  in
  let entry =
    match Mc_systems.find cex.Cex.algo with
    | Some e -> e
    | None -> or_die (Error (Printf.sprintf "unknown system %S" cex.Cex.algo))
  in
  let h = or_die (topology cex.Cex.topo) in
  let res =
    try
      let module S = (val entry.Mc_systems.make cex.Cex.token) in
      let module CexM = Snapcc_mc.Counterexample.Make (S) in
      Format.printf "%a@.@.replaying through engine + monitors:@." Cex.pp cex;
      Ok
        (match CexM.replay ~trace:Format.std_formatter h cex with
        | CexM.Reproduced msg ->
          Format.printf "@.reproduced: %s@." msg;
          0
        | CexM.Not_reproduced msg ->
          Format.printf "@.NOT reproduced: %s@." msg;
          1
        | CexM.Invalid msg ->
          Format.printf "@.invalid trace: %s@." msg;
          2)
    with Invalid_argument msg -> Error msg
  in
  exit (or_die res)

let replay_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Counterexample file written by `ccsim check'.")

let replay_term = Term.(const replay_cmd $ replay_file_arg)

(* ---- stats (offline trace aggregation) ---- *)

let stats_cmd validate file =
  if file <> "-" && not (Sys.file_exists file) then
    or_die (Error (Printf.sprintf "no such file %S" file));
  if validate then begin
    (* strict whole-file JSON parse — the CI gate for BENCH_*.json and the
       other machine-readable artifacts *)
    let content = String.concat "\n" (read_lines file) in
    match Tele.Json.of_string content with
    | Ok _ -> Format.printf "%s: valid JSON@." file
    | Error msg ->
      Format.eprintf "ccsim: %s: %s@." file msg;
      exit 1
  end
  else begin
    match Tele.Stats.of_jsonl (read_lines file) with
    | Ok (meta, summary) ->
      print_string (Tele.Json.to_string (Tele.Stats.to_json ?meta summary));
      print_newline ()
    | Error msg ->
      Format.eprintf "ccsim: %s: %s@." file msg;
      exit 1
  end

let stats_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"JSONL trace written by `ccsim run --emit-trace' (or, with \
               --validate-json, any JSON file).  `-' reads standard input.")

let stats_validate_arg =
  Arg.(value & flag & info [ "validate-json" ]
         ~doc:"Only check that $(i,FILE) parses as JSON (whole-file, not \
               JSONL); exit 1 otherwise.")

let stats_term = Term.(const stats_cmd $ stats_validate_arg $ stats_file_arg)

(* ---- trace (offline causal analysis) ---- *)

module Causal = Snapcc_analysis.Causal

let trace_cmd file emit_json =
  let lines =
    match read_lines file with
    | lines -> lines
    | exception Sys_error msg ->
      Format.eprintf "ccsim: %s@." msg;
      exit 2
  in
  match Tele.Stats.events_of_jsonl lines with
  | Error msg ->
    Format.eprintf "ccsim: %s: %s@." file msg;
    exit 2
  | Ok events -> (
    match Causal.analyze events with
    | Error msg ->
      Format.eprintf "ccsim: %s: %s@." file msg;
      exit 2
    | Ok t ->
      let par = Causal.parity t events in
      (match emit_json with
       | Some out ->
         write_json out
           (Tele.Json.Obj
              [ ("causal", Causal.to_json t);
                ("parity", Causal.parity_to_json par) ])
       | None -> ());
      Format.printf "%a@." Causal.pp t;
      Format.printf "%a@." Causal.pp_parity par;
      if not (Causal.parity_ok par) then exit 1)

let trace_file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"JSONL trace with vector-clock stamps (`ccsim mp' or `ccsim \
               net' with --emit-trace).  `-' reads standard input.")

let trace_emit_json_arg =
  Arg.(value & opt (some string) None
       & info [ "emit-json" ] ~docv:"FILE"
           ~doc:"Also write the causal summary and the parity report as one \
                 JSON object to $(docv).")

let trace_term = Term.(const trace_cmd $ trace_file_arg $ trace_emit_json_arg)

(* ---- list ---- *)

let list_cmd () =
  Format.printf "named topologies:@.";
  List.iter
    (fun (name, h) -> Format.printf "  %-10s %a@." name H.pp h)
    (Families.all_named ());
  Format.printf "  (plus ring<n>, path<n>, star<n>, clique<n>, single<k>, line<n>)@.@.";
  Format.printf "algorithms: cc1 cc2 cc3 token-only dining central cc1-no-token@.@.";
  Format.printf "check systems (ccsim check --algo, times --token vring|tree|null):@.";
  List.iter
    (fun (e : Mc_systems.entry) ->
      Format.printf "  %-14s %s%s@." e.Mc_systems.key e.Mc_systems.title
        (if e.Mc_systems.broken then "  [deliberately broken]" else ""))
    Mc_systems.all;
  Format.printf "@.experiments:@.";
  List.iter
    (fun (e : Registry.entry) -> Format.printf "  %-24s %s@." e.Registry.id e.Registry.title)
    Registry.all

let list_term = Term.(const list_cmd $ const ())

(* ---- main ---- *)

let cmds =
  [ Cmd.v
      (Cmd.info "run" ~doc:"Simulate a committee-coordination algorithm under monitors")
      run_term;
    Cmd.v (Cmd.info "bounds" ~doc:"Matching-theory bounds of a topology (Theorems 4-8)")
      bounds_term;
    Cmd.v
      (Cmd.info "mp"
         ~doc:"Simulate over the message-passing emulation (Section 7 future work)")
      mp_term;
    Cmd.v
      (Cmd.info "net"
         ~doc:"Run the algorithm as real node processes over fault-injecting \
               loopback links, with a live monitoring observer.  A zero-fault \
               run replays `ccsim mp' of the same seed decision for decision.")
      net_term;
    Cmd.v (Cmd.info "experiment" ~doc:"Run one of the paper's experiments") experiment_term;
    Cmd.v
      (Cmd.info "lint"
         ~doc:"Static footprint/race/priority analysis of the guarded-command \
               algorithms (exits non-zero on violations)")
      lint_term;
    Cmd.v
      (Cmd.info "check"
         ~doc:"Exhaustively model-check a system on a small topology: safety \
               closure from every initial configuration, plus \
               deadlock/livelock detection under weak fairness.  Exit codes: \
               0 verified (or incomplete without violation), 1 violation \
               found, 2 usage error.")
      check_term;
    Cmd.v
      (Cmd.info "smc"
         ~doc:"Statistical model checking: seeded Monte-Carlo trials from \
               corrupted starts drawn uniformly over the state-domain \
               product, estimating stabilization/waiting-time distributions \
               with Student-t and Wilson confidence intervals — or testing \
               a probabilistic claim sequentially (--sprt) with early \
               stopping.  Parallel (--workers) runs merge to byte-identical \
               reports.  Exit codes: 0 ok, 1 violation or rejected claim, 2 \
               usage error.")
      smc_term;
    Cmd.v
      (Cmd.info "orbits"
         ~doc:"Verify snapcc-orbits v1 symmetry certificates (written by \
               `ccsim lint --symmetry --orbits DIR'): structural checks on \
               generators, transports, orbits and group closure.  Exit \
               codes: 0 all valid, 1 any failure.")
      orbits_term;
    Cmd.v
      (Cmd.info "replay"
         ~doc:"Re-execute a counterexample written by `ccsim check' through \
               the simulation engine and runtime monitors.  Exit codes: 0 \
               reproduced, 1 not reproduced, 2 invalid file.")
      replay_term;
    Cmd.v
      (Cmd.info "stats"
         ~doc:"Aggregate a JSONL telemetry trace back to a run summary \
               (identical to the `ccsim run --emit-json' artifact), or \
               validate any JSON artifact with --validate-json.")
      stats_term;
    Cmd.v
      (Cmd.info "trace"
         ~doc:"Rebuild a run from the vector-clock stamps of a JSONL trace \
               alone: happens-before linearization, consistent cuts, \
               cut-consistent Spec verdicts, causal vs schedule concurrency \
               and the burst-to-recovery critical path — cross-checked \
               against the online observer's events of the same trace.  \
               Exit codes: 0 parity, 1 parity mismatch, 2 unusable trace.")
      trace_term;
    Cmd.v (Cmd.info "list" ~doc:"List topologies, algorithms and experiments") list_term;
  ]

(* Hidden entry point: `ccsim node --id I --connect PORT` is what `ccsim
   net' spawns per paper process.  Intercepted before cmdliner so it never
   appears in the help surface. *)
let node_main () =
  let id = ref (-1) in
  let port = ref (-1) in
  let argc = Array.length Sys.argv in
  let rec parse i =
    if i + 1 < argc then begin
      (match Sys.argv.(i) with
       | "--id" -> id := int_of_string Sys.argv.(i + 1)
       | "--connect" -> port := int_of_string Sys.argv.(i + 1)
       | a -> or_die (Error (Printf.sprintf "node: unknown argument %S" a)));
      parse (i + 2)
    end
  in
  (match parse 2 with
   | () -> ()
   | exception Failure _ ->
     or_die (Error "node: --id and --connect take integers"));
  if !id < 0 || !port <= 0 then
    or_die (Error "node: --id ID and --connect PORT are required");
  let fd = Net.Spawn.connect ~port:!port in
  Net.Node.serve ~id:!id fd;
  exit 0

let () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "node" then node_main ();
  let info =
    Cmd.info "ccsim" ~version:"1.0.0"
      ~doc:"Snap-stabilizing committee coordination simulator"
  in
  exit (Cmd.eval (Cmd.group info cmds))
