(** Minimal self-contained JSON: a value type, a compact deterministic
    printer and a strict parser.

    The repository deliberately avoids external JSON dependencies; this
    module is the single serialization point for every machine-readable
    artifact (JSONL traces, run summaries, check/lint reports, catapult
    exports, BENCH files).  The printer is deterministic: object fields are
    emitted in the order given, floats are rendered with a fixed format, no
    whitespace is inserted — so byte-for-byte comparison of artifacts is
    meaningful (the telemetry determinism tests rely on it). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no spaces, no trailing newline).  [Float] values are
    printed with ["%.12g"], except non-finite values which become [null]
    (JSON has no inf/nan). *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse of a single JSON value (surrounding whitespace allowed;
    trailing garbage is an error).  Numbers containing ['.'], ['e'] or
    ['E'] parse as [Float], others as [Int].  [\uXXXX] escapes are decoded
    to UTF-8. *)

(** {2 Accessors} — total, for digging into parsed values. *)

val member : string -> t -> t option
(** Field of an [Obj], [None] otherwise. *)

val to_int : t -> int option
(** [Int n] and integral [Float] values. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option
