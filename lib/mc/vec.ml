type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length v = v.len

let push v x =
  if v.len = Array.length v.data then begin
    let ndata = Array.make (max 8 (2 * v.len)) x in
    Array.blit v.data 0 ndata 0 v.len;
    v.data <- ndata
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done
