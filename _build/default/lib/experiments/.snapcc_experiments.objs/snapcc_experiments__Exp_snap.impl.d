lib/experiments/exp_snap.ml: Algos Array Driver Exp_common List Snapcc_analysis Snapcc_hypergraph Snapcc_workload Table
