(* Committees are written 1-based in the paper's figures; [paper] shifts
   them to 0-based vertex indices and keeps the paper's identifiers. *)
let paper ~n committees =
  let shift = List.map (List.map (fun v -> v - 1)) committees in
  Hypergraph.create ~ids:(Array.init n (fun v -> v + 1)) ~n shift

let fig1 () = paper ~n:6 [ [1; 2]; [1; 2; 3; 4]; [2; 4; 5]; [3; 6]; [4; 6] ]
let fig2 () = paper ~n:5 [ [1; 2]; [1; 3; 5]; [3; 4] ]

let fig3 () =
  paper ~n:10
    [ [1; 2; 3]; [3; 4]; [4; 5]; [5; 6]; [6; 7]; [7; 8]; [8; 9]; [9; 10]; [6; 9] ]

let fig4 () = paper ~n:9 [ [1; 2; 5; 8]; [3; 4; 5]; [6; 7; 9]; [8; 9] ]

let pair_ring n =
  if n < 3 then invalid_arg "pair_ring: need n >= 3";
  Hypergraph.create ~n (List.init n (fun i -> [ i; (i + 1) mod n ]))

let path n =
  if n < 2 then invalid_arg "path: need n >= 2";
  Hypergraph.create ~n (List.init (n - 1) (fun i -> [ i; i + 1 ]))

let star n =
  if n < 2 then invalid_arg "star: need n >= 2";
  Hypergraph.create ~n (List.init (n - 1) (fun i -> [ 0; i + 1 ]))

let clique n =
  if n < 2 then invalid_arg "clique: need n >= 2";
  let committees = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      committees := [ i; j ] :: !committees
    done
  done;
  Hypergraph.create ~n (List.rev !committees)

let k_uniform_ring ~n ~k =
  if n < 3 || k < 2 || k >= n then invalid_arg "k_uniform_ring: need 2 <= k < n, n >= 3";
  Hypergraph.create ~n
    (List.init n (fun i -> List.init k (fun j -> (i + j) mod n)))

let single k =
  if k < 2 then invalid_arg "single: need k >= 2";
  Hypergraph.create ~n:k [ List.init k Fun.id ]

(* Random committees, then repair coverage and connectivity: any professor
   left uncovered, or any disconnected component, is patched with a bridging
   pair committee.  Repairs are deterministic in the seed. *)
let random ~seed ~n ~m ?(min_k = 2) ?(max_k = 4) () =
  if n < 2 then invalid_arg "random: need n >= 2";
  if min_k < 2 || max_k < min_k || max_k > n then invalid_arg "random: bad k range";
  let rng = Random.State.make [| seed; n; m |] in
  let seen = Hashtbl.create m in
  let draw () =
    let k = min_k + Random.State.int rng (max_k - min_k + 1) in
    let members = Hashtbl.create k in
    while Hashtbl.length members < k do
      Hashtbl.replace members (Random.State.int rng n) ()
    done;
    List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) members [])
  in
  let committees = ref [] in
  let attempts = ref 0 in
  while List.length !committees < m && !attempts < 100 * (m + 1) do
    incr attempts;
    let c = draw () in
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      committees := c :: !committees
    end
  done;
  let covered = Array.make n false in
  List.iter (List.iter (fun v -> covered.(v) <- true)) !committees;
  for v = 0 to n - 1 do
    if not covered.(v) then begin
      let u = (v + 1 + Random.State.int rng (n - 1)) mod n in
      let c = List.sort compare [ v; u ] in
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        committees := c :: !committees
      end
      else covered.(v) <- true (* already linked by the drawn pair *)
    end
  done;
  (* Union-find to bridge components of the underlying network. *)
  let parent = Array.init n Fun.id in
  let rec find v = if parent.(v) = v then v else (parent.(v) <- find parent.(v); parent.(v)) in
  let union u v = parent.(find u) <- find v in
  List.iter
    (fun c -> match c with [] -> () | v0 :: rest -> List.iter (union v0) rest)
    !committees;
  for v = 1 to n - 1 do
    if find v <> find 0 then begin
      (* bridge this component to component of 0 via its representative *)
      let c = List.sort compare [ 0; v ] in
      if not (Hashtbl.mem seen c) then begin
        Hashtbl.add seen c ();
        committees := c :: !committees
      end;
      union v 0
    end
  done;
  Hypergraph.create ~n (List.rev !committees)

let with_shuffled_ids ~seed h =
  let n = Hypergraph.n h in
  let rng = Random.State.make [| seed; n; 0x1d5 |] in
  let ids = Array.init n (fun v -> v) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- t
  done;
  let committees =
    Array.to_list (Hypergraph.edges h)
    |> List.map (fun (e : Hypergraph.edge) -> Array.to_list e.members)
  in
  Hypergraph.create ~ids ~n committees

let all_named () =
  [ ("triangle", pair_ring 3);
    ("fig1", fig1 ());
    ("fig2", fig2 ());
    ("fig3", fig3 ());
    ("fig4", fig4 ());
    ("ring6", pair_ring 6);
    ("ring9", pair_ring 9);
    ("path5", path 5);
    ("star5", star 5);
    ("clique4", clique 4);
    ("triring9", k_uniform_ring ~n:9 ~k:3);
    ("single4", single 4);
    ("rand12", random ~seed:42 ~n:12 ~m:10 ());
  ]

let by_name name =
  match List.assoc_opt name (all_named ()) with
  | Some h -> h
  | None ->
    let parse prefix mk =
      if String.length name > String.length prefix
         && String.sub name 0 (String.length prefix) = prefix
      then
        match
          int_of_string_opt
            (String.sub name (String.length prefix)
               (String.length name - String.length prefix))
        with
        | Some k -> Some (mk k)
        | None -> None
      else None
    in
    let candidates =
      [ parse "triangle" (fun k ->
            if k = 3 then pair_ring 3
            else invalid_arg "Families.by_name: triangle has exactly 3 professors");
        parse "ring" pair_ring; parse "path" path; parse "line" path;
        parse "star" star; parse "clique" clique; parse "single" single ]
    in
    (match List.find_map Fun.id candidates with
     | Some h -> h
     | None -> invalid_arg (Printf.sprintf "Families.by_name: unknown topology %S" name))
