lib/analysis/metrics.mli: Format Snapcc_hypergraph Snapcc_runtime
