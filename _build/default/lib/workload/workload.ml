module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs

type t = {
  name : string;
  inputs : Obs.t array -> Model.inputs;
  observe : step:int -> Obs.t array -> unit;
}

let name w = w.name
let inputs w obs = w.inputs obs
let observe w ~step obs = w.observe ~step obs

(* Discussion timers shared by the request-driven workloads: a professor
   that has been [done] for [disc_len p] consecutive steps wants out, and
   the desire is sticky until it actually leaves (paper §4.2: once
   [RequestOut(p)] is true, it remains true until [p] becomes idle). *)
let discussion_timers ?(disc_len = fun _ -> 2) h =
  let n = H.n h in
  let done_for = Array.make n 0 in
  let wants_out = Array.make n false in
  let observe (obs : Obs.t array) =
    Array.iteri
      (fun p (o : Obs.t) ->
        match o.Obs.status with
        | Obs.Done ->
          done_for.(p) <- done_for.(p) + 1;
          if done_for.(p) >= disc_len p then wants_out.(p) <- true
        | Obs.Idle | Obs.Looking | Obs.Waiting ->
          done_for.(p) <- 0;
          wants_out.(p) <- false)
      obs
  in
  let request_out p = wants_out.(p) in
  (observe, request_out)

let always_requesting ?disc_len h =
  let observe_timers, request_out = discussion_timers ?disc_len h in
  {
    name = "always-requesting";
    inputs = (fun _obs -> { Model.request_in = (fun _ -> true); request_out });
    observe = (fun ~step:_ obs -> observe_timers obs);
  }

let bursty ?disc_len ?(p_request = 0.2) ~seed h =
  let n = H.n h in
  let rng = Random.State.make [| seed; n; 0xb1 |] in
  let observe_timers, request_out = discussion_timers ?disc_len h in
  let pending = Array.make n false in
  let observe ~step:_ (obs : Obs.t array) =
    observe_timers obs;
    Array.iteri
      (fun p (o : Obs.t) ->
        match o.Obs.status with
        | Obs.Idle ->
          if (not pending.(p)) && Random.State.float rng 1.0 < p_request then
            pending.(p) <- true
        | Obs.Looking | Obs.Waiting | Obs.Done -> pending.(p) <- false)
      obs
  in
  {
    name = Printf.sprintf "bursty(p=%.2f)" p_request;
    inputs = (fun _obs -> { Model.request_in = Array.get pending; request_out });
    observe;
  }

let selective ?disc_len ~requesters h =
  let observe_timers, request_out = discussion_timers ?disc_len h in
  let wants = Array.make (H.n h) false in
  List.iter (fun p -> wants.(p) <- true) requesters;
  {
    name = "selective";
    inputs = (fun _obs -> { Model.request_in = Array.get wants; request_out });
    observe = (fun ~step:_ obs -> observe_timers obs);
  }

let infinite_meetings _h =
  {
    name = "infinite-meetings";
    inputs =
      (fun _obs ->
        { Model.request_in = (fun _ -> true); request_out = (fun _ -> false) });
    observe = (fun ~step:_ _ -> ());
  }

let of_closures ~name ~inputs ~observe = { name; inputs; observe }

let scripted ~name ~request_in ~request_out () =
  (* the upcoming step index is one past the last observed step *)
  let upcoming = ref 0 in
  {
    name;
    inputs =
      (fun _obs ->
        let s = !upcoming in
        { Model.request_in = request_in ~step:s; request_out = request_out ~step:s });
    observe = (fun ~step _ -> upcoming := step + 1);
  }
