(** Exhaustive exploration of a {!System.S} under the daemon semantics of
    §2.2: from every configuration, under each of the four uniform input
    modes, every non-empty subset of the enabled processes may be selected,
    and each selected process executes its highest-priority enabled action
    against the pre-step configuration.

    Verification is {e from every state in the domain}, not just [init] —
    the snap-stabilization quantification (§2.5).  Roots are streamed
    lazily out of the domain product, and states are explored breadth
    first, so the parent pointers yield shortest counterexample prefixes.

    Safety is checked per transition by feeding the (before, after)
    observation pair through the existing runtime monitor
    ({!Snapcc_analysis.Spec}), with [initial = before]: this judges
    {b exclusion} and {b synchronization} on every reachable transition
    while exempting the discussion rules of meetings inherited from the
    (arbitrary) source state — exactly the per-state reading of §2.5.
    Exclusion is additionally checked on every {e configuration} as it is
    discovered.  The transition graph under the [in+out] mode is retained
    for the progress analysis ({!Fairness}). *)

type violation = {
  rule : string;  (** {!Snapcc_analysis.Spec} rule name, e.g. ["synchronization"] *)
  detail : string;
  source : int;  (** configuration id of the pre-step configuration *)
  mode : int;  (** input-mode index; [-1] for configuration-local findings *)
  selected : int list;  (** daemon selection (process indices) *)
}

val mode_inputs : Snapcc_runtime.Model.inputs array
(** The four uniform input modes: quiet, [RequestIn], [RequestOut], both. *)

val mode_name : int -> string
val inout_mode : int
(** Index of the in+out mode (the one the progress analysis runs under). *)

module Make (Sys : System.S) : sig
  type result

  val explore :
    ?max_configs:int ->
    ?roots:[ `Domain | `States of Sys.state array list ] ->
    ?stop_on_first:bool ->
    ?on_progress:(configs:int -> transitions:int -> unit) ->
    ?tables:Tables.Make(Sys).t ->
    ?symmetry:Symmetry.group ->
    Snapcc_hypergraph.Hypergraph.t ->
    result
  (** [explore h] runs to exhaustion of the domain product ([`Domain], the
      default) or of the set reachable from the given initial
      configurations ([`States]), up to [max_configs] (default 1.5M)
      stored configurations.  [stop_on_first] aborts at the first safety
      violation; [on_progress] is invoked every few ten-thousand processed
      configurations.

      [tables] switches guard evaluation to the packed fast path: per
      (mode, process) the chosen action and successor come from a
      {!Tables.Make.entry} lookup, falling back to the guard closures only
      where no entry is stored.  The tables' interner is adopted wholesale,
      so results are bit-for-bit the ones the closure path computes (modulo
      escapee interning order).

      [symmetry] (an {e admitted} group from the static analyzer,
      [Snapcc_statics.Symmetry]) switches to quotient exploration: only
      the lexicographically least representative of each orbit is stored,
      shrinking the state count by up to the group order.  Soundness rests
      on the admission proof — every element commutes with the step
      function and preserves the meeting observations — so safety is still
      judged on the {e raw} (pre-canonicalization) transitions, escapee
      configurations bypass canonicalization entirely, and {!path_to}
      transparently lifts quotient paths back to concrete replayable runs.
      A group with [complete = false] or order 1 is ignored. *)

  (** {2 Outcome} *)

  val complete : result -> bool
  (** Whether the state space was exhausted (false: capped or stopped
      early; the progress analysis is then unsound and must be skipped). *)

  val n_configs : result -> int
  val n_transitions : result -> int
  val violations : result -> violation list

  val escapees : result -> (int * Sys.state) list
  (** Closure failures of [`Domain] roots: reachable per-process states
      outside the declared domain (empty ⇔ the domain is closed). *)

  val product_size : result -> float
  val action_counts : result -> (string * int) list
  (** Executions per action label over all explored transitions. *)

  val dead_actions : result -> string list
  (** Actions never executed on any explored transition. *)

  (** {2 Configuration access} *)

  val hyper : result -> Snapcc_hypergraph.Hypergraph.t
  val config_ids : result -> int -> int array
  val states_of_config : result -> int -> Sys.state array
  val obs_of_config : result -> int -> Snapcc_runtime.Obs.t array
  val domain_index : result -> int -> Sys.state -> int option
  (** Dense id of a (canonicalized) per-process state, if interned. *)

  val domain_state : result -> int -> int -> Sys.state

  val path_to : result -> int -> int array * (int * int list) list
  (** [(root, steps)]: a shortest path from a root configuration (given as
      its per-process state ids) to the configuration, each step a
      (mode, selected processes) pair.  Under [?symmetry] the returned
      path is {e lifted}: root and selections are concrete (the engine
      replays them verbatim), and it ends in a configuration of the
      target's orbit — {!lift_selection} maps a selection made at the
      canonical configuration onto that endpoint. *)

  val lift_selection : result -> int -> int list -> int list
  (** [lift_selection r cid sel] re-expresses a daemon selection valid at
      canonical configuration [cid] at the endpoint of [path_to r cid]
      (the identity without [?symmetry]). *)

  val symmetry_order : result -> int
  (** Order of the group the exploration was quotiented by (1 = none). *)

  (** {2 The in+out transition graph (progress analysis)} *)

  val enabled_inout : result -> int -> int
  (** Bitmask of processes enabled under in+out (valid once processed). *)

  val succs_inout : result -> int -> (int * int) list
  (** [(destination, selected-mask)] transitions under in+out. *)

  val convening : result -> int -> int -> bool
  (** Whether the transitions recorded from [src] to [dst] convened a
      meeting — judged on the {e raw} transitions, which under
      [?symmetry] may differ from comparing the two canonical meets
      masks.  [false] as soon as one recorded raw transition convenes
      nothing (the conservative direction for livelock detection). *)

  val meets_mask : result -> int -> int
  (** Bitmask of committees meeting in the configuration. *)

  val committee_waiting : result -> int -> bool
  (** Some committee has {e all} members waiting (status Looking/Waiting):
      the hypothesis of the progress property (§2.3). *)
end
