(** EXP-BASE — §6 related-work comparison.

    The same always-requesting workload on the same topologies, across the
    paper's algorithms, the two §6 baselines (circulating-token-only,
    centralized manager), the dining-philosophers reduction and the
    no-token ablation of CC1.  Measures throughput (convenes per 1000
    steps), concurrency, waiting and starvation: the paper's qualitative
    claims are that the token-only scheme loses concurrency, greedy schemes
    lose fairness, and CC1/CC2 trade the two against each other. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics

type row = {
  algo : string;
  topo : string;
  throughput : float;  (** convenes per 1000 steps *)
  mean_concurrency : float;
  max_concurrency : int;
  mean_wait : float;  (** steps *)
  max_wait : int;
  unserved : int;  (** professors never participating *)
  violations : int;
}

type result = row list

let runners () =
  Algos.all_algorithms ()
  @ [ { Algos.label = "CC1/no-token";
        run =
          (fun ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h ->
            Algos.Run_cc1_no_token.run ?seed ?init ?faults ?stop_when
              ?record_trace ?telemetry ~daemon ~workload ~steps h) };
    ]

let topologies ~quick () =
  if quick then [ ("fig1", Families.fig1 ()); ("ring6", Families.pair_ring 6) ]
  else
    [ ("fig1", Families.fig1 ());
      ("ring9", Families.pair_ring 9);
      ("triring9", Families.k_uniform_ring ~n:9 ~k:3);
      ("rand12", Families.random ~seed:42 ~n:12 ~m:10 ());
    ]

let run ?(quick = false) () : result =
  let steps = if quick then 5_000 else 20_000 in
  List.concat_map
    (fun (topo, h) ->
      List.map
        (fun (runner : Algos.runner) ->
          let r =
            runner.Algos.run ~seed:17 ~daemon:(Daemon.random_subset ())
              ~workload:(Workload.always_requesting h) ~steps h
          in
          let s = r.Driver.summary in
          {
            algo = runner.Algos.label;
            topo;
            throughput =
              (if r.Driver.steps = 0 then 0.
               else
                 1000. *. float_of_int s.Metrics.convenes
                 /. float_of_int r.Driver.steps);
            mean_concurrency = s.Metrics.mean_concurrency;
            max_concurrency = s.Metrics.max_concurrency;
            mean_wait = Metrics.mean s.Metrics.completed_waits_steps;
            max_wait = s.Metrics.max_wait_steps;
            unserved =
              Array.fold_left
                (fun a c -> if c = 0 then a + 1 else a)
                0 r.Driver.participations;
            violations = List.length r.Driver.violations;
          })
        (runners ()))
    (topologies ~quick ())

let table (r : result) =
  {
    Table.id = "related-work-baselines";
    title =
      "Related-work comparison (always-requesting professors, same workload \
       and daemon)";
    header =
      [ "algorithm"; "topology"; "convenes/1k"; "mean conc"; "max conc";
        "mean wait"; "max wait"; "unserved"; "violations" ];
    rows =
      List.map
        (fun row ->
          [ row.algo; row.topo; Table.f1 row.throughput;
            Table.f2 row.mean_concurrency; Table.i row.max_concurrency;
            Table.f1 row.mean_wait; Table.i row.max_wait; Table.i row.unserved;
            Table.i row.violations ])
        r;
    notes =
      [ "token-only = Bagrodia's circulating-token scheme (one convening \
         path): expect the lowest concurrency (paper §6).";
        "CC1/no-token = ablation: without the token, Progress can fail \
         (unserved professors) even though safety holds.";
      ];
  }

let find (r : result) ~algo ~topo =
  List.find (fun row -> row.algo = algo && row.topo = topo) r
