(** Plain-text result tables: what the bench harness prints and what
    EXPERIMENTS.md records. *)

type t = {
  id : string;  (** experiment id, e.g. ["thm45-dfc"] *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val pp : Format.formatter -> t -> unit
(** Column-aligned rendering with a title line and trailing notes. *)

val to_string : t -> string

(** Cell formatting shorthands. *)

val f1 : float -> string
(** One decimal. *)

val f2 : float -> string
(** Two decimals. *)

val i : int -> string
val b : bool -> string
(** ["yes"]/["no"]. *)
