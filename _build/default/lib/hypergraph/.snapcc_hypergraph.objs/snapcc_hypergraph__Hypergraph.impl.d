lib/hypergraph/hypergraph.ml: Array Format Fun Hashtbl List String
