(** A small text format for committee systems, so downstream users can feed
    their own topologies to the simulator and the CLI.

    {v
    # professors are named by integer identifiers; one committee per line
    n 6
    ids 1 2 3 4 5 6        # optional; defaults to 0 .. n-1
    committee 1 2
    committee 1 2 3 4
    committee 2 4 5
    committee 3 6
    committee 4 6
    v}

    Committee members are given by {e identifier} (not vertex index).
    Blank lines and [#] comments are ignored. *)

val parse : string -> (Hypergraph.t, string) result
(** Parse the format from a string; the error mentions the offending
    line. *)

val load : string -> (Hypergraph.t, string) result
(** Read and {!parse} a file. *)

val to_string : Hypergraph.t -> string
(** Render a hypergraph in the format; [parse (to_string h)] rebuilds an
    equal hypergraph. *)

val save : string -> Hypergraph.t -> unit
