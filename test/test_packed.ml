(* The packed-engine parity contract: a run routed through the packed
   guard/footprint tables (driver, mp engine, networked wire) is
   trace-identical to the closure run of the same seed — same enabled
   sets, same daemon draws, same observable events.  Plus the XOR-delta
   snapshot codec: exact round-trips, and every malformed or out-of-sync
   frame degrades to a resync/reject, never to a wrong state. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
module Trace = Snapcc_runtime.Trace
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Driver = Snapcc_experiments.Driver
module X = Snapcc_experiments.Algos
module Net = Snapcc_net
module Codec = Net.Codec
module Delta = Net.Delta
module Faults = Net.Faults
module Net_algos = Net.Net_algos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Typed System.S instances of the paper's algorithms, sharing the state
   types of X.Cc1/Cc2/Cc3 through OCaml's applicative functors — the
   bridge that lets the engines consume lib/mc's packed tables. *)
module Cursor_off = struct
  let cursor = false
end

module Cursor_on = struct
  let cursor = true
end

module Sys_cc1 = Snapcc_mc.Systems.Cc1_sys (Snapcc_token.Token_tree) (X.Cc1)
module Sys_cc2 =
  Snapcc_mc.Systems.Cc23_sys (Snapcc_token.Token_tree) (X.Cc2) (Cursor_off)
module Sys_cc3 =
  Snapcc_mc.Systems.Cc23_sys (Snapcc_token.Token_tree) (X.Cc3) (Cursor_on)

(* The four input modes the driver parity sweep runs under. *)
let input_modes h =
  [ ("always", fun () -> Workload.always_requesting h);
    ("bursty", fun () -> Workload.bursty ~seed:77 h);
    ("selective", fun () -> Workload.selective ~requesters:[ 0 ] h);
    ("infinite", fun () -> Workload.infinite_meetings h) ]

(* ---- driver parity ---- *)

module Driver_parity
    (A : Model.ALGO)
    (Sys : Snapcc_mc.System.S with type state = A.state) =
struct
  module R = Driver.Make (A)
  module Pk = Snapcc_mc.Packed.Make (Sys)

  let run_pair ~name ~hooks ~mk_workload ~init ~seed ~steps h =
    let go packed =
      R.run ?packed ~seed ~init ~daemon:(Daemon.random_subset ())
        ~workload:(mk_workload ()) ~record_trace:true ~steps h
    in
    let rc = go None in
    let rp = go (Some hooks) in
    check (name ^ ": outcome") true (rc.Driver.outcome = rp.Driver.outcome);
    check_int (name ^ ": steps") rc.Driver.steps rp.Driver.steps;
    check_int (name ^ ": rounds") rc.Driver.rounds rp.Driver.rounds;
    check (name ^ ": convene ledger") true
      (rc.Driver.convened = rp.Driver.convened);
    check (name ^ ": violations") true
      (rc.Driver.violations = rp.Driver.violations);
    check (name ^ ": final configuration") true
      (Array.for_all2 Obs.equal rc.Driver.final_obs rp.Driver.final_obs);
    match (rc.Driver.trace, rp.Driver.trace) with
    | Some t1, Some t2 ->
      check (name ^ ": step-for-step trace") true
        (Trace.entries t1 = Trace.entries t2)
    | _ -> Alcotest.fail (name ^ ": trace not recorded")

  (* full sweep on one topology: every input mode x init x seed *)
  let sweep ?cap ~algo ~topo ~seeds ~steps h =
    let pk = Pk.build ?cap h in
    let hooks = Pk.hooks pk in
    List.iter
      (fun (mode, mk_workload) ->
        List.iter
          (fun init ->
            List.iter
              (fun seed ->
                let name =
                  Printf.sprintf "%s/%s/%s/%s/seed%d" algo topo mode
                    (match init with `Canonical -> "canon" | `Random -> "rand")
                    seed
                in
                run_pair ~name ~hooks ~mk_workload ~init ~seed ~steps h)
              seeds)
          [ `Canonical; `Random ])
      (input_modes h);
    pk
end

module P1 = Driver_parity (X.Cc1) (Sys_cc1)
module P2 = Driver_parity (X.Cc2) (Sys_cc2)
module P3 = Driver_parity (X.Cc3) (Sys_cc3)

let test_driver_parity_single2 () =
  let h = Families.single 2 in
  let seeds = [ 1; 5 ] and steps = 2_000 in
  let pk1 = P1.sweep ~algo:"cc1" ~topo:"single2" ~seeds ~steps h in
  let pk2 = P2.sweep ~algo:"cc2" ~topo:"single2" ~seeds ~steps h in
  let pk3 = P3.sweep ~algo:"cc3" ~topo:"single2" ~seeds ~steps h in
  (* the sweep above must actually have exercised the table path *)
  check "cc1 tables built" true (P1.Pk.built pk1);
  check "cc2 tables built" true (P2.Pk.built pk2);
  check "cc3 tables built" true (P3.Pk.built pk3)

let test_driver_parity_line3 () =
  let h = Families.path 3 in
  let seeds = [ 2 ] and steps = 1_500 in
  let pk1 = P1.sweep ~algo:"cc1" ~topo:"line3" ~seeds ~steps h in
  let pk2 = P2.sweep ~algo:"cc2" ~topo:"line3" ~seeds ~steps h in
  let pk3 = P3.sweep ~algo:"cc3" ~topo:"line3" ~seeds ~steps h in
  check "cc1 tables built" true (P1.Pk.built pk1);
  check "cc2 tables built" true (P2.Pk.built pk2);
  check "cc3 tables built" true (P3.Pk.built pk3)

(* Skipped tables (enumeration over the cap) must degrade to the guard
   closures process by process, never change behaviour.  ring5/cc2 under a
   tiny cap skips everything (pure fallback through the packed plumbing);
   line3/cc1 probes for a cap that builds some processes but not others
   (the mixed path: table hits and closure cells in the same run). *)
let test_driver_parity_capped_fallback () =
  let h5 = Families.by_name "ring5" in
  let pk = P2.Pk.build ~cap:64 h5 in
  check "ring5/cc2 capped build skips" true (P2.Pk.coverage pk < 1.0);
  let mk_workload () = Workload.always_requesting h5 in
  P2.run_pair ~name:"cc2/ring5/capped" ~hooks:(P2.Pk.hooks pk) ~mk_workload
    ~init:`Random ~seed:3 ~steps:1_200 h5;
  let h3 = Families.path 3 in
  let mixed =
    List.find_opt
      (fun cap ->
        let pk = P1.Pk.build ~cap h3 in
        let c = P1.Pk.coverage pk in
        c > 0.0 && c < 1.0)
      [ 500; 5_000; 50_000; 500_000; 5_000_000 ]
  in
  match mixed with
  | None -> ()  (* no cap separates line3's processes; pure paths suffice *)
  | Some cap ->
    let pk = P1.Pk.build ~cap h3 in
    let mk_workload () = Workload.always_requesting h3 in
    P1.run_pair ~name:"cc1/line3/mixed" ~hooks:(P1.Pk.hooks pk) ~mk_workload
      ~init:`Random ~seed:4 ~steps:1_500 h3

(* ---- mp-engine parity ---- *)

module Mp_parity
    (A : Model.ALGO)
    (Sys : Snapcc_mc.System.S with type state = A.state) =
struct
  module E = Snapcc_mp.Mp_engine.Make (A)
  module Pk = Snapcc_mc.Packed.Make (Sys)

  (* Two engines, same seed, each feeding its own workload from its own
     observations; corrupt both mid-run.  Configurations must agree at
     every comparison point, counters at the end. *)
  let run_pair ~name ~hooks ~init ~seed ~steps h =
    let go packed = E.create ?packed ~seed ~init h in
    let ec = go None in
    let ep = go (Some hooks) in
    check (name ^ ": fast path on") true (E.engine_kind ep = `Packed);
    let wc = Workload.always_requesting h in
    let wp = Workload.always_requesting h in
    for i = 1 to steps do
      if i = steps / 2 then begin
        E.corrupt ec ~victims:[ 0 ];
        E.corrupt ep ~victims:[ 0 ]
      end;
      let e1 = E.step ec ~inputs:(Workload.inputs wc (E.obs ec)) in
      let e2 = E.step ep ~inputs:(Workload.inputs wp (E.obs ep)) in
      check (name ^ ": same event") true (e1 = e2);
      Workload.observe wc ~step:i (E.obs ec);
      Workload.observe wp ~step:i (E.obs ep);
      if i mod 100 = 0 then
        check (name ^ ": same configuration") true
          (Array.for_all2 Obs.equal (E.obs ec) (E.obs ep))
    done;
    check (name ^ ": still packed") true (E.engine_kind ep = `Packed);
    check_int (name ^ ": sends") (E.messages_sent ec) (E.messages_sent ep);
    check_int (name ^ ": deliveries") (E.messages_delivered ec)
      (E.messages_delivered ep);
    check_int (name ^ ": staleness") (E.max_staleness ec) (E.max_staleness ep);
    check (name ^ ": final configuration") true
      (Array.for_all2 Obs.equal (E.obs ec) (E.obs ep))
end

module M1 = Mp_parity (X.Cc1) (Sys_cc1)
module M2 = Mp_parity (X.Cc2) (Sys_cc2)
module M3 = Mp_parity (X.Cc3) (Sys_cc3)

let test_mp_parity () =
  let h = Families.single 2 in
  let hooks1 = M1.Pk.hooks (M1.Pk.build h) in
  let hooks2 = M2.Pk.hooks (M2.Pk.build h) in
  let hooks3 = M3.Pk.hooks (M3.Pk.build h) in
  List.iter
    (fun (seed, init) ->
      let tag =
        Printf.sprintf "seed%d/%s" seed
          (match init with `Canonical -> "canon" | `Random -> "rand")
      in
      M1.run_pair ~name:("mp cc1 " ^ tag) ~hooks:hooks1 ~init ~seed
        ~steps:3_000 h;
      M2.run_pair ~name:("mp cc2 " ^ tag) ~hooks:hooks2 ~init ~seed
        ~steps:3_000 h;
      M3.run_pair ~name:("mp cc3 " ^ tag) ~hooks:hooks3 ~init ~seed
        ~steps:3_000 h)
    [ (1, `Canonical); (9, `Random) ]

let test_mp_parity_line3 () =
  let h = Families.path 3 in
  let hooks = M1.Pk.hooks (M1.Pk.build h) in
  M1.run_pair ~name:"mp cc1 line3" ~hooks ~init:`Random ~seed:7 ~steps:4_000 h

(* ---- networked wire parity ---- *)

(* The wire engine changes bytes, not behaviour: a packed-delta run and a
   full-snapshot run of the same seed produce the same scheduler events,
   states and monitor verdicts — only [bytes_delivered] differs. *)
let net_pair ~algo ~steps ~plan ~burst h =
  let go engine =
    let cfg =
      { Net.Orchestrator.algo; seed = 11; init = `Canonical;
        deliver_bias = 0.5; steps; plan; burst; engine }
    in
    match
      Net.Orchestrator.run ~mode:Net.Spawn.Fork
        ~workload:(Workload.always_requesting h) cfg h
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let rc = go `Closure in
  let rp = go `Packed in
  check_int "same convenes" rc.Net.Orchestrator.convenes
    rp.Net.Orchestrator.convenes;
  check_int "same sends" rc.Net.Orchestrator.sent rp.Net.Orchestrator.sent;
  check_int "same deliveries" rc.Net.Orchestrator.delivered
    rp.Net.Orchestrator.delivered;
  check_int "same violations"
    (List.length rc.Net.Orchestrator.violations)
    (List.length rp.Net.Orchestrator.violations);
  check "same stabilization" true
    (rc.Net.Orchestrator.stabilized_in = rp.Net.Orchestrator.stabilized_in);
  check "same final configuration" true
    (Array.for_all2 Obs.equal rc.Net.Orchestrator.final_obs
       rp.Net.Orchestrator.final_obs);
  check "marshal cost is engine-independent" true
    (rc.Net.Orchestrator.bytes_sent = rp.Net.Orchestrator.bytes_sent);
  check "packed wire is cheaper" true
    (rp.Net.Orchestrator.bytes_delivered
    < rc.Net.Orchestrator.bytes_delivered);
  (rc, rp)

let test_net_parity_zero_fault () =
  let h = Families.fig1 () in
  let rc, rp = net_pair ~algo:"cc2" ~steps:1_200 ~plan:Faults.none ~burst:None h in
  check_int "nothing lost" 0 rc.Net.Orchestrator.dropped;
  check_int "no resyncs needed" 0 rp.Net.Orchestrator.resyncs;
  check_int "no rejected frames" 0 rp.Net.Orchestrator.malformed

let test_net_parity_faulty_soak () =
  let h = Families.by_name "ring5" in
  let plan =
    match Faults.parse "drop=0.05,delay=2,dup=0.02,corrupt=0.02" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let _, rp = net_pair ~algo:"cc1" ~steps:1_500 ~plan ~burst:(Some 750) h in
  check "corrupted frames rejected" true (rp.Net.Orchestrator.malformed > 0);
  check_int "decoder rejections match node reports"
    rp.Net.Orchestrator.malformed rp.Net.Orchestrator.node_decode_errors;
  check "resynced links recover" true (rp.Net.Orchestrator.resyncs >= 0)

(* ---- XOR-delta codec ---- *)

let le64 id = String.init 8 (fun k -> Char.chr ((id lsr (8 * k)) land 0xff))

let test_delta_roundtrip () =
  (* packed-id payloads: every pair out of a domain-sized id range *)
  for i = 0 to 40 do
    for j = 0 to 40 do
      let base = le64 (i * 97) and target = le64 (j * 131) in
      match Delta.encode ~base ~target with
      | None -> Alcotest.fail "id payloads must be encodable"
      | Some d -> (
        check "heartbeat is 5 bytes" true (i * 97 <> j * 131 || String.length d = 5);
        match Delta.apply ~base d with
        | Some t -> check "roundtrip" true (t = target)
        | None -> Alcotest.fail "delta failed to apply")
    done
  done;
  (* marshal-sized payloads, including lengths that are not word multiples *)
  let rng = Random.State.make [| 4; 2 |] in
  for len = 1 to 64 do
    let mk () = String.init len (fun _ -> Char.chr (Random.State.int rng 256)) in
    let base = mk () and target = mk () in
    match Delta.encode ~base ~target with
    | None -> Alcotest.failf "length %d must encode" len
    | Some d -> (
      match Delta.apply ~base d with
      | Some t -> check "roundtrip" true (t = target)
      | None -> Alcotest.failf "length %d failed to apply" len)
  done

(* Every marshalled state in the checker's interned domain — the exact set
   of payloads the packed wire can carry in form-0 frames — roundtrips
   against every other state of the same process. *)
let test_delta_roundtrip_domain_states () =
  let h = Families.single 2 in
  List.iter
    (fun key ->
      let entry =
        match Snapcc_mc.Systems.find key with
        | Some e -> e
        | None -> Alcotest.failf "unknown mc system %s" key
      in
      let module S = (val entry.Snapcc_mc.Systems.make "tree") in
      for p = 0 to H.n h - 1 do
        let dom = List.map (fun st -> Marshal.to_string st []) (S.domain h p) in
        List.iter
          (fun base ->
            List.iter
              (fun target ->
                match Delta.encode ~base ~target with
                | None ->
                  (* same-process marshals can still differ in length
                     (sharing); only equal lengths are deltable *)
                  check "only length mismatch refuses" true
                    (String.length base <> String.length target)
                | Some d -> (
                  match Delta.apply ~base d with
                  | Some t -> check "domain roundtrip" true (t = target)
                  | None -> Alcotest.fail "domain delta failed to apply"))
              dom)
          dom
      done)
    [ "cc1"; "cc2"; "cc3" ]

let test_delta_rejects_corruption () =
  let base = le64 0x0123_4567_89ab in
  let target = le64 0xfedc_ba98_7654 in
  let d =
    match Delta.encode ~base ~target with
    | Some d -> d
    | None -> Alcotest.fail "encode failed"
  in
  (* every single-byte corruption of the delta is rejected, never applied
     to a wrong state *)
  for i = 0 to String.length d - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string d in
      Bytes.set b i (Char.chr (Char.code d.[i] lxor (1 lsl bit)));
      match Delta.apply ~base (Bytes.to_string b) with
      | None -> ()
      | Some t ->
        Alcotest.(check string)
          (Printf.sprintf "flip %d.%d must not fabricate a state" i bit)
          target t
    done
  done;
  (* a stale base fails the checksum instead of yielding garbage *)
  check "wrong base rejected" true
    (Delta.apply ~base:(le64 0xdead) d = None);
  (* truncations *)
  for len = 0 to String.length d - 1 do
    check "truncation rejected" true
      (Delta.apply ~base (String.sub d 0 len) = None)
  done;
  (* out-of-range word index *)
  let bogus = "\x01\xff\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00" in
  check "bad index rejected" true (Delta.apply ~base bogus = None);
  check "length mismatch unencodable" true
    (Delta.encode ~base ~target:(le64 1 ^ le64 2) = None)

(* ---- node protocol: resync discipline ---- *)

(* Speak the packed wire protocol to a forked node directly and force the
   paths the soak never hits: an out-of-sync delta base, an unknown packed
   id, an undecodable delta.  Each must answer [Resync] (a transient
   fault, not a decode error); a corrupted frame must still answer
   [Decode_error]; and the final [Bye_ack] must count only the latter. *)
let test_node_resync_protocol () =
  let h = Families.single 2 in
  let entry =
    match Net.Net_algos.find "cc1" with
    | Some e -> e
    | None -> Alcotest.fail "cc1 missing from the wire registry"
  in
  let coder = entry.Net_algos.coder h in
  let module A = (val entry.Net_algos.algo) in
  let nodes = Net.Spawn.launch Net.Spawn.Fork ~n:1 in
  let fd = nodes.(0).Net.Spawn.fd in
  let tag = entry.Net_algos.tag in
  let send msg = Net.Wire.write fd (Codec.encode ~algo:tag msg) in
  let recv () =
    match Net.Wire.read fd with
    | Error _ -> Alcotest.fail "node hung up"
    | Ok body -> (
      match Codec.decode ~expect:tag body with
      | Ok (_, msg) -> msg
      | Error e -> Alcotest.failf "bad reply: %s" (Codec.error_to_string e))
  in
  let expect_resync name =
    match recv () with
    | Codec.Resync _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected a resync")
  in
  let core = A.init h 0 and nb = A.init h 1 in
  send
    (Codec.Init
       { seed = 0; topo = Snapcc_hypergraph.Hypergraph_io.to_string h;
         core = Marshal.to_string core [];
         cache = Marshal.to_string [| nb |] [] });
  (match recv () with
   | Codec.Ready -> ()
   | _ -> Alcotest.fail "expected Ready");
  (* a delta against a base the node never acknowledged *)
  let wclock k = Snapcc_telemetry.Vclock.encode_wire [| 1; k |] in
  send
    (Codec.Deliver_delta
       { src = 1; seq = 0; base_seq = 5; delta = ""; clock = wclock 2 });
  expect_resync "stale base";
  (* a full snapshot naming an id outside the interned domain *)
  send
    (Codec.Deliver_full
       { src = 1; seq = 0; form = 1; payload = le64 max_int;
         clock = wclock 2 });
  expect_resync "unknown id";
  (* a real full snapshot: the node accepts and acknowledges *)
  let nb_bytes = Marshal.to_string nb [] in
  let id =
    match coder.Net_algos.to_id ~proc:1 nb_bytes with
    | Some id -> id
    | None -> Alcotest.fail "initial state must be in the interned domain"
  in
  send
    (Codec.Deliver_full
       { src = 1; seq = 1; form = 1; payload = le64 id; clock = wclock 2 });
  (match recv () with
   | Codec.Delivered -> ()
   | _ -> Alcotest.fail "expected Delivered");
  (* now a delta that does not checksum against that base *)
  let good =
    match Delta.encode ~base:(le64 id) ~target:(le64 (id + 1)) with
    | Some d -> d
    | None -> Alcotest.fail "encode failed"
  in
  let mangled =
    let b = Bytes.of_string good in
    Bytes.set b (Bytes.length b - 1) '\xff';
    Bytes.to_string b
  in
  send
    (Codec.Deliver_delta
       { src = 1; seq = 2; base_seq = 1; delta = mangled; clock = wclock 3 });
  expect_resync "undecodable delta";
  (* a delta onto an acknowledged base applies *)
  (match coder.Net_algos.of_id ~proc:1 id with
   | Some bytes -> check "coder is a bijection" true (bytes = nb_bytes)
   | None -> Alcotest.fail "of_id failed on an interned id");
  send
    (Codec.Deliver_delta
       { src = 1; seq = 2; base_seq = 1; delta = good; clock = wclock 3 });
  (match recv () with
   | Codec.Delivered ->
     (* seq 2's payload names id+1, which may or may not be interned; the
        node accepted it because the delta checksummed — the id range is
        checked by of_id at decode time, so id+1 must have been valid *)
     ()
   | Codec.Resync _ ->
     (* id+1 past the end of the domain: also a legal answer *)
     ()
   | _ -> Alcotest.fail "expected Delivered or Resync");
  (* frame-level corruption is still a decode error, not a resync *)
  let rng = Random.State.make [| 13 |] in
  let fclock = Snapcc_telemetry.Vclock.encode_full [| 1; 4 |] in
  let frame =
    Codec.encode ~algo:tag
      (Codec.Deliver { src = 1; state = nb_bytes; clock = fclock })
  in
  send (Codec.Deliver { src = 1; state = nb_bytes; clock = fclock });
  (match recv () with
   | Codec.Delivered -> ()
   | _ -> Alcotest.fail "v1 deliver still works");
  Net.Wire.write fd (Codec.corrupt_body rng frame);
  (match recv () with
   | Codec.Decode_error _ -> ()
   | _ -> Alcotest.fail "corrupt frame must be a decode error");
  send Codec.Bye;
  (match recv () with
   | Codec.Bye_ack { decode_errors; _ } ->
     (* resyncs were transient faults, not decode errors *)
     check_int "only the corrupt frame counted" 1 decode_errors
   | _ -> Alcotest.fail "expected Bye_ack");
  Net.Spawn.shutdown nodes

let suite =
  [ ( "packed",
      [ Alcotest.test_case "driver parity on single2 (all modes)" `Quick
          test_driver_parity_single2;
        Alcotest.test_case "driver parity on line3" `Slow
          test_driver_parity_line3;
        Alcotest.test_case "capped tables fall back soundly" `Slow
          test_driver_parity_capped_fallback;
        Alcotest.test_case "mp parity (all algorithms)" `Quick test_mp_parity;
        Alcotest.test_case "mp parity on line3" `Slow test_mp_parity_line3;
        Alcotest.test_case "net wire parity, zero faults" `Quick
          test_net_parity_zero_fault;
        Alcotest.test_case "net wire parity, faulty soak" `Slow
          test_net_parity_faulty_soak;
        Alcotest.test_case "delta roundtrip" `Quick test_delta_roundtrip;
        Alcotest.test_case "delta roundtrip over mc state domains" `Quick
          test_delta_roundtrip_domain_states;
        Alcotest.test_case "delta rejects corruption" `Quick
          test_delta_rejects_corruption;
        Alcotest.test_case "node resync discipline" `Quick
          test_node_resync_protocol ] ) ]
