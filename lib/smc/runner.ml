(* Orchestration: resolve the algorithm to a typed trial function (with
   optional packed-table hooks), run the trials — in one shot, or in
   fixed-size batches under SPRT — through the worker pool, emit the
   telemetry stream, build the report.

   Worker-count independence is arranged here once and relied on
   everywhere: the packed tables are built in the parent (workers inherit
   them through fork), trial records come back in index order from the
   pool, the SPRT consumes them in index order in batches whose size
   never depends on the worker count, and telemetry is emitted only by
   the parent after the records are merged. *)

module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Tele = Snapcc_telemetry
module X = Snapcc_experiments.Algos

type cfg = {
  algo : string;
  topo_name : string;
  topo : H.t;
  daemon : string;
  workload : string;
  disc : int;
  budget : int;
  trials : int;
  workers : int;
  seed : int;
  confidence : float;
  engine : [ `Packed | `Closure ];
  sprt : float option;
  sprt_delta : float;
  sprt_within : int option;
}

let algo_names =
  [ "cc1"; "cc2"; "cc3"; "cc1-vring"; "cc2-vring"; "cc3-vring" ]

module Cursor_off = struct
  let cursor = false
end

module Cursor_on = struct
  let cursor = true
end

module Sys_cc1 = Snapcc_mc.Systems.Cc1_sys (Snapcc_token.Token_tree) (X.Cc1)
module Sys_cc2 =
  Snapcc_mc.Systems.Cc23_sys (Snapcc_token.Token_tree) (X.Cc2) (Cursor_off)
module Sys_cc3 =
  Snapcc_mc.Systems.Cc23_sys (Snapcc_token.Token_tree) (X.Cc3) (Cursor_on)
module Sys_cc1v =
  Snapcc_mc.Systems.Cc1_sys (Snapcc_token.Token_vring) (X.Cc1_vring)
module Sys_cc2v =
  Snapcc_mc.Systems.Cc23_sys (Snapcc_token.Token_vring) (X.Cc2_vring)
    (Cursor_off)
module Sys_cc3v =
  Snapcc_mc.Systems.Cc23_sys (Snapcc_token.Token_vring) (X.Cc3_vring)
    (Cursor_on)
module Pk_cc1 = Snapcc_mc.Packed.Make (Sys_cc1)
module Pk_cc2 = Snapcc_mc.Packed.Make (Sys_cc2)
module Pk_cc3 = Snapcc_mc.Packed.Make (Sys_cc3)
module Pk_cc1v = Snapcc_mc.Packed.Make (Sys_cc1v)
module Pk_cc2v = Snapcc_mc.Packed.Make (Sys_cc2v)
module Pk_cc3v = Snapcc_mc.Packed.Make (Sys_cc3v)

(* Same startup budget as the interactive commands: a process whose
   footprint-cell count exceeds this is served by the guard closures
   (trace-identical either way). *)
let pack_cap = 1 lsl 20

module Mk (A : Model.ALGO) = struct
  module T = Trial.Of (A)

  let fn ?packed cfg i =
    T.run ?packed ~seed:cfg.seed ~budget:cfg.budget ~daemon:cfg.daemon
      ~workload:cfg.workload ~disc:cfg.disc cfg.topo ~trial:i
end

module F_cc1 = Mk (X.Cc1)
module F_cc2 = Mk (X.Cc2)
module F_cc3 = Mk (X.Cc3)
module F_cc1v = Mk (X.Cc1_vring)
module F_cc2v = Mk (X.Cc2_vring)
module F_cc3v = Mk (X.Cc3_vring)

(* Tables are built here, in the parent, so forked workers inherit them
   instead of re-enumerating per worker.  The tables only support
   topologies whose configurations bit-pack (<= 16 processes); beyond
   that the build raises and we transparently keep the guard closures,
   which are trace-identical. *)
let try_pack packed build =
  if not packed then None else try Some (build ()) with Failure _ -> None

let trial_fn cfg =
  let packed = cfg.engine = `Packed in
  match cfg.algo with
  | "cc1" ->
    let pk =
      try_pack packed (fun () ->
          Pk_cc1.hooks (Pk_cc1.build ~cap:pack_cap cfg.topo))
    in
    Ok (F_cc1.fn ?packed:pk cfg)
  | "cc2" ->
    let pk =
      try_pack packed (fun () ->
          Pk_cc2.hooks (Pk_cc2.build ~cap:pack_cap cfg.topo))
    in
    Ok (F_cc2.fn ?packed:pk cfg)
  | "cc3" ->
    let pk =
      try_pack packed (fun () ->
          Pk_cc3.hooks (Pk_cc3.build ~cap:pack_cap cfg.topo))
    in
    Ok (F_cc3.fn ?packed:pk cfg)
  | "cc1-vring" ->
    let pk =
      try_pack packed (fun () ->
          Pk_cc1v.hooks (Pk_cc1v.build ~cap:pack_cap cfg.topo))
    in
    Ok (F_cc1v.fn ?packed:pk cfg)
  | "cc2-vring" ->
    let pk =
      try_pack packed (fun () ->
          Pk_cc2v.hooks (Pk_cc2v.build ~cap:pack_cap cfg.topo))
    in
    Ok (F_cc2v.fn ?packed:pk cfg)
  | "cc3-vring" ->
    let pk =
      try_pack packed (fun () ->
          Pk_cc3v.hooks (Pk_cc3v.build ~cap:pack_cap cfg.topo))
    in
    Ok (F_cc3v.fn ?packed:pk cfg)
  | a ->
    Error
      (Printf.sprintf "smc supports %s, not %S"
         (String.concat "|" algo_names) a)

let validate cfg =
  if not (List.mem cfg.daemon ("sync" :: Trial.daemon_names)) then
    Error (Printf.sprintf "unknown daemon %S" cfg.daemon)
  else if not (List.mem cfg.workload Trial.workload_names) then
    Error (Printf.sprintf "unknown workload %S" cfg.workload)
  else Ok ()

(* Batch size for SPRT mode: the pool is invoked on fixed-size blocks of
   the trial index space, so the set of executed trials — and therefore
   the number the test consumed — is independent of the worker count. *)
let sprt_batch = 128

let collect cfg f =
  match cfg.sprt with
  | None ->
    (Pool.run ~workers:cfg.workers ~offset:0 ~count:cfg.trials f, None)
  | Some theta ->
    let spec =
      { Sprt.theta;
        delta = cfg.sprt_delta;
        alpha = 1. -. cfg.confidence;
        beta = 1. -. cfg.confidence }
    in
    let t = Sprt.create spec in
    let within = Option.value cfg.sprt_within ~default:cfg.budget in
    let success r =
      match r.Trial.stabilized with Some s -> s <= within | None -> false
    in
    let acc = ref [] in
    let off = ref 0 in
    while Sprt.verdict t = Sprt.Undecided && !off < cfg.trials do
      let n = min sprt_batch (cfg.trials - !off) in
      let rs = Pool.run ~workers:cfg.workers ~offset:!off ~count:n f in
      List.iter (fun r -> Sprt.feed t (success r)) rs;
      acc := rs :: !acc;
      off := !off + n
    done;
    (List.concat (List.rev !acc), Some (Sprt.outcome t))

let emit_telemetry hub cfg records =
  Tele.Hub.emit hub
    (Tele.Event.Run_start
       { algo = cfg.algo;
         daemon = cfg.daemon;
         workload = cfg.workload;
         seed = cfg.seed;
         n = H.n cfg.topo;
         m = H.m cfg.topo;
         topo = Snapcc_hypergraph.Hypergraph_io.to_string cfg.topo });
  List.iter
    (fun r ->
      Tele.Hub.emit hub
        (Tele.Event.Smc_trial
           { trial = r.Trial.trial;
             seed = r.Trial.seed;
             stabilized = r.Trial.stabilized;
             convenes = r.Trial.convenes;
             violations = r.Trial.violations;
             deadlocked = r.Trial.deadlocked;
             steps = r.Trial.steps }))
    records;
  Tele.Hub.emit hub
    (Tele.Event.Run_end
       { outcome = "smc"; steps = List.length records; rounds = 0 })

let run ?telemetry cfg =
  match validate cfg with
  | Error _ as e -> e
  | Ok () -> (
    match trial_fn cfg with
    | Error _ as e -> e
    | Ok f ->
      let records, sprt = collect cfg f in
      Option.iter (fun hub -> emit_telemetry hub cfg records) telemetry;
      Ok
        (Report.build ~algo:cfg.algo ~topo:cfg.topo_name ~daemon:cfg.daemon
           ~workload:cfg.workload ~disc:cfg.disc ~budget:cfg.budget
           ~seed:cfg.seed ~confidence:cfg.confidence ?sprt records))
