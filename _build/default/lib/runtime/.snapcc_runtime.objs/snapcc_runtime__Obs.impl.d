lib/runtime/obs.ml: Array Format Fun List Printf Snapcc_hypergraph
