module H = Snapcc_hypergraph.Hypergraph

type entry = {
  step : int;
  executed : (int * string) list;
  obs : Obs.t array;
  fault : bool;
}

type t = {
  h : H.t;
  initial : Obs.t array;
  mutable rev_entries : entry list;
  mutable count : int;
}

let create h ~initial = { h; initial; rev_entries = []; count = 0 }

let record t (report : Model.step_report) obs =
  t.rev_entries <-
    { step = report.Model.step; executed = report.Model.executed; obs;
      fault = false }
    :: t.rev_entries;
  t.count <- t.count + 1

let record_fault t ~step obs =
  t.rev_entries <- { step; executed = []; obs; fault = true } :: t.rev_entries;
  t.count <- t.count + 1

let initial t = t.initial
let entries t = List.rev t.rev_entries
let length t = t.count

let final t =
  match t.rev_entries with [] -> t.initial | e :: _ -> e.obs

(* Fault entries are configuration jumps, not algorithm steps: they reset
   the comparison baseline without forming a transition, so a meeting
   materialized by corruption is never reported as a convene (and one
   destroyed by corruption never as a termination). *)
let transitions t =
  let rec go prev acc = function
    | [] -> List.rev acc
    | e :: rest ->
      if e.fault then go e.obs acc rest
      else go e.obs ((e.step, prev, e.obs) :: acc) rest
  in
  go t.initial [] (entries t)

let convened t =
  List.concat_map
    (fun (step, before, after) ->
      List.filter_map
        (fun eid ->
          if (not (Obs.meets t.h before eid)) && Obs.meets t.h after eid then
            Some (step, eid)
          else None)
        (List.init (H.m t.h) Fun.id))
    (transitions t)

let terminated t =
  List.concat_map
    (fun (step, before, after) ->
      List.filter_map
        (fun eid ->
          if Obs.meets t.h before eid && not (Obs.meets t.h after eid) then
            Some (step, eid)
          else None)
        (List.init (H.m t.h) Fun.id))
    (transitions t)

let pp_timeline ?(width = 64) ppf t =
  let entries = entries t in
  let total = max 1 (List.length entries) in
  let width = min width total in
  let buckets = Array.make_matrix (H.m t.h) width false in
  List.iteri
    (fun i e ->
      let col = i * width / total in
      List.iter
        (fun eid -> buckets.(eid).(col) <- true)
        (Obs.meetings t.h e.obs))
    entries;
  Format.fprintf ppf "@[<v>";
  let label_width =
    List.fold_left max 0
      (List.init (H.m t.h) (fun e ->
           String.length (Format.asprintf "%a" (H.pp_edge t.h) e)))
  in
  for e = 0 to H.m t.h - 1 do
    let label = Format.asprintf "%a" (H.pp_edge t.h) e in
    let pad = String.make (label_width - String.length label) ' ' in
    let row =
      String.init width (fun c -> if buckets.(e).(c) then '#' else '.')
    in
    Format.fprintf ppf "%s%s  %s" label pad row;
    if e < H.m t.h - 1 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>initial:@,%a@," (Obs.pp_snapshot t.h) t.initial;
  List.iter
    (fun e ->
      if e.fault then
        Format.fprintf ppf "fault before step %d:@,%a@," e.step
          (Obs.pp_snapshot t.h) e.obs
      else
        Format.fprintf ppf "step %d: %s@,%a@," e.step
          (String.concat ", "
             (List.map (fun (p, l) -> Printf.sprintf "%d:%s" (H.id t.h p) l) e.executed))
          (Obs.pp_snapshot t.h) e.obs)
    (entries t);
  Format.fprintf ppf "@]"
