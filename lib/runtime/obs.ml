module H = Snapcc_hypergraph.Hypergraph

type status = Idle | Looking | Waiting | Done

type t = {
  status : status;
  pointer : int option;
  token_flag : bool;
  locked : bool;
  has_token : bool;
  discussions : int;
}

let make ?(pointer = None) ?(token_flag = false) ?(locked = false)
    ?(has_token = false) ?(discussions = 0) status =
  { status; pointer; token_flag; locked; has_token; discussions }

(* Dense packing of everything but [discussions] (which is unbounded):
   2 status bits, 3 flag bits, then the pointer biased by one.  The causal
   tracing layer ships observations as [(code, discussions)] pairs on Clock
   events; [of_code] is its exact inverse. *)
let status_code = function Idle -> 0 | Looking -> 1 | Waiting -> 2 | Done -> 3

let code o =
  status_code o.status
  lor (if o.token_flag then 4 else 0)
  lor (if o.locked then 8 else 0)
  lor (if o.has_token then 16 else 0)
  lor ((match o.pointer with None -> 0 | Some e -> e + 1) lsl 5)

let of_code ~code ~discussions =
  {
    status =
      (match code land 3 with
       | 0 -> Idle
       | 1 -> Looking
       | 2 -> Waiting
       | _ -> Done);
    token_flag = code land 4 <> 0;
    locked = code land 8 <> 0;
    has_token = code land 16 <> 0;
    pointer = (match code lsr 5 with 0 -> None | e -> Some (e - 1));
    discussions;
  }

let equal a b =
  a.status = b.status && a.pointer = b.pointer && a.token_flag = b.token_flag
  && a.locked = b.locked && a.has_token = b.has_token
  && a.discussions = b.discussions

let pp_status ppf s =
  Format.pp_print_string ppf
    (match s with
     | Idle -> "idle"
     | Looking -> "looking"
     | Waiting -> "waiting"
     | Done -> "done")

let pp ppf o =
  Format.fprintf ppf "%a%s%s%s%s" pp_status o.status
    (match o.pointer with None -> "" | Some e -> Printf.sprintf " ->e%d" e)
    (if o.token_flag then " T" else "")
    (if o.locked then " L" else "")
    (if o.has_token then " (token)" else "")

let is_waiting o = match o.status with Looking | Waiting -> true | Idle | Done -> false

let attends obs ~vertex ~eid =
  is_waiting obs.(vertex) && obs.(vertex).pointer = Some eid

let meets h obs eid =
  Array.for_all
    (fun q ->
      obs.(q).pointer = Some eid
      && (match obs.(q).status with Waiting | Done -> true | Idle | Looking -> false))
    (H.edge_members h eid)

let meetings h obs =
  List.filter (meets h obs) (List.init (H.m h) Fun.id)

let participants h obs =
  let in_meeting = Array.make (Array.length obs) false in
  List.iter
    (fun eid -> Array.iter (fun q -> in_meeting.(q) <- true) (H.edge_members h eid))
    (meetings h obs);
  List.filter (Array.get in_meeting) (List.init (Array.length obs) Fun.id)

let pp_snapshot h ppf obs =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun v o ->
      Format.fprintf ppf "prof %2d: %a" (H.id h v) pp o;
      (match o.pointer with
       | Some e when e >= 0 && e < H.m h ->
         Format.fprintf ppf " %a" (H.pp_edge h) e
       | Some _ | None -> ());
      if v < Array.length obs - 1 then Format.pp_print_cut ppf ())
    obs;
  Format.fprintf ppf "@]"
