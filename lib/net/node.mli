(** The node runtime: one paper process as one OS process.

    A node owns exactly the per-process half of the state-dissemination
    transformation — its true core plus the per-neighbor cache, evaluated
    through {!Snapcc_mp.Mp_view} — and speaks the {!Codec} protocol over a
    single descriptor to the orchestrator.  It sends [Hello], waits for
    [Init] (whose frame tag selects the algorithm), replies [Ready], and
    then serves [Activate]/[Deliver]/[Corrupt] requests until [Bye].

    Strictness as fault tolerance: a frame that fails {!Codec.decode} is
    answered with [Decode_error] and otherwise ignored — the snapshot it
    carried is simply lost, which the transformation already tolerates
    (caches are refreshed by later re-broadcasts).  The node never crashes
    on malformed input. *)

val serve : id:int -> Unix.file_descr -> unit
(** Run the node protocol to completion ([Bye] or orchestrator
    disconnect).  Does not close the descriptor. *)
