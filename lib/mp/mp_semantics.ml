module H = Snapcc_hypergraph.Hypergraph

type decision =
  | Activate of int
  | Deliver of int * int

type t = {
  n : int;
  rng : Random.State.t;
  deliver_bias : float;
  idle_for : int array;  (* activation starvation counter per process *)
  cache_age : int array array;  (* steps since cache.(p).(i) was refreshed *)
  mutable steps : int;
  mutable worst_staleness : int;
}

let create ?(deliver_bias = 0.5) ~seed h =
  let n = H.n h in
  {
    n;
    (* the historical seeding vector of Mp_engine — part of the shared
       semantics, since replaying a run means replaying these draws *)
    rng = Random.State.make [| seed; n; 0x3b |];
    deliver_bias;
    idle_for = Array.make n 0;
    cache_age = Array.init n (fun p -> Array.make (H.graph_degree h p) 0);
    steps = 0;
    worst_staleness = 0;
  }

let rng t = t.rng
let steps t = t.steps
let max_staleness t = t.worst_staleness
let fairness_bound t = 16 * t.n

let begin_step t =
  t.steps <- t.steps + 1;
  Array.iter
    (fun row ->
      Array.iteri
        (fun i _ ->
          row.(i) <- row.(i) + 1;
          if row.(i) > t.worst_staleness then t.worst_staleness <- row.(i))
        row)
    t.cache_age;
  for p = 0 to t.n - 1 do
    t.idle_for.(p) <- t.idle_for.(p) + 1
  done

let decide t ~pending =
  let bound = fairness_bound t in
  (* forced events first: the lowest starving process, else the greatest
     stale pending link ([pending] is descending, so the first match) *)
  let starving = ref None in
  for p = t.n - 1 downto 0 do
    if t.idle_for.(p) >= bound then starving := Some p
  done;
  match !starving with
  | Some p -> Activate p
  | None -> (
    match
      List.find_opt (fun (p, i) -> t.cache_age.(p).(i) >= bound) pending
    with
    | Some (p, i) -> Deliver (p, i)
    | None ->
      if pending <> [] && Random.State.float t.rng 1.0 < t.deliver_bias then begin
        let p, i =
          List.nth pending (Random.State.int t.rng (List.length pending))
        in
        Deliver (p, i)
      end
      else Activate (Random.State.int t.rng t.n))

(* Same decision function over a packed pending set: [masks.(p)] holds one
   bit per slot of [p]'s neighbor array, [count] the total number of set
   bits.  Draw-for-draw identical to {!decide} on the list [Mp_engine]
   builds (descending lexicographic): the stale scan walks (p, slot)
   descending, and the uniform pick at rank [k] of the descending list is
   the element at ascending rank [count - 1 - k].  No allocation. *)
exception Found of int * int

let decide_masks t ~masks ~count =
  let bound = fairness_bound t in
  let starving = ref None in
  for p = t.n - 1 downto 0 do
    if t.idle_for.(p) >= bound then starving := Some p
  done;
  match !starving with
  | Some p -> Activate p
  | None -> (
    match
      for p = t.n - 1 downto 0 do
        let m = masks.(p) in
        if m <> 0 then
          for i = Array.length t.cache_age.(p) - 1 downto 0 do
            if m land (1 lsl i) <> 0 && t.cache_age.(p).(i) >= bound then
              raise (Found (p, i))
          done
      done
    with
    | exception Found (p, i) -> Deliver (p, i)
    | () ->
      if count > 0 && Random.State.float t.rng 1.0 < t.deliver_bias then begin
        let k = Random.State.int t.rng count in
        let rank = ref (count - 1 - k) in
        match
          for p = 0 to t.n - 1 do
            let m = ref masks.(p) in
            while !m <> 0 do
              let i = !m land - !m in
              (* lowest set bit, as a power of two *)
              let slot =
                let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
                log2 i 0
              in
              if !rank = 0 then raise (Found (p, slot));
              decr rank;
              m := !m land (!m - 1)
            done
          done
        with
        | exception Found (p, i) -> Deliver (p, i)
        | () -> invalid_arg "Mp_semantics.decide_masks: count exceeds masks"
      end
      else Activate (Random.State.int t.rng t.n))

let on_activated t p = t.idle_for.(p) <- 0
let on_cache_refresh t ~dst ~slot = t.cache_age.(dst).(slot) <- 0
