(** EXP-T2/T3 — Theorems 2 & 3: snap-stabilization.

    Every run starts from an {e arbitrary} configuration (both the CC and
    the token layers randomized) and suffers an additional mid-run transient
    fault; the specification monitor judges every meeting that convenes.
    Snap-stabilization means {e zero} violations — no warm-up allowance —
    plus liveness (meetings keep convening, and for CC2/CC3 every professor
    keeps participating).  The baselines run under the same regime to show
    they are {e not} snap-stabilizing (or rely on a clean start). *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Workload = Snapcc_workload.Workload

type algo_result = {
  label : string;
  runs : int;
  convenes : int;
  violations : int;
  starving : int;  (** runs leaving some professor unserved (always-requesting) *)
}

type result = algo_result list

let topologies ~quick () =
  if quick then [ Families.fig1 (); Families.pair_ring 5 ]
  else
    [ Families.fig1 (); Families.fig2 (); Families.fig4 ();
      Families.pair_ring 6; Families.k_uniform_ring ~n:7 ~k:3;
      Families.random ~seed:5 ~n:10 ~m:8 ();
      Families.with_shuffled_ids ~seed:9 (Families.fig1 ());
    ]

let measure ~quick (runner : Algos.runner) =
  let daemons = Exp_common.daemons_for_sweep ~quick () in
  let seeds = Exp_common.seeds ~quick in
  let steps = if quick then 4_000 else 9_000 in
  let acc = ref { label = runner.Algos.label; runs = 0; convenes = 0; violations = 0; starving = 0 } in
  List.iter
    (fun h ->
      List.iter
        (fun daemon ->
          List.iter
            (fun seed ->
              let n = H.n h in
              (* one mid-run burst of transient faults hitting a third of
                 the processes *)
              let faults ~step =
                if step = steps / 2 then List.init (max 1 (n / 3)) (fun i -> (i * 3) mod n)
                else []
              in
              let r =
                runner.Algos.run ~seed ~init:`Random ~faults ~daemon
                  ~workload:(Workload.always_requesting h) ~steps h
              in
              let starved =
                Array.exists (fun c -> c = 0) r.Driver.participations
              in
              acc :=
                { !acc with
                  runs = !acc.runs + 1;
                  convenes =
                    !acc.convenes + r.Driver.summary.Snapcc_analysis.Metrics.convenes;
                  violations = !acc.violations + List.length r.Driver.violations;
                  starving = (!acc.starving + if starved then 1 else 0);
                })
            seeds)
        daemons)
    (topologies ~quick ());
  !acc

let run ?(quick = false) () : result =
  List.map (measure ~quick) (Algos.all_algorithms ())

let table (r : result) =
  {
    Table.id = "thm23-snap";
    title =
      "Snap-stabilization grid: arbitrary initial configurations + mid-run \
       transient faults, specification monitored throughout";
    header = [ "algorithm"; "runs"; "convenes"; "violations"; "runs w/ starving prof" ];
    rows =
      List.map
        (fun a ->
          [ a.label; Table.i a.runs; Table.i a.convenes; Table.i a.violations;
            Table.i a.starving ])
        r;
    notes =
      [ "CC1/CC2/CC3 must show 0 violations (Theorems 2-3); CC1 may starve \
         professors (it is unfair by design), CC2/CC3 must not.";
        "token-only / dining / central are the related-work baselines: any \
         violations or starvation here illustrate what snap-stabilization \
         and fairness add.";
      ];
  }

let find label (r : result) = List.find (fun a -> a.label = label) r

let ok (r : result) =
  List.for_all
    (fun lbl -> (find lbl r).violations = 0)
    [ "CC1"; "CC2"; "CC3" ]
  && (find "CC2" r).starving = 0
  && (find "CC3" r).starving = 0
  && (find "CC1" r).convenes > 0
