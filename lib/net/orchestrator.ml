module H = Snapcc_hypergraph.Hypergraph
module HIO = Snapcc_hypergraph.Hypergraph_io
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
module Spec = Snapcc_analysis.Spec
module Metrics = Snapcc_analysis.Metrics
module Workload = Snapcc_workload.Workload
module Tele = Snapcc_telemetry
module Vclock = Snapcc_telemetry.Vclock
module Sem = Snapcc_mp.Mp_semantics

type config = {
  algo : string;
  seed : int;
  init : [ `Canonical | `Random ];
  deliver_bias : float;
  steps : int;
  plan : Faults.plan;
  burst : int option;
  engine : [ `Packed | `Closure ];
}

(* How many consecutive deltas a link may send before it must refresh the
   receiver with a full snapshot (bounds resynchronization time after any
   undetected divergence). *)
let keyframe_interval = 16

type result = {
  steps : int;
  convenes : int;
  terminations : int;
  violations : Spec.violation list;
  sent : int;
  delivered : int;
  dropped : int;
  malformed : int;
  resyncs : int;
  bytes_sent : int;
  bytes_delivered : int;
  in_flight : int;
  max_staleness : int;
  latencies_us : int list;
  burst_step : int option;
  recover_step : int option;
  stabilized_in : int option;
  node_frames : int;
  node_decode_errors : int;
  wall_s : float;
  final_obs : Obs.t array;
}

let fail fmt = Printf.ksprintf failwith fmt

module Make (A : Model.ALGO) = struct
  let marshal (v : A.state) = Marshal.to_string v []

  (* per-link sender state of the packed wire format: the last payload
     the receiver acknowledged (the delta base), and the keyframe
     counter *)
  type lstate = {
    mutable acked : (int * int * string * Vclock.t) option;
        (* seq, form, payload, and the clock accepted with that seq — the
           base for delta-form clock trailers *)
    mutable since_key : int;
    mutable next_seq : int;
  }

  let le64 id =
    String.init 8 (fun k -> Char.chr ((id lsr (8 * k)) land 0xff))

  let go ?telemetry ~mode ~workload ~tag ~(coder : Net_algos.coder option)
      (cfg : config) h =
    let t0 = Unix.gettimeofday () in
    let n = H.n h in
    let plan = cfg.plan in
    let sem = Sem.create ~deliver_bias:cfg.deliver_bias ~seed:cfg.seed h in
    let rng = Sem.rng sem in
    (* Initial cores, caches and in-flight messages: drawn from the
       scheduler's generator in exactly [Mp_engine.create]'s order, so a
       fault-free run replays the mp run of the same seed. *)
    let mk p =
      match cfg.init with
      | `Canonical -> A.init h p
      | `Random -> A.random_init h rng p
    in
    let states = Array.init n mk in
    let caches =
      Array.init n (fun p ->
          Array.map
            (fun q ->
              match cfg.init with
              | `Canonical -> states.(q)
              | `Random -> A.random_init h rng q)
            (H.neighbors h p))
    in
    let chan0 =
      Array.init n (fun p ->
          Array.map
            (fun q ->
              match cfg.init with
              | `Canonical -> None
              | `Random ->
                if Random.State.bool rng then Some (A.random_init h rng q)
                else None)
            (H.neighbors h p))
    in
    (* The orchestrator's mirror of every node's vector clock, maintained
       tick-for-tick with the node side (own component = 1 at init, tick on
       acting activation and corruption, merge + tick on accepted delivery)
       and cross-checked against each [Activated] echo.  Purely
       observational — no rng draws, so stamping never shifts the
       schedule. *)
    let clocks =
      Array.init n (fun p ->
          let c = Vclock.create n in
          Vclock.tick c p;
          c)
    in
    (* links.(dst).(slot) carries snapshots from [neighbors dst].(slot). *)
    let links =
      Array.init n (fun dst ->
          Array.map
            (fun src -> Link.create ~src ~dst ~seed:cfg.seed)
            (H.neighbors h dst))
    in
    Array.iteri
      (fun dst row ->
        Array.iteri
          (fun slot m ->
            match m with
            | Some st ->
              let link = links.(dst).(slot) in
              (* randomly preloaded snapshots carry the sender's initial
                 clock, like [Mp_engine]'s channel preloads *)
              Link.preload link ~step:0 ~state:(marshal st)
                ~clock:(Vclock.copy clocks.(Link.src link))
            | None -> ())
          row)
      chan0;
    (* byte-flips of frames marked corrupt by a link; separate generator so
       the corruption rate does not shift the scheduler's draws *)
    let frame_rng = Random.State.make [| cfg.seed; 0xf17 |] in
    let slot_of dst src =
      let nb = H.neighbors h dst in
      let rec scan i =
        if i >= Array.length nb then fail "net: %d is not a neighbor of %d" src dst
        else if nb.(i) = src then i
        else scan (i + 1)
      in
      scan 0
    in
    let emit ev =
      match telemetry with Some hub -> Tele.Hub.emit hub ev | None -> ()
    in
    let lstates =
      Array.init n (fun dst ->
          Array.map
            (fun _ -> { acked = None; since_key = 0; next_seq = 0 })
            (H.neighbors h dst))
    in
    (* counters *)
    let sent = ref 0 in
    let delivered = ref 0 in
    let dropped = ref 0 in
    let malformed = ref 0 in
    let resyncs = ref 0 in
    let bytes_sent = ref 0 in
    let bytes_delivered = ref 0 in
    let terminations = ref 0 in
    let rev_latencies = ref [] in
    let recover = ref None in
    let burst_done = ref false in
    let nodes = Spawn.launch mode ~n in
    let cleanup_on_error () =
      Spawn.kill nodes;
      Spawn.shutdown nodes
    in
    try
      let send p msg = Wire.write nodes.(p).Spawn.fd (Codec.encode ~algo:tag msg) in
      let send_raw p body = Wire.write nodes.(p).Spawn.fd body in
      let recv p =
        match Wire.read nodes.(p).Spawn.fd with
        | Error `Eof -> fail "net: node %d died" p
        | Error (`Oversized len) ->
          fail "net: oversized frame from node %d (%d bytes)" p len
        | Ok body -> (
          match Codec.decode ~expect:tag body with
          | Ok (_, msg) -> msg
          | Error e ->
            fail "net: bad frame from node %d: %s" p (Codec.error_to_string e))
      in
      let topo = HIO.to_string h in
      Array.iteri
        (fun p st ->
          send p
            (Codec.Init
               { seed = cfg.seed; topo; core = marshal st;
                 cache = Marshal.to_string caches.(p) [] }))
        states;
      Array.iteri
        (fun p _ ->
          match recv p with
          | Codec.Ready -> ()
          | _ -> fail "net: node %d: expected ready" p)
        nodes;
      emit
        (Tele.Event.Run_start
           { algo = A.name; daemon = "net-scheduler";
             workload = Workload.name workload; seed = cfg.seed; n;
             m = H.m h; topo });
      let obs () = Array.init n (A.observe h states) in
      let emit_clock ~k p =
        let o = A.observe h states p in
        emit
          (Tele.Event.Clock
             { step = Sem.steps sem; p; k;
               clock = Vclock.to_list clocks.(p);
               obs_code = Obs.code o; disc = o.Obs.discussions })
      in
      (* initial configurations are events too — same stream prefix as
         [Mp_engine]'s lazy init flush *)
      for p = 0 to n - 1 do
        emit_clock ~k:Tele.Event.clock_init p
      done;
      let before = ref (obs ()) in
      let spec = Spec.create ?telemetry h ~initial:!before in
      let metrics = Metrics.create ?telemetry h ~initial:!before in
      let broadcast p =
        let snapshot = marshal states.(p) in
        (* one shared copy per broadcast: link entries never mutate it *)
        let clock = Vclock.copy clocks.(p) in
        let bytes = String.length snapshot in
        let now = Unix.gettimeofday () in
        Array.iter
          (fun q ->
            let step = Sem.steps sem in
            emit (Tele.Event.Net_sent { step; src = p; dst = q; bytes });
            incr sent;
            bytes_sent := !bytes_sent + bytes;
            if Faults.partitioned plan ~step:(step - 1) ~n ~src:p ~dst:q then begin
              emit
                (Tele.Event.Net_dropped
                   { step; src = p; dst = q; reason = "partition" });
              incr dropped
            end
            else begin
              let link = links.(q).(slot_of q p) in
              let r =
                Link.send link ~plan ~step:(step - 1) ~now ~state:snapshot
                  ~clock
              in
              if r.Link.copies = 0 then begin
                emit
                  (Tele.Event.Net_dropped
                     { step; src = p; dst = q; reason = "drop" });
                incr dropped
              end;
              for _ = 1 to r.Link.evicted do
                emit
                  (Tele.Event.Net_dropped
                     { step; src = p; dst = q; reason = "overflow" });
                incr dropped
              done
            end)
          (H.neighbors h p)
      in
      let activate p ~req_in ~req_out =
        send p (Codec.Activate { step = Sem.steps sem; req_in; req_out });
        match recv p with
        | Codec.Activated { label; core; clock } ->
          states.(p) <- (Marshal.from_string core 0 : A.state);
          (* tick before broadcasting (the snapshot causally includes the
             activation), then cross-check the node's echoed clock against
             the mirror: a mismatch is a protocol bug, not a fault *)
          if label <> None then Vclock.tick clocks.(p) p;
          (match Vclock.decode_full clock with
           | Some c when c = clocks.(p) -> ()
           | Some c ->
             fail "net: node %d clock skew: node %s, mirror %s" p
               (Vclock.to_string c)
               (Vclock.to_string clocks.(p))
           | None -> fail "net: node %d: bad clock echo" p);
          broadcast p;
          Sem.on_activated sem p;
          emit (Tele.Event.Mp_activated { step = Sem.steps sem; p; label });
          if label <> None then emit_clock ~k:Tele.Event.clock_activation p
        | _ -> fail "net: node %d: expected activated" p
      in
      (* Snapshot frame for one delivery under the packed wire format:
         prefer a delta against the link's acknowledged base, fall back
         to a full frame (first contact, form change, keyframe due, or
         the delta would not be smaller).  Returns the frame and its
         snapshot-payload wire cost. *)
      let packed_frame coder lst ~src e =
        let seq = lst.next_seq in
        lst.next_seq <- seq + 1;
        let form, payload =
          match coder.Net_algos.to_id ~proc:src e.Link.state with
          | Some id -> (1, le64 id)
          | None -> (0, e.Link.state)
        in
        let full =
          (Codec.Deliver_full
             { src; seq; form; payload;
               clock = Vclock.encode_wire e.Link.clock },
           1 + String.length payload)
        in
        let frame =
          match lst.acked with
          | Some (base_seq, bform, bpay, bclk)
            when bform = form && lst.since_key < keyframe_interval -> (
            match Delta.encode ~base:bpay ~target:payload with
            | Some d when String.length d < 1 + String.length payload ->
              (Codec.Deliver_delta
                 { src; seq; base_seq; delta = d;
                   clock = Vclock.encode_wire ~base:bclk e.Link.clock },
               String.length d)
            | _ -> full
          )
          | _ -> full
        in
        (frame, seq, form, payload)
      in
      let deliver p slot =
        let link = links.(p).(slot) in
        let src = Link.src link in
        let step = Sem.steps sem in
        match Link.pop link ~plan ~step:(step - 1) with
        | None -> fail "net: deliver decision on an empty link %d.%d" p slot
        | Some e ->
          let finish bytes =
            Sem.on_cache_refresh sem ~dst:p ~slot;
            incr delivered;
            bytes_delivered := !bytes_delivered + bytes;
            let latency_us =
              int_of_float ((Unix.gettimeofday () -. e.Link.sent_at) *. 1e6)
            in
            rev_latencies := latency_us :: !rev_latencies;
            (* mirror the node's acceptance: merge the carried clock, tick
               the receiver *)
            Vclock.merge_into ~into:clocks.(p) e.Link.clock;
            Vclock.tick clocks.(p) p;
            emit (Tele.Event.Mp_delivered { step; dst = p; src });
            emit
              (Tele.Event.Net_delivered
                 { step; src; dst = p; bytes; latency_us });
            emit_clock ~k:Tele.Event.clock_delivery p
          in
          let reject body =
            send_raw p (Codec.corrupt_body frame_rng body);
            (match recv p with
             | Codec.Decode_error _ -> ()
             | _ -> fail "net: node %d accepted a corrupted frame" p);
            emit
              (Tele.Event.Net_dropped
                 { step; src; dst = p; reason = "malformed" });
            incr malformed;
            incr dropped
          in
          (match coder with
           | None ->
             (* version-1 delivery: one full marshalled snapshot *)
             let body =
               Codec.encode ~algo:tag
                 (Codec.Deliver
                    { src; state = e.Link.state;
                      clock = Vclock.encode_full e.Link.clock })
             in
             if e.Link.corrupt then reject body
             else begin
               send_raw p body;
               (match recv p with
                | Codec.Delivered -> ()
                | _ -> fail "net: node %d: expected delivered" p);
               finish (String.length e.Link.state)
             end
           | Some coder ->
             let lst = lstates.(p).(slot) in
             let (msg, wire), seq, form, payload = packed_frame coder lst ~src e in
             if e.Link.corrupt then
               (* the fault injector flips frame bytes; the node's strict
                  decoder must reject it before any delta bookkeeping, so
                  neither side's base moves *)
               reject (Codec.encode ~algo:tag msg)
             else begin
               send_raw p (Codec.encode ~algo:tag msg);
               match recv p with
               | Codec.Delivered ->
                 lst.acked <- Some (seq, form, payload, e.Link.clock);
                 (match msg with
                  | Codec.Deliver_delta _ -> lst.since_key <- lst.since_key + 1
                  | _ -> lst.since_key <- 0);
                 finish wire
               | Codec.Resync _ ->
                 (* the node could not apply the frame (lost base, CRC
                    mismatch, unknown id): a transient fault, answered
                    with a full snapshot — never a wrong state *)
                 incr resyncs;
                 emit
                   (Tele.Event.Net_dropped
                      { step; src; dst = p; reason = "resync" });
                 lst.acked <- None;
                 lst.since_key <- 0;
                 let seq2 = lst.next_seq in
                 lst.next_seq <- seq2 + 1;
                 send_raw p
                   (Codec.encode ~algo:tag
                      (Codec.Deliver_full
                         { src; seq = seq2; form = 0; payload = e.Link.state;
                           clock = Vclock.encode_wire e.Link.clock }));
                 (match recv p with
                  | Codec.Delivered ->
                    lst.acked <- Some (seq2, 0, e.Link.state, e.Link.clock);
                    finish (wire + 1 + String.length e.Link.state)
                  | _ -> fail "net: node %d: expected delivered after resync" p)
               | _ -> fail "net: node %d: expected delivered" p
             end)
      in
      let corruption_burst i =
        let victims = List.init (max 1 (n / 2)) (fun k -> 2 * k mod n) in
        emit (Tele.Event.Fault { step = Sem.steps sem; victims });
        List.iter
          (fun p ->
            (* same draw order as [Mp_engine.corrupt]: core, cache row,
               then in-flight channels *)
            let core = A.random_init h rng p in
            let cache =
              Array.map (fun q -> A.random_init h rng q) (H.neighbors h p)
            in
            states.(p) <- core;
            send p
              (Codec.Corrupt
                 { core = marshal core; cache = Marshal.to_string cache [] });
            (match recv p with
             | Codec.Corrupted -> ()
             | _ -> fail "net: node %d: expected corrupted" p);
            Array.iteri
              (fun slot q ->
                if Random.State.bool rng then
                  (* the adversary forged a snapshot "from q": stamp it
                     with q's current clock so delivery stays causally
                     well-formed *)
                  Link.preload links.(p).(slot) ~step:i
                    ~state:(marshal (A.random_init h rng q))
                    ~clock:(Vclock.copy clocks.(q)))
              (H.neighbors h p);
            Vclock.tick clocks.(p) p;
            emit_clock ~k:Tele.Event.clock_corruption p)
          victims;
        burst_done := true;
        Spec.on_fault spec (obs ());
        before := obs ()
      in
      let pending i =
        let acc = ref [] in
        Array.iteri
          (fun p row ->
            Array.iteri
              (fun slot link ->
                if Link.eligible link ~step:i then acc := (p, slot) :: !acc)
              row)
          links;
        !acc
      in
      for i = 0 to cfg.steps - 1 do
        (match cfg.burst with Some b when b = i -> corruption_burst i | _ -> ());
        let inputs = Workload.inputs workload !before in
        let req_in = Array.init n inputs.Model.request_in in
        let req_out = Array.init n inputs.Model.request_out in
        Sem.begin_step sem;
        (match Sem.decide sem ~pending:(pending i) with
         | Sem.Activate p -> activate p ~req_in ~req_out
         | Sem.Deliver (p, slot) -> deliver p slot);
        let after = obs () in
        Spec.on_step spec ~step:i ~request_out:inputs.Model.request_out
          ~before:!before ~after;
        (* observer-derived events: [Metrics] emits convene / terminate /
           waiting-span events exactly like the in-process driver, so net
           traces aggregate identically; the meeting-set diff stays local
           for the result counters and recovery detection *)
        let mb = Obs.meetings h !before and ma = Obs.meetings h after in
        let fresh = List.filter (fun e -> not (List.mem e mb)) ma in
        let gone = List.filter (fun e -> not (List.mem e ma)) mb in
        terminations := !terminations + List.length gone;
        Metrics.on_step metrics ~step:i ~round:0 ~before:!before ~after;
        (match (fresh, !burst_done, !recover) with
         | eid :: _, true, None ->
           recover := Some i;
           emit (Tele.Event.Recover { step = i; eid })
         | _ -> ());
        Array.iteri
          (fun p (a : Obs.t) ->
            if a.Obs.has_token && not !before.(p).Obs.has_token then
              emit (Tele.Event.Token_handoff { step = i; p }))
          after;
        Workload.observe workload ~step:i after;
        before := after
      done;
      emit
        (Tele.Event.Run_end
           { outcome = "steps_exhausted"; steps = cfg.steps; rounds = 0 });
      let node_frames = ref 0 in
      let node_decode_errors = ref 0 in
      Array.iteri
        (fun p _ ->
          send p Codec.Bye;
          match recv p with
          | Codec.Bye_ack { frames; decode_errors } ->
            node_frames := !node_frames + frames;
            node_decode_errors := !node_decode_errors + decode_errors
          | _ -> fail "net: node %d: expected bye-ack" p)
        nodes;
      Spawn.shutdown nodes;
      let in_flight =
        Array.fold_left
          (fun acc row -> Array.fold_left (fun a l -> a + Link.size l) acc row)
          0 links
      in
      {
        steps = cfg.steps;
        convenes = List.length (Spec.convened spec);
        terminations = !terminations;
        violations = Spec.violations spec;
        sent = !sent;
        delivered = !delivered;
        dropped = !dropped;
        malformed = !malformed;
        resyncs = !resyncs;
        bytes_sent = !bytes_sent;
        bytes_delivered = !bytes_delivered;
        in_flight;
        max_staleness = Sem.max_staleness sem;
        latencies_us = List.rev !rev_latencies;
        burst_step = (if !burst_done then cfg.burst else None);
        recover_step = !recover;
        stabilized_in =
          (match (cfg.burst, !recover) with
           | Some b, Some r when !burst_done -> Some (r - b)
           | _ -> None);
        node_frames = !node_frames;
        node_decode_errors = !node_decode_errors;
        wall_s = Unix.gettimeofday () -. t0;
        final_obs = obs ();
      }
    with e ->
      cleanup_on_error ();
      raise e
end

let run ?telemetry ~mode ~workload (cfg : config) h =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match Net_algos.find cfg.algo with
  | None ->
    Error
      (Printf.sprintf "net supports cc1|cc2|cc3, not %S" cfg.algo)
  | Some entry ->
    let module A = (val entry.Net_algos.algo) in
    let module O = Make (A) in
    let coder =
      match cfg.engine with
      | `Packed -> Some (entry.Net_algos.coder h)
      | `Closure -> None
    in
    Ok (O.go ?telemetry ~mode ~workload ~tag:entry.Net_algos.tag ~coder cfg h)

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%d steps: %d meetings convened, %d terminated, %d violations@,\
     messages: %d sent, %d delivered, %d dropped (%d malformed, %d resyncs), \
     %d in flight@,\
     bytes: %d sent, %d delivered; max staleness %d steps@,\
     nodes: %d frames received, %d decode errors; wall %.3fs"
    r.steps r.convenes r.terminations
    (List.length r.violations)
    r.sent r.delivered r.dropped r.malformed r.resyncs r.in_flight r.bytes_sent
    r.bytes_delivered r.max_staleness r.node_frames r.node_decode_errors
    r.wall_s;
  (match r.burst_step with
   | None -> ()
   | Some b -> (
     Format.fprintf ppf "@,corruption burst at step %d: " b;
     match r.stabilized_in with
     | Some d -> Format.fprintf ppf "stabilized in %d steps" d
     | None -> Format.fprintf ppf "no convene before the horizon"));
  Format.fprintf ppf "@]"
