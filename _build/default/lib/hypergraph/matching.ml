(* Exact matching computations via bitmask backtracking.  Committees are
   bits of an [int]; [conflict.(i)] is the set of committees conflicting
   with [i] (excluding [i]).  All enumeration shares [iter_rec], which walks
   committees in index order and branches take/skip with two prunings:
   - skip is abandoned when no later unblocked committee can conflict with
     the skipped one (maximality would be unreachable);
   - the caller may abort via [prune] when the partial matching can no
     longer improve on its incumbent. *)

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let prepare h =
  let m = Hypergraph.m h in
  if m > 62 then invalid_arg "Matching: more than 62 committees";
  let conflict = Array.make m 0 in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if i <> j && Hypergraph.conflicting h i j then
        conflict.(i) <- conflict.(i) lor (1 lsl j)
    done
  done;
  let full = if m = 0 then 0 else (1 lsl m) - 1 in
  (m, conflict, full)

let above i = -1 lsl (i + 1) (* bits strictly greater than i *)

let iter_masks h ~prune f =
  let m, conflict, full = prepare h in
  let rec go i chosen blocked =
    if not (prune chosen) then
      if i = m then begin
        if chosen lor blocked = full then f chosen
      end
      else begin
        let bit = 1 lsl i in
        if blocked land bit <> 0 then go (i + 1) chosen blocked
        else begin
          go (i + 1) (chosen lor bit) (blocked lor conflict.(i));
          (* skip [i]: only viable if a later unblocked committee can block it *)
          if conflict.(i) land above i land lnot blocked <> 0 then
            go (i + 1) chosen (blocked lor bit)
        end
      end
  in
  go 0 0 0

(* The skip-branch marks [i] blocked so the maximality test at the leaf
   treats it as conflicting-with-chosen; soundness requires that some chosen
   later committee indeed conflicts with it, which we re-check at the leaf
   against the real conflict sets. *)
let iter_maximal_masks h f =
  let _, conflict, _ = prepare h in
  let genuinely_maximal chosen =
    let m = Array.length conflict in
    let ok = ref true in
    for i = 0 to m - 1 do
      if chosen land (1 lsl i) = 0 && conflict.(i) land chosen = 0 then ok := false
    done;
    !ok
  in
  iter_masks h ~prune:(fun _ -> false) (fun mask ->
      if genuinely_maximal mask then f mask)

let mask_to_list mask =
  let rec go i acc =
    if 1 lsl i > mask then List.rev acc
    else go (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

let iter_maximal_matchings h f = iter_maximal_masks h (fun m -> f (mask_to_list m))
let maximal_matchings h =
  let acc = ref [] in
  iter_maximal_matchings h (fun m -> acc := m :: !acc);
  List.rev !acc

let count_maximal_matchings h =
  let c = ref 0 in
  iter_maximal_masks h (fun _ -> incr c);
  !c

let is_matching h eids =
  let rec go = function
    | [] -> true
    | e :: rest ->
      List.for_all (fun e' -> not (Hypergraph.conflicting h e e')) rest && go rest
  in
  List.length (List.sort_uniq compare eids) = List.length eids && go eids

let is_maximal_matching h eids =
  is_matching h eids
  && (let chosen e = List.mem e eids in
      let extendable e =
        (not (chosen e))
        && List.for_all (fun e' -> not (Hypergraph.conflicting h e e')) eids
      in
      not (Array.exists (fun (ed : Hypergraph.edge) -> extendable ed.eid) (Hypergraph.edges h)))

let min_maximal_matching h =
  let best = ref max_int in
  let _, conflict, _ = prepare h in
  iter_masks h
    ~prune:(fun chosen -> popcount chosen >= !best)
    (fun mask ->
      (* re-check genuine maximality (skip-branch bookkeeping is optimistic) *)
      let m = Array.length conflict in
      let ok = ref true in
      for i = 0 to m - 1 do
        if mask land (1 lsl i) = 0 && conflict.(i) land mask = 0 then ok := false
      done;
      if !ok then best := min !best (popcount mask));
  if !best = max_int then 0 else !best

let max_matching h =
  let best = ref 0 in
  iter_maximal_masks h (fun mask -> best := max !best (popcount mask));
  !best

let greedy_maximal_matching ?order h =
  let m = Hypergraph.m h in
  let order = match order with None -> Array.init m Fun.id | Some o -> o in
  let chosen = ref [] in
  Array.iter
    (fun e ->
      if List.for_all (fun e' -> not (Hypergraph.conflicting h e e')) !chosen then
        chosen := e :: !chosen)
    order;
  List.sort compare !chosen

(* Minimum size of a maximal matching covering all vertices of [must_cover]
   (a vertex-index list); [None] when no maximal matching covers them. *)
let min_maximal_covering h ~must_cover =
  let best = ref max_int in
  let _, conflict, _ = prepare h in
  let covers mask =
    List.for_all
      (fun q ->
        let rec scan i =
          if 1 lsl i > mask then false
          else
            (mask land (1 lsl i) <> 0
             && Array.exists (fun v -> v = q) (Hypergraph.edge_members h i))
            || scan (i + 1)
        in
        scan 0)
      must_cover
  in
  iter_masks h
    ~prune:(fun chosen -> popcount chosen >= !best)
    (fun mask ->
      let m = Array.length conflict in
      let ok = ref true in
      for i = 0 to m - 1 do
        if mask land (1 lsl i) = 0 && conflict.(i) land mask = 0 then ok := false
      done;
      if !ok && covers mask then best := min !best (popcount mask));
  if !best = max_int then None else Some !best

(* Minimum matching size over the AMM family (§5.3): for each professor p,
   candidate committee ε (from [Emin_p], or all of [Ep] for the CC3
   variant), and proper subset y of ε containing p, take the maximal
   matchings of the subhypergraph induced by V \ y that cover ε \ y. *)
let min_over_amm h ~all_edges =
  let n = Hypergraph.n h in
  let seen = Hashtbl.create 64 in
  let best = ref max_int in
  for p = 0 to n - 1 do
    let candidates = if all_edges then Hypergraph.incident h p else Hypergraph.min_edges h p in
    Array.iter
      (fun eid ->
        let members = Array.to_list (Hypergraph.edge_members h eid) in
        let others = List.filter (fun q -> q <> p) members in
        let k = List.length others in
        (* subsets y = {p} ∪ s with s ⊊ others would allow s = others giving
           |y| = |ε|; exclude that full subset. *)
        for smask = 0 to (1 lsl k) - 1 do
          if smask <> (1 lsl k) - 1 || k = 0 then begin
            let s = List.filteri (fun i _ -> smask land (1 lsl i) <> 0) others in
            if k > 0 then begin
              let y = List.sort compare (p :: s) in
              let key = (List.sort compare members, y) in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                match Hypergraph.restrict h ~removed:y with
                | None -> ()
                | Some hy ->
                  let must_cover = List.filter (fun q -> not (List.mem q y)) members in
                  (match min_maximal_covering hy ~must_cover with
                   | None -> ()
                   | Some sz -> best := min !best sz)
              end
            end
          end
        done)
      candidates
  done;
  if !best = max_int then None else Some !best

let min_mm_with_amm_gen h ~all_edges =
  let mm = min_maximal_matching h in
  match min_over_amm h ~all_edges with
  | None -> mm
  | Some amm -> min mm amm

let min_mm_with_amm h = min_mm_with_amm_gen h ~all_edges:false
let min_mm_with_amm' h = min_mm_with_amm_gen h ~all_edges:true

type bounds = {
  min_mm : int;
  max_matching : int;
  max_min : int;
  max_hedge : int;
  dfc_cc2 : int;
  dfc_cc3 : int;
  thm5_lower : int;
  thm8_lower : int;
}

let bounds h =
  let min_mm = min_maximal_matching h in
  let max_min = Hypergraph.max_min h in
  let max_hedge = Hypergraph.max_hedge h in
  {
    min_mm;
    max_matching = max_matching h;
    max_min;
    max_hedge;
    dfc_cc2 = min_mm_with_amm h;
    dfc_cc3 = min_mm_with_amm' h;
    (* the degree of fair concurrency is at least 1 by definition (§5.3) *)
    thm5_lower = max 1 (min_mm - max_min + 1);
    thm8_lower = max 1 (min_mm - max_hedge + 1);
  }

let pp_bounds ppf b =
  Format.fprintf ppf
    "@[<v>minMM=%d maxM=%d MaxMin=%d MaxHEdge=%d@ dfc(CC2)>=%d dfc(CC3)>=%d \
     thm5>=%d thm8>=%d@]"
    b.min_mm b.max_matching b.max_min b.max_hedge b.dfc_cc2 b.dfc_cc3
    b.thm5_lower b.thm8_lower
