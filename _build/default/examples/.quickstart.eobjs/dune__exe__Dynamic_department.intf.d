examples/dynamic_department.mli:
