(* Dense guard/footprint tables over the interned per-process state domains
   (lib/statics' exact tier and the explorer's table-driven fast path).

   For each process [p] the builder enumerates the full product of the
   declared domains of [p]'s read support (its closed neighborhood,
   extended on demand when an evaluation reads beyond it) under every
   uniform input mode, evaluating the engine's backwards priority scan on
   every cell.  The verdicts are therefore absolute over the declared
   domains — not relative to a sampled reachable set.

   Evidence is accumulated as incidents (locality, write-ownership,
   determinism, crash-freedom), per-action guard-true counts (dead-action
   proofs), priority-overlap occurrences, and — for processes whose product
   fits the storage cap — packed per-(process, mode) entry tables keyed by
   dense state ids, which {!Explore} can execute by lookup instead of
   re-running the guard closures per transition. *)

module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model

let nmodes = Array.length Model.input_modes

type incident =
  | Nonlocal_read of { proc : int; action : string; read : int }
  | Foreign_mutation of { proc : int; victim : int }
  | Nondet of { proc : int; action : string; what : [ `Guard | `Apply ] }
  | Crashed of {
      proc : int;
      action : string;
      what : [ `Guard | `Apply ];
      exn : string;
    }

(* Packed entry: [act] (6 bits) | [changes] (1) | [reads] (16-bit process
   mask: scan + statement) | [succ] (dense successor id of the executing
   process).  [-1] = no action enabled; [-2] = unavailable (no stored
   table, or an escapee id in the support). *)

let entry_act e = e land 0x3f
let entry_changes e = e land 0x40 <> 0
let entry_reads e = (e lsr 7) land 0xffff
let entry_succ e = e lsr 23

let pack ~act ~changes ~reads ~succ =
  act lor ((if changes then 1 else 0) lsl 6) lor (reads lsl 7) lor (succ lsl 23)

type proc_tbl = {
  support : int array;  (** processes read, ascending; includes the owner *)
  sizes : int array;  (** domain size per support process *)
  strides : int array;  (** row-major, last support process fastest *)
  entries : int array array;  (** per input mode, [Π sizes] packed entries *)
}

(** Functor-free image of the tables, for serialization ({!Snapcc_statics}
    artifacts) and cross-module transport. *)
type portable = {
  p_algo : string;
  p_topo : string;
  p_n : int;
  p_labels : string array;
  p_dom : int array;  (** declared-domain size per process *)
  p_procs : (proc_tbl, string) result array;  (** [Error reason] = skipped *)
}

let bits_of_mask m =
  let rec go p m acc =
    if m = 0 then List.rev acc
    else go (p + 1) (m lsr 1) (if m land 1 = 1 then p :: acc else acc)
  in
  go 0 m []

module Make (Sys : System.S) = struct
  module Enc = Encode.Make (Sys)

  exception Need of int
  (* an evaluation read a process outside the current support: extend and
     restart the pass for this process *)

  type t = {
    h : H.t;
    enc : Enc.t;
    labels : string array;
    supports : int array array;
    tables : (proc_tbl, string) result array;
    guard_true : int array;
    overlaps : (string list * int * int) list;  (* labels, cells, example *)
    incidents : (incident * int) list;
    cells : int;  (* (cell, mode) pairs enumerated, all processes *)
    streamed : bool array;  (* pass completed but entries were not stored *)
    seconds : float;
    tainted : bool;  (* an in-place mutation corrupted the interned states *)
  }

  let enc t = t.enc
  let labels t = t.labels
  let guard_true t = Array.copy t.guard_true
  let overlaps t = t.overlaps
  let incidents t = t.incidents
  let cells t = t.cells
  let seconds t = t.seconds
  let tainted t = t.tainted
  let support t p = t.supports.(p)

  let status t p =
    match t.tables.(p) with
    | Ok _ -> `Built
    | Error r -> if t.streamed.(p) then `Streamed r else `Skipped r

  let built t =
    Array.for_all (fun tb -> match tb with Ok _ -> true | Error _ -> false)
      t.tables

  let complete t =
    Array.for_all Fun.id
      (Array.mapi
         (fun p tb ->
           match tb with Ok _ -> true | Error _ -> t.streamed.(p))
         t.tables)

  let entry t ~mode ~proc cfg =
    match t.tables.(proc) with
    | Error _ -> -2
    | Ok tb ->
      let k = Array.length tb.support in
      let idx = ref 0 in
      let ok = ref true in
      for j = 0 to k - 1 do
        let id = cfg.(tb.support.(j)) in
        if id >= tb.sizes.(j) then ok := false
        else idx := !idx + (id * tb.strides.(j))
      done;
      if !ok then tb.entries.(mode).(!idx) else -2

  let build ?(verify = false) ?(cap = 1 lsl 27) ?(store_cap = 1 lsl 24) h =
    let t0 = Stdlib.Sys.time () in
    let n = H.n h in
    if n > 16 then failwith "Mc.Tables: more than 16 processes unsupported";
    let enc = Enc.create h in
    let actions = Array.of_list (Sys.actions h) in
    let nact = Array.length actions in
    if nact > 63 then failwith "Mc.Tables: more than 63 actions unsupported";
    let labels =
      Array.map (fun (a : _ Model.action) -> a.Model.label) actions
    in
    let dom_states =
      Array.init n (fun p ->
          let d = Enc.domain_count enc p in
          if d = 0 then failwith "Mc.Tables: empty declared domain";
          Array.init d (Enc.state enc p))
    in
    let fp s = Format.asprintf "%a" Sys.pp_state s in
    let fps = if verify then Array.map (Array.map fp) dom_states else [||] in
    let neighbors_mask =
      Array.init n (fun p ->
          let m = ref (1 lsl p) in
          for q = 0 to n - 1 do
            if q <> p && H.are_neighbors h p q then m := !m lor (1 lsl q)
          done;
          !m)
    in
    let guard_true = Array.make nact 0 in
    let incidents : (incident, int) Hashtbl.t = Hashtbl.create 32 in
    let overlaps : (int, int * int) Hashtbl.t = Hashtbl.create 32 in
    let supports = Array.make n [||] in
    let tables = Array.make n (Error "not built") in
    let streamed = Array.make n false in
    let cells = ref 0 in
    let tainted = ref false in

    (* One full pass over the support product of process [p]; raises
       [Need q] (restarting with a larger support) if an evaluation reads
       beyond the current support.  Local accumulators keep restarts from
       double-counting. *)
    let rec attempt p support_mask =
      let l_guard_true = Array.make nact 0 in
      let l_incidents : (incident, int) Hashtbl.t = Hashtbl.create 8 in
      let l_overlaps : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
      let l_cells = ref 0 in
      let incident i =
        Hashtbl.replace l_incidents i
          (1 + Option.value ~default:0 (Hashtbl.find_opt l_incidents i))
      in
      let support = Array.of_list (bits_of_mask support_mask) in
      let k = Array.length support in
      let sizes = Array.map (fun q -> Enc.domain_count enc q) support in
      let fcells =
        Array.fold_left (fun a s -> a *. float_of_int s) 1.0 sizes
      in
      if fcells *. float_of_int nmodes > float_of_int cap then begin
        supports.(p) <- support;
        tables.(p) <-
          Error
            (Printf.sprintf
               "product %.3g cells x %d modes exceeds the enumeration cap %d"
               fcells nmodes cap)
      end
      else begin
        let ncells = int_of_float fcells in
        let strides = Array.make k 1 in
        for j = k - 2 downto 0 do
          strides.(j) <- strides.(j + 1) * sizes.(j + 1)
        done;
        let store = ncells * nmodes <= store_cap in
        let entries =
          if store then Array.init nmodes (fun _ -> Array.make ncells (-1))
          else [||]
        in
        let idx_p = ref 0 in
        Array.iteri (fun j q -> if q = p then idx_p := j) support;
        let idx_p = !idx_p in
        let ids = Array.make k 0 in
        let sts = Array.init n (fun q -> dom_states.(q).(0)) in
        Array.iteri (fun j q -> sts.(q) <- dom_states.(q).(ids.(j))) support;
        let reads = ref 0 in
        let input_read = ref false in
        let cur_label = ref "" in
        let read q =
          if support_mask land (1 lsl q) = 0 then raise (Need q);
          reads := !reads lor (1 lsl q);
          if neighbors_mask.(p) land (1 lsl q) = 0 then
            incident (Nonlocal_read { proc = p; action = !cur_label; read = q });
          sts.(q)
        in
        let ctxs =
          Array.map
            (fun (_, (base : Model.inputs)) ->
              { Model.h;
                inputs =
                  { Model.request_in =
                      (fun q ->
                        input_read := true;
                        base.Model.request_in q);
                    request_out =
                      (fun q ->
                        input_read := true;
                        base.Model.request_out q) };
                read;
                self = p })
            Model.input_modes
        in
        (* per-cell caches, indexed by action *)
        let g_val = Array.make nact false in
        let g_reads = Array.make nact 0 in
        let g_input = Array.make nact false in
        let a_succ = Array.make nact min_int in  (* min_int unset, -2 crash *)
        let a_reads = Array.make nact 0 in
        let a_input = Array.make nact false in
        let eval_guard mode i =
          reads := 0;
          input_read := false;
          cur_label := labels.(i);
          let g =
            match actions.(i).Model.guard ctxs.(mode) with
            | g -> g
            | exception (Need _ as e) -> raise e
            | exception exn ->
              incident
                (Crashed
                   { proc = p; action = labels.(i); what = `Guard;
                     exn = Printexc.to_string exn });
              false
          in
          (if verify then
             match actions.(i).Model.guard ctxs.(mode) with
             | g2 ->
               if g <> g2 then
                 incident
                   (Nondet { proc = p; action = labels.(i); what = `Guard })
             | exception (Need _ as e) -> raise e
             | exception exn ->
               incident
                 (Crashed
                    { proc = p; action = labels.(i); what = `Guard;
                      exn = Printexc.to_string exn }));
          g_val.(i) <- g;
          g_reads.(i) <- !reads;
          g_input.(i) <- !input_read
        in
        let eval_apply mode i =
          reads := 0;
          input_read := false;
          cur_label := labels.(i);
          (match actions.(i).Model.apply ctxs.(mode) with
          | exception (Need _ as e) -> raise e
          | exception exn ->
            incident
              (Crashed
                 { proc = p; action = labels.(i); what = `Apply;
                   exn = Printexc.to_string exn });
            a_succ.(i) <- -2
          | s1 ->
            (if verify then
               match actions.(i).Model.apply ctxs.(mode) with
               | s2 ->
                 if not (Sys.equal_state s1 s2) then
                   incident
                     (Nondet { proc = p; action = labels.(i); what = `Apply })
               | exception (Need _ as e) -> raise e
               | exception exn ->
                 incident
                   (Crashed
                      { proc = p; action = labels.(i); what = `Apply;
                        exn = Printexc.to_string exn }));
            a_succ.(i) <- Enc.intern enc p s1);
          a_reads.(i) <- !reads;
          a_input.(i) <- !input_read
        in
        let cell = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          Array.fill a_succ 0 nact min_int;
          for mode = 0 to nmodes - 1 do
            (* guards whose first evaluation consulted no input predicate
               are mode-independent: reuse their mode-0 verdict *)
            for i = nact - 1 downto 0 do
              if mode = 0 || g_input.(i) then eval_guard mode i
            done;
            let mask = ref 0 in
            for i = 0 to nact - 1 do
              if g_val.(i) then begin
                mask := !mask lor (1 lsl i);
                l_guard_true.(i) <- l_guard_true.(i) + 1
              end
            done;
            let mask = !mask in
            if mask <> 0 && mask land (mask - 1) <> 0 then begin
              match Hashtbl.find_opt l_overlaps mask with
              | Some (c, ex) -> Hashtbl.replace l_overlaps mask (c + 1, ex)
              | None -> Hashtbl.replace l_overlaps mask (1, p)
            end;
            incr l_cells;
            let chosen =
              let rec top i =
                if i < 0 then -1 else if g_val.(i) then i else top (i - 1)
              in
              top (nact - 1)
            in
            if chosen >= 0 then begin
              if a_succ.(chosen) = min_int || a_input.(chosen) then
                eval_apply mode chosen;
              if store then
                entries.(mode).(!cell) <-
                  (if a_succ.(chosen) = -2 then -1
                   else begin
                     let rm = ref a_reads.(chosen) in
                     for i = chosen to nact - 1 do
                       rm := !rm lor g_reads.(i)
                     done;
                     pack ~act:chosen
                       ~changes:(a_succ.(chosen) <> ids.(idx_p))
                       ~reads:!rm ~succ:a_succ.(chosen)
                   end)
            end
          done;
          (* odometer: last support process fastest, so [cell] just counts *)
          incr cell;
          let rec adv j =
            if j < 0 then continue_ := false
            else begin
              ids.(j) <- ids.(j) + 1;
              if ids.(j) >= sizes.(j) then begin
                ids.(j) <- 0;
                sts.(support.(j)) <- dom_states.(support.(j)).(0);
                adv (j - 1)
              end
              else sts.(support.(j)) <- dom_states.(support.(j)).(ids.(j))
            end
          in
          adv (k - 1)
        done;
        (* in-place mutation check: every interned domain state must print
           the same after the pass as before it *)
        if verify then
          Array.iteri
            (fun q states ->
              Array.iteri
                (fun i s ->
                  if not (String.equal (fp s) fps.(q).(i)) then begin
                    incident (Foreign_mutation { proc = p; victim = q });
                    tainted := true;
                    fps.(q).(i) <- fp s
                  end)
                states)
            dom_states;
        supports.(p) <- support;
        (if store then tables.(p) <- Ok { support; sizes; strides; entries }
         else begin
           (* the pass itself completed: verdicts are exact, only the packed
              entries were too large to keep *)
           streamed.(p) <- true;
           tables.(p) <-
             Error
               (Printf.sprintf
                  "streamed: %d cells x %d modes exceeds the table storage \
                   cap %d"
                  ncells nmodes store_cap)
         end)
      end;
      (* merge the completed pass into the global accumulators *)
      Array.iteri (fun i c -> guard_true.(i) <- guard_true.(i) + c) l_guard_true;
      Hashtbl.iter
        (fun i c ->
          Hashtbl.replace incidents i
            (c + Option.value ~default:0 (Hashtbl.find_opt incidents i)))
        l_incidents;
      Hashtbl.iter
        (fun m (c, ex) ->
          match Hashtbl.find_opt overlaps m with
          | Some (c0, ex0) -> Hashtbl.replace overlaps m (c0 + c, ex0)
          | None -> Hashtbl.replace overlaps m (c, ex))
        l_overlaps;
      cells := !cells + !l_cells
    and run_proc p support_mask =
      match attempt p support_mask with
      | () -> ()
      | exception Need q -> run_proc p (support_mask lor (1 lsl q))
      | exception Failure msg ->
        (* e.g. interning overflow after an in-place mutation corrupted the
           hash-consing tables: record and move on *)
        supports.(p) <- [||];
        tables.(p) <- Error msg;
        streamed.(p) <- false;
        tainted := true
    in
    for p = 0 to n - 1 do
      run_proc p neighbors_mask.(p)
    done;
    let overlaps =
      Hashtbl.fold
        (fun mask (c, ex) acc ->
          (List.map (fun i -> labels.(i)) (bits_of_mask mask), c, ex) :: acc)
        overlaps []
      |> List.sort compare
    in
    let incidents =
      Hashtbl.fold (fun i c acc -> (i, c) :: acc) incidents []
      |> List.sort compare
    in
    { h; enc; labels; supports; tables; guard_true; overlaps; incidents;
      cells = !cells; streamed;
      seconds = Stdlib.Sys.time () -. t0; tainted = !tainted }

  (* Streaming re-enumeration of one process's pass, for consumers that
     need every (cell, mode, entry) triple regardless of whether the
     entries were stored (the symmetry admission pass).  Stored tables are
     decoded by lookup; streamed/skipped passes re-run the backwards scan
     (no verify instrumentation).  [init] is invoked at every (re)start —
     a [Need] support extension discards the partial stream — so the
     consumer must reset its accumulators there. *)
  let enumerate ?(cap = 1 lsl 27) t ~proc:p ~init ~cell:emit =
    let h = t.h in
    let n = H.n h in
    let enc = t.enc in
    let actions = Array.of_list (Sys.actions h) in
    let nact = Array.length actions in
    let stored =
      match t.tables.(p) with Ok tb -> Some tb | Error _ -> None
    in
    let rec attempt support_mask =
      let support =
        match stored with
        | Some tb -> tb.support
        | None -> Array.of_list (bits_of_mask support_mask)
      in
      let k = Array.length support in
      let sizes = Array.map (fun q -> Enc.domain_count enc q) support in
      let fcells =
        Array.fold_left (fun a s -> a *. float_of_int s) 1.0 sizes
      in
      if fcells *. float_of_int nmodes > float_of_int cap then false
      else begin
        init ~support ~sizes;
        let ids = Array.make k 0 in
        let idx_p = ref 0 in
        Array.iteri (fun j q -> if q = p then idx_p := j) support;
        let idx_p = !idx_p in
        match stored with
        | Some tb ->
          (* decode: the cell counter is the row-major index *)
          let ncells = int_of_float fcells in
          for c = 0 to ncells - 1 do
            for mode = 0 to nmodes - 1 do
              emit ~mode ~ids ~entry:tb.entries.(mode).(c)
            done;
            let rec adv j =
              if j >= 0 then begin
                ids.(j) <- ids.(j) + 1;
                if ids.(j) >= sizes.(j) then begin
                  ids.(j) <- 0;
                  adv (j - 1)
                end
              end
            in
            adv (k - 1)
          done;
          true
        | None ->
          (* re-run the scan (cf. [build]'s attempt, minus verify) *)
          let dom_states =
            Array.init n (fun q ->
                Array.init (Enc.domain_count enc q) (Enc.state enc q))
          in
          let sts = Array.init n (fun q -> dom_states.(q).(0)) in
          Array.iteri (fun j q -> sts.(q) <- dom_states.(q).(ids.(j))) support;
          let reads = ref 0 in
          let input_read = ref false in
          let read q =
            if support_mask land (1 lsl q) = 0 then raise (Need q);
            reads := !reads lor (1 lsl q);
            sts.(q)
          in
          let ctxs =
            Array.map
              (fun (_, (base : Model.inputs)) ->
                { Model.h;
                  inputs =
                    { Model.request_in =
                        (fun q ->
                          input_read := true;
                          base.Model.request_in q);
                      request_out =
                        (fun q ->
                          input_read := true;
                          base.Model.request_out q) };
                  read;
                  self = p })
              Model.input_modes
          in
          let g_val = Array.make nact false in
          let g_reads = Array.make nact 0 in
          let g_input = Array.make nact false in
          let a_succ = Array.make nact min_int in
          let a_reads = Array.make nact 0 in
          let a_input = Array.make nact false in
          let eval_guard mode i =
            reads := 0;
            input_read := false;
            let g =
              match actions.(i).Model.guard ctxs.(mode) with
              | g -> g
              | exception (Need _ as e) -> raise e
              | exception _ -> false
            in
            g_val.(i) <- g;
            g_reads.(i) <- !reads;
            g_input.(i) <- !input_read
          in
          let eval_apply mode i =
            reads := 0;
            input_read := false;
            (match actions.(i).Model.apply ctxs.(mode) with
            | exception (Need _ as e) -> raise e
            | exception _ -> a_succ.(i) <- -2
            | s1 -> a_succ.(i) <- Enc.intern enc p s1);
            a_reads.(i) <- !reads;
            a_input.(i) <- !input_read
          in
          let continue_ = ref true in
          while !continue_ do
            Array.fill a_succ 0 nact min_int;
            for mode = 0 to nmodes - 1 do
              for i = nact - 1 downto 0 do
                if mode = 0 || g_input.(i) then eval_guard mode i
              done;
              let chosen =
                let rec top i =
                  if i < 0 then -1 else if g_val.(i) then i else top (i - 1)
                in
                top (nact - 1)
              in
              let entry =
                if chosen < 0 then -1
                else begin
                  if a_succ.(chosen) = min_int || a_input.(chosen) then
                    eval_apply mode chosen;
                  if a_succ.(chosen) = -2 then -1
                  else begin
                    let rm = ref a_reads.(chosen) in
                    for i = chosen to nact - 1 do
                      rm := !rm lor g_reads.(i)
                    done;
                    pack ~act:chosen
                      ~changes:(a_succ.(chosen) <> ids.(idx_p))
                      ~reads:!rm ~succ:a_succ.(chosen)
                  end
                end
              in
              emit ~mode ~ids ~entry
            done;
            let rec adv j =
              if j < 0 then continue_ := false
              else begin
                ids.(j) <- ids.(j) + 1;
                if ids.(j) >= sizes.(j) then begin
                  ids.(j) <- 0;
                  sts.(support.(j)) <- dom_states.(support.(j)).(0);
                  adv (j - 1)
                end
                else sts.(support.(j)) <- dom_states.(support.(j)).(ids.(j))
              end
            in
            adv (k - 1)
          done;
          true
      end
    and run support_mask =
      match attempt support_mask with
      | done_ -> done_
      | exception Need q -> run (support_mask lor (1 lsl q))
      | exception Failure _ -> false
    in
    let base_mask =
      Array.fold_left
        (fun m q -> m lor (1 lsl q))
        0
        (if Array.length t.supports.(p) > 0 then t.supports.(p)
         else [| p |])
    in
    run base_mask

  (* Read/write interference, exactly: for every ordered pair of neighbors
     (writer, reader) with stored tables, iterate the product over the
     union of their supports and count the cells where the writer's chosen
     action changes its state while the reader's evaluation (scan +
     statement) reads the writer. *)
  let interference ?(cap = 1 lsl 27) t =
    let n = H.n t.h in
    let acc : (string * string, int) Hashtbl.t = Hashtbl.create 32 in
    for p = 0 to n - 1 do
      for q = 0 to n - 1 do
        if p <> q && H.are_neighbors t.h p q then
          match (t.tables.(p), t.tables.(q)) with
          | Ok tp, Ok tq ->
            let union =
              Array.of_list
                (List.sort_uniq compare
                   (Array.to_list tp.support @ Array.to_list tq.support))
            in
            let k = Array.length union in
            let sizes =
              Array.map (fun r -> Enc.domain_count t.enc r) union
            in
            let fcells =
              Array.fold_left (fun a s -> a *. float_of_int s) 1.0 sizes
            in
            if fcells *. float_of_int nmodes <= float_of_int cap then begin
              (* per-table index increments per union digit *)
              let contrib tb =
                Array.map
                  (fun r ->
                    let s = ref 0 in
                    Array.iteri
                      (fun j r' -> if r' = r then s := tb.strides.(j))
                      tb.support;
                    !s)
                  union
              in
              let cp = contrib tp and cq = contrib tq in
              let ids = Array.make k 0 in
              let ip = ref 0 and iq = ref 0 in
              let continue_ = ref true in
              while !continue_ do
                for mode = 0 to nmodes - 1 do
                  let ep = tp.entries.(mode).(!ip) in
                  if ep >= 0 && entry_changes ep then begin
                    let eq = tq.entries.(mode).(!iq) in
                    if eq >= 0 && entry_reads eq land (1 lsl p) <> 0 then begin
                      let key =
                        (t.labels.(entry_act ep), t.labels.(entry_act eq))
                      in
                      Hashtbl.replace acc key
                        (1 + Option.value ~default:0 (Hashtbl.find_opt acc key))
                    end
                  end
                done;
                let rec adv j =
                  if j < 0 then continue_ := false
                  else begin
                    ids.(j) <- ids.(j) + 1;
                    ip := !ip + cp.(j);
                    iq := !iq + cq.(j);
                    if ids.(j) >= sizes.(j) then begin
                      ip := !ip - (sizes.(j) * cp.(j));
                      iq := !iq - (sizes.(j) * cq.(j));
                      ids.(j) <- 0;
                      adv (j - 1)
                    end
                  end
                in
                adv (k - 1)
              done
            end
          | _ -> ()
      done
    done;
    Hashtbl.fold (fun (w, r) c acc -> (w, r, c) :: acc) acc []
    |> List.sort compare

  let to_portable ~algo ~topo t =
    { p_algo = algo;
      p_topo = topo;
      p_n = H.n t.h;
      p_labels = Array.copy t.labels;
      p_dom =
        Array.init (H.n t.h) (fun p -> Enc.domain_count t.enc p);
      p_procs =
        Array.map
          (function
            | Ok (tb : proc_tbl) -> Ok tb
            | Error r -> Error r)
          t.tables }
end
