(* Quickstart: build the paper's Fig. 1 system, run the maximal-concurrency
   algorithm CC1 ∘ TC for a while, and look at what happened.

       dune exec examples/quickstart.exe

   The public API in five steps:
   1. describe the distributed system as a hypergraph (professors are
      vertices, committees are hyperedges);
   2. pick a daemon (scheduler) and a workload (when professors request to
      join and leave meetings);
   3. run one of the algorithms through the driver, which monitors the full
      committee-coordination specification online;
   4. inspect violations (there must be none), the convene ledger and the
      metrics;
   5. print the final configuration. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Obs = Snapcc_runtime.Obs
module Workload = Snapcc_workload.Workload
module Algos = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver

let () =
  (* 1. the hypergraph of Fig. 1: committees {1,2} {1,2,3,4} {2,4,5} {3,6} {4,6} *)
  let h = Families.fig1 () in
  Format.printf "system: %a@.@." H.pp h;

  (* 2. a distributed weakly-fair daemon and always-requesting professors
        who discuss for 3 steps before wanting out *)
  let daemon = Daemon.random_subset () in
  let workload = Workload.always_requesting ~disc_len:(fun _ -> 3) h in

  (* 3. run CC1 ∘ TC for 5000 steps, recording a trace *)
  let r =
    Algos.Run_cc1.run ~seed:42 ~daemon ~workload ~record_trace:true
      ~steps:5_000 h
  in

  (* 4. the monitors saw every transition *)
  Format.printf "%a@.@." Driver.pp_result r;
  assert (r.Driver.violations = []);

  let show_first k =
    List.iteri
      (fun i (step, e) ->
        if i < k then
          Format.printf "  step %4d: committee %a convenes@." step (H.pp_edge h) e)
      r.Driver.convened
  in
  Format.printf "first meetings:@.";
  show_first 8;

  (* 5. the meeting timeline (committees x time) and final configuration *)
  (match r.Driver.trace with
   | Some trace ->
     Format.printf "@.meeting timeline:@.%a@."
       (Snapcc_runtime.Trace.pp_timeline ~width:64) trace
   | None -> ());
  Format.printf "@.final configuration:@.%a@." (Obs.pp_snapshot h) r.Driver.final_obs
