(** Optional trace recording: a sequence of observation snapshots with the
    actions that produced them, for pretty-printing example runs and for
    offline checks in tests. *)

type entry = {
  step : int;
  executed : (int * string) list;
  obs : Obs.t array;  (** configuration after the step *)
  fault : bool;
      (** a fault-injection boundary recorded with {!record_fault}, not an
          algorithm step *)
}

type t

val create : Snapcc_hypergraph.Hypergraph.t -> initial:Obs.t array -> t
val record : t -> Model.step_report -> Obs.t array -> unit

val record_fault : t -> step:int -> Obs.t array -> unit
(** Record a transient-fault boundary: [obs] is the corrupted configuration
    before the step numbered [step].  The corrupted configuration becomes
    the comparison baseline for the next step, so {!convened} and
    {!terminated} never attribute a meeting materialized (or destroyed) by
    the corruption itself to an algorithm step. *)

val initial : t -> Obs.t array
val entries : t -> entry list
(** In chronological order (fault boundaries included). *)

val length : t -> int
(** Recorded entries, fault boundaries included. *)

val final : t -> Obs.t array

val convened : t -> (int * int) list
(** [(step, eid)] for every committee meeting that convened during the
    trace: [eid] did not meet in the previous configuration and meets after
    the step (§4.2).  Fault boundaries are not steps: corruption never
    fabricates a convene. *)

val terminated : t -> (int * int) list
(** Committee meetings that terminated (met before, not after).  Same
    fault-boundary exemption as {!convened}. *)

val pp : Format.formatter -> t -> unit

val pp_timeline : ?width:int -> Format.formatter -> t -> unit
(** ASCII meeting timeline: one row per committee, time bucketed into
    [width] columns (default 64), [#] where the committee met during the
    bucket.  The at-a-glance picture of concurrency and fairness. *)
