lib/token/token_null.ml: Format Snapcc_runtime
