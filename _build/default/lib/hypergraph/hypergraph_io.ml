let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse text =
  let lines = String.split_on_char '\n' text in
  let n = ref None in
  let ids = ref None in
  let committees = ref [] in
  let error = ref None in
  let fail lineno msg =
    if !error = None then
      error := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  let int_of lineno tok =
    match int_of_string_opt tok with
    | Some v -> v
    | None ->
      fail lineno (Printf.sprintf "expected an integer, got %S" tok);
      0
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match tokens line with
      | [] -> ()
      | "n" :: [ v ] -> n := Some (int_of lineno v)
      | "n" :: _ -> fail lineno "n takes exactly one value"
      | "ids" :: rest ->
        if rest = [] then fail lineno "ids needs at least one identifier"
        else ids := Some (List.map (int_of lineno) rest)
      | "committee" :: rest ->
        if List.length rest < 2 then
          fail lineno "a committee needs at least two members"
        else committees := List.map (int_of lineno) rest :: !committees
      | kw :: _ -> fail lineno (Printf.sprintf "unknown keyword %S" kw))
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
    let committees = List.rev !committees in
    (match !n with
     | None -> Error "missing `n <count>' line"
     | Some n when n < 1 -> Error "n must be positive"
     | Some n ->
       let ids =
         match !ids with
         | Some l -> l
         | None -> List.init n Fun.id
       in
       if List.length ids <> n then
         Error
           (Printf.sprintf "ids lists %d identifiers for n = %d"
              (List.length ids) n)
       else begin
         let ids = Array.of_list ids in
         let vertex_of id =
           let rec find v =
             if v >= n then None else if ids.(v) = id then Some v else find (v + 1)
           in
           find 0
         in
         let exception Bad of string in
         try
           let committees =
             List.map
               (List.map (fun id ->
                    match vertex_of id with
                    | Some v -> v
                    | None ->
                      raise (Bad (Printf.sprintf "unknown professor identifier %d" id))))
               committees
           in
           (try Ok (Hypergraph.create ~ids ~n committees) with
            | Hypergraph.Invalid msg -> Error msg)
         with Bad msg -> Error msg
       end)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let to_string h =
  let buf = Buffer.create 256 in
  let n = Hypergraph.n h in
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  Buffer.add_string buf "ids";
  for v = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf " %d" (Hypergraph.id h v))
  done;
  Buffer.add_char buf '\n';
  Array.iter
    (fun (e : Hypergraph.edge) ->
      Buffer.add_string buf "committee";
      Array.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf " %d" (Hypergraph.id h v)))
        e.Hypergraph.members;
      Buffer.add_char buf '\n')
    (Hypergraph.edges h);
  Buffer.contents buf

let save path h = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string h))
