lib/token/leader.mli: Format Random Snapcc_hypergraph Snapcc_runtime
