(** Offline causal analysis of JSONL traces: happens-before reconstruction
    from vector-clock [clock] events alone.

    The stamped engines ([Mp_engine], the networked orchestrator and its
    node processes) emit one {!Snapcc_telemetry.Event.Clock} event per
    node-originated event of the message-passing model — initial
    configuration, acting activation, accepted delivery, corruption —
    carrying the process's vector clock and its packed local observation
    {e after} the event.  This module rebuilds the execution from those
    stamps without consulting the scheduler's order:

    - the happens-before DAG (clock comparison decides causality exactly
      under the stamping discipline);
    - a canonical causal linearization (Kahn's algorithm over the clock
      frontier, deterministic tie-breaks), whose prefixes are the
      consistent cuts the replay walks through;
    - cut-consistent re-evaluation of the {!Spec} monitor and of the
      meeting ledger over the reconstructed configurations;
    - the causal degree of fair concurrency: the width (maximum antichain)
      of the meeting-span partial order, versus the schedule-derived
      maximum of simultaneous meetings;
    - the critical path from a corruption burst to the recovering convene
      — the causal chain behind the time-to-stabilize number.

    Validated against the lockstep runtime as an oracle ({!parity}): on
    zero-fault lockstep runs the replay reproduces the online observer's
    Spec verdicts, convene ledger and stabilization step exactly.

    Caveat: the trace does not record the workload's [RequestOut]
    predicate, so the replay evaluates the voluntary-discussion rule under
    [request_out = fun _ -> true] — it can miss (never invent)
    voluntary-discussion violations recorded online. *)

type node = {
  p : int;
  k : int;  (** event class ({!Snapcc_telemetry.Event.clock_init}…) *)
  step : int;  (** scheduler step recorded on the event *)
  iter : int;
      (** derived loop iteration: [step - 1] for activation/delivery
          events (the step counter is bumped at step begin), [step] for
          corruption events (injected before the step begins) *)
  clock : Snapcc_telemetry.Vclock.t;
  obs : Snapcc_runtime.Obs.t;  (** [p]'s observation after the event *)
}

type span = {
  eid : int;
  convene_iter : int;
  convene_clock : Snapcc_telemetry.Vclock.t;
  close_iter : int option;  (** [None]: still meeting at end of trace *)
  close_clock : Snapcc_telemetry.Vclock.t option;
}

type t

val analyze : Snapcc_telemetry.Event.t list -> (t, string) result
(** Requires a [run_start] with a non-empty [topo] (traces predating the
    causal layer are rejected) and a causally consistent set of [clock]
    events; any validation failure (missing init stamps, non-consecutive
    own components, a stuck linearization) is a descriptive [Error]. *)

val hypergraph : t -> Snapcc_hypergraph.Hypergraph.t
val processes : t -> int
val events : t -> node array
(** The causal linearization (initial-configuration stamps excluded); its
    [i]-th prefix is the [i]-th consistent cut of {!iter_cuts}. *)

val initial_obs : t -> Snapcc_runtime.Obs.t array
val horizon : t -> int
(** Scheduler iterations covered ([run_end] steps when present). *)

val violations : t -> Spec.violation list
(** The {!Spec} verdicts of the cut-consistent replay. *)

val convened : t -> (int * int) list
(** [(iter, eid)] convene ledger of the replay, chronological. *)

val fault_iters : t -> int list
val recover_iter : t -> int option
val stabilized_in : t -> int option
(** [recover - first fault], when both exist. *)

val meeting_spans : t -> span list

val dfc_schedule : t -> int
(** Maximum number of simultaneous meetings along the replay — the
    schedule-derived degree of fair concurrency. *)

val mean_concurrency : t -> float

val dfc_causal : t -> int
(** Width (maximum antichain) of the meeting-span partial order
    [A ≺ B iff A closed and close_clock(A) ≤ convene_clock(B)]: meetings
    no causal chain separates count as concurrent even when the schedule
    happened to serialize them, so [dfc_causal >= dfc_schedule]. *)

val critical_path : t -> node list
(** The longest happens-before chain from the corruption burst to the
    recovering convene (empty without a burst-recover pair): the causal
    skeleton of the stabilization time. *)

val cut_consistent : t -> int array -> bool
(** [cut_consistent t f] — is the cut taking, for each process [p], its
    first [f.(p)] events (initial stamp included, so [f.(p)] ranges over
    [0..]) downward-closed under happens-before? *)

val iter_cuts :
  t -> (idx:int -> frontier:int array -> obs:Snapcc_runtime.Obs.t array -> unit) -> unit
(** Enumerate the canonical consistent cuts along the linearization (cut
    [0] = initial stamps only), with the per-process event counts and the
    reconstructed configuration of each. *)

type parity = {
  verdicts_ok : bool;  (** replay (rule, detail) set = observer's *)
  convenes_ok : bool;
  convenes_checked : bool;
      (** [false] when the trace carried no observer [convene] events to
          compare against (the check is then vacuous) *)
  stabilization_ok : bool;  (** burst/recover iterations match *)
  mismatches : string list;
}

val parity : t -> Snapcc_telemetry.Event.t list -> parity
(** Compare the vector-clock replay against the online observer's events
    of the same trace — the lockstep-oracle check. *)

val parity_ok : parity -> bool

val to_json : t -> Snapcc_telemetry.Json.t
val parity_to_json : parity -> Snapcc_telemetry.Json.t
val pp : Format.formatter -> t -> unit
val pp_parity : Format.formatter -> parity -> unit
