(* Engine semantics: priorities, atomic steps, rounds, neutralization,
   daemon contract, locality checking, fault injection (paper §2.2). *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Model = Snapcc_runtime.Model
module Daemon = Snapcc_runtime.Daemon
module Obs = Snapcc_runtime.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A counter algorithm with two overlapping actions, to pin down the
   priority rule: the action appearing LATER in the code wins (§2.2). *)
module Toy = struct
  type state = { v : int; last : string }

  let name = "toy"
  let pp_state ppf s = Format.fprintf ppf "%d(%s)" s.v s.last
  let equal_state a b = a = b
  let init _ _ = { v = 0; last = "" }
  let random_init _ rng _ = { v = Random.State.int rng 5; last = "" }

  let actions _h =
    [ { Model.label = "low";
        guard = (fun ctx -> (ctx.Model.read ctx.Model.self).v < 3);
        apply =
          (fun ctx ->
            let s = ctx.Model.read ctx.Model.self in
            { v = s.v + 1; last = "low" }) };
      { Model.label = "high";
        guard = (fun ctx -> (ctx.Model.read ctx.Model.self).v < 3);
        apply =
          (fun ctx ->
            let s = ctx.Model.read ctx.Model.self in
            { v = s.v + 1; last = "high" }) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
end

module Toy_engine = Snapcc_runtime.Engine.Make (Toy)

let pair () = H.create ~n:2 [ [ 0; 1 ] ]

let test_priority () =
  let eng = Toy_engine.create ~daemon:(Daemon.central ()) (pair ()) in
  let report = Toy_engine.step eng ~inputs:Model.no_inputs in
  (match report.Model.executed with
   | [ (_, label) ] -> Alcotest.(check string) "later action wins" "high" label
   | _ -> Alcotest.fail "expected exactly one execution");
  check "not terminal" false report.Model.terminal

let test_termination () =
  let eng = Toy_engine.create ~daemon:Daemon.synchronous (pair ()) in
  let outcome =
    Toy_engine.run eng ~steps:100 ~inputs_at:(fun _ -> Model.no_inputs) ()
  in
  check "terminates" true (outcome = `Terminal);
  check_int "both counters saturated" 3 (Toy_engine.state eng 0).Toy.v;
  check "terminal flag" true (Toy_engine.is_terminal eng ~inputs:Model.no_inputs);
  let r = Toy_engine.step eng ~inputs:Model.no_inputs in
  check "terminal step is a no-op" true r.Model.terminal

(* Both processes copy each other's value in the same synchronous step:
   statements must read the pre-step configuration, so values swap. *)
module Swap = struct
  type state = int

  let name = "swap"
  let pp_state = Format.pp_print_int
  let equal_state = Int.equal
  let init _ p = p
  let random_init _ rng _ = Random.State.int rng 10

  let other ctx = if ctx.Model.self = 0 then 1 else 0

  let actions _h =
    [ { Model.label = "copy";
        guard = (fun ctx -> ctx.Model.read ctx.Model.self <> ctx.Model.read (other ctx));
        apply = (fun ctx -> ctx.Model.read (other ctx)) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
end

module Swap_engine = Snapcc_runtime.Engine.Make (Swap)

let test_atomic_step () =
  let eng = Swap_engine.create ~daemon:Daemon.synchronous (pair ()) in
  (* initial: [|0; 1|] *)
  let _ = Swap_engine.step eng ~inputs:Model.no_inputs in
  Alcotest.(check (array int))
    "swap, not overwrite" [| 1; 0 |] (Swap_engine.states eng)

let test_neutralization () =
  (* process 1 is enabled iff values differ; selecting only process 0
     equalizes them, neutralizing process 1 *)
  let script ~step:_ ~enabled =
    if List.mem 0 enabled then [ 0 ] else enabled
  in
  let eng =
    Swap_engine.create ~daemon:(Daemon.of_fun ~name:"only-0" script) (pair ())
  in
  let report = Swap_engine.step eng ~inputs:Model.no_inputs in
  Alcotest.(check (list int)) "neutralized" [ 1 ] report.Model.neutralized;
  Alcotest.(check (list int)) "selected" [ 0 ] report.Model.selected

let test_round_counting () =
  (* both processes of Toy stay enabled until v=3; under the central daemon
     a round completes every 2 steps (each process executes once) *)
  let eng = Toy_engine.create ~daemon:(Daemon.central ()) (pair ()) in
  let _ = Toy_engine.run eng ~steps:6 ~inputs_at:(fun _ -> Model.no_inputs) () in
  check_int "3 rounds after 6 central steps" 3 (Toy_engine.rounds eng);
  let eng2 = Toy_engine.create ~daemon:Daemon.synchronous (pair ()) in
  let _ = Toy_engine.run eng2 ~steps:3 ~inputs_at:(fun _ -> Model.no_inputs) () in
  check_int "1 round per synchronous step" 3 (Toy_engine.rounds eng2)

let test_daemon_contract () =
  let bad ~step:_ ~enabled:_ = [] in
  let eng = Toy_engine.create ~daemon:(Daemon.of_fun ~name:"empty" bad) (pair ()) in
  Alcotest.check_raises "empty selection rejected"
    (Invalid_argument "daemon selected an empty set") (fun () ->
      ignore (Toy_engine.step eng ~inputs:Model.no_inputs));
  let disabled ~step:_ ~enabled:_ = [ 0 ] in
  let eng2 =
    Toy_engine.create ~daemon:(Daemon.of_fun ~name:"disabled" disabled) (pair ())
  in
  let _ = Toy_engine.run eng2 ~steps:3 ~inputs_at:(fun _ -> Model.no_inputs) () in
  (* process 0 saturates at 3; selecting it afterwards must be rejected *)
  Alcotest.check_raises "disabled selection rejected"
    (Invalid_argument "daemon selected disabled process 0") (fun () ->
      ignore (Toy_engine.step eng2 ~inputs:Model.no_inputs))

(* An algorithm that illegally reads a non-neighbor's state. *)
module Peeker = struct
  type state = int

  let name = "peeker"
  let pp_state = Format.pp_print_int
  let equal_state = Int.equal
  let init _ _ = 0
  let random_init _ _ _ = 0

  let actions h =
    [ { Model.label = "peek";
        guard =
          (fun ctx ->
            (* vertex 0 reads the far end of the path *)
            ctx.Model.self = 0 && ctx.Model.read (H.n h - 1) >= 0);
        apply = (fun ctx -> ctx.Model.read ctx.Model.self + 1) };
    ]

  let observe _ _ _ = Obs.make Obs.Idle
end

module Peeker_engine = Snapcc_runtime.Engine.Make (Peeker)

let test_locality_check () =
  let h = Families.path 3 in
  let eng =
    Peeker_engine.create ~check_locality:true ~daemon:Daemon.synchronous h
  in
  (match Peeker_engine.step eng ~inputs:Model.no_inputs with
   | exception Failure msg ->
     check "mentions violation" true
       (String.length msg > 0
        && String.sub msg 0 (min 8 (String.length msg)) = "locality")
   | _ -> Alcotest.fail "expected locality failure");
  (* without the check the same algorithm runs *)
  let eng2 = Peeker_engine.create ~daemon:Daemon.synchronous h in
  let r = Peeker_engine.step eng2 ~inputs:Model.no_inputs in
  check "ran" true (r.Model.executed <> [])

let test_corrupt () =
  let eng = Toy_engine.create ~seed:5 ~daemon:Daemon.synchronous (pair ()) in
  let _ = Toy_engine.run eng ~steps:100 ~inputs_at:(fun _ -> Model.no_inputs) () in
  check "terminal before fault" true
    (Toy_engine.is_terminal eng ~inputs:Model.no_inputs);
  let rng = Random.State.make [| 99 |] in
  (* redraw states until the fault actually re-enables someone *)
  let rec inject tries =
    Toy_engine.corrupt eng ~rng ~victims:[ 0; 1 ] ();
    if Toy_engine.is_terminal eng ~inputs:Model.no_inputs && tries > 0 then
      inject (tries - 1)
  in
  inject 20;
  check "fault re-enabled the system" false
    (Toy_engine.is_terminal eng ~inputs:Model.no_inputs);
  let outcome = Toy_engine.run eng ~steps:100 ~inputs_at:(fun _ -> Model.no_inputs) () in
  check "recovers to terminal" true (outcome = `Terminal)

let test_daemons_select_subset () =
  let daemons = Daemon.all_standard () in
  List.iter
    (fun d ->
      let eng = Toy_engine.create ~seed:1 ~daemon:d (pair ()) in
      let seen_ok = ref true in
      let on_step _ (r : Model.step_report) =
        if r.Model.selected = [] then seen_ok := false;
        List.iter (fun p -> if p < 0 || p > 1 then seen_ok := false) r.Model.selected
      in
      let _ = Toy_engine.run eng ~steps:50 ~inputs_at:(fun _ -> Model.no_inputs) ~on_step () in
      check (Daemon.name d ^ " selects valid subsets") true !seen_ok)
    daemons

let test_trace_convened () =
  (* hand-build a trace and check convene/terminate detection *)
  let h = pair () in
  let looking = Obs.make Obs.Looking ~pointer:(Some 0) in
  let waiting = Obs.make Obs.Waiting ~pointer:(Some 0) in
  let idle = Obs.make Obs.Idle in
  let tr = Snapcc_runtime.Trace.create h ~initial:[| looking; looking |] in
  let fake step executed obs =
    Snapcc_runtime.Trace.record tr
      { Model.step; selected = List.map fst executed; executed;
        neutralized = []; round = 0; terminal = false }
      obs
  in
  fake 0 [ (0, "Step31") ] [| waiting; looking |];
  fake 1 [ (1, "Step31") ] [| waiting; waiting |];
  fake 2 [ (0, "Step4") ] [| idle; waiting |];
  Alcotest.(check (list (pair int int)))
    "convened at step 1" [ (1, 0) ] (Snapcc_runtime.Trace.convened tr);
  Alcotest.(check (list (pair int int)))
    "terminated at step 2" [ (2, 0) ] (Snapcc_runtime.Trace.terminated tr);
  check_int "length" 3 (Snapcc_runtime.Trace.length tr)

let test_trace_fault_boundary () =
  (* a corruption that materializes (or destroys) a meeting must not be
     reported as a convene/terminate: record_fault resets the baseline *)
  let h = pair () in
  let looking = Obs.make Obs.Looking ~pointer:(Some 0) in
  let waiting = Obs.make Obs.Waiting ~pointer:(Some 0) in
  let idle = Obs.make Obs.Idle in
  let tr = Snapcc_runtime.Trace.create h ~initial:[| looking; looking |] in
  let fake step executed obs =
    Snapcc_runtime.Trace.record tr
      { Model.step; selected = List.map fst executed; executed;
        neutralized = []; round = 0; terminal = false }
      obs
  in
  (* corruption fabricates a full meeting out of thin air... *)
  Snapcc_runtime.Trace.record_fault tr ~step:0 [| waiting; waiting |];
  (* ...and the next real step only observes it persisting *)
  fake 0 [] [| waiting; waiting |];
  Alcotest.(check (list (pair int int)))
    "corruption does not fabricate a convene" []
    (Snapcc_runtime.Trace.convened tr);
  (* a second corruption wipes the meeting: not a termination either *)
  Snapcc_runtime.Trace.record_fault tr ~step:1 [| idle; idle |];
  fake 1 [] [| idle; idle |];
  Alcotest.(check (list (pair int int)))
    "corruption does not fabricate a terminate" []
    (Snapcc_runtime.Trace.terminated tr);
  (* a real convene after the fault is still detected *)
  fake 2 [ (0, "Step31"); (1, "Step31") ] [| waiting; waiting |];
  Alcotest.(check (list (pair int int)))
    "post-fault convene still detected" [ (2, 0) ]
    (Snapcc_runtime.Trace.convened tr);
  check_int "fault entries counted in length" 5
    (Snapcc_runtime.Trace.length tr)

let suite =
  [ ( "runtime",
      [ Alcotest.test_case "priority: later action wins" `Quick test_priority;
        Alcotest.test_case "termination" `Quick test_termination;
        Alcotest.test_case "atomic distributed step" `Quick test_atomic_step;
        Alcotest.test_case "neutralization" `Quick test_neutralization;
        Alcotest.test_case "round counting" `Quick test_round_counting;
        Alcotest.test_case "daemon contract enforced" `Quick test_daemon_contract;
        Alcotest.test_case "locality checking" `Quick test_locality_check;
        Alcotest.test_case "fault injection and recovery" `Quick test_corrupt;
        Alcotest.test_case "standard daemons select subsets" `Quick
          test_daemons_select_subset;
        Alcotest.test_case "trace convene/terminate detection" `Quick
          test_trace_convened;
        Alcotest.test_case "trace fault boundaries" `Quick
          test_trace_fault_boundary;
      ] );
  ]
