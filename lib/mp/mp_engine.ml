module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Tele = Snapcc_telemetry

module Make (A : Model.ALGO) = struct
  type event =
    | Activated of int * string option
    | Delivered of int * int

  type t = {
    h : H.t;
    rng : Random.State.t;
    deliver_bias : float;
    telemetry : Tele.Hub.t option;
    states : A.state array;  (* the true cores *)
    cache : A.state array array;  (* cache.(p).(i): last received from i-th neighbor *)
    chan : A.state option array array;  (* chan.(p).(i): pending from i-th neighbor *)
    cache_age : int array array;  (* steps since cache.(p).(i) was refreshed *)
    actions : A.state Model.action array;
    idle_for : int array;  (* activation starvation counter per process *)
    mutable steps : int;
    mutable sent : int;
    mutable delivered : int;
    mutable worst_staleness : int;
  }

  (* position of vertex [q] in [p]'s sorted neighbor array *)
  let slot t p q =
    let nbrs = H.neighbors t.h p in
    let rec find i =
      if i >= Array.length nbrs then
        invalid_arg (Printf.sprintf "mp: %d is not a neighbor of %d" q p)
      else if nbrs.(i) = q then i
      else find (i + 1)
    in
    find 0

  let create ?(seed = 0) ?(init = `Canonical) ?(deliver_bias = 0.5) ?telemetry h =
    let n = H.n h in
    let rng = Random.State.make [| seed; n; 0x3b |] in
    let mk p = match init with `Canonical -> A.init h p | `Random -> A.random_init h rng p in
    let states = Array.init n mk in
    let cache =
      Array.init n (fun p ->
          Array.map
            (fun q ->
              match init with
              | `Canonical -> states.(q)
              | `Random -> A.random_init h rng q)
            (H.neighbors h p))
    in
    let chan =
      Array.init n (fun p ->
          Array.map
            (fun q ->
              match init with
              | `Canonical -> None
              | `Random ->
                if Random.State.bool rng then Some (A.random_init h rng q) else None)
            (H.neighbors h p))
    in
    {
      h;
      rng;
      deliver_bias;
      telemetry;
      states;
      cache;
      chan;
      cache_age = Array.init n (fun p -> Array.make (H.graph_degree h p) 0);
      actions = Array.of_list (A.actions h);
      idle_for = Array.make n 0;
      steps = 0;
      sent = 0;
      delivered = 0;
      worst_staleness = 0;
    }

  let hypergraph t = t.h
  let obs t = Array.init (H.n t.h) (A.observe t.h t.states)
  let steps_taken t = t.steps
  let messages_delivered t = t.delivered
  let messages_sent t = t.sent
  let max_staleness t = t.worst_staleness

  let in_flight t =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun a m -> if m = None then a else a + 1) acc row)
      0 t.chan

  (* p's view: its own true core, neighbors through the cache.  Reading a
     non-neighbor is impossible in the message-passing model. *)
  let read_for t p q =
    if q = p then t.states.(p) else t.cache.(p).(slot t p q)

  let ctx_for t ~inputs p : A.state Model.ctx =
    { Model.h = t.h; inputs; read = read_for t p; self = p }

  let priority_action t ~inputs p =
    let ctx = ctx_for t ~inputs p in
    let rec scan i =
      if i < 0 then None
      else if t.actions.(i).Model.guard ctx then Some i
      else scan (i - 1)
    in
    scan (Array.length t.actions - 1)

  let emit t ev =
    match t.telemetry with None -> () | Some hub -> Tele.Hub.emit hub ev

  let broadcast t p =
    Array.iteri
      (fun _i q ->
        t.chan.(q).(slot t q p) <- Some t.states.(p);
        t.sent <- t.sent + 1)
      (H.neighbors t.h p)

  let activate t ~inputs p =
    let label =
      match priority_action t ~inputs p with
      | None -> None
      | Some i ->
        let ctx = ctx_for t ~inputs p in
        t.states.(p) <- t.actions.(i).Model.apply ctx;
        Some t.actions.(i).Model.label
    in
    broadcast t p;
    t.idle_for.(p) <- 0;
    emit t (Tele.Event.Mp_activated { step = t.steps; p; label });
    Activated (p, label)

  let deliver t p i =
    (match t.chan.(p).(i) with
     | Some msg ->
       t.cache.(p).(i) <- msg;
       t.cache_age.(p).(i) <- 0;
       t.chan.(p).(i) <- None;
       t.delivered <- t.delivered + 1
     | None -> ());
    let src = (H.neighbors t.h p).(i) in
    emit t (Tele.Event.Mp_delivered { step = t.steps; dst = p; src });
    Delivered (p, src)

  let pending t =
    let acc = ref [] in
    Array.iteri
      (fun p row ->
        Array.iteri (fun i m -> if m <> None then acc := (p, i) :: !acc) row)
      t.chan;
    !acc

  (* fairness bounds: a process idle for too long is force-activated; a
     cache entry stale for too long forces a delivery/refresh *)
  let fairness_bound t = 16 * H.n t.h

  let step t ~inputs =
    t.steps <- t.steps + 1;
    Array.iter
      (fun row ->
        Array.iteri
          (fun i _ ->
            row.(i) <- row.(i) + 1;
            if row.(i) > t.worst_staleness then t.worst_staleness <- row.(i))
          row)
      t.cache_age;
    let n = H.n t.h in
    for p = 0 to n - 1 do
      t.idle_for.(p) <- t.idle_for.(p) + 1
    done;
    (* forced events first *)
    let starving = ref None in
    for p = n - 1 downto 0 do
      if t.idle_for.(p) >= fairness_bound t then starving := Some p
    done;
    let stale = ref None in
    Array.iteri
      (fun p row ->
        Array.iteri
          (fun i m ->
            if m <> None && t.cache_age.(p).(i) >= fairness_bound t then
              stale := Some (p, i))
          row)
      t.chan;
    match (!starving, !stale) with
    | Some p, _ -> activate t ~inputs p
    | None, Some (p, i) -> deliver t p i
    | None, None ->
      let pend = pending t in
      if pend <> [] && Random.State.float t.rng 1.0 < t.deliver_bias then begin
        let p, i = List.nth pend (Random.State.int t.rng (List.length pend)) in
        deliver t p i
      end
      else activate t ~inputs (Random.State.int t.rng n)

  let corrupt t ~victims =
    emit t (Tele.Event.Fault { step = t.steps; victims });
    List.iter
      (fun p ->
        if p < 0 || p >= H.n t.h then invalid_arg "mp corrupt: bad victim";
        t.states.(p) <- A.random_init t.h t.rng p;
        Array.iteri
          (fun i q -> t.cache.(p).(i) <- A.random_init t.h t.rng q)
          (H.neighbors t.h p);
        Array.iteri
          (fun i q ->
            if Random.State.bool t.rng then
              t.chan.(p).(i) <- Some (A.random_init t.h t.rng q))
          (H.neighbors t.h p))
      victims
end
