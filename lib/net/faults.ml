type plan = {
  drop : float;
  delay : int;
  dup : float;
  reorder : float;
  corrupt : float;
  partition : (int * int) option;
}

let none =
  { drop = 0.; delay = 0; dup = 0.; reorder = 0.; corrupt = 0.; partition = None }

let is_pure p = p.delay = 0 && p.dup = 0. && p.reorder = 0.

let parse_prob key v =
  match float_of_string_opt v with
  | Some f when f >= 0. && f <= 1. -> Ok f
  | _ -> Error (Printf.sprintf "%s must be a probability in [0,1], got %S" key v)

let parse spec =
  let ( let* ) r f = Result.bind r f in
  let clause plan kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
    | Some i -> (
      let key = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      match key with
      | "drop" ->
        let* f = parse_prob key v in
        Ok { plan with drop = f }
      | "dup" ->
        let* f = parse_prob key v in
        Ok { plan with dup = f }
      | "reorder" ->
        let* f = parse_prob key v in
        Ok { plan with reorder = f }
      | "corrupt" ->
        let* f = parse_prob key v in
        Ok { plan with corrupt = f }
      | "delay" -> (
        match int_of_string_opt v with
        | Some d when d >= 0 -> Ok { plan with delay = d }
        | _ -> Error (Printf.sprintf "delay must be a non-negative integer, got %S" v))
      | "partition" -> (
        match String.index_opt v '-' with
        | None -> Error (Printf.sprintf "partition expects FROM-TO, got %S" v)
        | Some j -> (
          let a = String.sub v 0 j in
          let b = String.sub v (j + 1) (String.length v - j - 1) in
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some a, Some b when 0 <= a && a < b ->
            Ok { plan with partition = Some (a, b) }
          | _ ->
            Error
              (Printf.sprintf "partition expects 0 <= FROM < TO, got %S" v)))
      | _ -> Error (Printf.sprintf "unknown fault key %S" key))
  in
  let rec go plan = function
    | [] -> Ok plan
    | kv :: rest ->
      let* plan = clause plan kv in
      go plan rest
  in
  String.split_on_char ',' (String.trim spec)
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> go none

let pp ppf p =
  if p = none then Format.fprintf ppf "none"
  else begin
    let sep = ref false in
    let item fmt =
      Format.kasprintf
        (fun s ->
          if !sep then Format.pp_print_string ppf ",";
          sep := true;
          Format.pp_print_string ppf s)
        fmt
    in
    if p.drop > 0. then item "drop=%g" p.drop;
    if p.delay > 0 then item "delay=%d" p.delay;
    if p.dup > 0. then item "dup=%g" p.dup;
    if p.reorder > 0. then item "reorder=%g" p.reorder;
    if p.corrupt > 0. then item "corrupt=%g" p.corrupt;
    match p.partition with
    | Some (a, b) -> item "partition=%d-%d" a b
    | None -> ()
  end

let partitioned plan ~step ~n ~src ~dst =
  match plan.partition with
  | None -> false
  | Some (a, b) ->
    step >= a && step < b
    && n >= 2
    && let half = n / 2 in
       src < half <> (dst < half)

let link_rng ~seed ~src ~dst =
  Random.State.make [| seed; src; dst; 0x5ead |]
