module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model

module Make (A : Snapcc_runtime.Model.ALGO) = struct
  type t = {
    h : H.t;
    self : int;
    mutable core : A.state;
    cache : A.state array;  (* cache.(i): last received from i-th neighbor *)
    actions : A.state Model.action array;
  }

  let create h ~self ~core ~cache =
    if Array.length cache <> H.graph_degree h self then
      invalid_arg "Mp_view.create: cache size must equal the graph degree";
    { h; self; core; cache; actions = Array.of_list (A.actions h) }

  let core t = t.core
  let set_core t s = t.core <- s
  let cache t i = t.cache.(i)
  let refresh t ~slot s = t.cache.(slot) <- s
  let degree t = Array.length t.cache

  (* position of vertex [q] in [self]'s sorted neighbor array *)
  let slot t q =
    let nbrs = H.neighbors t.h t.self in
    let rec find i =
      if i >= Array.length nbrs then
        invalid_arg
          (Printf.sprintf "mp: %d is not a neighbor of %d" q t.self)
      else if nbrs.(i) = q then i
      else find (i + 1)
    in
    find 0

  let read t q = if q = t.self then t.core else t.cache.(slot t q)

  let ctx t ~inputs : A.state Model.ctx =
    { Model.h = t.h; inputs; read = read t; self = t.self }

  let priority_action t ~inputs =
    let ctx = ctx t ~inputs in
    let rec scan i =
      if i < 0 then None
      else if t.actions.(i).Model.guard ctx then Some i
      else scan (i - 1)
    in
    scan (Array.length t.actions - 1)

  let activate t ~inputs =
    match priority_action t ~inputs with
    | None -> None
    | Some i ->
      let ctx = ctx t ~inputs in
      t.core <- t.actions.(i).Model.apply ctx;
      Some t.actions.(i).Model.label
end
