lib/runtime/trace.ml: Array Format Fun List Model Obs Printf Snapcc_hypergraph String
