let () =
  Alcotest.run "snapcc"
    (Test_hypergraph.suite @ Test_runtime.suite @ Test_token.suite
    @ Test_cc1.suite @ Test_cc23.suite @ Test_spec.suite @ Test_metrics.suite
    @ Test_workload.suite @ Test_baselines.suite @ Test_mp.suite
    @ Test_net.suite @ Test_packed.suite @ Test_safety.suite @ Test_statics.suite @ Test_mc.suite
    @ Test_symmetry.suite
    @ Test_experiments.suite @ Test_telemetry.suite @ Test_causal.suite
    @ Test_smc.suite)
