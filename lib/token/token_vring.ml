(** Dijkstra's K-state token circulation on the {e virtual ring} of process
    indices [0 -> 1 -> ... -> n-1 -> 0].

    Self-stabilizing (K = n+1 >= #processes): from any configuration, once
    the master keeps incrementing, exactly one privilege survives.  The ring
    ignores the communication topology, so this layer is an {e oracle}: it
    violates locality unless the topology happens to contain that ring.  It
    exists to unit-test the CC layers in isolation from the tree-based
    substrate ({!Token_tree} is the honest implementation). *)

module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model

type state = { v : int }

let name = "token-vring"
let pp_state ppf s = Format.fprintf ppf "v=%d" s.v
let equal_state (a : state) b = a.v = b.v
let k_of h = H.n h + 1

(* Legitimate initial configuration: all counters equal, so the master
   (process 0) holds the unique privilege. *)
let init _h _p = { v = 0 }
let random_init h rng _p = { v = Random.State.int rng (k_of h) }

let norm h x = ((x mod k_of h) + k_of h) mod k_of h
let value h read p = norm h (read p).v
let pred h p = (p + H.n h - 1) mod H.n h

let has_token h ~read p =
  let vp = value h read p and vq = value h read (pred h p) in
  if p = 0 then vp = vq else vp <> vq

let release h ~read p =
  if not (has_token h ~read p) then read p
  else if p = 0 then { v = norm h (value h read p + 1) }
  else { v = value h read (pred h p) }

let internal_actions _h : state Model.action list = []

(* The full domain: one Dijkstra counter in [0 .. K-1]. *)
let domain h _p = List.init (k_of h) (fun v -> { v })

(* The virtual ring is index-anchored (master = process 0, fixed
   orientation), so no vertex permutation preserves it: [rename] keeps the
   counter and lets the admission pass reject the candidate.  What does
   survive is Dijkstra's counter gauge: shifting every counter by one
   (mod K) fixes all the [v_p = v_pred(p)] comparisons, hence the whole
   layer behaviour.  It generates the cyclic group Z_K. *)
let rename _h ~pi:_ _p (s : state) = s
let state_symmetries h =
  [ ("vring-shift", fun _p (s : state) -> { v = norm h (s.v + 1) }) ]
