(* Property-based generalization of the safety sweeps: on random
   hypergraphs, from random configurations, under random daemons, every
   meeting convened by CC1/CC2/CC3 satisfies the full specification and the
   fair algorithms serve everyone. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics
module X = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver

type case = { seed : int; n : int; m : int; daemon_ix : int; algo_ix : int }

let gen_case =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "seed=%d n=%d m=%d daemon=%d algo=%d" c.seed c.n c.m
        c.daemon_ix c.algo_ix)
    QCheck.Gen.(
      map
        (fun (seed, n, m, d, a) -> { seed; n; m; daemon_ix = d; algo_ix = a })
        (tup5 (int_bound 100_000) (int_range 4 10) (int_range 3 8) (int_bound 2)
           (int_bound 2)))

let daemon_of = function
  | 0 -> Daemon.synchronous
  | 1 -> Daemon.central ()
  | _ -> Daemon.random_subset ()

let run_case c =
  let h = Families.random ~seed:c.seed ~n:c.n ~m:c.m () in
  let runner = List.nth (X.paper_algorithms ()) c.algo_ix in
  runner.X.run ~seed:c.seed ~init:`Random ~daemon:(daemon_of c.daemon_ix)
    ~workload:(Workload.always_requesting h) ~steps:3_000 h

let prop_no_violations =
  QCheck.Test.make ~name:"random systems: spec holds from arbitrary configs"
    ~count:40 gen_case
    (fun c ->
      let r = run_case c in
      r.Driver.violations = [])

let prop_liveness =
  QCheck.Test.make ~name:"random systems: meetings keep convening" ~count:40
    gen_case
    (fun c ->
      let r = run_case c in
      r.Driver.summary.Metrics.convenes > 0)

let prop_fairness =
  QCheck.Test.make ~name:"random systems: CC2/CC3 serve every professor"
    ~count:25
    (QCheck.make
       ~print:(fun (s, n, m, fair3) ->
         Printf.sprintf "seed=%d n=%d m=%d cc3=%b" s n m fair3)
       QCheck.Gen.(
         tup4 (int_bound 100_000) (int_range 4 8) (int_range 3 6) bool))
    (fun (seed, n, m, use_cc3) ->
      let h = Families.random ~seed ~n ~m () in
      let runner =
        List.nth (X.paper_algorithms ()) (if use_cc3 then 2 else 1)
      in
      let r =
        runner.X.run ~seed ~init:`Random ~daemon:(Daemon.random_subset ())
          ~workload:(Workload.always_requesting h) ~steps:15_000 h
      in
      Array.for_all (fun c -> c > 0) r.Driver.participations)

(* discussion counters are consistent with participations on every run *)
let prop_two_phase_counters =
  QCheck.Test.make ~name:"random systems: one discussion per participation"
    ~count:30 gen_case
    (fun c ->
      let h = Families.random ~seed:c.seed ~n:c.n ~m:c.m () in
      let runner = List.nth (X.paper_algorithms ()) c.algo_ix in
      (* canonical start so counters begin at zero *)
      let r =
        runner.X.run ~seed:c.seed ~daemon:(daemon_of c.daemon_ix)
          ~workload:(Workload.always_requesting h) ~steps:3_000 h
      in
      Array.for_all Fun.id
        (Array.mapi
           (fun p (o : Snapcc_runtime.Obs.t) ->
             let parts = r.Driver.participations.(p) in
             let disc = o.Snapcc_runtime.Obs.discussions in
             disc = parts || disc = parts - 1)
           r.Driver.final_obs))

let suite =
  [ ( "safety:qcheck",
      List.map
        (QCheck_alcotest.to_alcotest ~long:false)
        [ prop_no_violations; prop_liveness; prop_fairness;
          prop_two_phase_counters ] );
  ]
