lib/runtime/engine.mli: Daemon Model Obs Random Snapcc_hypergraph
