(** Centralized manager baseline (Bagrodia's managers [3], degenerated to a
    single manager, §6).

    Process 0 is the coordinator: it reads the whole configuration — this
    baseline deliberately violates locality, so run it without the engine's
    locality check — and publishes an assignment plan whose image is always
    a matching (Exclusion).  Greedy by committee id: good concurrency, no
    fairness, no stabilization guarantee.
    Implements {!Snapcc_runtime.Model.ALGO}. *)

type state = {
  s : Snapcc_core.Cc_common.status;
  ptr : int option;
  plan : int option array;  (** coordinator only: assignment per professor *)
  disc : int;
}

include Snapcc_runtime.Model.ALGO with type state := state

val coordinator : int
(** The manager's vertex (0). *)

val domain : Snapcc_hypergraph.Hypergraph.t -> int -> state list
(** Exhaustive per-process domain; the coordinator's includes the product
    of all possible published plans — makes the baseline a
    {!Snapcc_mc.System.S}.  [disc] is pinned to 0. *)

val canon : Snapcc_hypergraph.Hypergraph.t -> int -> state -> state
(** Pins the observability-only [disc] counter to 0. *)

val rename :
  Snapcc_hypergraph.Hypergraph.t ->
  pi:int array -> eperm:int array -> int -> state -> state
(** Structural symmetry transport ({!Snapcc_mc.System.S}): pointer and
    published plan follow the vertex/edge permutations. *)

val state_symmetries :
  Snapcc_hypergraph.Hypergraph.t -> (string * (int -> state -> state)) list
(** No internal symmetry candidates. *)
