(** The algorithms the networked runtime can serve, keyed by name and by
    {!Codec} wire tag.

    These are the same functor applications as [Snapcc_experiments.Algos]
    (the paper's three algorithms over the honest tree token substrate);
    OCaml's applicative functors make the state types compatible, and
    keeping the instantiations here spares the node runtime a dependency
    on the experiment harness. *)

module Cc1 : Snapcc_runtime.Model.ALGO
module Cc2 : Snapcc_runtime.Model.ALGO
module Cc3 : Snapcc_runtime.Model.ALGO

(** Snapshot payload coder for the packed wire format: a bijection
    between marshalled states and the dense per-process ids of the
    checker's interned state domain ({!Snapcc_mc.Encode}), at the bytes
    level so the protocol plumbing stays monomorphic. *)
type coder = {
  to_id : proc:int -> string -> int option;
      (** [None]: the state is outside the interned domain (escapee) and
          must travel as a full marshalled snapshot. *)
  of_id : proc:int -> int -> string option;
      (** Marshalled (canonicalized) state for a domain id; [None] for an
          out-of-range id. *)
}

type entry = {
  name : string;
  tag : int;  (** {!Codec} algo tag *)
  algo : (module Snapcc_runtime.Model.ALGO);
  coder : Snapcc_hypergraph.Hypergraph.t -> coder;
      (** Built independently on each side from the shared topology —
          [Encode] interns the declared domain deterministically, so both
          ends agree on every id without exchanging a dictionary. *)
}

val all : entry list
val find : string -> entry option
val find_tag : int -> entry option
