(* Multiparty rendezvous for component-based code generation (the paper's
   §1 motivation: CSP / Ada / BIP interactions).

       dune exec examples/rendezvous_bip.exe

   A small pipeline of components — two producers, a shared bus, two
   consumers — whose multiparty interactions are committees:

       transfer1  = {producer1, bus, consumer1}   (data moves through the bus)
       transfer2  = {producer2, bus, consumer2}
       prod_sync  = {producer1, producer2}        (rate coordination)
       cons_sync  = {consumer1, consumer2}

   The two transfers conflict on the bus, so they must be mutually
   exclusive; the sync interactions conflict with the transfers on their
   endpoints.  A committee-coordination algorithm is exactly the conflict
   resolution layer a distributed code generator needs — and CC1's Maximal
   Concurrency means: whenever the two ends of an interaction are ready and
   nothing overlapping is running, the interaction fires.

   Components compute between rendezvous (bursty requests), and a transfer
   holds the bus for a couple of steps (the 2-phase discussion: both ends
   must execute the data exchange — the essential phase — before either may
   disengage). *)

module H = Snapcc_hypergraph.Hypergraph
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics
module Algos = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver

let components = [| "producer1"; "producer2"; "bus"; "consumer1"; "consumer2" |]
let p1 = 0
and p2 = 1
and bus = 2
and c1 = 3
and c2 = 4

let interactions =
  [ ("transfer1", [ p1; bus; c1 ]);
    ("transfer2", [ p2; bus; c2 ]);
    ("prod_sync", [ p1; p2 ]);
    ("cons_sync", [ c1; c2 ]);
  ]

let () =
  let h = H.create ~n:(Array.length components) (List.map snd interactions) in
  Format.printf "component system: %a@.@." H.pp h;
  (* components compute for a while between rendezvous *)
  let workload =
    Workload.bursty ~seed:5 ~p_request:0.25 ~disc_len:(fun _ -> 2) h
  in
  let r =
    Algos.Run_cc1.run ~seed:7 ~daemon:(Daemon.random_subset ()) ~workload
      ~steps:20_000 h
  in
  assert (r.Driver.violations = []);
  Format.printf "%a@.@." Driver.pp_result r;

  Format.printf "%-10s fired@." "interaction";
  List.iteri
    (fun e (name, _) -> Format.printf "%-10s %5d@." name r.Driver.convene_count.(e))
    interactions;

  (* the bus is the bottleneck: transfers are serialized on it, while
     prod_sync/cons_sync can overlap each other and nothing else *)
  let fired e = r.Driver.convene_count.(e) in
  assert (fired 0 > 0 && fired 1 > 0 && fired 2 > 0 && fired 3 > 0);
  Format.printf
    "@.every interaction fired; exclusion held on the bus throughout \
     (%d transfers serialized), max %d interactions overlapped.@."
    (fired 0 + fired 1)
    r.Driver.summary.Metrics.max_concurrency
