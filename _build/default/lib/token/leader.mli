(** Self-stabilizing leader election and BFS spanning tree
    (minimum identifier).

    Classic construction with the distance bound [dist < n] eliminating
    ghost identifiers.  Beyond the usual [lead]/[dist]/[par] triple, each
    process {e publishes} its ordered list of tree children: the token
    layer's Euler/DFS structure needs a process to know its position among
    its siblings, and siblings are not necessarily neighbors — so the
    parent publishes, children read. *)

type t = {
  lead : int;  (** claimed leader identifier *)
  dist : int;  (** claimed distance to the leader *)
  par : int;  (** parent vertex index, [-1] when claiming to be root *)
  childs : int array;  (** published ordered (ascending) tree children *)
}

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val candidate :
  Snapcc_hypergraph.Hypergraph.t -> (int -> t) -> int -> int * int * int
(** The lexicographically minimal [(lead, dist, par)] claim available to a
    process: its own self-root claim or a neighbor's claim at distance +1
    (claims at distance [>= n] are ghosts and ignored). *)

val computed_children :
  Snapcc_hypergraph.Hypergraph.t -> (int -> t) -> int -> int array
(** Neighbors currently pointing at the process with consistent
    lead/distance. *)

val tree_ok : Snapcc_hypergraph.Hypergraph.t -> (int -> t) -> int -> bool
val childs_ok : Snapcc_hypergraph.Hypergraph.t -> (int -> t) -> int -> bool

val stable : Snapcc_hypergraph.Hypergraph.t -> (int -> t) -> bool
(** Global legitimacy: every process agrees with its candidate and
    publishes exactly its computed children — the terminal predicate of
    the election. *)

val is_root : Snapcc_hypergraph.Hypergraph.t -> t -> self:int -> bool
(** Local root claim: zero distance to one's own identifier. *)

val init : Snapcc_hypergraph.Hypergraph.t -> int -> t
(** The legitimate configuration: min-identifier root, BFS distances,
    minimum-index parents, consistent child lists. *)

val random_init : Snapcc_hypergraph.Hypergraph.t -> Random.State.t -> int -> t

val actions :
  Snapcc_hypergraph.Hypergraph.t -> t Snapcc_runtime.Model.action list
(** [LE-childs] then [LE-tree] (higher priority), both self-disabling. *)

(** Standalone wrapper for testing stabilization in isolation. *)
module Algo : Snapcc_runtime.Model.ALGO with type state = t
