(* The statistical tier: seed determinism, sequential-vs-parallel merge
   equality, estimator coverage on known-probability fixtures, SPRT
   accept/reject with early stopping, agreement with the exhaustive
   checker on single2, and the cmdliner-level --burst-at/--soak
   precedence contract of lib/cli. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Tele = Snapcc_telemetry
module Smc = Snapcc_smc
module Cli = Snapcc_cli.Cli

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg ?(algo = "cc1") ?(topo = "single2") ?(workload = "always")
    ?(daemon = "random") ?(trials = 60) ?(budget = 200) ?(workers = 1)
    ?(seed = 42) ?sprt ?sprt_within () =
  { Smc.Runner.algo;
    topo_name = topo;
    topo = Families.by_name topo;
    daemon;
    workload;
    disc = 2;
    budget;
    trials;
    workers;
    seed;
    confidence = 0.95;
    engine = `Packed;
    sprt;
    sprt_delta = 0.02;
    sprt_within }

let report c =
  match Smc.Runner.run c with
  | Ok r -> r
  | Error msg -> Alcotest.fail ("smc runner: " ^ msg)

let report_string r = Tele.Json.to_string (Smc.Report.to_json r)

(* ---- per-trial seed derivation ---- *)

let test_derive_disjoint () =
  let seen = Hashtbl.create 64 in
  for trial = 0 to 999 do
    let s = Smc.Trial.derive ~seed:42 trial in
    check "derived seed non-negative" true (s >= 0);
    check "derived seeds distinct" false (Hashtbl.mem seen s);
    Hashtbl.replace seen s ()
  done;
  (* different base seeds decorrelate the same trial index *)
  check "base seed matters" false
    (Smc.Trial.derive ~seed:1 0 = Smc.Trial.derive ~seed:2 0)

(* ---- seed determinism: same seed => byte-identical report ---- *)

let test_seed_determinism () =
  let r1 = report (cfg ()) in
  let r2 = report (cfg ()) in
  Alcotest.(check string) "same seed, same report" (report_string r1)
    (report_string r2);
  let r3 = report (cfg ~seed:43 ()) in
  check "different seed, different report" false
    (report_string r1 = report_string r3)

(* ---- sequential == parallel ---- *)

let test_pool_merge_order () =
  (* synthetic records: the pool must return f applied to exactly
     [offset, offset+count) in index order, for any worker count *)
  let f i =
    { Smc.Trial.trial = i;
      seed = Smc.Trial.derive ~seed:9 i;
      stabilized = (if i mod 3 = 0 then Some i else None);
      convenes = i mod 5;
      violations = 0;
      deadlocked = i mod 7 = 0;
      steps = i;
      waits = [ i; i + 1 ] }
  in
  let seq = Smc.Pool.run ~workers:1 ~offset:3 ~count:41 f in
  List.iter
    (fun w ->
      let par = Smc.Pool.run ~workers:w ~offset:3 ~count:41 f in
      check (Printf.sprintf "workers=%d merge equals sequential" w) true
        (par = seq))
    [ 2; 3; 5; 8 ]

let test_sequential_vs_parallel_report () =
  let r1 = report (cfg ~workers:1 ()) in
  let r3 = report (cfg ~workers:3 ()) in
  Alcotest.(check string) "workers 1 and 3 merge to identical reports"
    (report_string r1) (report_string r3)

(* ---- estimator quantiles against table values ---- *)

let close ?(tol = 5e-3) a b = Float.abs (a -. b) <= tol

let test_quantiles () =
  check "z(0.975)" true (close (Smc.Estimator.z_quantile 0.975) 1.959964);
  check "z(0.995)" true (close (Smc.Estimator.z_quantile 0.995) 2.575829);
  check "z symmetric" true
    (close
       (Smc.Estimator.z_quantile 0.975 +. Smc.Estimator.z_quantile 0.025)
       0.);
  check "t(df=1, 0.975)" true
    (close ~tol:5e-2 (Smc.Estimator.t_quantile ~df:1 0.975) 12.7062);
  check "t(df=2, 0.975)" true
    (close (Smc.Estimator.t_quantile ~df:2 0.975) 4.302653);
  check "t(df=10, 0.975)" true
    (close (Smc.Estimator.t_quantile ~df:10 0.975) 2.228139);
  check "t(df=100, 0.975)" true
    (close (Smc.Estimator.t_quantile ~df:100 0.975) 1.983972)

(* ---- CI coverage on a known-probability Bernoulli fixture ----

   Deterministic rng, 40 replications of n=150 Bernoulli(0.3) samples:
   the 95% Wilson interval must contain the true p in (nearly) 95% of
   replications.  The count is a fixed function of the seed; we assert
   the generic >= 90% so the test documents coverage, not one rng. *)

let test_wilson_coverage () =
  let rng = Random.State.make [| 20260808 |] in
  let p_true = 0.3 in
  let reps = 40 and n = 150 in
  let covered = ref 0 in
  for _ = 1 to reps do
    let successes = ref 0 in
    for _ = 1 to n do
      if Random.State.float rng 1.0 < p_true then incr successes
    done;
    let _, ci =
      Smc.Estimator.wilson ~confidence:0.95 ~successes:!successes ~trials:n
    in
    if ci.Smc.Estimator.lo <= p_true && p_true <= ci.Smc.Estimator.hi then
      incr covered
  done;
  check
    (Printf.sprintf "wilson 95%% CI covered %d/%d" !covered reps)
    true
    (!covered >= (reps * 90 / 100))

let test_student_t_coverage () =
  let rng = Random.State.make [| 81808 |] in
  let mu = 4.5 in
  let reps = 40 and n = 100 in
  let covered = ref 0 in
  for _ = 1 to reps do
    let xs = List.init n (fun _ -> float_of_int (Random.State.int rng 10)) in
    let _, ci = Smc.Estimator.student_t_ci ~confidence:0.95 xs in
    if ci.Smc.Estimator.lo <= mu && mu <= ci.Smc.Estimator.hi then
      incr covered
  done;
  check
    (Printf.sprintf "student-t 95%% CI covered %d/%d" !covered reps)
    true
    (!covered >= (reps * 90 / 100));
  (* degenerate inputs collapse to the mean instead of going NaN (the
     JSON printer renders non-finite floats as null) *)
  let m, ci = Smc.Estimator.student_t_ci ~confidence:0.95 [ 3. ] in
  check "single sample collapses" true
    (m = 3. && ci.Smc.Estimator.lo = 3. && ci.Smc.Estimator.hi = 3.);
  let m, ci = Smc.Estimator.student_t_ci ~confidence:0.95 [ 2.; 2.; 2. ] in
  check "zero variance collapses" true
    (m = 2. && ci.Smc.Estimator.lo = 2. && ci.Smc.Estimator.hi = 2.)

(* ---- SPRT on rigged fixtures ---- *)

let sprt_spec theta =
  { Smc.Sprt.theta; delta = 0.05; alpha = 0.05; beta = 0.05 }

let test_sprt_accept () =
  (* true p ~ 0.98 against theta = 0.7: must accept, early *)
  let t = Smc.Sprt.create (sprt_spec 0.7) in
  let fed = ref 0 in
  (try
     for i = 0 to 499 do
       if Smc.Sprt.verdict t <> Smc.Sprt.Undecided then raise Exit;
       incr fed;
       Smc.Sprt.feed t (i mod 50 <> 49)
     done
   with Exit -> ());
  let o = Smc.Sprt.outcome t in
  check "accepts a clearly-true claim" true
    (o.Smc.Sprt.verdict = Smc.Sprt.Accepted);
  check "stops well before the truncation bound" true
    (o.Smc.Sprt.consumed < 100);
  check_int "consumed counts fed observations" o.Smc.Sprt.consumed !fed

let test_sprt_reject () =
  (* true p ~ 0.1 against theta = 0.9: must reject, early *)
  let t = Smc.Sprt.create (sprt_spec 0.9) in
  (try
     for i = 0 to 499 do
       if Smc.Sprt.verdict t <> Smc.Sprt.Undecided then raise Exit;
       Smc.Sprt.feed t (i mod 10 = 0)
     done
   with Exit -> ());
  let o = Smc.Sprt.outcome t in
  check "rejects a clearly-false claim" true
    (o.Smc.Sprt.verdict = Smc.Sprt.Rejected);
  check "stops well before the truncation bound" true
    (o.Smc.Sprt.consumed < 100)

let test_sprt_decided_is_frozen () =
  let t = Smc.Sprt.create (sprt_spec 0.7) in
  while Smc.Sprt.verdict t = Smc.Sprt.Undecided do
    Smc.Sprt.feed t true
  done;
  let o = Smc.Sprt.outcome t in
  (* feeding a full batch past the decision must not move anything —
     the parallel runner's worker-count independence rests on this *)
  for _ = 1 to 128 do
    Smc.Sprt.feed t false
  done;
  let o' = Smc.Sprt.outcome t in
  check "outcome frozen after decision" true (o = o')

let test_sprt_runner_early_stop () =
  (* cc1 on single2 stabilizes essentially always within 200 steps: the
     SPRT run must accept and consume fewer trials than the fixed run *)
  let r = report (cfg ~trials:400 ~sprt:0.6 ()) in
  match r.Smc.Report.sprt with
  | None -> Alcotest.fail "expected an sprt outcome"
  | Some o ->
    check "runner sprt accepted" true (o.Smc.Sprt.verdict = Smc.Sprt.Accepted);
    check "runner sprt stopped early" true (o.Smc.Sprt.consumed < 400);
    check "report aggregates only executed trials" true
      (r.Smc.Report.trials < 400)

(* ---- agreement with the exhaustive checker on single2 ----

   `ccsim check --algo cc1,cc2,cc3 --token vring --family single -n 2'
   (the tier-1 @check gate) verifies: no deadlock, no safety violation,
   from every initial configuration.  The sampler on the same system
   must agree: every trial stabilizes within a generous budget, zero
   deadlocks, zero monitor verdicts. *)

let test_agreement_with_check_single2 () =
  let r = report (cfg ~algo:"cc1-vring" ~trials:150 ~budget:400 ()) in
  check_int "every trial stabilized" 150 r.Smc.Report.stabilized.Smc.Report.count;
  check_int "no deadlock (check proves none exists)" 0
    r.Smc.Report.deadlock.Smc.Report.count;
  check_int "no monitor violation" 0 r.Smc.Report.violations;
  match r.Smc.Report.stabilization with
  | None -> Alcotest.fail "expected a stabilization distribution"
  | Some d ->
    check "mean stabilization within the exact diameter bound" true
      (d.Smc.Report.mean >= 1. && d.Smc.Report.mean <= 400.)

(* ---- smc_trial event JSON round-trip ---- *)

let test_event_roundtrip () =
  let evs =
    [ Tele.Event.Smc_trial
        { trial = 7; seed = 123456789; stabilized = Some 31; convenes = 4;
          violations = 0; deadlocked = false; steps = 200 };
      Tele.Event.Smc_trial
        { trial = 8; seed = 987654321; stabilized = None; convenes = 0;
          violations = 1; deadlocked = true; steps = 64 } ]
  in
  List.iter
    (fun ev ->
      match Tele.Event.of_json (Tele.Event.to_json ev) with
      | Ok ev' -> check "smc_trial round-trips" true (ev = ev')
      | Error msg -> Alcotest.fail ("smc_trial round-trip: " ^ msg))
    evs

(* ---- cmdliner-level --burst-at/--soak precedence (lib/cli) ---- *)

let eval_burst argv =
  let open Cmdliner in
  let steps_arg =
    Arg.(value & opt Cli.pos_int_conv 100 & info [ "steps" ])
  in
  let term =
    Term.(
      const (fun burst soak steps -> Cli.resolve_burst ~steps ~soak burst)
      $ Cli.burst_arg $ Cli.soak_arg $ steps_arg)
  in
  let cmd = Cmd.v (Cmd.info "test-burst") term in
  match Cmd.eval_value ~argv cmd with
  | Ok (`Ok v) -> v
  | _ -> Alcotest.fail "cmdliner rejected the test argv"

let test_burst_soak_precedence () =
  (* --soak alone derives steps/2 *)
  (match eval_burst [| "test-burst"; "--soak"; "--steps"; "100" |] with
   | Some 50 -> ()
   | b ->
     Alcotest.failf "--soak alone: expected Some 50, got %s"
       (match b with Some v -> string_of_int v | None -> "None"));
  (* explicit --burst-at wins over --soak, in either flag order *)
  check_int "--burst-at 7 --soak keeps 7" 7
    (Option.get
       (eval_burst [| "test-burst"; "--burst-at"; "7"; "--soak" |]));
  check_int "--soak --burst-at 7 keeps 7" 7
    (Option.get
       (eval_burst
          [| "test-burst"; "--soak"; "--burst-at"; "7"; "--steps"; "100" |]));
  (* neither flag: no burst *)
  check "no flags, no burst" true
    (eval_burst [| "test-burst" |] = None)

let suite =
  [ ( "smc",
      [ Alcotest.test_case "derived seeds distinct" `Quick
          test_derive_disjoint;
        Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
        Alcotest.test_case "pool merge order (synthetic)" `Quick
          test_pool_merge_order;
        Alcotest.test_case "sequential == parallel report" `Quick
          test_sequential_vs_parallel_report;
        Alcotest.test_case "normal/t quantiles" `Quick test_quantiles;
        Alcotest.test_case "wilson coverage (Bernoulli fixture)" `Quick
          test_wilson_coverage;
        Alcotest.test_case "student-t coverage + degenerate inputs" `Quick
          test_student_t_coverage;
        Alcotest.test_case "sprt accepts true claim early" `Quick
          test_sprt_accept;
        Alcotest.test_case "sprt rejects false claim early" `Quick
          test_sprt_reject;
        Alcotest.test_case "sprt frozen after decision" `Quick
          test_sprt_decided_is_frozen;
        Alcotest.test_case "sprt early stop through the runner" `Quick
          test_sprt_runner_early_stop;
        Alcotest.test_case "agreement with ccsim check on single2" `Quick
          test_agreement_with_check_single2;
        Alcotest.test_case "smc_trial event round-trip" `Quick
          test_event_roundtrip;
        Alcotest.test_case "--burst-at/--soak precedence (cmdliner)" `Quick
          test_burst_soak_precedence ] ) ]
