test/test_hypergraph.ml: Alcotest Array Filename Fun List Printf QCheck QCheck_alcotest Snapcc_hypergraph Sys
