lib/experiments/exp_message_passing.ml: Algos Array Float List Snapcc_analysis Snapcc_hypergraph Snapcc_mp Snapcc_runtime Snapcc_workload Table
