(* Metrics: concurrency accounting, waiting spans, convene counters. *)

module Families = Snapcc_hypergraph.Families
module Obs = Snapcc_runtime.Obs
module Metrics = Snapcc_analysis.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let idle = Obs.make Obs.Idle
let looking = Obs.make Obs.Looking
let member status eid = Obs.make ~pointer:(Some eid) status

(* fig2: e0={v0,v1} e1={v0,v2,v4} e2={v2,v3} *)
let h () = Families.fig2 ()

let test_waiting_span () =
  let h = h () in
  let t = Metrics.create h ~initial:(Array.make 5 idle) in
  (* v2 and v3 start waiting at step 1 *)
  let s1 = [| idle; idle; looking; looking; idle |] in
  Metrics.on_step t ~step:1 ~round:1 ~before:(Array.make 5 idle) ~after:s1;
  let s2 = [| idle; idle; member Obs.Looking 2; member Obs.Looking 2; idle |] in
  Metrics.on_step t ~step:2 ~round:1 ~before:s1 ~after:s2;
  (* convene at step 5, round 3 *)
  let s3 = [| idle; idle; member Obs.Waiting 2; member Obs.Waiting 2; idle |] in
  Metrics.on_step t ~step:5 ~round:3 ~before:s2 ~after:s3;
  let s = Metrics.finish t ~step:6 ~round:3 in
  check_int "one convene" 1 s.Metrics.convenes;
  check_int "two served waits" 2 (List.length s.Metrics.completed_waits_steps);
  check "waits of 4 steps" true
    (List.for_all (fun d -> d = 4) s.Metrics.completed_waits_steps);
  check "waits of 2 rounds" true
    (List.for_all (fun d -> d = 2) s.Metrics.completed_waits_rounds);
  check_int "participations v2" 1 s.Metrics.participation.(2);
  check_int "max concurrency" 1 s.Metrics.max_concurrency

let test_open_waits_and_starvation () =
  let h = h () in
  let t = Metrics.create h ~initial:(Array.make 5 idle) in
  let s1 = [| looking; idle; idle; idle; looking |] in
  Metrics.on_step t ~step:1 ~round:1 ~before:(Array.make 5 idle) ~after:s1;
  (* v0 leaves the waiting state without meeting; v4 keeps waiting *)
  let s2 = [| idle; idle; idle; idle; looking |] in
  Metrics.on_step t ~step:2 ~round:1 ~before:s1 ~after:s2;
  let s = Metrics.finish t ~step:10 ~round:5 in
  check_int "one open wait" 1 (List.length s.Metrics.open_waits_steps);
  Alcotest.(check (list int)) "v4 is the starving one" [ 4 ] s.Metrics.starved;
  check_int "max wait counts the open span" 9 s.Metrics.max_wait_steps

let test_concurrency_mean () =
  let h = h () in
  let meet = [| member Obs.Waiting 0; member Obs.Done 0; member Obs.Waiting 2; member Obs.Waiting 2; idle |] in
  let t = Metrics.create h ~initial:(Array.make 5 idle) in
  Metrics.on_step t ~step:1 ~round:1 ~before:(Array.make 5 idle) ~after:meet;
  Metrics.on_step t ~step:2 ~round:1 ~before:meet ~after:meet;
  let s = Metrics.finish t ~step:2 ~round:1 in
  check_int "two simultaneous meetings" 2 s.Metrics.max_concurrency;
  check "mean concurrency 2.0" true (abs_float (s.Metrics.mean_concurrency -. 2.0) < 1e-9);
  (* convenes counted once per meeting, not per step *)
  check_int "two convenes" 2 s.Metrics.convenes

let test_inherited_meeting_not_waiting () =
  let h = h () in
  (* v2,v3 meet from the start: their 'waiting' statuses are not waits *)
  let initial = [| idle; idle; member Obs.Waiting 2; member Obs.Waiting 2; idle |] in
  let t = Metrics.create h ~initial in
  Metrics.on_step t ~step:1 ~round:1 ~before:initial ~after:initial;
  let s = Metrics.finish t ~step:5 ~round:2 in
  check_int "no open waits for meeting members" 0
    (List.length s.Metrics.open_waits_steps)

let test_helpers () =
  check "mean of empty" true (Metrics.mean [] = 0.);
  check "mean" true (abs_float (Metrics.mean [ 1; 2; 3 ] -. 2.) < 1e-9);
  check_int "maximum of empty" 0 (Metrics.maximum []);
  check_int "maximum" 9 (Metrics.maximum [ 4; 9; 1 ]);
  check_int "p50 empty" 0 (Metrics.percentile 0.5 []);
  check_int "p50 of 1..10" 5 (Metrics.percentile 0.5 (List.init 10 (fun i -> i + 1)));
  check_int "p95 of 1..100" 95 (Metrics.percentile 0.95 (List.init 100 (fun i -> i + 1)));
  check_int "p100 is max" 100 (Metrics.percentile 1.0 (List.init 100 (fun i -> i + 1)));
  check_int "singleton" 7 (Metrics.percentile 0.5 [ 7 ])

(* nearest-rank edge cases; Registry and Stats implement the same rule, so
   the offline JSONL aggregation agrees with these (see test_telemetry) *)
let test_percentile_edges () =
  check_int "singleton p0" 7 (Metrics.percentile 0.0 [ 7 ]);
  check_int "singleton p100" 7 (Metrics.percentile 1.0 [ 7 ]);
  check_int "singleton p99" 7 (Metrics.percentile 0.99 [ 7 ]);
  check_int "all-equal p50" 4 (Metrics.percentile 0.5 [ 4; 4; 4; 4 ]);
  check_int "all-equal p90" 4 (Metrics.percentile 0.9 [ 4; 4; 4; 4 ]);
  check_int "all-equal p100" 4 (Metrics.percentile 1.0 [ 4; 4; 4; 4 ]);
  (* rank = ceil(0.9*10) = 9 → the 9th smallest of 0..9 *)
  check_int "unsorted input" 8 (Metrics.percentile 0.9 [ 9; 1; 5; 2; 8; 3; 7; 4; 6; 0 ]);
  check_int "two elements p50" 1 (Metrics.percentile 0.5 [ 1; 2 ]);
  check_int "two elements p51" 2 (Metrics.percentile 0.51 [ 1; 2 ])

let test_timeline_rendering () =
  let h = h () in
  let looking = Obs.make Obs.Looking in
  let tr =
    Snapcc_runtime.Trace.create h ~initial:(Array.make 5 looking)
  in
  let meet = [| looking; looking; member Obs.Waiting 2; member Obs.Done 2; looking |] in
  let record step obs =
    Snapcc_runtime.Trace.record tr
      { Snapcc_runtime.Model.step; selected = []; executed = []; neutralized = [];
        round = 0; terminal = false }
      obs
  in
  record 0 meet;
  record 1 meet;
  record 2 (Array.make 5 looking);
  record 3 (Array.make 5 looking);
  let s =
    Format.asprintf "%a" (Snapcc_runtime.Trace.pp_timeline ~width:4) tr
  in
  let lines = String.split_on_char '\n' s in
  check_int "one row per committee" 3 (List.length lines);
  (* e2 = {3,4} met during the first half only *)
  let row2 = List.nth lines 2 in
  check "meeting rendered then cleared" true
    (String.length row2 >= 4
     &&
     let tail = String.sub row2 (String.length row2 - 4) 4 in
     tail = "##..")

let suite =
  [ ( "metrics",
      [ Alcotest.test_case "waiting spans" `Quick test_waiting_span;
        Alcotest.test_case "open waits and starvation" `Quick
          test_open_waits_and_starvation;
        Alcotest.test_case "concurrency accounting" `Quick test_concurrency_mean;
        Alcotest.test_case "inherited meetings are not waits" `Quick
          test_inherited_meeting_not_waiting;
        Alcotest.test_case "helpers" `Quick test_helpers;
        Alcotest.test_case "percentile nearest-rank edges" `Quick
          test_percentile_edges;
        Alcotest.test_case "timeline rendering" `Quick test_timeline_rendering;
      ] );
  ]
