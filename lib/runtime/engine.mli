(** Simulation engine: executes an algorithm under a daemon, maintaining
    round accounting (§2.2), weak-fairness counters and fault injection.

    The engine is deliberately step-wise: callers (workloads, monitors,
    experiments) supply the input predicates for each step and observe the
    resulting {!Model.step_report}, so every measurement in the repository
    is made against the exact semantics of the model. *)

module Make (A : Model.ALGO) : sig
  type t

  val create :
    ?seed:int ->
    ?check_locality:bool ->
    ?init:[ `Canonical | `Random | `States of A.state array ] ->
    ?packed:A.state Model.packed ->
    daemon:Daemon.t ->
    Snapcc_hypergraph.Hypergraph.t ->
    t
  (** [packed] (see {!Model.packed}, produced by [Snapcc_mc.Packed])
      enables the table-driven fast path: guard scans become packed-entry
      lookups keyed by a dense-id mirror of the configuration, with
      successor ids written straight from the tables.  Statements still
      execute as closures against the true states, so a packed run is
      {e trace-identical} to the closure run of the same seed — same
      enabled sets, same daemon draws, same reports (asserted by the parity
      test suite).  Processes without a stored table fall back to the
      closure scan cell by cell, and the whole fast path degrades to
      closures if the interner ever overflows (never silently wrong).

      [check_locality] (default [false]) makes every state read performed by
      a guard or statement of process [p] assert (raising [Failure]) that
      the target is [p] or a neighbor of [p] — a dynamic check that the
      algorithm respects the locally-shared-variable model.  It only sees
      the reads of the one execution being run; the static pass
      ([Snapcc_statics.Analyze], surfaced as [ccsim lint]) evaluates every
      action against enumerated and random configurations and checks the
      same locality condition on the recorded read-sets, along with
      write-ownership and determinism.  Use [check_locality] as a cheap
      guard rail inside long simulations, and the static pass as the CI
      gate.  [`Random] draws each process state with [A.random_init]
      (arbitrary initial configuration of §2.5). *)

  val engine_kind : t -> [ `Packed | `Closure ]
  (** The path currently in effect — [`Closure] when no tables were given
      or after an interner overflow dropped the fast path. *)

  val hypergraph : t -> Snapcc_hypergraph.Hypergraph.t
  val states : t -> A.state array
  (** A copy of the current configuration. *)

  val state : t -> int -> A.state
  val set_states : t -> A.state array -> unit
  val obs : t -> Obs.t array
  val steps_taken : t -> int
  val rounds : t -> int
  (** Number of completed rounds. *)

  val enabled : t -> inputs:Model.inputs -> int list
  val is_terminal : t -> inputs:Model.inputs -> bool

  val enabled_action : t -> inputs:Model.inputs -> int -> string option
  (** Label of the highest-priority enabled action of a process, if any. *)

  val step : t -> inputs:Model.inputs -> Model.step_report
  (** One step: daemon selection, atomic execution of the highest-priority
      enabled action of each selected process against the pre-step
      configuration, then round/fairness bookkeeping.  In a terminal
      configuration the report has [terminal = true] and nothing changes. *)

  val run :
    t -> steps:int -> inputs_at:(t -> Model.inputs) ->
    ?on_step:(t -> Model.step_report -> unit) ->
    ?stop_when:(t -> bool) ->
    unit -> [ `Terminal | `Stopped | `Steps_exhausted ]
  (** Convenience loop: at most [steps] steps, recomputing inputs before
      each step; stops early on a terminal configuration or when
      [stop_when] holds (checked after each step). *)

  val corrupt : t -> ?rng:Random.State.t -> victims:int list -> unit -> unit
  (** Transient-fault injection: replaces the state of each victim with an
      arbitrary one ([A.random_init]), resetting round accounting the way an
      adversary would — the engine's round counter keeps increasing, but
      fairness counters restart. *)

  val rng : t -> Random.State.t

  val profile : t -> (string * int) list
  (** Cheap monotonic hot-path counters, surfaced in the bench artifacts:
      [engine_scan_hits] / [engine_scan_fallbacks] (guard scans served by
      the packed tables vs dropped to closures), [engine_applies]
      (statements executed), [engine_selects] (non-terminal daemon
      selections).  No wall-clock reads — safe on the hot path. *)
end
