(** Registry of model-checkable systems: the paper's algorithms (and the
    deliberately broken validation variants) composed with a token layer
    and equipped with the finite domain + canonicalization of {!System.S}.

    The committee layers carry one unbounded counter each ([disc]; CC3 also
    [cur], read only modulo the degree): [canon] resets / normalizes them,
    which is invisible to every guard and statement, so the quotient is
    exact.  Token domains come from {!Snapcc_token.Layer.S.domain}. *)

module Cc1_sys
    (T : Snapcc_token.Layer.S)
    (M : Snapcc_core.Cc1.S with type token_state = T.state) :
  System.S with type state = M.state
(** CC1's committee layer over a token domain, as a checkable system.
    Exposed as a functor (not only through {!all}'s abstract packages) so
    runtimes can equip a {e typed} [Model.ALGO] instance with the packed
    tables/interner of the same state type — the engines' packed fast
    path and the networked runtime's snapshot coder both need the state
    equality that [(module System.S)] erases. *)

module Cc23_sys
    (T : Snapcc_token.Layer.S)
    (M : sig
      include
        Snapcc_runtime.Model.ALGO
          with type state = Snapcc_core.Cc23.cc * T.state
    end)
    (C : sig
      val cursor : bool
    end) : System.S with type state = M.state
(** CC2 ([cursor = false]) / CC3 ([cursor = true]); see {!Cc1_sys} for
    why the functor is public. *)

module Dining_sys : System.S with type state = Snapcc_baselines.Dining.state
(** The §6 dining-philosophers baseline as a checkable system (used by the
    exact static tier; not an {!all} entry — the baselines make no
    stabilization claim, so the checker's progress analysis does not apply). *)

module Central_sys : System.S with type state = Snapcc_baselines.Central.state
(** The §6 centralized-manager baseline as a checkable system (deliberately
    non-local: analyses must waive {!Snapcc_statics.Report.Locality}). *)

type entry = {
  key : string;  (** CLI name, e.g. ["cc1"], ["cc1-inverted"] *)
  title : string;
  broken : bool;  (** a deliberate defect: the checker must find it *)
  make : string -> (module System.S);
      (** instantiate with a token-layer key; raises [Invalid_argument] on
          unknown tokens *)
}

val token_keys : string list
(** ["vring"; "tree"; "null"]. *)

val all : entry list
val find : string -> entry option
