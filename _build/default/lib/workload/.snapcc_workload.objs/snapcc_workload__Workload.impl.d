lib/workload/workload.ml: Array List Printf Random Snapcc_hypergraph Snapcc_runtime
