test/test_token.ml: Alcotest Array Fun List Printf QCheck QCheck_alcotest Snapcc_hypergraph Snapcc_runtime Snapcc_token
