type edge = { eid : int; members : int array }

type t = {
  n : int;
  edges : edge array;
  ids : int array;
  id_rev : (int, int) Hashtbl.t;
  incident : int array array;
  neighbors : int array array;
  adjacency : int array array;
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let sorted_dedup xs =
  let xs = List.sort_uniq compare xs in
  Array.of_list xs

(* Connectivity of the underlying network via DFS over adjacency lists. *)
let connected n adjacency =
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        Array.iter visit adjacency.(v)
      end
    in
    visit 0;
    Array.for_all Fun.id seen
  end

let build_tables ~n ~edges =
  let incident = Array.make n [] in
  let nbr = Array.make n [] in
  Array.iter
    (fun e ->
      Array.iter
        (fun v ->
          incident.(v) <- e.eid :: incident.(v);
          Array.iter (fun u -> if u <> v then nbr.(v) <- u :: nbr.(v)) e.members)
        e.members)
    edges;
  let incident = Array.map (fun l -> sorted_dedup l) incident in
  let neighbors = Array.map (fun l -> sorted_dedup l) nbr in
  (incident, neighbors)

let create ?ids ~n edge_lists =
  if n < 1 then invalid "hypergraph must have at least one vertex (got %d)" n;
  let ids = match ids with None -> Array.init n (fun v -> v) | Some a -> a in
  if Array.length ids <> n then
    invalid "ids array has length %d, expected %d" (Array.length ids) n;
  let id_rev = Hashtbl.create n in
  Array.iteri
    (fun v id ->
      if Hashtbl.mem id_rev id then invalid "duplicate identifier %d" id;
      Hashtbl.add id_rev id v)
    ids;
  let mk_edge eid members =
    let members = sorted_dedup members in
    if Array.length members < 2 then
      invalid "committee #%d has fewer than 2 distinct members" eid;
    Array.iter
      (fun v ->
        if v < 0 || v >= n then invalid "committee #%d: member %d out of range" eid v)
      members;
    { eid; members }
  in
  let edges = Array.of_list (List.mapi mk_edge edge_lists) in
  if Array.length edges = 0 then invalid "hypergraph must have at least one committee";
  let seen = Hashtbl.create (Array.length edges) in
  Array.iter
    (fun e ->
      let key = Array.to_list e.members in
      if Hashtbl.mem seen key then
        invalid "duplicate committee {%s}"
          (String.concat "," (List.map string_of_int key));
      Hashtbl.add seen key ())
    edges;
  let incident, neighbors = build_tables ~n ~edges in
  Array.iteri
    (fun v es ->
      if Array.length es = 0 then
        invalid "professor %d belongs to no committee" v)
    incident;
  if not (connected n neighbors) then
    invalid "underlying communication network is disconnected";
  { n; edges; ids; id_rev; incident; neighbors; adjacency = neighbors }

let n h = h.n
let m h = Array.length h.edges
let edges h = h.edges

let edge h eid =
  if eid < 0 || eid >= Array.length h.edges then
    invalid "edge index %d out of range" eid;
  h.edges.(eid)

let edge_members h eid = (edge h eid).members
let id h v = h.ids.(v)
let vertex_of_id h i = Hashtbl.find h.id_rev i
let incident h v = h.incident.(v)
let neighbors h v = h.neighbors.(v)

let are_neighbors h u v = Array.exists (fun w -> w = v) h.neighbors.(u)

let mem_edge h ~vertex ~eid =
  Array.exists (fun v -> v = vertex) (edge h eid).members

let conflicting h e1 e2 =
  let m2 = (edge h e2).members in
  Array.exists (fun v -> Array.exists (fun u -> u = v) m2) (edge h e1).members

let degree h v = Array.length h.incident.(v)
let graph_degree h v = Array.length h.neighbors.(v)

let max_degree h =
  let d = ref 0 in
  for v = 0 to h.n - 1 do
    if degree h v > !d then d := degree h v
  done;
  !d

let min_edge_size h v =
  Array.fold_left
    (fun acc eid -> min acc (Array.length h.edges.(eid).members))
    max_int h.incident.(v)

let min_edges h v =
  let sz = min_edge_size h v in
  Array.of_list
    (List.filter
       (fun eid -> Array.length h.edges.(eid).members = sz)
       (Array.to_list h.incident.(v)))

let max_min h =
  let r = ref 0 in
  for v = 0 to h.n - 1 do
    if degree h v > 0 then r := max !r (min_edge_size h v)
  done;
  !r

let max_hedge h =
  Array.fold_left (fun acc e -> max acc (Array.length e.members)) 0 h.edges

let underlying h = h.adjacency

let restrict h ~removed =
  let gone = Array.make h.n false in
  List.iter (fun v -> if v >= 0 && v < h.n then gone.(v) <- true) removed;
  let surviving =
    Array.to_list h.edges
    |> List.filter (fun e -> not (Array.exists (fun v -> gone.(v)) e.members))
  in
  match surviving with
  | [] -> None
  | survivors ->
    let edges =
      Array.of_list (List.mapi (fun i e -> { e with eid = i }) survivors)
    in
    let incident, neighbors = build_tables ~n:h.n ~edges in
    Some
      { n = h.n;
        edges;
        ids = h.ids;
        id_rev = h.id_rev;
        incident;
        neighbors;
        adjacency = neighbors }

let pp_edge h ppf eid =
  let members = (edge h eid).members in
  Format.fprintf ppf "{%s}"
    (String.concat ","
       (Array.to_list (Array.map (fun v -> string_of_int h.ids.(v)) members)))

let pp ppf h =
  Format.fprintf ppf "@[<hv 2>hypergraph(n=%d,@ E=[" h.n;
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf ";@ ";
      pp_edge h ppf e.eid)
    h.edges;
  Format.fprintf ppf "])@]"

let to_string h = Format.asprintf "%a" pp h

let equal a b =
  a.n = b.n && a.ids = b.ids
  && Array.length a.edges = Array.length b.edges
  && Array.for_all2 (fun e1 e2 -> e1.members = e2.members) a.edges b.edges
