(** Length-prefixed framing over a Unix file descriptor.

    A frame on the wire is a 4-byte big-endian body length followed by the
    body ({!Codec} frame).  Reads and writes handle short transfers and
    [EINTR]; a frame longer than {!max_frame} is refused without reading
    its body (resynchronisation is impossible at that point, so the
    runtime treats it as a dead peer rather than a transient fault). *)

val max_frame : int
(** Upper bound on an accepted body length (16 MiB). *)

val write : Unix.file_descr -> string -> unit
(** Write one frame (length prefix + body), looping over short writes. *)

val read : Unix.file_descr -> (string, [ `Eof | `Oversized of int ]) result
(** Read one frame body.  [`Eof] when the peer closed the descriptor at a
    frame boundary; [End_of_file] is raised on a mid-frame close. *)
