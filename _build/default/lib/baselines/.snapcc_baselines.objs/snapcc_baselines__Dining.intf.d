lib/baselines/dining.mli: Snapcc_core Snapcc_hypergraph Snapcc_runtime
