lib/analysis/spec.mli: Format Snapcc_hypergraph Snapcc_runtime
