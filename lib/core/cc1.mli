(** Algorithm 1 (paper §4): snap-stabilizing 2-phase committee coordination
    with {e Maximal Concurrency}, composed with a token layer [T] by fair
    composition ([CC1 ∘ TC]).

    This interface is the public surface the static analyzer
    ([lib/statics]), the experiments and the tests rely on: a
    {!Snapcc_runtime.Model.ALGO} plus the committee-layer projection and
    the [Correct] predicate of the closure lemmas. *)

(** The committee-coordination variables of one process. *)
type cc = {
  s : Cc_common.status;  (** [Sp] *)
  ptr : int option;  (** [Pp] (committee edge id, [None] = ⊥) *)
  tf : bool;  (** [Tp], the mirrored token flag *)
  disc : int;  (** essential discussions performed (observability) *)
}

(** The result signature shared by every instantiation: an algorithm plus
    the committee-layer projection and the [Correct] predicate. *)
module type S = sig
  type token_state

  include Snapcc_runtime.Model.ALGO with type state = cc * token_state

  val cc : state -> cc
  (** Project the committee layer out of the composed state. *)

  val correct :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
  (** The [Correct(p)] predicate, exposed for the closure tests (Lemma 3). *)
end

module Make (T : Snapcc_token.Layer.S) (P : Cc_common.PARAMS) :
  S with type token_state = T.state

(** CC1 with the default edge choice. *)
module Std (T : Snapcc_token.Layer.S) : S with type token_state = T.state

(** {2 Deliberately broken variants}

    Defect injections validating the model checker ([lib/mc], `ccsim
    check`): a verifier that never finds anything proves nothing.  Neither
    variant is registered with the experiments or the lint gate. *)

(** Priority order inverted: the action list is reversed, so [Stab1]/[Stab2]
    fall from the top priority to the bottom and [Step1] rises to the top —
    the paper's §2.2 ordering turned upside down. *)
module Inverted_std (T : Snapcc_token.Layer.S) : S with type token_state = T.state

(** The [Ready] predicate drops its "[Sq ∈ {looking, waiting}]" conjunct (a
    plausible transcription typo): committees may convene around a professor
    stuck in [done] by a corrupted initial configuration — a synchronization
    violation the checker must find and replay. *)
module Unchecked_ready_std (T : Snapcc_token.Layer.S) :
  S with type token_state = T.state
