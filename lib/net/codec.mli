(** The wire codec of the networked runtime: a binary frame format for
    full-state snapshots and the node-control protocol, with version and
    algorithm tags and a {e strict} decoder.

    Frame body layout (the 4-byte big-endian length prefix is added and
    consumed by {!Wire}):

    {v
    magic   4 bytes   "SNCC"
    version 1 byte    {!version}
    algo    1 byte    algorithm tag (0 = handshake control frame)
    kind    1 byte    message kind
    payload n bytes   kind-specific binary fields
    crc32   4 bytes   CRC-32 (IEEE) of everything above, big-endian
    v}

    The decoder verifies, in order: magic, version, algorithm tag (when an
    expectation is supplied), checksum, kind, payload shape, and that no
    trailing bytes remain.  {b A malformed frame is a transient fault, not
    a crash}: decoding returns a typed error, the runtime counts the frame
    as a lost message, and state payloads (OCaml [Marshal] blobs, opaque at
    this layer) are only ever unmarshalled after the checksum has been
    verified. *)

val version : int

val magic : string

val algo_tag : string -> int option
(** ["cc1"]/["cc2"]/["cc3"] to their wire tags (1/2/3). *)

val algo_name : int -> string option

(** The protocol messages.  [core]/[cache]/[state] fields carry marshalled
    algorithm states, opaque to the codec (the orchestrator and the node
    run the same executable, so the representation is shared by
    construction; the checksum guards the bytes in between). *)
type msg =
  | Hello of { id : int }  (** node → orchestrator, on connect *)
  | Init of { seed : int; topo : string; core : string; cache : string }
      (** orchestrator → node: topology (committee-file format), initial
          core and per-neighbor cache (marshalled [state] /
          [state array]).  The frame's algo tag tells the node which
          algorithm to instantiate. *)
  | Ready  (** node → orchestrator, after [Init] *)
  | Activate of { step : int; req_in : bool array; req_out : bool array }
      (** orchestrator → node: execute the highest-priority enabled action
          against the cached view, under these input predicates. *)
  | Activated of { label : string option; core : string; clock : string }
      (** node → orchestrator: the action executed (if any), the node's
          new true core — the full-state snapshot that the link layer
          fans out to the neighbors — and the node's vector clock
          ({!Snapcc_telemetry.Vclock.encode_full}), which the orchestrator
          cross-checks against its mirror (a protocol invariant under
          lockstep). *)
  | Deliver of { src : int; state : string; clock : string }
      (** orchestrator → node: a neighbor's snapshot reached you
          (version-2 full-marshal form, still used by the closure engine).
          [clock] is the sender's vector clock at send time, full-encoded. *)
  | Delivered  (** node → orchestrator: cache refreshed *)
  | Deliver_full of {
      src : int;
      seq : int;
      form : int;
      payload : string;
      clock : string;
    }
      (** orchestrator → node, packed engine: a full snapshot.  [form] 1:
          [payload] is the sender's state as an 8-byte little-endian
          packed-domain id; [form] 0: a marshalled state (the fallback for
          states outside the interned domain).  [seq] names the snapshot
          per link so deltas can reference it.  [clock] is a full-form
          vclock trailer ({!Snapcc_telemetry.Vclock.encode_wire}). *)
  | Deliver_delta of {
      src : int;
      seq : int;
      base_seq : int;
      delta : string;
      clock : string;
    }
      (** orchestrator → node, packed engine: the snapshot as a
          {!Delta} against the last payload the node acknowledged on this
          link ([base_seq]); the target keeps the base's form.  [clock] is
          a vclock trailer, usually delta-form against the clock accepted
          with [base_seq] (full-form when link reordering made the delta
          inexpressible); an unusable trailer triggers [Resync], like any
          other base mismatch. *)
  | Resync of { reason : string }
      (** node → orchestrator: a [Deliver_full]/[Deliver_delta] was
          well-formed on the wire but could not be applied (base out of
          sync, delta CRC mismatch, unknown packed id).  The orchestrator
          treats it like a transient fault and falls back to a full
          snapshot — never a wrong state. *)
  | Corrupt of { core : string; cache : string }
      (** orchestrator → node: transient fault injection — replace core
          and cache wholesale. *)
  | Corrupted
  | Decode_error of { reason : string }
      (** node → orchestrator: the incoming frame failed strict decoding
          and was treated as lost. *)
  | Bye
  | Bye_ack of { frames : int; decode_errors : int }
      (** node → orchestrator: per-node frame statistics, then exit. *)

type error =
  | Bad_magic
  | Bad_version of int
  | Bad_algo of int  (** tag differs from the expected algorithm *)
  | Bad_checksum
  | Bad_kind of int
  | Truncated
  | Trailing of int  (** well-formed payload followed by junk bytes *)
  | Bad_payload of string

val error_to_string : error -> string

val encode : algo:int -> msg -> string
(** The frame body ([algo] 0 for handshake frames). *)

val decode : ?expect:int -> string -> (int * msg, error) result
(** [(algo-tag, msg)].  With [~expect], a non-handshake frame whose tag
    differs is [Bad_algo]; handshake frames (tag 0) always pass the tag
    check. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3), exposed for tests. *)

val corrupt_body : Random.State.t -> string -> string
(** Flip one to four random bytes of a frame body — the fault injector's
    frame-corruption primitive.  The strict decoder must reject the
    result. *)
