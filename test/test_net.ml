(* The networked runtime: codec strictness, fault plan parsing, link-layer
   semantics, mp-vs-net cross-validation, and the faulty soak. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
module Spec = Snapcc_analysis.Spec
module Workload = Snapcc_workload.Workload
module Tele = Snapcc_telemetry
module Net = Snapcc_net
module Codec = Net.Codec
module Faults = Net.Faults
module Link = Net.Link

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- codec ---- *)

let roundtrip ?expect ~algo msg =
  match Codec.decode ?expect (Codec.encode ~algo msg) with
  | Ok (tag, m) -> (tag, m)
  | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e)

let test_codec_control_messages () =
  let msgs =
    [ Codec.Hello { id = 3 };
      Codec.Init { seed = 42; topo = "n 2\ncommittee 0 1\n"; core = "abc"; cache = "" };
      Codec.Ready;
      Codec.Activate
        { step = 7; req_in = [| true; false; true |]; req_out = [| false; false; true |] };
      Codec.Activated
        { label = Some "Join"; core = "xyz";
          clock = Tele.Vclock.encode_full [| 4; 1; 0 |] };
      Codec.Activated { label = None; core = ""; clock = "" };
      Codec.Deliver
        { src = 1; state = String.make 300 '\x00';
          clock = Tele.Vclock.encode_full [| 0; 7; 2 |] };
      Codec.Delivered;
      Codec.Corrupt { core = "c"; cache = "k" };
      Codec.Corrupted;
      Codec.Decode_error { reason = "bad payload" };
      Codec.Bye;
      Codec.Bye_ack { frames = 123; decode_errors = 4 } ]
  in
  List.iter
    (fun msg ->
      let tag, m = roundtrip ~algo:2 ~expect:2 msg in
      check_int "algo tag" 2 tag;
      check "roundtrip" true (m = msg))
    msgs

(* Every core state the model checker enumerates for the paper's algorithms
   on single2 and line3 survives a marshal -> frame -> strict decode ->
   unmarshal roundtrip.  The domain enumeration of lib/mc is a superset of
   the reachable states, so this covers every snapshot the runtime can
   ship. *)
let test_codec_roundtrip_domain_states () =
  List.iter
    (fun topo_name ->
      let h = Families.by_name topo_name in
      List.iter
        (fun key ->
          let entry =
            match Snapcc_mc.Systems.find key with
            | Some e -> e
            | None -> Alcotest.failf "unknown mc system %s" key
          in
          let module S = (val entry.Snapcc_mc.Systems.make "tree") in
          let tag =
            match Codec.algo_tag key with
            | Some t -> t
            | None -> Alcotest.failf "no wire tag for %s" key
          in
          let states = ref 0 in
          for p = 0 to H.n h - 1 do
            List.iter
              (fun st ->
                incr states;
                let payload = Marshal.to_string st [] in
                (* every frame rides with a vector-clock trailer: stamp a
                   distinct clock per state and require it back verbatim *)
                let vc =
                  Array.init (H.n h) (fun q -> if q = p then !states else q)
                in
                match
                  roundtrip ~algo:tag ~expect:tag
                    (Codec.Deliver
                       { src = p; state = payload;
                         clock = Tele.Vclock.encode_full vc })
                with
                | _, Codec.Deliver { src; state; clock } ->
                  check_int "src preserved" p src;
                  check "clock preserved" true
                    (Tele.Vclock.decode_full clock = Some vc);
                  let st' : S.state = Marshal.from_string state 0 in
                  check "state preserved" true (S.equal_state st st')
                | _ -> Alcotest.fail "wrong message kind")
              (S.domain h p)
          done;
          check
            (Printf.sprintf "%s/%s enumerated states" key topo_name)
            true (!states > 10))
        [ "cc1"; "cc2"; "cc3" ])
    [ "single2"; "line3" ]

let test_codec_strictness () =
  let body =
    Codec.encode ~algo:1
      (Codec.Deliver
         { src = 0; state = "snapshot";
           clock = Tele.Vclock.encode_full [| 1; 1 |] })
  in
  let expect_err b =
    match Codec.decode ~expect:1 b with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "strict decoder accepted a mangled frame"
  in
  (* truncations at every length *)
  for len = 0 to String.length body - 1 do
    expect_err (String.sub body 0 len)
  done;
  (* trailing junk *)
  expect_err (body ^ "x");
  (* wrong magic / version / algo tag *)
  expect_err ("XXXX" ^ String.sub body 4 (String.length body - 4));
  (match Codec.decode ~expect:2 body with
   | Error (Codec.Bad_algo 1) -> ()
   | _ -> Alcotest.fail "algo tag mismatch not detected");
  (* seeded byte flips: the corruption primitive must never decode *)
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 500 do
    expect_err (Codec.corrupt_body rng body)
  done

(* ---- fault plan parsing ---- *)

let test_faults_parse () =
  (match Faults.parse "drop=0.05,delay=2,dup=0.01,reorder=0.25,corrupt=0.02,partition=100-400" with
   | Ok p ->
     check "drop" true (p.Faults.drop = 0.05);
     check_int "delay" 2 p.Faults.delay;
     check "partition" true (p.Faults.partition = Some (100, 400));
     check "not pure" true (not (Faults.is_pure p))
   | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Faults.parse "" with
   | Ok p -> check "empty plan is none" true (p = Faults.none)
   | Error e -> Alcotest.failf "empty spec: %s" e);
  List.iter
    (fun bad ->
      match Faults.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid spec %S" bad)
    [ "drop=1.5"; "drop=x"; "delay=-1"; "partition=400-100"; "partition=7";
      "warp=0.1"; "drop" ]

let test_partition_split () =
  let plan =
    match Faults.parse "partition=10-20" with Ok p -> p | Error e -> Alcotest.fail e
  in
  (* inside the window, only links crossing the halves are cut *)
  check "crossing cut" true
    (Faults.partitioned plan ~step:10 ~n:4 ~src:0 ~dst:3);
  check "same side open" true
    (not (Faults.partitioned plan ~step:10 ~n:4 ~src:0 ~dst:1));
  check "healed after" true
    (not (Faults.partitioned plan ~step:20 ~n:4 ~src:0 ~dst:3))

(* ---- link layer ---- *)

let test_link_coalesces_when_pure () =
  let l = Link.create ~src:0 ~dst:1 ~seed:1 in
  let plan = Faults.none in
  for step = 0 to 9 do
    ignore
      (Link.send l ~plan ~step ~now:0. ~state:(string_of_int step)
         ~clock:[| step; 0 |])
  done;
  check_int "single slot" 1 (Link.size l);
  (match Link.pop l ~plan ~step:9 with
   | Some e -> check "latest wins" true (e.Link.state = "9")
   | None -> Alcotest.fail "nothing queued");
  check_int "drained" 0 (Link.size l)

let test_link_bounded_and_deterministic () =
  let plan =
    match Faults.parse "drop=0.2,delay=3,dup=0.2,reorder=0.5" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let run () =
    let l = Link.create ~src:2 ~dst:5 ~seed:7 in
    let log = ref [] in
    for step = 0 to 199 do
      let r =
        Link.send l ~plan ~step ~now:0. ~state:(string_of_int step)
          ~clock:[| step; 0 |]
      in
      log := (`Sent (r.Link.copies, r.Link.evicted)) :: !log;
      if step mod 3 = 0 then
        match Link.pop l ~plan ~step with
        | Some e -> log := `Popped e.Link.state :: !log
        | None -> log := `Empty :: !log
    done;
    (Link.size l, !log)
  in
  let size, log = run () in
  check "bounded queue" true (size <= Link.capacity);
  check "per-link rng is deterministic" true ((size, log) = run ());
  check "losses happened" true
    (List.exists (function `Sent (0, _) -> true | _ -> false) log)

(* ---- mp-vs-net cross-validation ---- *)

(* A fault-free networked run (forked node processes, coalescing loopback
   links) must replay the in-process message-passing emulation of the same
   seed decision for decision: same Spec verdict, same convene count, same
   message counts, same final configuration. *)
module E = Snapcc_mp.Mp_engine.Make (Snapcc_experiments.Algos.Cc2)

let mp_reference ~seed ~steps ~bias h =
  let eng = E.create ~seed ~init:`Canonical ~deliver_bias:bias h in
  let w = Workload.always_requesting h in
  let spec = Spec.create h ~initial:(E.obs eng) in
  let before = ref (E.obs eng) in
  for i = 0 to steps - 1 do
    let inputs = Workload.inputs w !before in
    ignore (E.step eng ~inputs);
    let after = E.obs eng in
    Spec.on_step spec ~step:i ~request_out:inputs.Model.request_out
      ~before:!before ~after;
    Workload.observe w ~step:i after;
    before := after
  done;
  (spec, E.messages_sent eng, E.messages_delivered eng, E.max_staleness eng,
   E.obs eng)

let test_net_replays_mp () =
  let h = Families.fig1 () in
  let seed = 3 and steps = 2_000 and bias = 0.4 in
  let spec, sent, delivered, staleness, final = mp_reference ~seed ~steps ~bias h in
  let cfg =
    { Net.Orchestrator.algo = "cc2"; seed; init = `Canonical;
      deliver_bias = bias; steps; plan = Faults.none; burst = None;
      engine = `Closure }
  in
  let w = Workload.always_requesting h in
  let r =
    match Net.Orchestrator.run ~mode:Net.Spawn.Fork ~workload:w cfg h with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  check_int "same convene count" (List.length (Spec.convened spec))
    r.Net.Orchestrator.convenes;
  check_int "same violation count" (List.length (Spec.violations spec))
    (List.length r.Net.Orchestrator.violations);
  check_int "same sends" sent r.Net.Orchestrator.sent;
  check_int "same deliveries" delivered r.Net.Orchestrator.delivered;
  check_int "same staleness" staleness r.Net.Orchestrator.max_staleness;
  check_int "nothing lost without faults" 0 r.Net.Orchestrator.dropped;
  check "same final configuration" true
    (Array.for_all2 Obs.equal final r.Net.Orchestrator.final_obs)

let test_unknown_algo_rejected () =
  let h = Families.by_name "ring4" in
  let cfg =
    { Net.Orchestrator.algo = "dining"; seed = 1; init = `Canonical;
      deliver_bias = 0.5; steps = 10; plan = Faults.none; burst = None;
      engine = `Closure }
  in
  match
    Net.Orchestrator.run ~mode:Net.Spawn.Fork
      ~workload:(Workload.always_requesting h) cfg h
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "net accepted a non-cc algorithm"

(* ---- faulty soak ---- *)

let soak_run () =
  let h = Families.by_name "ring5" in
  let hub = Tele.Hub.create () in
  let ring = Tele.Sink.ring ~capacity:65_536 in
  Tele.Hub.add_sink hub ring;
  let plan =
    match Faults.parse "drop=0.05,delay=2,dup=0.02,corrupt=0.02" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let cfg =
    { Net.Orchestrator.algo = "cc1"; seed = 11; init = `Canonical;
      deliver_bias = 0.5; steps = 1_500; plan; burst = Some 750; engine = `Closure }
  in
  let r =
    match
      Net.Orchestrator.run ~telemetry:hub ~mode:Net.Spawn.Fork
        ~workload:(Workload.always_requesting h) cfg h
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let events =
    List.map (fun (s : Tele.Event.stamped) -> s.Tele.Event.ev)
      (Tele.Sink.ring_events ring)
  in
  (r, events)

let soak_cache = ref None

let soak_events_cached () =
  match !soak_cache with
  | Some r -> r
  | None ->
    let r = soak_run () in
    soak_cache := Some r;
    r

let test_soak_stabilizes () =
  let r, events = soak_events_cached () in
  check_int "zero violations across the faulty soak" 0
    (List.length r.Net.Orchestrator.violations);
  check "losses injected" true (r.Net.Orchestrator.dropped > 0);
  check "corrupted frames rejected, not crashed" true
    (r.Net.Orchestrator.malformed > 0);
  check_int "decoder rejections match node reports"
    r.Net.Orchestrator.malformed r.Net.Orchestrator.node_decode_errors;
  (match r.Net.Orchestrator.stabilized_in with
   | Some d -> check "stabilized promptly" true (d >= 0 && d < 750)
   | None -> Alcotest.fail "no convene after the corruption burst");
  check "meetings kept convening" true (r.Net.Orchestrator.convenes > 2);
  ignore events

(* The telemetry stream of a faulty networked run is byte-reproducible on
   its logical-event subset (everything but net_delivered's wall-clock
   latency). *)
let test_soak_logical_trace_reproducible () =
  let r1, ev1 = soak_events_cached () in
  let r2, ev2 = soak_run () in
  check_int "same outcome" r1.Net.Orchestrator.delivered
    r2.Net.Orchestrator.delivered;
  let logical evs =
    List.filter_map
      (fun ev ->
        if Tele.Event.logical ev then Some (Tele.Json.to_string (Tele.Event.to_json ev))
        else None)
      evs
  in
  check "logical event subset identical" true (logical ev1 = logical ev2);
  check "wall-clock events present" true
    (List.exists (fun ev -> not (Tele.Event.logical ev)) ev1)

let suite =
  [ ( "net",
      [ Alcotest.test_case "codec control messages" `Quick test_codec_control_messages;
        Alcotest.test_case "codec roundtrip over mc state domains" `Quick
          test_codec_roundtrip_domain_states;
        Alcotest.test_case "strict decoder rejects corruption" `Quick
          test_codec_strictness;
        Alcotest.test_case "fault plan parsing" `Quick test_faults_parse;
        Alcotest.test_case "partition splits the node range" `Quick
          test_partition_split;
        Alcotest.test_case "pure links coalesce" `Quick test_link_coalesces_when_pure;
        Alcotest.test_case "faulty links bounded + deterministic" `Quick
          test_link_bounded_and_deterministic;
        Alcotest.test_case "zero-fault net replays mp" `Quick test_net_replays_mp;
        Alcotest.test_case "non-cc algorithms rejected" `Quick
          test_unknown_algo_rejected;
        Alcotest.test_case "faulty soak stabilizes after burst" `Slow
          test_soak_stabilizes;
        Alcotest.test_case "logical trace reproducible" `Slow
          test_soak_logical_trace_reproducible;
      ] );
  ]
