lib/core/cc_common.ml: Array Format List Snapcc_hypergraph Snapcc_runtime
