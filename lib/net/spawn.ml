type mode = Fork | Exec of string

type node = { id : int; pid : int; fd : Unix.file_descr }

let fail fmt = Printf.ksprintf failwith fmt

(* Consume the node's [Hello] and check it names the expected id. *)
let handshake fd ~expect =
  match Wire.read fd with
  | Error `Eof -> fail "net: node closed the connection before hello"
  | Error (`Oversized len) -> fail "net: oversized hello frame (%d bytes)" len
  | Ok body -> (
    match Codec.decode body with
    | Ok (_, Codec.Hello { id }) -> (
      match expect with
      | Some e when e <> id -> fail "net: node said hello as %d, expected %d" id e
      | _ -> id)
    | Ok (_, _) -> fail "net: expected hello frame"
    | Error e -> fail "net: bad hello frame: %s" (Codec.error_to_string e))

let fork_pool ~n ~serve =
  let nodes = ref [] in
  for id = 0 to n - 1 do
    let parent_fd, child_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.fork () with
    | 0 ->
      (* the child must not hold the parent ends of earlier nodes' pairs *)
      List.iter (fun nd -> try Unix.close nd.fd with Unix.Unix_error _ -> ())
        !nodes;
      Unix.close parent_fd;
      let ok = try serve ~id child_fd; true with _ -> false in
      (try Unix.close child_fd with Unix.Unix_error _ -> ());
      Unix._exit (if ok then 0 else 1)
    | pid ->
      Unix.close child_fd;
      nodes := { id; pid; fd = parent_fd } :: !nodes
  done;
  Array.of_list (List.rev !nodes)

let launch_fork n =
  let arr = fork_pool ~n ~serve:(fun ~id fd -> Node.serve ~id fd) in
  Array.iter (fun nd -> ignore (handshake nd.fd ~expect:(Some nd.id))) arr;
  arr

let launch_exec exe n =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen sock n;
      let port =
        match Unix.getsockname sock with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> assert false
      in
      let pids =
        Array.init n (fun id ->
            Unix.create_process exe
              [| exe; "node"; "--id"; string_of_int id;
                 "--connect"; string_of_int port |]
              Unix.stdin Unix.stdout Unix.stderr)
      in
      let nodes = Array.make n None in
      for _ = 1 to n do
        let fd, _addr = Unix.accept sock in
        let id = handshake fd ~expect:None in
        if id < 0 || id >= n then fail "net: hello from unknown node %d" id;
        if nodes.(id) <> None then fail "net: duplicate hello from node %d" id;
        nodes.(id) <- Some { id; pid = pids.(id); fd }
      done;
      Array.map (function Some nd -> nd | None -> fail "net: missing node") nodes)

let launch mode ~n =
  match mode with Fork -> launch_fork n | Exec exe -> launch_exec exe n

let connect ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let shutdown nodes =
  Array.iter
    (fun nd ->
      (try Unix.close nd.fd with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] nd.pid) with Unix.Unix_error _ -> ())
    nodes

let kill nodes =
  Array.iter
    (fun nd -> try Unix.kill nd.pid Sys.sigkill with Unix.Unix_error _ -> ())
    nodes
