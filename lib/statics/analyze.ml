module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module IntSet = Set.Make (Int)

(* Uniform input modes: guards may branch on the request predicates, so the
   checks run under every combination (applied to all processes alike). *)
let input_modes = Array.to_list Model.input_modes

module Make (A : Model.ALGO) = struct
  (* Printed-state fingerprints stand in for a generic deep copy: they are
     how in-place mutation is detected (the value a statement returned is
     assigned by the engine; every {e existing} state must print the same
     before and after).  Lossy printers weaken the check, never break it. *)
  let fp st = Format.asprintf "%a" A.pp_state st
  let fp_config states = String.concat "\x1d" (Array.to_list (Array.map fp states))

  (* Engine-style backwards priority scan, uninstrumented; [None] on a crash
     (the checking pass reports it). *)
  let priority_step h states inputs p actions =
    let ctx = { Model.h; inputs; self = p; read = Array.get states } in
    let rec scan i =
      if i < 0 then None
      else if actions.(i).Model.guard ctx then
        Some (i, actions.(i).Model.apply ctx)
      else scan (i - 1)
    in
    match scan (Array.length actions - 1) with
    | exception _ -> None
    | r -> r

  let analyze ?(seed = 0) ?(seeds = 24) ?(max_configs = 240) ?(allow = [])
      ~topo h =
    let n = H.n h in
    let actions = Array.of_list (A.actions h) in
    let nact = Array.length actions in
    let evals = ref 0 in
    let guard_true = Array.make nact 0 in
    let findings : (Report.rule * string * int, int * string) Hashtbl.t =
      Hashtbl.create 16
    in
    let record rule ~action ~proc detail =
      let key = (rule, action, proc) in
      match Hashtbl.find_opt findings key with
      | Some (c, d) -> Hashtbl.replace findings key (c + 1, d)
      | None -> Hashtbl.replace findings key (1, detail)
    in
    let overlaps : (string list, int * int) Hashtbl.t = Hashtbl.create 16 in
    let interference : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
    let local p q = q = p || H.are_neighbors h p q in

    (* Evaluate action [i] of process [p]: footprint plus all per-action
       checks.  Returns [(enabled, reads, result)]; [result] is the new
       state when enabled and the statement did not crash. *)
    let eval_action states inputs p i =
      let a = actions.(i) in
      let label = a.Model.label in
      let reads = ref IntSet.empty in
      let ctx =
        { Model.h; inputs; self = p;
          read = (fun q -> reads := IntSet.add q !reads; states.(q)) }
      in
      incr evals;
      let enabled, result =
        match a.Model.guard ctx with
        | exception exn ->
          record Report.Crash ~action:label ~proc:p
            (Printf.sprintf "guard raised %s" (Printexc.to_string exn));
          (false, None)
        | g1 ->
          (match a.Model.guard ctx with
           | exception exn ->
             record Report.Crash ~action:label ~proc:p
               (Printf.sprintf "guard raised %s on re-evaluation"
                  (Printexc.to_string exn))
           | g2 ->
             if g1 <> g2 then
               record Report.Determinism ~action:label ~proc:p
                 "guard disagreed with itself on the same configuration");
          if not g1 then (false, None)
          else begin
            guard_true.(i) <- guard_true.(i) + 1;
            let before = Array.map fp states in
            match a.Model.apply ctx with
            | exception exn ->
              record Report.Crash ~action:label ~proc:p
                (Printf.sprintf "statement raised %s" (Printexc.to_string exn));
              (true, None)
            | s1 ->
              Array.iteri
                (fun q fq ->
                  if not (String.equal (fp states.(q)) fq) then
                    record Report.Write_ownership ~action:label ~proc:p
                      (if q = p then
                         Printf.sprintf
                           "statement of %d mutated its own pre-step state in \
                            place (breaks step atomicity)"
                           p
                       else
                         Printf.sprintf "statement of %d mutated the state of %d"
                           p q))
                before;
              (match a.Model.apply ctx with
               | exception exn ->
                 record Report.Crash ~action:label ~proc:p
                   (Printf.sprintf "statement raised %s on re-evaluation"
                      (Printexc.to_string exn))
               | s2 ->
                 if not (A.equal_state s1 s2 && String.equal (fp s1) (fp s2))
                 then
                   record Report.Determinism ~action:label ~proc:p
                     "statement produced different states on the same \
                      configuration");
              (true, Some s1)
          end
      in
      IntSet.iter
        (fun q ->
          if not (local p q) then
            record Report.Locality ~action:label ~proc:p
              (Printf.sprintf "process %d read the state of non-neighbor %d" p q))
        !reads;
      (enabled, !reads, result)
    in

    let analyze_config states inputs =
      let enabled = Array.make_matrix n nact false in
      let reads = Array.make_matrix n nact IntSet.empty in
      let results = Array.init n (fun _ -> Array.make nact None) in
      for p = 0 to n - 1 do
        for i = 0 to nact - 1 do
          let e, r, res = eval_action states inputs p i in
          enabled.(p).(i) <- e;
          reads.(p).(i) <- r;
          results.(p).(i) <- res
        done
      done;
      (* the engine executes the highest-priority (last-listed) enabled
         action; everything below records against that choice *)
      let priority p =
        let rec scan i = if i < 0 then None else if enabled.(p).(i) then Some i else scan (i - 1) in
        scan (nact - 1)
      in
      for p = 0 to n - 1 do
        (* priority overlap: ≥2 enabled actions of one process *)
        let labels =
          List.filter_map
            (fun i -> if enabled.(p).(i) then Some actions.(i).Model.label else None)
            (List.init nact Fun.id)
        in
        if List.length labels >= 2 then begin
          match Hashtbl.find_opt overlaps labels with
          | Some (c, ex) -> Hashtbl.replace overlaps labels (c + 1, ex)
          | None -> Hashtbl.replace overlaps labels (1, p)
        end
      done;
      (* read/write interference between concurrently enabled neighbors:
         the writer's execution changes its state; the reader's evaluation
         (priority scan plus executed statement) reads it *)
      for p = 0 to n - 1 do
        match priority p with
        | None -> ()
        | Some ip ->
          let changes =
            match results.(p).(ip) with
            | Some s' -> not (A.equal_state states.(p) s')
            | None -> false
          in
          if changes then
            for q = 0 to n - 1 do
              if q <> p && H.are_neighbors h p q then
                match priority q with
                | None -> ()
                | Some iq ->
                  (* in the engine, q evaluates the guards of actions iq..last
                     (backwards scan) and the statement of iq *)
                  let scan_reads = ref IntSet.empty in
                  for j = iq to nact - 1 do
                    scan_reads := IntSet.union !scan_reads reads.(q).(j)
                  done;
                  if IntSet.mem p !scan_reads then begin
                    let key =
                      (actions.(ip).Model.label, actions.(iq).Model.label)
                    in
                    let c =
                      Option.value ~default:0 (Hashtbl.find_opt interference key)
                    in
                    Hashtbl.replace interference key (c + 1)
                  end
            done
      done
    in

    (* Reachable-set enumeration: breadth-first from the canonical initial
       configuration and [seeds] random (post-fault) ones, expanding by
       every single-process step and the synchronous step, under every
       input mode, deduplicating on printed state, capped at [max_configs].
       Each configuration is analyzed {e when popped}, before its
       successors are computed: a statement that mutates shared state in
       place must commit its first mutation under instrumentation, where
       the fingerprint comparison catches it. *)
    let seen = Hashtbl.create 97 in
    let queue = Queue.create () in
    let count = ref 0 in
    let add states =
      let key = fp_config states in
      if (not (Hashtbl.mem seen key)) && !count < max_configs then begin
        Hashtbl.add seen key ();
        incr count;
        Queue.add states queue
      end
    in
    add (Array.init n (A.init h));
    for s = 1 to seeds do
      let rng = Random.State.make [| s; n; seed; 0x57a71c5 |] in
      add (Array.init n (A.random_init h rng))
    done;
    let analyzed = ref 0 in
    while not (Queue.is_empty queue) do
      let states = Queue.pop queue in
      incr analyzed;
      List.iter (fun (_, inputs) -> analyze_config states inputs) input_modes;
      List.iter
        (fun (_, inputs) ->
          let moves =
            List.filter_map
              (fun p ->
                Option.map (fun (_, s') -> (p, s')) (priority_step h states inputs p actions))
              (List.init n Fun.id)
          in
          List.iter
            (fun (p, s') ->
              let next = Array.copy states in
              next.(p) <- s';
              add next)
            moves;
          if List.length moves > 1 then begin
            let next = Array.copy states in
            List.iter (fun (p, s') -> next.(p) <- s') moves;
            add next
          end)
        input_modes
    done;

    let all_findings =
      Hashtbl.fold
        (fun (rule, action, proc) (count, detail) acc ->
          { Report.rule; action; proc; count; detail } :: acc)
        findings []
      |> List.sort compare
    in
    let waived, violations =
      List.partition (fun f -> List.mem f.Report.rule allow) all_findings
    in
    let overlaps =
      Hashtbl.fold
        (fun labels (times, example_proc) acc ->
          { Report.labels; times; example_proc } :: acc)
        overlaps []
      |> List.sort (fun (a : Report.overlap) (b : Report.overlap) ->
             compare (b.times, a.labels) (a.times, b.labels))
    in
    let interference =
      Hashtbl.fold
        (fun (writer, reader) times acc -> { Report.writer; reader; times } :: acc)
        interference []
      |> List.sort (fun (a : Report.interference) (b : Report.interference) ->
             compare (b.times, a.writer, a.reader) (a.times, b.writer, b.reader))
    in
    let dead =
      List.filter_map
        (fun i ->
          if guard_true.(i) = 0 then Some actions.(i).Model.label else None)
        (List.init nact Fun.id)
    in
    {
      Report.algo = A.name;
      topo;
      tier = "sampled";
      configs = !analyzed;
      evals = !evals;
      findings = violations;
      waived;
      overlaps;
      interference;
      dead;
      dead_proven = [];
      dead_unreached = [];
    }
end
