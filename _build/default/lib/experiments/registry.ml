(** Experiment registry: every table/figure of the paper, runnable by id.
    `bench/main.exe` prints all of them; `ccsim experiment <id>` runs one. *)

type entry = {
  id : string;
  title : string;
  run : quick:bool -> Table.t;
}

let all : entry list =
  [ { id = "fig1";
      title = "Fig. 1 - hypergraph and underlying network";
      run = (fun ~quick -> Exp_fig1.table (Exp_fig1.run ~quick ())) };
    { id = "fig2-impossibility";
      title = "Fig. 2 / Theorem 1 - maximal concurrency vs fairness";
      run = (fun ~quick -> Exp_impossibility.table (Exp_impossibility.run ~quick ())) };
    { id = "fig3-cc1-trace";
      title = "Fig. 3 - CC1 worked example";
      run = (fun ~quick -> Exp_cc1_trace.table (Exp_cc1_trace.run ~quick ())) };
    { id = "fig4-locks";
      title = "Fig. 4 - CC2 lock flags";
      run = (fun ~quick -> Exp_locks.table (Exp_locks.run ~quick ())) };
    { id = "thm23-snap";
      title = "Theorems 2-3 - snap-stabilization grid";
      run = (fun ~quick -> Exp_snap.table (Exp_snap.run ~quick ())) };
    { id = "thm45-dfc";
      title = "Theorems 4-5 - degree of fair concurrency";
      run = (fun ~quick -> Exp_fair_concurrency.table (Exp_fair_concurrency.run ~quick ())) };
    { id = "thm6-waiting";
      title = "Theorem 6 - waiting time";
      run = (fun ~quick -> Exp_waiting_time.table (Exp_waiting_time.run ~quick ())) };
    { id = "thm78-cc3";
      title = "Theorems 7-8 - committee fairness";
      run = (fun ~quick -> Exp_committee_fairness.table (Exp_committee_fairness.run ~quick ())) };
    { id = "related-work-baselines";
      title = "Section 6 - baselines comparison";
      run = (fun ~quick -> Exp_baselines.table (Exp_baselines.run ~quick ())) };
    { id = "tc-property1";
      title = "Property 1 - token substrate";
      run = (fun ~quick -> Exp_token.table (Exp_token.run ~quick ())) };
    { id = "ablations";
      title = "Design-decision ablations (token retention, edge selection)";
      run = (fun ~quick -> Exp_ablation.table (Exp_ablation.run ~quick ())) };
    { id = "conjecture-bounded-wait";
      title = "Section 7 conjecture - maximal concurrency vs bounded waiting";
      run = (fun ~quick -> Exp_conjecture.table (Exp_conjecture.run ~quick ())) };
    { id = "mp-future-work";
      title = "Section 7 future work - message-passing emulation";
      run = (fun ~quick -> Exp_message_passing.table (Exp_message_passing.run ~quick ())) };
    { id = "dynamic-hypergraph";
      title = "Section 7 future work - dynamic hypergraphs";
      run = (fun ~quick -> Exp_dynamic.table (Exp_dynamic.run ~quick ())) };
    { id = "priorities";
      title = "Section 7 future work - committee priorities";
      run = (fun ~quick -> Exp_priorities.table (Exp_priorities.run ~quick ())) };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all
