test/test_experiments.ml: Alcotest List Snapcc_experiments String
