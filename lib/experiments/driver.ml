(** One-stop runner: engine + workload + specification monitor + metrics.

    Every experiment and most integration tests funnel through [Make(A).run]
    so that each simulated step is judged against the paper's specification
    (see {!Snapcc_analysis.Spec}) and measured (see
    {!Snapcc_analysis.Metrics}). *)

module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
module Daemon = Snapcc_runtime.Daemon
module Trace = Snapcc_runtime.Trace
module Workload = Snapcc_workload.Workload
module Spec = Snapcc_analysis.Spec
module Metrics = Snapcc_analysis.Metrics
module Tele = Snapcc_telemetry

type result = {
  algo : string;
  daemon : string;
  workload : string;
  outcome : [ `Terminal | `Stopped | `Steps_exhausted ];
  steps : int;
  rounds : int;
  final_obs : Obs.t array;
  violations : Spec.violation list;
  convened : (int * int) list;
  convene_count : int array;
  participations : int array;
  summary : Metrics.summary;
  trace : Trace.t option;
}

let ok r = r.violations = []

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%s under %s / %s: %s after %d steps (%d rounds)@ %a@ %d violations@]"
    r.algo r.daemon r.workload
    (match r.outcome with
     | `Terminal -> "terminal"
     | `Stopped -> "stopped"
     | `Steps_exhausted -> "horizon reached")
    r.steps r.rounds Metrics.pp_summary r.summary
    (List.length r.violations)

module Make (A : Model.ALGO) = struct
  module E = Snapcc_runtime.Engine.Make (A)

  (* like [run] below, but also returns the final typed configuration (used
     by the dynamic-hypergraph experiment to carry states across changes) *)
  let run_with_states ?(seed = 0) ?(init : [ `Canonical | `Random ] = `Canonical)
      ?init_states ?(check_locality = false) ?packed ?faults
      ?(stop_when = fun _ -> false)
      ?(on_obs = fun ~step:_ _ -> ()) ?(record_trace = false)
      ?(stutter_limit = 1000) ?telemetry ~daemon ~workload ~steps h =
    let init =
      match init_states with
      | Some states -> `States states
      | None -> (init :> [ `Canonical | `Random | `States of A.state array ])
    in
    let eng = E.create ~seed ~check_locality ~init ?packed ~daemon h in
    let initial = E.obs eng in
    let spec = Spec.create ?telemetry h ~initial in
    let metrics = Metrics.create ?telemetry h ~initial in
    let trace = if record_trace then Some (Trace.create h ~initial) else None in
    let emit ev =
      match telemetry with Some hub -> Tele.Hub.emit hub ev | None -> ()
    in
    let step_counter =
      Option.map (fun hub -> Tele.Registry.counter (Tele.Hub.registry hub) "steps")
        telemetry
    in
    emit
      (Tele.Event.Run_start
         { algo = A.name;
           daemon = Daemon.name daemon;
           workload = Workload.name workload;
           seed;
           n = Snapcc_hypergraph.Hypergraph.n h;
           m = Snapcc_hypergraph.Hypergraph.m h;
           topo = Snapcc_hypergraph.Hypergraph_io.to_string h });
    let outcome = ref `Steps_exhausted in
    let before = ref initial in
    let last_round = ref 0 in
    let stutters = ref 0 in
    let awaiting_recover = ref false in
    (try
       for _i = 0 to steps - 1 do
         (match faults with
          | None -> ()
          | Some f ->
            (match f ~step:(E.steps_taken eng) with
             | [] -> ()
             | victims ->
               E.corrupt eng ~victims ();
               let corrupted = E.obs eng in
               Spec.on_fault spec corrupted;
               emit
                 (Tele.Event.Fault { step = E.steps_taken eng; victims });
               awaiting_recover := true;
               (match trace with
                | Some tr ->
                  Trace.record_fault tr ~step:(E.steps_taken eng) corrupted
                | None -> ());
               before := corrupted));
         let inputs = Workload.inputs workload !before in
         let report = E.step eng ~inputs in
         if report.Model.terminal then begin
           (* No action is enabled under the *current* inputs, but inputs
              evolve: let the workload observe (advancing its timers and
              coins) and stutter.  Only a long stretch of stutters — the
              workload has visibly frozen — ends the run. *)
           stutters := !stutters + 1;
           Workload.observe workload ~step:(E.steps_taken eng) !before;
           if !stutters > stutter_limit then begin
             outcome := `Terminal;
             raise Exit
           end
         end
         else begin
           stutters := 0;
           let after = E.obs eng in
           (* telemetry: engine step (daemon selection, meeting set),
              per-process firings, token handoffs, post-fault recovery *)
           (match telemetry with
            | None -> ()
            | Some _ ->
              Option.iter (fun c -> Tele.Registry.incr c) step_counter;
              let meetings = Obs.meetings h after in
              emit
                (Tele.Event.Step
                   { step = report.Model.step;
                     round = report.Model.round;
                     selected = report.Model.selected;
                     neutralized = report.Model.neutralized;
                     meetings });
              List.iter
                (fun (p, label) ->
                  emit (Tele.Event.Action { step = report.Model.step; p; label }))
                report.Model.executed;
              Array.iteri
                (fun p (o : Obs.t) ->
                  if o.Obs.has_token && not (!before).(p).Obs.has_token then
                    emit
                      (Tele.Event.Token_handoff { step = report.Model.step; p }))
                after;
              if !awaiting_recover then (
                match
                  List.find_opt (fun e -> not (Obs.meets h !before e)) meetings
                with
                | Some eid ->
                  awaiting_recover := false;
                  emit (Tele.Event.Recover { step = report.Model.step; eid })
                | None -> ()));
           Spec.on_step spec ~step:report.Model.step
             ~request_out:inputs.Model.request_out ~before:!before ~after;
           Metrics.on_step metrics ~step:report.Model.step ~round:report.Model.round
             ~before:!before ~after;
           Workload.observe workload ~step:report.Model.step after;
           (match trace with Some tr -> Trace.record tr report after | None -> ());
           on_obs ~step:report.Model.step after;
           last_round := report.Model.round;
           before := after;
           if stop_when after then begin
             outcome := `Stopped;
             raise Exit
           end
         end
       done
     with Exit -> ());
    emit
      (Tele.Event.Run_end
         { outcome =
             (match !outcome with
              | `Terminal -> "terminal"
              | `Stopped -> "stopped"
              | `Steps_exhausted -> "steps_exhausted");
           steps = E.steps_taken eng;
           rounds = E.rounds eng });
    ( {
        algo = A.name;
        daemon = Daemon.name daemon;
        workload = Workload.name workload;
        outcome = !outcome;
        steps = E.steps_taken eng;
        rounds = E.rounds eng;
        final_obs = E.obs eng;
        violations = Spec.violations spec;
        convened = Spec.convened spec;
        convene_count = Spec.convene_count spec;
        participations = Spec.participations spec;
        summary = Metrics.finish metrics ~step:(E.steps_taken eng) ~round:(E.rounds eng);
        trace;
      },
      E.states eng )

  let run ?seed ?init ?init_states ?check_locality ?packed ?faults ?stop_when
      ?on_obs ?record_trace ?stutter_limit ?telemetry ~daemon ~workload ~steps
      h =
    fst
      (run_with_states ?seed ?init ?init_states ?check_locality ?packed
         ?faults ?stop_when ?on_obs ?record_trace ?stutter_limit ?telemetry
         ~daemon ~workload ~steps h)
end
