(* Individualization–refinement automorphism search over the bipartite
   vertex/hyperedge incidence structure.  Identifiers are ignored on
   purpose: structural symmetry only (see the interface). *)

type perm = int array

let is_permutation n (pi : perm) =
  Array.length pi = n
  &&
  let seen = Array.make n false in
  Array.for_all
    (fun v -> v >= 0 && v < n && not seen.(v) && (seen.(v) <- true; true))
    pi

let is_automorphism h (pi : perm) =
  let n = Hypergraph.n h in
  is_permutation n pi
  &&
  let key members =
    let img = Array.map (fun v -> pi.(v)) members in
    Array.sort compare img;
    Array.to_list img
  in
  let edge_set = Hashtbl.create 16 in
  Array.iter
    (fun (e : Hypergraph.edge) ->
      Hashtbl.replace edge_set (Array.to_list e.Hypergraph.members) ())
    (Hypergraph.edges h);
  Array.for_all
    (fun (e : Hypergraph.edge) ->
      Hashtbl.mem edge_set (key e.Hypergraph.members))
    (Hypergraph.edges h)

let edge_perm h (pi : perm) =
  let by_members = Hashtbl.create 16 in
  Array.iter
    (fun (e : Hypergraph.edge) ->
      Hashtbl.replace by_members
        (Array.to_list e.Hypergraph.members)
        e.Hypergraph.eid)
    (Hypergraph.edges h);
  Array.map
    (fun (e : Hypergraph.edge) ->
      let img = Array.map (fun v -> pi.(v)) e.Hypergraph.members in
      Array.sort compare img;
      match Hashtbl.find_opt by_members (Array.to_list img) with
      | Some eid -> eid
      | None -> invalid_arg "Automorphism.edge_perm: not an automorphism")
    (Hypergraph.edges h)

(* --- Equitable-partition refinement ---------------------------------- *)

(* Colours live on vertices and on hyperedges.  One round recolours edges
   by (old colour, sorted member colours) and vertices by (old colour,
   sorted incident-edge colours); rounds repeat until the number of
   distinct colours stops growing.  Colour values are made dense through a
   table so they compare as ints. *)

type refined = { vcol : int array; ecol : int array }

let dense () =
  let tbl = Hashtbl.create 64 in
  fun key ->
    match Hashtbl.find_opt tbl key with
    | Some c -> c
    | None ->
      let c = Hashtbl.length tbl in
      Hashtbl.add tbl key c;
      c

let count_distinct a =
  let s = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace s c ()) a;
  Hashtbl.length s

(* The source and target colourings are refined {e together}, with one
   shared dense-colour table per round, so that structurally equal cells
   carry the same colour id on both sides — the candidate filter
   [tgt.vcol.(w) = src.vcol.(v)] depends on it. *)
let refine_pair h (a : refined) (b : refined) =
  let n = Hypergraph.n h and m = Hypergraph.m h in
  let a = { vcol = Array.copy a.vcol; ecol = Array.copy a.ecol }
  and b = { vcol = Array.copy b.vcol; ecol = Array.copy b.ecol } in
  let stable = ref false in
  while not !stable do
    let before =
      count_distinct (Array.append a.vcol b.vcol)
      + count_distinct (Array.append a.ecol b.ecol)
    in
    let de = dense () in
    let ecol_of (r : refined) e =
      let ms = Array.map (fun v -> r.vcol.(v)) (Hypergraph.edge_members h e) in
      Array.sort compare ms;
      de (r.ecol.(e) :: Array.to_list ms)
    in
    let ea = Array.init m (ecol_of a) in
    let eb = Array.init m (ecol_of b) in
    let dv = dense () in
    let vcol_of (r : refined) ecol' v =
      let es = Array.map (fun e -> ecol'.(e)) (Hypergraph.incident h v) in
      Array.sort compare es;
      dv (r.vcol.(v) :: Array.to_list es)
    in
    let va = Array.init n (vcol_of a ea) in
    let vb = Array.init n (vcol_of b eb) in
    Array.blit va 0 a.vcol 0 n;
    Array.blit vb 0 b.vcol 0 n;
    Array.blit ea 0 a.ecol 0 m;
    Array.blit eb 0 b.ecol 0 m;
    stable :=
      count_distinct (Array.append a.vcol b.vcol)
      + count_distinct (Array.append a.ecol b.ecol)
      = before
  done;
  (a, b)

let initial_refinement h =
  let n = Hypergraph.n h and m = Hypergraph.m h in
  let blank = { vcol = Array.make n 0; ecol = Array.make m 0 } in
  fst (refine_pair h blank blank)

let histogram a =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    a;
  List.sort compare (Hashtbl.fold (fun c k acc -> (c, k) :: acc) tbl [])

let compatible (a : refined) (b : refined) =
  histogram a.vcol = histogram b.vcol && histogram a.ecol = histogram b.ecol

(* --- Search ----------------------------------------------------------- *)

(* Two colourings are maintained: the source one with already-fixed
   vertices individualized in fixing order, and the target one with their
   chosen images individualized identically.  A level picks the first
   vertex of the smallest non-singleton source cell, tries every target
   vertex of equal colour, re-refines both sides and recurses when the
   colour histograms still agree.  At a complete assignment the candidate
   is checked outright — refinement is a pruning device, never trusted. *)

let group ?(cap = 40320) h =
  let n = Hypergraph.n h in
  let base = initial_refinement h in
  let found = ref [] and nfound = ref 0 and complete = ref true in
  let individualize (src : refined) (tgt : refined) v w rank =
    (* pin v (source) and w (target) with the same fresh colour, then
       re-refine both sides together *)
    let pin (r : refined) x =
      let vcol = Array.copy r.vcol in
      vcol.(x) <- n + ((rank + 1) * 1_000_003);
      { vcol; ecol = r.ecol }
    in
    refine_pair h (pin src v) (pin tgt w)
  in
  let rec next_cell (r : refined) (pi : perm) =
    (* first unfixed vertex in the smallest non-singleton cell *)
    let best = ref None in
    Array.iteri
      (fun v _ ->
        if pi.(v) < 0 then begin
          let size =
            Array.fold_left
              (fun k c -> if c = r.vcol.(v) then k + 1 else k)
              0 r.vcol
          in
          match !best with
          | Some (_, s) when s <= size -> ()
          | _ -> best := Some (v, size)
        end)
      r.vcol;
    !best |> Option.map fst
  and search rank (src : refined) (tgt : refined) (pi : perm) used =
    if !nfound >= cap then complete := false
    else
      match next_cell src pi with
      | None ->
        if is_automorphism h pi then begin
          found := Array.copy pi :: !found;
          incr nfound
        end
      | Some v ->
        for w = 0 to n - 1 do
          if (not used.(w)) && tgt.vcol.(w) = src.vcol.(v) && !nfound < cap
          then begin
            let src', tgt' = individualize src tgt v w rank in
            if compatible src' tgt' then begin
              pi.(v) <- w;
              used.(w) <- true;
              search (rank + 1) src' tgt' pi used;
              pi.(v) <- -1;
              used.(w) <- false
            end
          end
        done
  in
  search 0 base base (Array.make n (-1)) (Array.make n false);
  (List.rev !found, !complete)

let closure ?(cap = 40320) ~n perms =
  let tbl = Hashtbl.create 64 in
  let queue = Queue.create () in
  let idp = Array.init n (fun v -> v) in
  let add p =
    let key = Array.to_list p in
    if not (Hashtbl.mem tbl key) then begin
      Hashtbl.add tbl key p;
      Queue.add p queue
    end
  in
  add idp;
  List.iter (fun p -> if is_permutation n p then add p) perms;
  let complete = ref true in
  (try
     while not (Queue.is_empty queue) do
       let p = Queue.pop queue in
       List.iter
         (fun g ->
           if Hashtbl.length tbl >= cap then raise Exit;
           add (Array.init n (fun v -> g.(p.(v)))))
         perms
     done
   with Exit -> complete := false);
  (Hashtbl.fold (fun _ p acc -> p :: acc) tbl [], !complete)

let generators ~n perms =
  let non_id = List.filter (fun p -> p <> Array.init n (fun v -> v)) perms in
  let gens = ref [] in
  let known = Hashtbl.create 64 in
  let reclose () =
    Hashtbl.reset known;
    let elems, _ = closure ~cap:(max 2 (2 * List.length perms)) ~n !gens in
    List.iter (fun p -> Hashtbl.replace known (Array.to_list p) ()) elems
  in
  reclose ();
  List.iter
    (fun p ->
      if not (Hashtbl.mem known (Array.to_list p)) then begin
        gens := p :: !gens;
        reclose ()
      end)
    non_id;
  List.rev !gens

let orbits ~n perms =
  let parent = Array.init n (fun v -> v) in
  let rec find v = if parent.(v) = v then v else find parent.(v) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  List.iter
    (fun (p : perm) -> Array.iteri (fun v w -> union v w) p)
    perms;
  Array.init n (fun v -> find v)

let edge_orbits h perms =
  let m = Hypergraph.m h in
  let parent = Array.init m (fun e -> e) in
  let rec find e = if parent.(e) = e then e else find parent.(e) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  List.iter
    (fun p ->
      let ep = edge_perm h p in
      Array.iteri (fun e e' -> union e e') ep)
    perms;
  Array.init m (fun e -> find e)
