lib/hypergraph/families.mli: Hypergraph
