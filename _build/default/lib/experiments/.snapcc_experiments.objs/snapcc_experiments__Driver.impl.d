lib/experiments/driver.ml: Format List Snapcc_analysis Snapcc_hypergraph Snapcc_runtime Snapcc_workload
