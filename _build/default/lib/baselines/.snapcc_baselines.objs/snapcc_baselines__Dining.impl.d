lib/baselines/dining.ml: Array Format List Random Snapcc_core Snapcc_hypergraph Snapcc_runtime
