(* Benchmark harness.

   Part 1 regenerates every table/figure of the paper (one table per
   experiment, see DESIGN.md's per-experiment index and EXPERIMENTS.md for
   the recorded paper-vs-measured comparison).

   Part 2 macro-benchmarks the exhaustive model checker (lib/mc) on the
   3-professor conflict triangle: states/second and peak resident states.

   Part 3 macro-benchmarks the networked runtime (lib/net): forked node
   processes on a ring behind lossy links, reporting snapshots/s, bytes/s
   and the end-to-end handoff-latency distribution.

   Part 4 runs Bechamel micro-benchmarks — one Test.make per benchmark
   family — measuring the cost of a simulation step for each algorithm, the
   token substrate, and the exact matching computations behind the
   Theorem 4/5 bounds.

   `dune exec bench/main.exe` runs everything in full mode;
   `dune exec bench/main.exe -- --quick` uses the reduced sweeps (the same
   the test-suite uses). *)

module Families = Snapcc_hypergraph.Families
module Matching = Snapcc_hypergraph.Matching
module Model = Snapcc_runtime.Model
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module X = Snapcc_experiments.Algos
module Registry = Snapcc_experiments.Registry
module Table = Snapcc_experiments.Table

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

(* Machine-readable results, written to BENCH_<quick|full>.json at the end
   (the CI artifact; `ccsim stats --validate-json` gates its shape). *)
module Json = Snapcc_telemetry.Json

(* ---------- Part 1: the paper's tables and figures ---------- *)

let run_experiments () =
  Format.printf "=== snap-stabilizing committee coordination: experiment tables (%s mode) ===@.@."
    (if quick then "quick" else "full");
  List.map
    (fun (e : Registry.entry) ->
      let t0 = Unix.gettimeofday () in
      let table = e.Registry.run ~quick in
      let dt = Unix.gettimeofday () -. t0 in
      Format.printf "%a@," Table.pp table;
      Format.printf "(%s: %.1fs)@.@." e.Registry.id dt;
      Json.Obj [ ("id", Json.String e.Registry.id); ("seconds", Json.Float dt) ])
    Registry.all

(* ---------- Part 2: model-checker macro-benchmark ---------- *)

(* Exhaustive exploration of cc1 ∘ vring from every initial configuration
   of the 3-professor conflict triangle (884736 roots; --quick drops to the
   single-committee pair): states/second of the hash-consed BFS and the
   peak resident state count, the two numbers that bound which instances
   `ccsim check` can verify. *)
let run_mc_bench () =
  let entry =
    match Snapcc_mc.Systems.find "cc1" with
    | Some e -> e
    | None -> assert false
  in
  let module S = (val entry.Snapcc_mc.Systems.make "vring") in
  let module Ex = Snapcc_mc.Explore.Make (S) in
  let h, topo =
    if quick then (Families.single 2, "single2")
    else (Families.pair_ring 3, "triangle3")
  in
  Format.printf "=== model checker: exhaustive cc1 ∘ vring on %s ===@." topo;
  let t0 = Unix.gettimeofday () in
  let r = Ex.explore h in
  let dt = Unix.gettimeofday () -. t0 in
  let gc = Gc.quick_stat () in
  let states_per_s = float_of_int (Ex.n_configs r) /. dt in
  let heap_mb =
    float_of_int (gc.Gc.heap_words * (Sys.word_size / 8)) /. (1024. *. 1024.)
  in
  Format.printf
    "states %d  transitions %d  complete %b@.\
     states/s %.0f  wall %.2fs  peak resident states %d  heap %.1f MB@.@."
    (Ex.n_configs r) (Ex.n_transitions r) (Ex.complete r)
    states_per_s dt (Ex.n_configs r) heap_mb;
  (* the same exploration again, driven by the exact tier's packed
     guard/footprint tables instead of the guard closures: table build
     time is the price, per-transition lookup the payoff *)
  let module Tb = Snapcc_mc.Tables.Make (S) in
  let t0 = Unix.gettimeofday () in
  let tb = Tb.build h in
  let build_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let rt = Ex.explore ~tables:tb h in
  let dt_tables = Unix.gettimeofday () -. t0 in
  let states_per_s_tables = float_of_int (Ex.n_configs rt) /. dt_tables in
  assert (Ex.n_configs rt = Ex.n_configs r);
  assert (Ex.n_transitions rt = Ex.n_transitions r);
  Format.printf
    "table-driven: build %.2fs  explore %.2fs  states/s %.0f  (x%.2f vs \
     closures)@.@."
    build_s dt_tables states_per_s_tables (dt /. dt_tables);
  (* the same exploration once more, quotiented by the statically admitted
     symmetry group (the vring counter gauge, Z_{n+1}): one stored
     configuration per orbit, same verdicts *)
  let module Sym = Snapcc_statics.Symmetry.Make (S) in
  let so = Sym.run h ~tables:tb in
  let sym_order = Snapcc_mc.Symmetry.order so.Snapcc_statics.Symmetry.group in
  let t0 = Unix.gettimeofday () in
  let rs = Ex.explore ~tables:tb ~symmetry:so.Snapcc_statics.Symmetry.group h in
  let dt_sym = Unix.gettimeofday () -. t0 in
  let states_per_s_sym = float_of_int (Ex.n_configs rs) /. dt_sym in
  let orbit_reduction =
    float_of_int (Ex.n_configs r) /. float_of_int (max 1 (Ex.n_configs rs))
  in
  assert (Ex.complete rs);
  assert (Ex.violations rs = Ex.violations r);
  Format.printf
    "symmetry: admitted group order %d  orbits %d  (x%.2f fewer states)  \
     explore %.2fs  states/s %.0f@.@."
    sym_order (Ex.n_configs rs) orbit_reduction dt_sym states_per_s_sym;
  Json.Obj
    [ ("algo", Json.String "cc1"); ("token", Json.String "vring");
      ("topo", Json.String topo);
      ("states", Json.Int (Ex.n_configs r));
      ("transitions", Json.Int (Ex.n_transitions r));
      ("complete", Json.Bool (Ex.complete r));
      ("states_per_s", Json.Float states_per_s);
      ("wall_s", Json.Float dt);
      ("table_build_s", Json.Float build_s);
      ("wall_s_tables", Json.Float dt_tables);
      ("states_per_s_tables", Json.Float states_per_s_tables);
      ("tables_speedup", Json.Float (dt /. dt_tables));
      ("symmetry_order", Json.Int sym_order);
      ("orbits", Json.Int (Ex.n_configs rs));
      ("orbit_reduction", Json.Float orbit_reduction);
      ("wall_s_sym", Json.Float dt_sym);
      ("states_per_s_sym", Json.Float states_per_s_sym);
      ("peak_resident_states", Json.Int (Ex.n_configs r));
      ("heap_mb", Json.Float heap_mb) ]

(* ---------- Part 2b: exact static tier wall time ---------- *)

(* Wall time of the exact footprint analysis (lib/statics Exact over
   lib/mc Tables) on the families `ccsim lint --exact` runs by default:
   full domain-product enumeration per process under all input modes,
   verify mode on.  --quick drops line3 (CC3 there costs ~10s). *)
let run_exact_bench () =
  let topos =
    if quick then [ ("single2", Families.single 2) ]
    else [ ("single2", Families.single 2); ("line3", Families.path 3) ]
  in
  Format.printf "=== exact static tier (lint --exact families) ===@.";
  let rows =
    List.concat_map
      (fun key ->
        let entry =
          match Snapcc_mc.Systems.find key with
          | Some e -> e
          | None -> assert false
        in
        let module S = (val entry.Snapcc_mc.Systems.make "tree") in
        let module Ex = Snapcc_statics.Exact.Make (S) in
        List.map
          (fun (topo, h) ->
            let _, cov, _ = Ex.run ~algo:key ~topo h in
            Format.printf "%-4s %-8s %9d cells  %6.2fs  complete=%b@." key
              topo cov.Snapcc_statics.Exact.cells
              cov.Snapcc_statics.Exact.seconds
              cov.Snapcc_statics.Exact.complete;
            Json.Obj
              [ ("algo", Json.String key); ("topo", Json.String topo);
                ("cells", Json.Int cov.Snapcc_statics.Exact.cells);
                ("wall_s", Json.Float cov.Snapcc_statics.Exact.seconds);
                ("complete", Json.Bool cov.Snapcc_statics.Exact.complete) ])
          topos)
      [ "cc1"; "cc2"; "cc3" ]
  in
  Format.printf "@.";
  rows

(* ---------- Part 2c: packed-engine macro-benchmark ---------- *)

module Mc_sys = Snapcc_mc.Systems

module Cursor_on = struct
  let cursor = true
end

module Sys_cc3 = Mc_sys.Cc23_sys (Snapcc_token.Token_tree) (X.Cc3) (Cursor_on)
module Pk_cc3 = Snapcc_mc.Packed.Make (Sys_cc3)

(* The simulation engines' packed fast path against the guard closures,
   on a topology whose tables build in well under a second: (a) the
   shared-memory driver end to end (meetings/s — monitors and workload
   dilute the per-step win), (b) the message-passing engine stepped raw
   (steps/s — the guard-scan-bound loop the tables accelerate).  Both
   runs are asserted trace-equal: the speedup buys the same execution. *)
let run_engine_bench () =
  let topo, h = ("single2", Families.single 2) in
  let steps = if quick then 30_000 else 150_000 in
  Format.printf "=== packed engine vs guard closures: cc3 on %s ===@." topo;
  let t0 = Unix.gettimeofday () in
  let pk = Pk_cc3.build h in
  let build_s = Unix.gettimeofday () -. t0 in
  let hooks = Pk_cc3.hooks pk in
  (* (a) driver: meetings over the full monitored pipeline *)
  let module R = X.Run_cc3 in
  let driver ?packed () =
    let daemon = Daemon.random_subset () in
    let workload = Workload.always_requesting h in
    let t0 = Unix.gettimeofday () in
    let r = R.run ~seed:3 ?packed ~daemon ~workload ~steps h in
    (r, Unix.gettimeofday () -. t0)
  in
  let rc, dt_c = driver () in
  let rp, dt_p = driver ~packed:hooks () in
  assert (rc.Snapcc_experiments.Driver.convened = rp.Snapcc_experiments.Driver.convened);
  assert (rc.Snapcc_experiments.Driver.steps = rp.Snapcc_experiments.Driver.steps);
  let meetings r = List.length r.Snapcc_experiments.Driver.convened in
  let meetings_per_s = float_of_int (meetings rc) /. dt_c in
  let meetings_per_s_packed = float_of_int (meetings rp) /. dt_p in
  Format.printf
    "driver: build %.2fs  closures %.2fs  packed %.2fs  meetings/s %.0f -> \
     %.0f  (x%.2f)@."
    build_s dt_c dt_p meetings_per_s meetings_per_s_packed (dt_c /. dt_p);
  (* (b) mp engine: raw steps under constant requests *)
  let module E = Snapcc_mp.Mp_engine.Make (X.Cc3) in
  let inputs =
    { Model.request_in = (fun _ -> true); request_out = (fun _ -> true) }
  in
  let mp_steps = steps * 4 in
  let mp ?packed () =
    let eng = E.create ~seed:1 ?packed h in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to mp_steps do
      ignore (E.step eng ~inputs)
    done;
    (eng, Unix.gettimeofday () -. t0)
  in
  let ec, mt_c = mp () in
  let ep, mt_p = mp ~packed:hooks () in
  assert (E.engine_kind ep = `Packed);
  assert (E.obs ec = E.obs ep);
  assert (E.messages_delivered ec = E.messages_delivered ep);
  let mp_steps_per_s = float_of_int mp_steps /. mt_c in
  let mp_steps_per_s_packed = float_of_int mp_steps /. mt_p in
  Format.printf
    "mp:     closures %.2fs  packed %.2fs  steps/s %.0f -> %.0f  (x%.2f)@."
    mt_c mt_p mp_steps_per_s mp_steps_per_s_packed (mt_c /. mt_p);
  (* (c) observability tax.  Two measurements:

     - the raw microloop above re-run with a telemetry hub on a discard
       sink and vector-clock stamping active (`mp_steps_per_s_stamped`,
       informational: the bare packed step is ~100-150ns, so the ~40ns
       per-event clock stamp is a visible multiple of it — the raw
       microloop is a lower bound no observability layer can meet);
     - the full instrumented pipeline `ccsim mp` actually runs —
       workload inputs + engine step + Spec monitors + Metrics, all on
       the hub — with stamping on vs off (`stamping_overhead`,
       CI-gated).  Each on/off pair runs back-to-back and the reported
       overhead is the median pair ratio, which cancels host frequency
       drift that a min-of-k cannot (adjacent runs share the slow
       phase).  Steady state on this instance is ~x1.06.

     Stamping must not change the execution either way (obs equality
     per pair below; it never touches the rng). *)
  let module Tele = Snapcc_telemetry in
  let discard_hub () =
    let hub = Tele.Hub.create () in
    Tele.Hub.add_sink hub
      (Tele.Sink.custom ~emit:(fun _ -> ()) ~close:(fun () -> ()));
    hub
  in
  let mp_stamped () =
    let hub = discard_hub () in
    let eng = E.create ~seed:1 ~telemetry:hub ~packed:hooks h in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to mp_steps do
      ignore (E.step eng ~inputs)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Tele.Hub.close hub;
    (eng, dt)
  in
  let es, mt_s = mp_stamped () in
  assert (E.obs es = E.obs ep);
  assert (E.messages_delivered es = E.messages_delivered ep);
  let mp_steps_per_s_stamped = float_of_int mp_steps /. mt_s in
  Format.printf
    "mp:     stamped %.2fs  steps/s %.0f  (raw microloop x%.3f vs packed)@."
    mt_s mp_steps_per_s_stamped (mt_s /. mt_p);
  let module Spec = Snapcc_analysis.Spec in
  let module Metrics = Snapcc_analysis.Metrics in
  let pipeline ~vclock () =
    let hub = discard_hub () in
    let workload = Workload.always_requesting h in
    let eng = E.create ~seed:1 ~telemetry:hub ~vclock ~packed:hooks h in
    let spec = Spec.create ~telemetry:hub h ~initial:(E.obs eng) in
    let metrics = Metrics.create ~telemetry:hub h ~initial:(E.obs eng) in
    let before = ref (E.obs eng) in
    let t0 = Unix.gettimeofday () in
    for i = 0 to mp_steps - 1 do
      let inputs = Workload.inputs workload !before in
      ignore (E.step eng ~inputs);
      let after = E.obs eng in
      Spec.on_step spec ~step:i ~request_out:inputs.Model.request_out
        ~before:!before ~after;
      Metrics.on_step metrics ~step:i ~round:0 ~before:!before ~after;
      before := after
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Tele.Hub.close hub;
    (eng, dt)
  in
  ignore (pipeline ~vclock:false ());
  let pairs = 5 in
  let ratios =
    Array.init pairs (fun _ ->
        let e0, pt_off = pipeline ~vclock:false () in
        let e1, pt_on = pipeline ~vclock:true () in
        assert (E.obs e0 = E.obs e1);
        (pt_off, pt_on))
  in
  let pt_off = Array.fold_left (fun a (o, _) -> a +. o) 0. ratios in
  let pt_on = Array.fold_left (fun a (_, o) -> a +. o) 0. ratios in
  let rs = Array.map (fun (o, n) -> n /. o) ratios in
  Array.sort compare rs;
  let stamping_overhead = rs.(pairs / 2) in
  Format.printf
    "mp:     pipeline unstamped %.2fs  stamped %.2fs  (median overhead \
     x%.3f over %d pairs)@."
    pt_off pt_on stamping_overhead pairs;
  let profile = E.profile ep in
  Format.printf "mp profile:";
  List.iter (fun (k, v) -> Format.printf "  %s=%d" k v) profile;
  Format.printf "@.@.";
  Json.Obj
    [ ("algo", Json.String "cc3"); ("topo", Json.String topo);
      ("table_build_s", Json.Float build_s);
      ("driver_steps", Json.Int steps);
      ("meetings", Json.Int (meetings rc));
      ("meetings_per_s", Json.Float meetings_per_s);
      ("meetings_per_s_packed", Json.Float meetings_per_s_packed);
      ("driver_speedup", Json.Float (dt_c /. dt_p));
      ("mp_steps", Json.Int mp_steps);
      ("mp_steps_per_s", Json.Float mp_steps_per_s);
      ("mp_steps_per_s_packed", Json.Float mp_steps_per_s_packed);
      ("mp_speedup", Json.Float (mt_c /. mt_p));
      ("mp_steps_per_s_stamped", Json.Float mp_steps_per_s_stamped);
      ("stamping_overhead", Json.Float stamping_overhead);
      ("profile",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) profile)) ]

(* ---------- Part 3: networked-runtime macro-benchmark ---------- *)

module Net = Snapcc_net

(* End-to-end throughput of the multi-process runtime: one forked OS
   process per professor, lossy links (drop + delay + dup + corrupt) and a
   mid-run corruption burst, the same soak the CI job runs.  Snapshots/s
   and bytes/s count deliveries through the link layer; the handoff
   latency is wall-clock µs from the link-layer send to the node's
   [Delivered] acknowledgement, i.e. one full frame round-trip. *)
let run_net_bench () =
  let n, steps = if quick then (5, 2_000) else (9, 10_000) in
  let h = Families.pair_ring n in
  let plan =
    { Net.Faults.none with drop = 0.05; delay = 2; dup = 0.02; corrupt = 0.02 }
  in
  let cfg engine =
    { Net.Orchestrator.algo = "cc1"; seed = 11; init = `Canonical;
      deliver_bias = 0.5; steps; plan; burst = Some (steps / 2); engine }
  in
  Format.printf "=== networked runtime: cc1 on ring%d, %d steps, faults %a ===@."
    n steps Net.Faults.pp plan;
  let soak engine =
    match
      Net.Orchestrator.run ~mode:Net.Spawn.Fork
        ~workload:(Workload.always_requesting h) (cfg engine) h
    with
    | Ok r -> r
    | Error e -> failwith e
  in
  (* full-marshal wire first: its numbers are the historical baseline *)
  let r = soak `Closure in
  let rp = soak `Packed in
  (* the wire engine must not change the execution, only its byte cost *)
  assert (rp.Net.Orchestrator.delivered = r.Net.Orchestrator.delivered);
  assert (rp.Net.Orchestrator.malformed = r.Net.Orchestrator.malformed);
  assert (rp.Net.Orchestrator.stabilized_in = r.Net.Orchestrator.stabilized_in);
  assert (rp.Net.Orchestrator.final_obs = r.Net.Orchestrator.final_obs);
  let per_snapshot (x : Net.Orchestrator.result) =
    float_of_int x.bytes_delivered /. float_of_int (max 1 x.delivered)
  in
  let bytes_per_snapshot = per_snapshot r in
  let bytes_per_snapshot_packed = per_snapshot rp in
  let bytes_delta = bytes_per_snapshot /. bytes_per_snapshot_packed in
  Format.printf
    "wire: full-snapshot %.1f B/snapshot  packed-delta %.1f B/snapshot  \
     (x%.2f smaller, %d resyncs)@."
    bytes_per_snapshot bytes_per_snapshot_packed bytes_delta
    rp.Net.Orchestrator.resyncs;
  let lat = r.Net.Orchestrator.latencies_us in
  let pct q = Snapcc_analysis.Metrics.percentile q lat in
  let lat_max = List.fold_left max 0 lat in
  let snapshots_per_s = float_of_int r.delivered /. r.wall_s in
  let bytes_per_s = float_of_int r.bytes_delivered /. r.wall_s in
  (* Bucketized against the shared telemetry edges (one definition for
     bench, `ccsim net', `ccsim stats' and the live dashboards); the
     overflow bucket catches scheduling hiccups so the counts always sum
     to [delivered]. *)
  let counts = Snapcc_telemetry.Registry.bucket_counts lat in
  Format.printf
    "sent %d  delivered %d  dropped %d (malformed %d)  violations %d@.\
     snapshots/s %.0f  bytes/s %.0f  wall %.2fs@.\
     handoff latency p50 %dus  p90 %dus  p99 %dus  max %dus@."
    r.sent r.delivered r.dropped r.malformed
    (List.length r.violations) snapshots_per_s bytes_per_s r.wall_s
    (pct 0.50) (pct 0.90) (pct 0.99) lat_max;
  List.iter
    (fun (label, c) -> if c > 0 then Format.printf "  %-10s %6d@." label c)
    counts;
  Format.printf "@.";
  let hist =
    List.map
      (fun (label, c) ->
        Json.Obj [ ("bucket", Json.String label); ("count", Json.Int c) ])
      counts
  in
  Json.Obj
    [ ("algo", Json.String "cc1");
      ("topo", Json.String (Printf.sprintf "ring%d" n));
      ("steps", Json.Int r.steps); ("seed", Json.Int 11);
      ("faults", Json.String (Format.asprintf "%a" Net.Faults.pp plan));
      ("burst_at", Json.Int (steps / 2));
      ("sent", Json.Int r.sent); ("delivered", Json.Int r.delivered);
      ("dropped", Json.Int r.dropped); ("malformed", Json.Int r.malformed);
      ("bytes_sent", Json.Int r.bytes_sent);
      ("bytes_delivered", Json.Int r.bytes_delivered);
      ("bytes_per_snapshot", Json.Float bytes_per_snapshot);
      ("bytes_per_snapshot_packed", Json.Float bytes_per_snapshot_packed);
      ("bytes_per_snapshot_delta", Json.Float bytes_delta);
      ("resyncs", Json.Int rp.Net.Orchestrator.resyncs);
      ("snapshots_per_s", Json.Float snapshots_per_s);
      ("bytes_per_s", Json.Float bytes_per_s);
      ("wall_s", Json.Float r.wall_s);
      ("violations", Json.Int (List.length r.violations));
      ("stabilized_in",
       (match r.stabilized_in with Some s -> Json.Int s | None -> Json.Null));
      ("latency_us",
       Json.Obj
         [ ("p50", Json.Int (pct 0.50)); ("p90", Json.Int (pct 0.90));
           ("p99", Json.Int (pct 0.99)); ("max", Json.Int lat_max) ]);
      ("latency_histogram", Json.List hist) ]

(* ---------- Part 3b: statistical tier (lib/smc) ---------- *)

module Smc = Snapcc_smc

(* Monte-Carlo throughput of `ccsim smc`: the same estimate computed
   sequentially and with 4 forked workers.  The two reports must be
   byte-identical (the tier's core guarantee — asserted here on every
   bench run); the speedup is what CI gates on, since the runner there
   has >= 4 cores.  CI widths travel with the numbers so precision
   regressions (e.g. a broken pooled-wait merge) are visible in the
   artifact diff. *)
let run_smc_bench () =
  let topo_name, trials, budget =
    if quick then ("ring5", 240, 400) else ("ring9", 2000, 600)
  in
  let workers = 4 in
  let cfg w =
    { Smc.Runner.algo = "cc1";
      topo_name;
      topo = Families.by_name topo_name;
      daemon = "random";
      workload = "always";
      disc = 2;
      budget;
      trials;
      workers = w;
      seed = 42;
      confidence = 0.95;
      engine = `Packed;
      sprt = None;
      sprt_delta = 0.02;
      sprt_within = None }
  in
  Format.printf "=== smc: cc1 on %s, %d trials x %d steps ===@." topo_name
    trials budget;
  let time w =
    let t0 = Unix.gettimeofday () in
    let r =
      match Smc.Runner.run (cfg w) with Ok r -> r | Error e -> failwith e
    in
    (r, Unix.gettimeofday () -. t0)
  in
  let r1, wall1 = time 1 in
  let rp, wallp = time workers in
  assert (
    Json.to_string (Smc.Report.to_json r1)
    = Json.to_string (Smc.Report.to_json rp));
  let tps1 = float_of_int trials /. wall1 in
  let tpsp = float_of_int trials /. wallp in
  let speedup = tpsp /. tps1 in
  let width = function
    | Some (d : Smc.Report.dist) -> d.ci.Smc.Estimator.hi -. d.ci.Smc.Estimator.lo
    | None -> 0.
  in
  let mean = function
    | Some (d : Smc.Report.dist) -> d.mean
    | None -> 0.
  in
  let stab = r1.Smc.Report.stabilization in
  let wait = r1.Smc.Report.waiting in
  Format.printf
    "trials/s %.1f (1 worker)  %.1f (%d workers)  speedup x%.2f  (reports \
     byte-identical)@."
    tps1 tpsp workers speedup;
  Format.printf
    "stabilization mean %.2f (ci width %.3f)  waiting mean %.2f (ci width \
     %.3f)@.@."
    (mean stab) (width stab) (mean wait) (width wait);
  Json.Obj
    [ ("algo", Json.String "cc1");
      ("topo", Json.String topo_name);
      ("trials", Json.Int trials);
      ("budget", Json.Int budget);
      ("seed", Json.Int 42);
      ("workers", Json.Int workers);
      ("trials_per_s", Json.Float tps1);
      ("trials_per_s_parallel", Json.Float tpsp);
      ("parallel_speedup", Json.Float speedup);
      ("reports_identical", Json.Bool true);
      ("stabilization_mean", Json.Float (mean stab));
      ("stabilization_ci_width", Json.Float (width stab));
      ("waiting_mean", Json.Float (mean wait));
      ("waiting_ci_width", Json.Float (width wait)) ]

(* ---------- Part 4: Bechamel micro-benchmarks ---------- *)

open Bechamel
open Toolkit

(* One engine step (daemon selection + guard evaluation + atomic writes)
   under a steady always-requesting load. *)
let step_bench (type s) name (module A : Model.ALGO with type state = s) h =
  let module E = Snapcc_runtime.Engine.Make (A) in
  let eng = E.create ~seed:1 ~daemon:(Daemon.random_subset ()) h in
  let workload = Workload.always_requesting h in
  Test.make ~name
    (Staged.stage (fun () ->
         let inputs = Workload.inputs workload (E.obs eng) in
         let report = E.step eng ~inputs in
         if not report.Model.terminal then
           Workload.observe workload ~step:report.Model.step (E.obs eng)))

let token_bench name h =
  let module A = Snapcc_token.Layer.As_algo (Snapcc_token.Token_tree) in
  let module E = Snapcc_runtime.Engine.Make (A) in
  let eng = E.create ~seed:1 ~daemon:(Daemon.random_subset ()) h in
  Test.make ~name
    (Staged.stage (fun () -> ignore (E.step eng ~inputs:Model.no_inputs)))

let leader_convergence_bench name h =
  let module E = Snapcc_runtime.Engine.Make (Snapcc_token.Leader.Algo) in
  let seed = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr seed;
         let eng = E.create ~seed:!seed ~init:`Random ~daemon:Daemon.synchronous h in
         ignore (E.run eng ~steps:10_000 ~inputs_at:(fun _ -> Model.no_inputs) ())))

let matching_bench name h =
  Test.make ~name (Staged.stage (fun () -> ignore (Matching.bounds h)))

let mp_step_bench name h =
  let module E = Snapcc_mp.Mp_engine.Make (X.Cc2) in
  let eng = E.create ~seed:1 h in
  let workload = Workload.always_requesting h in
  Test.make ~name
    (Staged.stage (fun () ->
         let inputs = Workload.inputs workload (E.obs eng) in
         ignore (E.step eng ~inputs)))

let tests () =
  let fig1 = Families.fig1 () in
  let ring9 = Families.pair_ring 9 in
  let tri9 = Families.k_uniform_ring ~n:9 ~k:3 in
  [ step_bench "step/cc1/fig1" (module X.Cc1) fig1;
    step_bench "step/cc2/fig1" (module X.Cc2) fig1;
    step_bench "step/cc3/fig1" (module X.Cc3) fig1;
    step_bench "step/cc1/ring9" (module X.Cc1) ring9;
    step_bench "step/cc2/ring9" (module X.Cc2) ring9;
    step_bench "step/cc2/triring9" (module X.Cc2) tri9;
    step_bench "step/cc2/ring24" (module X.Cc2) (Families.pair_ring 24);
    step_bench "step/cc2/ring48" (module X.Cc2) (Families.pair_ring 48);
    step_bench "step/dining/fig1" (module X.Dining) fig1;
    step_bench "step/central/fig1" (module X.Central) fig1;
    mp_step_bench "mp-step/cc2/ring9" ring9;
    token_bench "token/step/ring9" ring9;
    leader_convergence_bench "leader/converge/fig1" fig1;
    matching_bench "matching/bounds/fig4" (Families.fig4 ());
    matching_bench "matching/bounds/ring8" (Families.pair_ring 8);
  ]

let run_micro_benchmarks () =
  Format.printf "=== Bechamel micro-benchmarks (time per call) ===@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg
      ~limit:(if quick then 500 else 2000)
      ~quota:(Time.second (if quick then 0.25 else 0.75))
      ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"snapcc" ~fmt:"%s %s" (tests ()))
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Format.printf "%-28s %14s@." "benchmark" "ns/call";
  List.iter (fun (name, ns) -> Format.printf "%-28s %14.1f@." name ns) rows;
  Format.printf "@.";
  List.map
    (fun (name, ns) ->
      Json.Obj [ ("name", Json.String name); ("ns_per_call", Json.Float ns) ])
    rows

let () =
  let experiments = run_experiments () in
  let mc = run_mc_bench () in
  let exact = run_exact_bench () in
  let engine = run_engine_bench () in
  let net = run_net_bench () in
  let smc = run_smc_bench () in
  let micro = run_micro_benchmarks () in
  let label = if quick then "quick" else "full" in
  let file = Printf.sprintf "BENCH_%s.json" label in
  let oc = open_out file in
  output_string oc
    (Json.to_string
       (Json.Obj
          [ ("mode", Json.String label);
            ("experiments", Json.List experiments);
            ("mc", mc);
            ("exact", Json.List exact);
            ("engine", engine);
            ("net", net);
            ("smc", smc);
            ("micro", Json.List micro) ]));
  output_char oc '\n';
  close_out oc;
  Format.printf "machine-readable results written to %s@." file
