examples/university.mli:
