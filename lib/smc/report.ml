(* The smc report: every estimate the tier publishes, with its interval.

   Deliberately free of wall-clock times and worker counts — the report
   is a pure function of (algo, topo, workload, daemon, disc, budget,
   seed, confidence, trial records), so the `--workers 4' and
   `--workers 1' runs of the same seed emit byte-identical JSON.  The
   bench and tests diff the files directly. *)

module Json = Snapcc_telemetry.Json
module Metrics = Snapcc_analysis.Metrics

type dist = {
  samples : int;
  mean : float;
  sd : float;
  ci : Estimator.ci;  (* Student-t interval on the mean *)
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
}

type proportion = { count : int; p : float; ci : Estimator.ci }

type t = {
  algo : string;
  topo : string;
  daemon : string;
  workload : string;
  disc : int;
  budget : int;
  trials : int;
  seed : int;
  confidence : float;
  stabilization : dist option;  (* over trials that stabilized *)
  stabilized : proportion;  (* P(stabilized within budget), Wilson *)
  waiting : dist option;  (* waits pooled across all trials *)
  deadlock : proportion;  (* P(terminal freeze within budget), Wilson *)
  violations : int;
  sprt : Sprt.outcome option;
}

let dist_of ~confidence samples =
  match samples with
  | [] -> None
  | _ ->
    let floats = List.map float_of_int samples in
    let mean, ci = Estimator.student_t_ci ~confidence floats in
    let pc q = Metrics.percentile q samples in
    Some
      { samples = List.length samples;
        mean;
        sd = Estimator.sd floats;
        ci;
        p50 = pc 0.50;
        p90 = pc 0.90;
        p99 = pc 0.99;
        max = Metrics.maximum samples }

let proportion_of ~confidence ~count ~trials =
  let p, ci = Estimator.wilson ~confidence ~successes:count ~trials in
  { count; p; ci }

let build ~algo ~topo ~daemon ~workload ~disc ~budget ~seed ~confidence ?sprt
    records =
  let trials = List.length records in
  let stab_times =
    List.filter_map (fun r -> r.Trial.stabilized) records
  in
  let waits = List.concat_map (fun r -> r.Trial.waits) records in
  let deadlocks =
    List.length (List.filter (fun r -> r.Trial.deadlocked) records)
  in
  let violations =
    List.fold_left (fun acc r -> acc + r.Trial.violations) 0 records
  in
  { algo;
    topo;
    daemon;
    workload;
    disc;
    budget;
    trials;
    seed;
    confidence;
    stabilization = dist_of ~confidence stab_times;
    stabilized =
      proportion_of ~confidence ~count:(List.length stab_times) ~trials;
    waiting = dist_of ~confidence waits;
    deadlock = proportion_of ~confidence ~count:deadlocks ~trials;
    violations;
    sprt }

let ok t =
  t.violations = 0
  && (match t.sprt with
      | Some o -> o.Sprt.verdict <> Sprt.Rejected
      | None -> true)

let ci_json (ci : Estimator.ci) =
  Json.Obj [ ("lo", Json.Float ci.Estimator.lo); ("hi", Json.Float ci.Estimator.hi) ]

let dist_json d =
  Json.Obj
    [ ("samples", Json.Int d.samples);
      ("mean", Json.Float d.mean);
      ("sd", Json.Float d.sd);
      ("ci", ci_json d.ci);
      ("p50", Json.Int d.p50);
      ("p90", Json.Int d.p90);
      ("p99", Json.Int d.p99);
      ("max", Json.Int d.max) ]

let proportion_json pr =
  Json.Obj
    [ ("count", Json.Int pr.count);
      ("p", Json.Float pr.p);
      ("ci", ci_json pr.ci) ]

let sprt_json (o : Sprt.outcome) =
  Json.Obj
    [ ("theta", Json.Float o.Sprt.spec.Sprt.theta);
      ("delta", Json.Float o.Sprt.spec.Sprt.delta);
      ("alpha", Json.Float o.Sprt.spec.Sprt.alpha);
      ("beta", Json.Float o.Sprt.spec.Sprt.beta);
      ("verdict", Json.String (Sprt.verdict_name o.Sprt.verdict));
      ("consumed", Json.Int o.Sprt.consumed);
      ("successes", Json.Int o.Sprt.successes);
      ("llr", Json.Float o.Sprt.llr) ]

let opt f = function Some v -> f v | None -> Json.Null

let to_json t =
  Json.Obj
    [ ("kind", Json.String "smc_report");
      ("algo", Json.String t.algo);
      ("topo", Json.String t.topo);
      ("daemon", Json.String t.daemon);
      ("workload", Json.String t.workload);
      ("disc", Json.Int t.disc);
      ("budget", Json.Int t.budget);
      ("trials", Json.Int t.trials);
      ("seed", Json.Int t.seed);
      ("confidence", Json.Float t.confidence);
      ("stabilization_steps", opt dist_json t.stabilization);
      ("stabilized_within_budget", proportion_json t.stabilized);
      ("waiting_steps", opt dist_json t.waiting);
      ("deadlock", proportion_json t.deadlock);
      ("violations", Json.Int t.violations);
      ("sprt", opt sprt_json t.sprt) ]

let pp_dist ppf d =
  Format.fprintf ppf
    "mean %.2f +- [%.2f, %.2f]  sd %.2f  p50 %d  p90 %d  p99 %d  max %d  (%d samples)"
    d.mean d.ci.Estimator.lo d.ci.Estimator.hi d.sd d.p50 d.p90 d.p99 d.max
    d.samples

let pp_proportion ppf pr =
  Format.fprintf ppf "%.4g  [%.4g, %.4g]  (%d hits)" pr.p pr.ci.Estimator.lo
    pr.ci.Estimator.hi pr.count

let pp ppf t =
  Format.fprintf ppf
    "smc: %s on %s, %d trials x %d steps (workload %s, daemon %s, seed %d)@."
    t.algo t.topo t.trials t.budget t.workload t.daemon t.seed;
  (match t.stabilization with
   | Some d -> Format.fprintf ppf "stabilization steps: %a@." pp_dist d
   | None -> Format.fprintf ppf "stabilization steps: no trial stabilized@.");
  Format.fprintf ppf "P(stabilized <= budget): %a@." pp_proportion
    t.stabilized;
  (match t.waiting with
   | Some d -> Format.fprintf ppf "waiting steps: %a@." pp_dist d
   | None -> Format.fprintf ppf "waiting steps: no completed waits@.");
  Format.fprintf ppf "P(deadlock): %a@." pp_proportion t.deadlock;
  Format.fprintf ppf "violations: %d" t.violations;
  match t.sprt with
  | None -> ()
  | Some o ->
    Format.fprintf ppf
      "@.sprt: P(stabilized) >= %g (delta %g): %s after %d trials (%d successes, llr %.3f)"
      o.Sprt.spec.Sprt.theta o.Sprt.spec.Sprt.delta
      (Sprt.verdict_name o.Sprt.verdict)
      o.Sprt.consumed o.Sprt.successes o.Sprt.llr
