lib/experiments/exp_priorities.ml: Algos Array Driver List Printf Snapcc_analysis Snapcc_core Snapcc_hypergraph Snapcc_runtime Snapcc_token Snapcc_workload Table
