(** The honest [TC] substrate: self-stabilizing DFS token circulation on
    arbitrary connected networks, in the style of the tree-wave (PIF)
    constructions the paper builds on [9,10,24–27].

    {!Leader} elects the minimum identifier and maintains a BFS spanning
    tree with published child lists.  On that tree, each process keeps a
    wave position [pos]:
    - [-1] — clean: the process' subtree is not being visited;
    - [0] — the process holds the token (DFS first visit);
    - [i] in [1..k] — the token is inside the subtree of its [i]-th child;
    - [k+1] — done: the subtree has been fully visited (feedback).

    The unique legitimate token is the end of the {e consistent pointer
    chain} from the root (each link: the parent's [pos] names the child).
    A process engaged without its parent pointing at it is locally
    inconsistent and resets itself — so surplus tokens die through internal
    actions only, {e independently of whether the legitimate holder ever
    releases}: exactly Property 1's third requirement, and the reason a
    committee algorithm composed with this layer cannot be deadlocked by
    multiple post-fault token holders.

    [Token(p)] is a consistent [pos = 0]; [ReleaseToken(p)] starts the
    descent into the first child (or the feedback for a leaf).  All reads
    are local: parent and children are neighbors, and a neighbor's child
    count is the length of its published list. *)

module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model

type state = {
  le : Leader.t;
  pos : int;  (** wave position: -1 clean, 0 token, 1..k in child i, k+1 done *)
}

let name = "token-tree"

let pp_state ppf s =
  Format.fprintf ppf "%a pos=%d" Leader.pp s.le s.pos

let equal_state (a : state) b = Leader.equal a.le b.le && a.pos = b.pos
let nchildren (s : state) = Array.length s.le.Leader.childs
let done_pos s = nchildren s + 1
let is_local_root h ~self (s : state) = Leader.is_root h s.le ~self

(* 1-based index of [child] in the parent's published list. *)
let child_index (parent_state : state) ~child =
  let childs = parent_state.le.Leader.childs in
  let rec find i =
    if i >= Array.length childs then None
    else if childs.(i) = child then Some (i + 1)
    else find (i + 1)
  in
  find 0

(* The parent's pointer names [p]: the link of the legitimate chain. *)
let engaged_ok h ~read p =
  let sp : state = read p in
  if is_local_root h ~self:p sp then true
  else begin
    let par = sp.le.Leader.par in
    if par < 0 || par >= H.n h || not (H.are_neighbors h p par) then false
    else
      match child_index (read par) ~child:p with
      | Some j -> ((read par) : state).pos = j
      | None -> false
  end

let has_token h ~read p =
  let sp : state = read p in
  sp.pos = 0 && engaged_ok h ~read p

let release h ~read p =
  let sp : state = read p in
  if has_token h ~read p then
    { sp with pos = (if nchildren sp >= 1 then 1 else done_pos sp) }
  else sp

(* The child currently visited, when valid. *)
let visited_child h ~read p =
  let sp : state = read p in
  if sp.pos >= 1 && sp.pos <= nchildren sp then begin
    let c = sp.le.Leader.childs.(sp.pos - 1) in
    if c >= 0 && c < H.n h && H.are_neighbors h p c then Some c else None
  end
  else None

let child_done h ~read p =
  match visited_child h ~read p with
  | None -> false
  | Some c ->
    let sc : state = read c in
    sc.pos = done_pos sc

let internal_actions h : state Model.action list =
  let lift (a : Leader.t Model.action) =
    Model.lift_action ~get:(fun s -> s.le) ~set:(fun s le -> { s with le }) a
  in
  let rd (ctx : state Model.ctx) = ctx.Model.read in
  let self (ctx : state Model.ctx) = ctx.Model.self in
  let me ctx : state = ctx.Model.read ctx.Model.self in
  [ (* token arrival: clean and named by the parent *)
    { Model.label = "TC-take";
      guard =
        (fun ctx ->
          let sp = me ctx in
          (not (is_local_root h ~self:(self ctx) sp))
          && sp.pos = -1
          && engaged_ok h ~read:(rd ctx) (self ctx));
      apply = (fun ctx -> { (me ctx) with pos = 0 }) };
    (* feedback received: move the wave to the next child / to done *)
    { Model.label = "TC-advance";
      guard = (fun ctx -> child_done h ~read:(rd ctx) (self ctx));
      apply = (fun ctx -> { (me ctx) with pos = (me ctx).pos + 1 }) };
    (* the root regenerates the wave *)
    { Model.label = "TC-restart";
      guard =
        (fun ctx ->
          let sp = me ctx in
          is_local_root h ~self:(self ctx) sp
          && (sp.pos = -1 || sp.pos = done_pos sp));
      apply = (fun ctx -> { (me ctx) with pos = 0 }) };
    (* engaged without the parent's blessing: a surplus/bogus wave — die.
       This also cleans a finished subtree once the parent has advanced. *)
    { Model.label = "TC-abort";
      guard =
        (fun ctx ->
          let sp = me ctx in
          (not (is_local_root h ~self:(self ctx) sp))
          && sp.pos <> -1
          && not (engaged_ok h ~read:(rd ctx) (self ctx)));
      apply = (fun ctx -> { (me ctx) with pos = -1 }) };
    (* out-of-range positions (transient faults, child-list changes) *)
    { Model.label = "TC-clamp";
      guard = (fun ctx -> (me ctx).pos < -1 || (me ctx).pos > done_pos (me ctx));
      apply = (fun ctx -> { (me ctx) with pos = -1 }) };
  ]
  @ List.map lift (Leader.actions h)

let init h =
  let le_init = Leader.init h in
  fun p ->
    let le = le_init p in
    { le; pos = (if Leader.is_root h le ~self:p then 0 else -1) }

let random_init h rng p =
  let le = Leader.random_init h rng p in
  (* range [-2 .. k+2] exercises the clamp action too *)
  { le; pos = Random.State.int rng (Array.length le.Leader.childs + 5) - 2 }

(* Model-checking sub-domain: the legitimate spanning tree with every wave
   position.  The full leader domain (arbitrary lead/dist/par/childs) is
   astronomically larger and collapses to this one within O(n) rounds of
   self-disabling internal actions; the checker verifies that the declared
   sub-domain is closed under transitions and reports any escapee. *)
let domain h p =
  let le = Leader.init h p in
  List.init (Array.length le.Leader.childs + 3) (fun i -> { le; pos = i - 1 })

(* Structural transport: parent/children are vertex indices, [pos] in
   [1..k] is a 1-based index into the ordered child list, [lead] is a
   claimed leader identifier.  Whether leader election (minimum id!)
   actually commutes with [pi] is decided by the admission pass — this
   only needs to be the honest transport of the references. *)
let rename h ~pi p (s : state) =
  let le = s.le in
  let childs = Array.map (fun c -> pi.(c)) le.Leader.childs in
  Array.sort compare childs;
  let lead =
    match H.vertex_of_id h le.Leader.lead with
    | v -> H.id h pi.(v)
    | exception Not_found -> le.Leader.lead
  in
  let par =
    if le.Leader.par >= 0 && le.Leader.par < H.n h then pi.(le.Leader.par)
    else le.Leader.par
  in
  let le' = { le with Leader.lead; par; childs } in
  let pos =
    if s.pos >= 1 && s.pos <= Array.length le.Leader.childs then begin
      (* the visited child moves with pi; recover its 1-based rank in the
         re-sorted transported list *)
      let c' = pi.(le.Leader.childs.(s.pos - 1)) in
      let rank = ref s.pos in
      Array.iteri (fun i x -> if x = c' then rank := i + 1) childs;
      !rank
    end
    else s.pos
  in
  ignore p;
  { le = le'; pos }

let state_symmetries _h = []
