examples/quickstart.mli:
