(* Versioned, line-oriented serialization of the exact tier's packed
   guard/footprint tables ([Snapcc_mc.Tables.portable]).

   The format is texty on purpose — artifacts are meant to be diffed and
   inspected in CI — but entry rows are run-length encoded: the dominant
   value by far is -1 (no action enabled), so tables compress well. *)

module Tables = Snapcc_mc.Tables

let magic = "snapcc-tables v1"

let ints_line prefix xs =
  prefix
  ^ (Array.to_list xs |> List.map string_of_int |> String.concat " ")

(* run-length encoding of an entry row: "value*count" words *)
let rle_words (xs : int array) =
  let buf = Buffer.create 256 in
  let n = Array.length xs in
  let i = ref 0 in
  while !i < n do
    let v = xs.(!i) in
    let j = ref !i in
    while !j < n && xs.(!j) = v do
      incr j
    done;
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (string_of_int v);
    if !j - !i > 1 then begin
      Buffer.add_char buf '*';
      Buffer.add_string buf (string_of_int (!j - !i))
    end;
    i := !j
  done;
  Buffer.contents buf

let to_lines (p : Tables.portable) =
  let lines = ref [] in
  let push l = lines := l :: !lines in
  push magic;
  push ("algo " ^ p.Tables.p_algo);
  push ("topo " ^ p.Tables.p_topo);
  push (Printf.sprintf "n %d" p.Tables.p_n);
  push (Printf.sprintf "nlabels %d" (Array.length p.Tables.p_labels));
  Array.iter push p.Tables.p_labels;
  push (ints_line "dom " p.Tables.p_dom);
  Array.iteri
    (fun i proc ->
      match proc with
      | Error reason -> push (Printf.sprintf "proc %d skipped %s" i reason)
      | Ok (tb : Tables.proc_tbl) ->
        push (Printf.sprintf "proc %d table" i);
        push (ints_line "support " tb.Tables.support);
        push (ints_line "sizes " tb.Tables.sizes);
        push (ints_line "strides " tb.Tables.strides);
        push (Printf.sprintf "nmodes %d" (Array.length tb.Tables.entries));
        Array.iter
          (fun row ->
            push (Printf.sprintf "mode %d" (Array.length row));
            push (rle_words row))
          tb.Tables.entries)
    p.Tables.p_procs;
  push "end";
  List.rev !lines

exception Bad of string

let of_lines lines =
  let lines = ref lines in
  let next what =
    match !lines with
    | [] -> raise (Bad (Printf.sprintf "truncated artifact (expected %s)" what))
    | l :: rest ->
      lines := rest;
      l
  in
  let field key =
    let l = next key in
    let kl = String.length key in
    if String.length l > kl && String.sub l 0 (kl + 1) = key ^ " " then
      String.sub l (kl + 1) (String.length l - kl - 1)
    else raise (Bad (Printf.sprintf "expected %S line, got %S" key l))
  in
  let int_field key =
    match int_of_string_opt (field key) with
    | Some i -> i
    | None -> raise (Bad (Printf.sprintf "non-integer %s field" key))
  in
  let ints_field key =
    field key |> String.split_on_char ' '
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some i -> i
           | None -> raise (Bad (Printf.sprintf "non-integer in %s row" key)))
    |> Array.of_list
  in
  try
    (match next "magic" with
    | l when l = magic -> ()
    | l -> raise (Bad (Printf.sprintf "bad magic %S (expected %S)" l magic)));
    let p_algo = field "algo" in
    let p_topo = field "topo" in
    let p_n = int_field "n" in
    let nlabels = int_field "nlabels" in
    let p_labels = Array.init nlabels (fun _ -> next "label") in
    let p_dom = ints_field "dom" in
    if Array.length p_dom <> p_n then raise (Bad "dom row length <> n");
    let p_procs =
      Array.init p_n (fun i ->
          let l = field "proc" in
          match String.index_opt l ' ' with
          | None -> raise (Bad (Printf.sprintf "malformed proc line %S" l))
          | Some sp ->
            let idx = String.sub l 0 sp in
            if int_of_string_opt idx <> Some i then
              raise (Bad (Printf.sprintf "proc lines out of order at %d" i));
            let rest = String.sub l (sp + 1) (String.length l - sp - 1) in
            if rest = "table" then begin
              let support = ints_field "support" in
              let sizes = ints_field "sizes" in
              let strides = ints_field "strides" in
              let nmodes = int_field "nmodes" in
              let entries =
                Array.init nmodes (fun _ ->
                    let count = int_field "mode" in
                    let row = Array.make count 0 in
                    let words =
                      next "rle row" |> String.split_on_char ' '
                      |> List.filter (fun s -> s <> "")
                    in
                    let pos = ref 0 in
                    List.iter
                      (fun w ->
                        let v, c =
                          match String.index_opt w '*' with
                          | None -> (int_of_string_opt w, 1)
                          | Some st ->
                            ( int_of_string_opt (String.sub w 0 st),
                              Option.value ~default:0
                                (int_of_string_opt
                                   (String.sub w (st + 1)
                                      (String.length w - st - 1))) )
                        in
                        match v with
                        | None -> raise (Bad (Printf.sprintf "bad RLE word %S" w))
                        | Some v ->
                          if c <= 0 || !pos + c > count then
                            raise (Bad "RLE run overflows the declared length");
                          Array.fill row !pos c v;
                          pos := !pos + c)
                      words;
                    if !pos <> count then
                      raise (Bad "RLE rows shorter than the declared length");
                    row)
              in
              if
                Array.length support <> Array.length sizes
                || Array.length support <> Array.length strides
              then raise (Bad "support/sizes/strides length mismatch");
              Ok { Tables.support; sizes; strides; entries }
            end
            else
              match String.index_opt rest ' ' with
              | Some sp2 when String.sub rest 0 sp2 = "skipped" ->
                Error (String.sub rest (sp2 + 1) (String.length rest - sp2 - 1))
              | _ ->
                raise (Bad (Printf.sprintf "malformed proc payload %S" rest)))
    in
    (match next "end" with
    | "end" -> ()
    | l -> raise (Bad (Printf.sprintf "expected end, got %S" l)));
    Ok { Tables.p_algo; p_topo; p_n; p_labels; p_dom; p_procs }
  with Bad msg -> Error msg

let save file p =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        (to_lines p))

let load file =
  match open_in file with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        of_lines (go []))
