lib/mp/mp_engine.ml: Array List Printf Random Snapcc_hypergraph Snapcc_runtime
