(** Algorithm 2 (paper §5): snap-stabilizing 2-phase committee coordination
    with {e Professor Fairness} ([CC2 ∘ TC]), and its §5.4 modification
    [CC3 ∘ TC] satisfying {e Committee Fairness}.

    Both assume professors wait for meetings infinitely often, so
    [RequestIn] and the [idle] status are implicit (§5): a process is always
    [looking] when not engaged.  CC3 differs from CC2 in a single action:
    instead of pointing at a smallest incident committee ([MinEdges]), the
    token holder selects its incident committees sequentially (round-robin
    cursor advanced on each [Step4]).

    Deliberate deviation (documented in DESIGN.md): the paper's
    [TPointingNodes] macro literally collects {e all} members of
    token-pointing committees, which can leave [Step12]'s statement
    undefined; we take the {e witness} set — the processes [q] with
    [Pq = ε ∧ Tq ∧ Sq = looking] — which coincides with the literal reading
    in every single-token configuration. *)

module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
open Cc_common

type cc = {
  s : status;  (** [Sp] ∈ [{looking, waiting, done}] *)
  ptr : int option;  (** [Pp] *)
  tf : bool;  (** [Tp] *)
  lk : bool;  (** [Lp] *)
  cur : int;  (** CC3's round-robin cursor over [Ep] (unused by CC2) *)
  disc : int;  (** essential discussions performed *)
}

module type VARIANT = sig
  val committee_fair : bool
  (** [false] = CC2 (MinEdges target), [true] = CC3 (sequential target). *)

  val non_token_convening : bool
  (** [true] in the paper's algorithms: committees without the token may
      convene through [Step13]/[Step14].  [false] yields the circulating-
      token baseline of Bagrodia [3] discussed in §6 (only the token holder
      initiates meetings), used by the related-work benches. *)

  val release_when_useless : bool
  (** [false] in the paper's CC2/CC3: the token holder {e retains} the token
      until it participates in a meeting — the very mechanism that buys
      fairness (§3.2).  [true] grafts CC1's release policy ([Token2]) onto
      the algorithm: the holder gives the token up whenever it cannot
      immediately be helped.  The ablation benches show this single switch
      forfeits Professor Fairness. *)
end

module Cc2_variant : VARIANT = struct
  let committee_fair = false
  let non_token_convening = true
  let release_when_useless = false
end

module Cc3_variant : VARIANT = struct
  let committee_fair = true
  let non_token_convening = true
  let release_when_useless = false
end

module Token_only_variant : VARIANT = struct
  let committee_fair = false
  let non_token_convening = false
  let release_when_useless = false
end

module Eager_release_variant : VARIANT = struct
  let committee_fair = false
  let non_token_convening = true
  let release_when_useless = true
end

module Make (T : Snapcc_token.Layer.S) (V : VARIANT) (P : PARAMS) :
sig
  include Model.ALGO with type state = cc * T.state

  val cc : state -> cc
  val correct : H.t -> read:(int -> state) -> int -> bool
  val locked : H.t -> read:(int -> state) -> int -> bool
end = struct
  type state = cc * T.state

  let name =
    Printf.sprintf "%s∘%s" (if V.committee_fair then "CC3" else "CC2") T.name

  let cc (c, _) = c

  let pp_state ppf ((c, t) : state) =
    Format.fprintf ppf "S=%a P=%s T=%b L=%b cur=%d disc=%d | %a" pp_status c.s
      (match c.ptr with None -> "⊥" | Some e -> "e" ^ string_of_int e)
      c.tf c.lk c.cur c.disc T.pp_state t

  let equal_state ((c1, t1) : state) (c2, t2) = c1 = c2 && T.equal_state t1 t2

  let token h read p = T.has_token h ~read:(fun q -> snd (read q)) p
  let release h read p = T.release h ~read:(fun q -> snd (read q)) p
  let c read p = fst (read p)

  (* ---- macros of Algorithm 2 ---- *)

  let free_edges h read p =
    Array.to_list (H.incident h p)
    |> List.filter (fun e ->
           Array.for_all
             (fun q ->
               let cq = c read q in
               cq.s = Looking && (not cq.lk) && not cq.tf)
             (H.edge_members h e))

  let free_nodes h read p =
    free_edges h read p
    |> List.concat_map (members_list h)
    |> List.sort_uniq compare

  (* token-pointing witnesses among the members of committees incident to
     [p]: processes visibly claiming a committee with the token *)
  let tpointing_witnesses h read p =
    Array.to_list (H.incident h p)
    |> List.concat_map (fun e ->
           members_list h e
           |> List.filter (fun q ->
                  let cq = c read q in
                  cq.ptr = Some e && cq.tf && cq.s = Looking))
    |> List.sort_uniq compare

  let tpointing_edges h read p =
    tpointing_witnesses h read p
    |> List.filter_map (fun q -> (c read q).ptr)
    |> List.sort_uniq compare

  let min_edges h p = Array.to_list (H.min_edges h p)

  (* CC3: the committee currently selected by the round-robin cursor *)
  let sequential_edge h read p =
    let incident = H.incident h p in
    incident.(((c read p).cur mod Array.length incident + Array.length incident)
              mod Array.length incident)

  (* ---- predicates of Algorithm 2 ---- *)

  let locked_pred h read p = tpointing_edges h read p <> []

  let ready h read p =
    Array.exists
      (fun e ->
        Array.for_all
          (fun q ->
            let cq = c read q in
            cq.ptr = Some e && (cq.s = Looking || cq.s = Waiting))
          (H.edge_members h e))
      (H.incident h p)

  let meeting h read p =
    Array.exists
      (fun e ->
        Array.for_all
          (fun q ->
            let cq = c read q in
            cq.ptr = Some e && (cq.s = Waiting || cq.s = Done))
          (H.edge_members h e))
      (H.incident h p)

  let leave_meeting h read p =
    Array.exists
      (fun e ->
        (c read p).ptr = Some e
        && (c read p).s = Done
        && Array.for_all
             (fun q ->
               let cq = c read q in
               cq.ptr <> Some e || cq.s <> Waiting)
             (H.edge_members h e))
      (H.incident h p)

  let local_max h read p = max_by_id h (free_nodes h read p) = Some p

  let max_to_free_edge h read p =
    V.non_token_convening
    && (not (token h read p))
    && (not (locked_pred h read p))
    && free_edges h read p <> []
    && local_max h read p
    && (not (ready h read p))
    && (match (c read p).ptr with
        | None -> true
        | Some e -> not (List.mem e (free_edges h read p)))

  let join_local_max h read p =
    V.non_token_convening
    && (not (token h read p))
    && (not (locked_pred h read p))
    && free_edges h read p <> []
    && (not (local_max h read p))
    && (not (ready h read p))
    &&
    match max_by_id h (free_nodes h read p) with
    | None -> false
    | Some leader ->
      List.exists
        (fun e -> (c read leader).ptr = Some e && (c read p).ptr <> Some e)
        (free_edges h read p)

  let token_holder_to_edge h read p =
    token h read p
    && (c read p).s = Looking
    && (not (ready h read p))
    &&
    if V.committee_fair then (c read p).ptr <> Some (sequential_edge h read p)
    else
      match (c read p).ptr with
      | None -> true
      | Some e -> not (List.mem e (min_edges h p))

  let join_token_holder h read p =
    (not (token h read p))
    && (c read p).s = Looking
    && (not (ready h read p))
    && locked_pred h read p
    && (match (c read p).ptr with
        | None -> true
        | Some e -> not (List.mem e (tpointing_edges h read p)))

  (* CC1's Useless predicate transplanted for the eager-release ablation:
     no incident committee has all its members looking. *)
  let useless h read p =
    token h read p
    && (c read p).s = Looking
    && not
         (Array.exists
            (fun e ->
              Array.for_all (fun q -> (c read q).s = Looking) (H.edge_members h e))
            (H.incident h p))

  let correct h ~read p =
    let cp = c read p in
    (cp.s <> Waiting || ready h read p || meeting h read p)
    && (cp.s <> Done || meeting h read p || leave_meeting h read p)

  let locked h ~read p = locked_pred h read p

  (* ---- actions, in the paper's code order (last = highest priority) ---- *)

  let cc_actions h : state Model.action list =
    let rd (ctx : state Model.ctx) = ctx.Model.read in
    let self (ctx : state Model.ctx) = ctx.Model.self in
    let me ctx = c (rd ctx) (self ctx) in
    let tc ctx = snd (ctx.Model.read ctx.Model.self) in
    [ { Model.label = "Lock";
        guard = (fun ctx -> locked_pred h (rd ctx) (self ctx) <> (me ctx).lk);
        apply =
          (fun ctx -> ({ (me ctx) with lk = locked_pred h (rd ctx) (self ctx) }, tc ctx)) };
      { Model.label = "Step11";
        guard = (fun ctx -> token_holder_to_edge h (rd ctx) (self ctx));
        apply =
          (fun ctx ->
            let e =
              if V.committee_fair then sequential_edge h (rd ctx) (self ctx)
              else P.choose_edge h (min_edges h (self ctx))
            in
            ({ (me ctx) with ptr = Some e }, tc ctx)) };
      { Model.label = "Step12";
        guard = (fun ctx -> join_token_holder h (rd ctx) (self ctx));
        apply =
          (fun ctx ->
            let read = rd ctx and p = self ctx in
            match max_by_id h (tpointing_witnesses h read p) with
            | Some w -> ({ (me ctx) with ptr = (c read w).ptr }, tc ctx)
            | None -> (me ctx, tc ctx)) };
      { Model.label = "Step13";
        guard = (fun ctx -> max_to_free_edge h (rd ctx) (self ctx));
        apply =
          (fun ctx ->
            let e = P.choose_edge h (free_edges h (rd ctx) (self ctx)) in
            ({ (me ctx) with ptr = Some e }, tc ctx)) };
      { Model.label = "Step14";
        guard = (fun ctx -> join_local_max h (rd ctx) (self ctx));
        apply =
          (fun ctx ->
            let read = rd ctx and p = self ctx in
            match max_by_id h (free_nodes h read p) with
            | Some leader -> ({ (me ctx) with ptr = (c read leader).ptr }, tc ctx)
            | None -> (me ctx, tc ctx)) };
      { Model.label = "Token2";
        guard =
          (fun ctx ->
            V.release_when_useless && useless h (rd ctx) (self ctx));
        apply =
          (fun ctx -> ({ (me ctx) with tf = false }, release h (rd ctx) (self ctx))) };
      { Model.label = "Token";
        guard = (fun ctx -> token h (rd ctx) (self ctx) <> (me ctx).tf);
        apply = (fun ctx -> ({ (me ctx) with tf = token h (rd ctx) (self ctx) }, tc ctx)) };
      { Model.label = "Step2";
        guard = (fun ctx -> ready h (rd ctx) (self ctx) && (me ctx).s = Looking);
        apply = (fun ctx -> ({ (me ctx) with s = Waiting }, tc ctx)) };
      { Model.label = "Step3";
        guard = (fun ctx -> meeting h (rd ctx) (self ctx) && (me ctx).s = Waiting);
        apply =
          (fun ctx -> ({ (me ctx) with s = Done; disc = (me ctx).disc + 1 }, tc ctx)) };
      { Model.label = "Step4";
        guard =
          (fun ctx ->
            leave_meeting h (rd ctx) (self ctx)
            && ctx.Model.inputs.Model.request_out (self ctx));
        apply =
          (fun ctx ->
            let tc' =
              if token h (rd ctx) (self ctx) then release h (rd ctx) (self ctx)
              else tc ctx
            in
            let cur = if V.committee_fair then (me ctx).cur + 1 else (me ctx).cur in
            ({ (me ctx) with s = Looking; ptr = None; tf = false; cur }, tc')) };
    ]

  let stab_actions h : state Model.action list =
    let rd (ctx : state Model.ctx) = ctx.Model.read in
    let self (ctx : state Model.ctx) = ctx.Model.self in
    let me ctx = c (rd ctx) (self ctx) in
    let tc ctx = snd (ctx.Model.read ctx.Model.self) in
    [ { Model.label = "Stab";
        guard = (fun ctx -> not (correct h ~read:(rd ctx) (self ctx)));
        apply = (fun ctx -> ({ (me ctx) with s = Looking; ptr = None }, tc ctx)) };
    ]

  (* Fair composition by priorities: token-layer internals above the routine
     committee actions, Stab on top (Corollary 5: Correct within a round). *)
  let actions h =
    let lift = Model.lift_action ~get:snd ~set:(fun (cc, _) tc -> (cc, tc)) in
    cc_actions h @ List.map lift (T.internal_actions h) @ stab_actions h

  let init h =
    let tc_init = T.init h in
    fun p ->
      ({ s = Looking; ptr = None; tf = false; lk = false; cur = 0; disc = 0 },
       tc_init p)

  let random_init h rng p =
    let statuses = [| Looking; Waiting; Done |] in
    let incident = H.incident h p in
    let ptr =
      if Random.State.bool rng then None
      else Some incident.(Random.State.int rng (Array.length incident))
    in
    ( { s = statuses.(Random.State.int rng 3);
        ptr;
        tf = Random.State.bool rng;
        lk = Random.State.bool rng;
        cur = Random.State.int rng (max 1 (Array.length incident));
        disc = 0 },
      T.random_init h rng p )

  let observe h states p =
    let read = Array.get states in
    let cp = c read p in
    Obs.make ~pointer:cp.ptr ~token_flag:cp.tf ~locked:cp.lk
      ~has_token:(token h read p) ~discussions:cp.disc
      (to_obs_status cp.s)
end

(** CC2 with the default edge choice. *)
module Cc2_std (T : Snapcc_token.Layer.S) = Make (T) (Cc2_variant) (Default_params)

(** CC3 with the default edge choice. *)
module Cc3_std (T : Snapcc_token.Layer.S) = Make (T) (Cc3_variant) (Default_params)

(** The §6 circulating-token baseline (only token holders convene). *)
module Token_only_std (T : Snapcc_token.Layer.S) =
  Make (T) (Token_only_variant) (Default_params)

(** Ablation: CC2 with CC1's eager token release — fairness lost (§3.2). *)
module Eager_release_std (T : Snapcc_token.Layer.S) =
  Make (T) (Eager_release_variant) (Default_params)
