lib/runtime/model.mli: Format Obs Random Snapcc_hypergraph
