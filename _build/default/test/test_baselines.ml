(* The §6 baselines: safe from clean starts, live under ordered
   acquisition, and measurably weaker than CC1/CC2 where the paper says so. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Obs = Snapcc_runtime.Obs
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics
module X = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver

let check = Alcotest.(check bool)

let assert_clean name (r : Driver.result) =
  List.iter
    (fun v ->
      Alcotest.failf "%s: %s" name
        (Format.asprintf "%a" Snapcc_analysis.Spec.pp_violation v))
    r.Driver.violations

let topologies () =
  [ ("fig1", Families.fig1 ());
    ("fig4", Families.fig4 ());
    ("ring6", Families.pair_ring 6);
  ]

let test_dining_safety_liveness () =
  List.iter
    (fun (name, h) ->
      List.iter
        (fun daemon ->
          let r =
            X.Run_dining.run ~seed:3 ~daemon
              ~workload:(Workload.always_requesting h) ~steps:6_000 h
          in
          assert_clean ("dining " ^ name) r;
          check
            (Printf.sprintf "dining/%s/%s: meetings keep convening" name
               (Daemon.name daemon))
            true
            (r.Driver.summary.Metrics.convenes > 10))
        [ Daemon.synchronous; Daemon.central (); Daemon.random_subset () ])
    (topologies ())

let test_central_safety_liveness () =
  List.iter
    (fun (name, h) ->
      let r =
        X.Run_central.run ~seed:3 ~daemon:(Daemon.random_subset ())
          ~workload:(Workload.always_requesting h) ~steps:6_000 h
      in
      assert_clean ("central " ^ name) r;
      check (Printf.sprintf "central/%s: meetings keep convening" name) true
        (r.Driver.summary.Metrics.convenes > 10))
    (topologies ())

let test_dining_hosts () =
  let h = Families.fig4 () in
  (* host of a committee = min-identifier member *)
  Alcotest.(check int) "host of {1,2,5,8}" 0 (Snapcc_baselines.Dining.host h 0);
  Alcotest.(check int) "host of {8,9}" 7 (Snapcc_baselines.Dining.host h 3)

let test_dining_no_deadlock_long () =
  (* ordered acquisition must avoid deadlock even on the committee-dense
     3-uniform ring *)
  let h = Families.k_uniform_ring ~n:9 ~k:3 in
  let r =
    X.Run_dining.run ~seed:4 ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:20_000 h
  in
  assert_clean "dining triring" r;
  check "sustained throughput" true (r.Driver.summary.Metrics.convenes > 100)

let test_cc1_no_token_safety () =
  (* the ablation keeps all safety properties; only Progress is at risk *)
  let h = Families.fig1 () in
  let r =
    X.Run_cc1_no_token.run ~seed:3 ~init:`Random ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:5_000 h
  in
  assert_clean "cc1-no-token" r

let test_central_not_local () =
  (* the coordinator legitimately reads everyone: the locality check must
     catch it (by contrast CC1/CC2 pass it; see test_cc1/test_cc23) *)
  let h = Families.path 4 in
  match
    X.Run_central.run ~check_locality:true ~seed:1
      ~daemon:(Daemon.random_subset ()) ~workload:(Workload.always_requesting h)
      ~steps:500 h
  with
  | exception Failure msg ->
    check "locality violation reported" true
      (String.length msg >= 8 && String.sub msg 0 8 = "locality")
  | _r -> Alcotest.fail "central baseline unexpectedly local"

let suite =
  [ ( "baselines",
      [ Alcotest.test_case "dining: safety and liveness" `Slow
          test_dining_safety_liveness;
        Alcotest.test_case "central: safety and liveness" `Quick
          test_central_safety_liveness;
        Alcotest.test_case "dining hosts" `Quick test_dining_hosts;
        Alcotest.test_case "dining: no deadlock on dense ring" `Slow
          test_dining_no_deadlock_long;
        Alcotest.test_case "cc1 without token stays safe" `Quick
          test_cc1_no_token_safety;
        Alcotest.test_case "central coordinator is not local" `Quick
          test_central_not_local;
      ] );
  ]
