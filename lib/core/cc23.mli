(** Algorithm 2 (paper §5): snap-stabilizing 2-phase committee coordination
    with {e Professor Fairness} ([CC2 ∘ TC]), and its §5.4 modification
    [CC3 ∘ TC] satisfying {e Committee Fairness}, plus the related-work
    and ablation variants sharing the same code skeleton.

    This interface is the public surface the static analyzer
    ([lib/statics]), the experiments and the tests rely on. *)

(** The committee-coordination variables of one process. *)
type cc = {
  s : Cc_common.status;  (** [Sp] ∈ [{looking, waiting, done}] *)
  ptr : int option;  (** [Pp] *)
  tf : bool;  (** [Tp] *)
  lk : bool;  (** [Lp] *)
  cur : int;  (** CC3's round-robin cursor over [Ep] (unused by CC2) *)
  disc : int;  (** essential discussions performed *)
}

(** The switches separating CC2, CC3 and the §6/§3.2 variants. *)
module type VARIANT = sig
  val committee_fair : bool
  (** [false] = CC2 (MinEdges target), [true] = CC3 (sequential target). *)

  val non_token_convening : bool
  (** [true] in the paper's algorithms: committees without the token may
      convene through [Step13]/[Step14].  [false] yields the circulating-
      token baseline of Bagrodia [3] discussed in §6. *)

  val release_when_useless : bool
  (** [false] in the paper's CC2/CC3; [true] grafts CC1's release policy
      onto the algorithm (the fairness-forfeiting ablation). *)
end

module Cc2_variant : VARIANT
module Cc3_variant : VARIANT
module Token_only_variant : VARIANT
module Eager_release_variant : VARIANT

module Make (T : Snapcc_token.Layer.S) (V : VARIANT) (P : Cc_common.PARAMS) : sig
  include Snapcc_runtime.Model.ALGO with type state = cc * T.state

  val cc : state -> cc
  (** Project the committee layer out of the composed state. *)

  val correct :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
  (** The [Correct(p)] predicate of the closure lemmas. *)

  val locked :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
  (** The [Locked(p)] predicate (a token-pointing committee is visible). *)
end

(** CC2 with the default edge choice. *)
module Cc2_std (T : Snapcc_token.Layer.S) : sig
  include Snapcc_runtime.Model.ALGO with type state = cc * T.state

  val cc : state -> cc

  val correct :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool

  val locked :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
end

(** CC3 with the default edge choice. *)
module Cc3_std (T : Snapcc_token.Layer.S) : sig
  include Snapcc_runtime.Model.ALGO with type state = cc * T.state

  val cc : state -> cc

  val correct :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool

  val locked :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
end

(** The §6 circulating-token baseline (only token holders convene). *)
module Token_only_std (T : Snapcc_token.Layer.S) : sig
  include Snapcc_runtime.Model.ALGO with type state = cc * T.state

  val cc : state -> cc

  val correct :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool

  val locked :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
end

(** Ablation: CC2 with CC1's eager token release — fairness lost (§3.2). *)
module Eager_release_std (T : Snapcc_token.Layer.S) : sig
  include Snapcc_runtime.Model.ALGO with type state = cc * T.state

  val cc : state -> cc

  val correct :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool

  val locked :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
end
