lib/token/token_null.mli: Layer
