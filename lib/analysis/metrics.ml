module H = Snapcc_hypergraph.Hypergraph
module Obs = Snapcc_runtime.Obs
module Tele = Snapcc_telemetry

type summary = {
  steps : int;
  rounds : int;
  convenes : int;
  convene_per_edge : int array;
  participation : int array;
  mean_concurrency : float;
  max_concurrency : int;
  completed_waits_steps : int list;
  completed_waits_rounds : int list;
  open_waits_steps : int list;
  max_wait_steps : int;
  max_wait_rounds : int;
  starved : int list;
}

(* A waiting span opens when a professor enters the waiting state (status
   looking/waiting) while not participating in a meeting, and closes when a
   meeting it belongs to convenes. *)
type wait = { since_step : int; since_round : int }

type t = {
  h : H.t;
  mutable steps : int;
  mutable convenes : int;
  convene_per_edge : int array;
  participation : int array;
  mutable concurrency_sum : int;
  mutable max_concurrency : int;
  waits : wait option array;
  mutable rev_completed_steps : int list;
  mutable rev_completed_rounds : int list;
  telemetry : Tele.Hub.t option;
}

let emit t ev =
  match t.telemetry with Some hub -> Tele.Hub.emit hub ev | None -> ()

let create ?telemetry h ~initial =
  let n = H.n h in
  let waits = Array.make n None in
  Array.iteri
    (fun p (o : Obs.t) ->
      if Obs.is_waiting o then waits.(p) <- Some { since_step = 0; since_round = 0 })
    initial;
  {
    h;
    steps = 0;
    convenes = 0;
    convene_per_edge = Array.make (H.m h) 0;
    participation = Array.make n 0;
    concurrency_sum = 0;
    max_concurrency = 0;
    waits;
    rev_completed_steps = [];
    rev_completed_rounds = [];
    telemetry;
  }

let on_step t ~step ~round ~before ~after =
  t.steps <- t.steps + 1;
  let meetings = Obs.meetings t.h after in
  let k = List.length meetings in
  t.concurrency_sum <- t.concurrency_sum + k;
  if k > t.max_concurrency then t.max_concurrency <- k;
  (* terminated committees (met before, not after) — telemetry only *)
  (match t.telemetry with
   | None -> ()
   | Some _ ->
     List.iter
       (fun e ->
         if not (List.mem e meetings) then
           emit t (Tele.Event.Terminate { step; round; eid = e }))
       (Obs.meetings t.h before));
  (* convened committees close the waiting spans of their members *)
  List.iter
    (fun e ->
      if not (Obs.meets t.h before e) then begin
        t.convenes <- t.convenes + 1;
        t.convene_per_edge.(e) <- t.convene_per_edge.(e) + 1;
        emit t (Tele.Event.Convene { step; round; eid = e });
        Array.iter
          (fun q ->
            t.participation.(q) <- t.participation.(q) + 1;
            match t.waits.(q) with
            | None -> ()
            | Some w ->
              let waited_steps = step - w.since_step in
              let waited_rounds = round - w.since_round in
              t.rev_completed_steps <- waited_steps :: t.rev_completed_steps;
              t.rev_completed_rounds <- waited_rounds :: t.rev_completed_rounds;
              emit t
                (Tele.Event.Wait_close
                   { step; round; p = q; waited_steps; waited_rounds });
              (match t.telemetry with
               | Some hub ->
                 Tele.Registry.observe
                   (Tele.Registry.histogram (Tele.Hub.registry hub) "wait_steps")
                   waited_steps
               | None -> ());
              t.waits.(q) <- None)
          (H.edge_members t.h e)
      end)
    meetings;
  (* participants of ongoing meetings are not waiting, even when their
     status reads [waiting] (meetings inherited from an arbitrary initial
     configuration) *)
  List.iter
    (fun e -> Array.iter (fun q -> t.waits.(q) <- None) (H.edge_members t.h e))
    meetings;
  (* spans open when a professor (re)enters the waiting state *)
  Array.iteri
    (fun p (o : Obs.t) ->
      match t.waits.(p) with
      | Some _ ->
        (* a span survives only while the professor keeps waiting and is
           not in a meeting *)
        if not (Obs.is_waiting o) then t.waits.(p) <- None
      | None ->
        if Obs.is_waiting o && not (Obs.is_waiting before.(p)) then begin
          t.waits.(p) <- Some { since_step = step; since_round = round };
          emit t (Tele.Event.Wait_open { step; round; p })
        end)
    after

let mean = function
  | [] -> 0.
  | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let maximum = function [] -> 0 | l -> List.fold_left max min_int l

let percentile q = function
  | [] -> 0
  | l ->
    let sorted = List.sort compare l in
    let n = List.length sorted in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let finish t ~step ~round =
  let open_steps = ref [] and open_rounds = ref [] and starved = ref [] in
  let longest = ref 0 in
  Array.iteri
    (fun p w ->
      match w with
      | None -> ()
      | Some w ->
        let d = step - w.since_step in
        open_steps := d :: !open_steps;
        open_rounds := (round - w.since_round) :: !open_rounds;
        if d > !longest then begin
          longest := d;
          starved := [ p ]
        end
        else if d = !longest && d > 0 then starved := p :: !starved)
    t.waits;
  let completed_steps = List.rev t.rev_completed_steps in
  let completed_rounds = List.rev t.rev_completed_rounds in
  {
    steps = t.steps;
    rounds = round;
    convenes = t.convenes;
    convene_per_edge = Array.copy t.convene_per_edge;
    participation = Array.copy t.participation;
    mean_concurrency =
      (if t.steps = 0 then 0.
       else float_of_int t.concurrency_sum /. float_of_int t.steps);
    max_concurrency = t.max_concurrency;
    completed_waits_steps = completed_steps;
    completed_waits_rounds = completed_rounds;
    open_waits_steps = !open_steps;
    max_wait_steps = max (maximum completed_steps) (maximum !open_steps);
    max_wait_rounds = max (maximum completed_rounds) (maximum !open_rounds);
    starved = List.sort compare !starved;
  }

let pp_summary ppf (s : summary) =
  Format.fprintf ppf
    "@[<v>steps=%d rounds=%d convenes=%d@ concurrency: mean=%.2f max=%d@ waits \
     (steps): served=%d mean=%.1f max=%d@ waits (rounds): max=%d@ open waits=%d \
     starved=[%s]@]"
    s.steps s.rounds s.convenes s.mean_concurrency s.max_concurrency
    (List.length s.completed_waits_steps)
    (mean s.completed_waits_steps)
    s.max_wait_steps s.max_wait_rounds
    (List.length s.open_waits_steps)
    (String.concat "," (List.map string_of_int s.starved))
