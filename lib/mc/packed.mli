(** Packed-configuration engine front end.

    [Make(Sys).build] enumerates the exact guard/footprint tables of a
    system ({!Tables}) and {!Make.hooks} repackages them as the
    engine-agnostic {!Snapcc_runtime.Model.packed} closures consumed by the
    simulation engine ([Snapcc_runtime.Engine.Make.create ?packed]) and the
    message-passing engine ([Snapcc_mp.Mp_engine.Make.create ?packed]).

    The fast path is strictly an accelerator: engines keep the true typed
    states authoritative and only route {e guard scans} through the packed
    entries, so packed runs are trace-identical to closure runs (same
    enabled sets, same daemon draws — the parity test suite asserts it).
    Processes whose tables were skipped or streamed ({!Tables.Make.status})
    fall back to the guard closures cell by cell. *)

module Make (Sys : System.S) : sig
  module Tb : module type of Tables.Make (Sys)

  type t

  val build :
    ?verify:bool ->
    ?cap:int ->
    ?store_cap:int ->
    Snapcc_hypergraph.Hypergraph.t ->
    t
  (** See {!Tables.Make.build}.  A tighter [cap] turns expensive processes
      into immediate [`Skipped] statuses (closure fallback) instead of long
      enumerations — the knob callers use to bound startup cost. *)

  val tables : t -> Tb.t
  val built : t -> bool
  (** Every process has a stored table (the whole run is table-driven). *)

  val coverage : t -> float
  (** Fraction of processes with a stored table. *)

  val hooks : t -> Sys.state Snapcc_runtime.Model.packed
end
