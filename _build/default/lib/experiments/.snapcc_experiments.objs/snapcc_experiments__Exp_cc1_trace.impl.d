lib/experiments/exp_cc1_trace.ml: Algos Driver Format List Printf Snapcc_analysis Snapcc_hypergraph Snapcc_runtime Snapcc_workload Table
