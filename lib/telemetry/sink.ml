type ring_state = {
  capacity : int;
  mutable data : Event.stamped array;  (* grows up to [capacity] *)
  mutable len : int;  (* stored events *)
  mutable head : int;  (* insertion point once saturated *)
}

type kind =
  | Jsonl of (string -> unit)
  | Ring of ring_state
  | Catapult of { write : string -> unit; mutable first : bool }
  | Custom of { emit : Event.stamped -> unit; close : unit -> unit }

type t = { kind : kind; mutable closed : bool }

let jsonl write = { kind = Jsonl write; closed = false }

let custom ~emit ~close = { kind = Custom { emit; close }; closed = false }

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  { kind =
      Ring { capacity; data = [||]; len = 0; head = 0 };
    closed = false }

let catapult write =
  write "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  { kind = Catapult { write; first = true }; closed = false }

let ring_events t =
  match t.kind with
  | Ring r ->
    List.init r.len (fun i ->
        (* oldest first: once saturated, [head] is the oldest slot *)
        if r.len < r.capacity then r.data.(i)
        else r.data.((r.head + i) mod r.capacity))
  | Jsonl _ | Catapult _ | Custom _ -> []

let ring_push r (s : Event.stamped) =
  if r.len < r.capacity then begin
    if r.len = Array.length r.data then begin
      let cap = min r.capacity (max 16 (2 * Array.length r.data)) in
      let bigger = Array.make cap s in
      Array.blit r.data 0 bigger 0 r.len;
      r.data <- bigger
    end;
    r.data.(r.len) <- s;
    r.len <- r.len + 1;
    if r.len = r.capacity then r.head <- 0
  end
  else begin
    r.data.(r.head) <- s;
    r.head <- (r.head + 1) mod r.capacity
  end

(* JSONL bodies are deterministic: seq + the logical event fields, no
   timestamp (see the determinism test). *)
let jsonl_line (s : Event.stamped) =
  match Event.to_json s.ev with
  | Json.Obj fields ->
    Json.to_string (Json.Obj (("seq", Json.Int s.seq) :: fields)) ^ "\n"
  | other -> Json.to_string other ^ "\n"

(* One Chrome trace event, rendered immediately. *)
let catapult_json (s : Event.stamped) =
  let base ?(args = []) ~name ~ph ~tid extra =
    Json.Obj
      ([ ("name", Json.String name);
         ("ph", Json.String ph);
         ("ts", Json.Int s.t_us);
         ("pid", Json.Int 0);
         ("tid", Json.Int tid) ]
      @ extra
      @ (if args = [] then [] else [ ("args", Json.Obj args) ]))
  in
  let instant ?(tid = 0) ?(args = []) name =
    base ~name ~ph:"i" ~tid ~args [ ("s", Json.String "t") ]
  in
  match s.ev with
  | Event.Convene { eid; step; _ } ->
    Some
      (base
         ~name:(Printf.sprintf "committee e%d" eid)
         ~ph:"B" ~tid:(1000 + eid)
         ~args:[ ("step", Json.Int step) ]
         [])
  | Event.Terminate { eid; step; _ } ->
    Some
      (base
         ~name:(Printf.sprintf "committee e%d" eid)
         ~ph:"E" ~tid:(1000 + eid)
         ~args:[ ("step", Json.Int step) ]
         [])
  | Event.Step { meetings; step; _ } ->
    Some
      (base ~name:"concurrency" ~ph:"C" ~tid:0
         ~args:
           [ ("meetings", Json.Int (List.length meetings));
             ("step", Json.Int step) ]
         [])
  | Event.Action { p; label; step } ->
    Some (instant ~tid:p ~args:[ ("step", Json.Int step) ] label)
  | Event.Fault { victims; step } ->
    Some
      (base ~name:"fault" ~ph:"i" ~tid:0
         ~args:
           [ ("victims", Json.List (List.map (fun v -> Json.Int v) victims));
             ("step", Json.Int step) ]
         [ ("s", Json.String "g") ])
  | Event.Verdict { rule; step; _ } ->
    Some
      (base ~name:("violation: " ^ rule) ~ph:"i" ~tid:0
         ~args:[ ("step", Json.Int step) ]
         [ ("s", Json.String "g") ])
  | Event.Token_handoff { p; step } ->
    Some (instant ~tid:p ~args:[ ("step", Json.Int step) ] "token")
  | Event.Recover { eid; step } ->
    Some
      (base ~name:"recovered" ~ph:"i" ~tid:0
         ~args:[ ("eid", Json.Int eid); ("step", Json.Int step) ]
         [ ("s", Json.String "g") ])
  | Event.Net_delivered { src; dst; bytes; latency_us; step } ->
    Some
      (instant ~tid:dst
         ~args:
           [ ("src", Json.Int src);
             ("bytes", Json.Int bytes);
             ("latency_us", Json.Int latency_us);
             ("step", Json.Int step) ]
         "net recv")
  | Event.Net_dropped { src; dst; reason; step } ->
    Some
      (base ~name:("net drop: " ^ reason) ~ph:"i" ~tid:dst
         ~args:[ ("src", Json.Int src); ("step", Json.Int step) ]
         [ ("s", Json.String "t") ])
  | Event.Run_start _ | Event.Run_end _ | Event.Wait_open _
  | Event.Wait_close _ | Event.Mc_frontier _ | Event.Mp_activated _
  | Event.Mp_delivered _ | Event.Net_sent _ | Event.Clock _
  | Event.Smc_trial _ ->
    None

let emit t s =
  if not t.closed then
    match t.kind with
    | Jsonl write -> write (jsonl_line s)
    | Ring r -> ring_push r s
    | Catapult c ->
      (match catapult_json s with
       | None -> ()
       | Some j ->
         if c.first then c.first <- false else c.write ",";
         c.write (Json.to_string j))
    | Custom c -> c.emit s

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.kind with
    | Catapult c -> c.write "]}"
    | Custom c -> c.close ()
    | Jsonl _ | Ring _ -> ()
  end
