(** Vector clocks for causal tracing.

    One component per professor.  The stamping discipline (shared by the
    in-process [Mp_engine], the networked orchestrator's mirror, and the
    forked node processes) is the classical one:

    - process [p]'s first event (its initial configuration) sets component
      [p] to 1;
    - a local activation that fires an action ticks component [p];
    - accepting a snapshot delivery merges the clock carried on the frame,
      then ticks component [p];
    - a corruption fault ticks each victim's own component.

    Clocks travel on the wire as a compact trailer ({!encode_wire}): full
    LEB128 vectors on keyframes, sparse positive deltas against the last
    acknowledged clock otherwise — mirroring the XOR snapshot deltas of
    [lib/net].  Comparison ({!compare_clocks}) decides happens-before:
    [Before a b] iff the event stamped [a] causally precedes the event
    stamped [b]. *)

type t = int array

val create : int -> t
(** [create n] is the zero clock over [n] processes. *)

val copy : t -> t
val tick : t -> int -> unit
val merge_into : into:t -> t -> unit
(** Pointwise max, in place.  Raises [Invalid_argument] on length mismatch. *)

val merge : t -> t -> t

val leq : t -> t -> bool
(** Pointwise [<=]; [false] on length mismatch. *)

type order =
  | Equal
  | Before
  | After
  | Concurrent

val compare_clocks : t -> t -> order
val to_list : t -> int list
val of_list : int list -> t
val to_string : t -> string

(** {2 Wire codec} *)

val encode_full : t -> string
val decode_full : string -> t option
(** Strict: trailing bytes, truncation and oversized counts are [None]. *)

val encode_delta : base:t -> t -> string option
(** [None] when some component shrank relative to [base] (link reordering)
    or the lengths differ. *)

val apply_delta : base:t -> string -> t option

val encode_wire : ?base:t -> t -> string
(** Delta form against [base] when expressible and no larger, else full. *)

val decode_wire : ?base:t -> string -> t option
(** Inverse of {!encode_wire}; delta-form input without [base] is [None]. *)
