(* Algorithm 1 (CC1 ∘ TC): safety under every regime, maximal concurrency,
   progress, 2-phase discussion, locality, and the Lemma 3 closure. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Matching = Snapcc_hypergraph.Matching
module Model = Snapcc_runtime.Model
module Daemon = Snapcc_runtime.Daemon
module Obs = Snapcc_runtime.Obs
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics
module X = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver
module Common = Snapcc_experiments.Exp_common

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let assert_clean name (r : Driver.result) =
  List.iter
    (fun v ->
      Alcotest.failf "%s: %s" name
        (Format.asprintf "%a" Snapcc_analysis.Spec.pp_violation v))
    r.Driver.violations

let topologies () =
  [ ("fig1", Families.fig1 ());
    ("fig2", Families.fig2 ());
    ("ring6", Families.pair_ring 6);
    ("shuffled", Families.with_shuffled_ids ~seed:5 (Families.fig1 ()));
  ]

let test_safety_sweep () =
  List.iter
    (fun (name, h) ->
      List.iter
        (fun daemon ->
          List.iter
            (fun (iname, init) ->
              let r =
                X.Run_cc1.run ~seed:3 ~init ~daemon
                  ~workload:(Workload.always_requesting h) ~steps:3_000 h
              in
              let label =
                Printf.sprintf "%s/%s/%s" name (Daemon.name daemon) iname
              in
              assert_clean label r;
              check (label ^ ": meetings convene") true
                (r.Driver.summary.Metrics.convenes > 0))
            [ ("canonical", `Canonical); ("random", `Random) ])
        [ Daemon.synchronous; Daemon.central (); Daemon.random_subset () ])
    (topologies ())

let test_bursty_workload () =
  let h = Families.fig1 () in
  let r =
    X.Run_cc1.run ~seed:11 ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.bursty ~seed:4 ~p_request:0.3 h) ~steps:6_000 h
  in
  assert_clean "bursty" r;
  check "meetings convene under bursty requests" true
    (r.Driver.summary.Metrics.convenes > 5)

let test_locality () =
  (* CC1 over the tree substrate only reads neighbors: the dynamic locality
     check must stay silent for a full run *)
  let h = Families.fig1 () in
  let r =
    X.Run_cc1.run ~check_locality:true ~seed:2 ~init:`Random
      ~daemon:(Daemon.random_subset ()) ~workload:(Workload.always_requesting h)
      ~steps:2_000 h
  in
  assert_clean "locality run" r;
  check "ran to horizon" true (r.Driver.steps > 0)

let test_maximal_concurrency () =
  (* Definition 2 via infinite meetings: the quiescent meeting set must be a
     maximal matching *)
  List.iter
    (fun (name, h) ->
      List.iter
        (fun daemon ->
          let r =
            X.Run_cc1.run ~seed:5 ~daemon ~workload:(Workload.infinite_meetings h)
              ~stop_when:(Common.stable_stop ~window:(60 * H.n h) ())
              ~steps:(4_000 * H.n h) h
          in
          let meetings = Obs.meetings h r.Driver.final_obs in
          check
            (Printf.sprintf "%s/%s: quiescent meetings form a maximal matching"
               name (Daemon.name daemon))
            true
            (Matching.is_maximal_matching h meetings))
        [ Daemon.synchronous; Daemon.random_subset () ])
    (topologies ())

let test_progress_selective () =
  (* only committee {3,4} of fig2 requests: it must convene *)
  let h = Families.fig2 () in
  let members = Array.to_list (H.edge_members h 2) in
  let r =
    X.Run_cc1.run ~seed:9 ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.selective ~requesters:members h)
      ~stop_when:(fun obs -> Obs.meets h obs 2)
      ~steps:4_000 h
  in
  check "committee {3,4} convenes" true (r.Driver.outcome = `Stopped);
  assert_clean "selective" r

let test_two_phase_counters () =
  (* from a canonical start, every participation implies exactly one
     essential discussion *)
  let h = Families.fig1 () in
  let r =
    X.Run_cc1.run ~seed:6 ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:4_000 h
  in
  assert_clean "two-phase" r;
  Array.iteri
    (fun p (o : Obs.t) ->
      let parts = r.Driver.participations.(p) in
      let disc = o.Obs.discussions in
      (* the last meeting may still be in its essential phase *)
      check
        (Printf.sprintf "prof %d: discussions track participations" (H.id h p))
        true
        (disc = parts || disc = parts - 1))
    r.Driver.final_obs

let test_infinite_meetings_never_terminate () =
  let h = Families.pair_ring 6 in
  let r =
    X.Run_cc1.run ~seed:8 ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.infinite_meetings h)
      ~stop_when:(Common.stable_stop ~window:300 ())
      ~steps:20_000 h
  in
  assert_clean "infinite meetings" r;
  (* each convene is still meeting at the end: nothing terminated *)
  check_int "no meeting ever terminated"
    (List.length (Obs.meetings h r.Driver.final_obs))
    r.Driver.summary.Metrics.convenes

let test_faults_mid_run () =
  let h = Families.fig1 () in
  let n = H.n h in
  List.iter
    (fun seed ->
      let faults ~step =
        if step mod 1_500 = 750 then List.init (n / 2) (fun i -> 2 * i) else []
      in
      let r =
        X.Run_cc1.run ~seed ~init:`Random ~faults ~daemon:(Daemon.random_subset ())
          ~workload:(Workload.always_requesting h) ~steps:6_000 h
      in
      assert_clean (Printf.sprintf "faults seed=%d" seed) r;
      check "still live after faults" true (r.Driver.summary.Metrics.convenes > 0))
    [ 1; 2; 3 ]

(* Lemma 3: Correct(p) is closed under steps, from arbitrary configurations
   and arbitrary inputs. *)
module Cc1_engine = Snapcc_runtime.Engine.Make (X.Cc1)

let qcheck_correct_closure =
  QCheck.Test.make ~name:"Lemma 3: Correct(p) closure" ~count:60
    (QCheck.make
       ~print:(fun (s, t) -> Printf.sprintf "seed=%d topo=%d" s t)
       QCheck.Gen.(pair (int_bound 100_000) (int_bound 3)))
    (fun (seed, t) ->
      let h = snd (List.nth (topologies ()) t) in
      let eng =
        Cc1_engine.create ~seed ~init:`Random ~daemon:(Daemon.random_subset ()) h
      in
      let inputs =
        { Model.request_in = (fun _ -> true); request_out = (fun _ -> true) }
      in
      let correct_set () =
        List.filter
          (fun p -> X.Cc1.correct h ~read:(Cc1_engine.state eng) p)
          (List.init (H.n h) Fun.id)
      in
      let ok = ref true in
      let prev = ref (correct_set ()) in
      for _ = 1 to 25 do
        if not (Cc1_engine.is_terminal eng ~inputs) then begin
          ignore (Cc1_engine.step eng ~inputs);
          let now = correct_set () in
          if not (List.for_all (fun p -> List.mem p now) !prev) then ok := false;
          prev := now
        end
      done;
      !ok)

(* After at most one round every process is Correct forever (Corollary 3). *)
let test_stabilization_actions () =
  let h = Families.fig1 () in
  List.iter
    (fun seed ->
      let eng =
        Cc1_engine.create ~seed ~init:`Random ~daemon:Daemon.synchronous h
      in
      let inputs = Model.always_in in
      (* one synchronous step = one round *)
      ignore (Cc1_engine.step eng ~inputs);
      for p = 0 to H.n h - 1 do
        check
          (Printf.sprintf "Correct(%d) after one synchronous round" p)
          true
          (X.Cc1.correct h ~read:(Cc1_engine.state eng) p)
      done)
    [ 4; 5; 6; 7 ]

let suite =
  [ ( "cc1",
      [ Alcotest.test_case "safety sweep (daemons x inits)" `Slow test_safety_sweep;
        Alcotest.test_case "bursty workload" `Quick test_bursty_workload;
        Alcotest.test_case "locality of reads" `Quick test_locality;
        Alcotest.test_case "maximal concurrency (Def. 2)" `Slow
          test_maximal_concurrency;
        Alcotest.test_case "progress for a selective committee" `Quick
          test_progress_selective;
        Alcotest.test_case "2-phase discussion counters" `Quick
          test_two_phase_counters;
        Alcotest.test_case "infinite meetings never terminate" `Quick
          test_infinite_meetings_never_terminate;
        Alcotest.test_case "transient faults mid-run" `Quick test_faults_mid_run;
        Alcotest.test_case "stabilization within one round" `Quick
          test_stabilization_actions;
      ] );
    ("cc1:qcheck", [ QCheck_alcotest.to_alcotest ~long:false qcheck_correct_closure ]);
  ]
