lib/runtime/daemon.mli: Random
