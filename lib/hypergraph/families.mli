(** Hypergraph families: the paper's figures plus parametric and random
    topologies used by tests, examples and benchmarks. *)

val fig1 : unit -> Hypergraph.t
(** Fig. 1: 6 professors, committees
    [{1,2} {1,2,3,4} {2,4,5} {3,6} {4,6}] (identifiers as in the paper,
    vertices 0-based underneath). *)

val fig2 : unit -> Hypergraph.t
(** Fig. 2 / Theorem 1: 5 professors, committees [{1,2} {1,3,5} {3,4}]. *)

val fig3 : unit -> Hypergraph.t
(** The 10-professor system of the §4.1 worked example.  The paper only
    names the committees exercised by the run
    ([{1,2,3} {5,6} {6,7} {7,8} {8,9} {9,10} {6,9}]); we close the roster
    with [{3,4}] and [{4,5}] so that professor 4 exists as in the figure. *)

val fig4 : unit -> Hypergraph.t
(** Fig. 4 / locking example: 9 professors, committees
    [{1,2,5,8} {3,4,5} {6,7,9} {8,9}]. *)

val pair_ring : int -> Hypergraph.t
(** [pair_ring n] (n >= 3): committees [{i, i+1 mod n}]. *)

val path : int -> Hypergraph.t
(** [path n] (n >= 2): committees [{i, i+1}]. *)

val star : int -> Hypergraph.t
(** [star n] (n >= 2): committees [{0, i}]; all committees conflict, so at
    most one meeting can ever hold (§3.2 remark). *)

val clique : int -> Hypergraph.t
(** [clique n] (n >= 2): one committee per pair of professors. *)

val k_uniform_ring : n:int -> k:int -> Hypergraph.t
(** [k_uniform_ring ~n ~k]: committees [{i, .., i+k-1 mod n}]; requires
    [2 <= k < n] and [n >= 3]. *)

val single : int -> Hypergraph.t
(** [single k] (k >= 2): one committee containing all [k] professors. *)

val random :
  seed:int -> n:int -> m:int -> ?min_k:int -> ?max_k:int -> unit -> Hypergraph.t
(** [random ~seed ~n ~m ()] draws [m] distinct random committees of sizes in
    [[min_k, max_k]] (defaults 2..4), then patches the result so that every
    professor is covered and the underlying network is connected (which may
    add a few extra committees).  Deterministic in [seed]. *)

val with_shuffled_ids : seed:int -> Hypergraph.t -> Hypergraph.t
(** Same structure, identifiers permuted deterministically: exercises the
    id-based symmetry breaking of the algorithms. *)

val all_named : unit -> (string * Hypergraph.t) list
(** A labelled collection of small topologies (figures + parametric
    instances) used by test and experiment sweeps. *)

val by_name : string -> Hypergraph.t
(** Look up one of {!all_named} (plus [ring<n>]/[path<n>]/[line<n>]/
    [star<n>]/[clique<n>]/[single<n>] parsed forms, e.g. ["ring12"];
    ["line<n>"] is an alias of ["path<n>"], and ["triangle"]/["triangle3"]
    of ["ring3"]).  Raises [Invalid_argument] on unknown names. *)
