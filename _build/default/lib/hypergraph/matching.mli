(** Matching theory on hypergraphs (paper §5.3).

    A matching is a set of pairwise non-conflicting committees; a maximal
    matching admits no superset.  These computations are exact and
    exponential in the number of committees, intended for the small
    topologies on which the degree-of-fair-concurrency experiments check the
    theoretical bounds ([m <= 62] enforced, practical up to [m ~ 20]). *)

val is_matching : Hypergraph.t -> int list -> bool
val is_maximal_matching : Hypergraph.t -> int list -> bool

val iter_maximal_matchings : Hypergraph.t -> (int list -> unit) -> unit
(** Enumerates every maximal matching exactly once (edge ids, sorted). *)

val maximal_matchings : Hypergraph.t -> int list list
val count_maximal_matchings : Hypergraph.t -> int

val min_maximal_matching : Hypergraph.t -> int
(** [minMM]: size of the smallest maximal matching. *)

val max_matching : Hypergraph.t -> int
(** Size of a maximum matching. *)

val greedy_maximal_matching : ?order:int array -> Hypergraph.t -> int list
(** A maximal matching built greedily in the given edge order (default:
    increasing edge id) — what an exhausted greedy scheduler produces. *)

val min_mm_with_amm : Hypergraph.t -> int
(** [min MM ∪ AMM] of §5.3: the Theorem 4 lower bound on the degree of fair
    concurrency of [CC2 ∘ TC].  When [AMM] is empty this is [minMM]. *)

val min_mm_with_amm' : Hypergraph.t -> int
(** [min MM ∪ AMM'] of §5.4: the Theorem 7 lower bound for [CC3 ∘ TC]
    (candidate committees range over all of [Ep], not just [Emin_p]). *)

type bounds = {
  min_mm : int;  (** size of smallest maximal matching *)
  max_matching : int;  (** size of maximum matching *)
  max_min : int;  (** [MaxMin] (§5.3) *)
  max_hedge : int;  (** [MaxHEdge] (§5.4) *)
  dfc_cc2 : int;  (** Theorem 4: [min MM ∪ AMM] *)
  dfc_cc3 : int;  (** Theorem 7: [min MM ∪ AMM'] *)
  thm5_lower : int;  (** Theorem 5: [minMM - MaxMin + 1] *)
  thm8_lower : int;  (** Theorem 8: [minMM - MaxHEdge + 1] *)
}

val bounds : Hypergraph.t -> bounds
(** All bounds at once (shares the enumeration work). *)

val pp_bounds : Format.formatter -> bounds -> unit
