(** Dense guard/footprint tables over the interned per-process state
    domains — the exact static-analysis engine and the explorer's
    table-driven fast path.

    For each process [p] the builder enumerates the {e full} product of the
    declared {!System.S.domain}s of [p]'s read support (its closed
    neighborhood, extended on demand when an evaluation actually reads
    beyond it) under every uniform input mode ({!Snapcc_runtime.Model.input_modes}),
    running the engine's backwards priority scan on every cell.  Verdicts
    derived from a completed pass are therefore {e absolute over the
    declared domains}, not relative to a sampled reachable set: a guard
    that never held is provably unsatisfiable on the domain product, a read
    that never left the neighborhood provably local, and so on.

    Two caps keep instances honest rather than silently truncated: a pass
    whose product exceeds the {e enumeration} cap is skipped outright (the
    process is reported as such — no verdicts are claimed for it), and a
    completed pass is additionally {e stored} as packed per-(process, mode)
    entry tables only when it fits the storage cap.  Stored tables drive
    {!Explore.Make.explore}'s lookup fast path and serialize via
    {!portable} (see [Snapcc_statics.Artifact]). *)

val nmodes : int
(** Number of uniform input modes (= [Array.length Model.input_modes]). *)

(** Structural side-condition evidence observed during enumeration.
    Occurrence counts are (cell, mode) pairs. *)
type incident =
  | Nonlocal_read of { proc : int; action : string; read : int }
      (** an evaluation of [action] by [proc] read non-neighbor [read] *)
  | Foreign_mutation of { proc : int; victim : int }
      (** enumerating [proc]'s actions mutated an interned domain state of
          [victim] in place (write-ownership violation; detected by
          fingerprint comparison after the pass, so not attributed to a
          specific action) *)
  | Nondet of { proc : int; action : string; what : [ `Guard | `Apply ] }
      (** two evaluations on the same cell disagreed *)
  | Crashed of {
      proc : int;
      action : string;
      what : [ `Guard | `Apply ];
      exn : string;
    }

(** {2 Packed entries}

    [entry >= 0] encodes the backwards-scan outcome on a cell:
    the chosen action index, whether executing it changes the process's
    state, the 16-bit mask of processes read (scan from the chosen action
    up, plus the statement), and the dense successor state id.
    [-1] = no action enabled; [-2] = unavailable (returned by {!Make.entry}
    when the table is missing or the configuration contains an escapee). *)

val entry_act : int -> int
val entry_changes : int -> bool
val entry_reads : int -> int
val entry_succ : int -> int

type proc_tbl = {
  support : int array;  (** processes read, ascending; includes the owner *)
  sizes : int array;  (** domain size per support process *)
  strides : int array;  (** row-major, last support process fastest *)
  entries : int array array;  (** per input mode, [Π sizes] packed entries *)
}

type portable = {
  p_algo : string;
  p_topo : string;
  p_n : int;
  p_labels : string array;
  p_dom : int array;  (** declared-domain size per process *)
  p_procs : (proc_tbl, string) result array;  (** [Error reason] = skipped *)
}
(** Functor-free image of a table set, for serialization. *)

module Make (Sys : System.S) : sig
  type t

  val build :
    ?verify:bool ->
    ?cap:int ->
    ?store_cap:int ->
    Snapcc_hypergraph.Hypergraph.t ->
    t
  (** Enumerate every process's support product.  [verify] (default false)
      additionally evaluates every guard and statement twice (determinism)
      and fingerprints the interned domain states around each pass
      (write-ownership) — the exact-lint configuration; leave it off when
      only the fast-path tables are wanted.  [cap] (default [2^27]) bounds
      the (cell, mode) pairs {e enumerated} per process; [store_cap]
      (default [2^24]) bounds the entries {e stored} per process.  Both
      overruns surface as [`Skipped] statuses, never as silent truncation.

      Statement crashes yield a disabled entry (the engine would have
      crashed); in-place mutation marks the result {!tainted} (the
      hash-consed stores are then corrupted, so tables and statistics are
      unreliable — findings remain valid evidence). *)

  val enc : t -> Encode.Make(Sys).t
  (** The interner the tables are keyed by; hand it to the explorer so ids
      stay consistent across both. *)

  val labels : t -> string array
  val support : t -> int -> int array

  val status : t -> int -> [ `Built | `Streamed of string | `Skipped of string ]
  (** [`Built] = enumerated and stored; [`Streamed reason] = the pass
      completed (verdicts are exact) but the entries exceeded the storage
      cap; [`Skipped reason] = not enumerated — no verdicts are claimed for
      this process. *)

  val built : t -> bool
  (** All processes stored ([`Built]). *)

  val complete : t -> bool
  (** All processes enumerated ([`Built] or [`Streamed]) — the condition
      under which zero {!guard_true} counts are dead-action {e proofs}. *)

  val entry : t -> mode:int -> proc:int -> int array -> int
  (** [entry t ~mode ~proc cfg] — packed entry for the configuration given
      as dense per-process state ids; [-2] if unavailable. *)

  val guard_true : t -> int array
  (** Per action: (cell, mode) pairs on which the guard held, summed over
      all completed passes.  Zero for every process ⇒ provably dead on the
      enumerated product (only meaningful when no pass was skipped). *)

  val overlaps : t -> (string list * int * int) list
  (** [(labels, cells, example_proc)]: ≥2 simultaneously enabled actions. *)

  val incidents : t -> (incident * int) list
  val cells : t -> int
  (** Total (cell, mode) pairs enumerated. *)

  val seconds : t -> float
  val tainted : t -> bool

  val enumerate :
    ?cap:int ->
    t ->
    proc:int ->
    init:(support:int array -> sizes:int array -> unit) ->
    cell:(mode:int -> ids:int array -> entry:int -> unit) ->
    bool
  (** Stream every (cell, mode) pair of one process's pass to [cell], in
      odometer order ([ids] is the live per-support digit vector, aligned
      with [support] — read, don't keep).  Stored tables are decoded by
      lookup; streamed or skipped passes re-run the backwards scan with
      the same packing (no verify instrumentation).  [init] fires at every
      (re)start — an on-demand support extension discards the partial
      stream, so consumers must reset accumulators there.  Returns [false]
      when the product exceeds [cap] (default [2^27]) or the pass failed;
      nothing is claimed in that case. *)

  val interference :
    ?cap:int -> t -> (string * string * int) list
  (** [(writer, reader, cells)]: over the joint product of each ordered
      neighbor pair with stored tables, cells where the writer's chosen
      action changes its state while the reader's evaluation reads the
      writer.  Pairs whose joint product exceeds [cap] are omitted. *)

  val to_portable : algo:string -> topo:string -> t -> portable
end
