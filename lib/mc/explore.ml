module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
module Spec = Snapcc_analysis.Spec

type violation = {
  rule : string;
  detail : string;
  source : int;
  mode : int;
  selected : int list;
}

let mode_inputs = Array.map snd Model.input_modes
let mode_names = Array.map fst Model.input_modes
let mode_name i = if i < 0 || i >= Array.length mode_names then "-" else mode_names.(i)
let inout_mode = 3

let bits_list mask =
  let rec go p m acc =
    if m = 0 then List.rev acc
    else go (p + 1) (m lsr 1) (if m land 1 = 1 then p :: acc else acc)
  in
  go 0 mask []

module Make (Sys : System.S) = struct
  module Enc = Encode.Make (Sys)
  module Tb = Tables.Make (Sys)

  type result = {
    h : H.t;
    enc : Enc.t;
    configs : int Vec.t;  (** flat, [n] state ids per configuration *)
    meets : int Vec.t;  (** per cid: bitmask of meeting committees *)
    waitm : int Vec.t;  (** per cid: bitmask of all-members-waiting committees *)
    enab_inout : int Vec.t;  (** per cid: enabled procs under in+out *)
    par : int Vec.t;  (** per cid: parent cid, [-1] for roots *)
    par_mode : int Vec.t;
    par_sel : int Vec.t;
    edges : int Vec.t;
        (** in+out words: [(((dst lsl 1) lor conv) lsl n) lor selmask],
            [conv] = the {e raw} transition convened a meeting *)
    estart : int Vec.t;  (** per processed cid: offset into [edges] *)
    counts : int array;
    labels : string array;
    grp : Symmetry.group option;  (** quotient mode, when order > 1 *)
    raw_step : int array -> int -> int -> int array;
        (** raw successor ids of (config ids, mode, selmask) *)
    mutable transitions : int;
    mutable viols : violation list;
    mutable complete_ : bool;
  }

  let complete r = r.complete_
  let n_configs r = Vec.length r.meets
  let n_transitions r = r.transitions
  let violations r = List.rev r.viols
  let escapees r = Enc.escapees r.enc
  let product_size r = Enc.product_size r.enc
  let hyper r = r.h

  let action_counts r =
    Array.to_list (Array.map2 (fun l c -> (l, c)) r.labels r.counts)

  let dead_actions r =
    List.filter_map (fun (l, c) -> if c = 0 then Some l else None) (action_counts r)

  let config_ids r cid =
    let n = Enc.n r.enc in
    Array.init n (fun p -> Vec.get r.configs ((cid * n) + p))

  let states_of_config r cid =
    Array.mapi (fun p id -> Enc.state r.enc p id) (config_ids r cid)

  let obs_of_config r cid =
    let sts = states_of_config r cid in
    Array.init (Array.length sts) (fun p -> Sys.observe r.h sts p)

  let domain_index r p s = Enc.find r.enc p s
  let domain_state r p id = Enc.state r.enc p id
  let enabled_inout r cid = Vec.get r.enab_inout cid
  let meets_mask r cid = Vec.get r.meets cid
  let committee_waiting r cid = Vec.get r.waitm cid <> 0

  let succs_inout r cid =
    if cid >= Vec.length r.estart then []
    else begin
      let n = Enc.n r.enc in
      let lo = Vec.get r.estart cid in
      let hi =
        if cid + 1 < Vec.length r.estart then Vec.get r.estart (cid + 1)
        else Vec.length r.edges
      in
      List.init (hi - lo) (fun i ->
          let w = Vec.get r.edges (lo + i) in
          (w lsr (n + 1), w land ((1 lsl n) - 1)))
    end

  let convening r src dst =
    let n = Enc.n r.enc in
    if src >= Vec.length r.estart then
      meets_mask r dst land lnot (meets_mask r src) <> 0
    else begin
      let lo = Vec.get r.estart src in
      let hi =
        if src + 1 < Vec.length r.estart then Vec.get r.estart (src + 1)
        else Vec.length r.edges
      in
      let found = ref false and all = ref true in
      for i = lo to hi - 1 do
        let w = Vec.get r.edges i in
        if w lsr (n + 1) = dst then begin
          found := true;
          if (w lsr n) land 1 = 0 then all := false
        end
      done;
      if !found then !all
      else meets_mask r dst land lnot (meets_mask r src) <> 0
    end

  let symmetry_order r =
    match r.grp with None -> 1 | Some g -> Symmetry.order g

  let quotient_path r cid =
    let rec up cid acc =
      let p = Vec.get r.par cid in
      if p < 0 then (cid, acc) else up p ((cid, p) :: acc)
    in
    up cid []

  (* Lift the stored quotient path to a concrete one, maintaining the
     accumulated element [hp] with concrete_i = hp · canonical_i: the
     stored (mode, sel) of each step is relative to the canonical parent,
     so the concrete selection is [hp.pi(sel)]; the canonicalizing witness
     [w] of the recomputed raw successor updates [hp ← hp ∘ w⁻¹]. *)
  let lifted r cid =
    let root, chain = quotient_path r cid in
    let root_ids = config_ids r root in
    match r.grp with
    | None -> (root_ids, List.map (fun (c, _) -> (Vec.get r.par_mode c, bits_list (Vec.get r.par_sel c))) chain, None)
    | Some grp ->
        let hp = ref grp.Symmetry.elems.(0) in
        let steps =
          List.map
            (fun (child, parent) ->
              let mode = Vec.get r.par_mode child
              and sel = Vec.get r.par_sel child in
              let raw = r.raw_step (config_ids r parent) mode sel in
              let w =
                if Symmetry.in_domain grp raw then
                  let _, gi = Symmetry.canonical grp raw in
                  grp.Symmetry.elems.(gi)
                else grp.Symmetry.elems.(0)
              in
              let csel = ref 0 in
              let pi = (!hp).Symmetry.pi in
              for p = 0 to Array.length pi - 1 do
                if sel land (1 lsl p) <> 0 then
                  csel := !csel lor (1 lsl pi.(p))
              done;
              hp := Symmetry.compose !hp (Symmetry.invert w);
              (mode, bits_list !csel))
            chain
        in
        (root_ids, steps, Some !hp)

  let path_to r cid =
    let root, steps, _ = lifted r cid in
    (root, steps)

  let lift_selection r cid sel =
    match lifted r cid with
    | _, _, None -> sel
    | _, _, Some hp -> List.sort compare (List.map (fun p -> hp.Symmetry.pi.(p)) sel)

  let explore ?(max_configs = 1_500_000) ?(roots = `Domain)
      ?(stop_on_first = false) ?on_progress ?tables ?symmetry h =
    let n = H.n h and m = H.m h in
    if n > 16 then failwith "Mc.Explore: more than 16 processes unsupported";
    if m > 62 then failwith "Mc.Explore: more than 62 committees unsupported";
    (* adopt the tables' interner so their packed successor ids are valid
       here; a fresh one is only built when running closure-only *)
    let enc = match tables with Some tb -> Tb.enc tb | None -> Enc.create h in
    let actions = Array.of_list (Sys.actions h) in
    let nact = Array.length actions in
    let grp =
      match symmetry with
      | Some g when Symmetry.order g > 1 && g.Symmetry.complete ->
          Array.iteri
            (fun p s ->
              if Array.length s <> Enc.domain_count enc p then
                failwith "Mc.Explore: symmetry group domains do not match")
            g.Symmetry.elems.(0).Symmetry.sigma;
          Some g
      | _ -> None
    in
    let raw_step cfg mode selmask =
      let sts = Array.mapi (fun p id -> Enc.state enc p id) cfg in
      let read p = sts.(p) in
      let inputs = mode_inputs.(mode) in
      let out = Array.copy cfg in
      for p = 0 to n - 1 do
        if selmask land (1 lsl p) <> 0 then begin
          let e =
            match tables with
            | Some tb -> Tb.entry tb ~mode ~proc:p cfg
            | None -> -2
          in
          if e >= 0 then out.(p) <- Tables.entry_succ e
          else if e = -2 then begin
            let ctx = { Model.h; inputs; read; self = p } in
            let rec scan i =
              if i < 0 then -1
              else if actions.(i).Model.guard ctx then i
              else scan (i - 1)
            in
            let i = scan (nact - 1) in
            if i >= 0 then
              out.(p) <- Enc.intern enc p (actions.(i).Model.apply ctx)
          end
        end
      done;
      out
    in
    let r =
      { h; enc;
        configs = Vec.create ();
        meets = Vec.create ();
        waitm = Vec.create ();
        enab_inout = Vec.create ();
        par = Vec.create ();
        par_mode = Vec.create ();
        par_sel = Vec.create ();
        edges = Vec.create ();
        estart = Vec.create ();
        counts = Array.make nact 0;
        labels = Array.map (fun (a : _ Model.action) -> a.Model.label) actions;
        grp;
        raw_step;
        transitions = 0;
        viols = [];
        complete_ = false }
    in
    let conflicts =
      List.concat
        (List.init m (fun e1 ->
             List.concat
               (List.init e1 (fun e2 ->
                    if H.conflicting h e1 e2 then [ (e1, e2) ] else []))))
    in
    let table = Enc.table enc in
    let queue = Queue.create () in
    let capped = ref false in
    let stop = ref false in
    let discover ~parent cfg =
      if Enc.table_count table >= max_configs then begin
        capped := true;
        None
      end
      else
        match Enc.find_or_add enc table cfg with
        | `Existing cid -> Some cid
        | `New cid ->
          Array.iter (fun id -> Vec.push r.configs id) cfg;
          let obs = obs_of_config r cid in
          let mm = ref 0 and wm = ref 0 in
          for e = 0 to m - 1 do
            if Obs.meets h obs e then mm := !mm lor (1 lsl e);
            if
              Array.for_all
                (fun q -> Obs.is_waiting obs.(q))
                (H.edge_members h e)
            then wm := !wm lor (1 lsl e)
          done;
          Vec.push r.meets !mm;
          Vec.push r.waitm !wm;
          Vec.push r.enab_inout 0;
          let pc, pm, ps = parent in
          Vec.push r.par pc;
          Vec.push r.par_mode pm;
          Vec.push r.par_sel ps;
          List.iter
            (fun (e1, e2) ->
              if !mm land (1 lsl e1) <> 0 && !mm land (1 lsl e2) <> 0 then begin
                r.viols <-
                  { rule = "exclusion";
                    detail =
                      Printf.sprintf
                        "conflicting committees e%d and e%d meet simultaneously"
                        e2 e1;
                    source = cid;
                    mode = -1;
                    selected = [] }
                  :: r.viols;
                if stop_on_first then stop := true
              end)
            conflicts;
          Queue.add cid queue;
          Some cid
    in
    (* lazily streamed roots *)
    let root_cursor = Array.make n 0 in
    let roots_exhausted = ref false in
    let next_domain_root () =
      if !roots_exhausted then None
      else begin
        let cfg = Array.copy root_cursor in
        let rec adv p =
          if p < 0 then roots_exhausted := true
          else begin
            root_cursor.(p) <- root_cursor.(p) + 1;
            if root_cursor.(p) >= Enc.domain_count enc p then begin
              root_cursor.(p) <- 0;
              adv (p - 1)
            end
          end
        in
        adv (n - 1);
        Some cfg
      end
    in
    let pending_roots =
      ref (match roots with `States l -> l | `Domain -> [])
    in
    let next_root () =
      match roots with
      | `Domain -> next_domain_root ()
      | `States _ -> (
        match !pending_roots with
        | [] -> None
        | sts :: rest ->
          pending_roots := rest;
          Some (Array.init n (fun p -> Enc.intern enc p sts.(p))))
    in
    let scratch = Array.make n 0 in
    let succ_ids = Array.make n 0 in
    let act_idx = Array.make n (-1) in
    let obs_of_ids ids =
      let sts = Array.mapi (fun p id -> Enc.state enc p id) ids in
      Array.init n (fun p -> Sys.observe h sts p)
    in
    let processed = ref 0 in
    let process cid =
      assert (Vec.length r.estart = cid);
      Vec.push r.estart (Vec.length r.edges);
      let cfg = config_ids r cid in
      let sts = states_of_config r cid in
      let read p = sts.(p) in
      let before_obs = lazy (obs_of_config r cid) in
      let bm = Vec.get r.meets cid in
      for mode = 0 to Array.length mode_inputs - 1 do
        if not !stop then begin
          let inputs = mode_inputs.(mode) in
          let enabled = ref 0 in
          for p = 0 to n - 1 do
            let e =
              match tables with
              | Some tb -> Tb.entry tb ~mode ~proc:p cfg
              | None -> -2
            in
            if e = -1 then act_idx.(p) <- -1
            else if e >= 0 then begin
              act_idx.(p) <- Tables.entry_act e;
              enabled := !enabled lor (1 lsl p);
              succ_ids.(p) <- Tables.entry_succ e
            end
            else begin
              (* no packed entry for this (process, configuration): run
                 the guard closures as usual *)
              let ctx = { Model.h; inputs; read; self = p } in
              let rec scan i =
                if i < 0 then -1
                else if actions.(i).Model.guard ctx then i
                else scan (i - 1)
              in
              let i = scan (nact - 1) in
              act_idx.(p) <- i;
              if i >= 0 then begin
                enabled := !enabled lor (1 lsl p);
                succ_ids.(p) <- Enc.intern enc p (actions.(i).Model.apply ctx)
              end
            end
          done;
          if mode = inout_mode then Vec.set r.enab_inout cid !enabled;
          let full = !enabled in
          if full <> 0 then begin
            let sub = ref full in
            let continue_ = ref true in
            while !continue_ && (not !stop) && not !capped do
              let s = !sub in
              Array.blit cfg 0 scratch 0 n;
              for p = 0 to n - 1 do
                if s land (1 lsl p) <> 0 then scratch.(p) <- succ_ids.(p)
              done;
              (* quotient mode: store the lex-least orbit representative,
                 but judge the RAW transition — the witness's inverse edge
                 permutation pulls the canonical meets mask back to the raw
                 successor's.  Escapee configurations bypass
                 canonicalization (their transport is undefined) and are
                 explored concretely, exactly as without symmetry. *)
              let target, gi =
                match grp with
                | Some g when Symmetry.in_domain g scratch ->
                    let rep, gi = Symmetry.canonical g scratch in
                    (rep, gi)
                | _ -> (scratch, 0)
              in
              (match discover ~parent:(cid, mode, s) target with
              | None -> ()
              | Some dst ->
                r.transitions <- r.transitions + 1;
                for p = 0 to n - 1 do
                  if s land (1 lsl p) <> 0 then
                    r.counts.(act_idx.(p)) <- r.counts.(act_idx.(p)) + 1
                done;
                let am =
                  match grp with
                  | Some g when gi <> 0 ->
                      Symmetry.inverse_map_mask
                        g.Symmetry.elems.(gi).Symmetry.eperm
                        (Vec.get r.meets dst)
                  | _ -> Vec.get r.meets dst
                in
                if mode = inout_mode then begin
                  let conv = if am land lnot bm <> 0 then 1 else 0 in
                  Vec.push r.edges ((((dst lsl 1) lor conv) lsl n) lor s)
                end;
                if am <> bm then begin
                  (* a meeting convened or broke up: judge the transition
                     with the runtime monitor, before as initial (§2.5) *)
                  let before = Lazy.force before_obs in
                  let after =
                    if gi <> 0 then obs_of_ids scratch
                    else obs_of_config r dst
                  in
                  let spec = Spec.create h ~initial:before in
                  Spec.on_step spec ~step:0
                    ~request_out:inputs.Model.request_out ~before ~after;
                  List.iter
                    (fun (v : Spec.violation) ->
                      r.viols <-
                        { rule = v.Spec.rule;
                          detail = v.Spec.detail;
                          source = cid;
                          mode;
                          selected = bits_list s }
                        :: r.viols;
                      if stop_on_first then stop := true)
                    (Spec.violations spec)
                end);
              let nxt = (s - 1) land full in
              if nxt = 0 then continue_ := false else sub := nxt
            done
          end
        end
      done;
      incr processed;
      if !processed land 0x3fff = 0 then
        Option.iter
          (fun f ->
            f ~configs:(Enc.table_count table) ~transitions:r.transitions)
          on_progress
    in
    let rec loop () =
      if !stop || !capped then ()
      else
        match Queue.take_opt queue with
        | Some cid ->
          process cid;
          loop ()
        | None -> (
          match next_root () with
          | Some cfg ->
            (match (grp, roots) with
            | Some g, `Domain ->
              (* the root odometer streams every orbit's lex-least member
                 itself, so non-canonical roots are skipped outright *)
              let rep, _ = Symmetry.canonical g cfg in
              if rep = cfg then ignore (discover ~parent:(-1, -1, 0) cfg)
            | Some g, `States _ ->
              let cfg =
                if Symmetry.in_domain g cfg then
                  fst (Symmetry.canonical g cfg)
                else cfg
              in
              ignore (discover ~parent:(-1, -1, 0) cfg)
            | None, _ -> ignore (discover ~parent:(-1, -1, 0) cfg));
            loop ()
          | None -> r.complete_ <- true)
    in
    loop ();
    r
end
