module Cc1 = Snapcc_core.Cc1.Std (Snapcc_token.Token_tree)
module Cc2 = Snapcc_core.Cc23.Cc2_std (Snapcc_token.Token_tree)
module Cc3 = Snapcc_core.Cc23.Cc3_std (Snapcc_token.Token_tree)

type entry = {
  name : string;
  tag : int;
  algo : (module Snapcc_runtime.Model.ALGO);
}

let all =
  [ { name = "cc1"; tag = 1; algo = (module Cc1) };
    { name = "cc2"; tag = 2; algo = (module Cc2) };
    { name = "cc3"; tag = 3; algo = (module Cc3) } ]

let find name = List.find_opt (fun e -> e.name = name) all
let find_tag tag = List.find_opt (fun e -> e.tag = tag) all
