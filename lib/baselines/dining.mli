(** Dining-philosophers reduction baseline (Chandy–Misra [2], §6).

    Each committee is a philosopher hosted at its minimum-identifier member;
    the professors themselves are the forks ("neighboring philosophers have
    a common member").  Deadlock is avoided by ordered acquisition: a
    professor grants itself to a pursuing committee only once every
    smaller-identifier member is already granted.

    Satisfies Exclusion, Synchronization and Progress from clean starts,
    but is neither snap-stabilizing nor fair — the §6 contrast point.
    Implements {!Snapcc_runtime.Model.ALGO}. *)

type state = {
  s : Snapcc_core.Cc_common.status;
  owner : int option;  (** committee currently holding this professor-fork *)
  choice : int option;  (** as host: the hosted committee being pursued *)
  disc : int;  (** essential discussions performed *)
}

include Snapcc_runtime.Model.ALGO with type state := state

val host : Snapcc_hypergraph.Hypergraph.t -> int -> int
(** Host (philosopher site) of a committee: its minimum-identifier member. *)

val hosted : Snapcc_hypergraph.Hypergraph.t -> int -> int list
(** Committees hosted at a professor. *)

val domain : Snapcc_hypergraph.Hypergraph.t -> int -> state list
(** Exhaustive per-process domain ([status × owner × choice], [disc]
    pinned to 0) — makes the baseline a {!Snapcc_mc.System.S}. *)

val canon : Snapcc_hypergraph.Hypergraph.t -> int -> state -> state
(** Pins the observability-only [disc] counter to 0. *)

val rename :
  Snapcc_hypergraph.Hypergraph.t ->
  pi:int array -> eperm:int array -> int -> state -> state
(** Structural symmetry transport ({!Snapcc_mc.System.S}): fork/choice
    committee references follow the edge permutation. *)

val state_symmetries :
  Snapcc_hypergraph.Hypergraph.t -> (string * (int -> state -> state)) list
(** No internal symmetry candidates. *)
