type output = {
  interval : float;
  now : unit -> float;
  mutable last : float;
  render : unit -> unit;
  finish : unit -> unit;
}

type t = {
  registry : Registry.t;
  mutable step : int;
  mutable events : int;
  mutable outputs : output list;
}

let create ~registry () = { registry; step = 0; events = 0; outputs = [] }

let c t name = Registry.counter t.registry name
let bump t name = Registry.incr (c t name)

let observe t (s : Event.stamped) =
  t.events <- t.events + 1;
  (match s.Event.ev with
   | Event.Net_sent { step; _ } ->
     t.step <- max t.step step;
     bump t "net_sent"
   | Event.Net_delivered { step; latency_us; _ } ->
     t.step <- max t.step step;
     bump t "net_delivered";
     Registry.observe (Registry.histogram t.registry "latency_us") latency_us
   | Event.Net_dropped { step; reason; _ } ->
     t.step <- max t.step step;
     bump t "net_dropped";
     bump t ("net_dropped_" ^ reason)
   | Event.Convene { step; _ } ->
     t.step <- max t.step step;
     bump t "convenes"
   | Event.Terminate { step; _ } ->
     t.step <- max t.step step;
     bump t "terminations"
   | Event.Wait_close { waited_steps = _; _ } -> bump t "waits_completed"
   | Event.Verdict _ -> bump t "violations"
   | Event.Fault _ -> bump t "faults"
   | Event.Recover _ -> bump t "recoveries"
   | Event.Token_handoff { step; _ } ->
     t.step <- max t.step step;
     bump t "token_handoffs"
   | Event.Mp_activated { step; _ } -> t.step <- max t.step step
   | Event.Clock _ -> bump t "clock_events"
   | _ -> ());
  List.iter
    (fun o ->
      let now = o.now () in
      if now -. o.last >= o.interval then begin
        o.last <- now;
        o.render ()
      end)
    t.outputs

let cv t name = Registry.counter_value (c t name)

let render_dash t =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let hp name q =
    Registry.percentile q (Registry.histogram t.registry name)
  in
  line "ccsim net - live  step %d  events %d" t.step t.events;
  line "  net   sent %d  delivered %d  dropped %d (drop %d, overflow %d, malformed %d, resync %d)"
    (cv t "net_sent") (cv t "net_delivered") (cv t "net_dropped")
    (cv t "net_dropped_drop") (cv t "net_dropped_overflow")
    (cv t "net_dropped_malformed") (cv t "net_dropped_resync");
  line "  lat   p50 %dus  p90 %dus  p99 %dus" (hp "latency_us" 0.50)
    (hp "latency_us" 0.90) (hp "latency_us" 0.99);
  line "  spec  convenes %d  terminations %d  violations %d  faults %d  handoffs %d"
    (cv t "convenes") (cv t "terminations") (cv t "violations") (cv t "faults")
    (cv t "token_handoffs");
  line "  wait  served %d  p50 %d  p90 %d  p95 %d steps" (cv t "waits_completed")
    (hp "wait_steps" 0.50) (hp "wait_steps" 0.90) (hp "wait_steps" 0.95);
  Buffer.contents b

(* Atomic rewrite: scrape targets never observe a half-written exposition. *)
let write_prom t ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (Registry.to_prometheus t.registry);
  close_out oc;
  Sys.rename tmp path

let count_lines s =
  String.fold_left (fun acc ch -> if ch = '\n' then acc + 1 else acc) 0 s

let add_dash ?(interval = 0.5) t ~now ~write =
  let drawn = ref 0 in
  let draw () =
    let body = render_dash t in
    let erase =
      if !drawn = 0 then "" else Printf.sprintf "\027[%dA\027[0J" !drawn
    in
    drawn := count_lines body;
    write (erase ^ body)
  in
  t.outputs <-
    { interval; now; last = 0.; render = draw; finish = draw } :: t.outputs

let add_prom ?(interval = 1.0) t ~now ~path =
  let render () = write_prom t ~path in
  t.outputs <- { interval; now; last = 0.; render; finish = render } :: t.outputs

let sink t =
  Sink.custom
    ~emit:(fun s -> observe t s)
    ~close:(fun () -> List.iter (fun o -> o.finish ()) t.outputs)
