(** Static symmetry admission: lift conflict-hypergraph automorphisms (and
    declared internal state symmetries) to {e algorithm-level} symmetries,
    by proving against the exact guard/footprint tables that each candidate
    commutes with every action's packed entry on the whole support product.

    A candidate is a vertex permutation [pi] (an automorphism from
    [Snapcc_hypergraph.Automorphism], or the identity) together with a
    per-process state transport built from {!Snapcc_mc.System.S.rename} /
    [state_symmetries].  Admission requires, per process [p] and over
    {e every} (support cell, input mode):

    [entry(pi p, transported cell, mode) = transport(entry(p, cell, mode))]

    — chosen action index and change flag equal, read mask mapped through
    [pi], successor id mapped through the state transport.  The check
    streams both sides through order-independent strong hashes (one
    enumeration pass per process covers all candidates at once), so it
    works even for processes whose tables were streamed rather than
    stored.  Additionally the meeting-relevant observation fields (status,
    pointer, token flag, lock, discussions) must follow the transport
    per-process — which makes violation presence orbit-invariant, the
    soundness condition for quotient exploration.

    Admitted candidates generate the admitted group (commutation is closed
    under composition and inverse); the closure is computed by
    {!Snapcc_mc.Symmetry.close}.  The result ships as a versioned
    [snapcc-orbits v1] certificate whose {!verify} re-checks the
    {e structural} claims — generators are hypergraph automorphisms,
    transports are bijections, orbits and group order are consistent — in
    O(|generators| · |edges|) plus transport size, independently of the
    tables and of any algorithm execution (what it does {e not} re-prove is
    table commutation itself; that requires re-running the analyzer). *)

type outcome = {
  group : Snapcc_mc.Symmetry.group;
      (** the admitted group (trivial when nothing was admitted) *)
  admitted : string list;  (** admitted candidate names *)
  rejected : (string * string) list;  (** (candidate, reason) *)
  candidates : int;  (** candidates examined (identity excluded) *)
  aut_order : int;  (** structural automorphism count found (capped) *)
  aut_complete : bool;
  pairs : int;  (** (cell, mode) pairs streamed for the commutation check *)
  seconds : float;
}

val trivial_outcome :
  Snapcc_hypergraph.Hypergraph.t -> domains:int array -> reason:string -> outcome

module Make (Sys : Snapcc_mc.System.S) : sig
  val run :
    ?cap:int ->
    ?max_group:int ->
    ?aut_cap:int ->
    Snapcc_hypergraph.Hypergraph.t ->
    tables:Snapcc_mc.Tables.Make(Sys).t ->
    outcome
  (** [cap] bounds the (cell, mode) pairs re-enumerated per process
      (default [2^27], like the exact tier); a process over the cap
      rejects every candidate (no claims without proof).  [max_group]
      (default 4096) caps the closure; [aut_cap] (default 720) caps the
      structural candidates taken from the automorphism group. *)
end

(** {2 Certificates} *)

val magic : string
(** ["snapcc-orbits v1"]. *)

val certificate :
  algo:string ->
  topo:string ->
  Snapcc_hypergraph.Hypergraph.t ->
  outcome ->
  string list
(** Self-contained text certificate: the hypergraph's edges, the admitted
    generators with their transports, vertex/edge orbits, group order and
    admission metadata. *)

val verify : string list -> (unit, string) result
(** Independent structural verifier (see the module preamble). *)

val save : string -> algo:string -> topo:string ->
  Snapcc_hypergraph.Hypergraph.t -> outcome -> unit

val verify_file : string -> (unit, string) result
