lib/hypergraph/families.ml: Array Fun Hashtbl Hypergraph List Printf Random String
