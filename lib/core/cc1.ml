(** Algorithm 1 (paper §4): snap-stabilizing 2-phase committee coordination
    with {e Maximal Concurrency}, composed with a token layer [T] by fair
    composition ([CC1 ∘ TC]).

    The transcription is literal: macros, predicates and actions carry the
    paper's names, actions are listed in the paper's code order (an action
    appearing later has higher priority, §2.2), and the token layer's
    internal stabilization actions are appended after them — they are
    self-disabling, which realizes the fair composition.

    The only liberty is the don't-care choice "[ε such that ε ∈ FreeEdges]"
    in [Step21], delegated to {!Cc_common.PARAMS}. *)

module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
open Cc_common

type cc = {
  s : status;  (** [Sp] *)
  ptr : int option;  (** [Pp] (committee edge id, [None] = ⊥) *)
  tf : bool;  (** [Tp], the mirrored token flag *)
  disc : int;  (** essential discussions performed (observability) *)
}

(** Deliberate defects, used to validate the model checker ([lib/mc]): a
    verifier that never finds anything proves nothing.  [Intact] is the
    paper's algorithm. *)
module type BREAK = sig
  val invert_priorities : bool
  (** Reverse the action list, turning the paper's priority order (§2.2)
      upside down: [Stab1]/[Stab2] drop from the highest priority to the
      lowest, [Step1] climbs to the top. *)

  val unchecked_ready : bool
  (** Transcription typo in the [Ready] predicate: drop the
      "[Sq ∈ {looking, waiting}]" conjunct and only require every member to
      point at the committee — which lets a meeting convene around a
      professor stuck in [done] from a corrupted initial configuration. *)
end

module Intact : BREAK = struct
  let invert_priorities = false
  let unchecked_ready = false
end

(** The result signature shared by every instantiation. *)
module type S = sig
  type token_state

  include Model.ALGO with type state = cc * token_state

  val cc : state -> cc
  val correct : H.t -> read:(int -> state) -> int -> bool
  (** The [Correct(p)] predicate, exposed for the closure tests (Lemma 3). *)
end

module Make_gen (T : Snapcc_token.Layer.S) (P : PARAMS) (B : BREAK) :
  S with type token_state = T.state = struct
  type token_state = T.state
  type state = cc * T.state

  let name =
    Printf.sprintf "CC1%s%s∘%s"
      (if B.invert_priorities then "[rev-prio]" else "")
      (if B.unchecked_ready then "[unchecked-ready]" else "")
      T.name

  let cc (c, _) = c

  let pp_state ppf ((c, t) : state) =
    Format.fprintf ppf "S=%a P=%s T=%b disc=%d | %a" pp_status c.s
      (match c.ptr with None -> "⊥" | Some e -> "e" ^ string_of_int e)
      c.tf c.disc T.pp_state t

  let equal_state ((c1, t1) : state) (c2, t2) = c1 = c2 && T.equal_state t1 t2

  (* [Token(p)]: input predicate evaluated on the token layer. *)
  let token h read p = T.has_token h ~read:(fun q -> snd (read q)) p
  let release h read p = T.release h ~read:(fun q -> snd (read q)) p
  let c read p = fst (read p)

  (* ---- macros of Algorithm 1 ---- *)

  let free_edges h read p =
    Array.to_list (H.incident h p)
    |> List.filter (fun e ->
           Array.for_all (fun q -> (c read q).s = Looking) (H.edge_members h e))

  let free_nodes h read p =
    free_edges h read p
    |> List.concat_map (members_list h)
    |> List.sort_uniq compare

  let tfree_nodes h read p = List.filter (fun q -> (c read q).tf) (free_nodes h read p)

  let cands h read p =
    match tfree_nodes h read p with [] -> free_nodes h read p | l -> l

  (* ---- predicates of Algorithm 1 ---- *)

  let ready h read p =
    Array.exists
      (fun e ->
        Array.for_all
          (fun q ->
            let cq = c read q in
            cq.ptr = Some e
            && (B.unchecked_ready || cq.s = Looking || cq.s = Waiting))
          (H.edge_members h e))
      (H.incident h p)

  let local_max h read p = max_by_id h (cands h read p) = Some p

  let max_to_free_edge h read p =
    let free = free_edges h read p in
    free <> [] && local_max h read p
    && (not (ready h read p))
    && (match (c read p).ptr with None -> true | Some e -> not (List.mem e free))

  let join_local_max h read p =
    let free = free_edges h read p in
    free <> []
    && (not (local_max h read p))
    && (not (ready h read p))
    &&
    match max_by_id h (cands h read p) with
    | None -> false
    | Some leader ->
      List.exists
        (fun e -> (c read leader).ptr = Some e && (c read p).ptr <> Some e)
        free

  let meeting h read p =
    Array.exists
      (fun e ->
        Array.for_all
          (fun q ->
            let cq = c read q in
            cq.ptr = Some e && (cq.s = Waiting || cq.s = Done))
          (H.edge_members h e))
      (H.incident h p)

  let leave_meeting h read p =
    Array.exists
      (fun e ->
        (c read p).ptr = Some e
        && Array.for_all
             (fun q ->
               let cq = c read q in
               cq.ptr <> Some e || cq.s = Done)
             (H.edge_members h e))
      (H.incident h p)

  let useless h read p =
    token h read p
    &&
    let cp = c read p in
    cp.s = Idle || (cp.s = Looking && free_edges h read p = [])

  let correct h ~read p =
    let cp = c read p in
    (cp.s <> Idle || cp.ptr = None)
    && (cp.s <> Waiting || ready h read p || meeting h read p)
    && (cp.s <> Done || meeting h read p || leave_meeting h read p)

  (* ---- actions, in the paper's code order (last = highest priority) ---- *)

  let cc_actions h : state Model.action list =
    let rd (ctx : state Model.ctx) = ctx.Model.read in
    let self (ctx : state Model.ctx) = ctx.Model.self in
    let me ctx = c (rd ctx) (self ctx) in
    let tc ctx = snd (ctx.Model.read ctx.Model.self) in
    [ { Model.label = "Step1";
        guard = (fun ctx -> ctx.Model.inputs.Model.request_in (self ctx) && (me ctx).s = Idle);
        apply = (fun ctx -> ({ (me ctx) with s = Looking; ptr = None }, tc ctx)) };
      { Model.label = "Step21";
        guard = (fun ctx -> max_to_free_edge h (rd ctx) (self ctx));
        apply =
          (fun ctx ->
            let e = P.choose_edge h (free_edges h (rd ctx) (self ctx)) in
            ({ (me ctx) with ptr = Some e }, tc ctx)) };
      { Model.label = "Step22";
        guard = (fun ctx -> join_local_max h (rd ctx) (self ctx));
        apply =
          (fun ctx ->
            let read = rd ctx and p = self ctx in
            match max_by_id h (cands h read p) with
            | Some leader -> ({ (me ctx) with ptr = (c read leader).ptr }, tc ctx)
            | None -> (me ctx, tc ctx)) };
      { Model.label = "Token1";
        guard = (fun ctx -> token h (rd ctx) (self ctx) <> (me ctx).tf);
        apply = (fun ctx -> ({ (me ctx) with tf = token h (rd ctx) (self ctx) }, tc ctx)) };
      { Model.label = "Token2";
        guard = (fun ctx -> useless h (rd ctx) (self ctx));
        apply =
          (fun ctx ->
            ({ (me ctx) with tf = false }, release h (rd ctx) (self ctx))) };
      { Model.label = "Step31";
        guard = (fun ctx -> ready h (rd ctx) (self ctx) && (me ctx).s = Looking);
        apply = (fun ctx -> ({ (me ctx) with s = Waiting }, tc ctx)) };
      { Model.label = "Step32";
        guard = (fun ctx -> meeting h (rd ctx) (self ctx) && (me ctx).s = Waiting);
        apply =
          (fun ctx ->
            (* 〈EssentialDiscussion〉 then Sp := done *)
            ({ (me ctx) with s = Done; disc = (me ctx).disc + 1 }, tc ctx)) };
      { Model.label = "Step4";
        guard =
          (fun ctx ->
            leave_meeting h (rd ctx) (self ctx)
            && ctx.Model.inputs.Model.request_out (self ctx));
        apply =
          (fun ctx ->
            let tc' =
              if token h (rd ctx) (self ctx) then release h (rd ctx) (self ctx)
              else tc ctx
            in
            ({ (me ctx) with s = Idle; ptr = None; tf = false }, tc')) };
    ]

  let stab_actions h : state Model.action list =
    let rd (ctx : state Model.ctx) = ctx.Model.read in
    let self (ctx : state Model.ctx) = ctx.Model.self in
    let me ctx = c (rd ctx) (self ctx) in
    let tc ctx = snd (ctx.Model.read ctx.Model.self) in
    [ { Model.label = "Stab1";
        guard =
          (fun ctx ->
            (not (correct h ~read:(rd ctx) (self ctx))) && (me ctx).s = Idle);
        apply = (fun ctx -> ({ (me ctx) with ptr = None }, tc ctx)) };
      { Model.label = "Stab2";
        guard =
          (fun ctx ->
            (not (correct h ~read:(rd ctx) (self ctx))) && (me ctx).s <> Idle);
        apply = (fun ctx -> ({ (me ctx) with s = Looking; ptr = None }, tc ctx)) };
    ]

  (* Fair composition by priorities: the token layer's self-disabling
     internal actions preempt the routine committee actions (so neither
     layer starves the other), but Stab1/Stab2 keep the paper's top
     priority — after at most one round every process is Correct forever
     (Corollary 3). *)
  let actions h =
    let lift = Model.lift_action ~get:snd ~set:(fun (cc, _) tc -> (cc, tc)) in
    let all = cc_actions h @ List.map lift (T.internal_actions h) @ stab_actions h in
    if B.invert_priorities then List.rev all else all

  let init h =
    let tc_init = T.init h in
    fun p -> ({ s = Idle; ptr = None; tf = false; disc = 0 }, tc_init p)

  let random_init h rng p =
    let statuses = [| Idle; Looking; Waiting; Done |] in
    let incident = H.incident h p in
    let ptr =
      if Random.State.bool rng then None
      else Some incident.(Random.State.int rng (Array.length incident))
    in
    ( { s = statuses.(Random.State.int rng 4);
        ptr;
        tf = Random.State.bool rng;
        disc = 0 },
      T.random_init h rng p )

  let observe h states p =
    let read = Array.get states in
    let cp = c read p in
    Obs.make ~pointer:cp.ptr ~token_flag:cp.tf ~has_token:(token h read p)
      ~discussions:cp.disc
      (to_obs_status cp.s)
end

module Make (T : Snapcc_token.Layer.S) (P : PARAMS) = Make_gen (T) (P) (Intact)

(** CC1 with the default edge choice. *)
module Std (T : Snapcc_token.Layer.S) = Make (T) (Default_params)

(** Broken variant: priority order inverted ([Stab] lowest, [Step1]
    highest).  The model checker's ground truth on whether CC1's safety
    closure survives a priority shuffle. *)
module Inverted_std (T : Snapcc_token.Layer.S) =
  Make_gen (T) (Default_params)
    (struct
      let invert_priorities = true
      let unchecked_ready = false
    end)

(** Broken variant: the [Ready] predicate ignores member statuses, letting
    committees convene around professors stuck in [done] — a guaranteed
    synchronization violation from suitably corrupted initial states. *)
module Unchecked_ready_std (T : Snapcc_token.Layer.S) =
  Make_gen (T) (Default_params)
    (struct
      let invert_priorities = false
      let unchecked_ready = true
    end)
