(** What the model checker needs on top of a {!Snapcc_runtime.Model.ALGO}:
    a finite per-process state domain and a canonicalization map.

    The algorithms carry two unbounded observability counters ([disc], and
    CC3's round-robin cursor [cur] which is only ever read modulo the
    process degree).  [canon] quotients them away so that the reachable
    quotient is finite; soundness requires that no guard and no statement
    distinguishes two states identified by [canon] — which the checker
    cross-validates against {e escapees}: canonical successor states that
    fall outside the declared [domain] product are interned, reported, and
    explored anyway, so a wrong domain declaration surfaces as a closure
    failure instead of silently shrinking the verified space. *)

module type S = sig
  include Snapcc_runtime.Model.ALGO

  val domain : Snapcc_hypergraph.Hypergraph.t -> int -> state list
  (** The (finite, canonical) state domain of one process.  Verification
      starts from {e every} configuration in the product of these domains —
      the arbitrary initial configurations of the snap-stabilization
      definition (§2.5).  A layer may declare a documented sub-domain (see
      {!Snapcc_token.Token_tree.domain}); the checker then proves closure
      of the sub-domain rather than of the full post-fault space. *)

  val canon : Snapcc_hypergraph.Hypergraph.t -> int -> state -> state
  (** Quotient a state onto the finite domain ([p]'s counters reset /
      normalized).  Must be the identity on guards and statements:
      behaviourally equal states map to the same representative. *)

  val rename :
    Snapcc_hypergraph.Hypergraph.t ->
    pi:int array -> eperm:int array -> int -> state -> state
  (** Structural transport: the state of process [p] re-expressed as a
      state of process [pi.(p)], with committee references mapped through
      the induced edge permutation [eperm] and vertex references through
      [pi].  This only {e proposes} symmetry candidates — admission is
      decided by the exact table-commutation pass
      ([Snapcc_statics.Symmetry]), so a best-effort transport is sound. *)

  val state_symmetries :
    Snapcc_hypergraph.Hypergraph.t -> (string * (int -> state -> state)) list
  (** Named internal symmetry candidates (identity vertex permutation,
      per-process state bijections on {!domain}), e.g. the vring token
      layer's Dijkstra counter gauge [v ↦ v+1 mod K].  Also admitted only
      through table commutation. *)
end
