lib/token/token_tree.ml: Array Format Leader List Random Snapcc_hypergraph Snapcc_runtime
