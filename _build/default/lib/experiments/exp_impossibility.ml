(** EXP-F2 — Fig. 2 / Theorem 1: Maximal Concurrency and Professor Fairness
    are incompatible.

    We reproduce the proof's adversarial computation on the 5-professor
    hypergraph [{1,2} {1,3,5} {3,4}]: a reactive workload staggers the
    meetings of [{1,2}] and [{3,4}] so that professors 1 and 3 are never
    simultaneously available — committee [{1,3,5}] is never free, and under
    CC1 (which releases the token when it cannot help, to preserve Maximal
    Concurrency) professor 5 waits forever.  Under CC2 with the {e same}
    request pattern, the token eventually reaches professor 5, locks
    professors 1 and 3 onto [{1,3,5}], and professor 5 meets: fairness at
    the cost of concurrency. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Obs = Snapcc_runtime.Obs
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload

(* Edge indices in [Families.fig2]: a = {1,2}, b = {1,3,5}, c = {3,4};
   vertex v carries professor v+1. *)
let ea = 0
let eb = 1
let ec = 2
let prof5 = 4

(* The proof's schedule, reactive to the observed configuration:
   - professors 3,4,5 start requesting only once [a] has convened
     (bootstrapping into configuration A of Fig. 2);
   - a meeting may end only while the other one is running, in strict
     alternation (the [turn] flag), so at least one of professors 1 and 3
     is always engaged and [b] is never free;
   - committee [b], should it ever meet (it does under CC2), may end
     freely.  Grants are sticky until the professor actually leaves.

   [RequestOut] must eventually hold during any meeting (§4.2), so a
   fallback grants it to any meeting older than [t_long] steps.  In CC1's
   staggered run the alternation resolves within a few dozen steps and the
   fallback never fires; in CC2's run the locks around [{1,3,5}] prevent
   the alternation, and the fallback is what lets meetings end — an
   adaptive adversary, as in the proof of Theorem 1. *)
let t_long = 400

let staggered h =
  let n = H.n h in
  let bootstrapped = ref false in
  let turn = ref `End_a in
  let granted = Array.make n false in
  let age = Array.make (H.m h) 0 in
  let last = ref None in
  let observe ~step:_ (obs : Obs.t array) =
    if Obs.meets h obs ea then bootstrapped := true;
    for e = 0 to H.m h - 1 do
      if Obs.meets h obs e then age.(e) <- age.(e) + 1 else age.(e) <- 0
    done;
    (match !last with
     | Some prev ->
       if Obs.meets h prev ea && (not (Obs.meets h obs ea)) && !turn = `End_a then
         turn := `End_c;
       if Obs.meets h prev ec && (not (Obs.meets h obs ec)) && !turn = `End_c then
         turn := `End_a
     | None -> ());
    last := Some (Array.copy obs);
    let both = Obs.meets h obs ea && Obs.meets h obs ec in
    Array.iteri
      (fun p (o : Obs.t) ->
        match o.Obs.status with
        | Obs.Idle | Obs.Looking -> granted.(p) <- false
        | Obs.Waiting | Obs.Done ->
          let member e = H.mem_edge h ~vertex:p ~eid:e in
          if Obs.meets h obs eb && member eb then granted.(p) <- true;
          if both && !turn = `End_a && member ea then granted.(p) <- true;
          if both && !turn = `End_c && member ec then granted.(p) <- true;
          for e = 0 to H.m h - 1 do
            if member e && age.(e) >= t_long then granted.(p) <- true
          done)
      obs
  in
  Workload.of_closures ~name:"fig2-staggered"
    ~inputs:(fun _obs ->
      { Snapcc_runtime.Model.request_in = (fun p -> p <= 1 || !bootstrapped);
        request_out = (fun p -> granted.(p)) })
    ~observe

type result = {
  cc1 : Driver.result;
  cc2 : Driver.result;
  cc1_ac_convenes : int;  (** meetings of [{1,2}] and [{3,4}] under CC1 *)
}

let run ?(quick = false) () =
  let steps = if quick then 6_000 else 40_000 in
  let h1 = Families.fig2 () in
  let r1 =
    Algos.Run_cc1.run ~seed:7 ~daemon:(Daemon.random_subset ())
      ~workload:(staggered h1) ~steps h1
  in
  let h2 = Families.fig2 () in
  let r2 =
    Algos.Run_cc2.run ~seed:7 ~daemon:(Daemon.random_subset ())
      ~workload:(staggered h2) ~steps h2
  in
  {
    cc1 = r1;
    cc2 = r2;
    cc1_ac_convenes = r1.Driver.convene_count.(ea) + r1.Driver.convene_count.(ec);
  }

let prof5_participations (r : Driver.result) = r.Driver.participations.(prof5)

let table r =
  let h = Families.fig2 () in
  let row label (res : Driver.result) =
    [ label;
      string_of_int res.Driver.steps;
      string_of_int res.Driver.summary.Snapcc_analysis.Metrics.convenes;
      String.concat "/"
        (Array.to_list (Array.map string_of_int res.Driver.participations));
      string_of_int res.Driver.participations.(prof5);
      string_of_int (List.length res.Driver.violations);
    ]
  in
  {
    Table.id = "fig2-impossibility";
    title =
      "Theorem 1: under the staggered schedule, CC1 (maximal concurrency) \
       starves professor 5; CC2 (fair) serves it";
    header =
      [ "algorithm"; "steps"; "convenes"; "participations(1..5)"; "prof5";
        "violations" ];
    rows = [ row "CC1 (max concurrency)" r.cc1; row "CC2 (fair)" r.cc2 ];
    notes =
      [ Printf.sprintf
          "CC1 kept meetings %s and %s alternating (%d convenes) while \
           professor 5 starved - the Fig. 2 cycle A->B->C."
          (Format.asprintf "%a" (H.pp_edge h) ea)
          (Format.asprintf "%a" (H.pp_edge h) ec)
          r.cc1_ac_convenes;
        "Expected (paper): prof5 participations = 0 under CC1, > 0 under CC2.";
      ];
  }
