(** Self-stabilizing leader election and BFS spanning tree (min-identifier).

    Classic construction (Dolev–Israeli–Moran style) with the distance bound
    [dist < n] killing ghost identifiers: each process maintains its claimed
    leader identifier, its distance to it, its parent, and — so that the
    Euler-tour token circulation can be evaluated locally — an explicit
    ordered list of its tree children (children cannot read their siblings'
    states, so the parent publishes the list). *)

module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model

type t = {
  lead : int;  (** claimed leader identifier *)
  dist : int;  (** claimed distance to the leader *)
  par : int;  (** parent vertex index, [-1] when claiming to be root *)
  childs : int array;  (** published ordered (ascending) tree children *)
}

let pp ppf s =
  Format.fprintf ppf "lead=%d dist=%d par=%d childs=[%s]" s.lead s.dist s.par
    (String.concat "," (Array.to_list (Array.map string_of_int s.childs)))

let equal (a : t) b =
  a.lead = b.lead && a.dist = b.dist && a.par = b.par && a.childs = b.childs

(* Lexicographically minimal (lead, dist, parent) claim available to [p]:
   either root itself, or adopt a neighbor's claim at distance + 1, provided
   the bound [dist + 1 < n] holds (ghost-leader elimination). *)
let candidate h read p =
  let n = H.n h in
  let best = ref (H.id h p, 0, -1) in
  Array.iter
    (fun q ->
      let sq : t = read q in
      if sq.dist >= 0 && sq.dist + 1 < n then begin
        let cand = (sq.lead, sq.dist + 1, q) in
        let better (l1, d1, p1) (l2, d2, p2) =
          l1 < l2 || (l1 = l2 && (d1 < d2 || (d1 = d2 && p1 < p2)))
        in
        (* prefer the self-root claim on full ties (it has par = -1 < q) *)
        if better cand !best then best := cand
      end)
    (H.neighbors h p);
  !best

let computed_children h read p =
  let me : t = read p in
  Array.to_list (H.neighbors h p)
  |> List.filter (fun q ->
         let sq : t = read q in
         sq.par = p && sq.lead = me.lead && sq.dist = me.dist + 1)
  |> Array.of_list

let tree_ok h read p =
  let me : t = read p in
  let l, d, a = candidate h read p in
  me.lead = l && me.dist = d && me.par = a

let childs_ok h read p = (read p).childs = computed_children h read p
let stable h read = List.for_all (fun p -> tree_ok h read p && childs_ok h read p) (List.init (H.n h) Fun.id)

let is_root h s ~self = s.dist = 0 && s.lead = H.id h self

(* Globally correct BFS tree rooted at the minimum identifier, used as the
   canonical initial configuration. *)
let init h =
  let n = H.n h in
  let root = ref 0 in
  for v = 1 to n - 1 do
    if H.id h v < H.id h !root then root := v
  done;
  let dist = Array.make n max_int and par = Array.make n (-1) in
  dist.(!root) <- 0;
  let queue = Queue.create () in
  Queue.add !root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun q ->
        if dist.(q) > dist.(v) + 1 then begin
          dist.(q) <- dist.(v) + 1;
          par.(q) <- v;
          Queue.add q queue
        end
        else if dist.(q) = dist.(v) + 1 && par.(q) > v then par.(q) <- v)
      (H.neighbors h v)
  done;
  (* min-index parent among valid witnesses, matching [candidate] *)
  for v = 0 to n - 1 do
    if v <> !root then begin
      let best = ref max_int in
      Array.iter
        (fun q -> if dist.(q) = dist.(v) - 1 && q < !best then best := q)
        (H.neighbors h v);
      par.(v) <- !best
    end
  done;
  fun p ->
    let childs =
      Array.to_list (H.neighbors h p)
      |> List.filter (fun q -> par.(q) = p)
      |> Array.of_list
    in
    { lead = H.id h !root; dist = dist.(p); par = par.(p); childs }

let random_init h rng p =
  let n = H.n h in
  let nbrs = H.neighbors h p in
  let max_id = Array.fold_left max 0 (Array.init n (H.id h)) in
  let childs =
    Array.to_list nbrs
    |> List.filter (fun _ -> Random.State.bool rng)
    |> Array.of_list
  in
  {
    lead = Random.State.int rng (max_id + 2);
    dist = Random.State.int rng n;
    par =
      (if Random.State.bool rng || Array.length nbrs = 0 then -1
       else nbrs.(Random.State.int rng (Array.length nbrs)));
    childs;
  }

let actions h : t Model.action list =
  [ { Model.label = "LE-childs";
      guard = (fun ctx -> not (childs_ok h ctx.Model.read ctx.Model.self));
      apply =
        (fun ctx ->
          { (ctx.Model.read ctx.Model.self) with
            childs = computed_children h ctx.Model.read ctx.Model.self }) };
    { Model.label = "LE-tree";
      guard = (fun ctx -> not (tree_ok h ctx.Model.read ctx.Model.self));
      apply =
        (fun ctx ->
          let l, d, a = candidate h ctx.Model.read ctx.Model.self in
          { (ctx.Model.read ctx.Model.self) with lead = l; dist = d; par = a }) };
  ]

(** Standalone wrapper for testing stabilization in isolation. *)
module Algo : Model.ALGO with type state = t = struct
  type state = t

  let name = "leader-election"
  let pp_state = pp
  let equal_state = equal
  let init h = init h
  let random_init h rng p = random_init h rng p
  let actions = actions

  let observe h states p =
    let s = states.(p) in
    Snapcc_runtime.Obs.make
      ~has_token:(is_root h s ~self:p)
      Snapcc_runtime.Obs.Looking
end
