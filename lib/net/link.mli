(** One directed fault-injecting link between two nodes.

    Fault-free (pure) plans keep the exact single-slot {e coalescing}
    semantics of the state-dissemination transformation in [Mp_engine]: a
    new snapshot overwrites whatever was in flight, so a zero-fault
    networked run is decision-for-decision equivalent to the in-process
    message-passing engine.  Once the plan introduces delay, duplication
    or reordering, the link switches to a bounded FIFO queue of capacity
    {!capacity}; overflow evicts the oldest snapshot (the coalescing
    limit case). *)

type entry = {
  state : string;  (** marshalled snapshot *)
  clock : int array;
      (** the sender's vector clock at send time; shared across the copies
          of one broadcast and never mutated by the link *)
  sent_step : int;
  sent_at : float;  (** wall clock, for latency accounting only *)
  eligible_at : int;  (** first scheduler step at which it may deliver *)
  corrupt : bool;  (** the fault injector will flip frame bytes on delivery *)
}

type t

val capacity : int

val create : src:int -> dst:int -> seed:int -> t
(** The link's fault generator is {!Faults.link_rng}[ ~seed ~src ~dst]. *)

val src : t -> int
val size : t -> int

type send_result = {
  copies : int;  (** snapshots enqueued (0 = random loss; 2 = duplicated) *)
  evicted : int;  (** oldest entries dropped by queue overflow *)
}

val send :
  t -> plan:Faults.plan -> step:int -> now:float -> state:string ->
  clock:int array -> send_result
(** Pass the snapshot through the fault plan and enqueue the surviving
    copies.  Partition filtering is the orchestrator's job (it is a
    global property of the step, not of one link). *)

val preload : t -> step:int -> state:string -> clock:int array -> unit
(** Enqueue a snapshot without consulting the fault plan — used to seed
    in-flight messages for randomised initial configurations and
    corruption bursts, mirroring [Mp_engine]'s channel initialisation. *)

val eligible : t -> step:int -> bool
(** Some queued snapshot may deliver at [step]. *)

val pop : t -> plan:Faults.plan -> step:int -> entry option
(** Remove and return the snapshot to deliver at [step]: the oldest
    eligible one, or — with probability [plan.reorder], when several are
    eligible — a uniformly random eligible one. *)

val clear : t -> unit
