module type S = sig
  include Snapcc_runtime.Model.ALGO

  val domain : Snapcc_hypergraph.Hypergraph.t -> int -> state list
  val canon : Snapcc_hypergraph.Hypergraph.t -> int -> state -> state

  val rename :
    Snapcc_hypergraph.Hypergraph.t ->
    pi:int array -> eperm:int array -> int -> state -> state
  (** Structural transport: the state of process [p] re-expressed as a
      state of process [pi.(p)], with committee references mapped through
      the induced edge permutation [eperm] and vertex references through
      [pi].  Proposes symmetry candidates only — admission is decided by
      exact table commutation, so a best-effort transport is sound. *)

  val state_symmetries :
    Snapcc_hypergraph.Hypergraph.t -> (string * (int -> state -> state)) list
  (** Named internal symmetry candidates (identity vertex permutation,
      per-process state bijection), e.g. a token layer's counter gauge. *)
end
