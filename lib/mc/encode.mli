(** Hash-consed state store and bit-packed configuration keys.

    Per process, every distinct (canonicalized) state is interned once and
    identified by a dense integer; the declared {!System.S.domain} is
    interned first, so domain states get ids [0 .. domain_count - 1] and any
    id beyond that range is an {e escapee} — a reachable state the domain
    declaration missed (a closure failure the checker reports).

    A configuration is the vector of its per-process state ids, packed into
    a single key: each process contributes [ceil log2 (4 * domain_count)]
    bits (headroom for escapees), and when the total fits a 62-bit word the
    key is one boxed-free [int] — the common case on the small instances the
    checker targets — with a byte-string fallback otherwise. *)

module Make (Sys : System.S) : sig
  type t

  val create : Snapcc_hypergraph.Hypergraph.t -> t
  (** Interns [Sys.domain h p] for every [p] (in list order). *)

  val n : t -> int
  (** Number of processes. *)

  val domain_count : t -> int -> int
  val product_size : t -> float
  (** [Π_p domain_count p] — the number of initial configurations. *)

  val intern : t -> int -> Sys.state -> int
  (** [intern t p s] canonicalizes [s] and returns its dense id, assigning
      a fresh one (an escapee, beyond the domain) if never seen.  Raises
      [Failure] if escapees overflow the headroom of the packed encoding —
      which means the declared domain is not remotely closed. *)

  val find : t -> int -> Sys.state -> int option
  (** Like {!intern} but never assigns: [None] if unknown. *)

  val state : t -> int -> int -> Sys.state
  (** [state t p id] — inverse of {!intern}. *)

  val count : t -> int -> int
  (** States interned so far for [p] (domain + escapees). *)

  val escapees : t -> (int * Sys.state) list
  (** [(process, state)] pairs interned beyond the declared domain. *)

  (** Configuration-key table: maps packed configurations to dense
      configuration ids (assigned in discovery order). *)
  type table

  val table : t -> table
  val table_count : table -> int

  val find_or_add : t -> table -> int array -> [ `Existing of int | `New of int ]
  (** Look the per-process id vector up, assigning the next configuration
      id if new. *)
end
