module Table = Snapcc_experiments.Table

type rule = Locality | Write_ownership | Determinism | Crash

let rule_name = function
  | Locality -> "locality"
  | Write_ownership -> "write-ownership"
  | Determinism -> "determinism"
  | Crash -> "crash"

type finding = {
  rule : rule;
  action : string;
  proc : int;
  count : int;
  detail : string;
}

type overlap = { labels : string list; times : int; example_proc : int }
type interference = { writer : string; reader : string; times : int }

type t = {
  algo : string;
  topo : string;
  tier : string;
  configs : int;
  evals : int;
  findings : finding list;
  waived : finding list;
  overlaps : overlap list;
  interference : interference list;
  dead : string list;
  dead_proven : string list;
  dead_unreached : string list;
}

let ok t = t.findings = []

let classify_dead ~proven ~live t =
  let dead_proven, rest =
    List.partition (fun a -> List.mem a proven) t.dead
  in
  let dead_unreached, dead =
    List.partition (fun a -> List.mem a live) rest
  in
  { t with
    dead;
    dead_proven = t.dead_proven @ dead_proven;
    dead_unreached = t.dead_unreached @ dead_unreached }

let summary_table reports =
  {
    Table.id = "lint";
    title = "static footprint/race/priority analysis";
    header =
      [ "algorithm"; "topology"; "tier"; "configs"; "evals"; "violations";
        "waived"; "overlaps"; "interference"; "dead"; "verdict" ];
    rows =
      List.map
        (fun t ->
          [ t.algo; t.topo; t.tier; Table.i t.configs; Table.i t.evals;
            Table.i (List.length t.findings); Table.i (List.length t.waived);
            Table.i (List.fold_left (fun a (o : overlap) -> a + o.times) 0 t.overlaps);
            Table.i
              (List.fold_left (fun a (x : interference) -> a + x.times) 0 t.interference);
            Table.i
              (List.length t.dead + List.length t.dead_proven
              + List.length t.dead_unreached);
            (if ok t then "ok" else "FAIL") ])
        reports;
    notes =
      [ "overlaps/interference count occurrences, not rule violations";
        "waived = findings matching the analyzer's allow list (documented \
         deviations)";
        "dead: sampled tier = guard never held on an explored configuration \
         (suspect, coverage-relative); exact tier = guard false on the \
         entire enumerated domain product (proof)" ];
  }

let detail_table t =
  let row tag f =
    [ tag; rule_name f.rule; f.action; Table.i f.proc; Table.i f.count; f.detail ]
  in
  {
    Table.id = "lint-detail";
    title = Printf.sprintf "%s on %s: findings" t.algo t.topo;
    header = [ "kind"; "rule"; "action"; "proc"; "count"; "detail" ];
    rows =
      List.map (row "violation") t.findings @ List.map (row "waived") t.waived;
    notes = [];
  }

let to_lines t =
  let dead_line tag a =
    Printf.sprintf "lint algo=%s topo=%s tier=%s %s action=%s" t.algo t.topo
      t.tier tag a
  in
  List.map
    (fun f ->
      Printf.sprintf
        "lint algo=%s topo=%s tier=%s rule=%s action=%s proc=%d count=%d detail=%s"
        t.algo t.topo t.tier (rule_name f.rule) f.action f.proc f.count f.detail)
    t.findings
  @ List.map (dead_line "suspect=dead-action") t.dead
  @ List.map (dead_line "proven=dead-action") t.dead_proven
  @ List.map (dead_line "suspect=unreached-in-sample") t.dead_unreached
