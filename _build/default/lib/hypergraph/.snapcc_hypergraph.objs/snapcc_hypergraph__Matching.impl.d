lib/hypergraph/matching.ml: Array Format Fun Hashtbl Hypergraph List
