type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_str f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* keep a decimal point so the value round-trips as a float *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_str f)
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ---- parsing ---- *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf u =
    (* encode a Unicode scalar value as UTF-8 *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | None -> fail "truncated escape"
         | Some c ->
           advance ();
           (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
              let u = hex4 () in
              let u =
                (* surrogate pair *)
                if u >= 0xD800 && u <= 0xDBFF && !pos + 6 <= n
                   && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  0x10000 + (((u - 0xD800) lsl 10) lor (lo - 0xDC00))
                end
                else u
              in
              utf8_of_code buf u
            | c -> fail (Printf.sprintf "bad escape \\%c" c)));
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_num_char = function
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

(* ---- accessors ---- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
