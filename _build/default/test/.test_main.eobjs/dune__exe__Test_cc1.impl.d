test/test_cc1.ml: Alcotest Array Format Fun List Printf QCheck QCheck_alcotest Snapcc_analysis Snapcc_experiments Snapcc_hypergraph Snapcc_runtime Snapcc_workload
