(** Pre-instantiated algorithm modules and their drivers: the combinations
    every experiment, test and benchmark draws from. *)

module Token_tree = Snapcc_token.Token_tree
module Token_vring = Snapcc_token.Token_vring
module Token_null = Snapcc_token.Token_null

(* The paper's algorithms over the honest (tree) substrate. *)
module Cc1 = Snapcc_core.Cc1.Std (Token_tree)
module Cc2 = Snapcc_core.Cc23.Cc2_std (Token_tree)
module Cc3 = Snapcc_core.Cc23.Cc3_std (Token_tree)

(* Same algorithms over the virtual-ring oracle (fast stabilization; used
   to separate CC-layer behaviour from TC-layer behaviour). *)
module Cc1_vring = Snapcc_core.Cc1.Std (Token_vring)
module Cc2_vring = Snapcc_core.Cc23.Cc2_std (Token_vring)
module Cc3_vring = Snapcc_core.Cc23.Cc3_std (Token_vring)

(* Ablations and §6 baselines. *)
module Cc1_no_token = Snapcc_core.Cc1.Std (Token_null)
module Token_only = Snapcc_core.Cc23.Token_only_std (Token_vring)
module Cc1_widest =
  Snapcc_core.Cc1.Make (Token_tree) (Snapcc_core.Cc_common.Widest_params)
module Cc2_eager = Snapcc_core.Cc23.Eager_release_std (Token_tree)
module Dining = Snapcc_baselines.Dining
module Central = Snapcc_baselines.Central

(* Drivers. *)
module Run_cc1 = Driver.Make (Cc1)
module Run_cc2 = Driver.Make (Cc2)
module Run_cc3 = Driver.Make (Cc3)
module Run_cc1_vring = Driver.Make (Cc1_vring)
module Run_cc2_vring = Driver.Make (Cc2_vring)
module Run_cc3_vring = Driver.Make (Cc3_vring)
module Run_cc1_no_token = Driver.Make (Cc1_no_token)
module Run_token_only = Driver.Make (Token_only)
module Run_cc1_widest = Driver.Make (Cc1_widest)
module Run_cc2_eager = Driver.Make (Cc2_eager)
module Run_dining = Driver.Make (Dining)
module Run_central = Driver.Make (Central)

type runner = {
  label : string;
  run :
    ?seed:int ->
    ?init:[ `Canonical | `Random ] ->
    ?faults:(step:int -> int list) ->
    ?stop_when:(Snapcc_runtime.Obs.t array -> bool) ->
    ?record_trace:bool ->
    ?telemetry:Snapcc_telemetry.Hub.t ->
    daemon:Snapcc_runtime.Daemon.t ->
    workload:Snapcc_workload.Workload.t ->
    steps:int ->
    Snapcc_hypergraph.Hypergraph.t ->
    Driver.result;
}

(* The runner table used by sweep experiments. *)
let paper_algorithms () =
  [ { label = "CC1";
      run = (fun ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h ->
          Run_cc1.run ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h) };
    { label = "CC2";
      run = (fun ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h ->
          Run_cc2.run ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h) };
    { label = "CC3";
      run = (fun ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h ->
          Run_cc3.run ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h) };
  ]

let baseline_algorithms () =
  [ { label = "token-only";
      run = (fun ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h ->
          Run_token_only.run ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h) };
    { label = "dining";
      run = (fun ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h ->
          Run_dining.run ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h) };
    { label = "central";
      run = (fun ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h ->
          Run_central.run ?seed ?init ?faults ?stop_when ?record_trace ?telemetry ~daemon ~workload ~steps h) };
  ]

let all_algorithms () = paper_algorithms () @ baseline_algorithms ()
