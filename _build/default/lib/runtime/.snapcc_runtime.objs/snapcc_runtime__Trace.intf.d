lib/runtime/trace.mli: Format Model Obs Snapcc_hypergraph
