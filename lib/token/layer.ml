(** The token-circulation module [TC] of the paper (§4.1, Property 1).

    The committee-coordination layer sees [TC] as a black box providing the
    [Token(p)] input predicate and the [ReleaseToken(p)] statement; [TC]
    additionally owns internal stabilization actions (leader election, tree
    maintenance, privilege forwarding) that the fair composition [CC ∘ TC]
    schedules alongside the committee actions.

    Property 1 requires that, once stabilized, (i) at most one process
    satisfies [Token(p)] at a time, and (ii) releasing makes every process
    hold the token infinitely often — provided releases keep happening,
    which the CC layers guarantee (CC1's [Token2]/[Step4]; CC2's Lemma 11). *)

module type S = sig
  type state

  val name : string
  val pp_state : Format.formatter -> state -> unit
  val equal_state : state -> state -> bool

  val init : Snapcc_hypergraph.Hypergraph.t -> int -> state
  (** Canonical initial state (a legitimate configuration with one token). *)

  val random_init :
    Snapcc_hypergraph.Hypergraph.t -> Random.State.t -> int -> state
  (** Arbitrary state over the whole domain (transient-fault outcome):
      several tokens, none, broken trees — the layer must recover. *)

  val has_token :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> bool
  (** [Token(p)].  Only reads the states of [p] and of its neighbors. *)

  val release :
    Snapcc_hypergraph.Hypergraph.t -> read:(int -> state) -> int -> state
  (** [ReleaseToken(p)]: the emulated action [T].  New local state of [p];
      identity when [p] does not actually hold a token. *)

  val internal_actions :
    Snapcc_hypergraph.Hypergraph.t -> state Snapcc_runtime.Model.action list
  (** Stabilization and forwarding actions, in code order (last = highest
      priority).  Compositions append them {e after} the CC actions, giving
      them priority; they are all self-disabling, so the CC layer is never
      starved (fair composition, §2.2). *)

  val domain : Snapcc_hypergraph.Hypergraph.t -> int -> state list
  (** A finite per-process state domain for exhaustive model checking
      ([lib/mc]): the states snap-stabilization quantifies over.  Layers
      with a huge internal state space (the tree substrate) may return a
      documented sub-domain; the checker verifies closure under transitions
      and interns — and reports — any state outside the declared domain. *)

  val rename :
    Snapcc_hypergraph.Hypergraph.t -> pi:int array -> int -> state -> state
  (** Structural transport under the vertex permutation [pi]: the state of
      process [p], re-expressed as a state of process [pi.(p)] (vertex
      references mapped through [pi]).  This only {e proposes} a symmetry
      candidate — whether the transported layer really behaves identically
      is arbitrated later by exact table commutation
      ([Snapcc_statics.Symmetry]), so a best-effort transport is sound. *)

  val state_symmetries :
    Snapcc_hypergraph.Hypergraph.t -> (string * (int -> state -> state)) list
  (** Named {e internal} symmetry candidates: per-process state bijections
      (on {!domain}) that the layer believes commute with every action even
      under the identity vertex permutation — e.g. Dijkstra's counter gauge
      [v ↦ v+1 mod K] on the virtual ring.  Also subject to table
      commutation before being admitted. *)
end

(** A standalone [Model.ALGO] wrapper so a token layer can be run and tested
    in isolation: release is exposed as an always-ready action guarded by
    [has_token]. *)
module As_algo (T : S) : Snapcc_runtime.Model.ALGO with type state = T.state =
struct
  module Model = Snapcc_runtime.Model

  type state = T.state

  let name = T.name ^ "/standalone"
  let pp_state = T.pp_state
  let equal_state = T.equal_state
  let init = T.init
  let random_init = T.random_init

  (* [T] first (lowest priority): the self-disabling internal stabilization
     actions must preempt releases, mirroring the fair composition used by
     [CC ∘ TC] — otherwise a degenerate privilege (e.g. a root with a stale
     child list) could starve the stabilization layer. *)
  let actions h =
    { Model.label = "T";
      guard = (fun ctx -> T.has_token h ~read:ctx.Model.read ctx.Model.self);
      apply = (fun ctx -> T.release h ~read:ctx.Model.read ctx.Model.self) }
    :: T.internal_actions h

  let observe h states p =
    let read = Array.get states in
    Snapcc_runtime.Obs.make ~has_token:(T.has_token h ~read p)
      ~token_flag:(T.has_token h ~read p) Snapcc_runtime.Obs.Looking
end
