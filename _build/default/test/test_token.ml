(* The TC substrate: leader election, Euler-tour DFS token circulation,
   virtual-ring oracle — closure, convergence and Property 1 (§4.1). *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Model = Snapcc_runtime.Model
module Daemon = Snapcc_runtime.Daemon
module Obs = Snapcc_runtime.Obs
module Leader = Snapcc_token.Leader
module Token_tree = Snapcc_token.Token_tree
module Token_vring = Snapcc_token.Token_vring

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let topologies () =
  [ ("fig1", Families.fig1 ());
    ("fig3", Families.fig3 ());
    ("path6", Families.path 6);
    ("ring7", Families.pair_ring 7);
    ("star6", Families.star 6);
    ("shuffled-fig1", Families.with_shuffled_ids ~seed:3 (Families.fig1 ()));
  ]

(* --- leader election -------------------------------------------------- *)

module LE = Snapcc_runtime.Engine.Make (Leader.Algo)

let min_id h =
  List.fold_left min max_int (List.init (H.n h) (H.id h))

let test_leader_canonical_stable () =
  List.iter
    (fun (name, h) ->
      let eng = LE.create ~daemon:Daemon.synchronous h in
      check (name ^ ": canonical init is terminal") true
        (LE.is_terminal eng ~inputs:Model.no_inputs);
      check (name ^ ": stable predicate") true (Leader.stable h (LE.state eng)))
    (topologies ())

let converge_leader ~seed ~daemon h =
  let eng = LE.create ~seed ~daemon ~init:`Random h in
  let outcome =
    LE.run eng ~steps:(200 * H.n h * H.n h) ~inputs_at:(fun _ -> Model.no_inputs) ()
  in
  (outcome, eng)

let test_leader_convergence () =
  List.iter
    (fun (name, h) ->
      List.iter
        (fun daemon ->
          List.iter
            (fun seed ->
              let outcome, eng = converge_leader ~seed ~daemon h in
              check
                (Printf.sprintf "%s/%s/seed%d terminates" name (Daemon.name daemon) seed)
                true (outcome = `Terminal);
              check (name ^ ": converged to a stable tree") true
                (Leader.stable h (LE.state eng));
              (* the elected leader is the minimum identifier *)
              let lead0 = (LE.state eng 0).Leader.lead in
              check_int (name ^ ": min-id leader") (min_id h) lead0;
              (* everyone agrees *)
              for p = 1 to H.n h - 1 do
                check_int "agreement" lead0 (LE.state eng p).Leader.lead
              done;
              (* parent pointers form a spanning tree: n-1 non-root parents,
                 every child list consistent *)
              let root = H.vertex_of_id h (min_id h) in
              check_int "root has no parent" (-1) (LE.state eng root).Leader.par;
              for p = 0 to H.n h - 1 do
                if p <> root then begin
                  let par = (LE.state eng p).Leader.par in
                  check "parent is neighbor" true (H.are_neighbors h p par);
                  check_int "distance decreases" ((LE.state eng p).Leader.dist - 1)
                    (LE.state eng par).Leader.dist;
                  check "published in parent's child list" true
                    (Array.exists (fun c -> c = p) (LE.state eng par).Leader.childs)
                end
              done)
            [ 0; 1; 2 ])
        (Daemon.all_standard ()))
    (topologies ())

let test_leader_closure () =
  (* once stable, no action is ever enabled again *)
  let h = Families.fig1 () in
  let eng = LE.create ~daemon:(Daemon.random_subset ()) h in
  check "closure" true (LE.is_terminal eng ~inputs:Model.no_inputs)

(* --- token layers: generic checks over Layer.As_algo ------------------ *)

module type LAYER_TESTS = sig
  include Snapcc_token.Layer.S
end

let token_count obs = Array.fold_left (fun a (o : Obs.t) -> if o.Obs.has_token then a + 1 else a) 0 obs

module Layer_checks (T : LAYER_TESTS) = struct
  module A = Snapcc_token.Layer.As_algo (T)
  module E = Snapcc_runtime.Engine.Make (A)

  let unique_at_init h =
    let eng = E.create ~daemon:Daemon.synchronous h in
    token_count (E.obs eng) = 1

  (* run from a random configuration; after a burn-in, Property 1 must hold:
     never more than one Token(p), and every process holds it infinitely
     often (here: at least [laps] times within the horizon). *)
  let circulation ?(laps = 3) ~seed ~daemon h =
    let n = H.n h in
    let eng = E.create ~seed ~daemon ~init:`Random h in
    let burn_in = 400 * n * n in
    let horizon = burn_in + (600 * n * n) in
    let holds = Array.make n 0 in
    let max_simultaneous = ref 0 in
    let on_step eng (r : Model.step_report) =
      if r.Model.step >= burn_in then begin
        let obs = E.obs eng in
        max_simultaneous := max !max_simultaneous (token_count obs);
        Array.iteri
          (fun p (o : Obs.t) ->
            (* count actual acquisitions: a release by p means p held it *)
            ignore o;
            if List.mem_assoc p r.Model.executed
               && List.assoc p r.Model.executed = "T" then
              holds.(p) <- holds.(p) + 1)
          obs
      end
    in
    let _ = E.run eng ~steps:horizon ~inputs_at:(fun _ -> Model.no_inputs) ~on_step () in
    let everyone = Array.for_all (fun c -> c >= laps) holds in
    (!max_simultaneous <= 1, everyone)
end

module Tree_checks = Layer_checks (Token_tree)
module Vring_checks = Layer_checks (Token_vring)

let test_vring_init_unique () =
  List.iter
    (fun (name, h) ->
      check (name ^ ": unique initial token") true (Vring_checks.unique_at_init h))
    (topologies ())

let test_tree_init_unique () =
  List.iter
    (fun (name, h) ->
      check (name ^ ": unique initial token") true (Tree_checks.unique_at_init h))
    (topologies ())

let test_vring_property1 () =
  List.iter
    (fun (name, h) ->
      List.iter
        (fun seed ->
          let unique, everyone =
            Vring_checks.circulation ~seed ~daemon:(Daemon.random_subset ()) h
          in
          check (name ^ ": single token after stabilization") true unique;
          check (name ^ ": circulation reaches everyone") true everyone)
        [ 10; 11 ])
    [ ("fig1", Families.fig1 ()); ("path5", Families.path 5) ]

let test_tree_property1 () =
  List.iter
    (fun (name, h) ->
      List.iter
        (fun (seed, daemon) ->
          let unique, everyone = Tree_checks.circulation ~seed ~daemon h in
          check
            (Printf.sprintf "%s/%s: single token after stabilization" name
               (Daemon.name daemon))
            true unique;
          check
            (Printf.sprintf "%s/%s: circulation reaches everyone" name
               (Daemon.name daemon))
            true everyone)
        [ (20, Daemon.synchronous); (21, Daemon.random_subset ()); (22, Daemon.central ()) ])
    (topologies ())

let test_tree_dfs_order () =
  (* on a path with canonical init, the token visits processes in DFS
     (here: linear) order *)
  let h = Families.path 4 in
  let module E = Tree_checks.E in
  let eng = E.create ~daemon:Daemon.synchronous h in
  let visits = ref [] in
  let on_step _ (r : Model.step_report) =
    List.iter (fun (p, l) -> if l = "T" then visits := p :: !visits) r.Model.executed
  in
  let _ = E.run eng ~steps:120 ~inputs_at:(fun _ -> Model.no_inputs) ~on_step () in
  let v = List.rev !visits in
  (* root is min id = vertex 0; DFS of the path is 0,1,2,3 repeating *)
  check "at least two laps" true (List.length v >= 8);
  let rec prefix_ok = function
    | a :: b :: rest, x :: y :: more -> a = x && b = y && prefix_ok (rest, more)
    | _, [] -> true
    | _ -> true
  in
  ignore prefix_ok;
  let expected = [ 0; 1; 2; 3; 0; 1; 2; 3 ] in
  let taken = List.filteri (fun i _ -> i < 8) v in
  Alcotest.(check (list int)) "DFS visit order" expected taken

let test_release_without_token_is_noop () =
  let h = Families.path 3 in
  let init = Token_tree.init h in
  let states = Array.init (H.n h) init in
  let read = Array.get states in
  (* canonical init: token at the root (vertex 0) *)
  check "root holds" true (Token_tree.has_token h ~read 0);
  check "non-root does not" false (Token_tree.has_token h ~read 1);
  let s1 = Token_tree.release h ~read 1 in
  check "release without token is identity" true (Token_tree.equal_state s1 (read 1))

(* The structural uniqueness argument behind the PIF wave: at most one
   process can hold a token whose parent chain is consistent, once the tree
   has stabilized.  We check it as an invariant over entire runs. *)
let test_consistent_chain_unique () =
  let h = Families.fig3 () in
  let module E = Tree_checks.E in
  List.iter
    (fun seed ->
      let eng = E.create ~seed ~init:`Random ~daemon:(Daemon.random_subset ()) h in
      let burn_in = 300 * H.n h in
      let violations = ref 0 in
      let on_step eng (r : Model.step_report) =
        if r.Model.step > burn_in then begin
          let read = E.state eng in
          let holders =
            List.filter
              (fun p -> Token_tree.has_token h ~read p)
              (List.init (H.n h) Fun.id)
          in
          if List.length holders > 1 then incr violations
        end
      in
      let _ =
        E.run eng ~steps:(3 * burn_in) ~inputs_at:(fun _ -> Model.no_inputs)
          ~on_step ()
      in
      check_int (Printf.sprintf "seed %d: unique consistent token" seed) 0 !violations)
    [ 31; 32; 33 ]

(* qcheck: from arbitrary configurations on random topologies, the tree
   layer always converges to a unique circulating token *)
let qcheck_tree_stabilizes =
  QCheck.Test.make ~name:"token-tree stabilizes on random topologies" ~count:15
    (QCheck.make
       ~print:(fun (s, n, m) -> Printf.sprintf "seed=%d n=%d m=%d" s n m)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 4 8) (int_range 3 6)))
    (fun (seed, n, m) ->
      let h = Families.random ~seed ~n ~m () in
      let unique, everyone =
        Tree_checks.circulation ~laps:2 ~seed ~daemon:(Daemon.random_subset ()) h
      in
      unique && everyone)

let suite =
  [ ( "leader",
      [ Alcotest.test_case "canonical init stable" `Quick test_leader_canonical_stable;
        Alcotest.test_case "convergence (all daemons)" `Slow test_leader_convergence;
        Alcotest.test_case "closure" `Quick test_leader_closure;
      ] );
    ( "token",
      [ Alcotest.test_case "vring: unique initial token" `Quick test_vring_init_unique;
        Alcotest.test_case "tree: unique initial token" `Quick test_tree_init_unique;
        Alcotest.test_case "vring: Property 1" `Slow test_vring_property1;
        Alcotest.test_case "tree: Property 1" `Slow test_tree_property1;
        Alcotest.test_case "tree: DFS visit order" `Quick test_tree_dfs_order;
        Alcotest.test_case "release without token" `Quick test_release_without_token_is_noop;
        Alcotest.test_case "consistent chain uniqueness" `Quick
          test_consistent_chain_unique;
      ] );
    ("token:qcheck", [ QCheck_alcotest.to_alcotest ~long:false qcheck_tree_stabilizes ]);
  ]
