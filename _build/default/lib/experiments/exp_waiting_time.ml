(** EXP-T6 — Theorem 6: the waiting time of [CC2 ∘ TC] is
    O(maxDisc × n) rounds.

    Sweep the ring size [n] and the discussion length [maxDisc] under
    always-requesting professors, measure the maximum waiting time in
    rounds (from the moment a professor starts waiting to its next
    meeting), and report the ratio to [maxDisc × n]: the paper predicts a
    bounded ratio as both parameters grow. *)

module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics

type point = {
  n : int;
  max_disc : int;
  max_wait_rounds : int;
  mean_wait_rounds : float;
  p50_wait_rounds : int;
  p95_wait_rounds : int;
  ratio : float;  (** max_wait_rounds / (maxDisc * n) *)
  served : int;
}

type result = point list

let measure ~seeds ~steps ~n ~max_disc =
  let h = Families.pair_ring n in
  let worst = ref 0 and all_waits = ref [] in
  List.iter
    (fun seed ->
      let r =
        Algos.Run_cc2.run ~seed ~daemon:(Daemon.random_subset ())
          ~workload:(Workload.always_requesting ~disc_len:(fun _ -> max_disc) h)
          ~steps h
      in
      let s = r.Driver.summary in
      worst := max !worst s.Metrics.max_wait_rounds;
      all_waits := s.Metrics.completed_waits_rounds @ !all_waits)
    seeds;
  {
    n;
    max_disc;
    max_wait_rounds = !worst;
    mean_wait_rounds = Metrics.mean !all_waits;
    p50_wait_rounds = Metrics.percentile 0.5 !all_waits;
    p95_wait_rounds = Metrics.percentile 0.95 !all_waits;
    ratio = float_of_int !worst /. float_of_int (max_disc * n);
    served = List.length !all_waits;
  }

let run ?(quick = false) () : result =
  let ns = if quick then [ 4; 6; 8 ] else [ 4; 6; 8; 10; 12; 16 ] in
  let discs = if quick then [ 1; 4 ] else [ 1; 4; 16 ] in
  let seeds = Exp_common.seeds ~quick in
  List.concat_map
    (fun n ->
      List.map
        (fun d -> measure ~seeds ~steps:(4_000 * (if quick then 1 else 2)) ~n ~max_disc:d)
        discs)
    ns

let table (r : result) =
  {
    Table.id = "thm6-waiting";
    title = "Waiting time of CC2 on pair rings: O(maxDisc x n) rounds (Theorem 6)";
    header =
      [ "n"; "maxDisc"; "max wait (rounds)"; "mean"; "p50"; "p95";
        "ratio max/(maxDisc*n)"; "served waits" ];
    rows =
      List.map
        (fun p ->
          [ Table.i p.n; Table.i p.max_disc; Table.i p.max_wait_rounds;
            Table.f1 p.mean_wait_rounds; Table.i p.p50_wait_rounds;
            Table.i p.p95_wait_rounds; Table.f2 p.ratio; Table.i p.served ])
        r;
    notes =
      [ "The paper predicts the ratio column stays bounded by a constant as \
         n and maxDisc grow (Theorem 6).";
      ];
  }

let max_ratio (r : result) = List.fold_left (fun a p -> max a p.ratio) 0. r
