(** Rendering of model-checking runs: one record per (system, token,
    topology) check, a column-aligned summary table (the [ccsim check]
    matrix, also recorded in EXPERIMENTS.md) and a verdict. *)

type t = {
  algo : string;
  token : string;
  topo : string;
  product : float;  (** initial configurations (domain product) *)
  configs : int;  (** configurations explored *)
  transitions : int;
  complete : bool;
  escapees : int;  (** closure failures of the declared domain *)
  dead : string list;  (** actions never executed (suspect, non-fatal) *)
  safety_violations : int;
  first_rule : string option;
  progress_checked : bool;
  sccs : int;
  largest_scc : int;
  deadlocks : int;
  livelocks : int;
  seconds : float;  (** CPU seconds spent exploring *)
}

type outcome = Pass | Fail | Incomplete

val outcome : t -> outcome
(** [Fail] on any safety violation, escapee, deadlock or livelock;
    [Incomplete] when the exploration was capped before a verdict. *)

val outcome_name : outcome -> string
val states_per_sec : t -> float
val summary_table : t list -> Snapcc_experiments.Table.t
val pp : Format.formatter -> t -> unit
