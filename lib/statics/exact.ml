(* The exact static-analysis tier: a thin reporting layer over the dense
   guard/footprint tables of [Snapcc_mc.Tables].

   Where [Analyze] samples reachable configurations (verdicts relative to
   coverage), this tier enumerates every process's full support product
   over the declared domains under all input modes, so a clean pass is a
   proof over the enumerated families, a never-true guard a dead-action
   proof, and the priority-overlap / interference statistics are exact
   counts rather than samples. *)

module H = Snapcc_hypergraph.Hypergraph
module Tables = Snapcc_mc.Tables

type coverage = {
  cells : int;  (** (cell, mode) pairs enumerated, all processes *)
  seconds : float;
  complete : bool;  (** every pass enumerated: dead verdicts are proofs *)
  stored : bool;  (** every pass also stored: tables usable by {!Explore} *)
  tainted : bool;  (** in-place mutation corrupted the interned stores *)
  live : string list;  (** actions whose guard held somewhere *)
  proc_status : (int * string) list;
      (** non-[`Built] processes: [(proc, reason)] *)
}

(* A sampled violation is subsumed when the exact tier reproduced it
   (finding or waived) at the same rule on the same process: exact
   write-ownership evidence is fingerprint-based and carries no action
   attribution (label "*"), so the action only has to agree when the exact
   side names one. *)
let agreement ~exact ~sampled =
  let witnesses =
    exact.Report.findings @ exact.Report.waived
  in
  List.filter
    (fun (f : Report.finding) ->
      not
        (List.exists
           (fun (g : Report.finding) ->
             g.Report.rule = f.Report.rule
             && g.Report.proc = f.Report.proc
             && (g.Report.action = f.Report.action || g.Report.action = "*"))
           witnesses))
    sampled.Report.findings

module Make (Sys : Snapcc_mc.System.S) = struct
  module Tb = Tables.Make (Sys)

  let finding_of_incident (i : Tables.incident) count =
    match i with
    | Tables.Nonlocal_read { proc; action; read } ->
      { Report.rule = Report.Locality;
        action;
        proc;
        count;
        detail = Printf.sprintf "reads process %d, not a neighbor" read }
    | Tables.Foreign_mutation { proc; victim } ->
      { Report.rule = Report.Write_ownership;
        action = "*";
        proc;
        count;
        detail =
          Printf.sprintf
            "enumerating process %d's actions mutated an interned state of \
             process %d in place"
            proc victim }
    | Tables.Nondet { proc; action; what } ->
      { Report.rule = Report.Determinism;
        action;
        proc;
        count;
        detail =
          (match what with
          | `Guard -> "guard value differs across evaluations of one cell"
          | `Apply -> "statement result differs across evaluations of one cell") }
    | Tables.Crashed { proc; action; what; exn } ->
      { Report.rule = Report.Crash;
        action;
        proc;
        count;
        detail =
          Printf.sprintf "%s raised %s"
            (match what with `Guard -> "guard" | `Apply -> "statement")
            exn }

  let run ?(verify = true) ?cap ?store_cap ?interference_cap
      ?(allow = []) ~algo ~topo h =
    let t = Tb.build ~verify ?cap ?store_cap h in
    let n = H.n h in
    let labels = Tb.labels t in
    (* aggregate incidents by (rule, action, proc), keeping the first
       detail as the exhibit *)
    let agg : (Report.rule * string * int, int * string) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun (i, count) ->
        let f = finding_of_incident i count in
        let key = (f.Report.rule, f.Report.action, f.Report.proc) in
        match Hashtbl.find_opt agg key with
        | Some (c, d) -> Hashtbl.replace agg key (c + f.Report.count, d)
        | None -> Hashtbl.add agg key (f.Report.count, f.Report.detail))
      (Tb.incidents t);
    let all_findings =
      Hashtbl.fold
        (fun (rule, action, proc) (count, detail) acc ->
          { Report.rule; action; proc; count; detail } :: acc)
        agg []
      |> List.sort compare
    in
    let findings, waived =
      List.partition
        (fun (f : Report.finding) -> not (List.mem f.Report.rule allow))
        all_findings
    in
    let overlaps =
      List.map
        (fun (labels, times, example_proc) ->
          { Report.labels; times; example_proc })
        (Tb.overlaps t)
      |> List.sort (fun (a : Report.overlap) (b : Report.overlap) ->
             compare (b.times, a.labels) (a.times, b.labels))
    in
    let interference =
      List.map
        (fun (writer, reader, times) -> { Report.writer; reader; times })
        (Tb.interference ?cap:interference_cap t)
      |> List.sort (fun (a : Report.interference) (b : Report.interference) ->
             compare (b.times, a.writer, a.reader) (a.times, b.writer, b.reader))
    in
    let complete = Tb.complete t in
    let guard_true = Tb.guard_true t in
    let never =
      List.filter_map
        (fun i -> if guard_true.(i) = 0 then Some labels.(i) else None)
        (List.init (Array.length labels) Fun.id)
    in
    let live =
      List.filter_map
        (fun i -> if guard_true.(i) > 0 then Some labels.(i) else None)
        (List.init (Array.length labels) Fun.id)
    in
    let report =
      { Report.algo;
        topo;
        tier = "exact";
        configs = Tb.cells t;
        evals = Tb.cells t;
        findings;
        waived;
        overlaps;
        interference;
        (* without full enumeration a never-true guard is only a suspect *)
        dead = (if complete then [] else never);
        dead_proven = (if complete then never else []);
        dead_unreached = [];
      }
    in
    let proc_status =
      List.filter_map
        (fun p ->
          match Tb.status t p with
          | `Built -> None
          | `Streamed r | `Skipped r -> Some (p, r))
        (List.init n Fun.id)
    in
    let coverage =
      { cells = Tb.cells t;
        seconds = Tb.seconds t;
        complete;
        stored = Tb.built t;
        tainted = Tb.tainted t;
        live;
        proc_status }
    in
    (report, coverage, t)
end
