lib/experiments/exp_token.ml: Array Exp_common Hashtbl List Printf Snapcc_hypergraph Snapcc_runtime Snapcc_token Table
