(** EXP-MP — the paper's first future-work item (§7): committee
    coordination in the message-passing model.

    We run the {e unchanged} CC1/CC2 algorithms through the classical
    state-dissemination transformation ({!Snapcc_mp.Mp_engine}): guards are
    evaluated against cached neighbor states refreshed by heartbeat
    messages over coalescing links, under an adversarial-but-fair scheduler
    and with transient faults hitting cores, caches and channels mid-run.

    What the experiment establishes, on the sampled grid:
    - the specification verdict (violations of synchronization / 2-phase
      discussion caused by stale views, if any) — the paper leaves the
      message-passing design open, so this measures how far the naive
      emulation gets;
    - liveness and fairness figures, and the message cost per meeting;
    - staleness actually exercised (max cache age), to show the runs are
      genuinely asynchronous rather than lockstep. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Obs = Snapcc_runtime.Obs
module Workload = Snapcc_workload.Workload
module Spec = Snapcc_analysis.Spec
module Metrics = Snapcc_analysis.Metrics

type run_stats = {
  algo : string;
  topo : string;
  bias : float;
  steps : int;
  convenes : int;
  violations : int;
  sync_violations : int;  (** exclusion + synchronization (expect 0) *)
  disc_violations : int;  (** essential/voluntary discussion (the gap) *)
  unserved : int;
  msgs_per_convene : float;
  max_staleness : int;
}

type result = run_stats list

module Mp_run (A : Snapcc_runtime.Model.ALGO) = struct
  module E = Snapcc_mp.Mp_engine.Make (A)

  let run ~seed ~bias ~steps ~fault_at h =
    let eng = E.create ~seed ~init:`Random ~deliver_bias:bias h in
    let workload = Workload.always_requesting h in
    let spec = Spec.create h ~initial:(E.obs eng) in
    let metrics = Metrics.create h ~initial:(E.obs eng) in
    let before = ref (E.obs eng) in
    for i = 0 to steps - 1 do
      if i = fault_at then begin
        E.corrupt eng ~victims:(List.init (max 1 (H.n h / 3)) (fun k -> (3 * k) mod H.n h));
        let corrupted = E.obs eng in
        Spec.on_fault spec corrupted;
        before := corrupted
      end;
      let inputs = Workload.inputs workload !before in
      let _event = E.step eng ~inputs in
      let after = E.obs eng in
      Spec.on_step spec ~step:i ~request_out:inputs.Snapcc_runtime.Model.request_out
        ~before:!before ~after;
      Metrics.on_step metrics ~step:i ~round:0 ~before:!before ~after;
      Workload.observe workload ~step:i after;
      before := after
    done;
    let summary = Metrics.finish metrics ~step:steps ~round:0 in
    (spec, summary, eng)
end

module Cc1_mp = Mp_run (Algos.Cc1)
module Cc2_mp = Mp_run (Algos.Cc2)

let measure ~algo ~topo ~bias ~steps _h run =
  let spec, (summary : Metrics.summary), (msgs, staleness) = run in
  let vs = Spec.violations spec in
  let count rules =
    List.length (List.filter (fun (v : Spec.violation) -> List.mem v.Spec.rule rules) vs)
  in
  {
    algo;
    topo;
    bias;
    steps;
    convenes = summary.Metrics.convenes;
    violations = List.length vs;
    sync_violations = count [ "exclusion"; "synchronization" ];
    disc_violations = count [ "essential-discussion"; "voluntary-discussion" ];
    unserved =
      Array.fold_left
        (fun a c -> if c = 0 then a + 1 else a)
        0 (Spec.participations spec);
    msgs_per_convene =
      (if summary.Metrics.convenes = 0 then Float.infinity
       else float_of_int msgs /. float_of_int summary.Metrics.convenes);
    max_staleness = staleness;
  }

let run ?(quick = false) () : result =
  let steps = if quick then 30_000 else 80_000 in
  let topos =
    if quick then [ ("fig1", Families.fig1 ()) ]
    else [ ("fig1", Families.fig1 ()); ("fig4", Families.fig4 ()); ("ring6", Families.pair_ring 6) ]
  in
  let biases = if quick then [ 0.5 ] else [ 0.7; 0.35 ] in
  let seeds = if quick then [ 1 ] else [ 1; 2 ] in
  List.concat_map
    (fun (topo, h) ->
      List.concat_map
        (fun bias ->
          List.concat_map
            (fun seed ->
              let fault_at = steps / 2 in
              let r1 =
                let spec, summary, eng = Cc1_mp.run ~seed ~bias ~steps ~fault_at h in
                measure ~algo:"CC1/mp" ~topo ~bias ~steps h
                  (spec, summary, (Cc1_mp.E.messages_delivered eng, Cc1_mp.E.max_staleness eng))
              in
              let r2 =
                let spec, summary, eng = Cc2_mp.run ~seed ~bias ~steps ~fault_at h in
                measure ~algo:"CC2/mp" ~topo ~bias ~steps h
                  (spec, summary, (Cc2_mp.E.messages_delivered eng, Cc2_mp.E.max_staleness eng))
              in
              [ r1; r2 ])
            seeds)
        biases)
    topos

let table (r : result) =
  {
    Table.id = "mp-future-work";
    title =
      "Message-passing emulation (state dissemination over coalescing \
       links): the Section 7 future-work probe";
    header =
      [ "algorithm"; "topology"; "deliver bias"; "convenes"; "sync viol";
        "disc viol"; "unserved"; "msgs/convene"; "max staleness" ];
    rows =
      List.map
        (fun s ->
          [ s.algo; s.topo; Table.f2 s.bias; Table.i s.convenes;
            Table.i s.sync_violations; Table.i s.disc_violations;
            Table.i s.unserved; Table.f1 s.msgs_per_convene;
            Table.i s.max_staleness ])
        r;
    notes =
      [ "Runs start from arbitrary cores, caches AND channels, with a \
         mid-run fault burst; the monitor judges the true (core) \
         configuration.";
        "Measured finding: Exclusion holds by construction (a professor's \
         pointer is its own variable) and no Synchronization violation was \
         observed on the grid, but Essential Discussion measurably breaks \
         — a professor can leave on a stale view before a slow member has \
         discussed.  This is the gap the paper's future-work item must \
         close.";
      ];
  }

let total_violations (r : result) = List.fold_left (fun a s -> a + s.violations) 0 r

let ok (r : result) =
  List.for_all (fun s -> s.convenes > 0) r
  && List.for_all (fun s -> s.algo <> "CC2/mp" || s.unserved = 0) r
  (* exclusion and synchronization survive staleness... *)
  && List.for_all (fun s -> s.sync_violations = 0) r
  (* ...while 2-phase discussion measurably does not: the open problem *)
  && List.exists (fun s -> s.disc_violations > 0) r
