lib/hypergraph/hypergraph_io.ml: Array Buffer Fun Hypergraph In_channel List Out_channel Printf String
