lib/experiments/exp_common.ml: Array Snapcc_hypergraph Snapcc_runtime
