(** The computational model of §2.2: locally shared variables and
    prioritized guarded actions.

    Each process owns a state; a guard may read the state of the process and
    of its neighbors in the underlying network; a statement computes a new
    local state.  Actions are listed {e in the order of the paper's code}:
    an action appearing {b later} has {b higher} priority, and a selected
    enabled process executes its highest-priority enabled action.  All
    selected processes of a step read the same pre-step configuration. *)

type inputs = {
  request_in : int -> bool;
      (** [RequestIn(p)]: the professor requests to join a committee. *)
  request_out : int -> bool;
      (** [RequestOut(p)]: the professor wants to stop discussing. *)
}

val no_inputs : inputs
(** Both predicates constantly false. *)

val always_in : inputs
(** [RequestIn] constantly true, [RequestOut] constantly false. *)

val input_modes : (string * inputs) array
(** The four uniform input modes the analysis tools quantify over, applied
    to all processes alike: ["quiet"] (no requests), ["in"], ["out"],
    ["in+out"].  Shared by the static analyzer ([lib/statics]) and the
    model checker ([lib/mc]) so their input coverage cannot drift apart. *)

type 'state ctx = {
  h : Snapcc_hypergraph.Hypergraph.t;
  inputs : inputs;
  read : int -> 'state;  (** read a process state (self or neighbor only) *)
  self : int;
}

type 'state action = {
  label : string;
  guard : 'state ctx -> bool;
  apply : 'state ctx -> 'state;
}

val lift_action :
  get:('outer -> 'inner) -> set:('outer -> 'inner -> 'outer) ->
  'inner action -> 'outer action
(** Embeds a component algorithm's action into a composed state (used for
    the fair composition [CC ∘ TC]). *)

module type ALGO = sig
  type state

  val name : string
  val pp_state : Format.formatter -> state -> unit
  val equal_state : state -> state -> bool

  val init : Snapcc_hypergraph.Hypergraph.t -> int -> state
  (** A canonical well-initialized state. *)

  val random_init :
    Snapcc_hypergraph.Hypergraph.t -> Random.State.t -> int -> state
  (** An {e arbitrary} state drawn over the whole state domain: the
      post-transient-fault configurations of the snap-stabilization
      definition (§2.5). *)

  val actions : Snapcc_hypergraph.Hypergraph.t -> state action list
  (** In code order; the last action has the highest priority. *)

  val observe :
    Snapcc_hypergraph.Hypergraph.t -> state array -> int -> Obs.t
end

(** Hooks of the packed-configuration fast path (engine-agnostic closures,
    produced by [Snapcc_mc.Packed] — this library cannot see the checker).
    A packed configuration is the vector of dense per-process state ids of
    the interned declared domains; [pk_entry] looks a (mode, process,
    configuration) up in the exact guard/footprint tables and returns
    [-1] (nothing enabled), [-2] (unavailable: no stored table, or an
    escapee id in the support — the caller must fall back to the guard
    closures), or a packed entry whose action index and successor id
    {!entry_act} / {!entry_succ} decode. *)
type 'state packed = {
  pk_entry : mode:int -> proc:int -> int array -> int;
  pk_intern : int -> 'state -> int;
      (** canonicalize + intern a state, assigning escapee ids beyond the
          domain; raises [Failure] on id-headroom overflow, which consumers
          treat as "disable the fast path for the rest of the run" *)
  pk_support : int -> int array;
      (** processes read by the table of [p] (ascending, includes [p]) *)
  pk_built : int -> bool;  (** a stored table exists for the process *)
}

val entry_act : int -> int
val entry_succ : int -> int
(** Field accessors of a packed entry [>= 0] (the [Snapcc_mc.Tables]
    encoding, duplicated here so the runtime needs no checker dependency —
    pinned against drift by the packed parity tests). *)

val mode_of : inputs -> int -> int
(** The uniform input mode a process experiences under per-process inputs:
    bit 0 = [request_in p], bit 1 = [request_out p], indexing
    {!input_modes}.  Exact for table lookups because the algorithms only
    consult the input predicates at [self]. *)

type step_report = {
  step : int;  (** 0-based index of the step just taken *)
  selected : int list;  (** processes chosen by the daemon *)
  executed : (int * string) list;  (** (process, action label) pairs *)
  neutralized : int list;
      (** enabled before the step, did not execute, disabled after (§2.2) *)
  round : int;  (** completed-round count after this step *)
  terminal : bool;  (** no process was enabled (nothing happened) *)
}
