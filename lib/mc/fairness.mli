(** Progress analysis under weak fairness (the paper's distributed weakly
    fair daemon, §2.2) on the explored in+out transition graph.

    A {e deadlock} is a terminal configuration in which some committee has
    all members waiting — the hypothesis of the progress property (§2.3)
    with no enabled action left to satisfy it.

    A {e livelock} is a strongly connected component of the transition
    graph such that (a) no internal transition convenes a meeting, (b) some
    configuration in it satisfies the progress hypothesis, and (c) the
    component admits a weakly fair infinite run — for every process, either
    some configuration of the component disables it, or some internal
    transition executes it (the two ways a run can visit it infinitely
    often without violating weak fairness; strong connectivity stitches
    the witnesses into one fair cycle).

    The analysis is exact for the explored graph: it must only be run on a
    {e complete} exploration ({!Explore.Make.complete}). *)

type livelock = {
  witness : int;  (** a configuration of the component satisfying the
                      progress hypothesis *)
  scc_size : int;
  cycle : int list list;
      (** daemon selections of a convene-free cycle witness → … → witness *)
}

type verdict = {
  sccs : int;  (** strongly connected components *)
  largest_scc : int;
  nontrivial_sccs : int;  (** components with at least one internal edge *)
  deadlocks : int list;  (** configuration ids *)
  livelocks : livelock list;
}

val ok : verdict -> bool

val analyze :
  n:int ->
  n_configs:int ->
  succs:(int -> (int * int) list) ->
  convenes:(int -> int -> bool) ->
  enabled_mask:(int -> int) ->
  committee_waiting:(int -> bool) ->
  unit ->
  verdict
(** [succs cid] are the [(destination, selected-mask)] transitions under
    in+out; [convenes src dst] whether the transition convenes a meeting
    ({!Explore.Make.meets_mask} gains a bit). *)
