lib/token/token_vring.mli: Layer
