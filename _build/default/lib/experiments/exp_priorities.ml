(** EXP-PRIO — the §7 future-work direction "enforcing priorities on
    convening committees".

    The algorithms leave the committee choice in [Step21]/[Step11] as a
    don't-care; {!Snapcc_core.Cc_common.Weighted_params} resolves it by a
    static weight.  On the 3-uniform ring (all committees structurally
    identical, so any skew is attributable to the strategy) we declare one
    committee "urgent" and measure how its share of convenes shifts against
    the unweighted run — for CC1 (where the hint bites) and for CC3 (whose
    token-driven round-robin selection bypasses the don't-care almost
    entirely: committee fairness leaves no room for priorities, a finding
    in itself). *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics

let urgent = 5

module Urgent_params = Snapcc_core.Cc_common.Weighted_params (struct
  let weight e = if e = urgent then 100 else 0
end)

module Cc1_prio =
  Snapcc_core.Cc1.Make (Snapcc_token.Token_tree) (Urgent_params)
module Cc3_prio =
  Snapcc_core.Cc23.Make (Snapcc_token.Token_tree)
    (Snapcc_core.Cc23.Cc3_variant)
    (Urgent_params)
module Run_cc1_prio = Driver.Make (Cc1_prio)
module Run_cc3_prio = Driver.Make (Cc3_prio)

type row = {
  algo : string;
  weighted : bool;
  urgent_share : float;  (** convenes of committee 0 / total convenes *)
  fair_share : float;  (** 1/m, the neutral share *)
  total : int;
  violations : int;
  starved_committees : int;
}

type result = row list

let measure ~steps algo weighted run =
  let h = Families.k_uniform_ring ~n:9 ~k:3 in
  let r =
    (run ~seed:23 ~daemon:(Daemon.random_subset ())
       ~workload:(Workload.always_requesting h) ~steps h
      : Driver.result)
  in
  let total = r.Driver.summary.Metrics.convenes in
  {
    algo;
    weighted;
    urgent_share =
      (if total = 0 then 0.
       else float_of_int r.Driver.convene_count.(urgent) /. float_of_int total);
    fair_share = 1. /. float_of_int (H.m h);
    total;
    violations = List.length r.Driver.violations;
    starved_committees =
      Array.fold_left (fun a c -> if c = 0 then a + 1 else a) 0
        r.Driver.convene_count;
  }

let run ?(quick = false) () : result =
  let steps = if quick then 10_000 else 40_000 in
  [ measure ~steps "CC1" false (fun ~seed ~daemon ~workload ~steps h ->
        Algos.Run_cc1.run ~seed ~daemon ~workload ~steps h);
    measure ~steps "CC1" true (fun ~seed ~daemon ~workload ~steps h ->
        Run_cc1_prio.run ~seed ~daemon ~workload ~steps h);
    measure ~steps "CC3" false (fun ~seed ~daemon ~workload ~steps h ->
        Algos.Run_cc3.run ~seed ~daemon ~workload ~steps h);
    measure ~steps "CC3" true (fun ~seed ~daemon ~workload ~steps h ->
        Run_cc3_prio.run ~seed ~daemon ~workload ~steps h);
  ]

let table (r : result) =
  {
    Table.id = "priorities";
    title =
      "Section 7 future work - committee priorities via the don't-care \
       choice (3-uniform ring, committee {5,6,7} declared urgent)";
    header =
      [ "algorithm"; "weighted"; "urgent share"; "neutral share"; "convenes";
        "violations"; "starved committees" ];
    rows =
      List.map
        (fun x ->
          [ x.algo; Table.b x.weighted;
            Printf.sprintf "%.1f%%" (100. *. x.urgent_share);
            Printf.sprintf "%.1f%%" (100. *. x.fair_share);
            Table.i x.total; Table.i x.violations; Table.i x.starved_committees ])
        r;
    notes =
      [ "Weights only steer choices the specification leaves free, so \
         safety and the algorithms' guarantees are untouched (violations \
         stay 0; CC3 still starves no committee).";
      ];
  }

let find (r : result) ~algo ~weighted =
  List.find (fun x -> x.algo = algo && x.weighted = weighted) r

let ok (r : result) =
  List.for_all (fun x -> x.violations = 0 && x.total > 0) r
  (* weighting must visibly raise the urgent committee's share for CC1 *)
  && (find r ~algo:"CC1" ~weighted:true).urgent_share
     > (find r ~algo:"CC1" ~weighted:false).urgent_share
  (* and CC3 must still leave no committee starved even when skewed *)
  && (find r ~algo:"CC3" ~weighted:true).starved_committees = 0
