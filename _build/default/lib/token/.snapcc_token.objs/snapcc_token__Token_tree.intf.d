lib/token/token_tree.mli: Layer Leader Snapcc_hypergraph
