(** Vocabulary shared by the committee-coordination algorithms. *)

type status = Idle | Looking | Waiting | Done

val pp_status : Format.formatter -> status -> unit

val to_obs_status : status -> Snapcc_runtime.Obs.status

(** Edge-selection strategy used where the paper writes
    "[Pp := ε such that ε ∈ ...]": the choice is a don't-care for
    correctness, but pluggable for the ablation benches. *)
module type PARAMS = sig
  val choose_edge : Snapcc_hypergraph.Hypergraph.t -> int list -> int
  (** Pick one committee among a non-empty candidate list (edge ids).
      Raises [Invalid_argument] on an empty list.  Must be deterministic:
      the static analyzer ([lib/statics]) flags nondeterministic
      statements. *)
end

(** Deterministic default: smallest edge id. *)
module Default_params : PARAMS

(** Largest committee first: maximizes per-meeting participation. *)
module Widest_params : PARAMS

(** Static committee priorities (the §7 future-work direction "enforcing
    priorities on convening committees"): among the candidates the paper
    leaves as a don't-care, always pick a maximum-weight one. *)
module Weighted_params (W : sig
  val weight : int -> int
  (** weight of a committee (edge id); larger = preferred *)
end) : PARAMS

val max_by_id : Snapcc_hypergraph.Hypergraph.t -> int list -> int option
(** The professor with the maximum identifier in a vertex list (the paper
    breaks symmetry with [max] over identifiers); [None] on the empty
    list. *)

val members_list : Snapcc_hypergraph.Hypergraph.t -> int -> int list
(** Members of a committee, as a list. *)
