type t = {
  name : string;
  select :
    rng:Random.State.t -> step:int -> enabled:int list ->
    continuously_enabled:(int -> int) -> int list;
}

let name d = d.name

let select d ~rng ~step ~enabled ~continuously_enabled =
  d.select ~rng ~step ~enabled ~continuously_enabled

let synchronous =
  { name = "synchronous";
    select = (fun ~rng:_ ~step:_ ~enabled ~continuously_enabled:_ -> enabled) }

let central () =
  let last = ref (-1) in
  let select ~rng:_ ~step:_ ~enabled ~continuously_enabled:_ =
    match enabled with
    | [] -> []
    | _ ->
      (* first enabled process strictly after [!last], wrapping around *)
      let after = List.filter (fun p -> p > !last) enabled in
      let chosen = match after with p :: _ -> p | [] -> List.hd enabled in
      last := chosen;
      [ chosen ]
  in
  { name = "central"; select }

let random_subset ?(p = 0.5) ?(fairness_bound = 64) () =
  let select ~rng ~step:_ ~enabled ~continuously_enabled =
    match enabled with
    | [] -> []
    | _ ->
      let forced = List.filter (fun q -> continuously_enabled q >= fairness_bound) enabled in
      let coin = List.filter (fun _ -> Random.State.float rng 1.0 < p) enabled in
      let chosen = List.sort_uniq compare (forced @ coin) in
      if chosen = [] then [ List.nth enabled (Random.State.int rng (List.length enabled)) ]
      else chosen
  in
  { name = Printf.sprintf "random(p=%.2f)" p; select }

let adversarial ?(fairness_bound = 256) ~name ~score () =
  let select ~rng:_ ~step:_ ~enabled ~continuously_enabled =
    match enabled with
    | [] -> []
    | _ ->
      (match List.filter (fun q -> continuously_enabled q >= fairness_bound) enabled with
       | q :: _ -> [ q ]
       | [] ->
         let best =
           List.fold_left
             (fun acc p ->
               match acc with
               | None -> Some p
               | Some b -> if score p > score b then Some p else Some b)
             None enabled
         in
         (match best with Some b -> [ b ] | None -> []))
  in
  { name = Printf.sprintf "adversarial(%s)" name; select }

let of_fun ~name f =
  { name; select = (fun ~rng:_ ~step ~enabled ~continuously_enabled:_ -> f ~step ~enabled) }

let all_standard () =
  [ synchronous;
    central ();
    random_subset ~p:0.5 ();
    random_subset ~p:0.15 ();
  ]
