(* One Monte-Carlo trajectory: a corrupted start drawn uniformly from the
   state-domain product, run through the standard driver stack (engine +
   workload + Spec monitor + metrics) and condensed to the per-trial
   scorecard the estimators aggregate.

   Determinism is the load-bearing property: a record is a pure function
   of (base seed, trial index) — the per-trial seed is derived by a
   splitmix-style mixer, and the trial's daemon, workload and engine rng
   are all seeded from it.  The parallel pool can then partition trial
   indices over workers arbitrarily and still merge byte-identical
   results. *)

module Driver = Snapcc_experiments.Driver
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload

type record = {
  trial : int;
  seed : int;
  stabilized : int option;
  convenes : int;
  violations : int;
  deadlocked : bool;
  steps : int;
  waits : int list;
}

(* Splitmix-style avalanche over the 63-bit native int range (the odd
   multiplier and shift pattern of splitmix64, constants chosen to fit
   OCaml's tagged int).  Not cryptographic — it only has to decorrelate
   consecutive trial indices, which the shift-xor-multiply rounds do. *)
let derive ~seed trial =
  let m = 0x2545F4914F6CDD1D in
  let h = ref ((seed lxor (trial * 0x9E3779B9)) land max_int) in
  h := (!h lxor (!h lsr 30)) * m land max_int;
  h := (!h lxor (!h lsr 27)) * m land max_int;
  h := !h lxor (!h lsr 31);
  !h land max_int

let daemon_names = [ "synchronous"; "central"; "random"; "sparse" ]
let workload_names = [ "always"; "bursty"; "infinite" ]

(* Fresh instance per call: the distributed daemons carry mutable
   fairness state, so a trial must never share one with another. *)
let daemon_of = function
  | "synchronous" | "sync" -> Daemon.synchronous
  | "central" -> Daemon.central ()
  | "random" -> Daemon.random_subset ()
  | "sparse" -> Daemon.random_subset ~p:0.15 ()
  | d -> invalid_arg (Printf.sprintf "unknown daemon %S" d)

(* Unlike the interactive commands (which pin the bursty coin to one
   seed), each trial's workload draws from the derived trial seed — the
   arrival pattern must be independent across trials. *)
let workload_of name ~disc ~seed h =
  match name with
  | "always" -> Workload.always_requesting ~disc_len:(fun _ -> disc) h
  | "bursty" -> Workload.bursty ~disc_len:(fun _ -> disc) ~seed h
  | "infinite" -> Workload.infinite_meetings h
  | w -> invalid_arg (Printf.sprintf "unknown workload %S" w)

(* Terminal configurations end a trial early; corrupted starts rarely
   stutter long, so a short limit keeps unstabilizable trials cheap
   without misclassifying slow ones (the driver requires this many
   consecutive input-frozen stutters before calling it terminal). *)
let stutter_limit = 64

module Of (A : Snapcc_runtime.Model.ALGO) = struct
  module R = Driver.Make (A)

  let run ?packed ~seed ~budget ~daemon ~workload ~disc h ~trial =
    let tseed = derive ~seed trial in
    let d = daemon_of daemon in
    let w = workload_of workload ~disc ~seed:tseed h in
    let r =
      R.run ~seed:tseed ~init:`Random ?packed ~stutter_limit ~daemon:d
        ~workload:w ~steps:budget h
    in
    let stabilized =
      match r.Driver.convened with
      | [] -> None
      | (step, _) :: _ -> Some (step + 1)
    in
    { trial;
      seed = tseed;
      stabilized;
      convenes = List.length r.Driver.convened;
      violations = List.length r.Driver.violations;
      deadlocked = (r.Driver.outcome = `Terminal);
      steps = r.Driver.steps;
      waits =
        r.Driver.summary.Snapcc_analysis.Metrics.completed_waits_steps }
end
