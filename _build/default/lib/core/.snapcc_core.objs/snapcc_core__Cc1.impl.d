lib/core/cc1.ml: Array Cc_common Default_params Format List Printf Random Snapcc_hypergraph Snapcc_runtime Snapcc_token
