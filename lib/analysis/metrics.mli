(** Quantitative trace metrics: concurrency degree, waiting times,
    throughput, starvation — the measurements behind the §3.3/§5.3
    experiments. *)

type summary = {
  steps : int;  (** transitions observed *)
  rounds : int;  (** rounds completed at the end of the run *)
  convenes : int;  (** meetings convened *)
  convene_per_edge : int array;
  participation : int array;  (** per professor *)
  mean_concurrency : float;  (** average number of simultaneous meetings *)
  max_concurrency : int;
  completed_waits_steps : int list;  (** durations of served waiting spans *)
  completed_waits_rounds : int list;
  open_waits_steps : int list;  (** still-waiting spans at the end (per professor still waiting) *)
  max_wait_steps : int;  (** max over completed and open spans *)
  max_wait_rounds : int;
  starved : int list;  (** professors whose final open span is the longest-running *)
}

type t

val create :
  ?telemetry:Snapcc_telemetry.Hub.t ->
  Snapcc_hypergraph.Hypergraph.t ->
  initial:Snapcc_runtime.Obs.t array ->
  t
(** With [telemetry], every measurement is also emitted as a typed event:
    [convene]/[terminate] per committee transition, [wait_open]/[wait_close]
    per waiting span (the [wait_close] duration also feeds the hub's
    ["wait_steps"] histogram) — so an offline aggregation of the event
    stream ({!Snapcc_telemetry.Stats}) reproduces this module's summary
    exactly. *)

val on_step :
  t -> step:int -> round:int ->
  before:Snapcc_runtime.Obs.t array -> after:Snapcc_runtime.Obs.t array -> unit

val finish : t -> step:int -> round:int -> summary
(** Close the books; open waiting spans are measured up to [step]/[round]. *)

val mean : int list -> float

val maximum : int list -> int

val percentile : float -> int list -> int
(** [percentile 0.95 waits] with nearest-rank semantics; 0 on the empty
    list.  Used for the waiting-time distribution tables. *)

val pp_summary : Format.formatter -> summary -> unit
