(** EXP-F4 — Fig. 4: the lock flags of CC2 recover concurrency.

    Initial configuration of the figure, on the hypergraph
    [{1,2,5,8} {3,4,5} {6,7,9} {8,9}]: professor 1 holds the token and
    points at [{1,2,5,8}]; a meeting of [{3,4,5}] is in progress (so
    [{1,2,5,8}] cannot convene before it ends); professors 1,2,5,8 are
    locked.  Professor 9's highest-priority committee by identifiers would
    be [{8,9}], but 8 is locked — thanks to [L8], professor 9 selects
    [{6,7,9}] instead ([Step13]) and that meeting convenes, improving
    concurrency exactly as the paper describes. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Obs = Snapcc_runtime.Obs
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Cc = Snapcc_core.Cc23
module Common = Snapcc_core.Cc_common

(* Edge ids in Families.fig4. *)
let e_1258 = 0
let e_345 = 1
let e_679 = 2
let e_89 = 3

let initial_states h =
  let looking ?(ptr = None) ?(tf = false) ?(lk = false) () =
    { Cc.s = Common.Looking; ptr; tf; lk; cur = 0; disc = 0 }
  in
  let meeting_member = { Cc.s = Common.Waiting; ptr = Some e_345; tf = false; lk = false; cur = 0; disc = 0 } in
  let cc = function
    | 0 -> looking ~ptr:(Some e_1258) ~tf:true ~lk:true () (* prof 1: token *)
    | 1 -> looking ~ptr:(Some e_1258) ~lk:true () (* prof 2 *)
    | 2 | 3 -> meeting_member (* profs 3,4 *)
    | 4 -> { meeting_member with lk = true } (* prof 5, also in {1,2,5,8} *)
    | 7 -> looking ~ptr:(Some e_1258) ~lk:true () (* prof 8 *)
    | _ -> looking () (* profs 6,7,9 *)
  in
  (* all virtual-ring counters equal: the unique token sits at process 0,
     i.e. professor 1, as in the figure *)
  Array.init (H.n h) (fun p -> (cc p, { Snapcc_token.Token_vring.v = 0 }))

type result = {
  run : Driver.result;
  locked_at_end : bool array;
  convened_679 : bool;
  convened_89 : bool;
  convened_1258 : bool;
  meeting_345_survived : bool;
  prof9_pointer : int option;
}

let run ?quick:_ () =
  let h = Families.fig4 () in
  let r =
    Algos.Run_cc2_vring.run ~seed:3 ~init_states:(initial_states h)
      ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.infinite_meetings h)
      ~stop_when:(Exp_common.stable_stop ~window:300 ())
      ~stutter_limit:400 ~steps:20_000 h
  in
  let final = r.Driver.final_obs in
  let convened e = List.exists (fun (_, e') -> e' = e) r.Driver.convened in
  {
    run = r;
    locked_at_end = Array.map (fun (o : Obs.t) -> o.Obs.locked) final;
    convened_679 = convened e_679;
    convened_89 = convened e_89;
    convened_1258 = convened e_1258;
    meeting_345_survived = Obs.meets h final e_345;
    prof9_pointer = final.(8).Obs.pointer;
  }

let ok r =
  r.convened_679
  && (not r.convened_89)
  && (not r.convened_1258)
  && r.meeting_345_survived
  && r.prof9_pointer = Some e_679
  && r.run.Driver.violations = []
  (* the members of {1,2,5,8} stay locked behind the token holder *)
  && r.locked_at_end.(0) && r.locked_at_end.(1) && r.locked_at_end.(4)
  && r.locked_at_end.(7)

let table r =
  let h = Families.fig4 () in
  let yn = Table.b in
  {
    Table.id = "fig4-locks";
    title = "Fig. 4 replay: locks let {6,7,9} convene while {8,9} defers";
    header = [ "check"; "expected"; "measured" ];
    rows =
      [ [ "{6,7,9} convenes"; "yes"; yn r.convened_679 ];
        [ "{8,9} convenes"; "no"; yn r.convened_89 ];
        [ "{1,2,5,8} convenes (5 busy forever)"; "no"; yn r.convened_1258 ];
        [ "{3,4,5} meeting survives"; "yes"; yn r.meeting_345_survived ];
        [ "prof 9 points {6,7,9}"; "yes"; yn (r.prof9_pointer = Some e_679) ];
        [ "profs 1,2,5,8 locked at quiescence"; "yes";
          yn
            (r.locked_at_end.(0) && r.locked_at_end.(1) && r.locked_at_end.(4)
             && r.locked_at_end.(7)) ];
        [ "violations"; "0"; Table.i (List.length r.run.Driver.violations) ];
      ];
    notes =
      [ Printf.sprintf "hypergraph: %s" (H.to_string h);
        "Initial configuration exactly as in Fig. 4; meetings never end \
         (infinite discussions), so the quiescent state isolates the locking \
         behaviour.";
      ];
  }
