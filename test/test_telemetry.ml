(* Telemetry: JSON codec, typed events, instruments, sinks, and the
   run-trace/summary round trip.

   The load-bearing properties:
   - Event.of_json inverts Event.to_json for every variant;
   - JSONL traces are a deterministic function of the seed and never
     contain a timestamp;
   - Stats.of_events agrees with the online Metrics summary (convenes,
     nearest-rank waiting percentiles, mean concurrency), so
     `ccsim stats` reproduces `ccsim run --emit-json`;
   - the catapult export is valid JSON (by our own strict parser). *)

module Tele = Snapcc_telemetry
module Json = Tele.Json
module Event = Tele.Event
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Metrics = Snapcc_analysis.Metrics
module X = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- JSON codec ---- *)

let test_json_roundtrip () =
  let samples =
    [ Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 1.5;
      Json.String "plain";
      Json.String "esc \" \\ \n \t \x01 é";
      Json.List [ Json.Int 1; Json.Null; Json.String "x" ];
      Json.Obj
        [ ("a", Json.Int 0);
          ("nested", Json.Obj [ ("l", Json.List [ Json.Bool false ]) ]) ];
    ]
  in
  List.iter
    (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> check ("roundtrip " ^ Json.to_string j) true (j = j')
      | Error e -> Alcotest.failf "parse error on %s: %s" (Json.to_string j) e)
    samples;
  (* escapes produced by other tools *)
  (match Json.of_string {|{"s":"aAé 😀"}|} with
   | Ok (Json.Obj [ ("s", Json.String s) ]) ->
     check_str "unicode escapes" "aA\xc3\xa9 \xf0\x9f\x98\x80" s
   | Ok _ | Error _ -> Alcotest.fail "unicode escape parse");
  (* malformed inputs are rejected, not mangled *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"unterminated" ]

let test_json_float_rendering () =
  check_str "integral float keeps the point" "{\"x\":2.0}"
    (Json.to_string (Json.Obj [ ("x", Json.Float 2.0) ]));
  check_str "non-finite floats become null" "[null,null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity;
                                 Json.Float neg_infinity ]))

(* ---- event codec: every variant must survive the round trip ---- *)

let all_events : Event.t list =
  [ Run_start { algo = "CC2"; daemon = "random(p=0.50)"; workload = "always";
                seed = 3; n = 6; m = 5; topo = "n 6\ncommittee 0 1\n" };
    Step { step = 1; round = 0; selected = [ 0; 2 ]; neutralized = [ 2 ];
           meetings = [ 1 ] };
    Action { step = 1; p = 0; label = "Step31" };
    Convene { step = 4; round = 2; eid = 1 };
    Terminate { step = 9; round = 3; eid = 1 };
    Wait_open { step = 2; round = 1; p = 3 };
    Wait_close { step = 8; round = 3; p = 3; waited_steps = 6; waited_rounds = 2 };
    Verdict { step = 5; rule = "exclusion"; detail = "e0 and e1 overlap" };
    Token_handoff { step = 6; p = 4 };
    Fault { step = 7; victims = [ 0; 1; 2 ] };
    Recover { step = 11; eid = 0 };
    Mc_frontier { configs = 16384; transitions = 99000 };
    Mp_activated { step = 3; p = 1; label = Some "Step21" };
    Mp_activated { step = 4; p = 2; label = None };
    Mp_delivered { step = 5; dst = 1; src = 2 };
    Run_end { outcome = "terminal"; steps = 100; rounds = 40 };
  ]

let test_event_roundtrip () =
  List.iter
    (fun ev ->
      match Event.of_json (Event.to_json ev) with
      | Ok ev' -> check ("roundtrip " ^ Event.kind ev) true (ev = ev')
      | Error e -> Alcotest.failf "decode error on %s: %s" (Event.kind ev) e)
    all_events;
  (* the JSONL body also survives a textual round trip *)
  List.iter
    (fun ev ->
      match Json.of_string (Json.to_string (Event.to_json ev)) with
      | Ok j -> check "textual" true (Event.of_json j = Ok ev)
      | Error e -> Alcotest.failf "textual decode on %s: %s" (Event.kind ev) e)
    all_events;
  match Event.of_json (Json.Obj [ ("ev", Json.String "no_such_event") ]) with
  | Ok _ -> Alcotest.fail "unknown tag accepted"
  | Error _ -> ()

(* ---- registry ---- *)

let test_registry () =
  let r = Tele.Registry.create () in
  let c = Tele.Registry.counter r "steps" in
  Tele.Registry.incr c;
  Tele.Registry.incr ~by:4 c;
  check_int "counter" 5 (Tele.Registry.counter_value c);
  check_int "get-or-create aliases" 5
    (Tele.Registry.counter_value (Tele.Registry.counter r "steps"));
  let g = Tele.Registry.gauge r "states_per_s" in
  Tele.Registry.set_gauge g 123.5;
  check "gauge" true (Tele.Registry.gauge_value g = 123.5);
  let h = Tele.Registry.histogram r "wait_steps" in
  (* nearest-rank edge cases: empty, singleton, all-equal *)
  check_int "empty p50" 0 (Tele.Registry.percentile 0.5 h);
  Tele.Registry.observe h 7;
  check_int "singleton p50" 7 (Tele.Registry.percentile 0.5 h);
  check_int "singleton p100" 7 (Tele.Registry.percentile 1.0 h);
  List.iter (fun _ -> Tele.Registry.observe h 7) [ 1; 2; 3 ];
  check_int "all-equal p90" 7 (Tele.Registry.percentile 0.9 h);
  check_int "count" 4 (Tele.Registry.hist_count h);
  (* same rule as the online Metrics helper, on a scrambled sample *)
  let sample = [ 9; 1; 5; 2; 8; 3; 7; 4; 6; 0 ] in
  let h2 = Tele.Registry.histogram r "sample" in
  List.iter (Tele.Registry.observe h2) sample;
  List.iter
    (fun q ->
      check_int
        (Printf.sprintf "agrees with Metrics at q=%.2f" q)
        (Metrics.percentile q sample)
        (Tele.Registry.percentile q h2))
    [ 0.0; 0.5; 0.9; 0.95; 0.99; 1.0 ];
  match Tele.Registry.to_json r with
  | Json.Obj [ ("counters", _); ("gauges", _); ("histograms", _) ] -> ()
  | j -> Alcotest.failf "snapshot shape: %s" (Json.to_string j)

(* ---- hub stamping and the ring sink ---- *)

let test_hub_and_ring () =
  let hub = Tele.Hub.create () in
  let ring = Tele.Sink.ring ~capacity:4 in
  Tele.Hub.add_sink hub ring;
  for i = 0 to 5 do
    Tele.Hub.emit hub (Event.Token_handoff { step = i; p = i })
  done;
  check_int "seq counts emissions" 6 (Tele.Hub.seq hub);
  let kept = Tele.Sink.ring_events ring in
  check_int "ring keeps the last capacity events" 4 (List.length kept);
  Alcotest.(check (list int))
    "chronological, most recent last" [ 2; 3; 4; 5 ]
    (List.map (fun (s : Event.stamped) -> s.Event.seq) kept);
  (* the default clock is logical: timestamp == seq, deterministic *)
  check "logical timestamps" true
    (List.for_all (fun (s : Event.stamped) -> s.Event.t_us = s.Event.seq) kept)

(* ---- JSONL determinism across same-seed runs ---- *)

let trace_lines ~seed () =
  let buf = Buffer.create 4096 in
  let hub = Tele.Hub.create () in
  Tele.Hub.add_sink hub (Tele.Sink.jsonl (Buffer.add_string buf));
  let h = Families.fig1 () in
  let r =
    X.Run_cc2.run ~seed ~telemetry:hub ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:400 h
  in
  Tele.Hub.close hub;
  (r, String.split_on_char '\n' (String.trim (Buffer.contents buf)))

let test_jsonl_deterministic () =
  let _, lines1 = trace_lines ~seed:11 () in
  let _, lines2 = trace_lines ~seed:11 () in
  check "same seed, byte-identical trace" true (lines1 = lines2);
  let _, lines3 = trace_lines ~seed:12 () in
  check "different seed, different trace" true (lines1 <> lines3);
  check "trace is non-trivial" true (List.length lines1 > 400);
  (* no wall-clock leaks into the bodies: the only stamps are logical *)
  List.iter
    (fun line ->
      check "no t_us in JSONL" false (contains line "\"t_us\"");
      check "no ts in JSONL" false (contains line "\"ts\"");
      match Json.of_string line with
      | Ok j -> (
        match Event.of_json j with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "undecodable line %s: %s" line e)
      | Error e -> Alcotest.failf "bad JSONL line %s: %s" line e)
    lines1

(* ---- stats: offline aggregation agrees with the online metrics ---- *)

let test_stats_agree_with_metrics () =
  let buf = Buffer.create 4096 in
  let hub = Tele.Hub.create () in
  Tele.Hub.add_sink hub (Tele.Sink.jsonl (Buffer.add_string buf));
  let ring = Tele.Sink.ring ~capacity:1_000_000 in
  Tele.Hub.add_sink hub ring;
  let h = Families.fig1 () in
  let r =
    X.Run_cc2.run ~seed:7 ~telemetry:hub ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:1500 h
  in
  Tele.Hub.close hub;
  let events =
    List.map (fun (s : Event.stamped) -> s.Event.ev) (Tele.Sink.ring_events ring)
  in
  let meta, summary = Tele.Stats.of_events events in
  let m = r.Driver.summary in
  check_int "convenes" m.Metrics.convenes summary.Tele.Stats.convenes;
  check_int "steps" r.Driver.steps summary.Tele.Stats.steps;
  check_int "max concurrency" m.Metrics.max_concurrency
    summary.Tele.Stats.max_concurrency;
  check "mean concurrency" true
    (abs_float (m.Metrics.mean_concurrency -. summary.Tele.Stats.mean_concurrency)
     < 1e-9);
  check_int "served waits" (List.length m.Metrics.completed_waits_steps)
    summary.Tele.Stats.waits_completed;
  List.iter
    (fun (q, got) ->
      check_int
        (Printf.sprintf "wait p%.0f" (q *. 100.))
        (Metrics.percentile q m.Metrics.completed_waits_steps)
        got)
    [ (0.5, summary.Tele.Stats.wait_p50); (0.9, summary.Tele.Stats.wait_p90);
      (0.95, summary.Tele.Stats.wait_p95) ];
  check "meta present" true (meta <> None);
  (match meta with
   | Some mt ->
     check_int "meta n" 6 mt.Tele.Stats.n;
     check_int "meta seed" 7 mt.Tele.Stats.seed
   | None -> ());
  (* the JSONL artifact aggregates to the same summary: ccsim stats
     reproduces ccsim run --emit-json by construction *)
  let lines = String.split_on_char '\n' (String.trim (Buffer.contents buf)) in
  (match Tele.Stats.of_jsonl lines with
   | Ok (meta', summary') ->
     check "offline meta matches" true (meta = meta');
     check "offline summary matches" true (summary = summary')
   | Error e -> Alcotest.failf "of_jsonl: %s" e);
  (* a corrupt line is reported with its position, not silently skipped *)
  match Tele.Stats.of_jsonl ("{oops" :: lines) with
  | Ok _ -> Alcotest.fail "corrupt line accepted"
  | Error e -> check "error names the line" true (contains e "1")

(* ---- trace telemetry respects fault boundaries ---- *)

let test_no_convene_fabricated_across_fault () =
  let h = Families.fig1 () in
  let hub = Tele.Hub.create () in
  let ring = Tele.Sink.ring ~capacity:1_000_000 in
  Tele.Hub.add_sink hub ring;
  let r =
    X.Run_cc2.run ~seed:3 ~telemetry:hub
      ~faults:(fun ~step -> if step = 200 then [ 0; 2; 4 ] else [])
      ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:800 h
  in
  Tele.Hub.close hub;
  let events =
    List.map (fun (s : Event.stamped) -> s.Event.ev) (Tele.Sink.ring_events ring)
  in
  let _, summary = Tele.Stats.of_events events in
  check_int "one fault recorded" 1 summary.Tele.Stats.faults;
  (* the telemetry convene count still matches the online monitors, which
     exempt corruption-made meetings (§2.5): nothing fabricated *)
  check_int "convenes agree across the fault"
    r.Driver.summary.Metrics.convenes summary.Tele.Stats.convenes

(* ---- catapult export is valid JSON ---- *)

let test_catapult_valid () =
  let buf = Buffer.create 4096 in
  let hub = Tele.Hub.create () in
  Tele.Hub.add_sink hub (Tele.Sink.catapult (Buffer.add_string buf));
  let h = Families.fig1 () in
  let _ =
    X.Run_cc2.run ~seed:5 ~telemetry:hub ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps:300 h
  in
  Tele.Hub.close hub;
  match Json.of_string (Buffer.contents buf) with
  | Error e -> Alcotest.failf "catapult export is not valid JSON: %s" e
  | Ok j ->
    (match Json.member "traceEvents" j with
     | Some (Json.List entries) ->
       check "has trace entries" true (entries <> []);
       List.iter
         (fun e ->
           check "every entry has a phase" true (Json.member "ph" e <> None);
           check "every entry has a timestamp" true (Json.member "ts" e <> None))
         entries
     | Some _ | None -> Alcotest.fail "no traceEvents array")

let suite =
  [ ( "telemetry",
      [ Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json float rendering" `Quick
          test_json_float_rendering;
        Alcotest.test_case "event round-trip (all variants)" `Quick
          test_event_roundtrip;
        Alcotest.test_case "registry instruments" `Quick test_registry;
        Alcotest.test_case "hub stamping and ring sink" `Quick
          test_hub_and_ring;
        Alcotest.test_case "jsonl determinism under seed" `Quick
          test_jsonl_deterministic;
        Alcotest.test_case "stats agree with online metrics" `Quick
          test_stats_agree_with_metrics;
        Alcotest.test_case "fault does not fabricate convenes" `Quick
          test_no_convene_fabricated_across_fault;
        Alcotest.test_case "catapult export is valid json" `Quick
          test_catapult_valid;
      ] );
  ]
