lib/runtime/model.ml: Format Obs Random Snapcc_hypergraph
