lib/experiments/exp_impossibility.ml: Algos Array Driver Format List Printf Snapcc_analysis Snapcc_hypergraph Snapcc_runtime Snapcc_workload String Table
