lib/experiments/exp_locks.ml: Algos Array Driver Exp_common List Printf Snapcc_core Snapcc_hypergraph Snapcc_runtime Snapcc_token Snapcc_workload Table
