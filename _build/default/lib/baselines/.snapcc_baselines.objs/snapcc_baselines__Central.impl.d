lib/baselines/central.ml: Array Format Fun List Random Snapcc_core Snapcc_hypergraph Snapcc_runtime
