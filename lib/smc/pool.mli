(** The parallel trial driver: forked workers over socketpairs.

    [run ~workers ~offset ~count f] evaluates
    [f offset, ..., f (offset + count - 1)] and returns the results in
    index order.  With [workers <= 1] it is a plain sequential map — the
    ground truth.  With more, the index range is cut into contiguous
    slices (one per worker, in index order); each forked worker streams
    its Marshal'd records back in batches over a socketpair
    ({!Snapcc_net.Spawn.fork_pool} / {!Snapcc_net.Wire} framing), and the
    parent concatenates per-worker results in worker order.

    Because each record is a pure function of its index, the merged list
    is {e equal} to the sequential one for every worker count.

    Raises [Failure] if a worker dies before delivering its slice (the
    merged count is checked against [count]). *)

val run :
  workers:int -> offset:int -> count:int -> (int -> Trial.record) ->
  Trial.record list
