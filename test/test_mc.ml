(* Exhaustive model checker (lib/mc): clean algorithms verify on small
   instances, deliberately broken variants yield minimized counterexamples
   that replay through the engine + monitors, and the weak-fairness
   progress analysis recognizes hand-built deadlocks and livelocks. *)

open Snapcc_mc
module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let single2 = Families.single 2
let triangle = Families.pair_ring 3

let system key =
  match Systems.find key with
  | Some e -> e
  | None -> Alcotest.failf "unknown system %s" key

(* ---- clean systems: full domain verified ---- *)

let exhaust key token h =
  let entry = system key in
  let module S = (val entry.Systems.make token) in
  let module Ex = Explore.Make (S) in
  let r = Ex.explore h in
  check (key ^ " exploration complete") true (Ex.complete r);
  check (key ^ " explored the whole domain")
    true
    (float_of_int (Ex.n_configs r) >= Ex.product_size r);
  check (key ^ " domain closed under transitions") true (Ex.escapees r = []);
  check (key ^ " no safety violation") true (Ex.violations r = []);
  let verdict =
    Fairness.analyze ~n:(H.n h) ~n_configs:(Ex.n_configs r)
      ~succs:(Ex.succs_inout r)
      ~convenes:(fun src dst ->
        Ex.meets_mask r dst land lnot (Ex.meets_mask r src) <> 0)
      ~enabled_mask:(Ex.enabled_inout r)
      ~committee_waiting:(Ex.committee_waiting r)
      ()
  in
  check (key ^ " no deadlock") true (verdict.Fairness.deadlocks = []);
  check (key ^ " no livelock") true (verdict.Fairness.livelocks = [])

let test_clean_cc1 () = exhaust "cc1" "vring" single2
let test_clean_cc2 () = exhaust "cc2" "vring" single2
let test_clean_cc3 () = exhaust "cc3" "vring" single2

(* cc1 over the null token on the conflict triangle: a larger instance
   (13824 initial configurations) exercising inter-committee conflicts. *)
let test_clean_cc1_null_triangle () = exhaust "cc1" "null" triangle

(* ---- broken variant: counterexample found, minimized, replayed ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_broken_found_and_replays () =
  let entry = system "cc1-noready" in
  let module S = (val entry.Systems.make "vring") in
  let module Ex = Explore.Make (S) in
  let module CexM = Counterexample.Make (S) in
  let h = single2 in
  let r = Ex.explore ~stop_on_first:true h in
  let v =
    match Ex.violations r with
    | v :: _ -> v
    | [] -> Alcotest.fail "cc1-noready: no violation found on single2"
  in
  Alcotest.(check string)
    "violated rule is synchronization" "synchronization" v.Explore.rule;
  let root, steps = Ex.path_to r v.Explore.source in
  let steps =
    steps
    @
    if v.Explore.mode >= 0 then [ (v.Explore.mode, v.Explore.selected) ]
    else []
  in
  let cex =
    Counterexample.of_safety ~algo:"cc1-noready" ~token:"vring" ~topo:"single2"
      ~rule:v.Explore.rule ~detail:v.Explore.detail ~init:root ~steps
  in
  (* the raw counterexample replays to the same Spec rule *)
  (match CexM.replay h cex with
  | CexM.Reproduced msg ->
    check "replay names the rule" true (contains msg "synchronization")
  | CexM.Not_reproduced msg | CexM.Invalid msg ->
    Alcotest.failf "raw counterexample did not replay: %s" msg);
  (* minimization keeps it reproducing and is idempotent *)
  let m1 = CexM.minimize h cex in
  check "minimized still reproduces" true
    (match CexM.replay h m1 with CexM.Reproduced _ -> true | _ -> false);
  check "minimization shrinks or preserves" true
    (List.length m1.Counterexample.steps <= List.length cex.Counterexample.steps);
  let m2 = CexM.minimize h m1 in
  check "minimization idempotent" true (m1 = m2)

let test_cex_file_roundtrip () =
  let entry = system "cc1-noready" in
  let module S = (val entry.Systems.make "vring") in
  let module Ex = Explore.Make (S) in
  let h = single2 in
  let r = Ex.explore ~stop_on_first:true h in
  let v = List.hd (Ex.violations r) in
  let root, steps = Ex.path_to r v.Explore.source in
  let steps =
    steps
    @
    if v.Explore.mode >= 0 then [ (v.Explore.mode, v.Explore.selected) ]
    else []
  in
  let cex =
    Counterexample.of_safety ~algo:"cc1-noready" ~token:"vring" ~topo:"single2"
      ~rule:v.Explore.rule ~detail:v.Explore.detail ~init:root ~steps
  in
  let file = Filename.temp_file "ccsim-cex" ".txt" in
  Counterexample.to_file file cex;
  let back = Counterexample.of_file file in
  Sys.remove file;
  check "counterexample file round-trips" true (cex = back)

(* ---- encoding: intern/find round-trip over the whole domain ---- *)

let test_encode_roundtrip () =
  let entry = system "cc1" in
  let module S = (val entry.Systems.make "vring") in
  let module Enc = Encode.Make (S) in
  let h = single2 in
  let enc = Enc.create h in
  check "no escapee after pre-interning" true (Enc.escapees enc = []);
  for p = 0 to H.n h - 1 do
    List.iter
      (fun s ->
        let id = Enc.intern enc p s in
        check "intern/state round-trip" true
          (S.equal_state (S.canon h p s) (Enc.state enc p id)))
      (S.domain h p)
  done;
  check "product counts the domain" true (Enc.product_size enc >= 2304.)

(* ---- fairness analysis on hand-built graphs ---- *)

let test_fairness_deadlock () =
  (* two configurations, no transitions; config 1 has a waiting committee *)
  let verdict =
    Fairness.analyze ~n:2 ~n_configs:2
      ~succs:(fun _ -> [])
      ~convenes:(fun _ _ -> false)
      ~enabled_mask:(fun _ -> 0)
      ~committee_waiting:(fun v -> v = 1)
      ()
  in
  checki "one deadlock" 1 (List.length verdict.Fairness.deadlocks);
  check "deadlock is config 1" true (verdict.Fairness.deadlocks = [ 1 ]);
  check "not ok" false (Fairness.ok verdict)

let test_fairness_livelock () =
  (* a 2-cycle where only process 0 ever executes, process 1 is never
     enabled, no convene, and a committee waits forever: a weakly fair
     livelock *)
  let verdict =
    Fairness.analyze ~n:2 ~n_configs:2
      ~succs:(fun v -> [ (1 - v, 0b01) ])
      ~convenes:(fun _ _ -> false)
      ~enabled_mask:(fun _ -> 0b01)
      ~committee_waiting:(fun _ -> true)
      ()
  in
  checki "one livelock" 1 (List.length verdict.Fairness.livelocks);
  let l = List.hd verdict.Fairness.livelocks in
  checki "SCC of two configurations" 2 l.Fairness.scc_size;
  check "cycle is non-empty" true (l.Fairness.cycle <> [])

let test_fairness_convene_breaks_livelock () =
  (* same 2-cycle, but one edge convenes a committee: progress is made *)
  let verdict =
    Fairness.analyze ~n:2 ~n_configs:2
      ~succs:(fun v -> [ (1 - v, 0b01) ])
      ~convenes:(fun src _ -> src = 0)
      ~enabled_mask:(fun _ -> 0b01)
      ~committee_waiting:(fun _ -> true)
      ()
  in
  check "convening cycle is not a livelock" true
    (verdict.Fairness.livelocks = []);
  check "ok" true (Fairness.ok verdict)

(* ---- table-driven fast path: identical results to the closure path ---- *)

let test_tables_parity () =
  List.iter
    (fun (key, token) ->
      let entry = system key in
      let module S = (val entry.Systems.make token) in
      let module Tb = Tables.Make (S) in
      let module Ex = Explore.Make (S) in
      let tag = key ^ "/" ^ token in
      let r0 = Ex.explore single2 in
      let tb = Tb.build single2 in
      check (tag ^ " tables stored for every process") true (Tb.built tb);
      let r1 = Ex.explore ~tables:tb single2 in
      checki (tag ^ " same configurations") (Ex.n_configs r0) (Ex.n_configs r1);
      checki (tag ^ " same transitions") (Ex.n_transitions r0)
        (Ex.n_transitions r1);
      check (tag ^ " same action counts") true
        (Ex.action_counts r0 = Ex.action_counts r1);
      check (tag ^ " same violations") true
        (Ex.violations r0 = Ex.violations r1);
      check (tag ^ " both complete") true (Ex.complete r0 && Ex.complete r1))
    [ ("cc1", "vring"); ("cc1", "tree"); ("cc3", "vring") ]

let suite =
  [ ( "mc",
      [ Alcotest.test_case "clean: cc1 on single2" `Quick test_clean_cc1;
        Alcotest.test_case "clean: cc2 on single2" `Quick test_clean_cc2;
        Alcotest.test_case "clean: cc3 on single2" `Quick test_clean_cc3;
        Alcotest.test_case "clean: cc1 (null token) on triangle" `Quick
          test_clean_cc1_null_triangle;
        Alcotest.test_case "broken: found, replayed, minimized" `Quick
          test_broken_found_and_replays;
        Alcotest.test_case "counterexample file round-trip" `Quick
          test_cex_file_roundtrip;
        Alcotest.test_case "encode round-trip" `Quick test_encode_roundtrip;
        Alcotest.test_case "fairness: deadlock" `Quick test_fairness_deadlock;
        Alcotest.test_case "fairness: livelock" `Quick test_fairness_livelock;
        Alcotest.test_case "fairness: convene breaks livelock" `Quick
          test_fairness_convene_breaks_livelock;
        Alcotest.test_case "table-driven fast path parity" `Quick
          test_tables_parity ] ) ]
