(* Parallel trial execution: fork workers over socketpairs (the same
   process-spawning plumbing `ccsim net --fork' uses), stream Marshal'd
   record batches back over length-prefixed wire frames, merge by worker
   order.

   Worker w computes the contiguous index slice [lo_w, lo_w + len_w);
   slices are in index order, so concatenating the workers' outputs in
   worker order re-creates exactly the sequential list.  Since each
   record is a pure function of its trial index (Trial.derive), the
   merged list is byte-identical for every worker count — asserted by
   the tests and the bench. *)

module Spawn = Snapcc_net.Spawn
module Wire = Snapcc_net.Wire

(* Records per wire frame: keeps frames far under Wire.max_frame (a
   record is a few hundred bytes marshalled) while amortizing the frame
   and Marshal overhead. *)
let frame_records = 256

let sequential ~offset ~count f = List.init count (fun i -> f (offset + i))

(* The child's half: run the slice, flushing batches as they fill so the
   parent can drain concurrently instead of buffering a worker's whole
   slice in the socket. *)
let serve_slice ~lo ~len f fd =
  let buf = ref [] in
  let nbuf = ref 0 in
  let flush () =
    if !nbuf > 0 then begin
      let arr = Array.of_list (List.rev !buf) in
      Wire.write fd (Marshal.to_string arr []);
      buf := [];
      nbuf := 0
    end
  in
  for i = lo to lo + len - 1 do
    buf := f i :: !buf;
    incr nbuf;
    if !nbuf >= frame_records then flush ()
  done;
  flush ()

(* Drain every worker concurrently into per-worker buffers until all hit
   EOF.  Sequential blocking reads would deadlock: a not-yet-drained
   worker blocks on write once its socket buffer fills, while the parent
   blocks reading a different worker that is itself blocked. *)
let drain nodes =
  let n = Array.length nodes in
  let bufs = Array.init n (fun _ -> Buffer.create 4096) in
  let index_of fd =
    let rec go i = if nodes.(i).Spawn.fd == fd then i else go (i + 1) in
    go 0
  in
  let live = ref (Array.to_list (Array.map (fun nd -> nd.Spawn.fd) nodes)) in
  let scratch = Bytes.create 65536 in
  while !live <> [] do
    let ready, _, _ = Unix.select !live [] [] (-1.) in
    List.iter
      (fun fd ->
        let k =
          try Unix.read fd scratch 0 (Bytes.length scratch) with
          | Unix.Unix_error (Unix.EINTR, _, _) -> -1
          | Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
        in
        if k = 0 then live := List.filter (fun f -> f != fd) !live
        else if k > 0 then
          Buffer.add_subbytes bufs.(index_of fd) scratch 0 k)
      ready
  done;
  bufs

(* Re-frame one worker's byte stream: 4-byte big-endian length prefixes
   (Wire.write's framing), each body a Marshal'd record array. *)
let parse_frames : Buffer.t -> Trial.record list =
 fun buf ->
  let s = Buffer.contents buf in
  let len = String.length s in
  let frame_len pos =
    (Char.code s.[pos] lsl 24)
    lor (Char.code s.[pos + 1] lsl 16)
    lor (Char.code s.[pos + 2] lsl 8)
    lor Char.code s.[pos + 3]
  in
  let rec go pos acc =
    if pos = len then List.concat (List.rev acc)
    else if pos + 4 > len then failwith "smc: truncated frame header"
    else begin
      let flen = frame_len pos in
      if pos + 4 + flen > len then failwith "smc: truncated frame body"
      else begin
        let (arr : Trial.record array) =
          Marshal.from_string (String.sub s (pos + 4) flen) 0
        in
        go (pos + 4 + flen) (Array.to_list arr :: acc)
      end
    end
  in
  go 0 []

let run ~workers ~offset ~count f =
  if count = 0 then []
  else if workers <= 1 then sequential ~offset ~count f
  else begin
    let workers = min workers count in
    let base = count / workers and rem = count mod workers in
    let slice w =
      let lo = offset + (w * base) + min w rem in
      let len = base + if w < rem then 1 else 0 in
      (lo, len)
    in
    let nodes =
      Spawn.fork_pool ~n:workers ~serve:(fun ~id fd ->
          let lo, len = slice id in
          serve_slice ~lo ~len f fd)
    in
    let bufs = drain nodes in
    Spawn.shutdown nodes;
    let merged = List.concat (List.init workers (fun w -> parse_frames bufs.(w))) in
    let got = List.length merged in
    if got <> count then
      failwith
        (Printf.sprintf "smc: worker pool returned %d of %d trials %s" got
           count "(a worker died?)");
    merged
  end
