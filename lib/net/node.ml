module HIO = Snapcc_hypergraph.Hypergraph_io
module Model = Snapcc_runtime.Model
module Vclock = Snapcc_telemetry.Vclock

let fail fmt = Printf.ksprintf failwith fmt

module Work (A : Model.ALGO) = struct
  module V = Snapcc_mp.Mp_view.Make (A)

  (* Decode a snapshot payload.  Form 1 carries the sender's state as an
     8-byte little-endian packed-domain id; form 0 a marshalled state.
     [None] means the payload is well-formed bytes but not applicable
     (unknown id / wrong width) — the caller requests a resync instead of
     guessing at a state. *)
  let payload_state (coder : Net_algos.coder) ~src ~form payload : A.state option =
    match form with
    | 0 -> Some (Marshal.from_string payload 0 : A.state)
    | 1 ->
      if String.length payload <> 8 then None
      else begin
        let id = ref 0 in
        for k = 7 downto 0 do
          id := (!id lsl 8) lor Char.code payload.[k]
        done;
        match coder.Net_algos.of_id ~proc:src !id with
        | None -> None
        | Some s -> Some (Marshal.from_string s 0 : A.state)
      end
    | _ -> None

  let run fd ~id ~tag ~h ~core ~cache ~coder =
    let core : A.state = Marshal.from_string core 0 in
    let cache : A.state array = Marshal.from_string cache 0 in
    let view = V.create h ~self:id ~core ~cache in
    (* the node's vector clock (own component = 1 for the initial
       configuration); the orchestrator maintains a tick-for-tick mirror
       and cross-checks it against the [Activated] echo *)
    let my_clock = Vclock.create (Snapcc_hypergraph.Hypergraph.n h) in
    Vclock.tick my_clock id;
    (* last accepted snapshot payload (and its clock) per cache slot, for
       delta decoding: the clock accepted with [pay_seq] is the base the
       sender encodes delta-form clock trailers against *)
    let deg = Array.length cache in
    let pay_seq = Array.make deg (-1) in
    let pay_form = Array.make deg 0 in
    let pay = Array.make deg "" in
    let pay_clock = Array.make deg [||] in
    let frames = ref 1 (* the Init frame *) in
    let decode_errors = ref 0 in
    let send msg = Wire.write fd (Codec.encode ~algo:tag msg) in
    let accept ~slot ~seq ~form ~payload ~clock st =
      V.refresh view ~slot st;
      pay_seq.(slot) <- seq;
      pay_form.(slot) <- form;
      pay.(slot) <- payload;
      pay_clock.(slot) <- clock;
      Vclock.merge_into ~into:my_clock clock;
      Vclock.tick my_clock id;
      send Codec.Delivered
    in
    send Codec.Ready;
    let stop = ref false in
    while not !stop do
      match Wire.read fd with
      | Error `Eof -> stop := true
      | Error (`Oversized len) -> fail "node %d: oversized frame (%d bytes)" id len
      | Ok body -> (
        incr frames;
        match Codec.decode ~expect:tag body with
        | Error e ->
          incr decode_errors;
          send (Codec.Decode_error { reason = Codec.error_to_string e })
        | Ok (_, Codec.Activate { step = _; req_in; req_out }) ->
          let pred a q = q >= 0 && q < Array.length a && a.(q) in
          let inputs =
            { Model.request_in = pred req_in; request_out = pred req_out }
          in
          let label = V.activate view ~inputs in
          (* an activation that fired an action is an event; a no-op
             activation is a heartbeat and leaves the clock untouched *)
          if label <> None then Vclock.tick my_clock id;
          send
            (Codec.Activated
               { label;
                 core = Marshal.to_string (V.core view) [];
                 clock = Vclock.encode_full my_clock })
        | Ok (_, Codec.Deliver { src; state; clock }) -> (
          match Vclock.decode_full clock with
          | None -> fail "node %d: bad clock trailer from %d" id src
          | Some c ->
            let st : A.state = Marshal.from_string state 0 in
            V.refresh view ~slot:(V.slot view src) st;
            Vclock.merge_into ~into:my_clock c;
            Vclock.tick my_clock id;
            send Codec.Delivered)
        | Ok (_, Codec.Deliver_full { src; seq; form; payload; clock }) -> (
          let slot = V.slot view src in
          match Vclock.decode_wire clock with
          | None -> send (Codec.Resync { reason = "bad clock trailer" })
          | Some c -> (
            match payload_state coder ~src ~form payload with
            | Some st -> accept ~slot ~seq ~form ~payload ~clock:c st
            | None -> send (Codec.Resync { reason = "unknown packed id" })))
        | Ok (_, Codec.Deliver_delta { src; seq; base_seq; delta; clock }) -> (
          let slot = V.slot view src in
          if pay_seq.(slot) <> base_seq then
            send (Codec.Resync { reason = "base out of sync" })
          else
            match Vclock.decode_wire ~base:pay_clock.(slot) clock with
            | None -> send (Codec.Resync { reason = "bad clock trailer" })
            | Some c -> (
              match Delta.apply ~base:pay.(slot) delta with
              | None -> send (Codec.Resync { reason = "delta does not apply" })
              | Some target -> (
                let form = pay_form.(slot) in
                match payload_state coder ~src ~form target with
                | Some st -> accept ~slot ~seq ~form ~payload:target ~clock:c st
                | None -> send (Codec.Resync { reason = "unknown packed id" }))))
        | Ok (_, Codec.Corrupt { core; cache }) ->
          let core : A.state = Marshal.from_string core 0 in
          let cache : A.state array = Marshal.from_string cache 0 in
          V.set_core view core;
          Array.iteri (fun slot st -> V.refresh view ~slot st) cache;
          (* a corruption fault is an event of the victim *)
          Vclock.tick my_clock id;
          send Codec.Corrupted
        | Ok (_, Codec.Bye) ->
          send
            (Codec.Bye_ack
               { frames = !frames; decode_errors = !decode_errors });
          stop := true
        | Ok
            ( _,
              ( Codec.Hello _ | Codec.Init _ | Codec.Ready | Codec.Activated _
              | Codec.Delivered | Codec.Corrupted | Codec.Decode_error _
              | Codec.Resync _ | Codec.Bye_ack _ ) ) ->
          incr decode_errors;
          send (Codec.Decode_error { reason = "unexpected message kind" }))
    done
end

let serve ~id fd =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Wire.write fd (Codec.encode ~algo:0 (Codec.Hello { id }));
  match Wire.read fd with
  | Error `Eof -> ()
  | Error (`Oversized len) -> fail "node %d: oversized init frame (%d bytes)" id len
  | Ok body -> (
    match Codec.decode body with
    | Error e -> fail "node %d: bad init frame: %s" id (Codec.error_to_string e)
    | Ok (tag, Codec.Init { seed = _; topo; core; cache }) -> (
      match Net_algos.find_tag tag with
      | None -> fail "node %d: unknown algorithm tag %d" id tag
      | Some entry -> (
        match HIO.parse topo with
        | Error e -> fail "node %d: bad topology: %s" id e
        | Ok h ->
          let module A = (val entry.Net_algos.algo) in
          let module W = Work (A) in
          W.run fd ~id ~tag ~h ~core ~cache
            ~coder:(entry.Net_algos.coder h)))
    | Ok (_, _) -> fail "node %d: expected init frame" id)
