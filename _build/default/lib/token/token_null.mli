(** The degenerate token layer: nobody ever holds a token.

    For the ablation experiments only — composing CC1 with this layer shows
    why the circulating token is needed for Progress. *)

include Layer.S with type state = unit
