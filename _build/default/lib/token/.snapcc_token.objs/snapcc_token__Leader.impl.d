lib/token/leader.ml: Array Format Fun List Queue Random Snapcc_hypergraph Snapcc_runtime String
