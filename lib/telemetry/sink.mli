(** Event sinks: where a stamped event stream goes.

    Three concrete sinks (the hub fans out to any number of them):

    - {!jsonl}: one compact JSON object per line, [{"seq":..,"ev":..,...}].
      Bodies carry logical stamps only (step/round/seq) — never the
      monotonic timestamp — so the output is a deterministic function of
      the seed.
    - {!ring}: an in-memory buffer keeping the last [capacity] stamped
      events, for post-run aggregation ({!Stats}) and for tests.
    - {!catapult}: the Chrome trace-event ("catapult") format; open the
      file in [about://tracing] or [ui.perfetto.dev].  Committee meetings
      render as duration slices (one track per committee), concurrency as a
      counter track, actions and faults as instants.  This is the one sink
      that renders the monotonic timestamp. *)

type t

val jsonl : (string -> unit) -> t
(** [jsonl write] calls [write] with one complete line (trailing ['\n']
    included) per event. *)

val ring : capacity:int -> t
val ring_events : t -> Event.stamped list
(** Chronological contents of a {!ring} sink (the last [capacity] events);
    [[]] for other sinks. *)

val catapult : (string -> unit) -> t
(** The output is a single JSON object [{"traceEvents":[...]}]; it becomes
    valid JSON once {!close} is called. *)

val custom : emit:(Event.stamped -> unit) -> close:(unit -> unit) -> t
(** An arbitrary consumer on the hub's fan-out — the live dashboard and the
    Prometheus exposition attach this way.  [close] runs once, on the first
    {!close}. *)

val emit : t -> Event.stamped -> unit
val close : t -> unit
(** Flush/terminate the sink's output ({!catapult} writes its closing
    bracket here).  Idempotent; [emit] after [close] is a no-op. *)
