lib/runtime/obs.mli: Format Snapcc_hypergraph
