type t = {
  clock : (unit -> float) option;  (* [None]: logical clock (seq as µs) *)
  mutable sinks : Sink.t list;
  mutable seq : int;
  mutable last_us : int;
  registry : Registry.t;
}

let create ?clock () =
  { clock; sinks = []; seq = 0; last_us = 0; registry = Registry.create () }

let add_sink t s = t.sinks <- t.sinks @ [ s ]
let seq t = t.seq
let registry t = t.registry

let emit t ev =
  let t_us =
    match t.clock with
    | None -> t.seq
    | Some clock ->
      (* clamp: catapult timestamps must be non-decreasing *)
      max t.last_us (int_of_float (clock () *. 1e6))
  in
  t.last_us <- t_us;
  let stamped = { Event.seq = t.seq; t_us; ev } in
  t.seq <- t.seq + 1;
  List.iter (fun s -> Sink.emit s stamped) t.sinks

let close t = List.iter Sink.close t.sinks
