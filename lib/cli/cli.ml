module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families

open Cmdliner

(* Shared validating converters: every numeric option goes through one of
   these so `ccsim sim --steps -3' and friends fail at parse time with a
   uniform message instead of misbehaving downstream. *)

let pos_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some v when v > 0 -> Ok v
    | _ -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let nonneg_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> Ok v
    | _ ->
      Error (`Msg (Printf.sprintf "expected a non-negative integer, got %S" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let probability_conv =
  let parse s =
    match float_of_string_opt s with
    | Some f when f >= 0. && f <= 1. -> Ok f
    | _ ->
      Error (`Msg (Printf.sprintf "expected a probability in [0,1], got %S" s))
  in
  Arg.conv ~docv:"P" (parse, fun ppf f -> Format.fprintf ppf "%g" f)

let topology name =
  if Sys.file_exists name then Snapcc_hypergraph.Hypergraph_io.load name
  else
    try Ok (Families.by_name name) with
    | Invalid_argument msg -> Error msg
    | H.Invalid msg -> Error msg

(* Every command resolves topologies through here: a bare name is a full
   topology ("fig1", "ring6", a committee file path); with [?n] the family
   stem is sized first ([--family triangle -n 3] tries "triangle3" before
   "triangle").  run/mp/net/bounds take the parse-time [topo_conv]; lint's
   comma list and check/smc's --family/-n call [resolve_topo] directly —
   one grammar, so the commands cannot drift. *)
let resolve_topo ?n family =
  let sized = Option.map (fun k -> family ^ string_of_int k) n in
  let cands = (match sized with Some s -> [ s ] | None -> []) @ [ family ] in
  let found =
    List.find_map
      (fun name ->
        match topology name with Ok h -> Some (name, h) | Error _ -> None)
      cands
  in
  match found with
  | Some v -> Ok v
  | None -> (
    match topology (List.hd cands) with
    | Error e -> Error e
    | Ok h -> Ok (List.hd cands, h))

let topo_conv : (string * H.t) Arg.conv =
  Arg.conv ~docv:"TOPO"
    ( (fun s ->
        match resolve_topo s with Ok v -> Ok v | Error e -> Error (`Msg e)),
      fun ppf (name, _) -> Format.pp_print_string ppf name )

(* ---- soak-mode burst resolution (`ccsim net') ----

   [--burst-at STEP] pins the corruption burst; [--soak] is a shorthand
   that derives it from the horizon.  Both flags together are legal and an
   explicit [--burst-at] always wins — [resolve_burst] is the single
   decision point, exercised directly by the cmdliner-level tests. *)

let burst_arg =
  Arg.(value & opt (some int) None
       & info [ "burst-at" ] ~docv:"STEP"
           ~doc:"Soak mode: inject a corruption burst (corrupt half the \
                 nodes: cores, caches and in-flight snapshots) at STEP and \
                 report the time to stabilize.")

let soak_arg =
  Arg.(value & flag
       & info [ "soak" ]
           ~doc:"Shorthand for --burst-at <steps/2>.  When both flags are \
                 given, the explicit --burst-at STEP wins and --soak is \
                 ignored.")

let resolve_burst ~steps ~soak burst =
  match burst with
  | Some _ as b -> b
  | None -> if soak then Some (steps / 2) else None
