(** EXP-T78 — §5.4 / Theorems 7 & 8: Committee Fairness of [CC3 ∘ TC].

    Long always-requesting runs: under CC3 every committee must convene
    (and keep convening); CC2 only guarantees professor fairness, so its
    per-committee counts may be skewed, possibly starving a committee.  The
    degree-of-fair-concurrency side of Theorems 7/8 is measured by
    {!Exp_fair_concurrency}; here we measure convene spreads. *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload

type topo_result = {
  topo : string;
  m : int;
  cc2_counts : int array;
  cc3_counts : int array;
  cc2_starved_committees : int;  (** committees never convened under CC2 *)
  cc3_starved_committees : int;
  cc3_min_count : int;
  violations : int;
}

type result = topo_result list

let measure ~steps name h =
  let run (runner : Algos.runner) seed =
    runner.Algos.run ~seed ~daemon:(Daemon.random_subset ())
      ~workload:(Workload.always_requesting h) ~steps h
  in
  let algos = Algos.paper_algorithms () in
  let by label = List.find (fun r -> r.Algos.label = label) algos in
  let r2 = run (by "CC2") 11 in
  let r3 = run (by "CC3") 11 in
  let starved counts = Array.fold_left (fun a c -> if c = 0 then a + 1 else a) 0 counts in
  {
    topo = name;
    m = H.m h;
    cc2_counts = r2.Driver.convene_count;
    cc3_counts = r3.Driver.convene_count;
    cc2_starved_committees = starved r2.Driver.convene_count;
    cc3_starved_committees = starved r3.Driver.convene_count;
    cc3_min_count = Array.fold_left min max_int r3.Driver.convene_count;
    violations = List.length r2.Driver.violations + List.length r3.Driver.violations;
  }

let run ?(quick = false) () : result =
  let steps = if quick then 15_000 else 60_000 in
  let topos =
    if quick then [ ("fig1", Families.fig1 ()); ("ring6", Families.pair_ring 6) ]
    else
      [ ("fig1", Families.fig1 ());
        ("ring6", Families.pair_ring 6);
        ("fig4", Families.fig4 ());
        ("star5", Families.star 5);
      ]
  in
  List.map (fun (name, h) -> measure ~steps name h) topos

let pp_counts counts =
  String.concat "/" (Array.to_list (Array.map string_of_int counts))

let table (r : result) =
  {
    Table.id = "thm78-cc3";
    title = "Committee fairness: per-committee convene counts, CC2 vs CC3";
    header =
      [ "topology"; "m"; "CC2 counts"; "CC3 counts"; "CC2 starved"; "CC3 starved";
        "CC3 min"; "violations" ];
    rows =
      List.map
        (fun t ->
          [ t.topo; Table.i t.m; pp_counts t.cc2_counts; pp_counts t.cc3_counts;
            Table.i t.cc2_starved_committees; Table.i t.cc3_starved_committees;
            Table.i t.cc3_min_count; Table.i t.violations ])
        r;
    notes =
      [ "CC3 must leave no committee starved (Committee Fairness, §5.4); CC2 \
         only guarantees that no professor starves.";
      ];
  }

let ok (r : result) =
  List.for_all (fun t -> t.cc3_starved_committees = 0 && t.violations = 0) r
