type entry = {
  state : string;
  clock : int array;  (* the sender's vector clock at send time *)
  sent_step : int;
  sent_at : float;
  eligible_at : int;
  corrupt : bool;
}

(* Oldest entry first; the queue never exceeds [capacity]. *)
type t = { src : int; rng : Random.State.t; mutable q : entry list }

let capacity = 8

let create ~src ~dst ~seed = { src; rng = Faults.link_rng ~seed ~src ~dst; q = [] }

let src t = t.src
let size t = List.length t.q

type send_result = { copies : int; evicted : int }

let draw t p = p > 0. && Random.State.float t.rng 1.0 < p

let enqueue t entry =
  let evicted = ref 0 in
  (if List.length t.q >= capacity then
     match t.q with
     | _ :: rest ->
       incr evicted;
       t.q <- rest
     | [] -> ());
  t.q <- t.q @ [ entry ];
  !evicted

let send t ~(plan : Faults.plan) ~step ~now ~state ~clock =
  if draw t plan.drop then { copies = 0; evicted = 0 }
  else begin
    (* Pure links coalesce: the fresh snapshot supersedes anything in
       flight, exactly like [Mp_engine]'s single-slot channels. *)
    if Faults.is_pure plan then t.q <- [];
    let mk () =
      let lag =
        if plan.delay = 0 then 0 else Random.State.int t.rng ((2 * plan.delay) + 1)
      in
      {
        state;
        clock;
        sent_step = step;
        sent_at = now;
        eligible_at = step + lag;
        corrupt = draw t plan.corrupt;
      }
    in
    let copies = if draw t plan.dup then 2 else 1 in
    let evicted = ref 0 in
    for _ = 1 to copies do
      evicted := !evicted + enqueue t (mk ())
    done;
    { copies; evicted = !evicted }
  end

let preload t ~step ~state ~clock =
  t.q <- [];
  t.q <-
    [ { state; clock; sent_step = step; sent_at = Unix.gettimeofday ();
        eligible_at = step; corrupt = false } ]

let eligible t ~step = List.exists (fun e -> e.eligible_at <= step) t.q

let pop t ~(plan : Faults.plan) ~step =
  let ready, waiting = List.partition (fun e -> e.eligible_at <= step) t.q in
  match ready with
  | [] -> None
  | [ e ] ->
    t.q <- waiting;
    Some e
  | _ :: _ ->
    let idx =
      if plan.reorder > 0. && Random.State.float t.rng 1.0 < plan.reorder then
        Random.State.int t.rng (List.length ready)
      else 0
    in
    let e = List.nth ready idx in
    t.q <- List.filteri (fun i _ -> i <> idx) ready @ waiting;
    Some e

let clear t = t.q <- []
