(** Centralized manager baseline (Bagrodia's managers [3], degenerated to a
    single manager, §6).

    Process 0 is the coordinator: it reads the whole configuration (this
    baseline deliberately violates locality — run it without the engine's
    locality check) and publishes an assignment plan mapping professors to
    committees; the plan's image is always a matching, giving Exclusion.
    Professors adopt their assignment, convene, discuss and leave.  Greedy
    assignment by committee id: good concurrency, no fairness, no
    stabilization — the manager contrast point for EXP-BASE. *)

module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
open Snapcc_core.Cc_common

type state = {
  s : status;
  ptr : int option;
  plan : int option array;  (** coordinator only: assignment per professor *)
  disc : int;
}

let name = "central-baseline"
let coordinator = 0

let pp_state ppf st =
  Format.fprintf ppf "S=%a P=%s" pp_status st.s
    (match st.ptr with None -> "-" | Some e -> "e" ^ string_of_int e)

let equal_state (a : state) b =
  a.s = b.s && a.ptr = b.ptr && a.disc = b.disc && a.plan = b.plan

(* Greedy plan: keep assignments of professors still engaged, then assign
   every fully-looking unassigned committee that conflicts with nothing
   already planned, in committee-id order.  Assignments are kept as a
   group: once any member of a committee has been served (went idle, its
   entry dropped), the whole committee's surviving entries are dropped too,
   otherwise a professor that cycled idle→looking between two [Plan] steps
   would keep a stale entry forever and deadlock its partners. *)
let computed_plan h read =
  let n = H.n h in
  let current = ((read coordinator) : state).plan in
  let plan =
    Array.init n (fun p ->
        let kept = if Array.length current = n then current.(p) else None in
        match kept with
        | Some e
          when (let s = ((read p) : state).s in
                s = Looking || s = Waiting) ->
          Some e
        | Some _ | None -> None)
  in
  let complete e =
    Array.for_all (fun q -> plan.(q) = Some e) (H.edge_members h e)
  in
  Array.iteri
    (fun p entry ->
      match entry with
      | Some e when not (complete e) -> plan.(p) <- None
      | Some _ | None -> ())
    (Array.copy plan);
  let image = Array.to_list plan |> List.filter_map Fun.id |> List.sort_uniq compare in
  let image = ref image in
  for e = 0 to H.m h - 1 do
    let members = H.edge_members h e in
    let assignable =
      (not (List.mem e !image))
      && Array.for_all
           (fun q -> ((read q) : state).s = Looking && plan.(q) = None)
           members
      && not (List.exists (fun e' -> H.conflicting h e e') !image)
    in
    if assignable then begin
      Array.iter (fun q -> plan.(q) <- Some e) members;
      image := e :: !image
    end
  done;
  plan

let ready h read p =
  Array.exists
    (fun e ->
      Array.for_all
        (fun q ->
          let sq : state = read q in
          sq.ptr = Some e && (sq.s = Looking || sq.s = Waiting))
        (H.edge_members h e))
    (H.incident h p)

let meeting h read p =
  Array.exists
    (fun e ->
      Array.for_all
        (fun q ->
          let sq : state = read q in
          sq.ptr = Some e && (sq.s = Waiting || sq.s = Done))
        (H.edge_members h e))
    (H.incident h p)

let leave_meeting h read p =
  Array.exists
    (fun e ->
      ((read p) : state).ptr = Some e
      && ((read p) : state).s = Done
      && Array.for_all
           (fun q ->
             let sq : state = read q in
             sq.ptr <> Some e || sq.s = Done)
           (H.edge_members h e))
    (H.incident h p)

let actions h : state Model.action list =
  let rd (ctx : state Model.ctx) = ctx.Model.read in
  let self (ctx : state Model.ctx) = ctx.Model.self in
  let me ctx : state = ctx.Model.read ctx.Model.self in
  let my_assignment ctx =
    let plan = (((rd ctx) coordinator) : state).plan in
    if Array.length plan = H.n h then plan.(self ctx) else None
  in
  [ { Model.label = "Request";
      guard = (fun ctx -> (me ctx).s = Idle && ctx.Model.inputs.Model.request_in (self ctx));
      apply = (fun ctx -> { (me ctx) with s = Looking; ptr = None }) };
    { Model.label = "Plan";
      guard =
        (fun ctx ->
          self ctx = coordinator && (me ctx).plan <> computed_plan h (rd ctx));
      apply = (fun ctx -> { (me ctx) with plan = computed_plan h (rd ctx) }) };
    { Model.label = "Sync";
      guard = (fun ctx -> (me ctx).s = Looking && (me ctx).ptr <> my_assignment ctx);
      apply = (fun ctx -> { (me ctx) with ptr = my_assignment ctx }) };
    { Model.label = "Enter";
      guard = (fun ctx -> (me ctx).s = Looking && ready h (rd ctx) (self ctx));
      apply = (fun ctx -> { (me ctx) with s = Waiting }) };
    { Model.label = "Discuss";
      guard = (fun ctx -> (me ctx).s = Waiting && meeting h (rd ctx) (self ctx));
      apply = (fun ctx -> { (me ctx) with s = Done; disc = (me ctx).disc + 1 }) };
    { Model.label = "Leave";
      guard =
        (fun ctx ->
          leave_meeting h (rd ctx) (self ctx)
          && ctx.Model.inputs.Model.request_out (self ctx));
      apply = (fun ctx -> { (me ctx) with s = Idle; ptr = None }) };
  ]

let init h p =
  {
    s = Idle;
    ptr = None;
    plan = (if p = coordinator then Array.make (H.n h) None else [||]);
    disc = 0;
  }

let random_init h rng p =
  let statuses = [| Idle; Looking; Waiting; Done |] in
  let incident = H.incident h p in
  let pick () =
    if Random.State.bool rng then None
    else Some incident.(Random.State.int rng (Array.length incident))
  in
  {
    s = statuses.(Random.State.int rng 4);
    ptr = pick ();
    plan =
      (if p = coordinator then
         Array.init (H.n h) (fun q ->
             if Random.State.bool rng then None
             else
               let inc = H.incident h q in
               Some inc.(Random.State.int rng (Array.length inc)))
       else [||]);
    disc = 0;
  }

let observe _h states p =
  let st : state = states.(p) in
  Obs.make ~pointer:st.ptr ~discussions:st.disc (to_obs_status st.s)

(* Exhaustive per-process domain for the model checker and the exact static
   tier.  The coordinator's state includes the published plan, so its domain
   is the product over all professors of their possible assignments (each
   entry [None] or an incident committee of that professor — what
   [random_init] draws); everyone else carries the empty plan.  [disc] is
   observability only and pinned to 0. *)
let domain h p =
  let n = H.n h in
  let ptrs =
    None :: List.map (fun e -> Some e) (Array.to_list (H.incident h p))
  in
  let plans =
    if p <> coordinator then [ [||] ]
    else
      let entry_opts q =
        None :: List.map (fun e -> Some e) (Array.to_list (H.incident h q))
      in
      let rec build q =
        if q = n then [ [] ]
        else
          let rest = build (q + 1) in
          List.concat_map
            (fun entry -> List.map (fun tl -> entry :: tl) rest)
            (entry_opts q)
      in
      List.map Array.of_list (build 0)
  in
  List.concat_map
    (fun s ->
      List.concat_map
        (fun ptr -> List.map (fun plan -> { s; ptr; plan; disc = 0 }) plans)
        ptrs)
    [ Idle; Looking; Waiting; Done ]

let canon _h _p (st : state) = { st with disc = 0 }

(* Symmetry transport: [ptr] is a committee reference; the coordinator's
   published [plan] is indexed by professor and holds committee ids. *)
let rename h ~pi ~eperm _p (s : state) =
  let plan =
    if Array.length s.plan = 0 then s.plan
    else begin
      let plan' = Array.make (Array.length s.plan) None in
      Array.iteri
        (fun q a ->
          if q < Snapcc_hypergraph.Hypergraph.n h then
            plan'.(pi.(q)) <- Option.map (fun e -> eperm.(e)) a
          else plan'.(q) <- a)
        s.plan;
      plan'
    end
  in
  { s with ptr = Option.map (fun e -> eperm.(e)) s.ptr; plan }

let state_symmetries _ = []
