(** Typed spans reconstructed from the event stream.

    A span is a closed interval of scheduler steps with a subject:

    - [Wait]: one professor's request→convene waiting span (the paper's
      §3.3 waiting time), bounded by [wait_open]/[wait_close];
    - [Meeting]: one committee's convene→terminate session;
    - [Handoff]: the token's travel between consecutive handoffs (subject
      is the receiving professor);
    - [Recovery]: fault-injection→first-convene (time-to-stabilize).

    Durations feed per-kind histograms of a private {!Registry}, so the
    percentile summaries here share the nearest-rank code path used by the
    online metrics and [ccsim stats]. *)

type kind =
  | Wait
  | Meeting
  | Handoff
  | Recovery

val kind_name : kind -> string

type span = {
  kind : kind;
  subject : int;  (** professor, committee or token holder *)
  open_step : int;
  close_step : int;
  duration : int;  (** steps; for [Wait] the event's own [waited_steps] *)
}

type tracker

val create : unit -> tracker
val feed : tracker -> Event.t -> unit

val spans : tracker -> span list
(** Completed spans, in close order. *)

val open_spans : tracker -> (kind * int * int) list
(** Still-open spans as [(kind, subject, open_step)], sorted. *)

val registry : tracker -> Registry.t
(** The backing registry; histogram [span_<kind>_steps] per kind. *)

val summary_json : tracker -> Json.t
(** Per-kind [{count, mean_steps, p50/p90/p95/p99_steps, max_steps}]. *)
