(** Shared cmdliner plumbing for `ccsim' (and its tests).

    The validating converters, the topology-resolution grammar and the
    soak-mode burst resolution live here — outside [bin/] — so the
    cmdliner-level behavior (e.g. the [--burst-at]/[--soak] precedence)
    is testable with [Cmd.eval_value ~argv] without linking the
    executable. *)

val pos_int_conv : int Cmdliner.Arg.conv
(** Positive integers; parse-time error otherwise. *)

val nonneg_int_conv : int Cmdliner.Arg.conv
(** Non-negative integers; parse-time error otherwise. *)

val probability_conv : float Cmdliner.Arg.conv
(** Floats in [0,1]; parse-time error otherwise. *)

val topology :
  string -> (Snapcc_hypergraph.Hypergraph.t, string) result
(** A named family ("fig1", "ring6", ...) or a committee-file path. *)

val resolve_topo :
  ?n:int -> string -> (string * Snapcc_hypergraph.Hypergraph.t, string) result
(** [resolve_topo ~n family] tries the sized name [family ^ n] first, then
    the bare name; the error of the most specific candidate is reported.
    Every ccsim command resolves topologies through this one grammar. *)

val topo_conv : (string * Snapcc_hypergraph.Hypergraph.t) Cmdliner.Arg.conv
(** Parse-time converter over {!resolve_topo} (bare names only). *)

val burst_arg : int option Cmdliner.Term.t
(** [--burst-at STEP]: pin the soak-mode corruption burst. *)

val soak_arg : bool Cmdliner.Term.t
(** [--soak]: derive the burst step from the horizon.  An explicit
    [--burst-at] always wins; see {!resolve_burst}. *)

val resolve_burst : steps:int -> soak:bool -> int option -> int option
(** The single decision point for the burst step: [Some s] from
    [--burst-at s] (wins even when [--soak] is also given), else
    [Some (steps / 2)] under [--soak], else [None]. *)
