lib/experiments/exp_baselines.ml: Algos Array Driver List Snapcc_analysis Snapcc_hypergraph Snapcc_runtime Snapcc_workload Table
