(** Static analysis of a {!Snapcc_runtime.Model.ALGO} by footprint
    extraction: every action's guard and statement is evaluated against
    instrumented configurations — the reachable set of small topologies,
    enumerated exhaustively up to a cap, plus seeded random (post-fault)
    configurations — recording per-action read-sets and write effects.

    On those footprints the analyzer checks the structural side conditions
    the paper's lemmas assume of guarded-command algorithms (§2.2):

    - {b locality}: reads ⊆ self ∪ neighbors (the locally-shared-variable
      model; the dynamic counterpart is [Engine.create ~check_locality]);
    - {b write-ownership}: a statement changes only the executing process's
      state, and never mutates any pre-step state in place (the engine
      relies on statements being functional to implement atomic steps);
    - {b determinism}: same configuration ⇒ same guard value and same
      resulting state (no hidden global or random state — intra-process
      non-determinism must be resolved by the priority order alone);
    - {b crash-freedom}: no evaluation raises.

    It additionally collects two structural statistics that are expected of
    a correct algorithm but matter to refinements and proofs:

    - {b priority overlap}: configurations where ≥2 actions of one process
      are simultaneously enabled — evidence that the code-order priority
      rule is load-bearing;
    - {b read/write interference}: concurrently enabled actions of
      neighboring processes where one's evaluation reads the state the
      other's execution changes — exactly the atomicity hazards a
      message-passing refinement ([lib/mp]) must serialize.

    The analysis is observational: it never modifies the algorithm, and it
    can only report behaviours exhibited on the explored configurations
    (soundness of a clean pass is relative to that coverage). *)

module Make (A : Snapcc_runtime.Model.ALGO) : sig
  val analyze :
    ?seed:int ->
    ?seeds:int ->
    ?max_configs:int ->
    ?allow:Report.rule list ->
    topo:string ->
    Snapcc_hypergraph.Hypergraph.t ->
    Report.t
  (** [analyze ~topo h] explores configurations of [A] on [h] and runs the
      checks on each, under each of four uniform input modes (no requests,
      [RequestIn], [RequestOut], both).

      [seed] (default 0) is mixed into the RNG producing the random
      configurations, so independent lint runs can diversify coverage;
      [seeds] (default 24) is the number of extra [A.random_init]
      configurations seeded into the exploration frontier; [max_configs]
      (default 240) caps the exhaustive reachable-set enumeration (breadth
      first, by single-process and synchronous steps, deduplicated on
      printed state).  Findings for rules in [allow] (default none) are
      reported as waived instead of as violations — used for documented
      deviations such as the centralized baseline's deliberate non-local
      reads.

      Actions whose guard never held anywhere in the exploration are
      reported in [Report.dead] (suspect level, never fatal). *)
end
