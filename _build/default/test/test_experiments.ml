(* End-to-end experiment modules (quick mode): every table renders, every
   paper-shape assertion holds. *)

module E = Snapcc_experiments
module Driver = Snapcc_experiments.Driver

let check = Alcotest.(check bool)

let test_fig1 () =
  let r = E.Exp_fig1.run () in
  check "underlying network matches the paper" true (E.Exp_fig1.ok r)

let test_impossibility () =
  let r = E.Exp_impossibility.run ~quick:true () in
  check "CC1 starves professor 5" true
    (E.Exp_impossibility.prof5_participations r.E.Exp_impossibility.cc1 = 0);
  check "CC2 serves professor 5" true
    (E.Exp_impossibility.prof5_participations r.E.Exp_impossibility.cc2 > 0);
  check "CC1 alternation sustained" true (r.E.Exp_impossibility.cc1_ac_convenes > 50);
  check "both runs clean" true
    (r.E.Exp_impossibility.cc1.Driver.violations = []
     && r.E.Exp_impossibility.cc2.Driver.violations = [])

let test_cc1_trace () =
  let r = E.Exp_cc1_trace.run ~quick:true () in
  check "worked example shape" true (E.Exp_cc1_trace.ok r)

let test_locks () =
  let r = E.Exp_locks.run () in
  check "Fig. 4 checks" true (E.Exp_locks.ok r)

let test_snap () =
  let r = E.Exp_snap.run ~quick:true () in
  check "snap grid" true (E.Exp_snap.ok r)

let test_fair_concurrency () =
  let r = E.Exp_fair_concurrency.run ~quick:true () in
  check "Theorem 4/5/7/8 bounds hold" true (E.Exp_fair_concurrency.ok r)

let test_waiting_time () =
  let r = E.Exp_waiting_time.run ~quick:true () in
  (* the O(maxDisc x n) constant: generous cap, the shape is what matters *)
  check "waiting ratio bounded" true (E.Exp_waiting_time.max_ratio r < 30.)

let test_committee_fairness () =
  let r = E.Exp_committee_fairness.run ~quick:true () in
  check "CC3 leaves no committee starved" true (E.Exp_committee_fairness.ok r)

let test_baselines_shape () =
  let r = E.Exp_baselines.run ~quick:true () in
  List.iter
    (fun topo ->
      let conc algo = (E.Exp_baselines.find r ~algo ~topo).E.Exp_baselines.mean_concurrency in
      check
        (topo ^ ": token-only has the lowest concurrency of the safe schemes")
        true
        (conc "token-only" < conc "CC1" && conc "token-only" < conc "CC2"))
    [ "fig1"; "ring6" ]

let test_token () =
  let r = E.Exp_token.run ~quick:true () in
  check "token laps measured everywhere" true (E.Exp_token.ok r)

let test_ablations () =
  let r = E.Exp_ablation.run ~quick:true () in
  check "retention and selection ablations" true (E.Exp_ablation.ok r)

let test_conjecture () =
  let r = E.Exp_conjecture.run ~quick:true () in
  check "bounded-wait separation" true (E.Exp_conjecture.ok r)

let test_message_passing () =
  let r = E.Exp_message_passing.run ~quick:true () in
  check "message-passing probe" true (E.Exp_message_passing.ok r)

let test_dynamic () =
  let r = E.Exp_dynamic.run ~quick:true () in
  check "dynamic hypergraph phases" true (E.Exp_dynamic.ok r)

let test_priorities () =
  let r = E.Exp_priorities.run ~quick:true () in
  check "priority hints shift CC1's convening" true (E.Exp_priorities.ok r)

let test_registry_renders () =
  (* ids are unique and lookup works; rendering the cheap tables works *)
  let ids = E.Registry.ids () in
  check "ids unique" true
    (List.length ids = List.length (List.sort_uniq compare ids));
  check "lookup" true (E.Registry.find "fig1" <> None);
  check "unknown lookup" true (E.Registry.find "nope" = None);
  match E.Registry.find "fig1" with
  | Some e ->
    let t = e.E.Registry.run ~quick:true in
    check "table renders" true (String.length (E.Table.to_string t) > 0)
  | None -> Alcotest.fail "fig1 entry missing"

let suite =
  [ ( "experiments",
      [ Alcotest.test_case "EXP-F1 fig1" `Quick test_fig1;
        Alcotest.test_case "EXP-F2 impossibility" `Slow test_impossibility;
        Alcotest.test_case "EXP-F3 cc1 trace" `Quick test_cc1_trace;
        Alcotest.test_case "EXP-F4 locks" `Quick test_locks;
        Alcotest.test_case "EXP-T23 snap grid" `Slow test_snap;
        Alcotest.test_case "EXP-T45 fair concurrency bounds" `Slow
          test_fair_concurrency;
        Alcotest.test_case "EXP-T6 waiting time" `Slow test_waiting_time;
        Alcotest.test_case "EXP-T78 committee fairness" `Slow
          test_committee_fairness;
        Alcotest.test_case "EXP-BASE baselines shape" `Slow test_baselines_shape;
        Alcotest.test_case "EXP-TC token substrate" `Slow test_token;
        Alcotest.test_case "EXP-ABL ablations" `Slow test_ablations;
        Alcotest.test_case "EXP-CONJ bounded waiting" `Slow test_conjecture;
        Alcotest.test_case "EXP-MP message passing" `Slow test_message_passing;
        Alcotest.test_case "EXP-DYN dynamic hypergraphs" `Quick test_dynamic;
        Alcotest.test_case "EXP-PRIO committee priorities" `Slow test_priorities;
        Alcotest.test_case "registry" `Quick test_registry_renders;
      ] );
  ]
