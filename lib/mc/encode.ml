module H = Snapcc_hypergraph.Hypergraph

module Make (Sys : System.S) = struct
  module Tbl = Hashtbl.Make (struct
    type t = Sys.state

    let equal = Sys.equal_state
    let hash = Hashtbl.hash
  end)

  type proc_store = { tbl : int Tbl.t; states : Sys.state Vec.t }

  type t = {
    h : H.t;
    procs : proc_store array;
    dom : int array;  (** declared-domain sizes *)
    width : int array;  (** key bits per process *)
    packed : bool;  (** total bits fit one word *)
  }

  let n t = Array.length t.procs
  let domain_count t p = t.dom.(p)
  let count t p = Vec.length t.procs.(p).states
  let state t p id = Vec.get t.procs.(p).states id

  let product_size t =
    Array.fold_left (fun acc d -> acc *. float_of_int d) 1.0 t.dom

  (* Smallest [w] with [1 lsl w >= x]. *)
  let ceil_log2 x =
    let rec go w = if 1 lsl w >= x then w else go (w + 1) in
    go 0

  let raw_intern t p s =
    let ps = t.procs.(p) in
    match Tbl.find_opt ps.tbl s with
    | Some id -> id
    | None ->
      let id = Vec.length ps.states in
      if id >= 1 lsl t.width.(p) then
        failwith
          (Printf.sprintf
             "Mc.Encode: process %d exceeded %d interned states (declared \
              domain %d): the domain declaration is not remotely closed"
             p (1 lsl t.width.(p)) t.dom.(p));
      Tbl.add ps.tbl s id;
      Vec.push ps.states s;
      id

  let intern t p s = raw_intern t p (Sys.canon t.h p s)
  let find t p s = Tbl.find_opt t.procs.(p).tbl (Sys.canon t.h p s)

  let create h =
    let n = H.n h in
    let procs =
      Array.init n (fun _ -> { tbl = Tbl.create 256; states = Vec.create () })
    in
    let domains = Array.init n (fun p -> Sys.domain h p) in
    let dom = Array.map List.length domains in
    (* 4x headroom so a few escapees don't break the packing *)
    let width = Array.map (fun d -> ceil_log2 (4 * max 1 d)) dom in
    let total = Array.fold_left ( + ) 0 width in
    let t = { h; procs; dom; width; packed = total <= 62 } in
    Array.iteri
      (fun p states ->
        List.iter (fun s -> ignore (raw_intern t p (Sys.canon h p s))) states;
        (* duplicates (after canon) in the declared list shrink the domain *)
        t.dom.(p) <- count t p)
      domains;
    t

  let escapees t =
    List.concat
      (List.init (n t) (fun p ->
           List.init
             (count t p - t.dom.(p))
             (fun i -> (p, state t p (t.dom.(p) + i)))))

  type table = { mutable cnt : int; impl : impl }
  and impl = P of (int, int) Hashtbl.t | W of (string, int) Hashtbl.t

  let table t =
    { cnt = 0;
      impl =
        (if t.packed then P (Hashtbl.create (1 lsl 16))
         else W (Hashtbl.create (1 lsl 16))) }

  let table_count tb = tb.cnt

  let key_int t (cfg : int array) =
    let key = ref 0 in
    for p = 0 to Array.length cfg - 1 do
      key := (!key lsl t.width.(p)) lor cfg.(p)
    done;
    !key

  let key_str t (cfg : int array) =
    let buf = Buffer.create 16 in
    let acc = ref 0 and bits = ref 0 in
    for p = 0 to Array.length cfg - 1 do
      acc := (!acc lsl t.width.(p)) lor cfg.(p);
      bits := !bits + t.width.(p);
      while !bits >= 8 do
        bits := !bits - 8;
        Buffer.add_char buf (Char.chr ((!acc lsr !bits) land 0xff))
      done
    done;
    if !bits > 0 then Buffer.add_char buf (Char.chr (!acc land ((1 lsl !bits) - 1)));
    Buffer.contents buf

  let find_or_add t tb cfg =
    let add_new () =
      let cid = tb.cnt in
      tb.cnt <- cid + 1;
      `New cid
    in
    match tb.impl with
    | P h -> (
      let k = key_int t cfg in
      match Hashtbl.find_opt h k with
      | Some cid -> `Existing cid
      | None ->
        let r = add_new () in
        Hashtbl.add h k (tb.cnt - 1);
        r)
    | W h -> (
      let k = key_str t cfg in
      match Hashtbl.find_opt h k with
      | Some cid -> `Existing cid
      | None ->
        let r = add_new () in
        Hashtbl.add h k (tb.cnt - 1);
        r)
end
