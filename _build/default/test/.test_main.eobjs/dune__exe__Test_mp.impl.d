test/test_mp.ml: Alcotest Array Fun List Printf Snapcc_analysis Snapcc_experiments Snapcc_hypergraph Snapcc_mp Snapcc_runtime Snapcc_workload
