(* Interval estimators for the statistical tier: sample moments, the
   standard-normal and Student-t quantile functions, and the two interval
   families the report uses — Student-t for means of real-valued samples,
   Wilson score for binomial proportions.

   Everything here is closed-form arithmetic over the inputs: no special
   function tables, no randomness, so the report stays a pure function of
   the trial records. *)

type ci = { lo : float; hi : float }

let mean = function
  | [] -> nan
  | xs ->
    let n = List.length xs in
    List.fold_left ( +. ) 0. xs /. float_of_int n

(* Sample standard deviation (Bessel-corrected); 0 for n < 2. *)
let sd = function
  | [] | [ _ ] -> 0.
  | xs ->
    let n = List.length xs in
    let m = mean xs in
    let ss =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    in
    sqrt (ss /. float_of_int (n - 1))

(* Standard-normal quantile function (inverse CDF), Acklam's rational
   approximation: relative error < 1.15e-9 over the open unit interval,
   far below the Monte-Carlo noise it is combined with. *)
let z_quantile p =
  if p <= 0. then neg_infinity
  else if p >= 1. then infinity
  else begin
    let a0 = -3.969683028665376e+01 and a1 = 2.209460984245205e+02 in
    let a2 = -2.759285104469687e+02 and a3 = 1.383577518672690e+02 in
    let a4 = -3.066479806614716e+01 and a5 = 2.506628277459239e+00 in
    let b0 = -5.447609879822406e+01 and b1 = 1.615858368580409e+02 in
    let b2 = -1.556989798598866e+02 and b3 = 6.680131188771972e+01 in
    let b4 = -1.328068155288572e+01 in
    let c0 = -7.784894002430293e-03 and c1 = -3.223964580411365e-01 in
    let c2 = -2.400758277161838e+00 and c3 = -2.549732539343734e+00 in
    let c4 = 4.374664141464968e+00 and c5 = 2.938163982698783e+00 in
    let d0 = 7.784695709041462e-03 and d1 = 3.224671290700398e-01 in
    let d2 = 2.445134137142996e+00 and d3 = 3.754408661907416e+00 in
    let p_low = 0.02425 in
    let tail q =
      ((((((c0 *. q) +. c1) *. q) +. c2) *. q +. c3) *. q +. c4) *. q +. c5
    in
    let tail_den q =
      ((((d0 *. q) +. d1) *. q +. d2) *. q +. d3) *. q +. 1.
    in
    if p < p_low then begin
      let q = sqrt (-2. *. log p) in
      tail q /. tail_den q
    end
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      let num =
        (((((a0 *. r) +. a1) *. r +. a2) *. r +. a3) *. r +. a4) *. r +. a5
      in
      let den =
        (((((b0 *. r) +. b1) *. r +. b2) *. r +. b3) *. r +. b4) *. r +. 1.
      in
      num *. q /. den
    end
    else begin
      let q = sqrt (-2. *. log (1. -. p)) in
      -.(tail q /. tail_den q)
    end
  end

(* Student-t quantile: exact closed forms for 1 and 2 degrees of freedom,
   the Peizer/Cornish-Fisher expansion of the normal quantile above that —
   inaccuracy is < 1e-3 for df >= 3, again far below sampling noise. *)
let t_quantile ~df p =
  if df <= 0 then invalid_arg "Estimator.t_quantile: df must be positive";
  if p <= 0. then neg_infinity
  else if p >= 1. then infinity
  else if df = 1 then tan (Float.pi *. (p -. 0.5))
  else if df = 2 then begin
    let a = (2. *. p) -. 1. in
    a *. sqrt (2. /. (1. -. (a *. a)))
  end
  else begin
    let z = z_quantile p in
    let d = float_of_int df in
    let z2 = z *. z in
    let g1 = (z2 +. 1.) *. z /. (4. *. d) in
    let g2 =
      ((((5. *. z2) +. 16.) *. z2 +. 3.) *. z) /. (96. *. d *. d)
    in
    let g3 =
      ((((((3. *. z2) +. 19.) *. z2 +. 17.) *. z2 -. 15.) *. z)
       /. (384. *. d *. d *. d))
    in
    z +. g1 +. g2 +. g3
  end

let student_t_ci ~confidence xs =
  let n = List.length xs in
  let m = mean xs in
  if n < 2 then (m, { lo = m; hi = m })
  else begin
    let s = sd xs in
    if s = 0. then (m, { lo = m; hi = m })
    else begin
      let t = t_quantile ~df:(n - 1) (1. -. ((1. -. confidence) /. 2.)) in
      let half = t *. s /. sqrt (float_of_int n) in
      (m, { lo = m -. half; hi = m +. half })
    end
  end

let wilson ~confidence ~successes ~trials =
  if trials = 0 then (0., { lo = 0.; hi = 1. })
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z = z_quantile (1. -. ((1. -. confidence) /. 2.)) in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let center = (p +. (z2 /. (2. *. n))) /. denom in
    let half =
      z /. denom *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
    in
    (p, { lo = Float.max 0. (center -. half);
          hi = Float.min 1. (center +. half) })
  end
