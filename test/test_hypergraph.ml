(* Hypergraph structure, families, and matching theory (paper §2.1, §5.3). *)

module H = Snapcc_hypergraph.Hypergraph
module Families = Snapcc_hypergraph.Families
module Matching = Snapcc_hypergraph.Matching

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sorted_pairs l = List.sort compare l

(* --- construction and accessors ------------------------------------- *)

let test_fig1_structure () =
  let h = Families.fig1 () in
  check_int "n" 6 (H.n h);
  check_int "m" 5 (H.m h);
  (* identifiers are the paper's 1-based professors *)
  check_int "id of vertex 0" 1 (H.id h 0);
  check_int "vertex of id 6" 5 (H.vertex_of_id h 6);
  (* E_2 (vertex index 1): committees {1,2}, {1,2,3,4}, {2,4,5} *)
  check_int "degree of prof 2" 3 (H.degree h 1)

let test_fig1_underlying () =
  (* Fig. 1(b): EE = {12,13,14,23,24,25,34,36,45,46} in paper ids *)
  let h = Families.fig1 () in
  let adj = H.underlying h in
  let edges = ref [] in
  Array.iteri
    (fun v nbrs ->
      Array.iter
        (fun u -> if v < u then edges := (H.id h v, H.id h u) :: !edges)
        nbrs)
    adj;
  let expected =
    [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (2, 5); (3, 4); (3, 6); (4, 5); (4, 6) ]
  in
  Alcotest.(check (list (pair int int)))
    "underlying network of Fig. 1" expected
    (sorted_pairs !edges)

let test_invalid_inputs () =
  let expect_invalid name f =
    match f () with
    | exception H.Invalid _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid" name
  in
  expect_invalid "singleton committee" (fun () -> H.create ~n:3 [ [ 0 ]; [ 0; 1; 2 ] ]);
  expect_invalid "empty committee list" (fun () -> H.create ~n:2 []);
  expect_invalid "member out of range" (fun () -> H.create ~n:2 [ [ 0; 5 ] ]);
  expect_invalid "duplicate committee" (fun () -> H.create ~n:2 [ [ 0; 1 ]; [ 1; 0 ] ]);
  expect_invalid "uncovered professor" (fun () -> H.create ~n:3 [ [ 0; 1 ] ]);
  expect_invalid "disconnected network" (fun () ->
      H.create ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ]);
  expect_invalid "duplicate ids" (fun () ->
      H.create ~ids:[| 3; 3 |] ~n:2 [ [ 0; 1 ] ])

let test_neighbors_and_conflicts () =
  let h = Families.fig2 () in
  (* committees: e0={1,2}, e1={1,3,5}, e2={3,4} in paper ids *)
  check "e0 conflicts e1" true (H.conflicting h 0 1);
  check "e1 conflicts e2" true (H.conflicting h 1 2);
  check "e0 vs e2 disjoint" false (H.conflicting h 0 2);
  check "1 and 5 are neighbors" true
    (H.are_neighbors h (H.vertex_of_id h 1) (H.vertex_of_id h 5));
  check "2 and 4 are not neighbors" false
    (H.are_neighbors h (H.vertex_of_id h 2) (H.vertex_of_id h 4))

let test_min_edges () =
  let h = Families.fig4 () in
  (* professor 8 (vertex 7): committees {1,2,5,8} (size 4) and {8,9} (size 2) *)
  let v8 = H.vertex_of_id h 8 in
  check_int "minE of prof 8" 2 (H.min_edge_size h v8);
  let mins = H.min_edges h v8 in
  check_int "one minimal committee" 1 (Array.length mins);
  check_int "MaxMin of fig4" 4 (H.max_min h);
  check_int "MaxHEdge of fig4" 4 (H.max_hedge h)

let test_restrict () =
  let h = Families.fig2 () in
  (* removing professor 1 (vertex 0) kills committees {1,2} and {1,3,5} *)
  (match H.restrict h ~removed:[ 0 ] with
   | None -> Alcotest.fail "restriction should keep {3,4}"
   | Some h' ->
     check_int "one committee survives" 1 (H.m h');
     Alcotest.(check (array int)) "survivor is {3,4}" [| 2; 3 |] (H.edge_members h' 0));
  (* removing professor 3 (vertex 2) kills {1,3,5} and {3,4} *)
  (match H.restrict h ~removed:[ 2 ] with
   | None -> Alcotest.fail "restriction should keep {1,2}"
   | Some h' -> check_int "one committee survives" 1 (H.m h'));
  (* removing everything *)
  check "no surviving committee" true (H.restrict h ~removed:[ 0; 1; 2; 3; 4 ] = None)

let test_families_validity () =
  List.iter
    (fun (name, h) ->
      check (name ^ " nonempty") true (H.n h > 0 && H.m h > 0))
    (Families.all_named ());
  let r = Families.pair_ring 8 in
  check_int "ring8 committees" 8 (H.m r);
  let p = Families.path 5 in
  check_int "path5 committees" 4 (H.m p);
  let s = Families.star 6 in
  check_int "star committees" 5 (H.m s);
  let c = Families.clique 5 in
  check_int "clique5 committees" 10 (H.m c);
  let k = Families.k_uniform_ring ~n:6 ~k:3 in
  check_int "3-uniform ring committees" 6 (H.m k);
  check_int "by_name ring12" 12 (H.m (Families.by_name "ring12"));
  (match Families.by_name "nonsense" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "unknown name should raise")

let test_random_family () =
  for seed = 0 to 9 do
    let h = Families.random ~seed ~n:10 ~m:8 () in
    check "covered and connected" true (H.n h = 10 && H.m h >= 8)
  done

let test_shuffled_ids () =
  let h = Families.fig1 () in
  let h' = Families.with_shuffled_ids ~seed:7 h in
  check_int "same n" (H.n h) (H.n h');
  check_int "same m" (H.m h) (H.m h');
  (* ids are a permutation of 0..n-1 *)
  let ids = List.sort compare (List.init (H.n h') (H.id h')) in
  Alcotest.(check (list int)) "permutation" (List.init (H.n h') Fun.id) ids

(* --- the committee file format --------------------------------------- *)

module Io = Snapcc_hypergraph.Hypergraph_io

let test_io_roundtrip () =
  List.iter
    (fun (name, h) ->
      match Io.parse (Io.to_string h) with
      | Ok h' -> check (name ^ ": parse . to_string = id") true (H.equal h h')
      | Error msg -> Alcotest.failf "%s: roundtrip failed: %s" name msg)
    (Families.all_named ())

let test_io_parse () =
  let text =
    "# the paper's Fig. 2\nn 5\nids 1 2 3 4 5\ncommittee 1 2\n\
     committee 1 3 5   # the starving one\ncommittee 3 4\n"
  in
  (match Io.parse text with
   | Ok h -> check "fig2 from text" true (H.equal h (Families.fig2 ()))
   | Error msg -> Alcotest.failf "parse failed: %s" msg);
  let expect_error label text =
    match Io.parse text with
    | Ok _ -> Alcotest.failf "%s: expected an error" label
    | Error _ -> ()
  in
  expect_error "missing n" "committee 0 1\n";
  expect_error "unknown keyword" "n 2\nkommittee 0 1\n";
  expect_error "unknown identifier" "n 2\ncommittee 0 7\n";
  expect_error "singleton committee" "n 2\ncommittee 0\n";
  expect_error "ids arity" "n 3\nids 1 2\ncommittee 1 2\n";
  expect_error "disconnected" "n 4\ncommittee 0 1\ncommittee 2 3\n"

let test_io_file () =
  let path = Filename.temp_file "snapcc" ".committees" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.save path (Families.fig4 ());
      match Io.load path with
      | Ok h -> check "file roundtrip" true (H.equal h (Families.fig4 ()))
      | Error msg -> Alcotest.failf "load failed: %s" msg);
  match Io.load "/nonexistent/committees" with
  | Ok _ -> Alcotest.fail "expected a file error"
  | Error _ -> ()

(* --- matchings -------------------------------------------------------- *)

let test_matching_predicates () =
  let h = Families.fig2 () in
  check "e0+e2 is a matching" true (Matching.is_matching h [ 0; 2 ]);
  check "e0+e1 is not" false (Matching.is_matching h [ 0; 1 ]);
  check "e0+e2 maximal" true (Matching.is_maximal_matching h [ 0; 2 ]);
  check "e1 alone maximal" true (Matching.is_maximal_matching h [ 1 ]);
  check "e0 alone not maximal" false (Matching.is_maximal_matching h [ 0 ])

let test_fig2_matchings () =
  let h = Families.fig2 () in
  let mms = Matching.maximal_matchings h in
  Alcotest.(check (list (list int)))
    "maximal matchings of fig2"
    [ [ 0; 2 ]; [ 1 ] ]
    (List.sort compare mms);
  check_int "minMM" 1 (Matching.min_maximal_matching h);
  check_int "max matching" 2 (Matching.max_matching h)

let test_ring_matchings () =
  (* pair ring on 6: minMM = 2 ({01,34} e.g.), max = 3 *)
  let h = Families.pair_ring 6 in
  check_int "minMM ring6" 2 (Matching.min_maximal_matching h);
  check_int "maxM ring6" 3 (Matching.max_matching h);
  (* star: all committees conflict at the hub *)
  let s = Families.star 5 in
  check_int "minMM star" 1 (Matching.min_maximal_matching s);
  check_int "maxM star" 1 (Matching.max_matching s)

let test_greedy () =
  let h = Families.pair_ring 6 in
  let g = Matching.greedy_maximal_matching h in
  check "greedy is maximal" true (Matching.is_maximal_matching h g);
  let g' = Matching.greedy_maximal_matching ~order:[| 5; 4; 3; 2; 1; 0 |] h in
  check "reverse-order greedy is maximal" true (Matching.is_maximal_matching h g')

let test_single_committee_amm () =
  (* with one committee AMM = emptyset (paper §5.3 remark) and minMM = 1 *)
  let h = Families.single 3 in
  check_int "minMM" 1 (Matching.min_maximal_matching h);
  check_int "dfc bound" 1 (Matching.min_mm_with_amm h)

let test_bounds_consistency () =
  List.iter
    (fun (name, h) ->
      if H.m h <= 14 then begin
        let b = Matching.bounds h in
        check (name ^ ": dfc_cc2 <= minMM") true (b.Matching.dfc_cc2 <= b.Matching.min_mm);
        check (name ^ ": dfc_cc3 <= dfc_cc2") true (b.Matching.dfc_cc3 <= b.Matching.dfc_cc2);
        check
          (name ^ ": Theorem 5 bound holds")
          true
          (b.Matching.dfc_cc2 >= b.Matching.thm5_lower);
        check
          (name ^ ": Theorem 8 bound holds")
          true
          (b.Matching.dfc_cc3 >= b.Matching.thm8_lower);
        check (name ^ ": minMM <= maxM") true (b.Matching.min_mm <= b.Matching.max_matching)
      end)
    (Families.all_named ())

(* Independent, literal implementation of the §5.3 definitions, used to
   cross-check the optimized Matching.min_mm_with_amm computation: enumerate
   Y(ε,p), build H_y by restriction, enumerate its maximal matchings, filter
   by the Almost coverage condition, take the global minimum. *)
let naive_min_mm_amm ~all_edges h =
  let best = ref (Matching.min_maximal_matching h) in
  for p = 0 to H.n h - 1 do
    let candidates =
      if all_edges then Array.to_list (H.incident h p)
      else Array.to_list (H.min_edges h p)
    in
    List.iter
      (fun eid ->
        let members = Array.to_list (H.edge_members h eid) in
        let others = List.filter (fun q -> q <> p) members in
        let k = List.length others in
        (* proper subsets y of ε containing p *)
        for smask = 0 to (1 lsl k) - 2 do
          let y =
            p :: List.filteri (fun i _ -> smask land (1 lsl i) <> 0) others
          in
          match H.restrict h ~removed:y with
          | None -> ()
          | Some hy ->
            let must_cover = List.filter (fun q -> not (List.mem q y)) members in
            Matching.iter_maximal_matchings hy (fun m ->
                let covered q =
                  List.exists
                    (fun e ->
                      Array.exists (fun v -> v = q) (H.edge_members hy e))
                    m
                in
                if List.for_all covered must_cover then
                  best := min !best (List.length m))
        done)
      candidates
  done;
  !best

let test_amm_against_naive () =
  List.iter
    (fun (name, h) ->
      if H.m h <= 9 then begin
        check_int
          (name ^ ": Theorem 4 bound matches the literal definition")
          (naive_min_mm_amm ~all_edges:false h)
          (Matching.min_mm_with_amm h);
        check_int
          (name ^ ": Theorem 7 bound matches the literal definition")
          (naive_min_mm_amm ~all_edges:true h)
          (Matching.min_mm_with_amm' h)
      end)
    (Families.all_named ())

(* --- automorphisms (structural symmetry) ----------------------------- *)

module Auto = Snapcc_hypergraph.Automorphism

let group_order h =
  let elems, complete = Auto.group h in
  check "search complete" true complete;
  List.iter
    (fun p -> check "element is an automorphism" true (Auto.is_automorphism h p))
    elems;
  List.length elems

let test_auto_golden_orders () =
  (* ring_n is the n-cycle: dihedral group, order 2n *)
  check_int "ring4 order" 8 (group_order (Families.pair_ring 4));
  check_int "ring5 order" 10 (group_order (Families.pair_ring 5));
  check_int "ring6 order" 12 (group_order (Families.pair_ring 6));
  (* line_n: the single end-to-end reflection *)
  check_int "line3 order" 2 (group_order (Families.path 3));
  check_int "line5 order" 2 (group_order (Families.path 5));
  (* the conflict triangle is the 3-cycle: full S3 *)
  check_int "triangle order" 6 (group_order (Families.pair_ring 3));
  (* one committee of k professors: all k! permutations *)
  check_int "single2 order" 2 (group_order (Families.single 2));
  check_int "single3 order" 6 (group_order (Families.single 3));
  check_int "single4 order" 24 (group_order (Families.single 4));
  (* star: leaves permute freely around the centre *)
  check_int "star4 order" 6 (group_order (Families.star 4));
  (* clique: every pair is a committee, so S_n *)
  check_int "clique4 order" 24 (group_order (Families.clique 4))

let test_auto_generators_and_orbits () =
  let h = Families.pair_ring 5 in
  let elems, complete = Auto.group h in
  check "ring5 complete" true complete;
  let gens = Auto.generators ~n:5 elems in
  (* dihedral groups need exactly two generators *)
  check_int "ring5 generator count" 2 (List.length gens);
  let closed, complete = Auto.closure ~n:5 gens in
  check "closure complete" true complete;
  check_int "closure regenerates the group" (List.length elems) (List.length closed);
  (* vertex-transitive: a single orbit; same for edges *)
  check "ring5 vertex-transitive" true
    (Array.for_all (fun o -> o = 0) (Auto.orbits ~n:5 elems));
  check "ring5 edge-transitive" true
    (Array.for_all (fun o -> o = 0) (Auto.edge_orbits h elems));
  (* line3: ends fused, middle alone; middle edge... both edges fused *)
  let l = Families.path 3 in
  let lelems, _ = Auto.group l in
  Alcotest.(check (array int)) "line3 vertex orbits" [| 0; 1; 0 |]
    (Auto.orbits ~n:3 lelems);
  Alcotest.(check (array int)) "line3 edge orbits" [| 0; 0 |]
    (Auto.edge_orbits l lelems);
  (* edge_perm is consistent: image member set is the permuted member set *)
  List.iter
    (fun p ->
      let ep = Auto.edge_perm h p in
      Array.iter
        (fun (e : H.edge) ->
          let img = Array.map (fun v -> p.(v)) e.H.members in
          Array.sort compare img;
          Alcotest.(check (array int)) "edge image members" img
            (H.edge_members h ep.(e.H.eid)))
        (H.edges h))
    elems

let test_auto_asymmetric () =
  (* fig1 (the paper's running example) has no structural symmetry *)
  check_int "fig1 order" 1 (group_order (Families.fig1 ()));
  (* identifiers are ignored: shuffling ids must not change the group *)
  let h = Families.pair_ring 4 in
  let shuffled = Families.with_shuffled_ids ~seed:7 h in
  check_int "ids ignored" (group_order h) (group_order shuffled)

(* qcheck: random hypergraphs keep the matching algebra consistent *)
let qcheck_suite =
  let gen_h =
    QCheck.make
      ~print:(fun (seed, n, m) -> Printf.sprintf "seed=%d n=%d m=%d" seed n m)
      QCheck.Gen.(triple (int_bound 1000) (int_range 4 9) (int_range 3 7))
  in
  [ QCheck.Test.make ~name:"maximal matchings are maximal matchings" ~count:60 gen_h
      (fun (seed, n, m) ->
        let h = Families.random ~seed ~n ~m () in
        List.for_all (Matching.is_maximal_matching h) (Matching.maximal_matchings h));
    QCheck.Test.make ~name:"minMM is the min over the enumeration" ~count:60 gen_h
      (fun (seed, n, m) ->
        let h = Families.random ~seed ~n ~m () in
        let mms = Matching.maximal_matchings h in
        let min_sz = List.fold_left (fun a l -> min a (List.length l)) max_int mms in
        Matching.min_maximal_matching h = min_sz);
    QCheck.Test.make ~name:"greedy matching size between minMM and maxM" ~count:60 gen_h
      (fun (seed, n, m) ->
        let h = Families.random ~seed ~n ~m () in
        let g = List.length (Matching.greedy_maximal_matching h) in
        Matching.min_maximal_matching h <= g && g <= Matching.max_matching h);
    QCheck.Test.make ~name:"io round-trips every generated family" ~count:120 gen_h
      (fun (seed, n, m) ->
        let h = Families.with_shuffled_ids ~seed (Families.random ~seed ~n ~m ()) in
        match Snapcc_hypergraph.Hypergraph_io.parse
                (Snapcc_hypergraph.Hypergraph_io.to_string h)
        with
        | Ok h' -> H.equal h h'
        | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e);
    QCheck.Test.make ~name:"automorphisms preserved by id shuffling" ~count:20
      QCheck.(make ~print:string_of_int Gen.(int_bound 1000))
      (fun seed ->
        let h = Families.random ~seed ~n:6 ~m:5 () in
        let elems, _ = Auto.group h in
        let elems', _ = Auto.group (Families.with_shuffled_ids ~seed h) in
        List.length elems = List.length elems'
        && List.for_all (Auto.is_automorphism h) elems);
    QCheck.Test.make ~name:"restrict preserves membership" ~count:60 gen_h
      (fun (seed, n, m) ->
        let h = Families.random ~seed ~n ~m () in
        match H.restrict h ~removed:[ 0 ] with
        | None -> true
        | Some h' ->
          Array.for_all
            (fun (e : H.edge) -> not (Array.exists (fun v -> v = 0) e.H.members))
            (H.edges h'));
  ]

let suite =
  [ ( "hypergraph",
      [ Alcotest.test_case "fig1 structure" `Quick test_fig1_structure;
        Alcotest.test_case "fig1 underlying network" `Quick test_fig1_underlying;
        Alcotest.test_case "invalid inputs rejected" `Quick test_invalid_inputs;
        Alcotest.test_case "neighbors and conflicts" `Quick test_neighbors_and_conflicts;
        Alcotest.test_case "min edges / MaxMin / MaxHEdge" `Quick test_min_edges;
        Alcotest.test_case "restriction" `Quick test_restrict;
        Alcotest.test_case "families validity" `Quick test_families_validity;
        Alcotest.test_case "random family" `Quick test_random_family;
        Alcotest.test_case "shuffled identifiers" `Quick test_shuffled_ids;
        Alcotest.test_case "file format roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "file format parsing" `Quick test_io_parse;
        Alcotest.test_case "file format on disk" `Quick test_io_file;
        Alcotest.test_case "automorphism golden orders" `Quick test_auto_golden_orders;
        Alcotest.test_case "automorphism generators and orbits" `Quick
          test_auto_generators_and_orbits;
        Alcotest.test_case "automorphism asymmetric cases" `Quick test_auto_asymmetric;
      ] );
    ( "matching",
      [ Alcotest.test_case "matching predicates" `Quick test_matching_predicates;
        Alcotest.test_case "fig2 maximal matchings" `Quick test_fig2_matchings;
        Alcotest.test_case "ring and star matchings" `Quick test_ring_matchings;
        Alcotest.test_case "greedy maximality" `Quick test_greedy;
        Alcotest.test_case "single committee AMM empty" `Quick test_single_committee_amm;
        Alcotest.test_case "bounds consistency on named families" `Slow
          test_bounds_consistency;
        Alcotest.test_case "AMM bounds match the literal definition" `Slow
          test_amm_against_naive;
      ] );
    ("matching:qcheck", List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_suite);
  ]
