(** Interval estimators for the statistical tier.

    Two interval families cover everything the report publishes: Student-t
    for the mean of a real-valued sample (stabilization and waiting
    times), Wilson score for a binomial proportion (stabilized-within-
    budget, deadlock reach).  All closed-form — the report stays a pure
    function of the trial records. *)

type ci = { lo : float; hi : float }

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val sd : float list -> float
(** Sample (Bessel-corrected) standard deviation; [0.] for fewer than two
    samples. *)

val z_quantile : float -> float
(** Standard-normal quantile (inverse CDF), Acklam's approximation
    (relative error < 1.15e-9).  [neg_infinity]/[infinity] at the
    endpoints. *)

val t_quantile : df:int -> float -> float
(** Student-t quantile: exact for [df] 1 and 2, Cornish-Fisher expansion
    of {!z_quantile} beyond (error < 1e-3 for [df >= 3]).  Raises
    [Invalid_argument] on non-positive [df]. *)

val student_t_ci : confidence:float -> float list -> float * ci
(** Mean and two-sided [confidence]-level Student-t interval.  With fewer
    than two samples, or zero variance, the interval collapses to the
    mean (never NaN — the JSON printer must not see non-finite floats). *)

val wilson : confidence:float -> successes:int -> trials:int -> float * ci
(** Point estimate [successes/trials] and the Wilson score interval,
    clamped to [0,1].  With zero trials: [(0., {lo = 0.; hi = 1.})].
    Wilson (unlike the Wald interval) stays informative at 0 or [trials]
    successes — exactly the rare-event regime the deadlock-reach
    experiment lives in. *)
