(** Findings of the static analyzer ({!Analyze}) and their rendering.

    A report separates hard {e violations} of the model's side conditions
    (locality, write-ownership, determinism, crash-freedom) from the
    {e structural statistics} that are expected — and informative — on a
    correct algorithm: priority overlaps (how often the priority order
    actually arbitrates) and read/write interference (which concurrently
    enabled neighbor actions a message-passing refinement must
    serialize). *)

type rule =
  | Locality  (** a guard or statement read a non-neighbor's state *)
  | Write_ownership
      (** a statement mutated a state it does not own (or its own pre-step
          state in place, which breaks step atomicity) *)
  | Determinism
      (** two evaluations on the same configuration disagreed — hidden
          global or random state *)
  | Crash  (** a guard or statement raised an exception *)

val rule_name : rule -> string
(** ["locality"], ["write-ownership"], ["determinism"], ["crash"] — the
    names used by machine-readable output and expected by the tests. *)

type finding = {
  rule : rule;
  action : string;  (** action label, e.g. ["Step21"] *)
  proc : int;  (** executing process *)
  count : int;  (** (configuration, input-mode) pairs exhibiting it *)
  detail : string;  (** human-readable description of the first exhibit *)
}

type overlap = {
  labels : string list;
      (** the ≥2 simultaneously enabled actions of one process, code order *)
  times : int;  (** (configuration, input-mode, process) occurrences *)
  example_proc : int;
}

type interference = {
  writer : string;  (** action whose execution changes the writer's state *)
  reader : string;
      (** concurrently enabled neighbor action whose evaluation reads it *)
  times : int;
}

type t = {
  algo : string;
  topo : string;
  tier : string;
      (** ["sampled"] ({!Analyze}: verdicts relative to explored coverage)
          or ["exact"] ({!Exact}: verdicts absolute over the enumerated
          domain product) *)
  configs : int;  (** configurations analyzed *)
  evals : int;  (** action evaluations performed *)
  findings : finding list;  (** violations, sorted *)
  waived : finding list;  (** findings matching the analyzer's allow list *)
  overlaps : overlap list;  (** sorted by frequency, descending *)
  interference : interference list;  (** sorted by frequency, descending *)
  dead : string list;
      (** actions whose guard never held on any explored (configuration,
          input-mode, process) triple — unsatisfiable-guard suspects, in
          code order.  Suspect-level, not a violation: the exploration is
          coverage-relative, and some actions are legitimately dead on
          specific instances (e.g. CC2/CC3's [Token2] fast-forward, which
          only fires from corrupted token positions on topologies where the
          cap leaves them unreached). *)
  dead_proven : string list;
      (** guard provably false on the entire enumerated domain product —
          populated by the exact tier, or by {!classify_dead} when exact
          evidence is merged into a sampled report *)
  dead_unreached : string list;
      (** sampled-dead actions the exact tier shows satisfiable: the sample
          simply never reached an enabling configuration *)
}

val ok : t -> bool
(** No violations ([findings = []]; waived findings do not count). *)

val classify_dead : proven:string list -> live:string list -> t -> t
(** Split [t.dead] on exact evidence: suspects in [proven] move to
    [dead_proven], suspects in [live] to [dead_unreached], and anything the
    exact tier could not decide (a skipped pass) stays a plain suspect. *)

val summary_table : t list -> Snapcc_experiments.Table.t
(** One row per analyzed (algorithm, topology) pair. *)

val detail_table : t -> Snapcc_experiments.Table.t
(** Per-finding rows (violations first, then waived findings). *)

val to_lines : t -> string list
(** Machine-readable violations, one per line:
    [lint algo=<name> topo=<name> tier=<tier> rule=<rule> action=<label>
    proc=<p> count=<k> detail=<text>], followed by one line per dead action —
    [suspect=dead-action] (sampled, undecided), [proven=dead-action]
    (exact proof), or [suspect=unreached-in-sample] (exact tier shows the
    guard satisfiable).  Waived findings are not included. *)
