type meta = {
  algo : string;
  daemon : string;
  workload : string;
  seed : int;
  n : int;
  m : int;
}

type summary = {
  steps : int;
  rounds : int;
  convenes : int;
  terminations : int;
  actions : int;
  mean_concurrency : float;
  max_concurrency : int;
  waits_completed : int;
  wait_mean : float;
  wait_p50 : int;
  wait_p90 : int;
  wait_p95 : int;
  wait_max : int;
  violations : int;
  faults : int;
  token_handoffs : int;
  latency_histogram : (string * int) list;
  outcome : string option;
}

(* nearest-rank percentile, same semantics as
   [Snapcc_analysis.Metrics.percentile] *)
let percentile q = function
  | [] -> 0
  | l ->
    let sorted = List.sort compare l in
    let n = List.length sorted in
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let of_events events =
  let meta = ref None in
  let step_events = ref 0 in
  let max_round = ref 0 in
  let convenes = ref 0 in
  let terminations = ref 0 in
  let actions = ref 0 in
  let concurrency_sum = ref 0 in
  let max_concurrency = ref 0 in
  let rev_waits = ref [] in
  let violations = ref 0 in
  let faults = ref 0 in
  let tokens = ref 0 in
  let rev_latencies = ref [] in
  let run_end = ref None in
  List.iter
    (fun (ev : Event.t) ->
      match ev with
      | Event.Run_start { algo; daemon; workload; seed; n; m; topo = _ } ->
        if !meta = None then
          meta := Some { algo; daemon; workload; seed; n; m }
      | Event.Step { round; meetings; _ } ->
        incr step_events;
        if round > !max_round then max_round := round;
        let k = List.length meetings in
        concurrency_sum := !concurrency_sum + k;
        if k > !max_concurrency then max_concurrency := k
      | Event.Action _ -> incr actions
      | Event.Convene _ -> incr convenes
      | Event.Terminate _ -> incr terminations
      | Event.Wait_open _ -> ()
      | Event.Wait_close { waited_steps; _ } ->
        rev_waits := waited_steps :: !rev_waits
      | Event.Verdict _ -> incr violations
      | Event.Fault _ -> incr faults
      | Event.Token_handoff _ -> incr tokens
      | Event.Net_delivered { latency_us; _ } ->
        rev_latencies := latency_us :: !rev_latencies
      | Event.Recover _ | Event.Mc_frontier _ | Event.Mp_activated _
      | Event.Mp_delivered _ | Event.Net_sent _ | Event.Net_dropped _
      | Event.Clock _ | Event.Smc_trial _ ->
        ()
      | Event.Run_end { outcome; steps; rounds } ->
        run_end := Some (outcome, steps, rounds))
    events;
  let waits = List.rev !rev_waits in
  let steps, rounds, outcome =
    match !run_end with
    | Some (outcome, steps, rounds) -> (steps, rounds, Some outcome)
    | None -> (!step_events, !max_round, None)
  in
  ( !meta,
    {
      steps;
      rounds;
      convenes = !convenes;
      terminations = !terminations;
      actions = !actions;
      mean_concurrency =
        (if !step_events = 0 then 0.
         else float_of_int !concurrency_sum /. float_of_int !step_events);
      max_concurrency = !max_concurrency;
      waits_completed = List.length waits;
      wait_mean =
        (match waits with
         | [] -> 0.
         | l ->
           float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l));
      wait_p50 = percentile 0.50 waits;
      wait_p90 = percentile 0.90 waits;
      wait_p95 = percentile 0.95 waits;
      wait_max = List.fold_left max 0 waits;
      violations = !violations;
      faults = !faults;
      token_handoffs = !tokens;
      latency_histogram =
        (if !rev_latencies = [] then []
         else Registry.bucket_counts (List.rev !rev_latencies));
      outcome;
    } )

let to_json ?meta s =
  let meta_fields =
    match meta with
    | None -> []
    | Some m ->
      [ ( "meta",
          Json.Obj
            [ ("algo", Json.String m.algo);
              ("daemon", Json.String m.daemon);
              ("workload", Json.String m.workload);
              ("seed", Json.Int m.seed);
              ("n", Json.Int m.n);
              ("m", Json.Int m.m) ] ) ]
  in
  (* the latency histogram appears only when the trace carried deliveries,
     so summaries of non-networked runs are byte-identical to before *)
  let latency_fields =
    match s.latency_histogram with
    | [] -> []
    | buckets ->
      [ ( "latency_histogram",
          Json.Obj (List.map (fun (l, c) -> (l, Json.Int c)) buckets) ) ]
  in
  Json.Obj
    (meta_fields
    @ [ ( "summary",
          Json.Obj
            ([ ("steps", Json.Int s.steps);
               ("rounds", Json.Int s.rounds);
               ("convenes", Json.Int s.convenes);
               ("terminations", Json.Int s.terminations);
               ("actions", Json.Int s.actions);
               ("mean_concurrency", Json.Float s.mean_concurrency);
               ("max_concurrency", Json.Int s.max_concurrency);
               ( "waits",
                 Json.Obj
                   [ ("completed", Json.Int s.waits_completed);
                     ("mean_steps", Json.Float s.wait_mean);
                     ("p50_steps", Json.Int s.wait_p50);
                     ("p90_steps", Json.Int s.wait_p90);
                     ("p95_steps", Json.Int s.wait_p95);
                     ("max_steps", Json.Int s.wait_max) ] );
               ("violations", Json.Int s.violations);
               ("faults", Json.Int s.faults);
               ("token_handoffs", Json.Int s.token_handoffs) ]
            @ latency_fields
            @ [ ( "outcome",
                  match s.outcome with
                  | Some o -> Json.String o
                  | None -> Json.Null ) ]) ) ])

let events_of_jsonl lines =
  let rec parse acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" then parse acc (lineno + 1) rest
      else (
        match Json.of_string trimmed with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok j -> (
          match Event.of_json j with
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
          | Ok ev -> parse (ev :: acc) (lineno + 1) rest))
  in
  parse [] 1 lines

let of_jsonl lines = Result.map of_events (events_of_jsonl lines)
