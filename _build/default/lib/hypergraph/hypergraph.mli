(** Distributed systems as hypergraphs (paper, §2.1).

    Vertices model professors (processes) and hyperedges model committees
    (synchronization events).  Vertices are indexed [0 .. n-1]; each vertex
    additionally carries a unique integer {e identifier} drawn from a total
    order, because the algorithms break symmetry with [max] over identifiers.
    By default the identifier of vertex [v] is [v] itself, but generators may
    permute identifiers to exercise id-dependent behaviour. *)

type edge = private {
  eid : int;  (** index of the hyperedge in [0 .. m-1] *)
  members : int array;  (** sorted vertex indices, at least 2 of them *)
}

type t

exception Invalid of string
(** Raised by {!create} on malformed input (empty system, singleton or
    duplicate committees, out-of-range members, duplicate identifiers, or a
    disconnected underlying network). *)

val create : ?ids:int array -> n:int -> int list list -> t
(** [create ~n edges] builds the hypergraph with vertices [0 .. n-1] and the
    given committees.  Each committee must have between 2 and [n] distinct
    members in range; committees must be pairwise distinct as sets; every
    vertex must belong to at least one committee and the underlying
    communication network must be connected (the model lets members of a
    committee read each other, so an isolated professor cannot coordinate).
    [ids], when given, assigns distinct identifiers to vertices. *)

val n : t -> int
(** Number of vertices (professors). *)

val m : t -> int
(** Number of hyperedges (committees). *)

val edges : t -> edge array
val edge : t -> int -> edge
val edge_members : t -> int -> int array

val id : t -> int -> int
(** [id h v] is the unique identifier of vertex [v]. *)

val vertex_of_id : t -> int -> int
(** Inverse of {!id}.  Raises [Not_found] for unknown identifiers. *)

val incident : t -> int -> int array
(** [incident h v] is [Ev]: indices of hyperedges incident to [v], sorted. *)

val neighbors : t -> int -> int array
(** [neighbors h v] is [N(v)]: vertices sharing a hyperedge with [v],
    sorted, excluding [v] itself. *)

val are_neighbors : t -> int -> int -> bool
val mem_edge : t -> vertex:int -> eid:int -> bool

val conflicting : t -> int -> int -> bool
(** Two committees conflict iff they share a member (paper, §2.3). *)

val degree : t -> int -> int
(** Number of incident hyperedges of a vertex. *)

val graph_degree : t -> int -> int
(** Number of neighbors of a vertex in the underlying network. *)

val max_degree : t -> int
val min_edge_size : t -> int -> int
(** [min_edge_size h v] is [minEp]: the minimum length of a hyperedge
    incident to [v] (§5.3). *)

val min_edges : t -> int -> int array
(** [min_edges h v] is [MinEdges_v]: incident hyperedges of minimum length
    (Algorithm 2). *)

val max_min : t -> int
(** [MaxMin = max_v minE_v] (§5.3, used by Theorem 5). *)

val max_hedge : t -> int
(** [MaxHEdge = max_e |e|] (§5.4, used by Theorem 8). *)

val underlying : t -> int array array
(** The underlying communication network [G_H] (§2.1) as sorted adjacency
    lists indexed by vertex. *)

val restrict : t -> removed:int list -> t option
(** [restrict h ~removed] is the subhypergraph induced by [V \ removed]:
    keeps the hyperedges all of whose members survive.  Returns [None] when
    no hyperedge survives.  Vertex indexing is preserved (vertices simply
    lose incident edges); the connectivity requirement is waived for the
    restricted hypergraph since it only feeds matching computations. *)

val pp : Format.formatter -> t -> unit
val pp_edge : t -> Format.formatter -> int -> unit
(** Prints a committee as [{id1,id2,...}] using vertex identifiers. *)

val to_string : t -> string
val equal : t -> t -> bool
