(* A department that keeps reorganizing (the paper's §7 "dynamic
   hypergraphs" future work, as a story).

       dune exec examples/dynamic_department.exe

   The department starts as Fig. 1, then: the dean creates a new committee
   {5,6}; the unwieldy committee {1,2,3,4} is dissolved; professor 7 is
   hired into two committees; professor 7 retires.  Between phases the
   running states are carried over verbatim — pointers to a dissolved
   committee dangle, the spanning tree loses a node — which is precisely a
   transient fault, and snap-stabilization absorbs it: the monitors report
   zero violations in every phase and meetings resume within a few steps. *)

module H = Snapcc_hypergraph.Hypergraph
module Daemon = Snapcc_runtime.Daemon
module Workload = Snapcc_workload.Workload
module Exp = Snapcc_experiments.Exp_dynamic
module Algos = Snapcc_experiments.Algos
module Driver = Snapcc_experiments.Driver

let () =
  let carried = ref None in
  List.iteri
    (fun i (label, h) ->
      Format.printf "== phase %d: %s ==@." (i + 1) label;
      Format.printf "   %a@." H.pp h;
      let init_states =
        match !carried with
        | None -> None
        | Some (old_h, states) ->
          let cc = Array.map fst states and tc = Array.map snd states in
          Some (Exp.translate ~old_h ~new_h:h cc tc)
      in
      let r, final_states =
        Algos.Run_cc2.run_with_states ~seed:(70 + i) ?init_states
          ~daemon:(Daemon.random_subset ())
          ~workload:(Workload.always_requesting h) ~record_trace:true
          ~steps:6_000 h
      in
      carried := Some (h, final_states);
      assert (r.Driver.violations = []);
      (match r.Driver.convened with
       | (step, e) :: _ ->
         Format.printf "   first meeting: %a at step %d@." (H.pp_edge h) e step
       | [] -> ());
      Format.printf "   meetings: %d, violations: %d, everyone served: %b@."
        r.Driver.summary.Snapcc_analysis.Metrics.convenes
        (List.length r.Driver.violations)
        (Array.for_all (fun c -> c > 0) r.Driver.participations);
      (match r.Driver.trace with
       | Some trace ->
         Format.printf "%a@." (Snapcc_runtime.Trace.pp_timeline ~width:56) trace
       | None -> ());
      Format.printf "@.")
    (Exp.phases ());
  Format.printf
    "every reorganization was absorbed as a transient fault: zero bad \
     meetings, immediate resumption (Section 7, dynamic hypergraphs).@."
