lib/baselines/central.mli: Snapcc_core Snapcc_runtime
