module H = Snapcc_hypergraph.Hypergraph
module Model = Snapcc_runtime.Model
module Obs = Snapcc_runtime.Obs
module Spec = Snapcc_analysis.Spec

type violation = {
  rule : string;
  detail : string;
  source : int;
  mode : int;
  selected : int list;
}

let mode_inputs = Array.map snd Model.input_modes
let mode_names = Array.map fst Model.input_modes
let mode_name i = if i < 0 || i >= Array.length mode_names then "-" else mode_names.(i)
let inout_mode = 3

let bits_list mask =
  let rec go p m acc =
    if m = 0 then List.rev acc
    else go (p + 1) (m lsr 1) (if m land 1 = 1 then p :: acc else acc)
  in
  go 0 mask []

module Make (Sys : System.S) = struct
  module Enc = Encode.Make (Sys)
  module Tb = Tables.Make (Sys)

  type result = {
    h : H.t;
    enc : Enc.t;
    configs : int Vec.t;  (** flat, [n] state ids per configuration *)
    meets : int Vec.t;  (** per cid: bitmask of meeting committees *)
    waitm : int Vec.t;  (** per cid: bitmask of all-members-waiting committees *)
    enab_inout : int Vec.t;  (** per cid: enabled procs under in+out *)
    par : int Vec.t;  (** per cid: parent cid, [-1] for roots *)
    par_mode : int Vec.t;
    par_sel : int Vec.t;
    edges : int Vec.t;  (** in+out words: [(dst lsl n) lor selmask] *)
    estart : int Vec.t;  (** per processed cid: offset into [edges] *)
    counts : int array;
    labels : string array;
    mutable transitions : int;
    mutable viols : violation list;
    mutable complete_ : bool;
  }

  let complete r = r.complete_
  let n_configs r = Vec.length r.meets
  let n_transitions r = r.transitions
  let violations r = List.rev r.viols
  let escapees r = Enc.escapees r.enc
  let product_size r = Enc.product_size r.enc
  let hyper r = r.h

  let action_counts r =
    Array.to_list (Array.map2 (fun l c -> (l, c)) r.labels r.counts)

  let dead_actions r =
    List.filter_map (fun (l, c) -> if c = 0 then Some l else None) (action_counts r)

  let config_ids r cid =
    let n = Enc.n r.enc in
    Array.init n (fun p -> Vec.get r.configs ((cid * n) + p))

  let states_of_config r cid =
    Array.mapi (fun p id -> Enc.state r.enc p id) (config_ids r cid)

  let obs_of_config r cid =
    let sts = states_of_config r cid in
    Array.init (Array.length sts) (fun p -> Sys.observe r.h sts p)

  let domain_index r p s = Enc.find r.enc p s
  let domain_state r p id = Enc.state r.enc p id
  let enabled_inout r cid = Vec.get r.enab_inout cid
  let meets_mask r cid = Vec.get r.meets cid
  let committee_waiting r cid = Vec.get r.waitm cid <> 0

  let succs_inout r cid =
    if cid >= Vec.length r.estart then []
    else begin
      let n = Enc.n r.enc in
      let lo = Vec.get r.estart cid in
      let hi =
        if cid + 1 < Vec.length r.estart then Vec.get r.estart (cid + 1)
        else Vec.length r.edges
      in
      List.init (hi - lo) (fun i ->
          let w = Vec.get r.edges (lo + i) in
          (w lsr n, w land ((1 lsl n) - 1)))
    end

  let path_to r cid =
    let rec up cid acc =
      let p = Vec.get r.par cid in
      if p < 0 then (config_ids r cid, acc)
      else
        up p ((Vec.get r.par_mode cid, bits_list (Vec.get r.par_sel cid)) :: acc)
    in
    up cid []

  let explore ?(max_configs = 1_500_000) ?(roots = `Domain)
      ?(stop_on_first = false) ?on_progress ?tables h =
    let n = H.n h and m = H.m h in
    if n > 16 then failwith "Mc.Explore: more than 16 processes unsupported";
    if m > 62 then failwith "Mc.Explore: more than 62 committees unsupported";
    (* adopt the tables' interner so their packed successor ids are valid
       here; a fresh one is only built when running closure-only *)
    let enc = match tables with Some tb -> Tb.enc tb | None -> Enc.create h in
    let actions = Array.of_list (Sys.actions h) in
    let nact = Array.length actions in
    let r =
      { h; enc;
        configs = Vec.create ();
        meets = Vec.create ();
        waitm = Vec.create ();
        enab_inout = Vec.create ();
        par = Vec.create ();
        par_mode = Vec.create ();
        par_sel = Vec.create ();
        edges = Vec.create ();
        estart = Vec.create ();
        counts = Array.make nact 0;
        labels = Array.map (fun (a : _ Model.action) -> a.Model.label) actions;
        transitions = 0;
        viols = [];
        complete_ = false }
    in
    let conflicts =
      List.concat
        (List.init m (fun e1 ->
             List.concat
               (List.init e1 (fun e2 ->
                    if H.conflicting h e1 e2 then [ (e1, e2) ] else []))))
    in
    let table = Enc.table enc in
    let queue = Queue.create () in
    let capped = ref false in
    let stop = ref false in
    let discover ~parent cfg =
      if Enc.table_count table >= max_configs then begin
        capped := true;
        None
      end
      else
        match Enc.find_or_add enc table cfg with
        | `Existing cid -> Some cid
        | `New cid ->
          Array.iter (fun id -> Vec.push r.configs id) cfg;
          let obs = obs_of_config r cid in
          let mm = ref 0 and wm = ref 0 in
          for e = 0 to m - 1 do
            if Obs.meets h obs e then mm := !mm lor (1 lsl e);
            if
              Array.for_all
                (fun q -> Obs.is_waiting obs.(q))
                (H.edge_members h e)
            then wm := !wm lor (1 lsl e)
          done;
          Vec.push r.meets !mm;
          Vec.push r.waitm !wm;
          Vec.push r.enab_inout 0;
          let pc, pm, ps = parent in
          Vec.push r.par pc;
          Vec.push r.par_mode pm;
          Vec.push r.par_sel ps;
          List.iter
            (fun (e1, e2) ->
              if !mm land (1 lsl e1) <> 0 && !mm land (1 lsl e2) <> 0 then begin
                r.viols <-
                  { rule = "exclusion";
                    detail =
                      Printf.sprintf
                        "conflicting committees e%d and e%d meet simultaneously"
                        e2 e1;
                    source = cid;
                    mode = -1;
                    selected = [] }
                  :: r.viols;
                if stop_on_first then stop := true
              end)
            conflicts;
          Queue.add cid queue;
          Some cid
    in
    (* lazily streamed roots *)
    let root_cursor = Array.make n 0 in
    let roots_exhausted = ref false in
    let next_domain_root () =
      if !roots_exhausted then None
      else begin
        let cfg = Array.copy root_cursor in
        let rec adv p =
          if p < 0 then roots_exhausted := true
          else begin
            root_cursor.(p) <- root_cursor.(p) + 1;
            if root_cursor.(p) >= Enc.domain_count enc p then begin
              root_cursor.(p) <- 0;
              adv (p - 1)
            end
          end
        in
        adv (n - 1);
        Some cfg
      end
    in
    let pending_roots =
      ref (match roots with `States l -> l | `Domain -> [])
    in
    let next_root () =
      match roots with
      | `Domain -> next_domain_root ()
      | `States _ -> (
        match !pending_roots with
        | [] -> None
        | sts :: rest ->
          pending_roots := rest;
          Some (Array.init n (fun p -> Enc.intern enc p sts.(p))))
    in
    let scratch = Array.make n 0 in
    let succ_ids = Array.make n 0 in
    let act_idx = Array.make n (-1) in
    let processed = ref 0 in
    let process cid =
      assert (Vec.length r.estart = cid);
      Vec.push r.estart (Vec.length r.edges);
      let cfg = config_ids r cid in
      let sts = states_of_config r cid in
      let read p = sts.(p) in
      let before_obs = lazy (obs_of_config r cid) in
      let bm = Vec.get r.meets cid in
      for mode = 0 to Array.length mode_inputs - 1 do
        if not !stop then begin
          let inputs = mode_inputs.(mode) in
          let enabled = ref 0 in
          for p = 0 to n - 1 do
            let e =
              match tables with
              | Some tb -> Tb.entry tb ~mode ~proc:p cfg
              | None -> -2
            in
            if e = -1 then act_idx.(p) <- -1
            else if e >= 0 then begin
              act_idx.(p) <- Tables.entry_act e;
              enabled := !enabled lor (1 lsl p);
              succ_ids.(p) <- Tables.entry_succ e
            end
            else begin
              (* no packed entry for this (process, configuration): run
                 the guard closures as usual *)
              let ctx = { Model.h; inputs; read; self = p } in
              let rec scan i =
                if i < 0 then -1
                else if actions.(i).Model.guard ctx then i
                else scan (i - 1)
              in
              let i = scan (nact - 1) in
              act_idx.(p) <- i;
              if i >= 0 then begin
                enabled := !enabled lor (1 lsl p);
                succ_ids.(p) <- Enc.intern enc p (actions.(i).Model.apply ctx)
              end
            end
          done;
          if mode = inout_mode then Vec.set r.enab_inout cid !enabled;
          let full = !enabled in
          if full <> 0 then begin
            let sub = ref full in
            let continue_ = ref true in
            while !continue_ && (not !stop) && not !capped do
              let s = !sub in
              Array.blit cfg 0 scratch 0 n;
              for p = 0 to n - 1 do
                if s land (1 lsl p) <> 0 then scratch.(p) <- succ_ids.(p)
              done;
              (match discover ~parent:(cid, mode, s) scratch with
              | None -> ()
              | Some dst ->
                r.transitions <- r.transitions + 1;
                for p = 0 to n - 1 do
                  if s land (1 lsl p) <> 0 then
                    r.counts.(act_idx.(p)) <- r.counts.(act_idx.(p)) + 1
                done;
                if mode = inout_mode then
                  Vec.push r.edges ((dst lsl n) lor s);
                let am = Vec.get r.meets dst in
                if am <> bm then begin
                  (* a meeting convened or broke up: judge the transition
                     with the runtime monitor, before as initial (§2.5) *)
                  let before = Lazy.force before_obs in
                  let after = obs_of_config r dst in
                  let spec = Spec.create h ~initial:before in
                  Spec.on_step spec ~step:0
                    ~request_out:inputs.Model.request_out ~before ~after;
                  List.iter
                    (fun (v : Spec.violation) ->
                      r.viols <-
                        { rule = v.Spec.rule;
                          detail = v.Spec.detail;
                          source = cid;
                          mode;
                          selected = bits_list s }
                        :: r.viols;
                      if stop_on_first then stop := true)
                    (Spec.violations spec)
                end);
              let nxt = (s - 1) land full in
              if nxt = 0 then continue_ := false else sub := nxt
            done
          end
        end
      done;
      incr processed;
      if !processed land 0x3fff = 0 then
        Option.iter
          (fun f ->
            f ~configs:(Enc.table_count table) ~transitions:r.transitions)
          on_progress
    in
    let rec loop () =
      if !stop || !capped then ()
      else
        match Queue.take_opt queue with
        | Some cid ->
          process cid;
          loop ()
        | None -> (
          match next_root () with
          | Some cfg ->
            ignore (discover ~parent:(-1, -1, 0) cfg);
            loop ()
          | None -> r.complete_ <- true)
    in
    loop ();
    r
end
