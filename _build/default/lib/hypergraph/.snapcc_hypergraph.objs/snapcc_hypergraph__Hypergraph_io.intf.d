lib/hypergraph/hypergraph_io.mli: Hypergraph
