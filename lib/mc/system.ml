module type S = sig
  include Snapcc_runtime.Model.ALGO

  val domain : Snapcc_hypergraph.Hypergraph.t -> int -> state list
  val canon : Snapcc_hypergraph.Hypergraph.t -> int -> state -> state
end
