(** Counterexample traces: a serializable recipe — initial configuration
    (as per-process domain indices), daemon selections and input modes —
    that re-executes through the {e real} engine and runtime monitors
    ([ccsim replay]), plus trace minimization.

    Minimization exploits the snap-stabilization quantification: any state
    on the path is itself a legal initial configuration, so prefixes can be
    shifted away wholesale; daemon selections are then shrunk process by
    process.  Both passes are validated against the replay oracle and
    iterated to a fixpoint, which makes minimization idempotent. *)

type step = { mode : int;  (** input-mode index, see {!Explore.mode_inputs} *)
              selected : int list }

type kind = Safety of string  (** violated {!Snapcc_analysis.Spec} rule *)
          | Deadlock
          | Livelock

type t = {
  algo : string;  (** {!Systems} registry key *)
  token : string;  (** token-layer key *)
  topo : string;  (** {!Snapcc_hypergraph.Families.by_name} name *)
  kind : kind;
  detail : string;
  init : int list;  (** per-process state-domain indices (see {!Encode}) *)
  steps : step list;  (** for [Safety], the last step is the violation *)
  loop : step list;  (** for [Livelock], the convene-free cycle *)
}

val of_safety :
  algo:string -> token:string -> topo:string -> rule:string -> detail:string ->
  init:int array -> steps:(int * int list) list -> t

val of_deadlock :
  algo:string -> token:string -> topo:string -> detail:string ->
  init:int array -> steps:(int * int list) list -> t

val of_livelock :
  algo:string -> token:string -> topo:string -> detail:string ->
  init:int array -> steps:(int * int list) list -> loop:int list list -> t

val pp : Format.formatter -> t -> unit
val to_file : string -> t -> unit

val of_file : string -> t
(** Raises [Failure] on syntax errors or version mismatch. *)

module Make (Sys : System.S) : sig
  type verdict =
    | Reproduced of string  (** the violation re-manifested; how *)
    | Not_reproduced of string
    | Invalid of string  (** the trace is not executable on this system *)

  val replay :
    ?trace:Format.formatter ->
    Snapcc_hypergraph.Hypergraph.t ->
    t ->
    verdict
  (** Re-executes the trace through {!Snapcc_runtime.Engine} with a
      scripted daemon, feeding every transition to a fresh
      {!Snapcc_analysis.Spec} monitor; [Safety] reproduces iff the monitor
      reports the recorded rule, [Deadlock] iff the final configuration is
      terminal under in+out with a fully waiting committee, [Livelock] iff
      the loop returns to its entry configuration without convening. *)

  val minimize : Snapcc_hypergraph.Hypergraph.t -> t -> t
  (** Replay-validated prefix shifting and selection shrinking, iterated
      to a fixpoint ([Safety] counterexamples; others returned as-is). *)
end
